#include "ccbt/core/exact.hpp"

#include <array>
#include <bit>
#include <vector>

#include "ccbt/util/error.hpp"

namespace ccbt {

namespace {

/// Backtracking match enumerator. Query nodes are assigned in an order
/// where each node (after the first) has at least one earlier neighbor,
/// so candidates always come from some mapped neighbor's adjacency list.
struct MatchSearch {
  const CsrGraph& g;
  const QueryGraph& q;
  const Coloring* chi;  // nullptr = ordinary (non-colorful) counting
  std::vector<QNode> order;
  std::array<VertexId, kMaxQueryNodes> image{};
  Signature used_colors = 0;
  Count count = 0;

  MatchSearch(const CsrGraph& graph, const QueryGraph& query,
              const Coloring* coloring)
      : g(graph), q(query), chi(coloring), order(query.connected_order()) {
    if (static_cast<int>(order.size()) != query.num_nodes()) {
      throw Error("exact counter requires a connected query");
    }
    image.fill(kNoVertex);
  }

  bool consistent(QNode a, VertexId u) const {
    // Injectivity.
    for (int c = 0; c < q.num_nodes(); ++c) {
      if (image[c] == u) return false;
    }
    // Every mapped query neighbor must be a data-graph neighbor.
    std::uint32_t nbrs = q.neighbors(a);
    while (nbrs != 0) {
      const int b = std::countr_zero(nbrs);
      nbrs &= nbrs - 1;
      if (image[b] != kNoVertex && !g.has_edge(u, image[b])) return false;
    }
    return true;
  }

  void run(std::size_t depth) {
    if (depth == order.size()) {
      ++count;
      return;
    }
    const QNode a = order[depth];
    if (depth == 0) {
      for (VertexId u = 0; u < g.num_vertices(); ++u) try_assign(a, u, depth);
      return;
    }
    // Candidates: neighbors of the first mapped query-neighbor of a.
    std::uint32_t nbrs = q.neighbors(a);
    VertexId pivot = kNoVertex;
    while (nbrs != 0) {
      const int b = std::countr_zero(nbrs);
      nbrs &= nbrs - 1;
      if (image[b] != kNoVertex) {
        pivot = image[b];
        break;
      }
    }
    for (VertexId u : g.neighbors(pivot)) try_assign(a, u, depth);
  }

  void try_assign(QNode a, VertexId u, std::size_t depth) {
    if (chi != nullptr && (used_colors & chi->bit(u)) != 0) return;
    if (!consistent(a, u)) return;
    image[a] = u;
    if (chi != nullptr) used_colors |= chi->bit(u);
    run(depth + 1);
    if (chi != nullptr) used_colors &= ~chi->bit(u);
    image[a] = kNoVertex;
  }
};

}  // namespace

Count count_matches_exact(const CsrGraph& g, const QueryGraph& q) {
  MatchSearch search(g, q, nullptr);
  search.run(0);
  return search.count;
}

Count count_colorful_exact(const CsrGraph& g, const QueryGraph& q,
                           const Coloring& chi) {
  MatchSearch search(g, q, &chi);
  search.run(0);
  return search.count;
}

}  // namespace ccbt
