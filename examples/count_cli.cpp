// count_cli — command-line motif counting, the tool a downstream user
// would actually run.
//
// Usage:
//   count_cli [--graph FILE | --gen MODEL] [--query NAME] [--algo ps|db]
//             [--trials N] [--ranks R] [--seed S] [--exact]
//
//   --graph FILE   edge-list file ("u v" per line, '#' comments); a
//                  .bin suffix loads/saves the binary CSR snapshot
//   --gen MODEL    synthetic graph instead of a file:
//                  chunglu:N:ALPHA:AVGDEG | rmat:SCALE:EF | er:N:M |
//                  or a Table 1 name (enron, epinions, ...)
//   --query NAME   catalog query (default cycle5); see --list
//   --algo         db (default) or ps
//   --trials N     estimator trials (default 5)
//   --batch B      colorings per plan execution (1, 2, 4 or 8; default 1):
//                  trials are processed B at a time through the batched
//                  engine, with identical per-trial counts
//   --ranks R      attach the virtual-rank load model and report loads
//   --exact        also run the brute-force counter (small graphs only!)
//   --dist R       run one coloring through the virtual-MPI engine on R
//                  ranks and report transport statistics
//   --tree         use the linear-time treelet DP (tree queries only)
//   --adaptive CV  adaptive trials until the estimate's cv <= CV
//   --save FILE    write the (possibly generated) graph and exit
//   --list         print all catalog query names and exit
//
// Fault tolerance (exercised by --dist and the estimator):
//   --fault-seed S       seed the deterministic FaultPlan (0 = default)
//   --fault-rate P       drop/duplicate/delay each transport message
//                        with probability P (per fate)
//   --trial-fail-rate P  drop estimator trials with probability P and
//                        degrade (survivor mean, widened cv)
//   --max-retries N      transport delivery retries per superstep
//   --deadline-ms D      virtual stall-detection deadline per superstep
//   --ckpt-interval N    checkpoint every N supersteps (0 = off)
//
// Runs with no arguments as a self-contained demo.

#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ccbt/bench_support/workloads.hpp"
#include "ccbt/core/ccbt.hpp"
#include "ccbt/util/error.hpp"
#include "ccbt/util/stats.hpp"

namespace {

using namespace ccbt;

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::istringstream is(s);
  std::string part;
  while (std::getline(is, part, sep)) parts.push_back(part);
  return parts;
}

CsrGraph make_graph(const std::string& spec, std::uint64_t seed) {
  const auto parts = split(spec, ':');
  if (parts[0] == "chunglu" && parts.size() == 4) {
    return chung_lu_power_law(static_cast<VertexId>(std::stoul(parts[1])),
                              std::stod(parts[2]), std::stod(parts[3]), seed);
  }
  if (parts[0] == "rmat" && parts.size() == 3) {
    RmatParams p;
    p.scale = std::stoi(parts[1]);
    p.edge_factor = std::stoi(parts[2]);
    return rmat(p, seed);
  }
  if (parts[0] == "er" && parts.size() == 3) {
    return erdos_renyi(static_cast<VertexId>(std::stoul(parts[1])),
                       std::stoul(parts[2]), seed);
  }
  return make_workload(parts[0], 0.2, seed);  // Table 1 stand-in names
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ccbt;
  std::string graph_file, gen_spec = "chunglu:8000:1.8:6";
  std::string query_name = "cycle5", algo_name_str = "db";
  int trials = 5;
  int batch = 1;
  std::uint32_t ranks = 0;
  std::uint32_t dist_ranks = 0;
  std::uint64_t seed = 1;
  bool run_exact = false;
  bool use_tree_dp = false;
  double adaptive_cv = 0.0;
  std::string save_file;
  std::uint64_t fault_seed = 0;
  double fault_rate = 0.0;
  double trial_fail_rate = 0.0;
  std::uint32_t max_retries = 3;
  double deadline_ms = 100.0;
  std::uint64_t ckpt_interval = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return (i + 1 < argc) ? argv[++i] : std::string();
    };
    if (arg == "--graph") graph_file = next();
    else if (arg == "--gen") gen_spec = next();
    else if (arg == "--query") query_name = next();
    else if (arg == "--algo") algo_name_str = next();
    else if (arg == "--trials") trials = std::stoi(next());
    else if (arg == "--batch") batch = std::stoi(next());
    else if (arg == "--ranks") ranks = std::stoul(next());
    else if (arg == "--seed") seed = std::stoull(next());
    else if (arg == "--exact") run_exact = true;
    else if (arg == "--dist") dist_ranks = std::stoul(next());
    else if (arg == "--tree") use_tree_dp = true;
    else if (arg == "--adaptive") adaptive_cv = std::stod(next());
    else if (arg == "--fault-seed") fault_seed = std::stoull(next());
    else if (arg == "--fault-rate") fault_rate = std::stod(next());
    else if (arg == "--trial-fail-rate") trial_fail_rate = std::stod(next());
    else if (arg == "--max-retries") max_retries = std::stoul(next());
    else if (arg == "--deadline-ms") deadline_ms = std::stod(next());
    else if (arg == "--ckpt-interval") ckpt_interval = std::stoull(next());
    else if (arg == "--save") save_file = next();
    else if (arg == "--list") {
      for (const std::string& name : catalog_names()) std::cout << name
                                                                << "\n";
      return 0;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    }
  }

  try {
    auto is_binary = [](const std::string& f) {
      return f.size() > 4 && f.compare(f.size() - 4, 4, ".bin") == 0;
    };
    const CsrGraph g =
        graph_file.empty()
            ? make_graph(gen_spec, seed)
            : (is_binary(graph_file) ? load_graph_binary(graph_file)
                                     : load_graph_text(graph_file));
    if (!save_file.empty()) {
      is_binary(save_file) ? save_graph_binary(g, save_file)
                           : save_graph_text(g, save_file);
      std::cout << "saved " << g.num_vertices() << " vertices / "
                << g.num_edges() << " edges to " << save_file << "\n";
      return 0;
    }
    const QueryGraph q = named_query(query_name);
    const GraphStats s = compute_stats(g);
    std::cout << "graph: " << s.num_vertices << " vertices, " << s.num_edges
              << " edges, max degree " << s.max_degree << ", skew "
              << s.skew << "\n"
              << "query: " << q.name() << " (" << q.num_nodes()
              << " nodes, " << q.num_edges() << " edges)\n";

    EstimatorOptions opts;
    opts.trials = trials;
    opts.seed = seed;
    opts.batch = batch;
    opts.exec.algo = (algo_name_str == "ps") ? Algo::kPS : Algo::kDB;
    opts.exec.sim_ranks = ranks;
    opts.faults.seed = fault_seed;
    opts.faults.trial_fail_rate = trial_fail_rate;
    opts.exec.dist.faults.seed = fault_seed;
    opts.exec.dist.faults.drop_rate = fault_rate;
    opts.exec.dist.faults.dup_rate = fault_rate;
    opts.exec.dist.faults.delay_rate = fault_rate;
    opts.exec.dist.max_retries = max_retries;
    opts.exec.dist.deadline_ms = deadline_ms;
    opts.exec.dist.checkpoint_interval = ckpt_interval;

    EstimatorResult r;
    std::string solver_label = algo_name(opts.exec.algo);
    int trials_run = trials;
    if (use_tree_dp) {
      // Linear-time treelet DP: average scaled colorful counts directly.
      solver_label = "tree DP";
      const double scale = colorful_scale(q.num_nodes());
      Rng seeder(seed);
      for (int t = 0; t < trials; ++t) {
        const Coloring chi(g.num_vertices(), q.num_nodes(), seeder());
        const TreeDpStats stats = count_colorful_tree_stats(g, q, chi);
        r.colorful_per_trial.push_back(stats.colorful);
        r.estimate_per_trial.push_back(
            scale * static_cast<double>(stats.colorful));
        r.total_wall_seconds += stats.wall_seconds;
      }
      const Summary summary = summarize(r.estimate_per_trial);
      r.matches = summary.mean;
      r.cv = summary.cv();
      r.automorphisms = count_automorphisms(q);
      r.occurrences = r.matches / static_cast<double>(r.automorphisms);
    } else if (adaptive_cv > 0.0) {
      AdaptiveOptions aopts;
      aopts.target_cv = adaptive_cv;
      aopts.max_trials = std::max(trials, 50);
      aopts.seed = seed;
      aopts.batch = batch;
      aopts.faults = opts.faults;
      aopts.exec = opts.exec;
      const AdaptiveResult ar = estimate_matches_adaptive(g, q, aopts);
      r = ar.estimate;
      trials_run = ar.trials_used;
      std::cout << (ar.converged ? "converged" : "did NOT converge")
                << " after " << ar.trials_used << " trial(s)\n";
    } else {
      r = estimate_matches(g, q, opts);
    }
    std::cout << "solver " << solver_label << ", " << trials_run
              << " trial(s), " << r.total_wall_seconds << " s\n"
              << "estimated matches:     " << r.matches << "\n"
              << "estimated occurrences: " << r.occurrences << "  (aut="
              << r.automorphisms << ")\n"
              << "cv: " << r.cv << "\n";
    if (r.degraded) {
      std::cout << "DEGRADED: " << r.trials_dropped << "/"
                << r.trials_planned << " trial(s) lost to faults, cv "
                << "widened to " << r.cv_widened << "\n";
    }

    if (dist_ranks > 0) {
      const Coloring chi(g.num_vertices(), q.num_nodes(), seed);
      const DistStats d = run_plan_distributed(g, make_plan(q).tree, chi,
                                               dist_ranks, opts.exec);
      std::cout << "distributed @" << dist_ranks << " ranks: colorful "
                << d.colorful << ", " << d.transport.supersteps
                << " supersteps, " << d.transport.entries_sent
                << " entries moved (" << d.transport.off_rank_bytes() / 1024
                << " KiB off-rank)\n";
      if (d.faults.faults_injected > 0 || d.faults.checkpoints_taken > 0) {
        std::cout << "faults: " << d.faults.faults_injected << " injected ("
                  << d.faults.drops << " drop/" << d.faults.dups << " dup/"
                  << d.faults.delays << " delay/" << d.faults.stalls
                  << " stall), " << d.faults.retries << " retries, "
                  << d.faults.replays << " replays, "
                  << d.faults.checkpoints_taken << " checkpoints ("
                  << d.faults.checkpoint_bytes / 1024 << " KiB), recovery "
                  << d.faults.recovery_virtual_ms() << " virtual ms"
                  << (d.recovered() ? "  [recovered]" : "") << "\n";
      }
    }

    if (ranks > 0) {
      ExecOptions lopts = opts.exec;
      CountingSession session(g, q, make_plan(q), lopts);
      const ExecStats stats = session.count_colorful_seeded(seed);
      std::cout << "load @" << ranks << " ranks: total ops "
                << stats.total_ops << ", max/avg rank load "
                << stats.max_rank_ops << "/" << stats.avg_rank_ops
                << ", sim makespan " << stats.sim_time << "\n";
    }
    if (run_exact) {
      std::cout << "exact matches:         " << count_matches_exact(g, q)
                << "\n";
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
