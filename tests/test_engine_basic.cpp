// Engine correctness on structured cases: every algorithm (PS, PS-EVEN,
// DB) must agree with the brute-force colorful oracle, block by block.

#include <gtest/gtest.h>

#include "ccbt/core/color_coding.hpp"
#include "ccbt/core/exact.hpp"
#include "ccbt/graph/generators.hpp"
#include "ccbt/query/catalog.hpp"
#include "ccbt/util/error.hpp"

namespace ccbt {
namespace {

Count engine_count(const CsrGraph& g, const QueryGraph& q,
                   const Coloring& chi, Algo algo) {
  ExecOptions opts;
  opts.algo = algo;
  CountingSession session(g, q, make_plan(q), opts);
  return session.count_colorful(chi).colorful;
}

void expect_all_algos_match_oracle(const CsrGraph& g, const QueryGraph& q,
                                   std::uint64_t color_seed) {
  const Coloring chi(g.num_vertices(), q.num_nodes(), color_seed);
  const Count oracle = count_colorful_exact(g, q, chi);
  EXPECT_EQ(engine_count(g, q, chi, Algo::kPS), oracle)
      << "PS " << q.name() << " seed=" << color_seed;
  EXPECT_EQ(engine_count(g, q, chi, Algo::kPSEven), oracle)
      << "PS-EVEN " << q.name() << " seed=" << color_seed;
  EXPECT_EQ(engine_count(g, q, chi, Algo::kDB), oracle)
      << "DB " << q.name() << " seed=" << color_seed;
}

TEST(EngineBasic, SingleNodeQuery) {
  const CsrGraph g = erdos_renyi(20, 30, 1);
  const QueryGraph q(1, "node");
  const Coloring chi(g.num_vertices(), 1, 5);
  EXPECT_EQ(engine_count(g, q, chi, Algo::kDB), 20u);
}

TEST(EngineBasic, SingleEdgeQuery) {
  const CsrGraph g = erdos_renyi(20, 40, 2);
  expect_all_algos_match_oracle(g, q_path(2), 11);
}

TEST(EngineBasic, TriangleOnK4) {
  expect_all_algos_match_oracle(complete_graph(4), q_cycle(3), 3);
}

TEST(EngineBasic, TriangleOnRandom) {
  expect_all_algos_match_oracle(erdos_renyi(30, 90, 3), q_cycle(3), 4);
}

TEST(EngineBasic, C4OnRandom) {
  expect_all_algos_match_oracle(erdos_renyi(30, 80, 4), q_cycle(4), 5);
}

TEST(EngineBasic, C5OnRandom) {
  expect_all_algos_match_oracle(erdos_renyi(28, 70, 5), q_cycle(5), 6);
}

TEST(EngineBasic, C6OnRandom) {
  expect_all_algos_match_oracle(erdos_renyi(26, 60, 6), q_cycle(6), 7);
}

TEST(EngineBasic, C7OnRandom) {
  expect_all_algos_match_oracle(erdos_renyi(24, 55, 7), q_cycle(7), 8);
}

TEST(EngineBasic, PathQueries) {
  const CsrGraph g = erdos_renyi(26, 60, 8);
  for (int len : {3, 4, 5, 6}) {
    expect_all_algos_match_oracle(g, q_path(len), 20 + len);
  }
}

TEST(EngineBasic, StarQueries) {
  const CsrGraph g = erdos_renyi(25, 70, 9);
  for (int leaves : {2, 3, 4}) {
    expect_all_algos_match_oracle(g, q_star(leaves), 30 + leaves);
  }
}

TEST(EngineBasic, BinaryTree) {
  expect_all_algos_match_oracle(erdos_renyi(25, 55, 10),
                                q_complete_binary_tree(7), 40);
}

TEST(EngineBasic, DiamondOnRandom) {
  expect_all_algos_match_oracle(erdos_renyi(28, 85, 11), q_glet2(), 41);
}

TEST(EngineBasic, ThetaGraph) {
  expect_all_algos_match_oracle(erdos_renyi(26, 75, 12),
                                named_query("theta"), 42);
}

TEST(EngineBasic, BowtieWiki) {
  expect_all_algos_match_oracle(erdos_renyi(26, 75, 13), q_wiki(), 43);
}

TEST(EngineBasic, TailedTriangleYoutube) {
  expect_all_algos_match_oracle(erdos_renyi(26, 70, 14), q_youtube(), 44);
}

TEST(EngineBasic, DrosQuery) {
  expect_all_algos_match_oracle(erdos_renyi(24, 60, 15), q_dros(), 45);
}

TEST(EngineBasic, Ecoli1Query) {
  expect_all_algos_match_oracle(erdos_renyi(24, 60, 16), q_ecoli1(), 46);
}

TEST(EngineBasic, Ecoli2Query) {
  expect_all_algos_match_oracle(erdos_renyi(24, 55, 17), q_ecoli2(), 47);
}

TEST(EngineBasic, Brain1Query) {
  expect_all_algos_match_oracle(erdos_renyi(22, 50, 18), q_brain1(), 48);
}

TEST(EngineBasic, Brain2Query) {
  expect_all_algos_match_oracle(erdos_renyi(22, 48, 19), q_brain2(), 49);
}

TEST(EngineBasic, Brain3Query) {
  expect_all_algos_match_oracle(erdos_renyi(22, 46, 20), q_brain3(), 50);
}

TEST(EngineBasic, SatelliteQuery) {
  expect_all_algos_match_oracle(erdos_renyi(20, 44, 21), q_satellite(), 51);
}

TEST(EngineBasic, DenseSmallGraph) {
  // K6 stresses all join paths with many overlapping matches.
  expect_all_algos_match_oracle(complete_graph(6), q_glet2(), 52);
  expect_all_algos_match_oracle(complete_graph(6), q_wiki(), 53);
}

TEST(EngineBasic, GridGraph) {
  expect_all_algos_match_oracle(grid2d(5, 5, 4, 22), q_glet1(), 54);
  expect_all_algos_match_oracle(grid2d(5, 5, 4, 22), q_cycle(6), 55);
}

TEST(EngineBasic, StarDataGraphHighSkew) {
  // Extreme hub: exactly the degree skew DB is designed around.
  expect_all_algos_match_oracle(star_graph(15), q_star(4), 56);
  expect_all_algos_match_oracle(star_graph(15), q_cycle(3), 57);
}

TEST(EngineBasic, ZeroWhenQueryBiggerThanGraph) {
  const CsrGraph g = cycle_graph(4);
  const Coloring chi(4, 6, 3);
  EXPECT_EQ(engine_count(g, q_cycle(6), chi, Algo::kDB), 0u);
}

TEST(EngineBasic, BudgetExceededThrows) {
  const CsrGraph g = erdos_renyi(60, 500, 23);
  const QueryGraph q = q_cycle(6);
  ExecOptions opts;
  opts.algo = Algo::kPS;
  opts.max_table_entries = 8;
  CountingSession session(g, q, make_plan(q), opts);
  const Coloring chi(g.num_vertices(), q.num_nodes(), 9);
  EXPECT_THROW(session.count_colorful(chi), BudgetExceeded);
}

TEST(EngineBasic, IdOrderAblationMatchesOracle) {
  const CsrGraph g = erdos_renyi(26, 70, 24);
  const QueryGraph q = q_cycle(5);
  const Coloring chi(g.num_vertices(), q.num_nodes(), 10);
  ExecOptions opts;
  opts.algo = Algo::kDB;
  opts.order_by_id = true;
  CountingSession session(g, q, make_plan(q), opts);
  EXPECT_EQ(session.count_colorful(chi).colorful,
            count_colorful_exact(g, q, chi));
}

}  // namespace
}  // namespace ccbt
