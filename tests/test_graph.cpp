// Unit tests for the graph substrate: edge lists, CSR invariants, degree
// ordering, partitions, colorings, and statistics.

#include <gtest/gtest.h>

#include <sstream>

#include "ccbt/graph/coloring.hpp"
#include "ccbt/util/error.hpp"
#include "ccbt/graph/csr_graph.hpp"
#include "ccbt/graph/degree_order.hpp"
#include "ccbt/graph/generators.hpp"
#include "ccbt/graph/graph_stats.hpp"
#include "ccbt/graph/partition.hpp"

namespace ccbt {
namespace {

TEST(EdgeListTest, SimplifyDropsLoopsAndDuplicates) {
  EdgeList list;
  list.add(1, 2);
  list.add(2, 1);  // duplicate reversed
  list.add(3, 3);  // loop
  list.add(1, 2);  // duplicate
  const EdgeList s = simplify(list);
  ASSERT_EQ(s.edges.size(), 1u);
  EXPECT_EQ(s.edges[0].u, 1u);
  EXPECT_EQ(s.edges[0].v, 2u);
}

TEST(EdgeListTest, RoundTripThroughText) {
  EdgeList list;
  list.add(0, 1);
  list.add(1, 2);
  list.add(0, 2);
  std::stringstream ss;
  write_edge_list(ss, list);
  const EdgeList back = read_edge_list(ss);
  EXPECT_EQ(back.edges.size(), 3u);
  EXPECT_EQ(back.num_vertices, 3u);
}

TEST(EdgeListTest, RejectsMalformedLine) {
  std::stringstream ss("1 two\n");
  EXPECT_THROW(read_edge_list(ss), Error);
}

TEST(CsrGraphTest, NeighborsSortedAndSymmetric) {
  const CsrGraph g = erdos_renyi(50, 120, 3);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    for (std::size_t i = 1; i < nbrs.size(); ++i) {
      EXPECT_LT(nbrs[i - 1], nbrs[i]);
    }
    for (VertexId v : nbrs) {
      EXPECT_TRUE(g.has_edge(v, u)) << u << "-" << v;
    }
  }
}

TEST(CsrGraphTest, DegreeSumIsTwiceEdges) {
  const CsrGraph g = erdos_renyi(64, 200, 4);
  std::size_t sum = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) sum += g.degree(u);
  EXPECT_EQ(sum, 2 * g.num_edges());
}

TEST(CsrGraphTest, HasEdgeMatchesConstruction) {
  const CsrGraph g = cycle_graph(6);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(5, 0));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_edge(0, 99));
}

TEST(CsrGraphTest, ToEdgesRoundTrip) {
  const CsrGraph g = erdos_renyi(30, 80, 5);
  const CsrGraph g2 = CsrGraph::from_edges(g.to_edges());
  ASSERT_EQ(g.num_vertices(), g2.num_vertices());
  ASSERT_EQ(g.num_edges(), g2.num_edges());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    ASSERT_EQ(g.degree(u), g2.degree(u));
  }
}

TEST(CsrGraphTest, EmptyGraph) {
  const CsrGraph g = CsrGraph::from_edges(EdgeList{});
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(DegreeOrderTest, HigherDegreeMeansHigherRank) {
  const CsrGraph g = star_graph(10);  // vertex 0 is the hub
  const DegreeOrder order(g);
  for (VertexId v = 1; v <= 10; ++v) {
    EXPECT_TRUE(order.higher(0, v));
  }
}

TEST(DegreeOrderTest, TiesBrokenByIdAscending) {
  const CsrGraph g = cycle_graph(5);  // all degrees equal
  const DegreeOrder order(g);
  for (VertexId v = 1; v < 5; ++v) {
    EXPECT_TRUE(order.higher(v, v - 1));
  }
}

TEST(DegreeOrderTest, TotalOrderIsAPermutation) {
  const CsrGraph g = erdos_renyi(40, 100, 6);
  const DegreeOrder order(g);
  std::vector<bool> seen(40, false);
  for (VertexId v = 0; v < 40; ++v) {
    ASSERT_LT(order.rank(v), 40u);
    EXPECT_FALSE(seen[order.rank(v)]);
    seen[order.rank(v)] = true;
  }
}

TEST(DegreeOrderTest, ByIdOrderMatchesIds) {
  const DegreeOrder order = DegreeOrder::by_id(10);
  EXPECT_TRUE(order.higher(7, 3));
  EXPECT_FALSE(order.higher(3, 7));
}

TEST(PartitionTest, CoversAllVerticesOnce) {
  const BlockPartition part(1000, 7);
  std::vector<int> count(1000, 0);
  for (std::uint32_t r = 0; r < part.num_ranks(); ++r) {
    for (VertexId v = part.begin(r); v < part.end(r); ++v) {
      EXPECT_EQ(part.owner(v), r);
      ++count[v];
    }
  }
  for (int c : count) EXPECT_EQ(c, 1);
}

TEST(PartitionTest, BalancedWithinOne) {
  const BlockPartition part(1000, 32);
  VertexId min_size = 1000, max_size = 0;
  for (std::uint32_t r = 0; r < 32; ++r) {
    const VertexId size = part.end(r) - part.begin(r);
    min_size = std::min(min_size, size);
    max_size = std::max(max_size, size);
  }
  EXPECT_LE(max_size - min_size, 32u);  // block distribution granularity
}

TEST(PartitionTest, MoreRanksThanVertices) {
  const BlockPartition part(3, 8);
  for (VertexId v = 0; v < 3; ++v) {
    EXPECT_LT(part.owner(v), 8u);
  }
}

TEST(ColoringTest, ColorsInRangeAndDeterministic) {
  const Coloring a(500, 7, 99), b(500, 7, 99);
  for (VertexId v = 0; v < 500; ++v) {
    EXPECT_LT(a.color(v), 7);
    EXPECT_EQ(a.color(v), b.color(v));
    EXPECT_EQ(a.bit(v), Signature{1} << a.color(v));
  }
}

TEST(ColoringTest, RoughlyUniform) {
  const Coloring chi(70000, 7, 3);
  std::vector<int> counts(7, 0);
  for (VertexId v = 0; v < chi.size(); ++v) ++counts[chi.color(v)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 1000);
}

TEST(GraphStatsTest, RegularGraphSkewIsOne) {
  const GraphStats s = compute_stats(cycle_graph(100));
  EXPECT_DOUBLE_EQ(s.avg_degree, 2.0);
  EXPECT_NEAR(s.skew, 1.0, 1e-9);
  EXPECT_EQ(s.heavy_vertices, 0u);
}

TEST(GraphStatsTest, StarGraphIsMaximallySkewed) {
  const GraphStats s = compute_stats(star_graph(99));
  EXPECT_EQ(s.max_degree, 99u);
  EXPECT_GT(s.skew, 20.0);
  EXPECT_EQ(s.heavy_vertices, 1u);
}

TEST(GraphStatsTest, HistogramBucketsByPowersOfTwo) {
  const auto hist = degree_histogram_pow2(star_graph(64));
  // 64 leaves of degree 1 -> bucket 0; hub degree 64 -> bucket 6.
  ASSERT_GE(hist.size(), 7u);
  EXPECT_EQ(hist[0], 64u);
  EXPECT_EQ(hist[6], 1u);
}

}  // namespace
}  // namespace ccbt
