#include "ccbt/engine/cycle_solver.hpp"

namespace ccbt {

template ProjTableT<1> solve_cycle<1>(const ExecContext&, const Block&,
                                      TablePoolT<1>&);
template ProjTableT<2> solve_cycle<2>(const ExecContext&, const Block&,
                                      TablePoolT<2>&);
template ProjTableT<4> solve_cycle<4>(const ExecContext&, const Block&,
                                      TablePoolT<4>&);
template ProjTableT<8> solve_cycle<8>(const ExecContext&, const Block&,
                                      TablePoolT<8>&);

}  // namespace ccbt
