// Identity tests relating colorful counts to exact counts:
//  * rainbow coloring (all vertices distinctly colored) => every match is
//    colorful, so the DP must return the exact match count;
//  * permuting color names never changes the count;
//  * more query nodes than vertices => zero;
//  * colorful counts are monotone under edge addition.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "ccbt/core/color_coding.hpp"
#include "ccbt/core/exact.hpp"
#include "ccbt/graph/generators.hpp"
#include "ccbt/query/catalog.hpp"

namespace ccbt {
namespace {

Coloring rainbow(VertexId n, int k) {
  std::vector<std::uint8_t> colors(n);
  std::iota(colors.begin(), colors.end(), std::uint8_t{0});
  return Coloring(std::move(colors), k);
}

class RainbowIdentity : public ::testing::TestWithParam<const char*> {};

TEST_P(RainbowIdentity, ColorfulEqualsExactUnderDistinctColors) {
  const QueryGraph q = named_query(GetParam());
  // Data graph with <= 16 vertices so every vertex gets a unique color...
  // but the coloring must use exactly k = |Q| colors; so instead color
  // vertices with distinct colors only when n <= k. Use n == k (the
  // densest interesting case: matches are bijections onto the graph).
  const int k = q.num_nodes();
  const CsrGraph g = erdos_renyi(static_cast<VertexId>(k),
                                 static_cast<std::size_t>(k * (k - 1) / 2),
                                 13);  // complete graph on k vertices
  const Coloring chi = rainbow(g.num_vertices(), k);
  const Count exact = count_matches_exact(g, q);
  for (Algo algo : {Algo::kPS, Algo::kDB}) {
    ExecOptions opts;
    opts.algo = algo;
    CountingSession session(g, q, make_plan(q), opts);
    EXPECT_EQ(session.count_colorful(chi).colorful, exact)
        << algo_name(algo);
  }
}

INSTANTIATE_TEST_SUITE_P(Catalog, RainbowIdentity,
                         ::testing::Values("triangle", "glet1", "glet2",
                                           "wiki", "youtube", "dros",
                                           "ecoli1", "brain1"));

TEST(ColorPermutation, RenamingColorsPreservesCount) {
  const CsrGraph g = erdos_renyi(30, 80, 21);
  const QueryGraph q = q_wiki();
  const int k = q.num_nodes();
  const Coloring base(g.num_vertices(), k, 5);
  // Apply a color permutation.
  std::vector<std::uint8_t> permuted(g.num_vertices());
  const std::uint8_t perm[5] = {3, 0, 4, 1, 2};
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    permuted[v] = perm[base.color(v)];
  }
  const Coloring chi2(std::move(permuted), k);
  ExecOptions opts;
  CountingSession session(g, q, make_plan(q), opts);
  EXPECT_EQ(session.count_colorful(base).colorful,
            session.count_colorful(chi2).colorful);
}

TEST(ColorfulBounds, MoreQueryNodesThanVerticesGivesZero) {
  const CsrGraph g = complete_graph(4);
  const QueryGraph q = q_cycle(6);
  const Coloring chi(g.num_vertices(), 6, 3);
  ExecOptions opts;
  CountingSession session(g, q, make_plan(q), opts);
  EXPECT_EQ(session.count_colorful(chi).colorful, 0u);
}

TEST(ColorfulBounds, MonotoneUnderEdgeAddition) {
  // Adding an edge can only create matches, never destroy them.
  EdgeList base = erdos_renyi(20, 40, 31).to_edges();
  const CsrGraph g1 = CsrGraph::from_edges(base);
  EdgeList more = base;
  // Add a few edges deterministically.
  more.add(0, 10);
  more.add(3, 15);
  more.add(7, 19);
  const CsrGraph g2 = CsrGraph::from_edges(more);
  const QueryGraph q = q_glet2();
  const Coloring chi1(g1.num_vertices(), q.num_nodes(), 9);
  const Coloring chi2(g2.num_vertices(), q.num_nodes(), 9);
  ExecOptions opts;
  CountingSession s1(g1, q, make_plan(q), opts);
  CountingSession s2(g2, q, make_plan(q), opts);
  EXPECT_LE(s1.count_colorful(chi1).colorful,
            s2.count_colorful(chi2).colorful);
}

TEST(ColorfulBounds, DisjointColorClassesForbidMatches) {
  // Bipartite-style coloring where one side gets color 0 and the other
  // color 1 (k=3): a triangle needs 3 distinct colors, so count is 0.
  const CsrGraph g = complete_bipartite(4, 4);
  std::vector<std::uint8_t> colors(8, 0);
  for (int i = 4; i < 8; ++i) colors[i] = 1;
  const Coloring chi(std::move(colors), 3);
  ExecOptions opts;
  const QueryGraph q = q_cycle(3);
  CountingSession session(g, q, make_plan(q), opts);
  EXPECT_EQ(session.count_colorful(chi).colorful, 0u);
}

TEST(ColorfulBounds, PathOnTwoColorClassesCounts) {
  // On K_{2,2} with alternating colors {0,1} and k=3, a 3-path (2 edges,
  // 3 nodes) needs 3 distinct colors -> 0; a 2-path (1 edge) needs 2.
  const CsrGraph g = complete_bipartite(2, 2);
  std::vector<std::uint8_t> colors{0, 0, 1, 1};
  const Coloring chi2(colors, 2);
  ExecOptions opts;
  const QueryGraph edge = q_path(2);
  CountingSession session(g, edge, make_plan(edge), opts);
  // 4 undirected edges, both orientations, all cross-color: 8 matches.
  EXPECT_EQ(session.count_colorful(chi2).colorful, 8u);
}

}  // namespace
}  // namespace ccbt
