#pragma once
// DistTable: a projection table physically sharded across virtual ranks.
//
// Section 7: every entry (u, v, α) is owned by the rank owning the vertex
// in its *home slot* (slot 1 = the frontier while a path table is being
// extended; slot 0 once a block table is stored for child lookups). A
// DistTable is the union of per-rank ProjTable shards; a table is "well
// placed" when every entry sits on the owner of its home-slot vertex.
//
// Movement between placements (resharding, transposition) happens through
// VirtualComm supersteps, so the transport statistics account for it.
//
// Parameterized on the batch width B: shards hold lane-indexed entries
// and every superstep serializes whole lane-count vectors, so a batched
// distributed run moves one message per signature-blocked row.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ccbt/dist/comm.hpp"
#include "ccbt/graph/partition.hpp"
#include "ccbt/table/proj_table.hpp"
#include "ccbt/util/error.hpp"

namespace ccbt {

template <int B>
class DistTableT {
 public:
  using Entry = TableEntryT<B>;
  using Vec = typename LaneOps<B>::Vec;

  DistTableT() = default;

  /// Drain every rank's inbox (as delivered by the last exchange) into
  /// its shard, accumulating duplicate keys, and seal each shard in
  /// `order` (`domain` enables the shards' O(1) bucket index). Throws
  /// BudgetExceeded when the total entry count exceeds `budget`.
  ///
  /// Batched widths adopt the inbox rows flat (duplicates merge at the
  /// shard's first sorting seal), mirroring the shared engine's flat
  /// accumulation so both engines iterate identical row multisets — the
  /// invariant behind their exact load-model parity.
  static DistTableT collect(int arity, int home_slot, VirtualCommT<B>& comm,
                            SortOrder order, std::size_t budget,
                            VertexId domain = 0,
                            LaneSealHint hint = LaneSealHint::kStore) {
    DistTableT t;
    t.arity_ = arity;
    t.home_slot_ = home_slot;
    t.shards_.resize(comm.num_ranks());
    std::size_t total = 0;
    for (std::uint32_t r = 0; r < comm.num_ranks(); ++r) {
      ProjTableT<B> shard;
      if constexpr (B == 1) {
        const std::vector<Entry>& in = comm.inbox(r);
        AccumMapT<B> map(in.size());
        for (const Entry& e : in) map.add(e.key, e.cnt);
        shard = ProjTableT<B>::from_map(arity, std::move(map));
      } else {
        shard = ProjTableT<B>::from_flat(arity, comm.take_inbox(r));
      }
      total += shard.size();
      if (total > budget) {
        throw BudgetExceeded("distributed table exceeded " +
                             std::to_string(budget) + " entries");
      }
      shard.seal(order, domain, hint);
      t.shards_[r] = std::move(shard);
    }
    return t;
  }

  /// Materialize from per-rank row sequences (checkpoint restore), one
  /// shard per rank, sealed in `order` with `hint`. Rows decoded from a
  /// checkpoint arrive in sealed order with unique keys, so re-sealing
  /// (a stable sort + deterministic layout choice) reproduces the
  /// checkpointed table bit for bit.
  static DistTableT from_shard_rows(int arity, int home_slot,
                                    std::vector<std::vector<Entry>> rows,
                                    SortOrder order, VertexId domain,
                                    LaneSealHint hint) {
    DistTableT t;
    t.arity_ = arity;
    t.home_slot_ = home_slot;
    t.shards_.resize(rows.size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
      ProjTableT<B> shard;
      if constexpr (B == 1) {
        AccumMapT<B> map(rows[r].size());
        for (const Entry& e : rows[r]) map.add(e.key, e.cnt);
        shard = ProjTableT<B>::from_map(arity, std::move(map));
      } else {
        shard = ProjTableT<B>::from_flat(arity, std::move(rows[r]));
      }
      shard.seal(order, domain, hint);
      t.shards_[r] = std::move(shard);
    }
    return t;
  }

  /// Materialize from per-rank accumulation maps (the cycle solver's
  /// merge sinks), one shard per map; shards stay unsealed.
  static DistTableT from_maps(int arity, int home_slot,
                              std::vector<AccumMapT<B>> maps) {
    DistTableT t;
    t.arity_ = arity;
    t.home_slot_ = home_slot;
    t.shards_.reserve(maps.size());
    for (AccumMapT<B>& m : maps) {
      t.shards_.push_back(ProjTableT<B>::from_map(arity, std::move(m)));
    }
    return t;
  }

  int arity() const { return arity_; }
  int home_slot() const { return home_slot_; }

  std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(shards_.size());
  }

  /// Total entries across all shards.
  std::size_t size() const {
    std::size_t sum = 0;
    for (const auto& s : shards_) sum += s.size();
    return sum;
  }

  /// Total lane-0 count across all shards.
  Count total() const {
    Count sum = 0;
    for (const auto& s : shards_) sum += s.total();
    return sum;
  }

  const ProjTableT<B>& shard(std::uint32_t rank) const {
    return shards_[rank];
  }

  /// Per-shard lane-0 totals, one slot per rank (allreduce input).
  std::vector<Count> shard_totals() const {
    std::vector<Count> parts(shards_.size(), 0);
    for (std::size_t r = 0; r < shards_.size(); ++r) {
      parts[r] = shards_[r].total();
    }
    return parts;
  }

  /// Per-shard per-lane totals (lane-wise allreduce input).
  std::vector<Vec> shard_lane_totals() const {
    std::vector<Vec> parts(shards_.size());
    for (std::size_t r = 0; r < shards_.size(); ++r) {
      parts[r] = shards_[r].lane_totals();
    }
    return parts;
  }

  /// Every entry lives on the owner of its home-slot vertex.
  bool well_placed(const BlockPartition& part) const {
    for (std::uint32_t r = 0; r < num_shards(); ++r) {
      bool ok = true;
      shards_[r].for_each_entry([&](const Entry& e) {
        ok = ok && part.owner(e.key.v[home_slot_]) == r;
      });
      if (!ok) return false;
    }
    return true;
  }

  /// Flatten into one shared-memory table, accumulating duplicate keys.
  ProjTableT<B> gather() const {
    AccumMapT<B> map(size());
    for (const auto& s : shards_) {
      s.for_each_entry([&](const Entry& e) { map.add(e.key, e.cnt); });
    }
    return ProjTableT<B>::from_map(arity_, std::move(map));
  }

  /// Move every entry to the owner of its `new_home` slot vertex (one
  /// superstep), sealing shards in `order`.
  DistTableT resharded(int new_home, VirtualCommT<B>& comm,
                       const BlockPartition& part, SortOrder order,
                       std::size_t budget, VertexId domain = 0,
                       LaneSealHint hint = LaneSealHint::kStore) const {
    for (std::uint32_t r = 0; r < num_shards(); ++r) {
      shards_[r].for_each_entry([&](const Entry& e) {
        comm.send(r, part.owner(e.key.v[new_home]), e);
      });
    }
    comm.exchange();
    return collect(arity_, new_home, comm, order, budget, domain, hint);
  }

  /// Swap key slots 0 and 1 and re-home (one superstep); shards sealed
  /// kByV0 — the storage convention for child-block tables.
  DistTableT transposed(VirtualCommT<B>& comm, const BlockPartition& part,
                        std::size_t budget, VertexId domain = 0,
                        LaneSealHint hint = LaneSealHint::kStore) const {
    for (std::uint32_t r = 0; r < num_shards(); ++r) {
      shards_[r].for_each_entry([&](const Entry& e) {
        Entry t = e;
        std::swap(t.key.v[0], t.key.v[1]);
        comm.send(r, part.owner(t.key.v[home_slot_]), t);
      });
    }
    comm.exchange();
    return collect(arity_, home_slot_, comm, SortOrder::kByV0, budget,
                   domain, hint);
  }

  /// Seal every shard (used before per-shard merge joins and when a
  /// table is stored; `hint` drives the per-shard layout choice).
  void seal_shards(SortOrder order, VertexId domain = 0,
                   LaneSealHint hint = LaneSealHint::kStore) {
    for (auto& s : shards_) s.seal(order, domain, hint);
  }

 private:
  int arity_ = 0;
  int home_slot_ = 0;
  std::vector<ProjTableT<B>> shards_;
};

using DistTable = DistTableT<1>;

extern template class DistTableT<1>;
extern template class DistTableT<2>;
extern template class DistTableT<4>;
extern template class DistTableT<8>;

}  // namespace ccbt
