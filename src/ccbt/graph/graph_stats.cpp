#include "ccbt/graph/graph_stats.hpp"

#include <bit>
#include <cmath>

namespace ccbt {

GraphStats compute_stats(const CsrGraph& g) {
  GraphStats s;
  s.num_vertices = g.num_vertices();
  s.num_edges = g.num_edges();
  s.max_degree = g.max_degree();
  if (s.num_vertices == 0) return s;
  double sum = 0.0, sum_sq = 0.0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const double d = g.degree(u);
    sum += d;
    sum_sq += d * d;
  }
  s.avg_degree = sum / static_cast<double>(s.num_vertices);
  if (sum > 0.0 && s.avg_degree > 0.0) {
    s.skew = sum_sq / (sum * s.avg_degree);
  }
  const double heavy_cut = 8.0 * s.avg_degree;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    if (g.degree(u) >= heavy_cut) ++s.heavy_vertices;
  }
  return s;
}

double global_clustering(const CsrGraph& g) {
  // Closed wedges via the lowest-vertex rule: each triangle contributes
  // one hit at its smallest-id vertex, so multiply back by 3.
  std::uint64_t wedges = 0;
  std::uint64_t closed = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const std::uint64_t d = g.degree(u);
    wedges += d * (d - 1) / 2;
    const auto nbrs = g.neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] < u) continue;
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        if (nbrs[j] < u) continue;
        if (g.has_edge(nbrs[i], nbrs[j])) ++closed;
      }
    }
  }
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(closed) / static_cast<double>(wedges);
}

std::vector<std::size_t> degree_histogram_pow2(const CsrGraph& g) {
  std::vector<std::size_t> hist;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const std::uint32_t d = g.degree(u);
    if (d == 0) continue;
    const int bucket = std::bit_width(d) - 1;  // floor(log2 d)
    if (static_cast<std::size_t>(bucket) >= hist.size()) {
      hist.resize(bucket + 1, 0);
    }
    ++hist[bucket];
  }
  return hist;
}

}  // namespace ccbt
