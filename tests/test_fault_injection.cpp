// Fault-tolerance properties: deterministic injection (same seed, same
// faults, same counters), recovery transparency (a replayed run is
// bit-identical to the fault-free run, per lane, at every batch width),
// checkpoint integrity, and unbiased degraded-mode estimation.
//
// CI sweeps extra FaultPlan seeds through the CCBT_FAULT_SEED env var.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "ccbt/core/estimator.hpp"
#include "ccbt/core/exact.hpp"
#include "ccbt/core/planted.hpp"
#include "ccbt/dist/checkpoint.hpp"
#include "ccbt/dist/dist_engine.hpp"
#include "ccbt/graph/generators.hpp"
#include "ccbt/query/catalog.hpp"
#include "ccbt/util/error.hpp"
#include "ccbt/util/fault.hpp"

namespace ccbt {
namespace {

// ---------------------------------------------------------------------
// FaultPlan: the schedule is a pure function of the spec.

FaultSpec lossy_spec(std::uint64_t seed) {
  FaultSpec s;
  s.seed = seed;
  s.drop_rate = 0.10;
  s.dup_rate = 0.08;
  s.delay_rate = 0.08;
  s.stall_rate = 0.02;
  s.alloc_fail_rate = 0.02;
  return s;
}

TEST(FaultPlan, SameSeedSameSchedule) {
  FaultPlan a(lossy_spec(42)), b(lossy_spec(42));
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(a.message_fate(), b.message_fate()) << "event " << i;
    EXPECT_EQ(a.rank_stalls(), b.rank_stalls()) << "event " << i;
    EXPECT_EQ(a.alloc_fails(), b.alloc_fails()) << "event " << i;
    EXPECT_EQ(a.trial_fails(), b.trial_fails()) << "event " << i;
  }
  EXPECT_EQ(a.stats().faults_injected, b.stats().faults_injected);
  EXPECT_GT(a.stats().faults_injected, 0u);
  EXPECT_GT(a.stats().drops, 0u);
  EXPECT_GT(a.stats().dups, 0u);
  EXPECT_GT(a.stats().delays, 0u);
}

TEST(FaultPlan, DifferentSeedsDiverge) {
  FaultPlan a(lossy_spec(1)), b(lossy_spec(2));
  int differing = 0;
  for (int i = 0; i < 2000; ++i) {
    differing += a.message_fate() != b.message_fate() ? 1 : 0;
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultPlan, RatesApproximatelyRespected) {
  FaultPlan p(lossy_spec(7));
  const int n = 20000;
  for (int i = 0; i < n; ++i) p.message_fate();
  // drop+dup+delay = 0.26; a 20k-sample Bernoulli mean is within ~1%.
  const double observed =
      static_cast<double>(p.stats().faults_injected) / n;
  EXPECT_NEAR(observed, 0.26, 0.02);
}

TEST(FaultPlan, MaxFaultsBudgetCapsInjection) {
  FaultSpec s = lossy_spec(3);
  s.max_faults = 5;
  FaultPlan p(s);
  for (int i = 0; i < 5000; ++i) p.message_fate();
  EXPECT_EQ(p.stats().faults_injected, 5u);
}

TEST(FaultPlan, DefaultSpecInjectsNothing) {
  FaultPlan p{FaultSpec{}};
  EXPECT_FALSE(p.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(p.message_fate(), FaultPlan::Fate::kDeliver);
    EXPECT_FALSE(p.rank_stalls());
    EXPECT_FALSE(p.alloc_fails());
    EXPECT_FALSE(p.trial_fails());
  }
  EXPECT_EQ(p.stats().faults_injected, 0u);
}

TEST(FaultBackoff, GrowsExponentiallyWithinJitterBounds) {
  Rng jitter(9);
  for (std::uint32_t attempt = 0; attempt < 8; ++attempt) {
    const double ms = fault_backoff_ms(2.0, attempt, jitter);
    const double base = 2.0 * static_cast<double>(1u << attempt);
    EXPECT_GE(ms, 0.5 * base);
    EXPECT_LT(ms, 1.5 * base);
  }
}

// ---------------------------------------------------------------------
// Typed errors.

TEST(ErrorCodes, RetryableClassification) {
  EXPECT_TRUE(error_code_retryable(ErrorCode::kCommTimeout));
  EXPECT_TRUE(error_code_retryable(ErrorCode::kRankFailed));
  EXPECT_TRUE(error_code_retryable(ErrorCode::kAllocFailed));
  EXPECT_FALSE(error_code_retryable(ErrorCode::kGeneric));
  EXPECT_FALSE(error_code_retryable(ErrorCode::kUnsupportedQuery));
  EXPECT_FALSE(error_code_retryable(ErrorCode::kBudgetExceeded));
  EXPECT_FALSE(error_code_retryable(ErrorCode::kCheckpointCorrupt));
  EXPECT_FALSE(error_code_retryable(ErrorCode::kRetriesExhausted));
}

TEST(ErrorCodes, SubclassesCarryTheirCodes) {
  EXPECT_EQ(UnsupportedQuery("x").code(), ErrorCode::kUnsupportedQuery);
  EXPECT_EQ(BudgetExceeded("x").code(), ErrorCode::kBudgetExceeded);
  EXPECT_EQ(CommTimeout("x").code(), ErrorCode::kCommTimeout);
  EXPECT_EQ(RankFailed("x").code(), ErrorCode::kRankFailed);
  EXPECT_EQ(CheckpointCorrupt("x").code(), ErrorCode::kCheckpointCorrupt);
  EXPECT_TRUE(CommTimeout("x").retryable());
  EXPECT_FALSE(BudgetExceeded("x").retryable());
}

TEST(ErrorCodes, ChainingPrependsContextAndKeepsCode) {
  const CommTimeout cause("superstep delivery failed after 4 attempts");
  const Error chained("run_plan_distributed: block 3", cause);
  EXPECT_EQ(chained.code(), ErrorCode::kCommTimeout);
  EXPECT_TRUE(chained.retryable());
  EXPECT_STREQ(chained.what(),
               "run_plan_distributed: block 3: superstep delivery failed "
               "after 4 attempts");
}

// ---------------------------------------------------------------------
// Checkpoint shard images: roundtrip and corruption detection.

template <int B>
ProjTableT<B> make_sealed_shard(int rows) {
  std::vector<TableEntryT<B>> entries;
  for (int i = 0; i < rows; ++i) {
    TableEntryT<B> e;
    e.key.v[0] = static_cast<VertexId>((rows - i) * 3);
    e.key.v[1] = static_cast<VertexId>(i);
    e.key.sig = static_cast<Signature>(i & 0x1f);
    if constexpr (B == 1) {
      e.cnt = static_cast<Count>(i + 1);
    } else {
      for (int l = 0; l < B; ++l) {
        // Mixed lane occupancy exercises the compressed layouts.
        e.cnt[l] = (i + l) % 3 == 0 ? 0 : static_cast<Count>(i * 7 + l);
      }
    }
    entries.push_back(e);
  }
  ProjTableT<B> shard = ProjTableT<B>::from_flat(2, std::move(entries));
  shard.seal(SortOrder::kByV0, /*domain=*/1000, LaneSealHint::kStore);
  return shard;
}

template <int B>
void roundtrip_one_width() {
  const ProjTableT<B> shard = make_sealed_shard<B>(64);
  const std::vector<std::uint8_t> image = checkpoint_encode_shard<B>(shard);
  const std::vector<TableEntryT<B>> rows = checkpoint_decode_shard<B>(image);
  ASSERT_EQ(rows.size(), shard.size());
  std::size_t i = 0;
  shard.for_each_entry([&](const TableEntryT<B>& e) {
    EXPECT_EQ(rows[i].key.v[0], e.key.v[0]);
    EXPECT_EQ(rows[i].key.v[1], e.key.v[1]);
    EXPECT_EQ(rows[i].key.sig, e.key.sig);
    if constexpr (B == 1) {
      EXPECT_EQ(rows[i].cnt, e.cnt);
    } else {
      for (int l = 0; l < B; ++l) EXPECT_EQ(rows[i].cnt[l], e.cnt[l]);
    }
    ++i;
  });
}

TEST(Checkpoint, ShardRoundtripAllWidths) {
  roundtrip_one_width<1>();
  roundtrip_one_width<2>();
  roundtrip_one_width<4>();
  roundtrip_one_width<8>();
}

TEST(Checkpoint, CorruptionIsDetected) {
  std::vector<std::uint8_t> image =
      checkpoint_encode_shard<4>(make_sealed_shard<4>(16));

  std::vector<std::uint8_t> bad_magic = image;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW(checkpoint_decode_shard<4>(bad_magic), CheckpointCorrupt);

  std::vector<std::uint8_t> truncated(image.begin(), image.end() - 3);
  EXPECT_THROW(checkpoint_decode_shard<4>(truncated), CheckpointCorrupt);

  std::vector<std::uint8_t> trailing = image;
  trailing.push_back(0);
  EXPECT_THROW(checkpoint_decode_shard<4>(trailing), CheckpointCorrupt);

  EXPECT_THROW(checkpoint_decode_shard<4>(std::vector<std::uint8_t>(5)),
               CheckpointCorrupt);

  // Oversized lane mask for the claimed width.
  std::vector<std::uint8_t> bad_mask = image;
  bad_mask[sizeof(std::uint32_t) + sizeof(std::uint64_t) + kWireKeyBytes] =
      0xff;  // mask 0xff needs B=8; this image is B=4
  EXPECT_THROW(checkpoint_decode_shard<4>(bad_mask), CheckpointCorrupt);
}

// ---------------------------------------------------------------------
// The headline property: a faulty run that recovers (retransmit and/or
// replay) reproduces the fault-free per-lane counts bit for bit.

std::vector<std::uint64_t> extra_sweep_seeds() {
  std::vector<std::uint64_t> seeds;
  if (const char* env = std::getenv("CCBT_FAULT_SEED")) {
    seeds.push_back(std::strtoull(env, nullptr, 10));
  }
  return seeds;
}

ExecOptions faulty_opts(std::uint64_t seed) {
  ExecOptions opts;
  opts.dist.faults = lossy_spec(seed);
  opts.dist.max_retries = 8;
  opts.dist.max_replays = 8;
  opts.dist.checkpoint_interval = 4;
  return opts;
}

TEST(FaultRecovery, ReplayBitIdenticalAcrossBatchWidths) {
  const CsrGraph g = erdos_renyi(36, 130, 5);
  const QueryGraph q = named_query("ecoli1");
  const Plan plan = make_plan(q);

  std::vector<std::uint64_t> seeds = {11, 12, 13};
  for (std::uint64_t s : extra_sweep_seeds()) seeds.push_back(s);

  for (int width : {1, 2, 4, 8}) {
    std::vector<Coloring> lanes;
    for (int l = 0; l < width; ++l) {
      lanes.emplace_back(g.num_vertices(), q.num_nodes(), 900 + l);
    }
    const ColoringBatch batch{std::span<const Coloring>(lanes)};
    const DistStats clean =
        run_plan_distributed(g, plan.tree, batch, /*ranks=*/5, {});
    ASSERT_EQ(clean.faults.faults_injected, 0u);

    std::uint64_t total_faults = 0, total_recoveries = 0;
    for (std::uint64_t seed : seeds) {
      const DistStats faulty = run_plan_distributed(
          g, plan.tree, batch, /*ranks=*/5, faulty_opts(seed));
      for (int l = 0; l < width; ++l) {
        EXPECT_EQ(faulty.colorful_lane[l], clean.colorful_lane[l])
            << "B=" << width << " seed=" << seed << " lane " << l;
      }
      total_faults += faulty.faults.faults_injected;
      total_recoveries += faulty.faults.retries + faulty.faults.replays;
    }
    // The sweep must actually exercise the recovery machinery.
    EXPECT_GT(total_faults, 0u) << "B=" << width;
    EXPECT_GT(total_recoveries, 0u) << "B=" << width;
  }
}

TEST(FaultRecovery, CheckpointReplayRecoversAllocFailures) {
  // Alloc-failure-only schedule: recovery comes purely from the
  // checkpoint-replay layer (no transport faults to retransmit).
  const CsrGraph g = erdos_renyi(32, 110, 6);
  const QueryGraph q = named_query("glet2");
  const Plan plan = make_plan(q);
  const Coloring chi(g.num_vertices(), q.num_nodes(), 77);
  const DistStats clean = run_plan_distributed(g, plan.tree, chi, 4, {});

  std::uint64_t total_replays = 0;
  for (std::uint64_t seed : {21u, 22u, 23u, 24u}) {
    ExecOptions opts;
    opts.dist.faults.seed = seed;
    opts.dist.faults.alloc_fail_rate = 0.05;
    opts.dist.max_replays = 16;
    opts.dist.checkpoint_interval = 2;
    const DistStats faulty =
        run_plan_distributed(g, plan.tree, chi, 4, opts);
    EXPECT_EQ(faulty.colorful, clean.colorful) << "seed " << seed;
    total_replays += faulty.faults.replays;
    if (faulty.faults.replays > 0) {
      EXPECT_TRUE(faulty.recovered());
      EXPECT_GT(faulty.faults.checkpoints_taken, 0u);
      EXPECT_GT(faulty.faults.checkpoint_bytes, 0u);
    }
  }
  EXPECT_GT(total_replays, 0u);
}

TEST(FaultRecovery, SameSeedSameCounters) {
  const CsrGraph g = erdos_renyi(30, 100, 8);
  const QueryGraph q = named_query("glet1");
  const Plan plan = make_plan(q);
  const Coloring chi(g.num_vertices(), q.num_nodes(), 5);

  const DistStats a =
      run_plan_distributed(g, plan.tree, chi, 4, faulty_opts(99));
  const DistStats b =
      run_plan_distributed(g, plan.tree, chi, 4, faulty_opts(99));
  EXPECT_EQ(a.colorful, b.colorful);
  EXPECT_EQ(a.faults.faults_injected, b.faults.faults_injected);
  EXPECT_EQ(a.faults.drops, b.faults.drops);
  EXPECT_EQ(a.faults.dups, b.faults.dups);
  EXPECT_EQ(a.faults.delays, b.faults.delays);
  EXPECT_EQ(a.faults.stalls, b.faults.stalls);
  EXPECT_EQ(a.faults.alloc_fails, b.faults.alloc_fails);
  EXPECT_EQ(a.faults.retries, b.faults.retries);
  EXPECT_EQ(a.faults.replays, b.faults.replays);
  EXPECT_EQ(a.faults.retransmit_bytes, b.faults.retransmit_bytes);
  EXPECT_EQ(a.faults.checkpoints_taken, b.faults.checkpoints_taken);
  EXPECT_EQ(a.faults.checkpoint_bytes, b.faults.checkpoint_bytes);
  EXPECT_EQ(a.transport.supersteps, b.transport.supersteps);
  EXPECT_DOUBLE_EQ(a.faults.backoff_virtual_ms, b.faults.backoff_virtual_ms);
}

TEST(FaultRecovery, FaultFreePathReportsZeroFaultStats) {
  const CsrGraph g = erdos_renyi(24, 70, 9);
  const QueryGraph q = q_cycle(5);
  const DistStats d = run_plan_distributed(
      g, make_plan(q).tree, Coloring(g.num_vertices(), 5, 1), 4, {});
  EXPECT_EQ(d.faults.faults_injected, 0u);
  EXPECT_EQ(d.faults.retries, 0u);
  EXPECT_EQ(d.faults.replays, 0u);
  EXPECT_EQ(d.faults.checkpoints_taken, 0u);
  EXPECT_FALSE(d.recovered());
}

TEST(FaultRecovery, ExhaustedBudgetsThrowRetryableChainedError) {
  const CsrGraph g = erdos_renyi(24, 70, 10);
  const QueryGraph q = q_cycle(5);
  const Plan plan = make_plan(q);
  const Coloring chi(g.num_vertices(), 5, 2);
  ExecOptions opts;
  opts.dist.faults.seed = 1;
  opts.dist.faults.drop_rate = 0.9;
  opts.dist.max_retries = 1;
  opts.dist.max_replays = 1;
  try {
    run_plan_distributed(g, plan.tree, chi, 4, opts);
    FAIL() << "expected the recovery budget to be exhausted";
  } catch (const Error& e) {
    EXPECT_TRUE(e.retryable()) << error_code_name(e.code());
    EXPECT_NE(std::string(e.what()).find("replay budget exhausted"),
              std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------
// Degraded-mode estimation.

TEST(DegradedEstimator, SurvivorsMatchFaultFreeTrialsExactly) {
  // Lane fates are decided by an independent stream before execution, so
  // the degraded run's surviving estimates are exactly the fault-free
  // run's per-trial sequence with the dropped indices removed.
  const CsrGraph g = erdos_renyi(36, 120, 14);
  const QueryGraph q = q_cycle(4);
  EstimatorOptions clean_opts;
  clean_opts.trials = 32;
  clean_opts.seed = 7;
  clean_opts.batch = 4;
  const EstimatorResult clean = estimate_matches(g, q, clean_opts);
  EXPECT_FALSE(clean.degraded);
  EXPECT_EQ(clean.trials_dropped, 0);
  EXPECT_EQ(clean.trials_planned, 32);
  EXPECT_DOUBLE_EQ(clean.cv_widened, clean.cv);

  EstimatorOptions opts = clean_opts;
  opts.faults.seed = 3;
  opts.faults.trial_fail_rate = 0.25;
  const EstimatorResult degraded = estimate_matches(g, q, opts);
  EXPECT_TRUE(degraded.degraded);
  EXPECT_GT(degraded.trials_dropped, 0);
  EXPECT_EQ(degraded.trials_planned, 32);
  EXPECT_EQ(static_cast<int>(degraded.estimate_per_trial.size()),
            32 - degraded.trials_dropped);
  EXPECT_GT(degraded.cv_widened, degraded.cv);

  // Survivor subsequence check: replay the fault stream to find which
  // trials were dropped.
  FaultPlan replayed(opts.faults);
  std::size_t d = 0;
  for (int t = 0; t < 32; ++t) {
    if (replayed.trial_fails()) continue;
    ASSERT_LT(d, degraded.estimate_per_trial.size());
    EXPECT_DOUBLE_EQ(degraded.estimate_per_trial[d],
                     clean.estimate_per_trial[t])
        << "trial " << t;
    ++d;
  }
  EXPECT_EQ(d, degraded.estimate_per_trial.size());
}

TEST(DegradedEstimator, UnbiasedOnPlantedGraph) {
  const QueryGraph q = q_cycle(4);
  const PlantedGraph pg = plant_copies(q, 12, 220, 150, 31);
  const Count exact = count_matches_exact(pg.graph, q);
  EstimatorOptions opts;
  opts.trials = 300;
  opts.seed = 17;
  opts.batch = 8;
  opts.faults.seed = 5;
  opts.faults.trial_fail_rate = 0.2;
  const EstimatorResult r = estimate_matches(pg.graph, q, opts);
  EXPECT_TRUE(r.degraded);
  const int survivors = r.trials_planned - r.trials_dropped;
  ASSERT_GT(survivors, 0);
  const double stderr_est =
      std::sqrt(r.variance / static_cast<double>(survivors));
  EXPECT_NEAR(r.matches, static_cast<double>(exact), 4.0 * stderr_est + 1.0);
}

TEST(DegradedEstimator, AllTrialsLostThrowsRetriesExhausted) {
  const CsrGraph g = erdos_renyi(20, 50, 2);
  EstimatorOptions opts;
  opts.trials = 8;
  opts.faults.trial_fail_rate = 1.0;
  try {
    estimate_matches(g, q_cycle(3), opts);
    FAIL() << "expected kRetriesExhausted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kRetriesExhausted);
  }
}

TEST(DegradedEstimator, DegradedModeOffThrows) {
  const CsrGraph g = erdos_renyi(20, 50, 2);
  EstimatorOptions opts;
  opts.trials = 32;
  opts.faults.seed = 4;
  opts.faults.trial_fail_rate = 0.5;
  opts.allow_degraded = false;
  EXPECT_THROW(estimate_matches(g, q_cycle(3), opts), RankFailed);
}

TEST(DegradedEstimator, AdaptiveConvergesOnSurvivors) {
  const CsrGraph g = erdos_renyi(40, 150, 19);
  const QueryGraph q = q_cycle(3);
  AdaptiveOptions opts;
  opts.target_cv = 0.5;
  opts.min_trials = 6;
  opts.max_trials = 60;
  opts.seed = 23;
  opts.faults.seed = 6;
  opts.faults.trial_fail_rate = 0.3;
  const AdaptiveResult r = estimate_matches_adaptive(g, q, opts);
  const int survivors = static_cast<int>(r.estimate.estimate_per_trial.size());
  EXPECT_EQ(survivors,
            r.estimate.trials_planned - r.estimate.trials_dropped);
  if (r.converged) {
    // min_trials counts SURVIVING trials, not attempts.
    EXPECT_GE(survivors, opts.min_trials);
  }
  EXPECT_TRUE(r.estimate.degraded);
}

}  // namespace
}  // namespace ccbt
