#pragma once
// Lane-compressed count rows (à la the compact-row encoding of Malík et
// al., extended to the lane dimension the way SubGraph2Vec's vectorized
// counting pays for itself): a batched entry's dense `Count cnt[B]` is
// replaced, per *table*, by
//
//   * a per-row lane-occupancy bitmask (which lanes carry a nonzero
//     count), and
//   * a variable-width packed payload: the occupied lanes' counts, in
//     ascending lane order, as u16 or u32 words with a u64 overflow
//     escape. The width is chosen once per table at seal() time from the
//     observed maximum count.
//
// With k >= 4 colors random colorings rarely share signatures, so a
// B = 8 row typically carries 1–2 live lanes: 64 bytes of dense counts
// shrink to a 1-byte mask plus 2–16 payload bytes. Tables whose rows are
// genuinely dense (every lane live, u64-scale counts) stay in the dense
// `u64[B]` layout, which is what the SIMD kernels want — the chooser in
// `lane_layout_profitable` makes that call from the measured density.
//
// The same encoding doubles as the wire format of the virtual-MPI
// transport (dist/comm.hpp): every serialized row pays for exactly the
// lanes it carries, so transport volume tracks true lane density instead
// of the dense vector's worst case.

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "ccbt/table/table_key.hpp"

namespace ccbt {

/// Packed count word size; the enumerator value is the byte width.
enum class PayloadWidth : std::uint8_t { kU16 = 2, kU32 = 4, kU64 = 8 };

/// How a sealed table will be consumed; the seal-time layout chooser's
/// second input (the first is the observed lane density / max count).
enum class LaneSealHint : std::uint8_t {
  kStream,  // consumed once right after sealing: stay dense (SIMD path)
  kStore,   // stored for repeated probes: re-pack when smaller
};

inline constexpr int payload_width_bytes(PayloadWidth w) {
  return static_cast<int>(w);
}

/// Index 0/1/2 for u16/u32/u64 (histogram slots, wire width codes).
inline constexpr int payload_width_code(PayloadWidth w) {
  switch (w) {
    case PayloadWidth::kU16: return 0;
    case PayloadWidth::kU32: return 1;
    case PayloadWidth::kU64: return 2;
  }
  return 2;
}

inline constexpr PayloadWidth payload_width_from_code(int code) {
  return code == 0   ? PayloadWidth::kU16
         : code == 1 ? PayloadWidth::kU32
                     : PayloadWidth::kU64;
}

/// Narrowest width that represents every count up to `max_count` exactly
/// (the u16 -> u32 -> u64 escalation of the overflow escape).
inline constexpr PayloadWidth choose_payload_width(Count max_count) {
  if (max_count <= 0xFFFFull) return PayloadWidth::kU16;
  if (max_count <= 0xFFFFFFFFull) return PayloadWidth::kU32;
  return PayloadWidth::kU64;
}

/// What one density scan of a table's rows observed, plus the layout the
/// chooser picked from it. `rows == 0` means "never scanned" (unsorted or
/// B = 1 tables).
struct LaneLayoutInfo {
  std::uint64_t rows = 0;
  std::uint64_t lane_slots = 0;      // rows * B
  std::uint64_t lanes_occupied = 0;  // nonzero (mask-set) lane slots
  Count max_count = 0;
  bool packed = false;               // table re-packed to the compressed layout
  PayloadWidth width = PayloadWidth::kU64;
  std::uint64_t dense_bytes = 0;     // rows * sizeof(dense entry)
  std::uint64_t packed_bytes = 0;    // keys + masks + offsets + payload

  double density() const {
    return lane_slots == 0
               ? 0.0
               : static_cast<double>(lanes_occupied) /
                     static_cast<double>(lane_slots);
  }
};

/// Run-wide accumulation of LaneLayoutInfo over every sealed table —
/// the telemetry surfaced through ExecStats / DistStats so the layout
/// chooser's decisions are auditable (BENCH_batch.json histograms).
struct LaneTelemetry {
  std::uint64_t rows = 0;
  std::uint64_t lane_slots = 0;
  std::uint64_t lanes_occupied = 0;
  std::uint64_t rows_packed = 0;
  std::array<std::uint64_t, 3> width_rows{};  // packed rows per u16/u32/u64
  std::uint64_t packed_payload_bytes = 0;
  std::uint64_t dense_bytes = 0;

  void note(const LaneLayoutInfo& info) {
    if (info.rows == 0) return;
    rows += info.rows;
    lane_slots += info.lane_slots;
    lanes_occupied += info.lanes_occupied;
    dense_bytes += info.dense_bytes;
    if (info.packed) {
      rows_packed += info.rows;
      width_rows[payload_width_code(info.width)] += info.rows;
      packed_payload_bytes += info.packed_bytes;
    }
  }

  double density() const {
    return lane_slots == 0
               ? 0.0
               : static_cast<double>(lanes_occupied) /
                     static_cast<double>(lane_slots);
  }
};

/// Density scan over dense rows: occupancy, max count, and both layouts'
/// byte footprints (the chooser's inputs).
template <int B>
LaneLayoutInfo scan_lane_layout(std::span<const TableEntryT<B>> rows) {
  LaneLayoutInfo info;
  info.rows = rows.size();
  info.lane_slots = rows.size() * static_cast<std::uint64_t>(B);
  for (const TableEntryT<B>& e : rows) {
    for (int l = 0; l < B; ++l) {
      const Count c = LaneOps<B>::lane(e.cnt, l);
      info.lanes_occupied += (c != 0);
      if (c > info.max_count) info.max_count = c;
    }
  }
  info.width = choose_payload_width(info.max_count);
  info.dense_bytes = info.rows * sizeof(TableEntryT<B>);
  // Packed footprint: unpadded key + 1-byte mask + 4-byte word offset per
  // row, plus one payload word per occupied lane.
  info.packed_bytes =
      info.rows * (sizeof(TableKey) + 1 + 4) +
      info.lanes_occupied * static_cast<std::uint64_t>(
                                payload_width_bytes(info.width));
  return info;
}

/// The per-table layout decision: re-pack only when the compressed layout
/// saves at least 1/8 of the dense bytes. All-lanes-dense u64 tables fail
/// this (their packed form is *larger*), which keeps the SIMD-friendly
/// dense path for exactly the tables that want it. Tables whose payload
/// would overflow the u32 word offsets stay dense too.
inline bool lane_layout_profitable(const LaneLayoutInfo& info) {
  return info.rows > 0 && info.packed_bytes * 8 <= info.dense_bytes * 7 &&
         info.lanes_occupied < 0xFFFFFFFFull;
}

/// A read-only view of one lane-compressed row: the occupancy mask plus a
/// pointer to its packed count words. This is the unit the join/extend
/// kernels consume — to_vec() widens into the dense lane vector the
/// per-entry kernels operate on.
template <int B>
struct LaneRowViewT {
  const TableKey* key = nullptr;
  LaneMask mask = 0;
  PayloadWidth width = PayloadWidth::kU64;
  const std::uint8_t* words = nullptr;  // packed counts, ascending lane

  Count word(int j) const {
    const int w = payload_width_bytes(width);
    std::uint64_t v = 0;
    std::memcpy(&v, words + static_cast<std::size_t>(j) * w, w);
    return v;
  }

  /// Count of lane l (0 when l is not occupied).
  Count lane(int l) const {
    if (((mask >> l) & 1u) == 0) return 0;
    const int j = std::popcount(mask & ((LaneMask{1} << l) - 1u));
    return word(j);
  }

  typename LaneOps<B>::Vec to_vec() const {
    auto v = LaneOps<B>::zero();
    int j = 0;
    for (LaneMask m = mask; m != 0; m &= m - 1) {
      LaneOps<B>::set_lane(v, std::countr_zero(m), word(j++));
    }
    return v;
  }
};

/// Columnar store for the packed payloads of a whole table: one mask and
/// one word-offset per row, plus a byte pool of packed counts in the
/// table's chosen width. Rows append in order; access is O(1) by index.
template <int B>
class LanePayloadT {
 public:
  using Vec = typename LaneOps<B>::Vec;

  void reset(PayloadWidth w, std::size_t rows_hint,
             std::uint64_t words_hint) {
    width_ = w;
    masks_.clear();
    off_.assign(1, 0);
    bytes_.clear();
    masks_.reserve(rows_hint);
    off_.reserve(rows_hint + 1);
    bytes_.reserve(words_hint *
                   static_cast<std::uint64_t>(payload_width_bytes(w)));
  }

  void append(const Vec& v) {
    LaneMask mask = 0;
    for (int l = 0; l < B; ++l) {
      mask |= static_cast<LaneMask>(LaneOps<B>::lane(v, l) != 0) << l;
    }
    const int w = payload_width_bytes(width_);
    for (LaneMask m = mask; m != 0; m &= m - 1) {
      const Count c = LaneOps<B>::lane(v, std::countr_zero(m));
      const std::size_t at = bytes_.size();
      bytes_.resize(at + w);
      std::memcpy(bytes_.data() + at, &c, w);
    }
    masks_.push_back(static_cast<std::uint8_t>(mask));
    off_.push_back(off_.back() +
                   static_cast<std::uint32_t>(std::popcount(mask)));
  }

  std::size_t rows() const { return masks_.size(); }
  PayloadWidth width() const { return width_; }
  std::uint64_t payload_bytes() const { return bytes_.size(); }

  LaneRowViewT<B> view(std::size_t i, const TableKey& key) const {
    return {&key, masks_[i], width_,
            bytes_.data() + static_cast<std::size_t>(off_[i]) *
                                payload_width_bytes(width_)};
  }

  LaneMask mask(std::size_t i) const { return masks_[i]; }

  Vec expand(std::size_t i) const {
    auto v = LaneOps<B>::zero();
    const int w = payload_width_bytes(width_);
    const std::uint8_t* p =
        bytes_.data() + static_cast<std::size_t>(off_[i]) * w;
    for (LaneMask m = masks_[i]; m != 0; m &= m - 1) {
      std::uint64_t c = 0;
      std::memcpy(&c, p, w);
      p += w;
      LaneOps<B>::set_lane(v, std::countr_zero(m), c);
    }
    return v;
  }

  void clear() {
    masks_.clear();
    masks_.shrink_to_fit();
    off_.clear();
    off_.shrink_to_fit();
    bytes_.clear();
    bytes_.shrink_to_fit();
  }

 private:
  PayloadWidth width_ = PayloadWidth::kU64;
  std::vector<std::uint8_t> masks_;
  std::vector<std::uint32_t> off_;   // word offsets, rows + 1 entries
  std::vector<std::uint8_t> bytes_;  // packed count words, little-endian
};

// ------------------------------------------------------------------ wire
// The transport encoding of one lane-compressed row (dist/comm.hpp at
// B > 1; B = 1 keeps the PR 2 fixed-size struct layout bit for bit):
//
//   v0 v1 v2 v3 sig : 5 x u32 LE   (20 bytes, the unpadded key)
//   mask            : u8           (lane occupancy)
//   width code      : u8           (0 = u16, 1 = u32, 2 = u64)
//   counts          : popcount(mask) x width, LE, ascending lane
//
// The width is chosen per row (the streaming analog of the per-table
// seal-time choice), so a row's wire cost is exactly what its counts
// need.

inline constexpr std::size_t kWireKeyBytes = 5 * sizeof(std::uint32_t);

/// Append the row's wire encoding to `out`; returns the row's payload
/// width (for the sender's histogram).
template <int B>
PayloadWidth wire_encode(const TableEntryT<B>& e,
                         std::vector<std::uint8_t>& out) {
  LaneMask mask = 0;
  Count max_count = 0;
  for (int l = 0; l < B; ++l) {
    const Count c = LaneOps<B>::lane(e.cnt, l);
    mask |= static_cast<LaneMask>(c != 0) << l;
    if (c > max_count) max_count = c;
  }
  const PayloadWidth width = choose_payload_width(max_count);
  const int w = payload_width_bytes(width);

  std::size_t at = out.size();
  out.resize(at + kWireKeyBytes + 2 +
             static_cast<std::size_t>(std::popcount(mask)) * w);
  std::uint8_t* p = out.data() + at;
  for (int s = 0; s < 4; ++s) {
    std::memcpy(p, &e.key.v[s], sizeof(std::uint32_t));
    p += sizeof(std::uint32_t);
  }
  const auto sig = static_cast<std::uint32_t>(e.key.sig);
  std::memcpy(p, &sig, sizeof(std::uint32_t));
  p += sizeof(std::uint32_t);
  *p++ = static_cast<std::uint8_t>(mask);
  *p++ = static_cast<std::uint8_t>(payload_width_code(width));
  for (LaneMask m = mask; m != 0; m &= m - 1) {
    const Count c = LaneOps<B>::lane(e.cnt, std::countr_zero(m));
    std::memcpy(p, &c, w);
    p += w;
  }
  return width;
}

/// Decode one row starting at `p`; returns the cursor past it.
template <int B>
const std::uint8_t* wire_decode(const std::uint8_t* p, TableEntryT<B>& e) {
  for (int s = 0; s < 4; ++s) {
    std::memcpy(&e.key.v[s], p, sizeof(std::uint32_t));
    p += sizeof(std::uint32_t);
  }
  std::uint32_t sig = 0;
  std::memcpy(&sig, p, sizeof(std::uint32_t));
  p += sizeof(std::uint32_t);
  e.key.sig = static_cast<Signature>(sig);
  const LaneMask mask = *p++;
  const int w = payload_width_bytes(payload_width_from_code(*p++));
  e.cnt = LaneOps<B>::zero();
  for (LaneMask m = mask; m != 0; m &= m - 1) {
    std::uint64_t c = 0;
    std::memcpy(&c, p, w);
    p += w;
    LaneOps<B>::set_lane(e.cnt, std::countr_zero(m), c);
  }
  return p;
}

}  // namespace ccbt
