// Regenerates Figure 14: quality of the Section 6 plan heuristic. For
// each (graph, query) pair, every decomposition tree is executed and the
// heuristic plan's simulated time is compared with the best plan's.
//
// Shape to verify: the heuristic picks the optimal plan for ~90% of
// combinations and stays within a modest error elsewhere (paper: <=15%).

#include "common.hpp"

int main() {
  using namespace ccbt;
  using namespace ccbt::bench;
  print_header("Figure 14 — heuristic plan vs optimal plan",
               "error % of heuristic plan's sim time vs best enumerated "
               "plan (512 virtual ranks)");

  // A representative subset of graphs keeps the full plan enumeration
  // affordable; every query's whole plan space is executed on each.
  const std::vector<std::string> graph_names{"enron", "condMat", "roadNetCA"};
  TextTable t({"graph", "query", "plans", "heuristic (Mops)", "best (Mops)",
               "error %"});

  int optimal_hits = 0, cells = 0;
  double worst_error = 0.0;
  for (const std::string& gname : graph_names) {
    const CsrGraph g = make_workload(gname, bench_scale() * 0.5);
    for (const QueryGraph& q : figure8_queries()) {
      if (q.name() == "brain3" || q.name() == "brain2") continue;  // time cap
      const auto plans = enumerate_plans(q);
      const Plan heuristic = make_plan(q);
      double heuristic_time = -1.0, best_time = -1.0;
      for (const Plan& plan : plans) {
        const CellResult r = run_cell(g, q, plan, Algo::kDB, 512, 7);
        if (!r.ok) continue;
        if (best_time < 0.0 || r.sim < best_time) best_time = r.sim;
        if (Contractor::canonical_string(plan.tree) ==
            Contractor::canonical_string(heuristic.tree)) {
          heuristic_time = r.sim;
        }
      }
      if (heuristic_time < 0.0 || best_time <= 0.0) continue;
      const double error = 100.0 * (heuristic_time - best_time) / best_time;
      ++cells;
      optimal_hits += (error <= 0.5);
      worst_error = std::max(worst_error, error);
      t.add_row({gname, q.name(), TextTable::num(std::uint64_t(plans.size())),
                 TextTable::num(heuristic_time / 1e6, 3),
                 TextTable::num(best_time / 1e6, 3),
                 TextTable::num(error, 1)});
    }
  }
  t.print(std::cout);
  std::cout << "summary: heuristic optimal on " << optimal_hits << "/" << cells
            << " combinations ("
            << TextTable::num(100.0 * optimal_hits / std::max(cells, 1), 0)
            << "%), worst error " << TextTable::num(worst_error, 1) << "%\n";
  return 0;
}
