#pragma once
// Explicit tree decompositions (Section 2 of the paper).
//
// The counting engine never materializes a width-2 tree decomposition —
// the block decomposition tree plays that role — but the object itself
// is part of the paper's formal toolkit: the treewidth-2 recognizer's
// reduction sequence converts directly into a tree decomposition of
// width <= 2, and the validity conditions (edge coverage + connected
// occupancy) are exactly the properties quoted in Section 2. This module
// makes that construction concrete and checkable.

#include <cstdint>
#include <vector>

#include "ccbt/query/query_graph.hpp"

namespace ccbt {

struct TreeDecomposition {
  /// bags[i] = set of query nodes in piece i (bitmask).
  std::vector<std::uint32_t> bags;

  /// Tree edges between pieces (parallel arrays of piece indices).
  std::vector<std::pair<int, int>> edges;

  /// max |bag| - 1.
  int width() const;
};

/// Build a tree decomposition of width <= 2 for a treewidth-2 query via
/// the degree-<=2 reduction sequence. Throws UnsupportedQuery when the
/// query has treewidth > 2 or is disconnected.
TreeDecomposition tree_decomposition_w2(const QueryGraph& q);

/// Check the two defining properties of Section 2 against `q`:
/// (i) every query edge is inside some bag; (ii) for every query node,
/// the pieces containing it induce a connected subtree. Also checks that
/// the piece tree is in fact a tree.
bool valid_tree_decomposition(const TreeDecomposition& td,
                              const QueryGraph& q);

}  // namespace ccbt
