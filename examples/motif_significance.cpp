// motif_significance — the network-motif methodology the paper's intro
// cites (Milo et al.): a subgraph is a *motif* of a network when it
// occurs significantly more often than in degree-matched random graphs.
//
//   1. build a "real" network with community structure (SBM stand-in);
//   2. estimate each query's count with color coding (DB engine);
//   3. build a null ensemble: Chung-Lu graphs whose expected degrees are
//      the real network's observed degrees (degree-matched rewiring);
//   4. report the z-score of the real count against the ensemble.
//
// Build & run:  ./examples/motif_significance

#include <cmath>
#include <iostream>

#include "ccbt/core/ccbt.hpp"
#include "ccbt/util/stats.hpp"
#include "ccbt/util/text_table.hpp"

int main() {
  using namespace ccbt;

  // A two-community network: communities breed triangles and short
  // cycles, which is exactly what the null model lacks.
  const CsrGraph real = stochastic_block({400, 400}, 0.030, 0.002, 7);
  std::cout << "network: " << real.num_vertices() << " vertices, "
            << real.num_edges() << " edges, max degree "
            << real.max_degree() << "\n";

  // Observed degrees become the null model's expected degrees.
  std::vector<double> degrees(real.num_vertices());
  for (VertexId v = 0; v < real.num_vertices(); ++v) {
    degrees[v] = static_cast<double>(real.degree(v));
  }

  const int kNullSamples = 7;
  EstimatorOptions est;
  est.trials = 8;
  est.seed = 2026;

  TextTable table({"query", "real count", "null mean", "null sd", "z-score",
                   "verdict"});
  for (const char* name : {"triangle", "glet1", "glet2", "wiki", "cycle5"}) {
    const QueryGraph q = named_query(name);
    const double real_count = estimate_matches(real, q, est).occurrences;

    std::vector<double> null_counts;
    for (int s = 0; s < kNullSamples; ++s) {
      const CsrGraph null_graph = chung_lu(degrees, 100 + s);
      null_counts.push_back(
          estimate_matches(null_graph, q, est).occurrences);
    }
    const Summary null_stats = summarize(null_counts);
    const double z = null_stats.stddev > 0
                         ? (real_count - null_stats.mean) / null_stats.stddev
                         : 0.0;
    table.add_row({name, TextTable::num(real_count, 0),
                   TextTable::num(null_stats.mean, 0),
                   TextTable::num(null_stats.stddev, 0),
                   TextTable::num(z, 1),
                   z > 2.0 ? "MOTIF" : (z < -2.0 ? "anti-motif" : "-")});
  }
  table.print(std::cout);
  std::cout << "(|z| > 2: the structure is statistically over/under-"
               "represented\n vs degree-matched random graphs)\n";
  return 0;
}
