#pragma once
// Stand-in workloads for the paper's Table 1 data graphs.
//
// The paper evaluates on nine SNAP graphs plus a brain network. Those
// datasets are not redistributable here, so each is replaced by a
// synthetic graph whose degree model matches the original's documented
// skew (Chung-Lu over a truncated power law, or a 2D lattice for the
// road network), scaled to workstation size. The scale factor preserves
// the paper's *relative* difficulty ordering: epinions/slashdot/enron are
// the high-skew troublemakers, roadNetCA is the easy low-skew case.

#include <cstdint>
#include <string>
#include <vector>

#include "ccbt/graph/csr_graph.hpp"
#include "ccbt/query/query_graph.hpp"

namespace ccbt {

struct WorkloadSpec {
  std::string name;      // the paper's graph name
  std::string domain;    // Table 1 domain column
  std::string model;     // generator description
  VertexId paper_nodes;  // Table 1 numbers, for the report
  std::size_t paper_edges;
  std::uint32_t paper_max_degree;
};

/// The ten Table 1 graphs, paper order.
std::vector<WorkloadSpec> table1_specs();

/// Instantiate a stand-in graph. `scale` in (0, 1] shrinks the default
/// workstation size further (benches use it to bound runtimes).
CsrGraph make_workload(const std::string& name, double scale = 1.0,
                       std::uint64_t seed = 42);

/// The benchmark grid of the experimental section: all Table 1 graphs.
std::vector<std::string> workload_names();

}  // namespace ccbt
