#pragma once
// The query benchmark.
//
// Figure 8 of the paper shows ten real-world treewidth-2 queries by
// picture only; the text supplies structural hints (brain1 contains a
// 4-cycle and a 6-cycle and admits exactly two decomposition trees;
// glet1/glet2/youtube are small and run sub-second; brain2/brain3 are the
// 9-10 node queries with long cycles and dominate runtime; a 12-vertex
// complete binary tree is contrasted with brain3 in Section 8.2). The
// catalog reconstructs queries consistent with every hint and documents
// each one. The 11-node Satellite query of Figure 2 is specified exactly
// in prose and is reproduced verbatim.

#include <string>
#include <vector>

#include "ccbt/query/query_graph.hpp"

namespace ccbt {

/// The ten Figure 8 stand-ins, in the paper's display order:
/// dros, ecoli1, ecoli2, brain1, brain2, brain3, glet1, glet2, wiki,
/// youtube.
std::vector<QueryGraph> figure8_queries();

/// Look up any named query known to the library (Figure 8 names plus
/// "satellite", "triangle", "cycleN" (3<=N<=12), "pathN", "starN",
/// "binary_tree12", "diamond", "bowtie", "theta"). Throws on unknown name.
QueryGraph named_query(const std::string& name);

/// All names accepted by named_query.
std::vector<std::string> catalog_names();

// Individual constructors (also reachable via named_query).
QueryGraph q_satellite();    // Figure 2, 11 nodes
QueryGraph q_dros();         // 6 nodes: 5-cycle + pendant
QueryGraph q_ecoli1();       // 6 nodes: two triangles joined by an edge
QueryGraph q_ecoli2();       // 7 nodes: 6-cycle + pendant
QueryGraph q_brain1();       // 8 nodes: 4-cycle and 6-cycle sharing an edge
QueryGraph q_brain2();       // 9 nodes: 8-cycle with one chord + pendant
QueryGraph q_brain3();       // 10 nodes: two 6-cycles sharing an edge
QueryGraph q_glet1();        // 4 nodes: C4 graphlet
QueryGraph q_glet2();        // 4 nodes: diamond graphlet (K4 minus an edge)
QueryGraph q_wiki();         // 5 nodes: bowtie (two triangles at a vertex)
QueryGraph q_youtube();      // 5 nodes: triangle with a 2-path tail

QueryGraph q_cycle(int n);
QueryGraph q_path(int n);
QueryGraph q_star(int leaves);
QueryGraph q_complete_binary_tree(int nodes);  // nodes must be >= 1

}  // namespace ccbt
