#pragma once
// Empirical path censuses for the Section 9 quantities.
//
// X(q) — equation (3): simple paths (u1, ..., uq) whose first vertex is
// strictly highest in the *degree* order among all path vertices (the
// high-starting paths the DB procedure enumerates).
// Y(q) — equation (2): the same with the *id* order (the symmetry-broken
// PS variant). Both are exact counts obtained by anchored DFS with
// dominance pruning: a partial path dies the moment any vertex reaches
// the anchor's rank.

#include <cstdint>

#include "ccbt/graph/csr_graph.hpp"
#include "ccbt/graph/degree_order.hpp"

namespace ccbt {

/// Number of simple q-vertex paths (u1, ..., uq), q >= 2, in which u1 is
/// strictly higher than every other path vertex under `order`. Directed
/// paths: (u1, ..., uq) and its reverse count separately unless equal.
std::uint64_t count_anchored_paths(const CsrGraph& g, const DegreeOrder& order,
                                   int q);

/// X(q): anchored paths under the degree order.
std::uint64_t census_x(const CsrGraph& g, int q);

/// Y(q): anchored paths under the id order.
std::uint64_t census_y(const CsrGraph& g, int q);

}  // namespace ccbt
