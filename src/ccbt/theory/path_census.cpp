#include "ccbt/theory/path_census.hpp"

#include "ccbt/util/error.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace ccbt {

namespace {

/// DFS extension: count simple paths of `remaining` further vertices from
/// `v`, all strictly below `anchor` in `order`, avoiding `visited`.
std::uint64_t extend(const CsrGraph& g, const DegreeOrder& order,
                     VertexId anchor, VertexId v, int remaining,
                     std::vector<bool>& visited) {
  if (remaining == 0) return 1;
  std::uint64_t paths = 0;
  for (VertexId w : g.neighbors(v)) {
    if (visited[w] || !order.higher(anchor, w)) continue;
    visited[w] = true;
    paths += extend(g, order, anchor, w, remaining - 1, visited);
    visited[w] = false;
  }
  return paths;
}

}  // namespace

std::uint64_t count_anchored_paths(const CsrGraph& g, const DegreeOrder& order,
                                   int q) {
  if (q < 2) throw Error("count_anchored_paths: q must be >= 2");
  const VertexId n = g.num_vertices();
  std::uint64_t total = 0;

#ifdef _OPENMP
#pragma omp parallel reduction(+ : total)
#endif
  {
    std::vector<bool> visited(n, false);
#ifdef _OPENMP
#pragma omp for schedule(dynamic, 32)
#endif
    for (VertexId u = 0; u < n; ++u) {
      visited[u] = true;
      total += extend(g, order, u, u, q - 1, visited);
      visited[u] = false;
    }
  }
  return total;
}

std::uint64_t census_x(const CsrGraph& g, int q) {
  const DegreeOrder order(g);
  return count_anchored_paths(g, order, q);
}

std::uint64_t census_y(const CsrGraph& g, int q) {
  const DegreeOrder order = DegreeOrder::by_id(g.num_vertices());
  return count_anchored_paths(g, order, q);
}

}  // namespace ccbt
