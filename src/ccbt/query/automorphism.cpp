#include "ccbt/query/automorphism.hpp"

#include <array>

namespace ccbt {

namespace {

struct AutSearch {
  const QueryGraph& q;
  int n;
  std::array<int, kMaxQueryNodes> image{};  // image[a] = π(a), -1 unset
  std::uint32_t used = 0;
  std::uint64_t count = 0;

  explicit AutSearch(const QueryGraph& query)
      : q(query), n(query.num_nodes()) {
    image.fill(-1);
  }

  void run(int a) {
    if (a == n) {
      ++count;
      return;
    }
    for (int b = 0; b < n; ++b) {
      if ((used >> b) & 1u) continue;
      if (q.degree(static_cast<QNode>(a)) !=
          q.degree(static_cast<QNode>(b))) {
        continue;
      }
      // Check consistency against already mapped nodes: adjacency must be
      // preserved in both directions.
      bool ok = true;
      for (int c = 0; c < a && ok; ++c) {
        const bool qa = q.has_edge(static_cast<QNode>(a),
                                   static_cast<QNode>(c));
        const bool qb = q.has_edge(static_cast<QNode>(b),
                                   static_cast<QNode>(image[c]));
        ok = (qa == qb);
      }
      if (!ok) continue;
      image[a] = b;
      used |= std::uint32_t{1} << b;
      run(a + 1);
      used &= ~(std::uint32_t{1} << b);
      image[a] = -1;
    }
  }
};

}  // namespace

std::uint64_t count_automorphisms(const QueryGraph& q) {
  AutSearch search(q);
  search.run(0);
  return search.count;
}

}  // namespace ccbt
