#include "ccbt/graph/io.hpp"

#include <cstdint>
#include <fstream>
#include <vector>

#include "ccbt/graph/edge_list.hpp"
#include "ccbt/util/error.hpp"

namespace ccbt {

namespace {

constexpr std::uint32_t kMagic = 0x43434254;  // "CCBT"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw Error("load_graph_binary: truncated file");
  return value;
}

}  // namespace

void save_graph_text(const CsrGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("save_graph_text: cannot open " + path);
  out << "# ccbt graph: " << g.num_vertices() << " vertices, "
      << g.num_edges() << " edges\n";
  write_edge_list(out, g.to_edges());
  if (!out) throw Error("save_graph_text: write failed for " + path);
}

CsrGraph load_graph_text(const std::string& path) {
  return CsrGraph::from_edges(read_edge_list_file(path));
}

void save_graph_binary(const CsrGraph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("save_graph_binary: cannot open " + path);
  write_pod(out, kMagic);
  write_pod(out, kVersion);
  write_pod(out, g.num_vertices());
  const EdgeList edges = g.to_edges();
  write_pod(out, static_cast<std::uint64_t>(edges.size()));
  for (const Edge& e : edges.edges) {
    write_pod(out, e.u);
    write_pod(out, e.v);
  }
  if (!out) throw Error("save_graph_binary: write failed for " + path);
}

CsrGraph load_graph_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("load_graph_binary: cannot open " + path);
  if (read_pod<std::uint32_t>(in) != kMagic) {
    throw Error("load_graph_binary: bad magic in " + path);
  }
  if (read_pod<std::uint32_t>(in) != kVersion) {
    throw Error("load_graph_binary: unsupported version in " + path);
  }
  EdgeList list;
  list.num_vertices = read_pod<VertexId>(in);
  const auto m = read_pod<std::uint64_t>(in);
  list.edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    const auto u = read_pod<VertexId>(in);
    const auto v = read_pod<VertexId>(in);
    list.edges.push_back({u, v});
  }
  return CsrGraph::from_edges(list);
}

}  // namespace ccbt
