// Batched multi-coloring execution: a plan run over a B-lane coloring
// batch must report, lane for lane, exactly the colorful counts of B
// independent single-coloring runs with the same seeds — across graph
// models, query shapes, all three Algo variants, and both engines
// (shared-memory and virtual-MPI). Estimator batching must likewise be
// invisible in the per-trial results.

#include <gtest/gtest.h>

#include <array>
#include <span>
#include <string>
#include <vector>

#include "ccbt/core/color_coding.hpp"
#include "ccbt/core/estimator.hpp"
#include "ccbt/dist/dist_engine.hpp"
#include "ccbt/graph/generators.hpp"
#include "ccbt/query/catalog.hpp"
#include "ccbt/util/error.hpp"

namespace ccbt {
namespace {

/// Per-lane colorful counts of one batched execution vs. `width`
/// independent scalar executions over the same seeds.
void expect_lane_parity(const CsrGraph& g, const QueryGraph& q, Algo algo,
                        int width, std::uint64_t base_seed) {
  ExecOptions opts;
  opts.algo = algo;
  CountingSession session(g, q, make_plan(q), opts);

  std::vector<std::uint64_t> seeds;
  for (int l = 0; l < width; ++l) seeds.push_back(base_seed + l);

  const ExecStats batched = session.count_colorful_seeded(
      std::span<const std::uint64_t>(seeds.data(), seeds.size()));
  EXPECT_EQ(batched.lanes_used, width);
  for (int l = 0; l < width; ++l) {
    const ExecStats solo = session.count_colorful_seeded(seeds[l]);
    EXPECT_EQ(batched.colorful_lane[l], solo.colorful)
        << algo_name(algo) << " " << q.name() << " lane " << l << " of "
        << width;
  }
  EXPECT_EQ(batched.colorful, batched.colorful_lane[0]);
}

TEST(BatchEngine, LanesMatchIndependentRunsOnErdosRenyi) {
  const CsrGraph g = erdos_renyi(60, 260, 7);
  for (const Algo algo : {Algo::kPS, Algo::kPSEven, Algo::kDB}) {
    expect_lane_parity(g, q_cycle(4), algo, 4, 100);
    expect_lane_parity(g, q_glet2(), algo, 4, 200);
    expect_lane_parity(g, q_wiki(), algo, 4, 300);
  }
}

TEST(BatchEngine, LanesMatchIndependentRunsOnBarabasiAlbert) {
  const CsrGraph g = barabasi_albert(80, 4, 9);
  for (const Algo algo : {Algo::kPS, Algo::kPSEven, Algo::kDB}) {
    expect_lane_parity(g, q_cycle(5), algo, 4, 400);
    expect_lane_parity(g, q_glet2(), algo, 4, 500);
  }
}

TEST(BatchEngine, AllSupportedWidths) {
  const CsrGraph g = erdos_renyi(50, 200, 21);
  for (const int width : {1, 2, 4, 8}) {
    expect_lane_parity(g, q_glet2(), Algo::kDB, width, 600);
  }
}

TEST(BatchEngine, UnsupportedWidthThrows) {
  const CsrGraph g = erdos_renyi(20, 40, 1);
  const QueryGraph q = q_cycle(3);
  CountingSession session(g, q, make_plan(q));
  std::vector<Coloring> lanes;
  for (int l = 0; l < 3; ++l) lanes.emplace_back(g.num_vertices(), 3, l + 1);
  EXPECT_THROW(session.count_colorful(ColoringBatch(lanes)), Error);
}

TEST(BatchEngine, LaneCompressedLayoutMatchesDenseEveryWidth) {
  // The lane-compressed row layout (stored child tables re-packed at
  // seal time, narrow accumulation rows, compressed wire format) is an
  // execution detail: per-lane counts must equal the dense layout's and
  // the independent scalar runs', at every width and in both engines.
  const CsrGraph g = barabasi_albert(70, 4, 31);
  const QueryGraph q = q_wiki();
  const Plan plan = make_plan(q);
  for (const int width : {2, 4, 8}) {
    ExecOptions on;
    on.lane_compress = true;
    ExecOptions off;
    off.lane_compress = false;
    CountingSession son(g, q, plan, on);
    CountingSession soff(g, q, plan, off);
    std::vector<std::uint64_t> seeds;
    for (int l = 0; l < width; ++l) seeds.push_back(800 + l);
    const auto span =
        std::span<const std::uint64_t>(seeds.data(), seeds.size());
    const ExecStats a = son.count_colorful_seeded(span);
    const ExecStats b = soff.count_colorful_seeded(span);
    for (int l = 0; l < width; ++l) {
      EXPECT_EQ(a.colorful_lane[l], b.colorful_lane[l])
          << "width " << width << " lane " << l;
      const ExecStats solo = son.count_colorful_seeded(seeds[l]);
      EXPECT_EQ(a.colorful_lane[l], solo.colorful)
          << "width " << width << " lane " << l;
    }
    EXPECT_EQ(b.lanes.rows_packed, 0u);
  }
}

TEST(BatchEngine, WideAndCompactAccumAgree) {
  const CsrGraph g = erdos_renyi(60, 240, 3);
  const QueryGraph q = q_wiki();
  ExecOptions wide;
  wide.compact_accum = false;
  ExecOptions compact;
  compact.compact_accum = true;
  CountingSession sw(g, q, make_plan(q), wide);
  CountingSession sc(g, q, make_plan(q), compact);
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    EXPECT_EQ(sw.count_colorful_seeded(seed).colorful,
              sc.count_colorful_seeded(seed).colorful);
  }
}

TEST(BatchEngine, SingleNodeQueryFillsEveryLane) {
  const CsrGraph g = erdos_renyi(25, 40, 5);
  const QueryGraph q(1, "node");
  CountingSession session(g, q, make_plan(q));
  const std::array<std::uint64_t, 4> seeds{1, 2, 3, 4};
  const ExecStats stats = session.count_colorful_seeded(
      std::span<const std::uint64_t>(seeds.data(), seeds.size()));
  for (int l = 0; l < 4; ++l) {
    EXPECT_EQ(stats.colorful_lane[l], g.num_vertices());
  }
}

// ---------------------------------------------------------------------
// Distributed engine: one batched virtual-MPI run per width, lanes
// checked against scalar distributed runs (which are themselves parity-
// checked against the shared engine in test_dist_engine).

TEST(BatchEngine, DistributedLanesMatchScalarRuns) {
  const CsrGraph g = erdos_renyi(40, 160, 13);
  const QueryGraph q = q_glet2();
  const Plan plan = make_plan(q);
  std::vector<Coloring> lanes;
  for (int l = 0; l < 4; ++l) {
    lanes.emplace_back(g.num_vertices(), q.num_nodes(), 700 + l);
  }
  for (const Algo algo : {Algo::kPS, Algo::kDB}) {
    ExecOptions opts;
    opts.algo = algo;
    const DistStats batched = run_plan_distributed(
        g, plan.tree, ColoringBatch(lanes), /*ranks=*/3, opts);
    EXPECT_EQ(batched.lanes_used, 4);
    for (int l = 0; l < 4; ++l) {
      const DistStats solo =
          run_plan_distributed(g, plan.tree, lanes[l], /*ranks=*/3, opts);
      EXPECT_EQ(batched.colorful_lane[l], solo.colorful)
          << algo_name(algo) << " lane " << l;
    }
  }
}

// ---------------------------------------------------------------------
// Estimator: batching is an execution detail — per-trial colorful counts
// and all derived statistics must be identical at every batch width.

TEST(BatchEstimator, BatchedTrialsEqualUnbatchedTrials) {
  const CsrGraph g = erdos_renyi(50, 220, 8);
  const QueryGraph q = q_glet2();
  EstimatorOptions base;
  base.trials = 10;
  base.seed = 77;
  const EstimatorResult solo = estimate_matches(g, q, base);
  for (const int batch : {2, 4, 8}) {
    EstimatorOptions opts = base;
    opts.batch = batch;
    const EstimatorResult r = estimate_matches(g, q, opts);
    EXPECT_EQ(r.colorful_per_trial, solo.colorful_per_trial)
        << "batch=" << batch;
    EXPECT_DOUBLE_EQ(r.matches, solo.matches) << "batch=" << batch;
    EXPECT_DOUBLE_EQ(r.cv, solo.cv) << "batch=" << batch;
  }
}

TEST(BatchEstimator, AdaptiveBatchedMatchesTrialForTrial) {
  const CsrGraph g = erdos_renyi(60, 400, 6);
  AdaptiveOptions a;
  a.target_cv = 1e9;  // trivially satisfied at the first check
  a.min_trials = 5;
  a.batch = 4;
  const AdaptiveResult r = estimate_matches_adaptive(g, q_cycle(3), a);
  EXPECT_TRUE(r.converged);
  // Batches of 4 then 4: the cv test fires at the first batch boundary
  // past min_trials.
  EXPECT_EQ(r.trials_used, 8);

  AdaptiveOptions solo = a;
  solo.batch = 1;
  const AdaptiveResult rs = estimate_matches_adaptive(g, q_cycle(3), solo);
  // Same seed sequence: the batched run's first 5 trials equal the
  // unbatched run's 5 trials.
  ASSERT_GE(r.estimate.colorful_per_trial.size(), 5u);
  for (std::size_t i = 0; i < rs.estimate.colorful_per_trial.size(); ++i) {
    EXPECT_EQ(r.estimate.colorful_per_trial[i],
              rs.estimate.colorful_per_trial[i]);
  }
}

TEST(BatchEstimator, ZeroMatchWorkloadStaysZeroAcrossLanes) {
  const EstimatorOptions opts = [] {
    EstimatorOptions o;
    o.trials = 8;
    o.batch = 8;
    return o;
  }();
  const EstimatorResult r =
      estimate_matches(path_graph(20), q_cycle(3), opts);
  EXPECT_DOUBLE_EQ(r.matches, 0.0);
  for (const Count c : r.colorful_per_trial) EXPECT_EQ(c, 0u);
}

}  // namespace
}  // namespace ccbt
