#pragma once
// Triangle counting: the MINBUCKET degree-ordering heuristic the paper's
// DB algorithm generalizes (Section 1, "Degree Based Approaches").
//
// Two exact counters are provided:
//   * naive    — every vertex enumerates pairs of neighbors and checks
//                adjacency; wasteful and load-imbalanced on heavy tails;
//   * minbucket — every vertex enumerates only neighbor pairs that are
//                no lower than itself in the (degree, id) total order, so
//                each triangle is charged to its lowest vertex exactly
//                once [15, 31].
// Both report the number of wedge checks performed — the work measure
// whose heavy-tail behaviour motivates the paper's whole design — and a
// per-vertex work histogram for load-imbalance studies.
//
// A colorful triangle counter specializes color coding for C3 and is
// cross-checked against the general engine in the tests.

#include <cstdint>
#include <vector>

#include "ccbt/graph/coloring.hpp"
#include "ccbt/graph/csr_graph.hpp"
#include "ccbt/graph/degree_order.hpp"

namespace ccbt {

struct TriangleStats {
  /// Number of triangles (as vertex sets, not matches; multiply by 6 for
  /// the number of injective C3 matches).
  Count triangles = 0;

  /// Wedge (neighbor-pair) adjacency checks performed.
  std::uint64_t wedge_checks = 0;

  /// Largest number of wedge checks attributed to a single vertex — the
  /// "curse of the last reducer" measure [31].
  std::uint64_t max_vertex_checks = 0;

  double wall_seconds = 0.0;
};

/// Naive per-vertex enumeration: each vertex checks all its neighbor
/// pairs; every triangle is found three times and divided out.
TriangleStats count_triangles_naive(const CsrGraph& g);

/// MINBUCKET: vertex u checks only neighbor pairs (v, w) with v ≻ u and
/// w ≻ u in `order`; every triangle is found exactly once, at its lowest
/// vertex.
TriangleStats count_triangles_minbucket(const CsrGraph& g,
                                        const DegreeOrder& order);

/// Colorful triangles under `chi`: triangles whose three vertices have
/// three distinct colors. Counts vertex sets; the colorful C3 *match*
/// count of the engine equals 6x this (aut(C3) = 6).
TriangleStats count_colorful_triangles(const CsrGraph& g, const Coloring& chi,
                                       const DegreeOrder& order);

/// Per-vertex wedge-check counts of the MINBUCKET pass (load histogram).
std::vector<std::uint64_t> minbucket_vertex_work(const CsrGraph& g,
                                                 const DegreeOrder& order);

}  // namespace ccbt
