#pragma once
// Cycle split plans shared by the shared-memory and distributed solvers.
//
// A SplitPlan lays out the two half-cycle walks for a split at (anchor s,
// end e) together with the merge spec that projects the block's boundary
// images out of the path keys (anchor -> slot 0, end -> slot 1, interior
// boundary -> tracked slot on whichever path contains it). Section 5
// defines the split choices: PS splits at the boundary nodes, PS-EVEN and
// DB split a node against its diagonal; DB additionally enumerates every
// anchor choice and restricts to high-starting paths.

#include <vector>

#include "ccbt/decomp/block.hpp"
#include "ccbt/engine/exec_context.hpp"
#include "ccbt/engine/path_builder.hpp"
#include "ccbt/engine/primitives.hpp"

namespace ccbt {

struct SplitPlan {
  PathSpec plus;
  PathSpec minus;
  MergeSpec merge;
};

/// Split `blk` at anchor position s and end position e; `anchor_higher`
/// imposes the DB high-starting constraint on both walks.
SplitPlan make_split(const Block& blk, int s, int e, bool anchor_higher);

/// The sequence of splits an algorithm solves for this block: one split
/// for PS/PS-EVEN, L splits (one per anchor choice, Eq. 1) for DB.
std::vector<SplitPlan> splits_for(const Block& blk, Algo algo);

}  // namespace ccbt
