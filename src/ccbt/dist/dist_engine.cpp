#include "ccbt/dist/dist_engine.hpp"

#include <string>
#include <utility>
#include <vector>

#include "ccbt/engine/load_model.hpp"
#include "ccbt/engine/path_builder.hpp"
#include "ccbt/engine/primitives.hpp"
#include "ccbt/engine/split_plan.hpp"
#include "ccbt/graph/degree_order.hpp"
#include "ccbt/table/signature.hpp"
#include "ccbt/util/error.hpp"
#include "ccbt/util/timer.hpp"

namespace ccbt {

namespace {

/// Distributed execution state threaded through every primitive: the
/// shared-memory ExecContext (whose LoadModel the primitives charge
/// exactly as the shared engine does) plus the transport.
struct Dx {
  const ExecContext& cx;
  VirtualComm& comm;
  std::size_t budget;
  VertexId domain;  // data-graph vertex count (bucket-index domain)

  const BlockPartition& part() const { return cx.part; }
  std::uint32_t ranks() const { return comm.num_ranks(); }
  std::uint32_t owner(VertexId v) const { return cx.part.owner(v); }
};

/// Deliver the queued emissions and collect them into a path table:
/// entry (.., v, ..) lives with owner(v) (home slot 1, Section 7).
DistTable collect_path(Dx& dx, int arity) {
  dx.comm.exchange();
  return DistTable::collect(arity, /*home_slot=*/1, dx.comm,
                            SortOrder::kUnsorted, dx.budget, dx.domain);
}

DistTable d_init_path_from_graph(Dx& dx, const ExtendOpts& o) {
  const ExecContext& cx = dx.cx;
  const CsrGraph& g = cx.g;
  for (std::uint32_t r = 0; r < dx.ranks(); ++r) {
    for (VertexId u = dx.part().begin(r); u < dx.part().end(r); ++u) {
      cx.charge(u, g.degree(u));
      for (VertexId w : g.neighbors(u)) {
        if (o.anchor_higher && !cx.order.higher(u, w)) continue;
        if (cx.chi.color(u) == cx.chi.color(w)) continue;
        TableKey key;
        key.v[0] = u;
        key.v[1] = w;
        if (o.track_slot >= 0) key.v[o.track_slot] = w;
        key.sig = cx.chi.bit(u) | cx.chi.bit(w);
        dx.comm.send(r, dx.owner(w), {key, 1});
        cx.send(u, w, 1);
      }
    }
  }
  DistTable t = collect_path(dx, 2);
  cx.end_phase();
  return t;
}

DistTable d_init_path_from_child(Dx& dx, const DistTable& child,
                                 const ExtendOpts& o) {
  const ExecContext& cx = dx.cx;
  for (std::uint32_t r = 0; r < dx.ranks(); ++r) {
    for (const TableEntry& e : child.shard(r).entries()) {
      const VertexId a = e.key.v[0];
      const VertexId b = e.key.v[1];
      cx.charge(b, 1);
      if (o.anchor_higher && !cx.order.higher(a, b)) continue;
      TableKey key;
      key.v[0] = a;
      key.v[1] = b;
      if (o.track_slot >= 0) key.v[o.track_slot] = b;
      key.sig = e.key.sig;
      dx.comm.send(r, dx.owner(b), {key, e.cnt});
    }
  }
  DistTable t = collect_path(dx, 2);
  cx.end_phase();
  return t;
}

DistTable d_extend_with_graph(Dx& dx, const DistTable& path,
                              const ExtendOpts& o) {
  const ExecContext& cx = dx.cx;
  const CsrGraph& g = cx.g;
  for (std::uint32_t r = 0; r < dx.ranks(); ++r) {
    for (const TableEntry& e : path.shard(r).entries()) {
      const VertexId v = e.key.v[1];
      cx.charge(v, g.degree(v));
      for (VertexId w : g.neighbors(v)) {
        if (o.anchor_higher && !cx.order.higher(e.key.v[0], w)) continue;
        const Signature w_bit = cx.chi.bit(w);
        if ((e.key.sig & w_bit) != 0) continue;
        TableKey key = e.key;
        key.v[1] = w;
        if (o.track_slot >= 0) key.v[o.track_slot] = w;
        key.sig = e.key.sig | w_bit;
        dx.comm.send(r, dx.owner(w), {key, e.cnt});
        cx.send(v, w, 1);
      }
    }
  }
  DistTable t = collect_path(dx, path.arity());
  cx.end_phase();
  return t;
}

DistTable d_extend_with_child(Dx& dx, const DistTable& path,
                              const DistTable& child, const ExtendOpts& o) {
  const ExecContext& cx = dx.cx;
  // Path entries with frontier v and child entries (v, w, ..) are
  // co-located at owner(v): the EdgeJoin probe is rank-local.
  for (std::uint32_t r = 0; r < dx.ranks(); ++r) {
    const ProjTable& child_shard = child.shard(r);
    for (const TableEntry& e : path.shard(r).entries()) {
      const VertexId v = e.key.v[1];
      const Signature v_bit = cx.chi.bit(v);
      const auto group = child_shard.group(0, v);
      cx.charge(v, group.size());
      for (const TableEntry& ce : group) {
        if (!node_join_compatible(e.key.sig, ce.key.sig, v_bit)) continue;
        const VertexId w = ce.key.v[1];
        if (o.anchor_higher && !cx.order.higher(e.key.v[0], w)) continue;
        TableKey key = e.key;
        key.v[1] = w;
        if (o.track_slot >= 0) key.v[o.track_slot] = w;
        key.sig = e.key.sig | ce.key.sig;
        dx.comm.send(r, dx.owner(w), {key, e.cnt * ce.cnt});
        cx.send(v, w, 1);
      }
    }
  }
  DistTable t = collect_path(dx, path.arity());
  cx.end_phase();
  return t;
}

DistTable d_node_join(Dx& dx, const DistTable& path, const DistTable& child,
                      int slot) {
  const ExecContext& cx = dx.cx;
  // The unary child lives with owner(x) (home slot 0). Probing by the
  // anchor slot needs the path rehomed there first — a transport-only
  // superstep a real implementation pays, invisible to the load model.
  const DistTable* src = &path;
  DistTable rehomed;
  if (slot == 0 && dx.ranks() > 1) {
    rehomed = path.resharded(0, dx.comm, dx.part(), SortOrder::kUnsorted,
                             dx.budget, dx.domain);
    src = &rehomed;
  }
  for (std::uint32_t r = 0; r < dx.ranks(); ++r) {
    const ProjTable& child_shard = child.shard(r);
    for (const TableEntry& e : src->shard(r).entries()) {
      const VertexId x = e.key.v[slot];
      const Signature x_bit = cx.chi.bit(x);
      const auto group = child_shard.group(0, x);
      cx.charge(x, group.size());
      for (const TableEntry& ce : group) {
        if (!node_join_compatible(e.key.sig, ce.key.sig, x_bit)) continue;
        TableKey key = e.key;
        key.sig = e.key.sig | ce.key.sig;
        dx.comm.send(r, dx.owner(key.v[1]), {key, e.cnt * ce.cnt});
      }
    }
  }
  DistTable t = collect_path(dx, path.arity());
  cx.end_phase();
  return t;
}

/// Merge the co-located (u, v) groups of the two half-cycle tables with
/// the same merge_bucket kernel as the shared engine (that sharing is
/// what keeps the load models in exact parity), routing every output to
/// the owner of its slot-0 boundary image (the storage home of block
/// tables); outputs of a root merge (out_arity 0) collapse to rank 0.
/// Accumulates into the per-rank cycle sinks.
void d_merge_halves(Dx& dx, DistTable& plus, DistTable& minus,
                    const MergeSpec& spec, std::vector<AccumMap>& sinks) {
  const ExecContext& cx = dx.cx;
  plus.seal_shards(SortOrder::kByV0V1, dx.domain);
  minus.seal_shards(SortOrder::kByV0V1, dx.domain);
  for (std::uint32_t r = 0; r < dx.ranks(); ++r) {
    const auto pe = plus.shard(r).entries();
    const auto me = minus.shard(r).entries();
    auto route = [&](const TableKey& key, Count cnt) {
      const std::uint32_t dest = spec.out_arity >= 1 ? dx.owner(key.v[0]) : 0;
      dx.comm.send(r, dest, {key, cnt});
    };
    // Two-pointer over the shard's slot-0 groups; merge_bucket handles
    // the (u, v) subgroup join and the load charges within each.
    std::size_t pi = 0, mi = 0;
    while (pi < pe.size() && mi < me.size()) {
      if (pe[pi].key.v[0] < me[mi].key.v[0]) {
        ++pi;
        continue;
      }
      if (me[mi].key.v[0] < pe[pi].key.v[0]) {
        ++mi;
        continue;
      }
      const VertexId u = pe[pi].key.v[0];
      std::size_t pj = pi, mj = mi;
      while (pj < pe.size() && pe[pj].key.v[0] == u) ++pj;
      while (mj < me.size() && me[mj].key.v[0] == u) ++mj;
      merge_bucket(cx, pe.subspan(pi, pj - pi), me.subspan(mi, mj - mi),
                   spec, route);
      pi = pj;
      mi = mj;
    }
  }
  dx.comm.exchange();
  std::size_t total = 0;
  for (std::uint32_t r = 0; r < dx.ranks(); ++r) {
    for (const TableEntry& e : dx.comm.inbox(r)) sinks[r].add(e.key, e.cnt);
    total += sinks[r].size();
  }
  if (total > dx.budget) {
    throw BudgetExceeded("projection table exceeded " +
                         std::to_string(dx.budget) + " entries");
  }
  cx.end_phase();
}

DistTable d_aggregate(Dx& dx, const DistTable& t, int new_arity) {
  const ExecContext& cx = dx.cx;
  for (std::uint32_t r = 0; r < dx.ranks(); ++r) {
    for (const TableEntry& e : t.shard(r).entries()) {
      TableKey key;
      for (int s = 0; s < new_arity; ++s) key.v[s] = e.key.v[s];
      key.sig = e.key.sig;
      if (new_arity >= 1) cx.charge(key.v[0], 1);
      const std::uint32_t dest = new_arity >= 1 ? dx.owner(key.v[0]) : 0;
      dx.comm.send(r, dest, {key, e.cnt});
    }
  }
  dx.comm.exchange();
  DistTable out = DistTable::collect(new_arity, /*home_slot=*/0, dx.comm,
                                     SortOrder::kUnsorted, dx.budget,
                                     dx.domain);
  cx.end_phase();
  return out;
}

/// Solved child-block tables: stored home slot 0, shards sealed kByV0
/// (the same convention as the shared TablePool), with lazily cached
/// transposes produced by a transport superstep.
class DistPool {
 public:
  DistPool(std::size_t num_blocks, VertexId domain)
      : tables_(num_blocks),
        transposed_(num_blocks),
        has_transposed_(num_blocks, false),
        domain_(domain) {}

  void store(int block, DistTable table) {
    table.seal_shards(SortOrder::kByV0, domain_);
    tables_[block] = std::move(table);
  }

  const DistTable& get(int block) const { return tables_[block]; }

  const DistTable& oriented(Dx& dx, int block, bool transposed) {
    if (!transposed) return tables_[block];
    if (!has_transposed_[block]) {
      transposed_[block] = tables_[block].transposed(dx.comm, dx.part(),
                                                     dx.budget, domain_);
      has_transposed_[block] = true;
    }
    return transposed_[block];
  }

 private:
  std::vector<DistTable> tables_;
  std::vector<DistTable> transposed_;
  std::vector<bool> has_transposed_;
  VertexId domain_;
};

DistTable d_build_path(Dx& dx, const Block& blk, DistPool& pool,
                       const PathSpec& spec) {
  const std::size_t steps = spec.positions.size();
  if (steps < 2) throw Error("build_path: path needs at least one edge");

  ExtendOpts init_opts{spec.track_slot_at[1], spec.anchor_higher};
  DistTable table;
  {
    const int e0 = spec.edge_index[0];
    const int child = blk.edge_child[e0];
    if (child < 0) {
      table = d_init_path_from_graph(dx, init_opts);
    } else {
      const DistTable& oriented = pool.oriented(
          dx, child, needs_transpose(blk, e0, spec.edge_forward[0]));
      table = d_init_path_from_child(dx, oriented, init_opts);
    }
  }
  if (spec.include_start_annot) {
    const int child = blk.node_child[spec.positions[0]];
    if (child >= 0) {
      table = d_node_join(dx, table, pool.get(child), /*slot=*/0);
    }
  }

  for (std::size_t s = 1; s < steps; ++s) {
    const bool is_end = (s + 1 == steps);
    if (!is_end || spec.include_end_annot) {
      const int child = blk.node_child[spec.positions[s]];
      if (child >= 0) {
        table = d_node_join(dx, table, pool.get(child), /*slot=*/1);
      }
    }
    if (is_end) break;
    ExtendOpts opts{spec.track_slot_at[s + 1], spec.anchor_higher};
    const int e = spec.edge_index[s];
    const int child = blk.edge_child[e];
    if (child < 0) {
      table = d_extend_with_graph(dx, table, opts);
    } else {
      const DistTable& oriented = pool.oriented(
          dx, child, needs_transpose(blk, e, spec.edge_forward[s]));
      table = d_extend_with_child(dx, table, oriented, opts);
    }
  }
  return table;
}

DistTable d_solve_cycle(Dx& dx, const Block& blk, DistPool& pool) {
  std::vector<AccumMap> sinks(dx.ranks());
  for (const SplitPlan& plan : splits_for(blk, dx.cx.opts.algo)) {
    DistTable plus = d_build_path(dx, blk, pool, plan.plus);
    DistTable minus = d_build_path(dx, blk, pool, plan.minus);
    d_merge_halves(dx, plus, minus, plan.merge, sinks);
  }
  return DistTable::from_maps(blk.boundary_count(), /*home_slot=*/0,
                              std::move(sinks));
}

DistTable d_solve_leaf_edge(Dx& dx, const Block& blk, DistPool& pool) {
  if (blk.kind != BlockKind::kLeafEdge) {
    throw Error("solve_leaf_edge: not a leaf-edge block");
  }
  ExtendOpts no_opts;
  DistTable table;
  const int edge_child = blk.edge_child[0];
  if (edge_child < 0) {
    table = d_init_path_from_graph(dx, no_opts);
  } else {
    table = d_init_path_from_child(
        dx, pool.oriented(dx, edge_child, blk.edge_child_flip[0]), no_opts);
  }
  if (blk.node_child[1] >= 0) {
    table = d_node_join(dx, table, pool.get(blk.node_child[1]), /*slot=*/1);
  }
  if (blk.node_child[0] >= 0) {
    table = d_node_join(dx, table, pool.get(blk.node_child[0]), /*slot=*/0);
  }
  return d_aggregate(dx, table, /*new_arity=*/1);
}

}  // namespace

DistStats run_plan_distributed(const CsrGraph& g, const DecompTree& tree,
                               const Coloring& chi, std::uint32_t ranks,
                               ExecOptions opts) {
  if (tree.root < 0) throw Error("run_plan_distributed: tree has no root");
  Timer timer;
  const DegreeOrder order = opts.order_by_id
                                ? DegreeOrder::by_id(g.num_vertices())
                                : DegreeOrder(g);
  LoadModel load(ranks);
  const ExecContext cx{g,
                       chi,
                       order,
                       BlockPartition(g.num_vertices(), ranks),
                       &load,
                       opts};
  VirtualComm comm(ranks);
  Dx dx{cx, comm, opts.max_table_entries, g.num_vertices()};
  DistPool pool(tree.blocks.size(), g.num_vertices());

  DistStats stats;
  for (std::size_t i = 0; i < tree.blocks.size(); ++i) {
    const Block& blk = tree.blocks[i];
    const bool is_root = (static_cast<int>(i) == tree.root);

    if (blk.kind == BlockKind::kSingleton) {
      if (!is_root) {
        throw Error("run_plan_distributed: singleton below the root");
      }
      if (blk.node_child[0] >= 0) {
        stats.colorful =
            comm.allreduce_sum(pool.get(blk.node_child[0]).shard_totals());
      } else {
        // Single-node query: every data vertex is a colorful match.
        stats.colorful = g.num_vertices();
      }
      break;
    }

    DistTable table = (blk.kind == BlockKind::kLeafEdge)
                          ? d_solve_leaf_edge(dx, blk, pool)
                          : d_solve_cycle(dx, blk, pool);
    if (is_root) {
      stats.colorful = comm.allreduce_sum(table.shard_totals());
      break;
    }
    pool.store(static_cast<int>(i), std::move(table));
  }

  stats.wall_seconds = timer.seconds();
  stats.sim_time = load.sim_time();
  stats.total_ops = load.total_ops();
  stats.max_rank_ops = load.max_rank_ops();
  stats.avg_rank_ops = load.avg_rank_ops();
  stats.total_comm = load.total_comm();
  stats.transport = comm.stats();
  return stats;
}

}  // namespace ccbt
