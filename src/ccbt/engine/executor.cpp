#include "ccbt/engine/executor.hpp"

#include <algorithm>

#include "ccbt/engine/cycle_solver.hpp"
#include "ccbt/engine/leaf_solver.hpp"
#include "ccbt/engine/path_builder.hpp"
#include "ccbt/util/error.hpp"
#include "ccbt/util/timer.hpp"

namespace ccbt {

ExecStats run_plan(const ExecContext& cx, const DecompTree& tree) {
  if (tree.root < 0) throw Error("run_plan: tree has no root");
  Timer timer;
  ExecStats stats;
  TablePool pool(tree.blocks.size(), cx.g.num_vertices());

  for (std::size_t i = 0; i < tree.blocks.size(); ++i) {
    const Block& blk = tree.blocks[i];
    const bool is_root = (static_cast<int>(i) == tree.root);

    if (blk.kind == BlockKind::kSingleton) {
      if (!is_root) throw Error("run_plan: singleton below the root");
      if (blk.node_child[0] >= 0) {
        stats.colorful = pool.get(blk.node_child[0]).total();
      } else {
        // Single-node query: every data vertex is a colorful match.
        stats.colorful = cx.g.num_vertices();
      }
      break;
    }

    ProjTable table = (blk.kind == BlockKind::kLeafEdge)
                          ? solve_leaf_edge(cx, blk, pool)
                          : solve_cycle(cx, blk, pool);
    stats.peak_table_entries =
        std::max(stats.peak_table_entries, table.size());
    if (is_root) {
      stats.colorful = table.total();
      break;
    }
    pool.store(static_cast<int>(i), std::move(table));
  }

  stats.wall_seconds = timer.seconds();
  if (cx.load != nullptr) {
    stats.sim_time = cx.load->sim_time();
    stats.total_ops = cx.load->total_ops();
    stats.max_rank_ops = cx.load->max_rank_ops();
    stats.avg_rank_ops = cx.load->avg_rank_ops();
    stats.total_comm = cx.load->total_comm();
  }
  return stats;
}

}  // namespace ccbt
