// Spam-campaign signature counting — the youtube query of Figure 8 comes
// from network analysis of recurring spam campaigns. Campaign subgraphs
// are overrepresented tailed-triangle patterns: this example compares the
// motif's concentration in a "organic" social graph against one with an
// injected campaign-like cluster.
//
// Build & run:  ./examples/spam_campaign

#include <iostream>

#include "ccbt/core/ccbt.hpp"

namespace {

// Normalized motif concentration: occurrences per (n choose k)-ish unit,
// here simply occurrences / edges^2 to compare graphs of similar size.
double concentration(const ccbt::EstimatorResult& r, const ccbt::CsrGraph& g) {
  const double m = static_cast<double>(g.num_edges());
  return r.occurrences / (m * m) * 1e6;
}

}  // namespace

int main() {
  using namespace ccbt;

  const QueryGraph campaign_motif = named_query("youtube");
  std::cout << "campaign motif: tailed triangle with 2-hop fan-out ("
            << campaign_motif.num_nodes() << " nodes)\n\n";

  // Organic network: plain power-law social graph.
  const CsrGraph organic =
      chung_lu_power_law(12'000, 1.85, 7.0, /*seed=*/3);

  // Compromised network: same backbone plus a dense campaign cluster —
  // a clique-ish gadget of sock-puppet accounts all linked to two
  // coordinators, which multiplies tailed-triangle counts.
  EdgeList edges = organic.to_edges();
  const VertexId base = organic.num_vertices();
  const VertexId puppets = 40;
  edges.num_vertices = base + puppets;
  for (VertexId i = 0; i < puppets; ++i) {
    edges.add(base + i, 0);  // coordinator A (highest-degree hub)
    edges.add(base + i, 1);  // coordinator B
    if (i > 0) edges.add(base + i, base + i - 1);  // puppet chain
  }
  const CsrGraph compromised = CsrGraph::from_edges(edges);

  EstimatorOptions opts;
  opts.trials = 4;
  opts.seed = 99;
  const EstimatorResult organic_r =
      estimate_matches(organic, campaign_motif, opts);
  const EstimatorResult compromised_r =
      estimate_matches(compromised, campaign_motif, opts);

  std::cout << "organic graph:      " << organic.num_edges() << " edges, "
            << "motif occurrences ~ " << organic_r.occurrences
            << " (concentration " << concentration(organic_r, organic)
            << ")\n";
  std::cout << "with campaign:      " << compromised.num_edges()
            << " edges, motif occurrences ~ " << compromised_r.occurrences
            << " (concentration "
            << concentration(compromised_r, compromised) << ")\n";
  const double lift = concentration(compromised_r, compromised) /
                      concentration(organic_r, organic);
  std::cout << "\nconcentration lift from the injected campaign: "
            << lift << "x\n"
            << (lift > 1.2 ? "=> flagged: motif census detects the campaign"
                           : "=> below detection threshold")
            << "\n";
  return 0;
}
