#pragma once
// The engine's join primitives (Section 7, third layer).
//
// Path tables are keyed (slot0 = anchor image, slot1 = frontier image,
// slots 2-3 = tracked boundary images, signature). Each primitive is one
// bulk-synchronous phase of the virtual-rank load model:
//   * init/extend with graph edges      — Procedure 1 of Figs 4 and 6;
//   * init/extend with a child table    — EdgeJoin of Fig 7;
//   * node_join with a unary child      — NodeJoin of Fig 7;
//   * merge_halves                      — Procedure 2 of Figs 4 and 6.
//
// Everything is parameterized on the batch width B: one execution carries
// B colorings ("lanes"), counts are per-lane vectors, and entries are
// signature-blocked — lanes whose colorings give a partial match the same
// signature share one table entry and therefore one probe. Per-lane logic
// only appears where a coloring is consulted:
//   * graph-driven steps group a new vertex's lanes by the signature they
//     produce (SigGroups) and emit one entry per distinct signature;
//   * join compatibility ("shares exactly the joint colors") splits into
//     a lane-independent half — the signature intersection must be the
//     right size — and a per-lane half — the intersection must equal the
//     joint vertex's lane colors (ColoringBatch::mask_bit_eq/mask_pair_eq).
// B = 1 takes the original scalar code paths via if constexpr.
//
// The per-entry loop bodies are exposed as kernels (emit-callback form):
// the shared-memory primitives here and the virtual-MPI engine in
// ccbt/dist run the same kernels, which is what guarantees their exact
// load-model parity at every batch width.

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "ccbt/engine/exec_context.hpp"
#include "ccbt/table/flat_rows.hpp"
#include "ccbt/table/lane_simd.hpp"
#include "ccbt/table/proj_table.hpp"
#include "ccbt/table/signature.hpp"
#include "ccbt/util/error.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace ccbt {

struct ExtendOpts {
  /// Also record the new frontier into this key slot (2 or 3); -1 = none.
  int track_slot = -1;

  /// DB constraint: the anchor must be strictly higher (u ≻ w) than the
  /// newly matched cycle vertex.
  bool anchor_higher = false;
};

namespace detail {

inline void check_budget(const ExecContext& cx, std::size_t size) {
  if (size > cx.opts.max_table_entries) {
    throw BudgetExceeded("projection table exceeded " +
                         std::to_string(cx.opts.max_table_entries) +
                         " entries");
  }
}

#ifdef _OPENMP
inline int pool_threads() { return omp_get_max_threads(); }
#endif

/// Lanes of one (entry, new vertex) step grouped by the signature their
/// coloring produces: at most B distinct signatures, found by linear scan
/// (B <= 8).
template <int B>
struct SigGroups {
  std::array<Signature, B> sig;
  std::array<LaneMask, B> mask;
  int n = 0;

  void add(Signature s, int lane) {
    for (int i = 0; i < n; ++i) {
      if (sig[i] == s) {
        mask[i] |= LaneMask{1} << lane;
        return;
      }
    }
    sig[n] = s;
    mask[n] = LaneMask{1} << lane;
    ++n;
  }
};

/// Reduce per-thread accumulation maps into one, pre-sized so the merge
/// runs without intermediate rehashes. Single-producer case moves instead.
template <int B>
AccumMapT<B> reduce_maps(const ExecContext& cx,
                         std::vector<AccumMapT<B>>& maps) {
  std::size_t total = 0;
  AccumMapT<B>* only = nullptr;
  int producers = 0;
  for (AccumMapT<B>& m : maps) {
    if (m.empty()) continue;
    total += m.size();
    only = &m;
    ++producers;
  }
  if (producers == 1) {
    check_budget(cx, only->size());
    return std::move(*only);
  }
  AccumMapT<B> merged(16, cx.opts.compact_accum);
  merged.reserve(total);
  for (AccumMapT<B>& m : maps) {
    m.for_each([&](const TableKey& k, const typename LaneOps<B>::Vec& c) {
      merged.add(k, c);
    });
    check_budget(cx, merged.size());
  }
  return merged;
}

/// Run `emit(index, map)` for every index in [0, n), accumulating into
/// per-thread maps that are merged afterwards by a pre-sized two-pass
/// reduction. Load accounting is thread-affine (LoadModel buffers charges
/// per OpenMP thread), so simulated runs parallelize like real ones.
template <int B, typename Emit>
AccumMapT<B> accumulate_over(const ExecContext& cx, std::size_t n,
                             Emit&& emit) {
  ScopedStage timed(cx.stage_slot(&StageWall::accumulate));
#ifdef _OPENMP
  if (cx.opts.use_threads && pool_threads() > 1 && n > 4096) {
    const int threads = pool_threads();
    std::vector<AccumMapT<B>> maps;
    maps.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      maps.emplace_back(16, cx.opts.compact_accum);
    }
    std::atomic<bool> budget_hit{false};
#pragma omp parallel num_threads(threads)
    {
      AccumMapT<B>& local = maps[omp_get_thread_num()];
#pragma omp for schedule(dynamic, 512)
      for (std::size_t i = 0; i < n; ++i) {
        if (budget_hit.load(std::memory_order_relaxed)) continue;
        emit(i, local);
        if (local.size() > cx.opts.max_table_entries) {
          budget_hit.store(true, std::memory_order_relaxed);
        }
      }
    }
    if (budget_hit.load()) check_budget(cx, cx.opts.max_table_entries + 1);
    return reduce_maps(cx, maps);
  }
#endif
  AccumMapT<B> map(16, cx.opts.compact_accum);
  for (std::size_t i = 0; i < n; ++i) {
    emit(i, map);
    if ((i & 0xFFF) == 0) check_budget(cx, map.size());
  }
  check_budget(cx, map.size());
  return map;
}

/// Flat variant of accumulate_over for the batched (B > 1) graph-driven
/// primitives: rows are appended without hashing — duplicate keys are
/// summed later by the table's sorting seal (sort-merge consolidation),
/// which is far cheaper than a hash probe per emitted lane-vector row.
/// The sink keeps rows in the narrow packed layout (flat_rows.hpp), so
/// both the append traffic and the seal's sort move 24-byte rows rather
/// than dense entries. The budget bounds pre-merge rows at B > 1.
template <int B, typename Emit>
FlatRowsT<B> accumulate_flat(const ExecContext& cx, std::size_t n,
                             Emit&& emit) {
  ScopedStage timed(cx.stage_slot(&StageWall::accumulate));
  // Every sink is bound to its accumulation engine up front (the
  // CCBT_ACCUM-pinnable probe/sharded choice): the per-row appends then
  // never test or allocate their caches, and the run-bulk extend path
  // can be entered for the whole phase. The graph's vertex count is the
  // shard-cut domain — emitted v1 values are vertices or kNoVertex.
  const VertexId shard_domain = cx.g.num_vertices();
#ifdef _OPENMP
  if (cx.opts.use_threads && pool_threads() > 1 && n > 4096) {
    const int threads = pool_threads();
    std::vector<FlatRowsT<B>> rows(threads);
    std::atomic<bool> budget_hit{false};
#pragma omp parallel num_threads(threads)
    {
      FlatRowsT<B>& local = rows[omp_get_thread_num()];
      local.prepare_emit(AccumEngine::kAuto, shard_domain);
#pragma omp for schedule(dynamic, 512)
      for (std::size_t i = 0; i < n; ++i) {
        if (budget_hit.load(std::memory_order_relaxed)) continue;
        emit(i, local);
        if (local.size() > cx.opts.max_table_entries) {
          budget_hit.store(true, std::memory_order_relaxed);
        }
      }
    }
    if (budget_hit.load()) check_budget(cx, cx.opts.max_table_entries + 1);
    std::size_t total = 0;
    for (const auto& r : rows) total += r.size();
    check_budget(cx, total);
    FlatRowsT<B>* biggest = &rows[0];
    for (auto& r : rows) {
      if (r.size() > biggest->size()) biggest = &r;
    }
    FlatRowsT<B> out = std::move(*biggest);
    for (auto& r : rows) {
      if (&r == biggest) continue;
      out.absorb(std::move(r));
    }
    if (cx.accum != nullptr) out.collect_telemetry(*cx.accum);
    return out;
  }
#endif
  FlatRowsT<B> out;
  out.prepare_emit(AccumEngine::kAuto, shard_domain);
  for (std::size_t i = 0; i < n; ++i) {
    emit(i, out);
    if ((i & 0xFFF) == 0) check_budget(cx, out.size());
  }
  check_budget(cx, out.size());
  if (cx.accum != nullptr) out.collect_telemetry(*cx.accum);
  return out;
}

/// The one dispatch point for the per-width accumulation strategy every
/// row-producing primitive shares: `body(i, emit)` emits the rows of
/// item i through `emit(key, lane-counts)`. B = 1 hashes rows through
/// per-thread AccumMaps (exact pre-merge, the original scalar path);
/// B > 1 appends narrow packed rows that the table's sorting seal
/// consolidates.
template <int B, typename Body>
ProjTableT<B> accumulate_rows(const ExecContext& cx, int arity,
                              std::size_t n, Body&& body) {
  if constexpr (B == 1) {
    AccumMapT<1> map =
        accumulate_over<1>(cx, n, [&](std::size_t i, AccumMapT<1>& sink) {
          body(i, [&](const TableKey& k, Count c) { sink.add(k, c); });
        });
    // emit_bytes is what the accumulation phase materialized before the
    // seal: the deduped hash rows here, the (cache-folded) flat rows at
    // B > 1 — the per-trial byte-traffic comparison the bench reports.
    if (cx.accum != nullptr) {
      ++cx.accum->phases;
      cx.accum->rows += map.size();
      cx.accum->emit_bytes += map.byte_size();
    }
    cx.end_phase();
    return ProjTableT<1>::from_map(arity, std::move(map));
  } else {
    FlatRowsT<B> rows =
        accumulate_flat<B>(cx, n, [&](std::size_t i, FlatRowsT<B>& sink) {
          body(i, [&](const TableKey& k, const typename LaneOps<B>::Vec& c) {
            sink.append(k, c);
          });
        });
    cx.end_phase();
    if (!cx.opts.lane_compress) {
      // Ablation: lane_compress off forces the dense u64[B] layout
      // through the whole pipeline, narrow accumulation included.
      return ProjTableT<B>::from_flat(arity, rows.take_wide());
    }
    return ProjTableT<B>::from_packed(arity, std::move(rows));
  }
}

/// Probe-side view of a stored child table. Joins probe the child once
/// per path row, so a compressed or narrow child must not be decoded per
/// probe — this expands it to dense rows ONCE up front and serves every
/// group probe as a raw subspan through the bucket index. Dense children
/// pay nothing (the view aliases their rows).
template <int B>
class ChildProbe {
 public:
  explicit ChildProbe(const ProjTableT<B>& t) : t_(t) {
    rows_ = t.expand_rows(0, t.size(), scratch_);
  }
  ChildProbe(const ChildProbe&) = delete;
  ChildProbe& operator=(const ChildProbe&) = delete;

  std::span<const TableEntryT<B>> group(int slot, VertexId v) const {
    const auto [lo, hi] = t_.group_span(slot, v);
    return rows_.subspan(lo, hi - lo);
  }

 private:
  const ProjTableT<B>& t_;
  std::vector<TableEntryT<B>> scratch_;
  std::span<const TableEntryT<B>> rows_;
};

}  // namespace detail

// ---------------------------------------------------------------- kernels
// Per-item loop bodies shared verbatim by the shared-memory primitives and
// the distributed engine. Each kernel performs the load-model charges
// itself and hands finished rows to `emit(key, lane-counts)`; the caller
// only chooses where rows go (a hash-map sink or a transport).

/// Initial path entries out of one data vertex u (Procedure 1 init).
template <int B, typename Emit>
void kernel_init_from_graph(const ExecContext& cx, VertexId u,
                            const ExtendOpts& o, Emit&& emit) {
  const CsrGraph& g = cx.g;
  cx.charge(u, g.degree(u));
  for (VertexId w : g.neighbors(u)) {
    if (o.anchor_higher && !cx.order.higher(u, w)) continue;
    if constexpr (B == 1) {
      if (cx.chi.color(u) == cx.chi.color(w)) continue;
      TableKey key;
      key.v[0] = u;
      key.v[1] = w;
      if (o.track_slot >= 0) key.v[o.track_slot] = w;
      key.sig = cx.chi.bit(u) | cx.chi.bit(w);
      emit(key, Count{1});
      cx.send(u, w, 1);
    } else {
      detail::SigGroups<B> groups;
      std::uint64_t cu = cx.chi.colors_word(u);
      std::uint64_t cw = cx.chi.colors_word(w);
      for (int l = 0; l < B; ++l, cu >>= 8, cw >>= 8) {
        if ((cu & 0xFF) == (cw & 0xFF)) continue;
        groups.add((Signature{1} << (cu & 0xFF)) |
                       (Signature{1} << (cw & 0xFF)),
                   l);
      }
      if (groups.n == 0) continue;
      TableKey key;
      key.v[0] = u;
      key.v[1] = w;
      if (o.track_slot >= 0) key.v[o.track_slot] = w;
      for (int i = 0; i < groups.n; ++i) {
        key.sig = groups.sig[i];
        emit(key, LaneOps<B>::ones(groups.mask[i]));
      }
      cx.send(u, w, 1);
    }
  }
}

/// Re-key one child-table entry as an initial path entry. Signatures are
/// per-entry at every width, so no lane logic is needed.
template <int B, typename Emit>
void kernel_init_from_child(const ExecContext& cx, const TableEntryT<B>& e,
                            bool flip, const ExtendOpts& o, Emit&& emit) {
  const VertexId a = e.key.v[flip ? 1 : 0];
  const VertexId b = e.key.v[flip ? 0 : 1];
  cx.charge(b, 1);
  if (o.anchor_higher && !cx.order.higher(a, b)) return;
  TableKey key;
  key.v[0] = a;
  key.v[1] = b;
  if (o.track_slot >= 0) key.v[o.track_slot] = b;
  key.sig = e.key.sig;
  emit(key, e.cnt);
}

/// Extend one path entry by every data-graph edge out of its frontier.
template <int B, typename Emit>
void kernel_extend_with_graph(const ExecContext& cx, const TableEntryT<B>& e,
                              const ExtendOpts& o, Emit&& emit) {
  const CsrGraph& g = cx.g;
  const VertexId v = e.key.v[1];
  cx.charge(v, g.degree(v));
  [[maybe_unused]] LaneMask alive = 0;
  if constexpr (B > 1) {
    alive = LaneSimdT<B>::nonzero_mask(e.cnt);
    if (alive == 0) return;
  }
  for (VertexId w : g.neighbors(v)) {
    if (o.anchor_higher && !cx.order.higher(e.key.v[0], w)) continue;
    if constexpr (B == 1) {
      const Signature w_bit = cx.chi.bit(w);
      if ((e.key.sig & w_bit) != 0) continue;
      TableKey key = e.key;
      key.v[1] = w;
      if (o.track_slot >= 0) key.v[o.track_slot] = w;
      key.sig = e.key.sig | w_bit;
      emit(key, e.cnt);
      cx.send(v, w, 1);
    } else {
      detail::SigGroups<B> groups;
      const std::uint64_t cw = cx.chi.colors_word(w);
      for (LaneMask a = alive; a != 0; a &= (a - 1)) {
        const int l = std::countr_zero(static_cast<unsigned>(a));
        const Signature w_bit = Signature{1} << ((cw >> (8 * l)) & 0xFF);
        if ((e.key.sig & w_bit) != 0) continue;
        groups.add(e.key.sig | w_bit, l);
      }
      if (groups.n == 0) continue;
      TableKey key = e.key;
      key.v[1] = w;
      if (o.track_slot >= 0) key.v[o.track_slot] = w;
      for (int i = 0; i < groups.n; ++i) {
        key.sig = groups.sig[i];
        emit(key, LaneSimdT<B>::masked(e.cnt, groups.mask[i]));
      }
      cx.send(v, w, 1);
    }
  }
}

/// EdgeJoin: extend one path entry through its frontier's group of a
/// child block's binary table.
template <int B, typename Emit>
void kernel_extend_with_child(const ExecContext& cx, const TableEntryT<B>& e,
                              std::span<const TableEntryT<B>> group,
                              const ExtendOpts& o, Emit&& emit) {
  const VertexId v = e.key.v[1];
  cx.charge(v, group.size());
  if constexpr (B == 1) {
    const Signature v_bit = cx.chi.bit(v);
    for (const TableEntryT<B>& ce : group) {
      if (!node_join_compatible(e.key.sig, ce.key.sig, v_bit)) continue;
      const VertexId w = ce.key.v[1];
      if (o.anchor_higher && !cx.order.higher(e.key.v[0], w)) continue;
      TableKey key = e.key;
      key.v[1] = w;
      if (o.track_slot >= 0) key.v[o.track_slot] = w;
      key.sig = e.key.sig | ce.key.sig;
      emit(key, e.cnt * ce.cnt);
      cx.send(v, w, 1);
    }
  } else {
    for (const TableEntryT<B>& ce : group) {
      // Lane-independent half of the compatibility test: the matches may
      // share exactly one color (the joint vertex's).
      const Signature inter = e.key.sig & ce.key.sig;
      if (std::popcount(inter) != 1) continue;
      const VertexId w = ce.key.v[1];
      if (o.anchor_higher && !cx.order.higher(e.key.v[0], w)) continue;
      // Per-lane half: that color must be the joint vertex's lane color.
      const LaneMask m = cx.chi.mask_bit_eq(v, inter);
      if (m == 0) continue;
      const auto cnt = LaneSimdT<B>::mul_masked(e.cnt, ce.cnt, m);
      if (LaneSimdT<B>::is_zero(cnt)) continue;
      TableKey key = e.key;
      key.v[1] = w;
      if (o.track_slot >= 0) key.v[o.track_slot] = w;
      key.sig = e.key.sig | ce.key.sig;
      emit(key, cnt);
      cx.send(v, w, 1);
    }
  }
}

/// NodeJoin: multiply one path entry against the unary child group of its
/// key slot `slot` vertex.
template <int B, typename Emit>
void kernel_node_join(const ExecContext& cx, const TableEntryT<B>& e,
                      std::span<const TableEntryT<B>> group, int slot,
                      Emit&& emit) {
  const VertexId x = e.key.v[slot];
  cx.charge(x, group.size());
  if constexpr (B == 1) {
    const Signature x_bit = cx.chi.bit(x);
    for (const TableEntryT<B>& ce : group) {
      if (!node_join_compatible(e.key.sig, ce.key.sig, x_bit)) continue;
      TableKey key = e.key;
      key.sig = e.key.sig | ce.key.sig;
      emit(key, e.cnt * ce.cnt);
    }
  } else {
    for (const TableEntryT<B>& ce : group) {
      const Signature inter = e.key.sig & ce.key.sig;
      if (std::popcount(inter) != 1) continue;
      const LaneMask m = cx.chi.mask_bit_eq(x, inter);
      if (m == 0) continue;
      const auto cnt = LaneSimdT<B>::mul_masked(e.cnt, ce.cnt, m);
      if (LaneSimdT<B>::is_zero(cnt)) continue;
      TableKey key = e.key;
      key.sig = e.key.sig | ce.key.sig;
      emit(key, cnt);
    }
  }
}

/// Project one entry onto its first new_arity slots.
template <int B, typename Emit>
void kernel_aggregate(const ExecContext& cx, const TableEntryT<B>& e,
                      int new_arity, Emit&& emit) {
  TableKey key;
  for (int s = 0; s < new_arity; ++s) key.v[s] = e.key.v[s];
  key.sig = e.key.sig;
  if (new_arity >= 1) cx.charge(key.v[0], 1);
  emit(key, e.cnt);
}

// ------------------------------------------------------------- primitives

/// Initial path table over all data-graph edges: one entry per ordered
/// pair (u, w) of adjacent vertices, per distinct lane signature (u ≻ w
/// when anchor_higher; lanes coloring u and w alike contribute nothing).
template <int B = 1>
ProjTableT<B> init_path_from_graph(const ExecContext& cx,
                                   const ExtendOpts& o) {
  return detail::accumulate_rows<B>(
      cx, 2, cx.g.num_vertices(), [&](std::size_t ui, auto&& emit) {
        kernel_init_from_graph<B>(cx, static_cast<VertexId>(ui), o, emit);
      });
}

/// Initial path table from a child block's binary table. `flip` swaps the
/// child's boundary orientation so slot 0 is the walk's starting node.
template <int B>
ProjTableT<B> init_path_from_child(const ExecContext& cx,
                                   const ProjTableT<B>& child, bool flip,
                                   const ExtendOpts& o) {
  // Stored child tables may be compressed or narrow: row_at expands each
  // row into a dense entry on the stack (a plain reference when dense).
  return detail::accumulate_rows<B>(
      cx, 2, child.size(), [&](std::size_t i, auto&& emit) {
        TableEntryT<B> tmp;
        kernel_init_from_child<B>(cx, child.row_at(i, tmp), flip, o, emit);
      });
}

namespace detail {

/// Entry-scan extension: one kernel call per path entry.
template <int B>
ProjTableT<B> extend_with_graph_scan(const ExecContext& cx,
                                     const ProjTableT<B>& path,
                                     const ExtendOpts& o) {
  return detail::accumulate_rows<B>(
      cx, path.arity(), path.size(), [&](std::size_t i, auto&& emit) {
        TableEntryT<B> tmp;
        kernel_extend_with_graph<B>(cx, path.row_at(i, tmp), o, emit);
      });
}

/// Frontier-grouped extension (B > 1): seal the path by frontier, then
/// walk each frontier vertex's adjacency list ONCE for its whole bucket
/// of entries, iterating only the set bits of each entry's live-lane
/// mask (at batch densities most rows carry one or two live lanes, so
/// this replaces a B-wide loop per (entry, neighbor) with ~popcount
/// iterations). Emits exactly the entry-scan kernel's rows and
/// load-model charges — only the loop nesting (and therefore the
/// constant factor) differs.
template <int B>
ProjTableT<B> extend_with_graph_grouped(const ExecContext& cx,
                                        ProjTableT<B>& path,
                                        const ExtendOpts& o) {
  const CsrGraph& g = cx.g;
  const VertexId n = g.num_vertices();
  // The sealed path is consumed once right below: stay dense (kStream).
  {
    ScopedStage timed(cx.stage_slot(&StageWall::seal));
    path.seal(SortOrder::kByV1, n, LaneSealHint::kStream);
    // DB probes only accept anchors strictly above the new vertex:
    // rank-partition each frontier bucket (anchor rank descending) so
    // every neighbor scan below stops at a partition point instead of
    // testing the whole bucket. Emission sets, charges and sends are
    // unchanged — only the scan order and its cutoff differ, and the
    // sink's sorting seal restores a canonical order.
    if (o.anchor_higher) path.rank_partition_buckets(cx.order.ranks());
  }
  cx.note_lanes(path.layout());
  if (!path.has_bucket_index()) {
    return extend_with_graph_scan<B>(cx, path, o);
  }
  const bool rank_cut = path.rank_partitioned();
  // All-16-bit streaming path: when the sealed path kept u16 narrow rows
  // and the output key stays packable, each emission is a masked u16 row
  // copy with the packed key rewritten in registers — no dense expansion
  // on either side. (A signature outgrowing the packed key's 8-bit field
  // falls back per emission; a tracked slot >= 2 disables the path.)
  const FlatRowsT<B>* const flat = path.flat_storage();
  const bool fast16 = flat != nullptr &&
                      flat->mode() == FlatRowsT<B>::Mode::kU16 &&
                      (o.track_slot == -1 || o.track_slot == 1);

  const std::size_t hint = path.size();
  auto rows = detail::accumulate_flat<B>(
      cx, n, [&](std::size_t vi, FlatRowsT<B>& sink) {
        const auto v = static_cast<VertexId>(vi);
        if (sink.empty()) sink.reserve_hint(hint);
        if (fast16) {
          const auto& rows16 = flat->rows_u16();
          const auto [lo, hi] = path.group_span(1, v);
          if (lo == hi) return;
          cx.charge(v, std::uint64_t{g.degree(v)} * (hi - lo));

          // One fused side-word per row: anchor rank in the high bits,
          // live-lane mask in the low byte — a single sequential load in
          // the neighbor loop instead of two.
          thread_local std::vector<std::uint64_t> side16;
          side16.clear();
          side16.reserve(hi - lo);
          for (std::size_t i = lo; i < hi; ++i) {
            const auto& r = rows16[i];
            LaneMask a = 0;
            CCBT_SIMD
            for (int l = 0; l < B; ++l) {
              a |= static_cast<LaneMask>(r.c[l] != 0) << l;
            }
            const std::uint64_t rank =
                cx.order.rank(static_cast<VertexId>(r.k >> 36));
            side16.push_back((rank << 8) | a);
          }

          // Probe engine: pipeline the combining-cache probes a tile
          // ahead — prefetch each slot at enqueue, append on flush, so
          // the dependent slot load is in flight across a tile of
          // emissions instead of stalling every append. (Emission
          // order within a sink never changes sealed counts: every
          // fold is an exact u64 sum.) Idle when the sink is sharded.
          constexpr int kTile = 16;
          struct Pending {
            std::uint64_t k;
            std::uint32_t row;
            LaneMask m;
          };
          std::array<Pending, kTile> tile;
          int tn = 0;
          auto flush_tile = [&] {
            for (int t = 0; t < tn; ++t) {
              sink.append_masked_u16(tile[t].k, rows16[tile[t].row],
                                     tile[t].m);
            }
            tn = 0;
          };
          auto emit_probe = [&](std::uint64_t k, std::size_t row,
                                LaneMask m) {
            sink.prefetch_combine(k);
            tile[tn++] = {k, static_cast<std::uint32_t>(row), m};
            if (tn == kTile) flush_tile();
          };

          // Frontier-side dedup (sparse emission format only, so
          // CCBT_EMIT=dense reproduces the oracle path exactly): the
          // bucket is sorted by (v0, sig), so emissions for one (v, w)
          // burst repeat keys back to back — sibling rows whose
          // signatures close over the same color set. A one-row pending
          // register folds those bursts before they reach a shard or
          // probe slot: fewer records pushed, fewer cache probes. Every
          // fold is an exact u16-checked sum, flushed on key change,
          // overflow, or burst end, so sealed counts are unchanged.
          const bool dedup = sink.sparse();
          using Row16 = PackedFlatRowT<B, std::uint16_t>;
          std::uint64_t pend_k = ~std::uint64_t{0};
          Row16 pend;
          LaneMask pend_m = 0;
          std::uint64_t folds = 0;

          for (VertexId w : g.neighbors(v)) {
            const std::uint64_t cw = cx.chi.colors_word(w);
            const std::uint64_t wrank = cx.order.rank(w);
            // Rank-partitioned bucket: the compatible anchors (rank >
            // rank(w)) are exactly the leading prefix — cut the scan
            // there and drop the per-row order test.
            std::size_t end = hi;
            if (rank_cut) {
              end = lo + static_cast<std::size_t>(
                            std::partition_point(
                                side16.begin(), side16.end(),
                                [wrank](std::uint64_t s) {
                                  return (s >> 8) > wrank;
                                }) -
                            side16.begin());
            }
            // Sharded engine: the whole (v, w) burst shares v1 == w,
            // so it lands in one shard — resolve the shard and its
            // cache slice once and emit through the run handle (one
            // L1 probe + push per row). Invalid on the probe engine,
            // and re-acquired after any generic fallback, which can
            // escalate the sink and tear the shards down.
            auto run = sink.run_u16(w, end - lo);
            auto flush_pend = [&] {
              if (pend_k == ~std::uint64_t{0}) return;
              if (run.valid()) {
                sink.run_append_u16(run, pend_k, pend, pend_m);
              } else {
                sink.append_masked_u16(pend_k, pend, pend_m);
              }
              pend_k = ~std::uint64_t{0};
            };
            auto emit_fold = [&](std::uint64_t k, const Row16& r2,
                                 LaneMask m) {
              if (k == pend_k) {
                std::array<std::uint32_t, B> sum;
                std::uint32_t hi = 0;
                CCBT_SIMD
                for (int l = 0; l < B; ++l) {
                  sum[l] = static_cast<std::uint32_t>(pend.c[l]) +
                           (((m >> l) & 1) != 0 ? r2.c[l]
                                                : std::uint16_t{0});
                  hi |= sum[l];
                }
                if (hi <= 0xFFFFu) {
                  CCBT_SIMD
                  for (int l = 0; l < B; ++l) {
                    pend.c[l] = static_cast<std::uint16_t>(sum[l]);
                  }
                  pend_m |= m;
                  ++folds;
                  return;
                }
              }
              flush_pend();
              pend_k = k;
              pend.k = k;
              pend_m = m;
              CCBT_SIMD
              for (int l = 0; l < B; ++l) {
                pend.c[l] = ((m >> l) & 1) != 0 ? r2.c[l]
                                                : std::uint16_t{0};
              }
              // Probe engine: the slot load is in flight while the
              // burst keeps folding into the register.
              sink.prefetch_combine(k);
            };
            for (std::size_t i = lo; i < end; ++i) {
              const std::uint64_t side = side16[i - lo];
              const auto a0 = static_cast<LaneMask>(side & 0xFF);
              if (a0 == 0) continue;
              if (o.anchor_higher && !rank_cut && (side >> 8) <= wrank) {
                continue;
              }
              const auto& r = rows16[i];
              const auto esig = static_cast<Signature>(r.k & 0xFF);
              const std::uint64_t kbase =
                  (r.k & (std::uint64_t{kPacked28NoVertex} << 36)) |
                  (std::uint64_t{w} << 8);
              if ((a0 & (a0 - 1)) == 0) {
                // One live lane (the common case at batch densities):
                // one signature, one mask — skip the grouping pass.
                const int l = std::countr_zero(static_cast<unsigned>(a0));
                const Signature w_bit = Signature{1}
                                        << ((cw >> (8 * l)) & 0xFF);
                if ((esig & w_bit) != 0) continue;
                const Signature sig = esig | w_bit;
                if (sig <= 0xFF) [[likely]] {
                  if (dedup) {
                    emit_fold(kbase | sig, r, a0);
                  } else if (run.valid()) {
                    sink.run_append_u16(run, kbase | sig, r, a0);
                  } else {
                    emit_probe(kbase | sig, i, a0);
                  }
                } else {
                  flush_pend();
                  TableKey key;
                  key.v[0] = static_cast<VertexId>(r.k >> 36);
                  key.v[1] = w;
                  key.sig = sig;
                  sink.append_masked(key, flat->expand(i), a0,
                                     std::uint64_t{0xFFFF});
                  run = sink.run_u16(w, 0);
                }
                cx.send(v, w, 1);
                continue;
              }
              detail::SigGroups<B> groups;
              for (LaneMask a = a0; a != 0; a &= (a - 1)) {
                const int l = std::countr_zero(static_cast<unsigned>(a));
                const Signature w_bit = Signature{1}
                                        << ((cw >> (8 * l)) & 0xFF);
                if ((esig & w_bit) != 0) continue;
                groups.add(esig | w_bit, l);
              }
              if (groups.n == 0) continue;
              for (int gi = 0; gi < groups.n; ++gi) {
                if (groups.sig[gi] <= 0xFF) [[likely]] {
                  if (dedup) {
                    emit_fold(kbase | groups.sig[gi], r, groups.mask[gi]);
                  } else if (run.valid()) {
                    sink.run_append_u16(run, kbase | groups.sig[gi], r,
                                        groups.mask[gi]);
                  } else {
                    emit_probe(kbase | groups.sig[gi], i, groups.mask[gi]);
                  }
                } else {
                  // Color >= 8: the signature no longer fits the packed
                  // key's 8-bit field.
                  flush_pend();
                  TableKey key;
                  key.v[0] = static_cast<VertexId>(r.k >> 36);
                  key.v[1] = w;
                  key.sig = groups.sig[gi];
                  sink.append_masked(key, flat->expand(i), groups.mask[gi],
                                     std::uint64_t{0xFFFF});
                  run = sink.run_u16(w, 0);
                }
              }
              cx.send(v, w, 1);
            }
            flush_pend();
          }
          flush_tile();
          if (folds != 0) sink.note_frontier_folds(folds);
          return;
        }
        thread_local std::vector<TableEntryT<B>> bscratch;
        const auto bucket = path.group_expanded(1, v, bscratch);
        if (bucket.empty()) return;
        cx.charge(v, std::uint64_t{g.degree(v)} * bucket.size());

        // Live-lane masks, count OR-bounds, and anchor ranks, one pass
        // per bucket; neighbors then reuse them. Neighbors are the
        // outer loop so each neighbor's packed color word and rank are
        // fetched once per bucket, not once per entry.
        thread_local std::vector<LaneMask> alive;
        thread_local std::vector<Count> ehi;
        thread_local std::vector<std::uint32_t> erank;
        alive.clear();
        ehi.clear();
        erank.clear();
        alive.reserve(bucket.size());
        ehi.reserve(bucket.size());
        erank.reserve(bucket.size());
        for (const TableEntryT<B>& e : bucket) {
          alive.push_back(LaneSimdT<B>::nonzero_mask(e.cnt));
          Count h = 0;
          CCBT_SIMD
          for (int l = 0; l < B; ++l) h |= LaneOps<B>::lane(e.cnt, l);
          ehi.push_back(h);
          erank.push_back(cx.order.rank(e.key.v[0]));
        }

        for (VertexId w : g.neighbors(v)) {
          const std::uint64_t cw = cx.chi.colors_word(w);
          const std::uint32_t wrank = cx.order.rank(w);
          // Same partition-point cut as the fast16 path: erank is
          // descending when the bucket is rank-partitioned.
          std::size_t end = bucket.size();
          if (rank_cut) {
            end = static_cast<std::size_t>(
                std::partition_point(
                    erank.begin(), erank.end(),
                    [wrank](std::uint32_t r) { return r > wrank; }) -
                erank.begin());
          }
          for (std::size_t i = 0; i < end; ++i) {
            if (alive[i] == 0) continue;
            const TableEntryT<B>& e = bucket[i];
            if (o.anchor_higher && !rank_cut && erank[i] <= wrank) continue;
            detail::SigGroups<B> groups;
            for (LaneMask a = alive[i]; a != 0; a &= (a - 1)) {
              const int l = std::countr_zero(static_cast<unsigned>(a));
              const Signature w_bit = Signature{1}
                                      << ((cw >> (8 * l)) & 0xFF);
              if ((e.key.sig & w_bit) != 0) continue;
              groups.add(e.key.sig | w_bit, l);
            }
            if (groups.n == 0) continue;
            TableKey key = e.key;
            key.v[1] = w;
            if (o.track_slot >= 0) key.v[o.track_slot] = w;
            for (int gi = 0; gi < groups.n; ++gi) {
              key.sig = groups.sig[gi];
              sink.append_masked(key, e.cnt, groups.mask[gi], ehi[i]);
            }
            cx.send(v, w, 1);
          }
        }
      });
  cx.end_phase();
  if (!cx.opts.lane_compress) {
    return ProjTableT<B>::from_flat(path.arity(), rows.take_wide());
  }
  return ProjTableT<B>::from_packed(path.arity(), std::move(rows));
}

}  // namespace detail

/// Extend every path entry by one data-graph edge out of the frontier.
/// The mutable overload may reseal the path (frontier-grouped traversal
/// at B > 1); results are identical either way.
template <int B>
ProjTableT<B> extend_with_graph(const ExecContext& cx, ProjTableT<B>& path,
                                const ExtendOpts& o) {
  if constexpr (B == 1) {
    return detail::extend_with_graph_scan<B>(cx, path, o);
  } else {
    return detail::extend_with_graph_grouped<B>(cx, path, o);
  }
}

template <int B>
ProjTableT<B> extend_with_graph(const ExecContext& cx,
                                const ProjTableT<B>& path,
                                const ExtendOpts& o) {
  return detail::extend_with_graph_scan<B>(cx, path, o);
}

/// Extend through a child block's binary table (EdgeJoin): path frontier v
/// joins child entries (v, w, sig2). `child` must be sealed kByV0 and
/// already oriented (use TablePool::oriented).
template <int B>
ProjTableT<B> extend_with_child(const ExecContext& cx, ProjTableT<B>& path,
                                const ProjTableT<B>& child,
                                const ExtendOpts& o) {
  {
    ScopedStage timed(cx.stage_slot(&StageWall::seal));
    path.seal(SortOrder::kByV1, cx.g.num_vertices(), LaneSealHint::kStream);
  }
  cx.note_lanes(path.layout());
  // The sealed path at B > 1 may be narrow: row_at decodes on read
  // (no-op when dense). The stored child is probed once per path row, so
  // a compressed child is expanded once up front instead.
  const detail::ChildProbe<B> probe(child);
  return detail::accumulate_rows<B>(
      cx, path.arity(), path.size(), [&](std::size_t i, auto&& emit) {
        TableEntryT<B> tmp;
        const TableEntryT<B>& e = path.row_at(i, tmp);
        kernel_extend_with_child<B>(cx, e, probe.group(0, e.key.v[1]), o,
                                    emit);
      });
}

/// NodeJoin: multiply in a unary child at key slot `slot` (0 = anchor,
/// 1 = frontier). `child` must be sealed kByV0. `path` may be unsealed;
/// it is consumed row by row (flattened first when its accumulation
/// left it sharded — the one primitive that indexes an unsealed table).
template <int B>
ProjTableT<B> node_join(const ExecContext& cx, ProjTableT<B>& path,
                        const ProjTableT<B>& child, int slot) {
  path.ensure_row_access();
  const detail::ChildProbe<B> probe(child);
  return detail::accumulate_rows<B>(
      cx, path.arity(), path.size(), [&](std::size_t i, auto&& emit) {
        TableEntryT<B> tmp;
        const TableEntryT<B>& e = path.row_at(i, tmp);
        kernel_node_join<B>(cx, e, probe.group(0, e.key.v[slot]), slot,
                            emit);
      });
}

/// Where each output key slot of a merge comes from.
struct MergeOut {
  int side = 0;  // 0 = plus path, 1 = minus path
  int slot = 0;  // key slot within that path's table
};

struct MergeSpec {
  int out_arity = 0;  // 0, 1, or 2 boundary images in the output key
  std::array<MergeOut, 2> out{};
};

/// The merge-join kernel shared by merge_halves and the distributed
/// engine: join the matching (u, v) subgroups of one slot-0 bucket pair
/// (both ranges sorted kByV0V1) with a two-pointer sweep over the
/// v-sorted subranges, charging the load model per group and calling
/// `emit(key, counts)` for every compatible pair. Keeping the shared and
/// distributed engines on one kernel is what guarantees their exact
/// load-model parity.
template <int B, typename Sink>
void merge_bucket(const ExecContext& cx, std::span<const TableEntryT<B>> pu,
                  std::span<const TableEntryT<B>> mu, const MergeSpec& spec,
                  Sink&& emit) {
  std::size_t pi = 0, mi = 0;
  while (pi < pu.size() && mi < mu.size()) {
    const VertexId pv = pu[pi].key.v[1];
    const VertexId mv = mu[mi].key.v[1];
    if (pv < mv) {
      ++pi;
      continue;
    }
    if (mv < pv) {
      ++mi;
      continue;
    }
    // Same (u, v) group in both tables.
    const VertexId u = pu[pi].key.v[0];
    const VertexId v = pv;
    std::size_t pj = pi, mj = mi;
    while (pj < pu.size() && pu[pj].key.v[1] == v) ++pj;
    while (mj < mu.size() && mu[mj].key.v[1] == v) ++mj;
    cx.charge(v, (pj - pi) * (mj - mi));
    if constexpr (B == 1) {
      const Signature uv_bits = cx.chi.bit(u) | cx.chi.bit(v);
      // The signature compatibility tests are a branchless AND/compare:
      // run them as a simd-hinted prefilter pass over the minus subgroup
      // (most pairs fail), then walk only the survivors.
      thread_local std::vector<std::uint8_t> compat;
      const std::size_t mcount = mj - mi;
      if (compat.size() < mcount) compat.resize(mcount);
      std::uint8_t* const ok = compat.data();
      const TableEntryT<B>* const mb = mu.data() + mi;
      for (std::size_t a = pi; a < pj; ++a) {
        const Signature asig = pu[a].key.sig;
        const Count acnt = pu[a].cnt;
        CCBT_SIMD
        for (std::size_t t = 0; t < mcount; ++t) {
          ok[t] = (asig & mb[t].key.sig) == uv_bits;
        }
        for (std::size_t t = 0; t < mcount; ++t) {
          if (!ok[t]) continue;
          const std::size_t b = mi + t;
          TableKey key;
          for (int s = 0; s < spec.out_arity; ++s) {
            const MergeOut& src = spec.out[s];
            key.v[s] = (src.side == 0 ? pu[a] : mu[b]).key.v[src.slot];
          }
          key.sig = asig | mu[b].key.sig;
          emit(key, acnt * mu[b].cnt);
          if (spec.out_arity >= 2) cx.send(v, key.v[1], 1);
        }
      }
    } else {
      // Same prefilter shape as B = 1, plus a live-lane intersection:
      // the union table holds every coloring's keys, so most pairs that
      // pass the signature half (halves may share exactly the two
      // endpoint colors) live in disjoint lanes and can never multiply
      // to a nonzero row. Both halves are branchless, so run them
      // simd-hinted over the minus subgroup and walk only survivors.
      thread_local std::vector<std::uint8_t> compat;
      thread_local std::vector<LaneMask> malive;
      const std::size_t mcount = mj - mi;
      if (compat.size() < mcount) compat.resize(mcount);
      if (malive.size() < mcount) malive.resize(mcount);
      std::uint8_t* const ok = compat.data();
      LaneMask* const ma = malive.data();
      const TableEntryT<B>* const mb = mu.data() + mi;
      for (std::size_t t = 0; t < mcount; ++t) {
        ma[t] = LaneSimdT<B>::nonzero_mask(mb[t].cnt);
      }
      for (std::size_t a = pi; a < pj; ++a) {
        const TableEntryT<B>& pa = pu[a];
        const Signature asig = pa.key.sig;
        const LaneMask palive = LaneSimdT<B>::nonzero_mask(pa.cnt);
        if (palive == 0) continue;
        CCBT_SIMD
        for (std::size_t t = 0; t < mcount; ++t) {
          ok[t] = static_cast<std::uint8_t>(
              (std::popcount(asig & mb[t].key.sig) == 2) &
              ((ma[t] & palive) != 0));
        }
        for (std::size_t t = 0; t < mcount; ++t) {
          if (!ok[t]) continue;
          const std::size_t b = mi + t;
          const Signature inter = asig & mu[b].key.sig;
          // Per-lane half: those colors must be {χ_l(u), χ_l(v)}.
          const LaneMask m =
              cx.chi.mask_pair_eq(u, v, inter) & (ma[t] & palive);
          if (m == 0) continue;
          const auto cnt = LaneSimdT<B>::mul_masked(pa.cnt, mu[b].cnt, m);
          if (LaneSimdT<B>::is_zero(cnt)) continue;
          TableKey key;
          for (int s = 0; s < spec.out_arity; ++s) {
            const MergeOut& src = spec.out[s];
            key.v[s] = (src.side == 0 ? pa : mu[b]).key.v[src.slot];
          }
          key.sig = asig | mu[b].key.sig;
          emit(key, cnt);
          if (spec.out_arity >= 2) cx.send(v, key.v[1], 1);
        }
      }
    }
    pi = pj;
    mi = mj;
  }
}

/// Packed-row variant of the B > 1 merge_bucket: both bucket ranges stay
/// in their narrow flat rows (packed u64 key + u16/u32 counts) — the
/// live-lane prefilter, the pair-compatibility test and the multiply-add
/// all run on the packed payloads, with no dense expansion of either
/// bucket. Mixed widths join through the two width template parameters;
/// only a table that left the narrow layout altogether falls back to the
/// dense kernel. Narrow lane products always fit u64 exactly (even
/// u32 x u32 < 2^64), so the emitted counts are bit-identical to
/// mul_masked over the expanded rows; charges and sends match the dense
/// kernel row for row.
template <int B, typename WP, typename WM, typename Sink>
void merge_bucket_packed(const ExecContext& cx,
                         std::span<const PackedFlatRowT<B, WP>> pu,
                         std::span<const PackedFlatRowT<B, WM>> mu,
                         const MergeSpec& spec, Sink&& emit) {
  static_assert(B > 1, "packed rows exist only in batched executions");
  const auto v1_of = [](std::uint64_t k) {
    return static_cast<VertexId>((k >> 8) & kPacked28NoVertex);
  };
  std::size_t pi = 0, mi = 0;
  while (pi < pu.size() && mi < mu.size()) {
    const VertexId pv = v1_of(pu[pi].k);
    const VertexId mv = v1_of(mu[mi].k);
    if (pv < mv) {
      ++pi;
      continue;
    }
    if (mv < pv) {
      ++mi;
      continue;
    }
    // Same (u, v) group in both tables (the ranges are slot-0 buckets,
    // sorted by raw packed key = (v1, sig) within the bucket).
    const auto u = static_cast<VertexId>(pu[pi].k >> 36);
    const VertexId v = pv;
    std::size_t pj = pi, mj = mi;
    while (pj < pu.size() && v1_of(pu[pj].k) == v) ++pj;
    while (mj < mu.size() && v1_of(mu[mj].k) == v) ++mj;
    cx.charge(v, (pj - pi) * (mj - mi));
    thread_local std::vector<std::uint8_t> compat;
    thread_local std::vector<LaneMask> malive;
    const std::size_t mcount = mj - mi;
    if (compat.size() < mcount) compat.resize(mcount);
    if (malive.size() < mcount) malive.resize(mcount);
    std::uint8_t* const ok = compat.data();
    LaneMask* const ma = malive.data();
    const PackedFlatRowT<B, WM>* const mb = mu.data() + mi;
    for (std::size_t t = 0; t < mcount; ++t) {
      LaneMask a = 0;
      CCBT_SIMD
      for (int l = 0; l < B; ++l) {
        a |= static_cast<LaneMask>(mb[t].c[l] != 0) << l;
      }
      ma[t] = a;
    }
    for (std::size_t ai = pi; ai < pj; ++ai) {
      const PackedFlatRowT<B, WP>& pa = pu[ai];
      const auto asig = static_cast<Signature>(pa.k & 0xFF);
      LaneMask palive = 0;
      CCBT_SIMD
      for (int l = 0; l < B; ++l) {
        palive |= static_cast<LaneMask>(pa.c[l] != 0) << l;
      }
      if (palive == 0) continue;
      CCBT_SIMD
      for (std::size_t t = 0; t < mcount; ++t) {
        ok[t] = static_cast<std::uint8_t>(
            (std::popcount(static_cast<Signature>(
                 asig & static_cast<Signature>(mb[t].k & 0xFF))) == 2) &
            ((ma[t] & palive) != 0));
      }
      const TableKey pk = unpack_key(pa.k);
      for (std::size_t t = 0; t < mcount; ++t) {
        if (!ok[t]) continue;
        const auto msig = static_cast<Signature>(mb[t].k & 0xFF);
        const Signature inter = asig & msig;
        // Per-lane half: those colors must be {χ_l(u), χ_l(v)}.
        const LaneMask m =
            cx.chi.mask_pair_eq(u, v, inter) & (ma[t] & palive);
        if (m == 0) continue;
        // Lanes of m have both factors nonzero by construction, so the
        // product row is never all-zero (no wrap: narrow x narrow < 2^64).
        auto cnt = LaneOps<B>::zero();
        for (LaneMask mm = m; mm != 0; mm &= (mm - 1)) {
          const int l = std::countr_zero(static_cast<unsigned>(mm));
          LaneOps<B>::set_lane(cnt, l,
                               static_cast<Count>(pa.c[l]) *
                                   static_cast<Count>(mb[t].c[l]));
        }
        TableKey key;
        if (spec.out_arity > 0) {
          const TableKey mk = unpack_key(mb[t].k);
          for (int s = 0; s < spec.out_arity; ++s) {
            const MergeOut& src = spec.out[s];
            key.v[s] = (src.side == 0 ? pk : mk).v[src.slot];
          }
        }
        key.sig = asig | msig;
        emit(key, cnt);
        if (spec.out_arity >= 2) cx.send(v, key.v[1], 1);
      }
    }
    pi = pj;
    mi = mj;
  }
}

/// Join the two half-cycle tables on their shared (anchor, end) pair with
/// the signature-compatibility test of Fig 6 Procedure 2, accumulating
/// into `sink` (so the DB solver can sum over all anchor choices, Eq. 1).
template <int B>
void merge_halves(const ExecContext& cx, ProjTableT<B>& plus,
                  ProjTableT<B>& minus, const MergeSpec& spec,
                  AccumMapT<B>& sink) {
  using Vec = typename LaneOps<B>::Vec;
  const VertexId n = cx.g.num_vertices();
  // Both halves are consumed by this one merge: stay dense (kStream).
  {
    ScopedStage timed(cx.stage_slot(&StageWall::seal));
    plus.seal(SortOrder::kByV0V1, n, LaneSealHint::kStream);
    minus.seal(SortOrder::kByV0V1, n, LaneSealHint::kStream);
  }
  cx.note_lanes(plus.layout());
  cx.note_lanes(minus.layout());
  ScopedStage timed_merge(cx.stage_slot(&StageWall::merge));

  if (plus.has_bucket_index() && minus.has_bucket_index()) {
    // Bucket router shared by the parallel and serial sweeps: when both
    // sealed halves kept their narrow flat rows, the bucket pair joins
    // through merge_bucket_packed with no dense expansion (dispatching
    // on each side's payload width); otherwise each slot-0 bucket is
    // decoded through group_expanded into a scratch (a raw subspan when
    // dense, so B = 1 and dense tables pay nothing).
    const FlatRowsT<B>* const pflat =
        cx.opts.packed_merge ? plus.flat_storage() : nullptr;
    const FlatRowsT<B>* const mflat =
        cx.opts.packed_merge ? minus.flat_storage() : nullptr;
    auto merge_u = [&](VertexId u, auto&& add,
                       std::vector<TableEntryT<B>>& pscratch,
                       std::vector<TableEntryT<B>>& mscratch) {
      if constexpr (B > 1) {
        if (pflat != nullptr && mflat != nullptr) {
          const auto [plo, phi] = plus.group_span(0, u);
          if (plo == phi) return;
          const auto [mlo, mhi] = minus.group_span(0, u);
          if (mlo == mhi) return;
          const auto with_plus = [&](auto pspan) {
            if (mflat->mode() == FlatRowsT<B>::Mode::kU16) {
              merge_bucket_packed<B>(
                  cx, pspan,
                  std::span(mflat->rows_u16()).subspan(mlo, mhi - mlo),
                  spec, add);
            } else {
              merge_bucket_packed<B>(
                  cx, pspan,
                  std::span(mflat->rows_u32()).subspan(mlo, mhi - mlo),
                  spec, add);
            }
          };
          if (pflat->mode() == FlatRowsT<B>::Mode::kU16) {
            with_plus(std::span(pflat->rows_u16()).subspan(plo, phi - plo));
          } else {
            with_plus(std::span(pflat->rows_u32()).subspan(plo, phi - plo));
          }
          return;
        }
      }
      const auto pu = plus.group_expanded(0, u, pscratch);
      if (pu.empty()) return;
      const auto mu = minus.group_expanded(0, u, mscratch);
      if (mu.empty()) return;
      merge_bucket<B>(cx, pu, mu, spec, add);
    };
#ifdef _OPENMP
    if (cx.opts.use_threads && detail::pool_threads() > 1 &&
        plus.size() + minus.size() > 4096) {
      // Slot-0 buckets are independent: each thread merges whole buckets
      // into a private sink; the sinks reduce into `sink` afterwards.
      const int threads = detail::pool_threads();
      std::vector<AccumMapT<B>> maps;
      maps.reserve(threads);
      for (int t = 0; t < threads; ++t) {
        maps.emplace_back(16, cx.opts.compact_accum);
      }
      std::atomic<bool> budget_hit{false};
#pragma omp parallel num_threads(threads)
      {
        AccumMapT<B>& local = maps[omp_get_thread_num()];
#pragma omp for schedule(dynamic, 256)
        for (VertexId u = 0; u < n; ++u) {
          if (budget_hit.load(std::memory_order_relaxed)) continue;
          thread_local std::vector<TableEntryT<B>> pscratch, mscratch;
          merge_u(
              u, [&](const TableKey& k, const Vec& c) { local.add(k, c); },
              pscratch, mscratch);
          if (local.size() > cx.opts.max_table_entries) {
            budget_hit.store(true, std::memory_order_relaxed);
          }
        }
      }
      if (budget_hit.load()) {
        detail::check_budget(cx, cx.opts.max_table_entries + 1);
      }
      std::size_t total = sink.size();
      for (const AccumMapT<B>& m : maps) total += m.size();
      sink.reserve(total);
      for (AccumMapT<B>& m : maps) {
        m.for_each(
            [&](const TableKey& k, const Vec& c) { sink.add(k, c); });
        detail::check_budget(cx, sink.size());
      }
      cx.end_phase();
      return;
    }
#endif
    std::vector<TableEntryT<B>> pscratch, mscratch;
    for (VertexId u = 0; u < n; ++u) {
      merge_u(
          u, [&](const TableKey& k, const Vec& c) { sink.add(k, c); },
          pscratch, mscratch);
      detail::check_budget(cx, sink.size());
    }
    cx.end_phase();
    return;
  }

  // No bucket index (out-of-domain keys): whole-table two-pointer merge.
  // An index-less seal always leaves the rows dense (the narrow seal
  // falls back), so the raw spans are valid here.
  const auto pe = plus.entries();
  const auto me = minus.entries();
  auto uv_less = [](const TableEntryT<B>& a, const TableEntryT<B>& b) {
    return a.key.v[0] != b.key.v[0] ? a.key.v[0] < b.key.v[0]
                                    : a.key.v[1] < b.key.v[1];
  };
  std::size_t pi = 0, mi = 0;
  while (pi < pe.size() && mi < me.size()) {
    if (uv_less(pe[pi], me[mi])) {
      ++pi;
      continue;
    }
    if (uv_less(me[mi], pe[pi])) {
      ++mi;
      continue;
    }
    const VertexId u = pe[pi].key.v[0];
    std::size_t pj = pi, mj = mi;
    while (pj < pe.size() && pe[pj].key.v[0] == u) ++pj;
    while (mj < me.size() && me[mj].key.v[0] == u) ++mj;
    merge_bucket<B>(cx, pe.subspan(pi, pj - pi), me.subspan(mi, mj - mi),
                    spec,
                    [&](const TableKey& k, const Vec& c) { sink.add(k, c); });
    detail::check_budget(cx, sink.size());
    pi = pj;
    mi = mj;
  }
  cx.end_phase();
}

/// Sum out all slots beyond the first new_arity (with phase accounting).
template <int B>
ProjTableT<B> aggregate(const ExecContext& cx, const ProjTableT<B>& t,
                        int new_arity) {
  AccumMapT<B> map(t.size(), cx.opts.compact_accum);
  t.for_each_entry([&](const TableEntryT<B>& e) {
    kernel_aggregate<B>(cx, e, new_arity,
                        [&](const TableKey& k,
                            const typename LaneOps<B>::Vec& c) {
                          map.add(k, c);
                        });
  });
  detail::check_budget(cx, map.size());
  cx.end_phase();
  return ProjTableT<B>::from_map(new_arity, std::move(map));
}

}  // namespace ccbt
