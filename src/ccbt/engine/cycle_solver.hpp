#pragma once
// Cycle-block solving (Section 5): PS, PS-EVEN and DB strategies.

#include "ccbt/decomp/block.hpp"
#include "ccbt/engine/path_builder.hpp"

namespace ccbt {

/// Compute the projection table of a (possibly annotated) cycle block.
/// Output arity equals the block's boundary count; keys are ordered
/// (nodes[boundary_pos[0]], nodes[boundary_pos[1]]).
ProjTable solve_cycle(const ExecContext& cx, const Block& blk,
                      TablePool& pool);

}  // namespace ccbt
