#pragma once
// Virtual-rank BSP load model — the substitution for the paper's MPI runs.
//
// The paper measures "load" as the number of projection function
// operations executed per rank (Fig 11) and reports strong/weak scaling of
// wall time on Blue Gene/Q (Figs 12-13). We reproduce the phenomenology:
// every join primitive charges its operations to the rank owning the
// vertex it executes on (entry (u,v,α) is owned by owner(v), Section 7)
// and each primitive is one bulk-synchronous phase. The simulated time of
// a run is the sum over phases of the slowest rank's work:
//
//   sim_time = Σ_phase max_r ( ops_r + comm_cost * recv_r )
//
// Improvement factors, speedups and normalized loads — the quantities in
// every figure — are ratios of these unitless totals.

#include <cstdint>
#include <vector>

#include "ccbt/graph/partition.hpp"

namespace ccbt {

class LoadModel {
 public:
  explicit LoadModel(std::uint32_t ranks, double comm_cost = 2.0)
      : comm_cost_(comm_cost),
        phase_ops_(ranks, 0),
        phase_recv_(ranks, 0),
        total_ops_(ranks, 0) {}

  std::uint32_t num_ranks() const {
    return static_cast<std::uint32_t>(total_ops_.size());
  }

  void add_ops(std::uint32_t rank, std::uint64_t n) {
    phase_ops_[rank] += n;
    total_ops_[rank] += n;
  }

  void add_comm(std::uint32_t from, std::uint32_t to, std::uint64_t n) {
    if (from != to) {
      phase_recv_[to] += n;
      total_comm_ += n;
    }
  }

  /// Close the current bulk-synchronous phase and charge its makespan.
  void end_phase();

  /// Unitless simulated makespan across all closed phases.
  double sim_time() const { return sim_time_; }

  /// Per-rank totals over the whole run (Fig 11's load metrics).
  std::uint64_t total_ops() const;
  std::uint64_t max_rank_ops() const;
  double avg_rank_ops() const;
  std::uint64_t total_comm() const { return total_comm_; }

  const std::vector<std::uint64_t>& rank_ops() const { return total_ops_; }

 private:
  double comm_cost_ = 2.0;
  double sim_time_ = 0.0;
  std::uint64_t total_comm_ = 0;
  std::vector<std::uint64_t> phase_ops_;
  std::vector<std::uint64_t> phase_recv_;
  std::vector<std::uint64_t> total_ops_;
};

}  // namespace ccbt
