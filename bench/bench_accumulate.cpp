// Accumulate-only microbench: the B = 8 emission + seal hot path in
// isolation, probe vs sharded engine (table/flat_rows.hpp), without the
// estimator noise of the full batch bench. The workload replays the
// extend loop's emission shape — same-v1 bursts through the run-bulk
// API, duplicate keys re-emitted across bursts — at several table
// sizes, then seals kByV1 exactly as extend_with_graph_grouped does.
//
// Writes BENCH_accumulate.json:
//   cells[]: {rows, dup_factor, engine, accumulate_s, seal_s, total_s}
//   headline: geomean sharded/probe wall ratios per stage (< 1 means
//   the sharded engine is faster).
//
// Knobs: CCBT_BENCH_TRIALS (default 5 repetitions, best-of).

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "ccbt/table/flat_rows.hpp"
#include "ccbt/util/rng.hpp"
#include "ccbt/util/timer.hpp"

namespace ccbt {
namespace {

constexpr int B = 8;
using Rows = FlatRowsT<B>;
using Row16 = PackedFlatRowT<B, std::uint16_t>;

int bench_reps() {
  if (const char* env = std::getenv("CCBT_BENCH_TRIALS")) {
    const int t = std::atoi(env);
    if (t > 0) return t;
  }
  return 5;
}

std::uint64_t pack(std::uint32_t v0, std::uint32_t v1, std::uint8_t sig) {
  return (std::uint64_t{v0} << 36) | (std::uint64_t{v1} << 8) | sig;
}

/// One synthetic emission stream: `bursts` same-v1 runs of `burst_len`
/// rows each over a `domain`-vertex graph, with duplicate keys arriving
/// both inside a burst and when a later burst revisits the same v1 —
/// the duplicate structure the combining caches exist for.
struct Workload {
  VertexId domain = 0;
  struct Burst {
    std::uint32_t v1;
    std::uint32_t v0_base;
  };
  std::vector<Burst> bursts;
  std::size_t burst_len = 0;

  static Workload make(std::size_t emissions, VertexId domain,
                       std::size_t burst_len, std::uint64_t seed) {
    Workload w;
    w.domain = domain;
    w.burst_len = burst_len;
    Rng rng(seed);
    const std::size_t n_bursts = emissions / burst_len;
    w.bursts.reserve(n_bursts);
    for (std::size_t i = 0; i < n_bursts; ++i) {
      // Bursts revisit a v1 with probability ~1/2 (cross-burst dups).
      const std::uint32_t v1 =
          static_cast<std::uint32_t>(rng() % (domain / 2) * 2 % domain);
      const std::uint32_t v0_base =
          static_cast<std::uint32_t>(rng() % domain);
      w.bursts.push_back({v1, v0_base});
    }
    return w;
  }
};

/// Replay the workload into a fresh sink on `engine`, mimicking the
/// extend loop: acquire a run handle per burst, run-append when it is
/// valid (sharded), per-row probe append otherwise. Returns the emit
/// wall; `seal_s` gets the kByV1 sort + merge wall.
double replay(const Workload& w, AccumEngine engine, double* seal_s,
              std::size_t* sealed_rows) {
  set_accum_engine(engine);
  Rows t;
  Row16 src;
  for (int l = 0; l < B; ++l) src.c[l] = 1;
  Timer emit_timer;
  t.prepare_emit(AccumEngine::kAuto, w.domain);
  for (const Workload::Burst& b : w.bursts) {
    const auto run = t.run_u16(b.v1, w.burst_len);
    for (std::size_t i = 0; i < w.burst_len; ++i) {
      // In-burst duplicates: every 4th row repeats the previous key.
      const std::uint32_t v0 =
          (b.v0_base + static_cast<std::uint32_t>(i - (i % 4 == 3))) %
          w.domain;
      const std::uint64_t k =
          pack(v0, b.v1, static_cast<std::uint8_t>(v0 & 0x1F));
      const LaneMask m =
          static_cast<LaneMask>(1u << (v0 % B)) | LaneMask{1};
      if (run.valid()) {
        t.run_append_u16(run, k, src, m);
      } else {
        t.append_masked_u16(k, src, m);
      }
    }
  }
  const double emit_s = emit_timer.seconds();
  Timer seal_timer;
  const bool ok = t.sort_by_slot(1, w.domain);
  t.merge_duplicates();
  *seal_s = seal_timer.seconds();
  *sealed_rows = t.size();
  if (!ok) std::fprintf(stderr, "seal fell back to dense path!\n");
  set_accum_engine(AccumEngine::kAuto);
  return emit_s;
}

struct Cell {
  std::size_t emissions;
  const char* engine;
  double accumulate_s = 0.0;
  double seal_s = 0.0;
  std::size_t rows = 0;
};

}  // namespace
}  // namespace ccbt

int main() {
  using namespace ccbt;
  const int reps = bench_reps();
  const std::vector<std::size_t> sizes{200'000, 1'000'000, 4'000'000};
  const VertexId domain = 60'000;
  const std::size_t burst_len = 48;

  std::printf(
      "Accumulate microbench: B=8 same-v1 burst emission + kByV1 seal\n"
      "%-10s %-8s %12s %12s %12s %10s\n", "emissions", "engine",
      "accum ms", "seal ms", "total ms", "rows");
  std::vector<Cell> cells;
  std::vector<double> accum_ratios, seal_ratios, total_ratios;
  for (const std::size_t emissions : sizes) {
    const Workload w = Workload::make(emissions, domain, burst_len, 42);
    double best[2][2];  // [engine][stage] best-of-reps
    std::size_t rows[2] = {0, 0};
    const AccumEngine engines[2] = {AccumEngine::kProbe,
                                    AccumEngine::kSharded};
    const char* names[2] = {"probe", "sharded"};
    for (int e = 0; e < 2; ++e) {
      best[e][0] = best[e][1] = 1e30;
      for (int r = 0; r < reps; ++r) {
        double seal = 0.0;
        std::size_t sealed = 0;
        const double emit = replay(w, engines[e], &seal, &sealed);
        best[e][0] = std::min(best[e][0], emit);
        best[e][1] = std::min(best[e][1], seal);
        rows[e] = sealed;
      }
      Cell c;
      c.emissions = emissions;
      c.engine = names[e];
      c.accumulate_s = best[e][0];
      c.seal_s = best[e][1];
      c.rows = rows[e];
      cells.push_back(c);
      std::printf("%-10zu %-8s %12.2f %12.2f %12.2f %10zu\n", emissions,
                  names[e], 1e3 * c.accumulate_s, 1e3 * c.seal_s,
                  1e3 * (c.accumulate_s + c.seal_s), c.rows);
    }
    if (rows[0] != rows[1]) {
      std::fprintf(stderr, "sealed row mismatch: probe %zu sharded %zu\n",
                   rows[0], rows[1]);
      return 1;
    }
    accum_ratios.push_back(best[1][0] / best[0][0]);
    seal_ratios.push_back(best[1][1] / best[0][1]);
    total_ratios.push_back((best[1][0] + best[1][1]) /
                           (best[0][0] + best[0][1]));
  }

  auto geomean = [](const std::vector<double>& xs) {
    double s = 0.0;
    for (double x : xs) s += std::log(x);
    return std::exp(s / static_cast<double>(xs.size()));
  };
  const double gm_accum = geomean(accum_ratios);
  const double gm_seal = geomean(seal_ratios);
  const double gm_total = geomean(total_ratios);
  std::printf(
      "\nsharded/probe wall ratios (geomean; < 1 = sharded faster):\n"
      "  accumulate %.3f   seal %.3f   total %.3f\n",
      gm_accum, gm_seal, gm_total);

  std::FILE* f = std::fopen("BENCH_accumulate.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_accumulate.json\n");
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"accumulate\",\n"
               "  \"sharded_over_probe_accumulate\": %.3f,\n"
               "  \"sharded_over_probe_seal\": %.3f,\n"
               "  \"sharded_over_probe_total\": %.3f,\n"
               "  \"cells\": [\n",
               gm_accum, gm_seal, gm_total);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(f,
                 "    {\"emissions\": %zu, \"engine\": \"%s\", "
                 "\"accumulate_s\": %.6f, \"seal_s\": %.6f, "
                 "\"rows\": %zu}%s\n",
                 c.emissions, c.engine, c.accumulate_s, c.seal_s, c.rows,
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("BENCH_accumulate.json written\n");
  return 0;
}
