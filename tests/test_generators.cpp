// Unit tests for the synthetic graph generators — the Table 1 / Section 9
// substitutes must actually exhibit the degree structure they claim.

#include <gtest/gtest.h>

#include <cmath>

#include "ccbt/bench_support/workloads.hpp"
#include "ccbt/util/error.hpp"
#include "ccbt/graph/generators.hpp"
#include "ccbt/graph/graph_stats.hpp"

namespace ccbt {
namespace {

TEST(ErdosRenyi, ExactEdgeCountAndDeterminism) {
  const CsrGraph a = erdos_renyi(100, 300, 1);
  const CsrGraph b = erdos_renyi(100, 300, 1);
  EXPECT_EQ(a.num_edges(), 300u);
  EXPECT_EQ(a.num_vertices(), 100u);
  EXPECT_EQ(b.num_edges(), a.num_edges());
  EXPECT_EQ(CsrGraph::from_edges(a.to_edges()).num_edges(),
            b.num_edges());
}

TEST(ErdosRenyi, ClampsToCompleteGraph) {
  const CsrGraph g = erdos_renyi(5, 1000, 2);
  EXPECT_EQ(g.num_edges(), 10u);
}

TEST(PowerLawDegrees, RespectsExponentShape) {
  const auto d = truncated_power_law_degrees(100000, 1.5);
  ASSERT_EQ(d.size(), 100000u);
  // Counts per degree level j should shrink by ~2^alpha per level.
  std::size_t deg1 = 0, deg2 = 0, deg4 = 0;
  for (double x : d) {
    if (x == 1.0) ++deg1;
    if (x == 2.0) ++deg2;
    if (x == 4.0) ++deg4;
  }
  EXPECT_GT(deg1, deg2);
  EXPECT_GT(deg2, deg4);
  const double ratio = static_cast<double>(deg2) / static_cast<double>(deg4);
  EXPECT_NEAR(ratio, std::pow(2.0, 1.5), 0.7);
}

TEST(PowerLawDegrees, RejectsBadAlpha) {
  EXPECT_THROW(truncated_power_law_degrees(100, 0.5), Error);
  EXPECT_THROW(truncated_power_law_degrees(100, 2.5), Error);
}

TEST(ChungLu, RealizedDegreesTrackExpectations) {
  // Uniform expected degree 10: realized average within 15%.
  std::vector<double> degrees(4000, 10.0);
  const CsrGraph g = chung_lu(degrees, 7);
  const GraphStats s = compute_stats(g);
  EXPECT_NEAR(s.avg_degree, 10.0, 1.5);
}

TEST(ChungLu, HubGetsProportionallyMoreEdges) {
  std::vector<double> degrees(2001, 2.0);
  degrees[0] = 40.0;
  const CsrGraph g = chung_lu(degrees, 11);
  EXPECT_GT(g.degree(0), 20u);
}

TEST(ChungLu, Deterministic) {
  const CsrGraph a = chung_lu_power_law(3000, 1.7, 5.0, 5);
  const CsrGraph b = chung_lu_power_law(3000, 1.7, 5.0, 5);
  EXPECT_EQ(a.num_edges(), b.num_edges());
}

TEST(ChungLu, HeavierTailForSmallerAlpha) {
  const GraphStats heavy =
      compute_stats(chung_lu_power_law(20000, 1.55, 6.0, 3));
  const GraphStats light =
      compute_stats(chung_lu_power_law(20000, 1.95, 6.0, 3));
  EXPECT_GT(heavy.skew, light.skew);
  EXPECT_GT(heavy.max_degree, light.max_degree);
}

TEST(Rmat, SizeAndSkew) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  const CsrGraph g = rmat(p, 13);
  EXPECT_EQ(g.num_vertices(), 1024u);
  EXPECT_GT(g.num_edges(), 2000u);  // duplicates removed, still sizeable
  const GraphStats s = compute_stats(g);
  // The paper's R-MAT parameters (A=.5,B=.1,C=.1,D=.3) give a moderate
  // but clearly non-regular tail.
  EXPECT_GT(s.skew, 1.2);
  EXPECT_GT(s.max_degree, 4 * s.avg_degree);
}

TEST(BarabasiAlbert, SizeAndHeavyTail) {
  const CsrGraph g = barabasi_albert(4000, 3, 5);
  EXPECT_EQ(g.num_vertices(), 4000u);
  // ~3 edges per vertex minus duplicates.
  EXPECT_GT(g.num_edges(), 3u * 4000u * 8 / 10);
  const GraphStats s = compute_stats(g);
  EXPECT_GT(s.skew, 1.5);
  EXPECT_GT(s.max_degree, 20u * static_cast<std::uint32_t>(s.avg_degree));
}

TEST(BarabasiAlbert, DeterministicAndValidatesArgs) {
  const CsrGraph a = barabasi_albert(500, 2, 9);
  const CsrGraph b = barabasi_albert(500, 2, 9);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_THROW(barabasi_albert(500, 0, 1), Error);
  EXPECT_THROW(barabasi_albert(2, 3, 1), Error);
}

TEST(Grid2d, StructureAndLowSkew) {
  const CsrGraph g = grid2d(20, 30, 0, 1);
  EXPECT_EQ(g.num_vertices(), 600u);
  // Interior vertices have degree 4; skew must be tiny.
  EXPECT_EQ(g.num_edges(), (19u * 30u) + (20u * 29u));
  const GraphStats s = compute_stats(g);
  EXPECT_LT(s.skew, 1.1);
  EXPECT_LE(s.max_degree, 4u);
}

TEST(StructuredGraphs, KnownShapes) {
  EXPECT_EQ(complete_graph(6).num_edges(), 15u);
  EXPECT_EQ(cycle_graph(7).num_edges(), 7u);
  EXPECT_EQ(path_graph(7).num_edges(), 6u);
  EXPECT_EQ(star_graph(9).num_edges(), 9u);
  EXPECT_EQ(complete_bipartite(3, 4).num_edges(), 12u);
}

TEST(Workloads, AllTableOneGraphsInstantiate) {
  for (const std::string& name : workload_names()) {
    const CsrGraph g = make_workload(name, 0.05, 1);
    EXPECT_GT(g.num_vertices(), 50u) << name;
    EXPECT_GT(g.num_edges(), 40u) << name;
  }
}

TEST(Workloads, SkewOrderingMatchesPaper) {
  // epinions (heaviest tail) must be more skewed than condMat (light),
  // and roadNetCA must be nearly regular — the property driving Fig 9/10.
  const GraphStats epinions =
      compute_stats(make_workload("epinions", 0.25, 2));
  const GraphStats condmat = compute_stats(make_workload("condMat", 0.25, 2));
  const GraphStats road = compute_stats(make_workload("roadNetCA", 0.25, 2));
  EXPECT_GT(epinions.skew, condmat.skew);
  EXPECT_GT(condmat.skew, road.skew);
  EXPECT_LT(road.skew, 1.5);
}

TEST(Workloads, UnknownNameThrows) {
  EXPECT_THROW(make_workload("no-such-graph"), Error);
}

TEST(Workloads, SpecsCoverTenGraphs) {
  EXPECT_EQ(table1_specs().size(), 10u);
  EXPECT_EQ(workload_names().size(), 10u);
}

}  // namespace
}  // namespace ccbt
