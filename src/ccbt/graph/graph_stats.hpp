#pragma once
// Degree-distribution statistics used to regenerate Table 1 and to verify
// that the synthetic stand-ins match the skew of the paper's inputs.

#include <cstdint>
#include <vector>

#include "ccbt/graph/csr_graph.hpp"

namespace ccbt {

struct GraphStats {
  VertexId num_vertices = 0;
  std::size_t num_edges = 0;
  double avg_degree = 0.0;
  std::uint32_t max_degree = 0;
  /// Σ d_u^2 / (2m * avg) — a scale-free skew indicator; 1 for regular
  /// graphs, large for heavy-tailed distributions.
  double skew = 0.0;
  /// Number of vertices whose degree is at least 8x the average.
  VertexId heavy_vertices = 0;
};

GraphStats compute_stats(const CsrGraph& g);

/// Degree histogram in powers of two: bucket j counts vertices with
/// degree in [2^j, 2^(j+1)). Used by the Section 9/10 truncated-power-law
/// verification tests.
std::vector<std::size_t> degree_histogram_pow2(const CsrGraph& g);

/// Global clustering coefficient (transitivity): 3 * triangles / wedges,
/// in [0, 1]; 0 when the graph has no wedge. Separates the small-world
/// and community workloads from the Chung-Lu stand-ins.
double global_clustering(const CsrGraph& g);

}  // namespace ccbt
