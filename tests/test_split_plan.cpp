// Unit tests for the shared cycle-split planner (split_plan.hpp): the
// geometry both engines rely on.

#include <gtest/gtest.h>

#include "ccbt/engine/split_plan.hpp"
#include "ccbt/util/error.hpp"

namespace ccbt {
namespace {

/// A bare cycle block of length L with boundary node positions `bp`.
Block cycle_block(int length, std::vector<int> bp) {
  Block b;
  b.kind = BlockKind::kCycle;
  for (int i = 0; i < length; ++i) b.nodes.push_back(static_cast<QNode>(i));
  b.boundary_pos = std::move(bp);
  b.node_child.assign(length, -1);
  b.edge_child.assign(length, -1);
  b.edge_child_flip.assign(length, false);
  return b;
}

TEST(SplitPlan, WalksCoverTheWholeCycleExactlyOnce) {
  for (int L : {3, 4, 5, 6, 7, 8}) {
    const Block b = cycle_block(L, {0, 1});
    for (int s = 0; s < L; ++s) {
      for (int e = 0; e < L; ++e) {
        if (e == s) continue;
        const SplitPlan plan = make_split(b, s, e, false);
        // Both walks start at s and end at e.
        EXPECT_EQ(plan.plus.positions.front(), s);
        EXPECT_EQ(plan.plus.positions.back(), e);
        EXPECT_EQ(plan.minus.positions.front(), s);
        EXPECT_EQ(plan.minus.positions.back(), e);
        // Interior positions partition the rest of the cycle.
        std::vector<int> seen(L, 0);
        for (int p : plan.plus.positions) ++seen[p];
        for (int p : plan.minus.positions) ++seen[p];
        for (int p = 0; p < L; ++p) {
          EXPECT_EQ(seen[p], (p == s || p == e) ? 2 : 1)
              << "L=" << L << " s=" << s << " e=" << e << " p=" << p;
        }
        // Each walk crosses one edge per step; together all L edges.
        EXPECT_EQ(plan.plus.edge_index.size() + plan.minus.edge_index.size(),
                  static_cast<std::size_t>(L));
      }
    }
  }
}

TEST(SplitPlan, AnnotationOwnershipIsExclusive) {
  const Block b = cycle_block(5, {0, 2});
  const SplitPlan plan = make_split(b, 1, 3, true);
  // P+ owns the end's node annotation, P- the anchor's: never both.
  EXPECT_TRUE(plan.plus.include_end_annot);
  EXPECT_FALSE(plan.plus.include_start_annot);
  EXPECT_TRUE(plan.minus.include_start_annot);
  EXPECT_FALSE(plan.minus.include_end_annot);
}

TEST(SplitPlan, BoundaryAtAnchorAndEndMapToPrimarySlots) {
  const Block b = cycle_block(6, {1, 4});
  const SplitPlan plan = make_split(b, 1, 4, false);
  EXPECT_EQ(plan.merge.out_arity, 2);
  EXPECT_EQ(plan.merge.out[0].side, 0);
  EXPECT_EQ(plan.merge.out[0].slot, 0);  // boundary 1 == anchor
  EXPECT_EQ(plan.merge.out[1].side, 0);
  EXPECT_EQ(plan.merge.out[1].slot, 1);  // boundary 4 == end
}

TEST(SplitPlan, InteriorBoundariesGetTrackedSlots) {
  // Split a 6-cycle with boundaries {0, 3} at (1, 4): both boundaries
  // fall inside the walks and must be tracked in slots >= 2.
  const Block b = cycle_block(6, {0, 3});
  const SplitPlan plan = make_split(b, 1, 4, true);
  for (int bi = 0; bi < 2; ++bi) {
    EXPECT_GE(plan.merge.out[bi].slot, 2) << bi;
  }
  // The tracked positions really are the boundary positions.
  auto tracked = [](const PathSpec& spec, int pos) {
    for (std::size_t i = 0; i < spec.positions.size(); ++i) {
      if (spec.positions[i] == pos && spec.track_slot_at[i] >= 2) return true;
    }
    return false;
  };
  EXPECT_TRUE(tracked(plan.plus, 0) || tracked(plan.minus, 0));
  EXPECT_TRUE(tracked(plan.plus, 3) || tracked(plan.minus, 3));
}

TEST(SplitPlan, DbEnumeratesEveryAnchor) {
  const Block b = cycle_block(7, {0});
  EXPECT_EQ(splits_for(b, Algo::kDB).size(), 7u);
  EXPECT_EQ(splits_for(b, Algo::kPS).size(), 1u);
  EXPECT_EQ(splits_for(b, Algo::kPSEven).size(), 1u);
  for (const SplitPlan& p : splits_for(b, Algo::kDB)) {
    EXPECT_TRUE(p.plus.anchor_higher);
    EXPECT_TRUE(p.minus.anchor_higher);
  }
}

TEST(SplitPlan, PsSplitsAtBoundaries) {
  const Block b = cycle_block(8, {2, 5});
  const auto splits = splits_for(b, Algo::kPS);
  ASSERT_EQ(splits.size(), 1u);
  EXPECT_EQ(splits[0].plus.positions.front(), 2);
  EXPECT_EQ(splits[0].plus.positions.back(), 5);
  EXPECT_FALSE(splits[0].plus.anchor_higher);
}

TEST(SplitPlan, PsEvenSplitsAtDiagonal) {
  const Block b = cycle_block(8, {2, 5});
  const auto splits = splits_for(b, Algo::kPSEven);
  ASSERT_EQ(splits.size(), 1u);
  EXPECT_EQ(splits[0].plus.positions.front(), 2);
  EXPECT_EQ(splits[0].plus.positions.back(), 6);  // 2 + 8/2
}

TEST(SplitPlan, RejectsNonCycles) {
  Block leaf;
  leaf.kind = BlockKind::kLeafEdge;
  leaf.nodes = {0, 1};
  EXPECT_THROW(splits_for(leaf, Algo::kDB), Error);
}

}  // namespace
}  // namespace ccbt
