#pragma once
// Exact (exponential-time) counters used as correctness oracles in tests
// and to calibrate the estimator experiments on small graphs.

#include "ccbt/graph/coloring.hpp"
#include "ccbt/graph/csr_graph.hpp"
#include "ccbt/query/query_graph.hpp"

namespace ccbt {

/// Number of matches: injective, edge-preserving mappings V(Q) -> V(G)
/// (non-induced subgraph semantics, Section 2).
Count count_matches_exact(const CsrGraph& g, const QueryGraph& q);

/// Number of colorful matches under coloring chi.
Count count_colorful_exact(const CsrGraph& g, const QueryGraph& q,
                           const Coloring& chi);

}  // namespace ccbt
