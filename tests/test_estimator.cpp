// Estimator tests: the k^k/k! normalization (Section 2), statistical
// convergence to the exact match count, and the Fig 15 precision metrics.

#include <gtest/gtest.h>

#include <cmath>

#include "ccbt/core/estimator.hpp"
#include "ccbt/core/exact.hpp"
#include "ccbt/graph/generators.hpp"
#include "ccbt/query/catalog.hpp"

namespace ccbt {
namespace {

TEST(ColorfulScale, MatchesFormula) {
  // k^k / k! for small k.
  EXPECT_NEAR(colorful_scale(1), 1.0, 1e-12);
  EXPECT_NEAR(colorful_scale(2), 2.0, 1e-12);
  EXPECT_NEAR(colorful_scale(3), 27.0 / 6.0, 1e-12);
  EXPECT_NEAR(colorful_scale(4), 256.0 / 24.0, 1e-12);
  EXPECT_NEAR(colorful_scale(10), std::pow(10.0, 10) / 3628800.0, 1e-3);
}

TEST(Estimator, UnbiasedOnTriangles) {
  // E[(k^k/k!) * colorful] = exact matches; with 400 trials the relative
  // error should be well within 4 standard errors (seeded, deterministic).
  const CsrGraph g = erdos_renyi(40, 140, 11);
  const QueryGraph q = q_cycle(3);
  const Count exact = count_matches_exact(g, q);
  EstimatorOptions opts;
  opts.trials = 400;
  opts.seed = 99;
  const EstimatorResult r = estimate_matches(g, q, opts);
  const double stderr_est =
      std::sqrt(r.variance / static_cast<double>(opts.trials));
  EXPECT_NEAR(r.matches, static_cast<double>(exact), 4.0 * stderr_est + 1.0);
}

TEST(Estimator, UnbiasedOnDiamond) {
  const CsrGraph g = erdos_renyi(36, 130, 12);
  const QueryGraph q = q_glet2();
  const Count exact = count_matches_exact(g, q);
  EstimatorOptions opts;
  opts.trials = 400;
  opts.seed = 123;
  const EstimatorResult r = estimate_matches(g, q, opts);
  const double stderr_est =
      std::sqrt(r.variance / static_cast<double>(opts.trials));
  EXPECT_NEAR(r.matches, static_cast<double>(exact), 4.0 * stderr_est + 1.0);
}

TEST(Estimator, OccurrencesDivideByAutomorphisms) {
  // Triangles in K4: 24 matches, aut=6, 4 occurrences.
  const CsrGraph g = complete_graph(4);
  const QueryGraph q = q_cycle(3);
  EstimatorOptions opts;
  opts.trials = 600;
  opts.seed = 5;
  const EstimatorResult r = estimate_matches(g, q, opts);
  EXPECT_EQ(r.automorphisms, 6u);
  EXPECT_NEAR(r.occurrences, r.matches / 6.0, 1e-9);
  EXPECT_NEAR(r.occurrences, 4.0, 1.5);
}

TEST(Estimator, PerTrialDataExposed) {
  const CsrGraph g = erdos_renyi(30, 80, 13);
  EstimatorOptions opts;
  opts.trials = 8;
  const EstimatorResult r = estimate_matches(g, q_wiki(), opts);
  EXPECT_EQ(r.colorful_per_trial.size(), 8u);
  EXPECT_EQ(r.estimate_per_trial.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(r.estimate_per_trial[i],
                static_cast<double>(r.colorful_per_trial[i]) *
                    colorful_scale(5),
                1e-6);
  }
}

TEST(Estimator, CvDropsWithDenserSignal) {
  // A graph with many triangles (K8) has tiny relative variance compared
  // with a sparse graph that has few: the Fig 15 phenomenology.
  EstimatorOptions opts;
  opts.trials = 30;
  opts.seed = 7;
  const EstimatorResult dense = estimate_matches(complete_graph(8),
                                                 q_cycle(3), opts);
  const EstimatorResult sparse =
      estimate_matches(erdos_renyi(60, 70, 3), q_cycle(3), opts);
  EXPECT_LT(dense.cv, sparse.cv);
}

TEST(Estimator, DeterministicForFixedSeed) {
  const CsrGraph g = erdos_renyi(40, 100, 17);
  EstimatorOptions opts;
  opts.trials = 5;
  opts.seed = 31;
  const EstimatorResult a = estimate_matches(g, q_youtube(), opts);
  const EstimatorResult b = estimate_matches(g, q_youtube(), opts);
  EXPECT_EQ(a.colorful_per_trial, b.colorful_per_trial);
}

TEST(Estimator, ZeroMatchesGiveZeroEstimate) {
  // A path graph contains no triangles.
  const EstimatorResult r =
      estimate_matches(path_graph(20), q_cycle(3), {});
  EXPECT_DOUBLE_EQ(r.matches, 0.0);
  EXPECT_DOUBLE_EQ(r.cv, 0.0);
}

TEST(AdaptiveEstimator, StopsOnceTargetCvReached) {
  // Dense graph, small query: the estimate converges in a handful of
  // trials, far below the cap.
  const CsrGraph g = erdos_renyi(80, 600, 5);
  AdaptiveOptions opts;
  opts.target_cv = 0.2;
  opts.max_trials = 40;
  opts.seed = 7;
  const AdaptiveResult r = estimate_matches_adaptive(g, q_cycle(3), opts);
  EXPECT_TRUE(r.converged);
  EXPECT_GE(r.trials_used, opts.min_trials);
  EXPECT_LT(r.trials_used, opts.max_trials);
  EXPECT_LE(r.estimate.cv, opts.target_cv);
}

TEST(AdaptiveEstimator, RespectsMinTrials) {
  const CsrGraph g = erdos_renyi(60, 400, 6);
  AdaptiveOptions opts;
  opts.target_cv = 1e9;  // trivially satisfied
  opts.min_trials = 5;
  const AdaptiveResult r = estimate_matches_adaptive(g, q_cycle(3), opts);
  EXPECT_EQ(r.trials_used, 5);
  EXPECT_TRUE(r.converged);
}

TEST(AdaptiveEstimator, GivesUpAtMaxTrials) {
  // Sparse graph, rare motif: the estimate stays noisy, so the loop must
  // hit the cap and report non-convergence.
  const CsrGraph g = erdos_renyi(200, 260, 7);
  AdaptiveOptions opts;
  opts.target_cv = 1e-6;
  opts.max_trials = 8;
  const AdaptiveResult r = estimate_matches_adaptive(g, q_cycle(5), opts);
  EXPECT_EQ(r.trials_used, 8);
  EXPECT_FALSE(r.converged);
}

TEST(AdaptiveEstimator, EstimateConsistentWithFixedTrials) {
  const CsrGraph g = erdos_renyi(50, 220, 8);
  AdaptiveOptions a;
  a.target_cv = 0.0;  // never converges early
  a.min_trials = a.max_trials = 6;
  a.seed = 99;
  EstimatorOptions f;
  f.trials = 6;
  f.seed = 99;
  const AdaptiveResult ra = estimate_matches_adaptive(g, q_glet2(), a);
  const EstimatorResult rf = estimate_matches(g, q_glet2(), f);
  EXPECT_EQ(ra.estimate.colorful_per_trial, rf.colorful_per_trial);
  EXPECT_DOUBLE_EQ(ra.estimate.matches, rf.matches);
}

}  // namespace
}  // namespace ccbt
