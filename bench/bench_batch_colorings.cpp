// Batched multi-coloring execution vs. one-coloring-at-a-time: the Fig 15
// estimator workload (repeated independent colorings of the same plan),
// re-run at batch widths 1, 2, 4 and 8. Reports, per cell,
//   * the amortized per-trial wall time and its speedup over B = 1
//     (shared-memory engine), and
//   * the amortized per-trial transport volume and supersteps of the
//     virtual-MPI engine — the batching headline: lanes share one key per
//     signature-blocked row and one superstep per phase, so wire bytes
//     and round trips per trial drop by multiples of B.
// Every width's per-lane colorful counts are verified against the B = 1
// baseline. Writes BENCH_batch.json so successive PRs can track both
// trajectories mechanically.
//
// Knobs: CCBT_BENCH_SCALE (graph sizes), CCBT_BENCH_TRIALS (trials per
// cell, default 16), CCBT_BENCH_BATCH (max width, default 8).

#include <array>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "ccbt/dist/dist_engine.hpp"
#include "common.hpp"

namespace {

using namespace ccbt;
using namespace ccbt::bench;

int bench_trials() {
  if (const char* env = std::getenv("CCBT_BENCH_TRIALS")) {
    const int t = std::atoi(env);
    if (t > 0) return t;
  }
  return 16;
}

int bench_max_batch() {
  if (const char* env = std::getenv("CCBT_BENCH_BATCH")) {
    const int b = std::atoi(env);
    if (b > 0) return b;
  }
  return 8;
}

struct Cell {
  std::string graph;
  std::string query;
  int width = 1;
  int trials = 0;
  double wall = 0.0;          // seconds, whole estimator run
  double per_trial_ms = 0.0;  // amortized
  double speedup = 1.0;       // vs the B = 1 baseline on the same cell
  bool lanes_match = true;    // per-trial counts identical to baseline
  // Lane-layout telemetry sampled from one batched execution: what the
  // seal-time chooser observed and decided (B > 1).
  double lane_density = 0.0;
  double packed_share = 0.0;  // rows re-packed / rows sealed
  std::array<std::uint64_t, 3> width_hist{};  // packed rows per u16/u32/u64
  // Per-stage wall breakdown summed over the cell's plan executions.
  StageWall stage;
  // Accumulate-stage wall vs the B = 1 cell of the same (graph, query) —
  // the stage the sharded engine targets (B > 1 only).
  double accum_ratio = 0.0;
  // Accumulation telemetry sampled from the same batched execution as
  // the lane-layout fields: engine choice, combining-cache folds,
  // run-bulk usage, shard occupancy (B > 1).
  AccumTelemetry accum;
};

struct WireCell {
  std::string graph;
  std::string query;
  int width = 1;
  double bytes_per_trial = 0.0;
  double steps_per_trial = 0.0;
  double bytes_ratio = 1.0;  // B = 1 bytes / this width's bytes
  bool lanes_match = true;
  // Wire-format telemetry accumulated over the cell's transports.
  double wire_density = 0.0;
  std::array<std::uint64_t, 3> width_hist{};  // serialized rows per width
  // Per-stage wall breakdown summed over the cell's distributed runs.
  StageWall stage;
};

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += std::log(x);
  return std::exp(s / static_cast<double>(xs.size()));
}

}  // namespace

int main() {
  print_header("Batched colorings — amortized estimator cost vs B = 1",
               "one plan execution carries B colorings (vectorized count "
               "lanes)");
  const int trials = bench_trials();
  const int max_batch = bench_max_batch();
  std::vector<int> widths{1};
  for (int w : {2, 4, 8}) {
    if (w <= max_batch) widths.push_back(w);
  }

  // Fig 15 estimator workload: repeated-coloring estimation on the cheap
  // Table 1 stand-ins, over the small (k <= 8 colors) figure-8 queries —
  // the regime the estimator actually runs in (Section 8.6).
  const std::vector<std::string> graph_names{"condMat", "astroph",
                                             "brightkite"};
  std::vector<QueryGraph> queries{q_glet2(), q_wiki(), q_youtube(),
                                  q_dros()};

  std::vector<Cell> cells;
  TextTable t({"graph", "query", "B", "trials", "wall s", "ms/trial",
               "speedup", "lanes"});
  for (const std::string& gname : graph_names) {
    const CsrGraph g = make_workload(gname, bench_scale());
    for (const QueryGraph& q : queries) {
      EstimatorOptions base;
      base.trials = trials;
      base.seed = 17;
      base.exec.algo = Algo::kDB;
      base.exec.max_table_entries = bench_budget();
      CountingSession session(g, q, make_plan(q), base.exec);

      std::vector<Count> baseline_counts;
      double baseline_per_trial = 0.0;
      StageWall baseline_stage;
      for (const int width : widths) {
        EstimatorOptions opts = base;
        opts.batch = width;
        Cell cell;
        cell.graph = gname;
        cell.query = q.name();
        cell.width = width;
        cell.trials = trials;
        try {
          Timer timer;
          const EstimatorResult r = estimate_matches(session, opts);
          cell.wall = timer.seconds();
          cell.per_trial_ms = 1e3 * cell.wall / trials;
          cell.stage = r.stage;
          {
            // One extra execution to sample the layout chooser's
            // observations and the accumulation telemetry (untimed; the
            // estimator API reports counts, not telemetry). B = 1 too:
            // its hash-map accumulation reports emit_bytes, the
            // denominator of the emission byte-traffic headline.
            std::vector<std::uint64_t> seeds;
            for (int l = 0; l < width; ++l) seeds.push_back(1000 + l);
            const ExecStats sample = session.count_colorful_seeded(
                std::span<const std::uint64_t>(seeds.data(), seeds.size()));
            cell.accum = sample.accum;
            if (width > 1) {
              cell.lane_density = sample.lanes.density();
              cell.packed_share =
                  sample.lanes.rows == 0
                      ? 0.0
                      : static_cast<double>(sample.lanes.rows_packed) /
                            static_cast<double>(sample.lanes.rows);
              cell.width_hist = sample.lanes.width_rows;
            }
          }
          if (width == 1) {
            baseline_counts = r.colorful_per_trial;
            baseline_per_trial = cell.per_trial_ms;
            baseline_stage = cell.stage;
          } else {
            cell.speedup = baseline_per_trial / cell.per_trial_ms;
            cell.lanes_match = (r.colorful_per_trial == baseline_counts);
            cell.accum_ratio = baseline_stage.accumulate > 0.0
                                   ? cell.stage.accumulate /
                                         baseline_stage.accumulate
                                   : 0.0;
          }
          t.add_row({gname, q.name(), TextTable::num(std::uint64_t(width)),
                     TextTable::num(std::uint64_t(trials)),
                     TextTable::num(cell.wall, 3),
                     TextTable::num(cell.per_trial_ms, 3),
                     width == 1 ? "1.00x"
                                : TextTable::num(cell.speedup, 2) + "x",
                     cell.lanes_match ? "exact" : "MISMATCH"});
          cells.push_back(cell);
        } catch (const BudgetExceeded&) {
          t.add_row({gname, q.name(), TextTable::num(std::uint64_t(width)),
                     "-", "DNF", "-", "-", "-"});
        }
      }
    }
  }
  t.print(std::cout);

  bool all_match = true;
  double gm_wall8 = 0.0;
  std::printf("\nWall-time amortization (geomean over cells):\n");
  for (const int width : widths) {
    if (width == 1) continue;
    std::vector<double> xs;
    for (const Cell& c : cells) {
      if (c.width != width) continue;
      xs.push_back(c.speedup);
      all_match = all_match && c.lanes_match;
    }
    const double gm = geomean(xs);
    if (width == 8) gm_wall8 = gm;
    std::printf("  B=%d: %.2fx lower amortized per-trial wall time\n", width,
                gm);
  }

  // Per-stage totals over all cells (same trial count per width): which
  // stage pays for — or banks — the batching.
  StageWall stage_b1, stage_b8;
  std::printf("\nPer-stage wall summed over cells (seconds):\n");
  for (const int width : widths) {
    StageWall sum;
    for (const Cell& c : cells) {
      if (c.width == width) sum.add(c.stage);
    }
    if (width == 1) stage_b1 = sum;
    if (width == 8) stage_b8 = sum;
    std::printf(
        "  B=%d: accumulate %.3f  seal %.3f  merge %.3f  (staged %.3f)\n",
        width, sum.accumulate, sum.seal, sum.merge, sum.total());
  }
  if (stage_b1.accumulate > 0.0 && stage_b1.seal > 0.0) {
    std::printf("  B=8 over B=1: accumulate %.2fx, seal %.2fx\n",
                stage_b8.accumulate / stage_b1.accumulate,
                stage_b8.seal / stage_b1.seal);
  }

  // Emission byte traffic per trial, B = 8 vs 8 × B = 1: what the
  // accumulation phases materialize before sealing (telemetry sampled
  // one execution per cell; an execution carries `width` trials).
  double emit_b1 = 0.0, emit_b8 = 0.0;
  std::uint64_t folds_b8 = 0, sparse_phases_b8 = 0;
  for (const Cell& c : cells) {
    const double per_trial = static_cast<double>(c.accum.emit_bytes) /
                             static_cast<double>(c.width);
    if (c.width == 1) emit_b1 += per_trial;
    if (c.width == 8) {
      emit_b8 += per_trial;
      folds_b8 += c.accum.frontier_folds;
      sparse_phases_b8 += c.accum.sparse_phases;
    }
  }
  const double emit_ratio = emit_b1 > 0.0 ? emit_b8 / emit_b1 : 0.0;
  std::printf(
      "  emission bytes/trial B=8 over B=1: %.2fx (sparse phases %llu, "
      "frontier folds %llu)\n",
      emit_ratio, static_cast<unsigned long long>(sparse_phases_b8),
      static_cast<unsigned long long>(folds_b8));

  // ------------------------------------------------------------- wire
  // The virtual-MPI engine, same trials: every signature-blocked row
  // moves once per superstep regardless of how many lanes it carries, so
  // the per-trial wire volume and superstep count fall with B. This is
  // the amortization a real MPI deployment banks (Section 7's transport).
  std::printf("\nVirtual-MPI transport per trial (ranks=4, %d trials):\n",
              trials);
  TextTable wt({"graph", "query", "B", "KB/trial", "steps/trial",
                "bytes ratio", "density", "lanes"});
  std::vector<WireCell> wire;
  const std::string wire_graph = "condMat";
  const CsrGraph gw = make_workload(wire_graph, bench_scale());
  for (const QueryGraph& q : queries) {
    ExecOptions opts;
    opts.algo = Algo::kDB;
    opts.max_table_entries = bench_budget();
    const Plan plan = make_plan(q);
    Rng seeder(17);
    std::vector<Coloring> colorings;
    for (int i = 0; i < trials; ++i) {
      colorings.emplace_back(gw.num_vertices(), q.num_nodes(), seeder());
    }
    std::vector<Count> base_counts;
    double base_bytes = 0.0;
    for (const int width : widths) {
      if (trials % width != 0) continue;
      double bytes = 0.0, steps = 0.0;
      std::uint64_t lane_slots = 0, lanes_occupied = 0;
      std::array<std::uint64_t, 3> width_hist{};
      StageWall stage_sum;
      std::vector<Count> counts;
      bool ok = true;
      try {
        for (int i = 0; i < trials; i += width) {
          const ColoringBatch batch(
              std::span<const Coloring>(colorings.data() + i, width));
          const DistStats s =
              run_plan_distributed(gw, plan.tree, batch, 4, opts);
          bytes += static_cast<double>(s.transport.off_rank_bytes());
          steps += static_cast<double>(s.transport.supersteps);
          stage_sum.add(s.stage);
          lane_slots += s.transport.lane_slots_sent;
          lanes_occupied += s.transport.lanes_occupied_sent;
          for (int w = 0; w < 3; ++w) {
            width_hist[w] += s.transport.width_rows[w];
          }
          for (int l = 0; l < width; ++l) {
            counts.push_back(s.colorful_lane[l]);
          }
        }
      } catch (const BudgetExceeded&) {
        ok = false;
      }
      if (!ok) {
        wt.add_row({wire_graph, q.name(), TextTable::num(std::uint64_t(width)),
                    "DNF", "-", "-", "-", "-"});
        continue;
      }
      WireCell c;
      c.graph = wire_graph;
      c.query = q.name();
      c.width = width;
      c.bytes_per_trial = bytes / trials;
      c.steps_per_trial = steps / trials;
      c.wire_density = lane_slots == 0
                           ? 0.0
                           : static_cast<double>(lanes_occupied) /
                                 static_cast<double>(lane_slots);
      c.width_hist = width_hist;
      c.stage = stage_sum;
      if (width == 1) {
        base_counts = counts;
        base_bytes = c.bytes_per_trial;
      } else {
        c.bytes_ratio = base_bytes / c.bytes_per_trial;
        c.lanes_match = (counts == base_counts);
      }
      wire.push_back(c);
      wt.add_row({wire_graph, q.name(), TextTable::num(std::uint64_t(width)),
                  TextTable::num(c.bytes_per_trial / 1024.0, 1),
                  TextTable::num(c.steps_per_trial, 1),
                  c.width == 1 ? "1.00x"
                               : TextTable::num(c.bytes_ratio, 2) + "x",
                  c.width == 1 ? "-" : TextTable::num(c.wire_density, 3),
                  c.lanes_match ? "exact" : "MISMATCH"});
    }
  }
  wt.print(std::cout);

  double gm_wire8 = 0.0;
  double gm_steps8 = 0.0;
  for (const int width : widths) {
    if (width == 1) continue;
    std::vector<double> xs, ss;
    for (const WireCell& c : wire) {
      if (c.width == 1) continue;
      if (c.width != width) continue;
      xs.push_back(c.bytes_ratio);
      all_match = all_match && c.lanes_match;
    }
    for (const WireCell& base : wire) {
      if (base.width != 1) continue;
      for (const WireCell& c : wire) {
        if (c.width == width && c.query == base.query) {
          ss.push_back(base.steps_per_trial / c.steps_per_trial);
        }
      }
    }
    if (xs.empty()) continue;
    const double gm = geomean(xs);
    const double gs = geomean(ss);
    if (width == 8) {
      gm_wire8 = gm;
      gm_steps8 = gs;
    }
    std::printf(
        "  B=%d: %.1fx fewer supersteps per trial, %.2fx wire bytes ratio\n",
        width, gs, gm);
  }
  std::printf(
      "(supersteps fall by exactly B; the lane-compressed wire format —\n"
      " occupancy mask + width-adapted packed counts — makes wire bytes\n"
      " track true lane density, see table/README.md \"When to batch\";\n"
      " bytes ratio > 1 means B > 1 moves fewer bytes per trial than\n"
      " B = 1)\n");
  std::printf("per-lane counts vs baseline: %s\n",
              all_match ? "exact" : "MISMATCH");

  std::FILE* f = std::fopen("BENCH_batch.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_batch.json\n");
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"batch_colorings\",\n"
               "  \"trials\": %d,\n"
               "  \"scale\": %.3f,\n"
               "  \"geomean_wall_speedup_b8\": %.3f,\n"
               "  \"geomean_wire_ratio_b8\": %.3f,\n"
               "  \"geomean_steps_ratio_b8\": %.3f,\n"
               "  \"seal_wall_b8_over_b1\": %.3f,\n"
               "  \"accumulate_wall_b8_over_b1\": %.3f,\n"
               "  \"emit_bytes_per_trial_b8_over_b1\": %.3f,\n"
               "  \"wire_b8_beats_b1\": %s,\n"
               "  \"lanes_match\": %s,\n"
               "  \"stage_seconds_b1\": {\"accumulate\": %.6f, "
               "\"seal\": %.6f, \"merge\": %.6f, \"transport\": %.6f},\n"
               "  \"stage_seconds_b8\": {\"accumulate\": %.6f, "
               "\"seal\": %.6f, \"merge\": %.6f, \"transport\": %.6f},\n"
               "  \"cells\": [\n",
               trials, bench_scale(), gm_wall8, gm_wire8, gm_steps8,
               stage_b1.seal > 0.0 ? stage_b8.seal / stage_b1.seal : 0.0,
               stage_b1.accumulate > 0.0
                   ? stage_b8.accumulate / stage_b1.accumulate
                   : 0.0,
               emit_ratio,
               gm_wire8 > 1.0 ? "true" : "false",
               all_match ? "true" : "false", stage_b1.accumulate,
               stage_b1.seal, stage_b1.merge, stage_b1.transport,
               stage_b8.accumulate, stage_b8.seal, stage_b8.merge,
               stage_b8.transport);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        f,
        "    {\"graph\": \"%s\", \"query\": \"%s\", \"B\": %d, "
        "\"wall_s\": %.6f, \"ms_per_trial\": %.4f, "
        "\"speedup\": %.3f, \"lanes_match\": %s, "
        "\"lane_density\": %.4f, \"packed_row_share\": %.4f, "
        "\"packed_width_hist\": {\"u16\": %llu, \"u32\": %llu, "
        "\"u64\": %llu}, "
        "\"stage\": {\"accumulate\": %.6f, \"seal\": %.6f, "
        "\"merge\": %.6f}, "
        "\"accumulate_wall_over_b1\": %.3f, "
        "\"accum\": {\"phases\": %llu, \"sharded_phases\": %llu, "
        "\"sparse_phases\": %llu, \"rows\": %llu, \"emit_bytes\": %llu, "
        "\"bytes_per_row\": %.2f, \"combine_folds\": %llu, "
        "\"frontier_folds\": %llu, \"run_emits\": %llu, "
        "\"shard_occupancy\": %.3f}}%s\n",
        c.graph.c_str(), c.query.c_str(), c.width, c.wall, c.per_trial_ms,
        c.speedup, c.lanes_match ? "true" : "false", c.lane_density,
        c.packed_share,
        static_cast<unsigned long long>(c.width_hist[0]),
        static_cast<unsigned long long>(c.width_hist[1]),
        static_cast<unsigned long long>(c.width_hist[2]),
        c.stage.accumulate, c.stage.seal, c.stage.merge, c.accum_ratio,
        static_cast<unsigned long long>(c.accum.phases),
        static_cast<unsigned long long>(c.accum.sharded_phases),
        static_cast<unsigned long long>(c.accum.sparse_phases),
        static_cast<unsigned long long>(c.accum.rows),
        static_cast<unsigned long long>(c.accum.emit_bytes),
        c.accum.bytes_per_row(),
        static_cast<unsigned long long>(c.accum.combine_folds),
        static_cast<unsigned long long>(c.accum.frontier_folds),
        static_cast<unsigned long long>(c.accum.run_emits),
        c.accum.shard_occupancy(),
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"wire_cells\": [\n");
  for (std::size_t i = 0; i < wire.size(); ++i) {
    const WireCell& c = wire[i];
    std::fprintf(
        f,
        "    {\"graph\": \"%s\", \"query\": \"%s\", \"B\": %d, "
        "\"bytes_per_trial\": %.1f, \"steps_per_trial\": %.2f, "
        "\"bytes_ratio\": %.3f, \"lanes_match\": %s, "
        "\"wire_lane_density\": %.4f, "
        "\"wire_width_hist\": {\"u16\": %llu, \"u32\": %llu, "
        "\"u64\": %llu}, "
        "\"stage\": {\"accumulate\": %.6f, \"seal\": %.6f, "
        "\"merge\": %.6f, \"transport\": %.6f}}%s\n",
        c.graph.c_str(), c.query.c_str(), c.width, c.bytes_per_trial,
        c.steps_per_trial, c.bytes_ratio, c.lanes_match ? "true" : "false",
        c.wire_density,
        static_cast<unsigned long long>(c.width_hist[0]),
        static_cast<unsigned long long>(c.width_hist[1]),
        static_cast<unsigned long long>(c.width_hist[2]),
        c.stage.accumulate, c.stage.seal, c.stage.merge, c.stage.transport,
        i + 1 < wire.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf(
      "BENCH_batch.json written: B=8 wall %.2fx, wire %.2fx, steps %.1fx\n",
      gm_wall8, gm_wire8, gm_steps8);
  return 0;
}
