#include "ccbt/bench_support/workloads.hpp"

#include <algorithm>
#include <cmath>

#include "ccbt/graph/generators.hpp"
#include "ccbt/util/error.hpp"

namespace ccbt {

namespace {

struct ModelParams {
  const char* name;
  const char* domain;
  const char* model;
  VertexId paper_nodes;
  std::size_t paper_edges;
  std::uint32_t paper_max_degree;
  // Stand-in parameters (Chung-Lu unless grid==true).
  VertexId n;
  double alpha;       // truncated power-law exponent; lower = heavier tail
  double avg_degree;
  bool grid = false;
};

// alpha is tuned so that graphs the paper found hard (enron, epinions,
// slashdot: max degree 20-30x n^(1/2)) get heavy tails, while condMat and
// roadNetCA stay light.
constexpr ModelParams kModels[] = {
    {"brightkite", "Geo loc.", "chung-lu a=1.85", 58'000, 214'000, 1135,
     14'000, 1.85, 7.4},
    {"condMat", "Collab.", "chung-lu a=1.99 (light tail)", 23'000, 93'000,
     281, 8'000, 1.99, 8.1},
    {"astroph", "Collab.", "chung-lu a=1.95", 18'000, 198'000, 504,
     6'000, 1.95, 22.0},
    {"enron", "Commn.", "chung-lu a=1.75 (heavy tail)", 36'000, 180'000, 1385,
     10'000, 1.75, 10.0},
    {"hepph", "Citation", "chung-lu a=1.9", 34'000, 421'000, 848,
     9'000, 1.90, 24.0},
    {"slashdot", "Soc. net.", "chung-lu a=1.8 (heavy tail)", 82'000, 900'000,
     2554, 16'000, 1.80, 22.0},
    {"epinions", "Soc. net.", "chung-lu a=1.7 (heaviest tail)", 131'000,
     841'000, 3558, 18'000, 1.70, 12.8},
    {"orkut", "Soc. net.", "chung-lu a=1.9", 524'000, 1'300'000, 1634,
     24'000, 1.90, 5.0},
    {"roadNetCA", "Road net.", "2d grid + shortcuts (low skew)", 2'000'000,
     2'700'000, 14, 25'000, 0.0, 2.7, true},
    {"brain", "Biology", "chung-lu a=1.95", 400'000, 1'100'000, 286,
     20'000, 1.95, 5.5},
};

const ModelParams& find_model(const std::string& name) {
  for (const auto& m : kModels) {
    if (name == m.name) return m;
  }
  throw Error("unknown workload: " + name);
}

}  // namespace

std::vector<WorkloadSpec> table1_specs() {
  std::vector<WorkloadSpec> specs;
  for (const auto& m : kModels) {
    specs.push_back({m.name, m.domain, m.model, m.paper_nodes, m.paper_edges,
                     m.paper_max_degree});
  }
  return specs;
}

CsrGraph make_workload(const std::string& name, double scale,
                       std::uint64_t seed) {
  const ModelParams& m = find_model(name);
  scale = std::clamp(scale, 0.01, 1.0);
  const auto n = static_cast<VertexId>(
      std::max(64.0, static_cast<double>(m.n) * scale));
  if (m.grid) {
    const auto side = static_cast<VertexId>(std::sqrt(n));
    return grid2d(side, side, static_cast<std::size_t>(side) * side / 20,
                  seed);
  }
  return chung_lu_power_law(n, m.alpha, m.avg_degree, seed);
}

std::vector<std::string> workload_names() {
  std::vector<std::string> names;
  for (const auto& m : kModels) names.emplace_back(m.name);
  return names;
}

}  // namespace ccbt
