#include "ccbt/table/proj_table.hpp"

namespace ccbt {

// One compiled copy of every supported batch width (the header declares
// the matching extern templates).
template class ProjTableT<1>;
template class ProjTableT<2>;
template class ProjTableT<4>;
template class ProjTableT<8>;

}  // namespace ccbt
