#pragma once
// Graphviz DOT rendering of queries and decomposition trees — the
// debugging/teaching view of the Section 4 contraction process (what
// Figure 2 of the paper shows for the Satellite query).

#include <string>

#include "ccbt/decomp/block.hpp"
#include "ccbt/query/query_graph.hpp"

namespace ccbt {

/// The query graph as an undirected DOT graph.
std::string query_to_dot(const QueryGraph& q);

/// The decomposition tree as a DOT digraph: one box per block showing
/// its kind, node sequence, boundary positions and annotation edges to
/// its children.
std::string decomp_tree_to_dot(const DecompTree& tree);

}  // namespace ccbt
