#pragma once
// Random vertex colorings (the "color coding" in color coding).
//
// A coloring assigns each data vertex one of k colors uniformly at random;
// a match is colorful when all query nodes map to distinctly colored
// vertices. Multiple independent colorings drive the estimator.

#include <array>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "ccbt/graph/types.hpp"
#include "ccbt/util/error.hpp"
#include "ccbt/util/rng.hpp"

namespace ccbt {

class Coloring {
 public:
  Coloring() = default;

  /// Uniform random coloring with k colors over n vertices.
  Coloring(VertexId n, int k, std::uint64_t seed) : k_(k) {
    colors_.resize(n);
    Rng rng(seed);
    for (auto& c : colors_) c = static_cast<std::uint8_t>(rng.below(k));
  }

  /// Explicit coloring (tests).
  Coloring(std::vector<std::uint8_t> colors, int k)
      : k_(k), colors_(std::move(colors)) {}

  int num_colors() const { return k_; }

  std::uint8_t color(VertexId v) const { return colors_[v]; }

  /// Signature bit of v's color.
  Signature bit(VertexId v) const { return Signature{1} << colors_[v]; }

  VertexId size() const { return static_cast<VertexId>(colors_.size()); }

 private:
  int k_ = 0;
  std::vector<std::uint8_t> colors_;
};

/// A batch of up to kMaxBatchLanes independent colorings ("lanes") that
/// one plan execution processes simultaneously. Non-owning: the referenced
/// colorings must outlive the batch (and the ExecContext holding it).
///
/// Lane 0 doubles as the scalar view — color(v) / bit(v) without a lane
/// argument — so single-coloring code reads a batch exactly like a
/// Coloring, and a Coloring converts implicitly into a one-lane batch.
class ColoringBatch {
 public:
  ColoringBatch() = default;

  ColoringBatch(const Coloring& single) : n_(1) {  // NOLINT(runtime/explicit)
    lanes_[0] = &single;
  }

  explicit ColoringBatch(std::span<const Coloring> lanes) {
    if (lanes.empty() || lanes.size() > kMaxBatchLanes) {
      throw Error("ColoringBatch: lane count must be in [1, 8]");
    }
    n_ = static_cast<int>(lanes.size());
    for (int l = 0; l < n_; ++l) {
      if (lanes[l].num_colors() != lanes[0].num_colors() ||
          lanes[l].size() != lanes[0].size()) {
        throw Error("ColoringBatch: lanes disagree on shape");
      }
      lanes_[l] = &lanes[l];
    }
    if (n_ > 1) {
      // Interleave the lane colors: byte l of packed_[v] is lane l's
      // color of v, so the hot per-lane loops read ONE word per vertex
      // instead of chasing n_ separate color arrays. Unused lane bytes
      // hold 0xFF (never a valid color).
      packed_.resize(lanes[0].size());
      for (VertexId v = 0; v < lanes[0].size(); ++v) {
        std::uint64_t word = ~std::uint64_t{0};
        for (int l = 0; l < n_; ++l) {
          word &= ~(std::uint64_t{0xFF} << (8 * l));
          word |= std::uint64_t{lanes[l].color(v)} << (8 * l);
        }
        packed_[v] = word;
      }
    }
  }

  int lanes() const { return n_; }
  const Coloring& lane(int l) const { return *lanes_[l]; }

  // Scalar (lane 0) view.
  int num_colors() const { return lanes_[0]->num_colors(); }
  VertexId size() const { return lanes_[0]->size(); }
  std::uint8_t color(VertexId v) const { return lanes_[0]->color(v); }
  Signature bit(VertexId v) const { return lanes_[0]->bit(v); }

  // Per-lane view.
  std::uint8_t color(VertexId v, int l) const {
    return packed_.empty()
               ? lanes_[l]->color(v)
               : static_cast<std::uint8_t>(packed_[v] >> (8 * l));
  }
  Signature bit(VertexId v, int l) const {
    return Signature{1} << color(v, l);
  }

  /// All lane colors of v in one word (byte l = lane l's color; 0xFF in
  /// unused lanes). Only valid with more than one lane.
  std::uint64_t colors_word(VertexId v) const { return packed_[v]; }

  /// Lanes whose coloring gives v exactly the (single-bit) signature
  /// `want` — the per-lane half of the NodeJoin compatibility test.
  LaneMask mask_bit_eq(VertexId v, Signature want) const {
    if (packed_.empty()) return lanes_[0]->bit(v) == want ? 1u : 0u;
    const auto c =
        static_cast<std::uint64_t>(std::countr_zero(want));
    std::uint64_t w = packed_[v];
    LaneMask m = 0;
    for (int l = 0; l < n_; ++l) {
      m |= static_cast<LaneMask>((w & 0xFF) == c) << l;
      w >>= 8;
    }
    return m;
  }

  /// Lanes where {color(u), color(v)} covers exactly the bits of `want` —
  /// the per-lane half of the path-merge compatibility test.
  LaneMask mask_pair_eq(VertexId u, VertexId v, Signature want) const {
    if (packed_.empty()) {
      return (lanes_[0]->bit(u) | lanes_[0]->bit(v)) == want ? 1u : 0u;
    }
    std::uint64_t wu = packed_[u];
    std::uint64_t wv = packed_[v];
    LaneMask m = 0;
    for (int l = 0; l < n_; ++l) {
      const Signature bits = (Signature{1} << (wu & 0xFF)) |
                             (Signature{1} << (wv & 0xFF));
      m |= static_cast<LaneMask>(bits == want) << l;
      wu >>= 8;
      wv >>= 8;
    }
    return m;
  }

 private:
  std::array<const Coloring*, kMaxBatchLanes> lanes_{};
  std::vector<std::uint64_t> packed_;  // built when n_ > 1
  int n_ = 0;
};

}  // namespace ccbt
