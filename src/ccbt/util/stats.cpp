#include "ccbt/util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace ccbt {

double Summary::cv() const { return mean == 0.0 ? 0.0 : stddev / mean; }

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  double sum = 0.0;
  for (double x : xs) sum += x;
  s.mean = sum / static_cast<double>(xs.size());
  if (xs.size() > 1) {
    double ss = 0.0;
    for (double x : xs) ss += (x - s.mean) * (x - s.mean);
    s.variance = ss / static_cast<double>(xs.size() - 1);
    s.stddev = std::sqrt(s.variance);
  }
  return s;
}

double geometric_mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += std::log(x);
  return std::exp(acc / static_cast<double>(xs.size()));
}

double loglog_slope(const std::vector<double>& x, const std::vector<double>& y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = static_cast<double>(n) * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (static_cast<double>(n) * sxy - sx * sy) / denom;
}

}  // namespace ccbt
