// Property-based engine validation: across random treewidth-2 queries,
// random data graphs of several shapes, and random colorings, all three
// cycle strategies must agree with the brute-force colorful oracle, and
// basic invariants of the counts must hold.

#include <gtest/gtest.h>

#include <tuple>

#include "ccbt/core/color_coding.hpp"
#include "ccbt/core/exact.hpp"
#include "ccbt/graph/generators.hpp"
#include "ccbt/query/catalog.hpp"
#include "ccbt/query/random_tw2.hpp"
#include "ccbt/query/treewidth.hpp"

namespace ccbt {
namespace {

CsrGraph make_data_graph(int shape, std::uint64_t seed) {
  switch (shape % 7) {
    case 0: return erdos_renyi(24, 58, seed);
    case 1: return chung_lu_power_law(40, 1.6, 3.5, seed);
    case 2: return grid2d(5, 5, 6, seed);
    case 3: return complete_bipartite(5, 6);
    case 4: return watts_strogatz(26, 2, 0.2, seed);
    case 5: return stochastic_block({12, 12}, 0.35, 0.05, seed);
    default: return barabasi_albert(28, 2, seed);
  }
}

// ---------------------------------------------------------------------
// Random tw2 queries vs the oracle.

class RandomQueryAgreement
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(RandomQueryAgreement, AllAlgosMatchOracle) {
  const auto [query_seed, graph_shape, query_size] = GetParam();
  RandomTw2Options qopts;
  qopts.target_nodes = query_size;
  const QueryGraph q = random_tw2_query(qopts, query_seed);
  ASSERT_TRUE(treewidth_at_most_2(q));
  const CsrGraph g = make_data_graph(graph_shape, 100 + query_seed);
  const Coloring chi(g.num_vertices(), q.num_nodes(),
                     977 * query_seed + graph_shape);
  const Count oracle = count_colorful_exact(g, q, chi);
  const Plan plan = make_plan(q);
  for (Algo algo : {Algo::kPS, Algo::kPSEven, Algo::kDB}) {
    ExecOptions opts;
    opts.algo = algo;
    CountingSession session(g, q, plan, opts);
    EXPECT_EQ(session.count_colorful(chi).colorful, oracle)
        << algo_name(algo) << " query=" << q.name()
        << " shape=" << graph_shape;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomQueryAgreement,
    ::testing::Combine(::testing::Range(1, 13),      // query seeds
                       ::testing::Range(0, 7),       // graph shapes
                       ::testing::Values(5, 7, 9)),  // query sizes
    [](const auto& info) {
      return "q" + std::to_string(std::get<0>(info.param)) + "_g" +
             std::to_string(std::get<1>(info.param)) + "_k" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------
// Every plan of a query gives the same count (plan independence).

class PlanIndependence : public ::testing::TestWithParam<const char*> {};

TEST_P(PlanIndependence, AllPlansAgree) {
  const QueryGraph q = named_query(GetParam());
  const CsrGraph g = erdos_renyi(22, 52, 31);
  const Coloring chi(g.num_vertices(), q.num_nodes(), 777);
  const Count oracle = count_colorful_exact(g, q, chi);
  EnumLimits limits;
  limits.max_trees = 16;
  for (const Plan& plan : enumerate_plans(q, limits)) {
    for (Algo algo : {Algo::kPS, Algo::kDB}) {
      ExecOptions opts;
      opts.algo = algo;
      CountingSession session(g, q, plan, opts);
      EXPECT_EQ(session.count_colorful(chi).colorful, oracle)
          << algo_name(algo) << " plan features: longest="
          << plan.features.longest_cycle;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Catalog, PlanIndependence,
                         ::testing::Values("brain1", "brain3", "satellite",
                                           "theta", "ecoli1", "wiki",
                                           "glet2", "dros"));

// ---------------------------------------------------------------------
// Invariants across colorings.

class ColoringInvariants : public ::testing::TestWithParam<int> {};

TEST_P(ColoringInvariants, ColorfulNeverExceedsMatches) {
  const int seed = GetParam();
  const CsrGraph g = erdos_renyi(26, 60, 500 + seed);
  const QueryGraph q = q_dros();
  const Count total = count_matches_exact(g, q);
  const Plan plan = make_plan(q);
  ExecOptions opts;
  CountingSession session(g, q, plan, opts);
  const Coloring chi(g.num_vertices(), q.num_nodes(), seed);
  EXPECT_LE(session.count_colorful(chi).colorful, total);
}

TEST_P(ColoringInvariants, DeterministicAcrossRuns) {
  const int seed = GetParam();
  const CsrGraph g = chung_lu_power_law(60, 1.7, 4.0, seed);
  const QueryGraph q = q_brain1();
  ExecOptions opts;
  CountingSession session(g, q, make_plan(q), opts);
  const auto a = session.count_colorful_seeded(seed).colorful;
  const auto b = session.count_colorful_seeded(seed).colorful;
  EXPECT_EQ(a, b);
}

TEST_P(ColoringInvariants, ThreadCountIndependent) {
  const int seed = GetParam();
  const CsrGraph g = erdos_renyi(200, 800, 900 + seed);
  const QueryGraph q = q_wiki();
  const Plan plan = make_plan(q);
  ExecOptions serial;
  serial.use_threads = false;
  ExecOptions parallel;
  parallel.use_threads = true;
  CountingSession s1(g, q, plan, serial);
  CountingSession s2(g, q, plan, parallel);
  EXPECT_EQ(s1.count_colorful_seeded(seed).colorful,
            s2.count_colorful_seeded(seed).colorful);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColoringInvariants, ::testing::Range(1, 9));

// ---------------------------------------------------------------------
// The virtual-rank dimension must not change counts.

class RankInvariance : public ::testing::TestWithParam<int> {};

TEST_P(RankInvariance, CountsUnchangedBySimRanks) {
  const CsrGraph g = erdos_renyi(40, 120, 77);
  const QueryGraph q = q_glet2();
  const Plan plan = make_plan(q);
  const Coloring chi(g.num_vertices(), q.num_nodes(), 5);
  Count base = 0;
  bool first = true;
  ExecOptions opts;
  opts.sim_ranks = GetParam();
  CountingSession session(g, q, plan, opts);
  const Count c = session.count_colorful(chi).colorful;
  if (first) {
    base = c;
    first = false;
  }
  ExecOptions no_ranks;
  CountingSession plain(g, q, plan, no_ranks);
  EXPECT_EQ(c, plain.count_colorful(chi).colorful);
  (void)base;
}

INSTANTIATE_TEST_SUITE_P(Ranks, RankInvariance,
                         ::testing::Values(1, 2, 32, 512));

}  // namespace
}  // namespace ccbt
