#pragma once
// Compressed sparse row representation of an undirected simple data graph.
//
// This is the storage layer the paper's "engine" (Section 7) operates on:
// all join primitives stream over sorted neighbor ranges of a vertex.

#include <cstddef>
#include <span>
#include <vector>

#include "ccbt/graph/edge_list.hpp"
#include "ccbt/graph/types.hpp"

namespace ccbt {

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Build from (possibly messy) edges; self loops and duplicates removed.
  static CsrGraph from_edges(const EdgeList& list);

  VertexId num_vertices() const { return n_; }

  /// Number of undirected edges.
  std::size_t num_edges() const { return adj_.size() / 2; }

  std::uint32_t degree(VertexId u) const {
    return static_cast<std::uint32_t>(offsets_[u + 1] - offsets_[u]);
  }

  /// Sorted neighbors of u.
  std::span<const VertexId> neighbors(VertexId u) const {
    return {adj_.data() + offsets_[u], adj_.data() + offsets_[u + 1]};
  }

  /// Binary search in the sorted adjacency list.
  bool has_edge(VertexId u, VertexId v) const;

  std::uint32_t max_degree() const { return max_degree_; }

  /// Round-trip back to a canonical edge list (u < v per edge).
  EdgeList to_edges() const;

 private:
  VertexId n_ = 0;
  std::uint32_t max_degree_ = 0;
  std::vector<std::size_t> offsets_;  // n_ + 1 entries
  std::vector<VertexId> adj_;         // both directions stored
};

}  // namespace ccbt
