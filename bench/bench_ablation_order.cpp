// Ablation: what does the *degree* order buy over plain symmetry breaking?
// DB with an id-based anchor order still partitions matches by a unique
// highest node (correct counts), but the anchor no longer concentrates on
// hubs. Section 9's analysis says the degree order is the asymptotic win.
//
// Shape to verify: degree-ordered DB does significantly less work than
// id-ordered DB on heavy-tailed graphs, and about the same on low-skew
// graphs (roadNetCA).

#include "common.hpp"

int main() {
  using namespace ccbt;
  using namespace ccbt::bench;
  print_header("Ablation — DB anchor ordering (degree vs id)",
               "total join ops (millions), 512 virtual ranks");

  const std::vector<std::string> graph_names{"enron", "epinions", "slashdot",
                                             "condMat", "roadNetCA"};
  const std::vector<std::string> query_names{"glet1", "glet2", "wiki",
                                             "youtube", "dros"};
  TextTable t({"graph", "query", "DB(degree)", "DB(id)", "id/degree"});
  for (const std::string& gname : graph_names) {
    const CsrGraph g = make_workload(gname, bench_scale());
    for (const std::string& qname : query_names) {
      const QueryGraph q = named_query(qname);
      const Plan plan = make_plan(q);
      ExecOptions deg_opts;
      deg_opts.algo = Algo::kDB;
      deg_opts.sim_ranks = 512;
      deg_opts.max_table_entries = bench_budget();
      ExecOptions id_opts = deg_opts;
      id_opts.order_by_id = true;
      std::string deg_cell = "DNF", id_cell = "DNF", ratio = "-";
      try {
        CountingSession deg_session(g, q, plan, deg_opts);
        CountingSession id_session(g, q, plan, id_opts);
        const ExecStats deg_stats = deg_session.count_colorful_seeded(7);
        const ExecStats id_stats = id_session.count_colorful_seeded(7);
        if (deg_stats.colorful != id_stats.colorful) {
          ratio = "MISMATCH";
        } else {
          deg_cell = TextTable::num(deg_stats.total_ops / 1e6, 2);
          id_cell = TextTable::num(id_stats.total_ops / 1e6, 2);
          ratio = TextTable::num(static_cast<double>(id_stats.total_ops) /
                                     std::max<std::uint64_t>(
                                         deg_stats.total_ops, 1),
                                 2);
        }
      } catch (const BudgetExceeded&) {
      }
      t.add_row({gname, qname, deg_cell, id_cell, ratio});
    }
  }
  t.print(std::cout);
  std::cout << "(id/degree >> 1 on skewed graphs isolates the value of the "
               "degree information itself)\n";
  return 0;
}
