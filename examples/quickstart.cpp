// Quickstart: estimate how many 5-cycles a heavy-tailed graph contains.
//
//   1. build (or load) a data graph;
//   2. pick a treewidth-2 query;
//   3. let the planner decompose it;
//   4. run the estimator (color coding with the DB algorithm).
//
// Build & run:  ./examples/quickstart

#include <iostream>

#include "ccbt/core/ccbt.hpp"

int main() {
  using namespace ccbt;

  // A 20k-node Chung-Lu graph with a power-law degree tail — the random
  // model the paper analyzes (Section 9.2). Swap in
  // CsrGraph::from_edges(read_edge_list_file("my.edges")) for real data.
  const CsrGraph graph = chung_lu_power_law(
      /*n=*/8'000, /*alpha=*/1.8, /*avg_degree=*/6.0, /*seed=*/1);
  std::cout << "data graph: " << graph.num_vertices() << " vertices, "
            << graph.num_edges() << " edges, max degree "
            << graph.max_degree() << "\n";

  // Any connected treewidth-2 query works; cycles are the canonical
  // beyond-trees case.
  const QueryGraph query = named_query("cycle5");

  // The planner decomposes the query into blocks (Section 4) and picks
  // the best decomposition tree by the Section 6 heuristic.
  const Plan plan = make_plan(query);
  std::cout << "plan: " << plan.tree.blocks.size() << " block(s), longest "
            << "cycle " << plan.features.longest_cycle << "\n";

  // Color coding: each trial colors the graph with k=5 random colors,
  // counts colorful matches exactly (DB algorithm), and scales by k^k/k!.
  EstimatorOptions opts;
  opts.trials = 3;
  opts.seed = 2026;
  const EstimatorResult result = estimate_matches(graph, query, opts);

  std::cout << "estimated matches:     " << result.matches << "\n"
            << "estimated occurrences: " << result.occurrences
            << "  (matches / aut(Q), aut=" << result.automorphisms << ")\n"
            << "coefficient of variation over " << opts.trials
            << " trials: " << result.cv << "\n"
            << "total time: " << result.total_wall_seconds << " s\n";
  return 0;
}
