#include "ccbt/engine/cycle_solver.hpp"

#include "ccbt/engine/split_plan.hpp"
#include "ccbt/util/error.hpp"

namespace ccbt {

ProjTable solve_cycle(const ExecContext& cx, const Block& blk,
                      TablePool& pool) {
  AccumMap sink;
  for (const SplitPlan& plan : splits_for(blk, cx.opts.algo)) {
    ProjTable plus = build_path(cx, blk, pool, plan.plus);
    ProjTable minus = build_path(cx, blk, pool, plan.minus);
    merge_halves(cx, plus, minus, plan.merge, sink);
  }
  // The merge spec emitted exactly the boundary slots, so the accumulated
  // keys already project to the block's boundary images.
  return ProjTable::from_map(blk.boundary_count(), std::move(sink));
}

}  // namespace ccbt
