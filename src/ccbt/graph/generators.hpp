#pragma once
// Synthetic data-graph generators.
//
// These are the substitutes for the paper's real-world inputs:
//  * chung_lu / truncated_power_law_degrees — the random-graph model the
//    paper analyzes in Sections 9-10 and the stand-in for the SNAP graphs
//    of Table 1 (matched skew);
//  * rmat — Graph500 R-MAT used by the paper for weak scaling (Fig 13);
//  * grid2d — low-skew stand-in for roadNetCA;
//  * erdos_renyi and deterministic structures — test workloads.

#include <cstdint>
#include <vector>

#include "ccbt/graph/csr_graph.hpp"
#include "ccbt/util/rng.hpp"

namespace ccbt {

/// G(n, m)-style Erdős–Rényi: m distinct uniform edges.
CsrGraph erdos_renyi(VertexId n, std::size_t m, std::uint64_t seed);

/// Expected-degree sequence for the truncated power law of Section 9.2:
/// for each 0 <= j <= (1/2)log2(n), about n / 2^(alpha*j) vertices get
/// expected degree 2^j (clamped to sqrt(n)). alpha in (1,2).
std::vector<double> truncated_power_law_degrees(VertexId n, double alpha);

/// Chung-Lu graph: edge (u,v) present independently with probability
/// d_u d_v / (2m), where d is the expected degree sequence (Section 9.2).
/// Sampled in O(n + m_expected) by the standard bucketed method.
CsrGraph chung_lu(const std::vector<double>& degrees, std::uint64_t seed);

/// Convenience: Chung-Lu over a truncated power law, rescaled so the
/// expected average degree is `avg_degree`.
CsrGraph chung_lu_power_law(VertexId n, double alpha, double avg_degree,
                            std::uint64_t seed);

/// R-MAT generator (Chakrabarti et al.); the paper uses A=0.5, B=0.1,
/// C=0.1, D=0.3 with edge factor 16 for weak scaling. Emits 2^scale
/// vertices and edge_factor * 2^scale undirected edges (before dedupe).
struct RmatParams {
  double a = 0.5, b = 0.1, c = 0.1, d = 0.3;
  int scale = 14;
  int edge_factor = 16;
};
CsrGraph rmat(const RmatParams& params, std::uint64_t seed);

/// rows x cols 2D lattice with optional extra random "shortcut" edges —
/// the low-skew road-network stand-in.
CsrGraph grid2d(VertexId rows, VertexId cols, std::size_t extra_edges,
                std::uint64_t seed);

/// Barabási–Albert preferential attachment: each new vertex attaches
/// `edges_per_vertex` edges to existing vertices with probability
/// proportional to their degree. Produces power-law tails with exponent
/// ~3 — an alternative heavy-tailed model for robustness checks.
CsrGraph barabasi_albert(VertexId n, int edges_per_vertex,
                         std::uint64_t seed);

/// Watts–Strogatz small world: a ring lattice where every vertex links to
/// its `ring_neighbors` nearest neighbors per side, each edge rewired to
/// a uniform endpoint with probability `beta`. Low-skew, high-clustering
/// — the opposite regime from the power-law workloads.
CsrGraph watts_strogatz(VertexId n, int ring_neighbors, double beta,
                        std::uint64_t seed);

/// Stochastic block model: vertices split into `block_sizes` communities;
/// within-community edges appear with probability p_in, cross-community
/// with p_out. Community structure concentrates motif counts.
CsrGraph stochastic_block(const std::vector<VertexId>& block_sizes,
                          double p_in, double p_out, std::uint64_t seed);

// Deterministic structured graphs (test fixtures and oracles).
CsrGraph complete_graph(VertexId n);
CsrGraph cycle_graph(VertexId n);
CsrGraph path_graph(VertexId n);
CsrGraph star_graph(VertexId leaves);
CsrGraph complete_bipartite(VertexId a, VertexId b);

}  // namespace ccbt
