#pragma once
// Narrow flat accumulation rows — the batched (B > 1) hot-path sink.
//
// The graph-driven primitives emit rows without hashing and let the
// table's sorting seal consolidate duplicates. Before this layout the
// sink was a vector of dense TableEntryT<B> (88 bytes at B = 8), so the
// seal's counting partition, per-bucket sorts and merge pass all hauled
// 88-byte rows — the measured reason a batched execution lost wall clock
// to B = 1. A narrow flat row is the packed 64-bit key (table_key.hpp:
// v0:28 | v1:28 | sig:8) plus all B lane counts at the narrowest width
// that holds them:
//
//   u16: 8 + 2B bytes   (24 at B = 8 — 3.7x less sort traffic)
//   u32: 8 + 4B bytes   (40 at B = 8)
//
// The width escalates for the whole buffer the first time a count
// outgrows it (u16 -> u32), and the sink migrates to dense wide rows on
// the first unpackable key or u64-range count — the engine's correctness
// never depends on staying narrow. Because the packed key is ordered as
// (v0, v1, sig) and narrow keys never use slots 2-3, a raw u64 compare
// reproduces the projection table's comparators exactly: partitioning by
// a slot's bit field and sorting buckets by k gives the same row order
// the dense seal produces, and equal-k runs are exactly equal-TableKey
// runs. Run sums during the merge pass are computed in 64-bit, so the
// deduped counts are bit-identical to the dense path's.
//
// Emission itself runs on one of two engines (AccumEngine below; a sink
// binds one per accumulation phase via prepare_emit). The probe engine
// probes a global direct-mapped combining cache per append. The sharded
// engine — the default — lands u16 rows pre-bucketed in 64 shards cut
// over the high bits of v1, each with its own L1-sized combining cache,
// and takes whole same-v1 bursts through a run handle (run_u16) that
// resolves the shard and cache slice once per burst; the cut is
// monotone in v1, so the shards hand the kByV1 seal its leading radix
// digits pre-sorted. Escalation out of u16 flattens the shards in place
// and continues on the probe path — engine choice is a pure performance
// knob, sealed tables are bit-identical (tests/test_accum_sharded.cpp).

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "ccbt/table/lane_payload.hpp"
#include "ccbt/table/table_key.hpp"

namespace ccbt {

/// Which sort the narrow seal uses. kAuto takes the LSD radix sort once
/// the row count clears its setup cost and the counting-partition +
/// per-bucket comparison sort below it; the explicit values pin one path
/// (the seal-sort property tests drive both and assert bit-identical
/// sealed tables; CCBT_SEAL_SORT=comparison|radix pins a whole process).
enum class SealSortAlgo : std::uint8_t { kAuto = 0, kComparison = 1, kRadix = 2 };

namespace detail_seal {

inline SealSortAlgo seal_sort_from_env() {
  const char* env = std::getenv("CCBT_SEAL_SORT");
  if (env != nullptr) {
    if (std::strcmp(env, "comparison") == 0) return SealSortAlgo::kComparison;
    if (std::strcmp(env, "radix") == 0) return SealSortAlgo::kRadix;
  }
  return SealSortAlgo::kAuto;
}

inline std::atomic<SealSortAlgo>& seal_sort_state() {
  static std::atomic<SealSortAlgo> state{seal_sort_from_env()};
  return state;
}

}  // namespace detail_seal

inline SealSortAlgo seal_sort_algo() {
  return detail_seal::seal_sort_state().load(std::memory_order_relaxed);
}

/// Override the seal-sort selection process-wide (tests; kAuto restores
/// the default policy).
inline void set_seal_sort_algo(SealSortAlgo a) {
  detail_seal::seal_sort_state().store(a, std::memory_order_relaxed);
}

/// Which accumulation engine the B > 1 sinks run. kProbe is the
/// original per-emission combining-cache probe into one flat buffer —
/// kept as the differential oracle. kSharded routes u16 emissions into
/// 1 << kShardBits shards cut by the high bits of the packed v1 field:
/// duplicate bursts collapse inside a cache-resident shard, and the
/// slot-1 seal sorts each shard independently (its leading radix
/// passes are pre-satisfied by the shard order). kAuto resolves to
/// kSharded whenever the producer supplies a vertex domain. Both
/// engines feed the same sort-merge seal, and every count is an exact
/// u64 sum, so sealed tables are bit-identical either way (the parity
/// tests assert it). CCBT_ACCUM=probe|sharded pins a whole process.
enum class AccumEngine : std::uint8_t { kAuto = 0, kProbe = 1, kSharded = 2 };

namespace detail_accum {

inline AccumEngine accum_from_env() {
  const char* env = std::getenv("CCBT_ACCUM");
  if (env != nullptr) {
    if (std::strcmp(env, "probe") == 0) return AccumEngine::kProbe;
    if (std::strcmp(env, "sharded") == 0) return AccumEngine::kSharded;
  }
  return AccumEngine::kAuto;
}

inline std::atomic<AccumEngine>& accum_state() {
  static std::atomic<AccumEngine> state{accum_from_env()};
  return state;
}

}  // namespace detail_accum

inline AccumEngine accum_engine() {
  return detail_accum::accum_state().load(std::memory_order_relaxed);
}

/// Override the accumulation-engine selection process-wide (tests;
/// kAuto restores the default policy).
inline void set_accum_engine(AccumEngine e) {
  detail_accum::accum_state().store(e, std::memory_order_relaxed);
}

/// Which row format u16 emissions land in. kDense is the fixed-stride
/// union-of-lanes row (8-byte key + all B u16 counts — 24 bytes at
/// B = 8) — kept bit-identical as the differential oracle. kSparse is a
/// variable-length record: 8-byte key + occupancy byte + only the
/// occupied u16 counts (~11-12 bytes at the Fig 15 workload's ~0.15
/// lane density), cutting the emission and seal byte traffic that made
/// B = 8 accumulate structurally ~1.2x of 8 x B = 1. The format is a
/// pure performance knob: zero lanes carry no information, seal-time
/// run sums are exact u64 adds either way, and the sparse seal decodes
/// into the same fixed-stride sorted rows the dense seal produces, so
/// sealed tables are bit-identical (the parity tests assert it).
///
/// kAuto is adaptive: a sharded phase starts on dense rows (records
/// pay an extra seal-time decode pass that loses on cache-resident
/// tables) and flips to sparse records once it crosses
/// sparse_flip_rows() — re-encoding the rows emitted so far, in order,
/// so the sealed result stays bit-identical — which confines the
/// format to the large bandwidth-bound phases where its byte saving
/// wins. CCBT_EMIT=dense|sparse pins a whole process to one format
/// unconditionally.
enum class EmitFormat : std::uint8_t { kAuto = 0, kDense = 1, kSparse = 2 };

namespace detail_emit {

inline EmitFormat emit_from_env() {
  const char* env = std::getenv("CCBT_EMIT");
  if (env != nullptr) {
    if (std::strcmp(env, "dense") == 0) return EmitFormat::kDense;
    if (std::strcmp(env, "sparse") == 0) return EmitFormat::kSparse;
  }
  return EmitFormat::kAuto;
}

inline std::atomic<EmitFormat>& emit_state() {
  static std::atomic<EmitFormat> state{emit_from_env()};
  return state;
}

}  // namespace detail_emit

inline EmitFormat emit_format() {
  return detail_emit::emit_state().load(std::memory_order_relaxed);
}

/// Override the emission-format selection process-wide (tests; kAuto
/// restores the default policy).
inline void set_emit_format(EmitFormat f) {
  detail_emit::emit_state().store(f, std::memory_order_relaxed);
}

namespace detail_emit {

/// Default row count at which a kAuto sharded phase flips from dense
/// rows to sparse records. Chosen from bench_accumulate: the sparse
/// format's seal (per-shard key/offset radix over cache-resident shard
/// buffers) and its thinner emission stream break even around ~1M rows
/// (-4% total wall) and win clearly beyond (-19% at 4M); below the
/// crossover the record decode pass is pure overhead.
inline constexpr std::size_t kDefaultSparseFlipRows = std::size_t{1} << 20;

inline std::atomic<std::size_t>& flip_state() {
  static std::atomic<std::size_t> state{kDefaultSparseFlipRows};
  return state;
}

}  // namespace detail_emit

inline std::size_t sparse_flip_rows() {
  return detail_emit::flip_state().load(std::memory_order_relaxed);
}

/// Override the kAuto dense-to-sparse flip threshold process-wide
/// (tests force tiny tables across the flip; 0 flips immediately).
inline void set_sparse_flip_rows(std::size_t rows) {
  detail_emit::flip_state().store(rows, std::memory_order_relaxed);
}

/// Accumulation-stage telemetry, collected per phase from the reduced
/// sink before it seals (ExecStats::accum). The fold counters say how
/// much sort input the combining caches removed; the occupancy pair
/// says how evenly the shard cut spread the key space.
struct AccumTelemetry {
  std::uint64_t phases = 0;           // accumulation phases observed
  std::uint64_t sharded_phases = 0;   // phases run on the sharded engine
  std::uint64_t sparse_phases = 0;    // phases emitting sparse records
  std::uint64_t rows = 0;             // rows handed to the seal
  std::uint64_t emit_bytes = 0;       // bytes those rows occupy pre-seal
  std::uint64_t combine_folds = 0;    // emissions folded into a live row
  std::uint64_t frontier_folds = 0;   // same-key bursts folded pre-emission
  std::uint64_t run_emits = 0;        // emissions via the run-bulk API
  std::uint64_t shards_occupied = 0;  // shards holding >= 1 row
  std::uint64_t shard_slots = 0;      // shards available (sharded phases)
  void add(const AccumTelemetry& o) {
    phases += o.phases;
    sharded_phases += o.sharded_phases;
    sparse_phases += o.sparse_phases;
    rows += o.rows;
    emit_bytes += o.emit_bytes;
    combine_folds += o.combine_folds;
    frontier_folds += o.frontier_folds;
    run_emits += o.run_emits;
    shards_occupied += o.shards_occupied;
    shard_slots += o.shard_slots;
  }
  double shard_occupancy() const {
    return shard_slots == 0 ? 0.0
                            : static_cast<double>(shards_occupied) /
                                  static_cast<double>(shard_slots);
  }
  double bytes_per_row() const {
    return rows == 0 ? 0.0
                     : static_cast<double>(emit_bytes) /
                           static_cast<double>(rows);
  }
};

/// One narrow flat row: packed key + all B lane counts at width W.
template <int B, typename W>
struct PackedFlatRowT {
  std::uint64_t k = 0;
  std::array<W, B> c{};
};

/// What one run-merged scan of sorted narrow rows observed (the seal's
/// layout-chooser inputs). Computed over equal-key runs, so it describes
/// the table *after* dedup even when called before it.
struct FlatStats {
  std::uint64_t rows = 0;            // distinct keys
  std::uint64_t lanes_occupied = 0;  // nonzero lanes over merged rows
  Count max_count = 0;               // largest merged lane count
};

template <int B>
class FlatRowsT {
 public:
  using Vec = typename LaneOps<B>::Vec;
  using Entry = TableEntryT<B>;

  /// Active row representation; ordered so std::max picks the wider one.
  enum class Mode : std::uint8_t { kU16 = 0, kU32 = 1, kWide = 2 };

  using Row16 = PackedFlatRowT<B, std::uint16_t>;

  /// Direct-mapped combining cache slot: packed key -> row index of its
  /// last appearance. A slot is only ever a hint — it is checked against
  /// the row it points at before any fold, so a stale, colliding or
  /// zero-filled slot is at worst a missed merge, never a wrong one.
  struct CombineSlot {
    std::uint64_t k = ~std::uint64_t{0};
    std::uint32_t idx = 0;
  };

  FlatRowsT() = default;

  std::size_t size() const {
    if (sharded_) return shard_rows_;
    if (sparse_) return sp_rows_;
    switch (mode_) {
      case Mode::kU16: return n16_.size();
      case Mode::kU32: return n32_.size();
      case Mode::kWide: break;
    }
    return wide_.size();
  }
  bool empty() const { return size() == 0; }
  Mode mode() const { return mode_; }
  bool narrow() const { return mode_ != Mode::kWide; }

  /// Raw u16 rows (valid only while mode() == kU16). The extend fast
  /// path iterates these directly so sealed u16 tables stream into u16
  /// sinks without a dense round trip.
  const std::vector<PackedFlatRowT<B, std::uint16_t>>& rows_u16() const {
    return n16_;
  }

  /// Raw u32 rows (valid only while mode() == kU32) — the packed merge
  /// joins mixed-width sealed tables without a dense expansion.
  const std::vector<PackedFlatRowT<B, std::uint32_t>>& rows_u32() const {
    return n32_;
  }

  /// Pre-size the current row buffer (a lower-bound emission estimate
  /// from the producer saves the doubling-growth copies).
  void reserve_hint(std::size_t n) {
    if (sharded_) {
      // Spread the estimate across the shards; skip when the per-shard
      // share is too small to beat the doubling growth anyway.
      const std::size_t per = n >> kShardBits;
      if (per >= 64) {
        if (sparse_) {
          for (auto& buf : shard_sp16_) buf.reserve(per * kSparseRowGuess);
        } else {
          for (auto& shard : shard16_) shard.reserve(per);
        }
      }
      return;
    }
    if (sparse_) {
      sp16_.reserve(n * kSparseRowGuess);
      return;
    }
    switch (mode_) {
      case Mode::kU16: n16_.reserve(n); return;
      case Mode::kU32: n32_.reserve(n); return;
      case Mode::kWide: break;
    }
    wide_.reserve(n);
  }

  /// Payload width of the narrow modes (kU64 when wide).
  PayloadWidth width() const {
    switch (mode_) {
      case Mode::kU16: return PayloadWidth::kU16;
      case Mode::kU32: return PayloadWidth::kU32;
      case Mode::kWide: break;
    }
    return PayloadWidth::kU64;
  }

  /// Bytes the rows occupy in the current representation.
  std::uint64_t byte_size() const {
    if (sparse_) {
      if (!sharded_) return sp16_.size();
      std::uint64_t b = 0;
      for (const auto& buf : shard_sp16_) b += buf.size();
      return b;
    }
    if (sharded_) return shard_rows_ * sizeof(Row16);
    switch (mode_) {
      case Mode::kU16: return n16_.size() * sizeof(n16_[0]);
      case Mode::kU32: return n32_.size() * sizeof(n32_[0]);
      case Mode::kWide: break;
    }
    return wide_.size() * sizeof(Entry);
  }

  /// Append one emitted row. Escalates the buffer width when a count
  /// outgrows it; migrates the whole buffer to wide rows on the first
  /// unpackable key or u64-range count.
  ///
  /// Duplicate keys re-emitted while still hot in the combining cache
  /// (joins emit them in bursts: sibling child entries collapsing to one
  /// signature, entries of one frontier bucket sharing an anchor) are
  /// summed into their existing row instead of growing the sort input —
  /// the measured duplicate factor of the Fig 15 workload is 1.3-1.8x.
  /// Sums are exact u64 adds, so seal-time counts are unchanged.
  void append(const TableKey& key, const Vec& cnt) {
    if (!prepared_) [[unlikely]] prepare_emit(AccumEngine::kAuto, 0);
    if (mode_ != Mode::kWide && packable_key(key)) {
      // OR of the lanes bounds the max: any count above the width has a
      // high bit the OR keeps.
      Count hi = 0;
      for (int l = 0; l < B; ++l) hi |= LaneOps<B>::lane(cnt, l);
      const std::uint64_t k = pack_key(key);
      if (sharded_ && !sparse_ && shard_rows_ >= sparse_flip_at_)
        [[unlikely]] {
        flip_shards_to_sparse();
      }
      if (sparse_) {
        if (hi <= 0xFFFFull) {
          sparse_emit_vec(k, cnt, ~LaneMask{0});
          return;
        }
        unsparse();  // oversized count: continue on the dense paths below
      }
      if (sharded_) {
        if (hi <= 0xFFFFull) {
          shard_emit_vec(k, cnt, ~LaneMask{0});
          return;
        }
        unshard();  // oversized count: continue on the probe path below
      }
      CombineSlot& slot = combine_[combine_hash(k)];
      if (mode_ == Mode::kU16) {
        if (slot.k == k && slot.idx < n16_.size() && n16_[slot.idx].k == k &&
            combine(n16_[slot.idx], cnt, std::uint64_t{0xFFFF})) {
          return;
        }
        if (hi <= 0xFFFFull) {
          slot.k = k;
          slot.idx = static_cast<std::uint32_t>(n16_.size());
          push(n16_, k, cnt);
          return;
        }
        if (hi <= 0xFFFFFFFFull) to_u32();
      }
      if (mode_ == Mode::kU32) {
        if (slot.k == k && slot.idx < n32_.size() && n32_[slot.idx].k == k &&
            combine(n32_[slot.idx], cnt, std::uint64_t{0xFFFFFFFF})) {
          return;
        }
        if (hi <= 0xFFFFFFFFull) {
          slot.k = k;
          slot.idx = static_cast<std::uint32_t>(n32_.size());
          push(n32_, k, cnt);
          return;
        }
      }
    }
    to_wide();
    wide_.push_back({key, cnt});
  }

  /// Append one emission that is `src` restricted to the lanes of `m`
  /// (zeros elsewhere), without materializing the dense masked vector —
  /// the extend hot loop emits several masked subsets of one source row.
  /// `src_hi` is the OR of ALL of src's lanes, computed once per source
  /// row by the caller: when it fits the current width every masked
  /// subset does too and the per-emission reduce is skipped; otherwise
  /// the exact masked OR decides (so one oversized-but-masked-off lane
  /// never escalates the buffer).
  void append_masked(const TableKey& key, const Vec& src, LaneMask m,
                     Count src_hi) {
    if (!prepared_) [[unlikely]] prepare_emit(AccumEngine::kAuto, 0);
    if (mode_ != Mode::kWide && packable_key(key)) {
      Count hi = src_hi;
      if ((mode_ == Mode::kU16 && hi > 0xFFFFull) ||
          (mode_ == Mode::kU32 && hi > 0xFFFFFFFFull)) {
        hi = masked_or(src, m);
      }
      const std::uint64_t k = pack_key(key);
      if (sharded_ && !sparse_ && shard_rows_ >= sparse_flip_at_)
        [[unlikely]] {
        flip_shards_to_sparse();
      }
      if (sparse_) {
        if (hi <= 0xFFFFull) {
          sparse_emit_vec(k, src, m);
          return;
        }
        unsparse();  // oversized count: continue on the dense paths below
      }
      if (sharded_) {
        if (hi <= 0xFFFFull) {
          shard_emit_vec(k, src, m);
          return;
        }
        unshard();  // oversized count: continue on the probe path below
      }
      CombineSlot& slot = combine_[combine_hash(k)];
      if (mode_ == Mode::kU16) {
        if (slot.k == k && slot.idx < n16_.size() && n16_[slot.idx].k == k &&
            combine_masked(n16_[slot.idx], src, m, std::uint64_t{0xFFFF})) {
          return;
        }
        if (hi <= 0xFFFFull) {
          slot.k = k;
          slot.idx = static_cast<std::uint32_t>(n16_.size());
          push_masked(n16_, k, src, m);
          return;
        }
        if (hi <= 0xFFFFFFFFull) to_u32();
      }
      if (mode_ == Mode::kU32) {
        if (slot.k == k && slot.idx < n32_.size() && n32_[slot.idx].k == k &&
            combine_masked(n32_[slot.idx], src, m,
                           std::uint64_t{0xFFFFFFFF})) {
          return;
        }
        if (hi <= 0xFFFFFFFFull) {
          slot.k = k;
          slot.idx = static_cast<std::uint32_t>(n32_.size());
          push_masked(n32_, k, src, m);
          return;
        }
      }
    }
    to_wide();
    wide_.push_back({key, LaneOps<B>::masked(src, m)});
  }

  /// Append a masked copy of a u16 source row under a caller-packed key
  /// — the all-16-bit extend hot path. A masked subset of u16 counts
  /// always fits u16, so there is no width decision at all while the
  /// sink is still in u16 mode; only a combining-cache sum can overflow,
  /// and that falls through to a duplicate push (merged at seal).
  void append_masked_u16(std::uint64_t k,
                         const PackedFlatRowT<B, std::uint16_t>& src,
                         LaneMask m) {
    if (mode_ == Mode::kU16) [[likely]] {
      if (!prepared_) [[unlikely]] prepare_emit(AccumEngine::kAuto, 0);
      if (sharded_ && !sparse_ && shard_rows_ >= sparse_flip_at_)
        [[unlikely]] {
        flip_shards_to_sparse();
      }
      if (sparse_) {
        if (sharded_) {
          const std::size_t s = shard_of(k);
          if (sparse_fold_or_push(shard_sp16_[s], shard_slot(s, k), k, src,
                                  m)) {
            ++shard_sp_rows_[s];
            ++shard_rows_;
          }
          return;
        }
        if (sparse_fold_or_push(sp16_, combine_[combine_hash(k)], k, src,
                                m)) {
          ++sp_rows_;
        }
        return;
      }
      if (sharded_) {
        const std::size_t s = shard_of(k);
        fold_or_push(shard16_[s], shard_slot(s, k), k, src, m);
        return;
      }
      CombineSlot& slot = combine_[combine_hash(k)];
      if (slot.k == k && slot.idx < n16_.size() && n16_[slot.idx].k == k) {
        std::array<std::uint32_t, B> sum;
        std::uint32_t hi = 0;
        CCBT_SIMD
        for (int l = 0; l < B; ++l) {
          sum[l] = static_cast<std::uint32_t>(n16_[slot.idx].c[l]) +
                   (((m >> l) & 1) != 0 ? src.c[l] : std::uint16_t{0});
          hi |= sum[l];
        }
        if (hi <= 0xFFFFu) {
          CCBT_SIMD
          for (int l = 0; l < B; ++l) {
            n16_[slot.idx].c[l] = static_cast<std::uint16_t>(sum[l]);
          }
          return;
        }
      }
      slot.k = k;
      slot.idx = static_cast<std::uint32_t>(n16_.size());
      PackedFlatRowT<B, std::uint16_t> r;
      r.k = k;
      CCBT_SIMD
      for (int l = 0; l < B; ++l) {
        r.c[l] = ((m >> l) & 1) != 0 ? src.c[l] : std::uint16_t{0};
      }
      n16_.push_back(r);
      return;
    }
    // Escalated mid-phase by interleaved generic appends: expand the
    // source row and take the generic path.
    append_masked(unpack_key(k), expand_counts(src), m,
                  std::uint64_t{0xFFFF});
  }

  // --------------------------------------------- accumulation phases

  /// Bind this sink to an accumulation engine for the coming phase.
  /// accumulate_flat calls this once per sink before its emission loop,
  /// which is what lets the per-row appends skip the old lazy
  /// combining-cache resize; a stray direct append still self-prepares
  /// through an [[unlikely]] guard, landing on the probe engine.
  ///
  /// `want` == kAuto defers to the process-wide pin (CCBT_ACCUM /
  /// set_accum_engine), which itself defaults to the sharded engine.
  /// The sharded engine needs the producer's vertex domain to place the
  /// shard cut over v1 (and a fresh u16 sink to shard into); without
  /// either it degrades to the probe engine. Idempotent until clear().
  void prepare_emit(AccumEngine want, VertexId domain) {
    if (prepared_) return;
    prepared_ = true;
    if (sharded_) {
      // Still holding sharded rows from a phase whose caches were
      // dropped: keep the cut (and the row format), just stand the
      // shard caches back up.
      engine_ = AccumEngine::kSharded;
      if (shard_combine_.empty()) {
        shard_combine_.assign(kShardCount << kShardCombineBits,
                              CombineSlot{});
      }
      return;
    }
    if (sparse_) {
      // Un-sharded sparse rows from a cache-dropped phase: keep the
      // format, stand the probe cache back up.
      if (combine_.empty()) combine_.resize(kCombineSlots);
      return;
    }
    AccumEngine eng = want != AccumEngine::kAuto ? want : accum_engine();
    if (eng == AccumEngine::kAuto) eng = AccumEngine::kSharded;
    // Sparse records exist only in u16 mode, and only a fresh sink can
    // adopt the format (rows already emitted dense stay dense for the
    // phase — absorb handles the mix). kSparse pins the format from
    // the first row; kAuto arms the mid-phase dense-to-sparse flip on
    // the sharded engine instead, so small phases never pay the record
    // decode.
    const EmitFormat fmt = emit_format();
    const bool sparse =
        fmt == EmitFormat::kSparse && mode_ == Mode::kU16 && empty();
    if (eng == AccumEngine::kSharded && mode_ == Mode::kU16 && empty() &&
        domain > 0 && domain < kPacked28NoVertex) {
      engine_ = AccumEngine::kSharded;
      sharded_ = true;
      // Cut the top kShardBits of the domain's occupied bit range, so
      // the shards split any domain evenly and the shard index is
      // monotone in v1 (shard concatenation = ascending-v1 blocks).
      shard_shift_ = std::max(
          0, static_cast<int>(std::bit_width(
                 static_cast<std::uint32_t>(domain - 1))) -
                 kShardBits);
      if (sparse) {
        sparse_ = true;
        shard_sp16_.resize(kShardCount);
        shard_sp_rows_.assign(kShardCount, 0);
      } else {
        shard16_.resize(kShardCount);
        if (fmt == EmitFormat::kAuto) sparse_flip_at_ = sparse_flip_rows();
      }
      shard_combine_.assign(kShardCount << kShardCombineBits,
                            CombineSlot{});
      return;
    }
    engine_ = AccumEngine::kProbe;
    sparse_ = sparse;
    if (combine_.empty()) combine_.resize(kCombineSlots);
  }

  /// Engine this sink was prepared with (kProbe until prepared).
  AccumEngine engine() const { return engine_; }

  /// True while emissions are landing in v1-cut shards (u16 only; any
  /// escalation or wide absorb flattens and clears this).
  bool sharded() const { return sharded_; }

  /// True while emissions are landing as variable-length sparse records
  /// (u16 only; any escalation or mixed absorb decodes and clears this).
  /// The extend loop keys its frontier-side dedup on this.
  bool sparse() const { return sparse_; }

  /// Credit same-key folds the producer performed before emitting
  /// (frontier-side dedup in the extend loop).
  void note_frontier_folds(std::uint64_t n) { frontier_folds_ += n; }

  /// A run handle for the run-bulk emission path: one shard's storage
  /// (fixed-stride row vector, or the sparse record buffer plus its row
  /// counter) and its combining-cache slice, resolved once for a whole
  /// same-v1 emission run (the extend loop's per-neighbor burst) so the
  /// per-row cost is one L1-resident probe and a push — no mode test,
  /// no shard select, no prepare guard. Invalid when the sink is not
  /// sharded; any generic append that escalates the sink invalidates
  /// outstanding handles, so callers re-acquire after one.
  struct RunU16 {
    std::vector<Row16>* rows = nullptr;
    std::vector<std::uint8_t>* buf = nullptr;
    CombineSlot* slots = nullptr;
    std::uint32_t* sp_rows = nullptr;
    bool valid() const { return rows != nullptr || buf != nullptr; }
  };

  /// Begin a same-v1 run of up to `hint` emissions. Reserves once for
  /// the whole run, keeping geometric growth (never a creeping
  /// exact-fit reserve that would degrade pushes to O(n^2) copying).
  RunU16 run_u16(VertexId v1, std::size_t hint) {
    if (!prepared_) [[unlikely]] prepare_emit(AccumEngine::kAuto, 0);
    if (!sharded_) return {};
    if (!sparse_ && shard_rows_ >= sparse_flip_at_) [[unlikely]] {
      flip_shards_to_sparse();
    }
    const std::size_t s =
        std::min<std::size_t>(std::size_t{v1} >> shard_shift_,
                              kShardCount - 1);
    CombineSlot* slots = shard_combine_.data() + (s << kShardCombineBits);
    if (sparse_) {
      auto& buf = shard_sp16_[s];
      const std::size_t want = hint * kSparseRowGuess;
      if (buf.capacity() - buf.size() < want) {
        buf.reserve(std::max(buf.size() + want, 2 * buf.capacity()));
      }
      return {nullptr, &buf, slots, &shard_sp_rows_[s]};
    }
    auto& rows = shard16_[s];
    if (rows.capacity() - rows.size() < hint) {
      rows.reserve(std::max(rows.size() + hint, 2 * rows.capacity()));
    }
    return {&rows, nullptr, slots, nullptr};
  }

  /// Emit one masked u16 row through a valid run handle. All emissions
  /// of the run must share the v1 the handle was acquired for.
  void run_append_u16(const RunU16& run, std::uint64_t k, const Row16& src,
                      LaneMask m) {
    ++run_emits_;
    if (run.buf != nullptr) {
      if (sparse_fold_or_push(*run.buf, run.slots[shard_combine_hash(k)], k,
                              src, m)) {
        ++*run.sp_rows;
        ++shard_rows_;
      }
      return;
    }
    fold_or_push(*run.rows, run.slots[shard_combine_hash(k)], k, src, m);
  }

  /// Prefetch the combining-cache slot `k` will probe. The probe-engine
  /// extend loop queues a small tile of emissions and prefetches each
  /// slot at enqueue time, so the dependent slot load in
  /// append_masked_u16 is in flight a tile ahead of its use.
  void prefetch_combine(std::uint64_t k) const {
    if (!combine_.empty()) {
      __builtin_prefetch(&combine_[combine_hash(k)], 1, 1);
    }
  }

  /// Flatten mid-accumulation sharded and/or sparse storage in place
  /// (storage order, no sort, rows stay unsealed) so the indexed row
  /// accessors work — the per-row join primitives consume some tables
  /// without ever sealing them (variable-stride sparse records carry no
  /// row index at all until decoded). Drops the emission caches; the
  /// next append re-prepares the sink. No-op on plain flat storage.
  void ensure_flat() {
    if (!sparse_ && !sharded_) return;
    unsparse();
    flatten_shards();
    prepared_ = false;
  }

  /// Fold this sink's accumulation counters (and shard occupancy) into
  /// `t` — once per phase, after the per-thread reduction and before
  /// the seal flattens the shards.
  void collect_telemetry(AccumTelemetry& t) const {
    ++t.phases;
    t.rows += size();
    t.emit_bytes += byte_size();
    t.combine_folds += combine_folds_;
    t.frontier_folds += frontier_folds_;
    t.run_emits += run_emits_;
    if (sparse_) ++t.sparse_phases;
    if (sharded_) {
      ++t.sharded_phases;
      t.shard_slots += kShardCount;
      if (sparse_) {
        for (const auto& buf : shard_sp16_) {
          t.shards_occupied += static_cast<std::uint64_t>(!buf.empty());
        }
      } else {
        for (const auto& shard : shard16_) {
          t.shards_occupied += static_cast<std::uint64_t>(!shard.empty());
        }
      }
    }
  }

  /// Visit every row as a dense entry, in storage order. Works in every
  /// representation including mid-accumulation sharded or sparse
  /// storage, where the indexed accessors below are unavailable (an
  /// unsealed root table's lane totals read through this).
  template <typename F>
  void for_each_dense(F&& f) const {
    Entry tmp;
    if (sparse_) {
      auto visit = [&](const std::vector<std::uint8_t>& buf) {
        sparse_scan(buf, [&](std::uint64_t k, const Row16& r) {
          tmp.key = unpack_key(k);
          tmp.cnt = expand_counts(r);
          f(tmp);
        });
      };
      if (sharded_) {
        for (const auto& buf : shard_sp16_) visit(buf);
      } else {
        visit(sp16_);
      }
      return;
    }
    if (sharded_) {
      for (const auto& shard : shard16_) {
        for (const Row16& r : shard) {
          tmp.key = unpack_key(r.k);
          tmp.cnt = expand_counts(r);
          f(tmp);
        }
      }
      return;
    }
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) {
      row(i, tmp);
      f(tmp);
    }
  }

  /// Largest value of the packed key's `slot` field over all rows,
  /// unpacked (the all-ones field reads back as kNoVertex) — domain
  /// detection; shard-aware, unlike key_at.
  VertexId max_slot_value(int slot) const {
    VertexId mx = 0;
    auto fold = [&](std::uint64_t k) {
      const std::uint32_t b = slot_bits(k, slot);
      mx = std::max(mx, b == kPacked28NoVertex ? kNoVertex : b);
    };
    if (sparse_) {
      auto visit = [&](const std::vector<std::uint8_t>& buf) {
        sparse_scan_keys(buf, fold);
      };
      if (sharded_) {
        for (const auto& buf : shard_sp16_) visit(buf);
      } else {
        visit(sp16_);
      }
      return mx;
    }
    if (sharded_) {
      for (const auto& shard : shard16_) {
        for (const Row16& r : shard) fold(r.k);
      }
      return mx;
    }
    switch (mode_) {
      case Mode::kU16:
        for (const Row16& r : n16_) fold(r.k);
        return mx;
      case Mode::kU32:
        for (const auto& r : n32_) fold(r.k);
        return mx;
      case Mode::kWide: break;
    }
    for (const Entry& e : wide_) mx = std::max(mx, e.key.v[slot]);
    return mx;
  }

  TableKey key_at(std::size_t i) const {
    switch (mode_) {
      case Mode::kU16: return unpack_key(n16_[i].k);
      case Mode::kU32: return unpack_key(n32_[i].k);
      case Mode::kWide: break;
    }
    return wide_[i].key;
  }

  Vec expand(std::size_t i) const {
    switch (mode_) {
      case Mode::kU16: return expand_counts(n16_[i]);
      case Mode::kU32: return expand_counts(n32_[i]);
      case Mode::kWide: break;
    }
    return wide_[i].cnt;
  }

  /// Row i as a dense entry, written into `out`.
  void row(std::size_t i, Entry& out) const {
    switch (mode_) {
      case Mode::kU16:
        out.key = unpack_key(n16_[i].k);
        out.cnt = expand_counts(n16_[i]);
        return;
      case Mode::kU32:
        out.key = unpack_key(n32_[i].k);
        out.cnt = expand_counts(n32_[i]);
        return;
      case Mode::kWide: break;
    }
    out = wide_[i];
  }

  /// Merge another sink's rows (the per-thread reduction): same-cut
  /// sharded sinks concatenate shard-wise (keeping the sharded seal);
  /// everything else is raised to the wider flat representation, then
  /// concatenated. Accumulation counters always carry over.
  void absorb(FlatRowsT&& o) {
    combine_folds_ += o.combine_folds_;
    run_emits_ += o.run_emits_;
    frontier_folds_ += o.frontier_folds_;
    o.combine_folds_ = 0;
    o.run_emits_ = 0;
    o.frontier_folds_ = 0;
    if (o.empty()) return;
    if (empty()) {
      const std::uint64_t folds = combine_folds_;
      const std::uint64_t runs = run_emits_;
      const std::uint64_t front = frontier_folds_;
      *this = std::move(o);
      combine_folds_ = folds;
      run_emits_ = runs;
      frontier_folds_ = front;
      return;
    }
    if (sparse_ && o.sparse_ && sharded_ == o.sharded_ &&
        (!sharded_ || shard_shift_ == o.shard_shift_)) {
      // Same-format sparse sinks concatenate byte-wise (per shard when
      // sharded); this sink's cache offsets stay valid because the
      // other's records land strictly after them.
      if (sharded_) {
        for (std::size_t s = 0; s < kShardCount; ++s) {
          auto& dst = shard_sp16_[s];
          auto& src = o.shard_sp16_[s];
          dst.insert(dst.end(), src.begin(), src.end());
          shard_sp_rows_[s] += o.shard_sp_rows_[s];
        }
        shard_rows_ += o.shard_rows_;
      } else {
        sp16_.insert(sp16_.end(), o.sp16_.begin(), o.sp16_.end());
        sp_rows_ += o.sp_rows_;
      }
      o.clear();
      return;
    }
    if (sparse_) unsparse();
    if (o.sparse_) o.unsparse();
    if (sharded_ && o.sharded_ && shard_shift_ == o.shard_shift_) {
      for (std::size_t s = 0; s < kShardCount; ++s) {
        auto& dst = shard16_[s];
        auto& src = o.shard16_[s];
        dst.insert(dst.end(), src.begin(), src.end());
      }
      shard_rows_ += o.shard_rows_;
      o.clear();
      return;
    }
    if (sharded_) unshard();
    if (o.sharded_) o.unshard();
    const Mode m = std::max(mode_, o.mode_);
    raise_to(m);
    o.raise_to(m);
    switch (m) {
      case Mode::kU16:
        n16_.insert(n16_.end(), o.n16_.begin(), o.n16_.end());
        break;
      case Mode::kU32:
        n32_.insert(n32_.end(), o.n32_.begin(), o.n32_.end());
        break;
      case Mode::kWide:
        wide_.insert(wide_.end(), std::make_move_iterator(o.wide_.begin()),
                     std::make_move_iterator(o.wide_.end()));
        break;
    }
    o.clear();
  }

  /// Convert to dense wide rows (in current order) and hand them over.
  std::vector<Entry> take_wide() {
    to_wide();
    std::vector<Entry> out = std::move(wide_);
    clear();
    return out;
  }

  // ------------------------------------------------------------- sealing

  /// Sort the narrow rows into the dense seal's order for `slot` (the
  /// packed key's grouping field first, then the raw packed key — the
  /// same row order the dense seal's comparators produce). Two engines:
  /// an LSD radix sort over the slot-permuted packed key (the default
  /// once the row count clears its setup cost) and the original stable
  /// counting partition + per-bucket comparison sort; see
  /// set_seal_sort_algo. Returns false (rows untouched) when a slot
  /// value falls outside [0, domain) — including kNoVertex, whose packed
  /// pattern is the all-ones field — or when the rows are wide; the
  /// caller falls back to the dense path. A sharded sink always leaves
  /// this flattened: the slot-1 seal sorts shard by shard (the shard
  /// blocks are already ascending-v1, so concatenating the per-shard
  /// sorts IS the global order and the radix passes above shard_shift_
  /// never run); any other slot flattens first and sorts globally.
  bool sort_by_slot(int slot, VertexId domain) {
    drop_combine();
    if (sparse_) return sort_sparse_by_slot(slot, domain);
    if (sharded_) {
      if (slot == 1) return sort_sharded_by_v1(domain);
      flatten_shards();
    }
    switch (mode_) {
      case Mode::kU16: return sort_dispatch(n16_, slot, domain);
      case Mode::kU32: return sort_dispatch(n32_, slot, domain);
      case Mode::kWide: break;
    }
    return false;
  }

  /// Reorder rows [lo, hi) by DESCENDING rank of the packed key's slot-0
  /// vertex (ranks indexed by vertex id, injective), breaking the full-key
  /// order inside the range — ProjTableT::rank_partition_buckets uses this
  /// on already-deduped buckets so anchor-rank probes can stop at a
  /// partition point. No-op for wide rows.
  void sort_range_by_rank_desc(std::size_t lo, std::size_t hi,
                               std::span<const std::uint32_t> ranks) {
    auto by_rank = [&](auto& rows) {
      std::sort(rows.begin() + static_cast<std::ptrdiff_t>(lo),
                rows.begin() + static_cast<std::ptrdiff_t>(hi),
                [ranks](const auto& a, const auto& b) {
                  return ranks[a.k >> 36] > ranks[b.k >> 36];
                });
    };
    switch (mode_) {
      case Mode::kU16: by_rank(n16_); return;
      case Mode::kU32: by_rank(n32_); return;
      case Mode::kWide: break;
    }
  }

  /// Run-merged stats over sorted rows (each equal-key run counted once,
  /// with its lane sums). Precondition: sorted by full key.
  FlatStats scan() const {
    switch (mode_) {
      case Mode::kU16: return scan_impl(n16_);
      case Mode::kU32: return scan_impl(n32_);
      case Mode::kWide: break;
    }
    return scan_wide();
  }

  /// Sum runs of equal keys in place (after sort_by_slot). Run sums are
  /// 64-bit, so merged counts match the dense merge bit for bit; the
  /// buffer escalates to the width the merged maximum needs first (wide
  /// in the u64 case — check narrow() afterwards). Returns the scan the
  /// escalation decision was made from.
  FlatStats merge_duplicates() {
    drop_combine();
    const FlatStats st = scan();
    const PayloadWidth want = choose_payload_width(st.max_count);
    if (mode_ == Mode::kU16 && want != PayloadWidth::kU16) {
      if (want == PayloadWidth::kU32) {
        to_u32();
      } else {
        to_wide();
      }
    } else if (mode_ == Mode::kU32 && want == PayloadWidth::kU64) {
      to_wide();
    }
    switch (mode_) {
      case Mode::kU16: merge_impl(n16_); return st;
      case Mode::kU32: merge_impl(n32_); return st;
      case Mode::kWide: break;
    }
    merge_wide();
    return st;
  }

  void clear() {
    n16_.clear();
    n16_.shrink_to_fit();
    n32_.clear();
    n32_.shrink_to_fit();
    wide_.clear();
    wide_.shrink_to_fit();
    shard16_.clear();
    shard16_.shrink_to_fit();
    sp16_.clear();
    sp16_.shrink_to_fit();
    shard_sp16_.clear();
    shard_sp16_.shrink_to_fit();
    shard_sp_rows_.clear();
    shard_sp_rows_.shrink_to_fit();
    sp_rows_ = 0;
    sparse_ = false;
    sparse_flip_at_ = kNoSparseFlip;
    shard_rows_ = 0;
    sharded_ = false;
    shard_shift_ = 0;
    drop_combine();
    engine_ = AccumEngine::kProbe;
    combine_folds_ = 0;
    run_emits_ = 0;
    frontier_folds_ = 0;
    mode_ = Mode::kU16;
  }

  /// Release the combining caches (sealed tables must not carry them).
  /// Also un-prepares the sink: the next phase re-binds an engine.
  void drop_combine() {
    combine_.clear();
    combine_.shrink_to_fit();
    shard_combine_.clear();
    shard_combine_.shrink_to_fit();
    prepared_ = false;
  }

 private:
  // Global combining cache: 32K slots (384 KiB) — bigger than the
  // emission bursts that produce duplicates, small enough to stay
  // L2-resident. Dropped at seal time.
  static constexpr int kCombineBits = 15;
  static constexpr std::size_t kCombineSlots = std::size_t{1}
                                               << kCombineBits;

  static std::size_t combine_hash(std::uint64_t k) {
    return (k * 0x9E3779B97F4A7C15ull) >> (64 - kCombineBits);
  }

  // Sharded engine: 64 shards cut over the packed v1 field, each with
  // its own 512-slot combining-cache slice (6 KiB — L1-resident for
  // the duration of a same-v1 burst; 64 x 6 KiB = the same 384 KiB
  // footprint as the global cache, but only one slice is hot at a
  // time). v1 is the cut because the extend loop emits per-neighbor
  // bursts that share v1 exactly, and slot-1 is the most common first
  // seal order.
  static constexpr int kShardBits = 6;
  static constexpr std::size_t kShardCount = std::size_t{1} << kShardBits;
  static constexpr int kShardCombineBits = 9;

  static std::size_t shard_combine_hash(std::uint64_t k) {
    return (k * 0x9E3779B97F4A7C15ull) >> (64 - kShardCombineBits);
  }

  std::size_t shard_of(std::uint64_t k) const {
    const std::uint32_t v1 =
        static_cast<std::uint32_t>(k >> 8) & kPacked28NoVertex;
    // Out-of-domain v1 (kNoVertex's all-ones field) clamps to the last
    // shard; the seal's validation rejects it there, exactly as the
    // global sort would.
    return std::min<std::size_t>(std::size_t{v1} >> shard_shift_,
                                 kShardCount - 1);
  }

  CombineSlot& shard_slot(std::size_t s, std::uint64_t k) {
    return shard_combine_[(s << kShardCombineBits) | shard_combine_hash(k)];
  }

  /// Shard-side fold-or-push of a masked u16 source row: sum into the
  /// slot-hinted row while it stays u16, else push a duplicate (merged
  /// at seal) and move the hint.
  void fold_or_push(std::vector<Row16>& rows, CombineSlot& slot,
                    std::uint64_t k, const Row16& src, LaneMask m) {
    if (slot.k == k && slot.idx < rows.size() && rows[slot.idx].k == k) {
      std::array<std::uint32_t, B> sum;
      std::uint32_t hi = 0;
      CCBT_SIMD
      for (int l = 0; l < B; ++l) {
        sum[l] = static_cast<std::uint32_t>(rows[slot.idx].c[l]) +
                 (((m >> l) & 1) != 0 ? src.c[l] : std::uint16_t{0});
        hi |= sum[l];
      }
      if (hi <= 0xFFFFu) {
        CCBT_SIMD
        for (int l = 0; l < B; ++l) {
          rows[slot.idx].c[l] = static_cast<std::uint16_t>(sum[l]);
        }
        ++combine_folds_;
        return;
      }
    }
    slot.k = k;
    slot.idx = static_cast<std::uint32_t>(rows.size());
    Row16 r;
    r.k = k;
    CCBT_SIMD
    for (int l = 0; l < B; ++l) {
      r.c[l] = ((m >> l) & 1) != 0 ? src.c[l] : std::uint16_t{0};
    }
    rows.push_back(r);
    ++shard_rows_;
  }

  /// Shard-side emission of a masked dense vector already known to fit
  /// u16 (the generic appends' sharded branch).
  void shard_emit_vec(std::uint64_t k, const Vec& src, LaneMask m) {
    const std::size_t s = shard_of(k);
    auto& rows = shard16_[s];
    CombineSlot& slot = shard_slot(s, k);
    if (slot.k == k && slot.idx < rows.size() && rows[slot.idx].k == k &&
        combine_masked(rows[slot.idx], src, m, std::uint64_t{0xFFFF})) {
      ++combine_folds_;
      return;
    }
    slot.k = k;
    slot.idx = static_cast<std::uint32_t>(rows.size());
    push_masked(rows, k, src, m);
    ++shard_rows_;
  }

  // ------------------------------------------- sparse emission records
  //
  // A sparse record is [u64 key][u8 occupancy][u16 per occupied lane],
  // 9 + 2*popcount(occ) bytes — ~11-12 at the Fig 15 workload's ~0.15
  // lane density vs the 8 + 2B fixed-stride row. Zero-valued lanes are
  // simply not stored (they contribute nothing to a seal-time run sum),
  // and an all-zero emission keeps its 9-byte key record so the set of
  // sealed keys matches the dense format exactly. Records exist only in
  // u16 mode; combining-cache slots hold byte offsets instead of row
  // indices while the format is active.

  static_assert(B <= 8, "sparse occupancy is a single byte");

  // Pre-reserve / size-hint guess, bytes per record.
  static constexpr std::size_t kSparseRowGuess = 12;

  static std::uint64_t load_u64(const std::uint8_t* p) {
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
  }
  static std::uint16_t load_u16(const std::uint8_t* p) {
    std::uint16_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
  }
  static void store_u64(std::uint8_t* p, std::uint64_t v) {
    std::memcpy(p, &v, sizeof(v));
  }
  static void store_u16(std::uint8_t* p, std::uint16_t v) {
    std::memcpy(p, &v, sizeof(v));
  }

  /// Visit every record of a sparse buffer as (key, decoded u16 row).
  template <typename F>
  static void sparse_scan(const std::vector<std::uint8_t>& buf, F&& f) {
    const std::uint8_t* p = buf.data();
    const std::uint8_t* const end = p + buf.size();
    Row16 r;
    while (p < end) {
      r.k = load_u64(p);
      const std::uint32_t occ = p[8];
      p += 9;
      r.c.fill(0);
      for (std::uint32_t b = occ; b != 0; b &= b - 1) {
        r.c[std::countr_zero(b)] = load_u16(p);
        p += 2;
      }
      f(r.k, r);
    }
  }

  /// Visit every record's key only (domain scans skip the counts).
  template <typename F>
  static void sparse_scan_keys(const std::vector<std::uint8_t>& buf,
                               F&& f) {
    const std::uint8_t* p = buf.data();
    const std::uint8_t* const end = p + buf.size();
    while (p < end) {
      f(load_u64(p));
      p += 9 + 2 * std::popcount(std::uint32_t{p[8]});
    }
  }

  /// Decode the record at byte offset `off` into a fixed-stride row.
  static void sparse_decode_at(const std::uint8_t* base, std::uint32_t off,
                               Row16& r) {
    const std::uint8_t* p = base + off;
    r.k = load_u64(p);
    const std::uint32_t occ = p[8];
    p += 9;
    r.c.fill(0);
    for (std::uint32_t b = occ; b != 0; b &= b - 1) {
      r.c[std::countr_zero(b)] = load_u16(p);
      p += 2;
    }
  }

  /// Append a new sparse record for the masked lanes of `src` and point
  /// the cache slot at it (invalidating the hint if the offset outgrows
  /// the slot's 32 bits — a missed fold, never a wrong one).
  /// Occupancy of the masked row: bit l set when lane l is live and
  /// nonzero — the byte every sparse record stores. Kept as a plain
  /// reduction the vectorizer handles; this runs once per emission on
  /// the sparse hot path.
  static std::uint32_t sparse_occ(const Row16& src, LaneMask m) {
    std::uint32_t occ = 0;
    for (int l = 0; l < B; ++l) {
      occ |= static_cast<std::uint32_t>(src.c[l] != 0) << l;
    }
    return occ & m;
  }

  void sparse_push(std::vector<std::uint8_t>& buf, CombineSlot& slot,
                   std::uint64_t k, const Row16& src, LaneMask m) {
    const std::uint32_t occ = sparse_occ(src, m);
    const std::size_t at = buf.size();
    buf.resize(at + 9 + 2 * std::popcount(occ));
    std::uint8_t* p = buf.data() + at;
    store_u64(p, k);
    p[8] = static_cast<std::uint8_t>(occ);
    p += 9;
    for (std::uint32_t b = occ; b != 0; b &= b - 1) {
      store_u16(p, src.c[std::countr_zero(b)]);
      p += 2;
    }
    if (at <= std::numeric_limits<std::uint32_t>::max()) [[likely]] {
      slot.k = k;
      slot.idx = static_cast<std::uint32_t>(at);
    } else {
      slot.k = ~std::uint64_t{0};
    }
  }

  /// Sparse fold-or-push: sum the masked lanes into the slot-hinted
  /// record when its occupancy covers them and every sum stays u16;
  /// otherwise push a duplicate record (merged at seal). Returns true
  /// when a new record was pushed (callers keep the row counters).
  bool sparse_fold_or_push(std::vector<std::uint8_t>& buf,
                           CombineSlot& slot, std::uint64_t k,
                           const Row16& src, LaneMask m) {
    if (slot.k == k && std::size_t{slot.idx} + 9 <= buf.size() &&
        load_u64(buf.data() + slot.idx) == k) {
      std::uint8_t* const rec = buf.data() + slot.idx;
      const std::uint32_t occ = rec[8];
      const std::uint32_t want = sparse_occ(src, m);
      if ((want & ~occ) == 0) {
        // All-or-nothing: compute every merged lane before writing any.
        std::uint8_t* const counts = rec + 9;
        std::array<std::uint32_t, 8> sum;
        std::array<std::uint8_t, 8> pos;
        int nl = 0;
        std::uint32_t hi = 0;
        for (std::uint32_t b = want; b != 0; b &= b - 1) {
          const int l = std::countr_zero(b);
          const int pi = std::popcount(occ & ((1u << l) - 1));
          const std::uint32_t s =
              load_u16(counts + 2 * pi) + std::uint32_t{src.c[l]};
          sum[nl] = s;
          pos[nl] = static_cast<std::uint8_t>(pi);
          ++nl;
          hi |= s;
        }
        if (hi <= 0xFFFFu) {
          for (int i = 0; i < nl; ++i) {
            store_u16(counts + 2 * pos[i],
                      static_cast<std::uint16_t>(sum[i]));
          }
          ++combine_folds_;
          return false;
        }
      }
    }
    sparse_push(buf, slot, k, src, m);
    return true;
  }

  /// Sparse emission of a masked dense vector already known to fit u16
  /// (the generic appends' sparse branch).
  void sparse_emit_vec(std::uint64_t k, const Vec& src, LaneMask m) {
    Row16 r;
    r.k = k;
    CCBT_SIMD
    for (int l = 0; l < B; ++l) {
      r.c[l] = static_cast<std::uint16_t>(
          ((m >> l) & 1) != 0 ? LaneOps<B>::lane(src, l) : Count{0});
    }
    if (sharded_) {
      const std::size_t s = shard_of(k);
      if (sparse_fold_or_push(shard_sp16_[s], shard_slot(s, k), k, r,
                              ~LaneMask{0})) {
        ++shard_sp_rows_[s];
        ++shard_rows_;
      }
      return;
    }
    if (sparse_fold_or_push(sp16_, combine_[combine_hash(k)], k, r,
                            ~LaneMask{0})) {
      ++sp_rows_;
    }
  }

  /// Decode sparse records into fixed-stride u16 storage in place
  /// (storage order, rows stay unsealed) and leave the sparse format.
  /// Shard structure is preserved: a sparse shard decodes into its
  /// dense shard, so escalation and mixed absorbs continue on exactly
  /// the paths the dense format uses. Cache slots held byte offsets, so
  /// they are cleared (a stale hint is checked before any fold, but a
  /// cold restart is cheaper to reason about).
  /// Mid-phase kAuto flip: the phase has outgrown the regime where
  /// fixed-stride rows are cheaper, so re-encode the dense shard rows
  /// as sparse records — per shard, in row order, which keeps the
  /// decoded row sequence (and therefore the sealed table) bit-identical
  /// to an all-dense run — and emit sparse records from here on.
  void flip_shards_to_sparse() {
    sparse_flip_at_ = kNoSparseFlip;
    shard_sp16_.resize(kShardCount);
    shard_sp_rows_.assign(kShardCount, 0);
    // Dense combine slots hold row indices, sparse ones byte offsets:
    // reset rather than translate — sparse_push below re-seeds the slot
    // of every re-encoded row, so the cache stays warm across the flip.
    if (shard_combine_.empty()) {
      shard_combine_.assign(kShardCount << kShardCombineBits,
                            CombineSlot{});
    } else {
      std::fill(shard_combine_.begin(), shard_combine_.end(),
                CombineSlot{});
    }
    for (std::size_t s = 0; s < kShardCount; ++s) {
      auto& rows = shard16_[s];
      auto& buf = shard_sp16_[s];
      buf.reserve(rows.size() * kSparseRowGuess);
      for (const Row16& r : rows) {
        sparse_push(buf, shard_slot(s, r.k), r.k, r, ~LaneMask{0});
      }
      shard_sp_rows_[s] = static_cast<std::uint32_t>(rows.size());
      rows.clear();
      rows.shrink_to_fit();
    }
    shard16_.clear();
    shard16_.shrink_to_fit();
    sparse_ = true;
  }

  void unsparse() {
    if (!sparse_) return;
    sparse_flip_at_ = kNoSparseFlip;
    if (sharded_) {
      shard16_.resize(kShardCount);
      for (std::size_t s = 0; s < kShardCount; ++s) {
        auto& rows = shard16_[s];
        rows.reserve(rows.size() + shard_sp_rows_[s]);
        sparse_scan(shard_sp16_[s], [&](std::uint64_t, const Row16& r) {
          rows.push_back(r);
        });
        shard_sp16_[s].clear();
        shard_sp16_[s].shrink_to_fit();
      }
      shard_sp16_.clear();
      shard_sp16_.shrink_to_fit();
      shard_sp_rows_.clear();
      shard_sp_rows_.shrink_to_fit();
      if (!shard_combine_.empty()) {
        std::fill(shard_combine_.begin(), shard_combine_.end(),
                  CombineSlot{});
      }
    } else {
      n16_.reserve(n16_.size() + sp_rows_);
      sparse_scan(sp16_, [&](std::uint64_t, const Row16& r) {
        n16_.push_back(r);
      });
      sp16_.clear();
      sp16_.shrink_to_fit();
      sp_rows_ = 0;
      if (!combine_.empty()) {
        std::fill(combine_.begin(), combine_.end(), CombineSlot{});
      }
    }
    sparse_ = false;
  }

  // --------------------------------------------------- sparse sealing

  /// (sort key, record byte offset) pair — the seal's key-index
  /// indirection extended to variable stride: the radix passes move
  /// these 16-byte pairs, and each record is decoded exactly once, into
  /// its final sorted position.
  struct KeyOff {
    std::uint64_t sk;
    std::uint32_t off;
  };

  static void sort_keyoff(std::vector<KeyOff>& keys,
                          std::vector<KeyOff>& buf, std::uint64_t varying,
                          std::size_t comparison_below) {
    if (keys.size() < comparison_below) {
      std::sort(keys.begin(), keys.end(),
                [](const KeyOff& a, const KeyOff& b) { return a.sk < b.sk; });
      return;
    }
    for (int shift = 0; shift < 64; shift += kRadixBits) {
      if (((varying >> shift) & (kRadixBuckets - 1)) == 0) continue;
      radix_pass(keys, buf, [shift](const KeyOff& p) {
        return static_cast<std::uint32_t>(p.sk >> shift) &
               (kRadixBuckets - 1);
      });
    }
  }

  /// The sparse seal. The winning shape is the per-shard one: each
  /// shard sorts (sort key, offset) pairs and gather-decodes every
  /// record once into its segment of the flattened buffer, the gather
  /// staying inside one shard's cache-resident record buffer. A
  /// table-wide pair sort loses that locality — its gather strides the
  /// whole record buffer — and measures slower than decoding up front
  /// and running the dense radix seal, so everything that can't take
  /// the per-shard path (small tables, non-v1 slots, the probe engine)
  /// decodes in place and reuses the dense sort dispatch. The global
  /// pair sort is kept for the one case the decode is the problem: a
  /// record buffer too large to want a second flat copy. Either way
  /// the sealed rows are exactly the rows the dense format would have
  /// produced; validation failure leaves the table decoded, in storage
  /// order, for the caller's dense fallback.
  bool sort_sparse_by_slot(int slot, VertexId domain) {
    // Offsets ride in 32 bits through the passes; a >4 GiB record
    // buffer decodes first and sorts dense.
    constexpr std::size_t kMaxOff = std::numeric_limits<std::uint32_t>::max();
    bool overflow = sp16_.size() > kMaxOff;
    for (const auto& b : shard_sp16_) overflow = overflow || b.size() > kMaxOff;
    // Sharded tables above the cutover (8× below the dense seal's,
    // matching the per-shard comparison-sort threshold) keep the
    // per-shard variable-stride seal, in parallel.
    if (!overflow && sharded_ && slot == 1 &&
        shard_rows_ >= kShardCount * 4 * (kRadixMinRows / 8)) {
      return sort_sparse_sharded_v1(domain);
    }
    // Memory-constrained middle ground: a non-sharded record buffer too
    // big to casually double (but with offsets still in range) pays the
    // strided gather to avoid the flat copy.
    if (!overflow && !sharded_ &&
        sp16_.size() > (std::size_t{1} << 28)) {
      return sort_sparse_global(slot, domain);
    }
    unsparse();
    if (sharded_) {
      if (slot == 1) return sort_sharded_by_v1(domain);
      flatten_shards();
    }
    return sort_dispatch(n16_, slot, domain);
  }

  /// Concatenate sparse shard buffers into the global record buffer in
  /// shard order (ascending-v1 blocks) and leave sharded mode.
  void concat_sparse_shards() {
    std::size_t total = 0;
    for (const auto& b : shard_sp16_) total += b.size();
    sp16_.reserve(sp16_.size() + total);
    for (auto& b : shard_sp16_) {
      sp16_.insert(sp16_.end(), b.begin(), b.end());
      b.clear();
      b.shrink_to_fit();
    }
    shard_sp16_.clear();
    shard_sp16_.shrink_to_fit();
    shard_sp_rows_.clear();
    shard_sp_rows_.shrink_to_fit();
    shard_combine_.clear();
    shard_combine_.shrink_to_fit();
    sp_rows_ += shard_rows_;
    shard_rows_ = 0;
    sharded_ = false;
  }

  bool sort_sparse_global(int slot, VertexId domain) {
    const std::size_t n = sp_rows_;
    thread_local std::vector<KeyOff> keys, keys_buf;
    if (keys.capacity() > 2 * n + 1024) {
      keys.clear();
      keys.shrink_to_fit();
      keys_buf.clear();
      keys_buf.shrink_to_fit();
    }
    keys.clear();
    keys.reserve(n);
    std::uint64_t ormask = 0;
    std::uint64_t andmask = ~std::uint64_t{0};
    bool sorted = true;
    std::uint64_t prev = 0;
    bool ok = true;
    const std::uint8_t* const base = sp16_.data();
    const std::uint8_t* p = base;
    const std::uint8_t* const end = base + sp16_.size();
    while (p < end) {
      const std::uint64_t k = load_u64(p);
      if (slot_bits(k, slot) >= domain) {
        ok = false;
        break;
      }
      const std::uint64_t sk = sort_key(k, slot);
      keys.push_back({sk, static_cast<std::uint32_t>(p - base)});
      ormask |= sk;
      andmask &= sk;
      sorted = sorted && sk >= prev;
      prev = sk;
      p += 9 + 2 * std::popcount(std::uint32_t{p[8]});
    }
    if (!ok) {
      unsparse();  // decoded, storage order — the dense fallback's input
      return false;
    }
    if (!sorted) {
      sort_keyoff(keys, keys_buf, ormask ^ andmask, kRadixMinRows);
    }
    n16_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      sparse_decode_at(base, keys[i].off, n16_[i]);
    }
    sp16_.clear();
    sp16_.shrink_to_fit();
    sp_rows_ = 0;
    sparse_ = false;
    keys.clear();
    keys_buf.clear();
    return true;
  }

  /// Per-shard variant of sort_sparse_global: sort one shard's pairs
  /// and decode into its segment of the flattened buffer. On a failed
  /// validation the shard still decodes (storage order) so the whole
  /// table ends up flat for the caller's dense fallback.
  static bool sort_sparse_shard_v1(const std::vector<std::uint8_t>& buf,
                                   std::uint32_t nrows, VertexId domain,
                                   Row16* out) {
    thread_local std::vector<KeyOff> keys, keys_buf;
    keys.clear();
    keys.reserve(nrows);
    std::uint64_t ormask = 0;
    std::uint64_t andmask = ~std::uint64_t{0};
    bool sorted = true;
    std::uint64_t prev = 0;
    bool ok = true;
    const std::uint8_t* const base = buf.data();
    const std::uint8_t* p = base;
    const std::uint8_t* const end = base + buf.size();
    while (p < end) {
      const std::uint64_t k = load_u64(p);
      const std::uint64_t sk = sort_key(k, 1);
      if (slot_bits(k, 1) >= domain) ok = false;
      keys.push_back({sk, static_cast<std::uint32_t>(p - base)});
      ormask |= sk;
      andmask &= sk;
      sorted = sorted && sk >= prev;
      prev = sk;
      p += 9 + 2 * std::popcount(std::uint32_t{p[8]});
    }
    if (ok && !sorted) {
      // The same early-radix threshold the dense per-shard sort uses:
      // passes above shard_shift_ are constant inside a shard and the
      // varying-bit skip drops them automatically.
      sort_keyoff(keys, keys_buf, ormask ^ andmask, kRadixMinRows / 8);
    }
    for (std::size_t i = 0; i < keys.size(); ++i) {
      sparse_decode_at(base, keys[i].off, out[i]);
    }
    return ok;
  }

  bool sort_sparse_sharded_v1(VertexId domain) {
    std::array<std::size_t, kShardCount + 1> off{};
    for (std::size_t s = 0; s < kShardCount; ++s) {
      off[s + 1] = off[s] + shard_sp_rows_[s];
    }
    n16_.resize(off[kShardCount]);
    bool ok = true;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 1) reduction(&& : ok) \
    if (off[kShardCount] > (1u << 15))
#endif
    for (int s = 0; s < static_cast<int>(kShardCount); ++s) {
      if (shard_sp16_[s].empty()) continue;
      ok = sort_sparse_shard_v1(shard_sp16_[s], shard_sp_rows_[s], domain,
                                n16_.data() + off[s]) &&
           ok;
    }
    shard_sp16_.clear();
    shard_sp16_.shrink_to_fit();
    shard_sp_rows_.clear();
    shard_sp_rows_.shrink_to_fit();
    shard_rows_ = 0;
    sharded_ = false;
    sparse_ = false;
    return ok;
  }

  /// Concatenate the shards into n16_ in shard order (ascending-v1
  /// blocks) and leave sharded mode, dropping the shard caches.
  void flatten_shards() {
    if (!sharded_) return;
    n16_.reserve(n16_.size() + shard_rows_);
    for (auto& shard : shard16_) {
      n16_.insert(n16_.end(), shard.begin(), shard.end());
      shard.clear();
      shard.shrink_to_fit();
    }
    shard16_.clear();
    shard16_.shrink_to_fit();
    shard_combine_.clear();
    shard_combine_.shrink_to_fit();
    shard_rows_ = 0;
    sharded_ = false;
  }

  /// Leave sharded mode mid-accumulation (a width escalation or a
  /// mixed absorb): flatten and stand up the global combining cache so
  /// the probe path can continue the phase.
  void unshard() {
    flatten_shards();
    if (combine_.empty()) combine_.resize(kCombineSlots);
  }

  /// The sharded slot-1 seal: shard blocks are ascending in v1, so
  /// each shard sorts independently — radix with every pass above
  /// shard_shift_ pre-satisfied, or a plain comparison sort for small
  /// shards — and lands at its prefix offset of the flattened buffer;
  /// the concatenation is exactly the global order the dense seal's
  /// comparator produces. The copy doubles as the flatten, so a failed
  /// validation (a v1 outside [0, domain), e.g. kNoVertex) still
  /// leaves the rows flattened for the caller's dense fallback.
  bool sort_sharded_by_v1(VertexId domain) {
    // Small and mid-size tables: the per-shard sorts cannot amortize
    // their fixed costs (a histogram + prefix scan per radix pass per
    // shard), so the pre-satisfied leading passes are a net loss —
    // flatten and sort globally, exactly like the probe engine's seal.
    // Measured crossover (bench_accumulate, 1 pinned core) is around
    // 16k rows per shard; below it the global radix wins or ties.
    if (shard_rows_ < kShardCount * 4 * kRadixMinRows) {
      flatten_shards();
      return sort_dispatch(n16_, 1, domain);
    }
    std::array<std::size_t, kShardCount + 1> off{};
    for (std::size_t s = 0; s < kShardCount; ++s) {
      off[s + 1] = off[s] + shard16_[s].size();
    }
    n16_.resize(off[kShardCount]);
    bool ok = true;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 1) reduction(&& : ok) \
    if (off[kShardCount] > (1u << 15))
#endif
    for (int s = 0; s < static_cast<int>(kShardCount); ++s) {
      auto& rows = shard16_[s];
      if (rows.empty()) continue;
      ok = sort_shard_v1(rows, domain) && ok;
      std::memcpy(n16_.data() + off[s], rows.data(),
                  rows.size() * sizeof(rows[0]));
    }
    shard16_.clear();
    shard16_.shrink_to_fit();
    shard_rows_ = 0;
    sharded_ = false;
    return ok;
  }

  static bool sort_shard_v1(std::vector<Row16>& rows, VertexId domain) {
    // A shard is ~1/64 of the table, so the global radix threshold would
    // send nearly every shard to the comparison sort; per-shard radix
    // pays off much earlier because the passes above shard_shift_ are
    // pre-satisfied by the shard cut and skipped outright.
    if (rows.size() >= kRadixMinRows / 8) {
      return sort_radix_impl(rows, 1, domain);
    }
    for (const Row16& r : rows) {
      if (slot_bits(r.k, 1) >= domain) return false;
    }
    // Equal keys are about to be merged; an unstable sort suffices.
    std::sort(rows.begin(), rows.end(),
              [](const Row16& a, const Row16& b) {
                return sort_key(a.k, 1) < sort_key(b.k, 1);
              });
    return true;
  }

  /// OR of the lanes of `src` selected by `m` (bounds their max).
  static Count masked_or(const Vec& src, LaneMask m) {
    Count hi = 0;
    CCBT_SIMD
    for (int l = 0; l < B; ++l) {
      hi |= ((m >> l) & 1) != 0 ? LaneOps<B>::lane(src, l) : Count{0};
    }
    return hi;
  }

  template <typename W>
  void push_masked(std::vector<PackedFlatRowT<B, W>>& rows, std::uint64_t k,
                   const Vec& src, LaneMask m) {
    PackedFlatRowT<B, W> r;
    r.k = k;
    CCBT_SIMD
    for (int l = 0; l < B; ++l) {
      r.c[l] = static_cast<W>(((m >> l) & 1) != 0 ? LaneOps<B>::lane(src, l)
                                                  : Count{0});
    }
    rows.push_back(r);
  }

  /// combine() for a masked source: sums only the lanes of `m`.
  template <typename W>
  static bool combine_masked(PackedFlatRowT<B, W>& r, const Vec& src,
                             LaneMask m, std::uint64_t cap) {
    std::array<Count, B> sum;
    Count hi = 0;
    CCBT_SIMD
    for (int l = 0; l < B; ++l) {
      sum[l] = r.c[l] + (((m >> l) & 1) != 0 ? LaneOps<B>::lane(src, l)
                                             : Count{0});
      hi |= sum[l];
    }
    if (hi > cap) return false;
    CCBT_SIMD
    for (int l = 0; l < B; ++l) r.c[l] = static_cast<W>(sum[l]);
    return true;
  }

  /// Sum `cnt` into an existing narrow row if every merged lane still
  /// fits the row's width; leaves the row untouched (caller appends a
  /// duplicate, merged at seal) otherwise.
  template <typename W>
  static bool combine(PackedFlatRowT<B, W>& r, const Vec& cnt,
                      std::uint64_t cap) {
    std::array<Count, B> sum;
    Count hi = 0;
    CCBT_SIMD
    for (int l = 0; l < B; ++l) {
      sum[l] = r.c[l] + LaneOps<B>::lane(cnt, l);
      hi |= sum[l];
    }
    if (hi > cap) return false;
    CCBT_SIMD
    for (int l = 0; l < B; ++l) r.c[l] = static_cast<W>(sum[l]);
    return true;
  }

  template <typename W>
  static void push(std::vector<PackedFlatRowT<B, W>>& rows, std::uint64_t k,
                   const Vec& cnt) {
    PackedFlatRowT<B, W> r;
    r.k = k;
    CCBT_SIMD
    for (int l = 0; l < B; ++l) {
      r.c[l] = static_cast<W>(LaneOps<B>::lane(cnt, l));
    }
    rows.push_back(r);
  }

  template <typename W>
  static Vec expand_counts(const PackedFlatRowT<B, W>& r) {
    Vec v = LaneOps<B>::zero();
    CCBT_SIMD
    for (int l = 0; l < B; ++l) {
      LaneOps<B>::set_lane(v, l, r.c[l]);
    }
    return v;
  }

  void to_u32() {
    unsparse();
    if (sharded_) flatten_shards();
    n32_.resize(n16_.size());
    for (std::size_t i = 0; i < n16_.size(); ++i) {
      n32_[i].k = n16_[i].k;
      CCBT_SIMD
      for (int l = 0; l < B; ++l) n32_[i].c[l] = n16_[i].c[l];
    }
    n16_.clear();
    n16_.shrink_to_fit();
    mode_ = Mode::kU32;
  }

  void to_wide() {
    unsparse();
    if (sharded_) flatten_shards();
    if (mode_ == Mode::kWide) return;
    const std::size_t n = size();
    const std::size_t at = wide_.size();
    wide_.resize(at + n);
    for (std::size_t i = 0; i < n; ++i) row(i, wide_[at + i]);
    n16_.clear();
    n16_.shrink_to_fit();
    n32_.clear();
    n32_.shrink_to_fit();
    mode_ = Mode::kWide;
  }

  void raise_to(Mode m) {
    if (mode_ >= m) return;
    if (m == Mode::kU32) {
      to_u32();
    } else {
      to_wide();
    }
  }

  /// The slot's bit field of a packed key (28 bits; kNoVertex packs to
  /// the all-ones pattern, which any real domain excludes).
  static std::uint32_t slot_bits(std::uint64_t k, int slot) {
    return static_cast<std::uint32_t>(k >> (slot == 0 ? 36 : 8)) &
           kPacked28NoVertex;
  }

  /// The 64-bit sort key whose ascending order is exactly the dense
  /// seal's comparator for `slot`: the grouping field in the top 28
  /// bits, the other vertex field below it, the signature in the low
  /// byte (narrow keys never use slots 2-3). For slot 0 this IS the raw
  /// packed key; for slot 1 the two vertex fields swap.
  static std::uint64_t sort_key(std::uint64_t k, int slot) {
    if (slot == 0) return k;
    return ((k << 28) & (std::uint64_t{kPacked28NoVertex} << 36)) |
           ((k >> 28) & (std::uint64_t{kPacked28NoVertex} << 8)) |
           (k & 0xFFu);
  }

  template <typename W>
  static bool sort_dispatch(std::vector<PackedFlatRowT<B, W>>& rows,
                            int slot, VertexId domain) {
    switch (seal_sort_algo()) {
      case SealSortAlgo::kComparison:
        return sort_comparison_impl(rows, slot, domain);
      case SealSortAlgo::kRadix: return sort_radix_impl(rows, slot, domain);
      case SealSortAlgo::kAuto: break;
    }
    // Tiny tables: the per-bucket comparison sort has no per-pass setup
    // and its buckets fit in cache; everything else goes radix.
    return rows.size() >= kRadixMinRows
               ? sort_radix_impl(rows, slot, domain)
               : sort_comparison_impl(rows, slot, domain);
  }

  static constexpr std::size_t kRadixMinRows = 4096;
  static constexpr int kRadixBits = 11;
  static constexpr std::uint32_t kRadixBuckets = 1u << kRadixBits;

  /// One stable counting-scatter pass of the LSD radix sort: `cur` rows
  /// move to `buf` ordered by digit(item). Parallel per-chunk histograms
  /// when OpenMP delivers a team (same chunked layout the dense
  /// bucket_sort uses, so the scatter stays stable for any team size).
  template <typename T, typename DigitFn>
  static void radix_pass(std::vector<T>& cur, std::vector<T>& buf,
                         DigitFn&& digit) {
    const std::size_t n = cur.size();
    buf.resize(n);
#ifdef _OPENMP
    const int max_threads = omp_get_max_threads();
    if (max_threads > 1 && n >= (1u << 16)) {
      const int nchunks = max_threads;
      const std::size_t chunk = (n + nchunks - 1) / nchunks;
      std::vector<std::vector<std::uint32_t>> hist(nchunks);
#pragma omp parallel for schedule(static, 1)
      for (int c = 0; c < nchunks; ++c) {
        const std::size_t lo = std::min(n, c * chunk);
        const std::size_t hi = std::min(n, lo + chunk);
        auto& h = hist[c];
        h.assign(kRadixBuckets, 0);
        for (std::size_t i = lo; i < hi; ++i) ++h[digit(cur[i])];
      }
      std::array<std::uint32_t, kRadixBuckets> off{};
      for (int c = 0; c < nchunks; ++c) {
        for (std::uint32_t d = 0; d < kRadixBuckets; ++d) {
          off[d] += hist[c][d];
        }
      }
      std::uint32_t sum = 0;
      for (std::uint32_t d = 0; d < kRadixBuckets; ++d) {
        const std::uint32_t cnt = off[d];
        off[d] = sum;
        sum += cnt;
      }
      // Rebase each chunk's histogram into its scatter cursor: chunk c's
      // share of digit d starts after chunks < c (input order = stable).
      for (std::uint32_t d = 0; d < kRadixBuckets; ++d) {
        std::uint32_t cursor = off[d];
        for (int c = 0; c < nchunks; ++c) {
          const std::uint32_t cnt = hist[c][d];
          hist[c][d] = cursor;
          cursor += cnt;
        }
      }
#pragma omp parallel for schedule(static, 1)
      for (int c = 0; c < nchunks; ++c) {
        const std::size_t lo = std::min(n, c * chunk);
        const std::size_t hi = std::min(n, lo + chunk);
        auto& cursors = hist[c];
        for (std::size_t i = lo; i < hi; ++i) {
          buf[cursors[digit(cur[i])]++] = cur[i];
        }
      }
      cur.swap(buf);
      return;
    }
#endif
    std::array<std::uint32_t, kRadixBuckets> off{};
    for (const T& t : cur) ++off[digit(t)];
    std::uint32_t sum = 0;
    for (std::uint32_t d = 0; d < kRadixBuckets; ++d) {
      const std::uint32_t cnt = off[d];
      off[d] = sum;
      sum += cnt;
    }
    for (const T& t : cur) buf[off[digit(t)]++] = t;
    cur.swap(buf);
  }

  /// LSD radix seal sort: stable kRadixBits-wide passes over the
  /// slot-permuted packed key, skipping any pass whose digit is constant
  /// across the table (the common case — vertex fields only populate
  /// bit_width(domain) bits, and an all-kNoVertex field contributes no
  /// varying bit at all). The validation scan doubles as a sorted-input
  /// detector: rows that arrive already in seal order (combining-cache
  /// bursts of an ordered producer, checkpoint decode -> reseal) skip
  /// the sort outright, and u32 rows too wide to haul through every pass
  /// sort as (key, index) pairs and are gathered once at the end.
  template <typename W>
  static bool sort_radix_impl(std::vector<PackedFlatRowT<B, W>>& rows,
                              int slot, VertexId domain) {
    using Row = PackedFlatRowT<B, W>;
    const std::size_t n = rows.size();
    if (n == 0) return true;
    std::uint64_t ormask = 0;
    std::uint64_t andmask = ~std::uint64_t{0};
    bool sorted = true;
    std::uint64_t prev = 0;
    for (const Row& r : rows) {
      if (slot_bits(r.k, slot) >= domain) return false;
      const std::uint64_t sk = sort_key(r.k, slot);
      ormask |= sk;
      andmask &= sk;
      sorted = sorted && sk >= prev;
      prev = sk;
    }
    if (sorted) return true;
    const std::uint64_t varying = ormask ^ andmask;

    // Scatter buffer reused across seals (swapped, not stolen, so both
    // buffers keep cycling); rows are only ever fully overwritten, so
    // the growth zero-fill is the one init cost it ever pays.
    if constexpr (sizeof(Row) <= 24) {
      thread_local std::vector<Row> swap_buf;
      if (swap_buf.capacity() > 2 * n + 1024) {
        swap_buf.clear();
        swap_buf.shrink_to_fit();
      }
      for (int shift = 0; shift < 64; shift += kRadixBits) {
        if (((varying >> shift) & (kRadixBuckets - 1)) == 0) continue;
        radix_pass(rows, swap_buf, [slot, shift](const Row& r) {
          return static_cast<std::uint32_t>(sort_key(r.k, slot) >> shift) &
                 (kRadixBuckets - 1);
        });
      }
    } else {
      // Key-index passes: move 16-byte (sort key, row index) pairs
      // through the passes instead of the wide rows, then gather.
      struct KeyIdx {
        std::uint64_t sk;
        std::uint32_t idx;
      };
      thread_local std::vector<KeyIdx> keys, keys_buf;
      keys.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        keys[i] = {sort_key(rows[i].k, slot),
                   static_cast<std::uint32_t>(i)};
      }
      for (int shift = 0; shift < 64; shift += kRadixBits) {
        if (((varying >> shift) & (kRadixBuckets - 1)) == 0) continue;
        radix_pass(keys, keys_buf, [shift](const KeyIdx& p) {
          return static_cast<std::uint32_t>(p.sk >> shift) &
                 (kRadixBuckets - 1);
        });
      }
      thread_local std::vector<Row> swap_buf;
      if (swap_buf.capacity() > 2 * n + 1024) {
        swap_buf.clear();
        swap_buf.shrink_to_fit();
      }
      swap_buf.resize(n);
      for (std::size_t i = 0; i < n; ++i) swap_buf[i] = rows[keys[i].idx];
      rows.swap(swap_buf);
      keys.clear();
      keys_buf.clear();
    }
    return true;
  }

  template <typename W>
  static bool sort_comparison_impl(std::vector<PackedFlatRowT<B, W>>& rows,
                                   int slot, VertexId domain) {
    using Row = PackedFlatRowT<B, W>;
    const std::size_t n = rows.size();
    std::vector<std::uint32_t> off(static_cast<std::size_t>(domain) + 1, 0);
    for (const Row& r : rows) {
      const std::uint32_t v = slot_bits(r.k, slot);
      if (v >= domain) return false;
      ++off[v + 1];
    }
    for (std::size_t v = 1; v <= domain; ++v) off[v] += off[v - 1];
    // Scatter buffer reused across seals (swapped, not stolen, so both
    // buffers keep cycling); rows are only ever fully overwritten, so
    // the growth zero-fill is the one init cost it ever pays.
    thread_local std::vector<Row> sorted;
    if (sorted.capacity() > 2 * n + 1024) {
      sorted.clear();
      sorted.shrink_to_fit();
    }
    sorted.resize(n);
    {
      std::vector<std::uint32_t> cursor(off.begin(), off.end() - 1);
      for (const Row& r : rows) sorted[cursor[slot_bits(r.k, slot)]++] = r;
    }
    rows.swap(sorted);
    // With the slot's field fixed inside a bucket, raw-k order is the
    // dense seal's tail comparator (narrow keys never use slots 2-3).
    // Equal keys are about to be merged, so an unstable sort suffices.
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 1024) if (n > (1u << 15))
#endif
    for (std::size_t v = 0; v < domain; ++v) {
      const std::uint32_t lo = off[v];
      const std::uint32_t hi = off[v + 1];
      if (hi - lo > 1) {
        std::sort(rows.begin() + lo, rows.begin() + hi,
                  [](const Row& a, const Row& b) { return a.k < b.k; });
      }
    }
    return true;
  }

  template <typename W>
  static FlatStats scan_impl(const std::vector<PackedFlatRowT<B, W>>& rows) {
    FlatStats st;
    const std::size_t n = rows.size();
    std::size_t i = 0;
    while (i < n) {
      const std::uint64_t k = rows[i].k;
      std::array<Count, B> sum{};
      do {
        CCBT_SIMD
        for (int l = 0; l < B; ++l) sum[l] += rows[i].c[l];
        ++i;
      } while (i < n && rows[i].k == k);
      ++st.rows;
      for (int l = 0; l < B; ++l) {
        st.lanes_occupied += (sum[l] != 0);
        if (sum[l] > st.max_count) st.max_count = sum[l];
      }
    }
    return st;
  }

  FlatStats scan_wide() const {
    FlatStats st;
    const std::size_t n = wide_.size();
    std::size_t i = 0;
    while (i < n) {
      const TableKey& k = wide_[i].key;
      auto sum = LaneOps<B>::zero();
      do {
        LaneOps<B>::add(sum, wide_[i].cnt);
        ++i;
      } while (i < n && wide_[i].key == k);
      ++st.rows;
      for (int l = 0; l < B; ++l) {
        const Count c = LaneOps<B>::lane(sum, l);
        st.lanes_occupied += (c != 0);
        if (c > st.max_count) st.max_count = c;
      }
    }
    return st;
  }

  template <typename W>
  static void merge_impl(std::vector<PackedFlatRowT<B, W>>& rows) {
    const std::size_t n = rows.size();
    std::size_t w = 0;
    std::size_t i = 0;
    while (i < n) {
      const std::uint64_t k = rows[i].k;
      std::array<Count, B> sum{};
      do {
        CCBT_SIMD
        for (int l = 0; l < B; ++l) sum[l] += rows[i].c[l];
        ++i;
      } while (i < n && rows[i].k == k);
      auto& out = rows[w++];
      out.k = k;
      CCBT_SIMD
      for (int l = 0; l < B; ++l) out.c[l] = static_cast<W>(sum[l]);
    }
    rows.resize(w);
  }

  void merge_wide() {
    const std::size_t n = wide_.size();
    std::size_t w = 0;
    std::size_t i = 0;
    while (i < n) {
      Entry acc = wide_[i];
      std::size_t j = i + 1;
      while (j < n && wide_[j].key == acc.key) {
        LaneOps<B>::add(acc.cnt, wide_[j].cnt);
        ++j;
      }
      wide_[w++] = acc;
      i = j;
    }
    wide_.resize(w);
  }

  Mode mode_ = Mode::kU16;
  std::vector<PackedFlatRowT<B, std::uint16_t>> n16_;
  std::vector<PackedFlatRowT<B, std::uint32_t>> n32_;
  std::vector<Entry> wide_;
  std::vector<CombineSlot> combine_;

  // Accumulation-phase state (engine binding + sharded storage).
  bool prepared_ = false;
  bool sharded_ = false;
  AccumEngine engine_ = AccumEngine::kProbe;
  int shard_shift_ = 0;
  std::size_t shard_rows_ = 0;
  std::uint64_t combine_folds_ = 0;
  std::uint64_t run_emits_ = 0;
  std::uint64_t frontier_folds_ = 0;
  std::vector<std::vector<Row16>> shard16_;
  std::vector<CombineSlot> shard_combine_;

  // Sparse emission state (CCBT_EMIT; u16 mode only). Probe keeps one
  // record buffer; the sharded engine keeps one per shard plus its row
  // count (the seal's per-shard prefix offsets). sparse_flip_at_ is the
  // kAuto policy's armed row count: a dense sharded phase crossing it
  // re-encodes and continues sparse (kNoSparseFlip = disarmed).
  static constexpr std::size_t kNoSparseFlip =
      std::numeric_limits<std::size_t>::max();
  bool sparse_ = false;
  std::size_t sparse_flip_at_ = kNoSparseFlip;
  std::size_t sp_rows_ = 0;
  std::vector<std::uint8_t> sp16_;
  std::vector<std::vector<std::uint8_t>> shard_sp16_;
  std::vector<std::uint32_t> shard_sp_rows_;
};

}  // namespace ccbt
