// Ablation for the Section 5.1 design discussion: is DB's win due to the
// even split or the degree anchoring? PS-EVEN splits cycles evenly (like
// DB) but without the ≻ constraint. The paper: "performance of the PS
// algorithm and the modified implementations does not differ
// significantly" — the degree constraint, not the split, is the active
// ingredient.
//
// Shape to verify: PS-EVEN tracks PS closely; DB beats both on the
// heavy-tailed graphs.

#include "common.hpp"

int main() {
  using namespace ccbt;
  using namespace ccbt::bench;
  print_header("Ablation — split strategy (PS vs PS-EVEN vs DB)",
               "total join ops (millions) at 512 virtual ranks");

  const std::vector<std::string> graph_names{"enron", "epinions", "condMat",
                                             "roadNetCA"};
  const std::vector<std::string> query_names{"glet1", "glet2", "youtube",
                                             "wiki", "dros", "ecoli2",
                                             "brain1"};
  TextTable t({"graph", "query", "PS", "PS-EVEN", "DB", "PS/DB",
               "PS-EVEN/PS"});
  for (const std::string& gname : graph_names) {
    const CsrGraph g = make_workload(gname, bench_scale());
    for (const std::string& qname : query_names) {
      const QueryGraph q = named_query(qname);
      const Plan plan = make_plan(q);
      const CellResult ps = run_cell(g, q, plan, Algo::kPS, 512, 7);
      const CellResult pe = run_cell(g, q, plan, Algo::kPSEven, 512, 7);
      const CellResult db = run_cell(g, q, plan, Algo::kDB, 512, 7);
      auto mops = [](const CellResult& r) {
        return r.ok ? TextTable::num(r.total_ops / 1e6, 2) : std::string(
            "DNF");
      };
      std::string ps_db = "-", pe_ps = "-";
      if (ps.ok && db.ok && db.total_ops > 0) {
        ps_db = TextTable::num(
            static_cast<double>(ps.total_ops) / db.total_ops, 2);
      }
      if (ps.ok && pe.ok && ps.total_ops > 0) {
        pe_ps = TextTable::num(
            static_cast<double>(pe.total_ops) / ps.total_ops, 2);
      }
      t.add_row({gname, qname, mops(ps), mops(pe), mops(db), ps_db, pe_ps});
    }
  }
  t.print(std::cout);
  std::cout << "(PS-EVEN/PS near 1 and PS/DB >> 1 on skewed graphs support "
               "Section 5.1's conclusion)\n";
  return 0;
}
