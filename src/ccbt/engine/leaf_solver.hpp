#pragma once
// Leaf-edge block solving (Section 5.2, last paragraph): join the tables
// annotating the boundary node, the edge, and the leaf node, then project
// to the boundary.

#include "ccbt/decomp/block.hpp"
#include "ccbt/engine/path_builder.hpp"
#include "ccbt/util/error.hpp"

namespace ccbt {

/// Compute the unary projection table of a leaf-edge block, keyed by the
/// image of its boundary node.
template <int B>
ProjTableT<B> solve_leaf_edge(const ExecContext& cx, const Block& blk,
                              TablePoolT<B>& pool) {
  if (blk.kind != BlockKind::kLeafEdge) {
    throw Error("solve_leaf_edge: not a leaf-edge block");
  }
  // Table keyed (π(a)=slot0, π(b)=slot1): the edge itself...
  ExtendOpts no_opts;
  ProjTableT<B> table;
  const int edge_child = blk.edge_child[0];
  if (edge_child < 0) {
    table = init_path_from_graph<B>(cx, no_opts);
  } else {
    // The child's first boundary must be the block's boundary node a.
    table = init_path_from_child<B>(
        cx, pool.oriented(edge_child, blk.edge_child_flip[0]),
        /*flip=*/false, no_opts);
  }
  // ...joined with the leaf node b's annotation...
  if (blk.node_child[1] >= 0) {
    table = node_join<B>(cx, table, pool.get(blk.node_child[1]), /*slot=*/1);
  }
  // ...and the boundary node a's annotation...
  if (blk.node_child[0] >= 0) {
    table = node_join<B>(cx, table, pool.get(blk.node_child[0]), /*slot=*/0);
  }
  // ...then projected onto a.
  return aggregate<B>(cx, table, /*new_arity=*/1);
}

extern template ProjTableT<1> solve_leaf_edge<1>(const ExecContext&,
                                                 const Block&,
                                                 TablePoolT<1>&);
extern template ProjTableT<2> solve_leaf_edge<2>(const ExecContext&,
                                                 const Block&,
                                                 TablePoolT<2>&);
extern template ProjTableT<4> solve_leaf_edge<4>(const ExecContext&,
                                                 const Block&,
                                                 TablePoolT<4>&);
extern template ProjTableT<8> solve_leaf_edge<8>(const ExecContext&,
                                                 const Block&,
                                                 TablePoolT<8>&);

}  // namespace ccbt
