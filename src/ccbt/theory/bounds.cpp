#include "ccbt/theory/bounds.hpp"

#include <cmath>

#include "ccbt/util/error.hpp"

namespace ccbt {

double seq_moment(const std::vector<double>& degrees, double p) {
  double sum = 0.0;
  for (double d : degrees) sum += std::pow(d, p);
  return sum;
}

double seq_edges(const std::vector<double>& degrees) {
  return 0.5 * seq_moment(degrees, 1.0);
}

double y_lower_bound(const std::vector<double>& degrees, int q) {
  if (q < 3) throw Error("y_lower_bound: q must be >= 3");
  const double two_m = 2.0 * seq_edges(degrees);
  const double d2 = seq_moment(degrees, 2.0);
  return (1.0 / q) * std::pow(two_m, 3.0 - q) * std::pow(d2, q - 2.0);
}

double x_upper_bound(const std::vector<double>& degrees, int q) {
  if (q < 3) throw Error("x_upper_bound: q must be >= 3");
  const double two_m = 2.0 * seq_edges(degrees);
  const double p = 2.0 - 1.0 / (q - 1.0);
  const double dp = seq_moment(degrees, p);
  return std::pow(two_m, 2.0 - q) * std::pow(dp, q - 1.0);
}

double balancedness_lambda(const std::vector<double>& degrees, int a, int b) {
  if (a < 1 || b < 1) throw Error("balancedness_lambda: a, b must be >= 1");
  const double num = seq_moment(degrees, static_cast<double>(a + b));
  const double den = seq_moment(degrees, static_cast<double>(a)) *
                     seq_moment(degrees, static_cast<double>(b));
  return den == 0.0 ? 0.0 : num / den;
}

int dominant_path_length(int cycle_length) {
  return (cycle_length + 1) / 2;
}

double predicted_improvement_exponent(double alpha, int q) {
  if (alpha <= 1.0 || alpha >= 2.0) {
    throw Error("predicted_improvement_exponent: alpha must be in (1,2)");
  }
  if (alpha < 2.0 - 1.0 / (q - 1.0)) {
    // Corollary 9.9, first case: E[Y]/E[X] >= n^{(alpha-1)/2}.
    return 0.5 * (alpha - 1.0);
  }
  // Second case: E[Y] / E[X] >= n^{alpha-2+(2-alpha)q/2} / polylog; report
  // the polynomial exponent.
  return alpha - 2.0 + 0.5 * (2.0 - alpha) * q;
}

}  // namespace ccbt
