#pragma once
// Automorphism counting (Section 2): the number of colorful *matches*
// (injective mappings) equals aut(Q) times the number of colorful
// *subgraphs*. Queries are small, so a pruned permutation backtracking
// search is exact and fast.

#include <cstdint>

#include "ccbt/query/query_graph.hpp"

namespace ccbt {

/// Number of adjacency-preserving bijections V(Q) -> V(Q).
std::uint64_t count_automorphisms(const QueryGraph& q);

}  // namespace ccbt
