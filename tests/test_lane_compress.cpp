// Lane-compressed count rows: the packed (occupancy mask + variable-width
// payload) table layout, the narrow accumulation rows, and the compressed
// wire format must reproduce the dense layout's results exactly — across
// B in {2, 4, 8}, forced u16 -> u32 -> u64 overflow escalation, and the
// all-lanes-dense worst case (which must *stay* dense).

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "ccbt/core/color_coding.hpp"
#include "ccbt/dist/comm.hpp"
#include "ccbt/dist/dist_engine.hpp"
#include "ccbt/engine/primitives.hpp"
#include "ccbt/graph/generators.hpp"
#include "ccbt/query/catalog.hpp"
#include "ccbt/table/flat_rows.hpp"
#include "ccbt/table/lane_payload.hpp"
#include "ccbt/table/lane_simd.hpp"
#include "ccbt/table/proj_table.hpp"
#include "ccbt/util/rng.hpp"

namespace ccbt {
namespace {

constexpr VertexId kDomain = 512;

/// Random flat rows: `live_lanes` lanes occupied per row on average,
/// counts uniform in [1, max_count]. Keys collide freely so the sealing
/// dedup runs too.
template <int B>
std::vector<TableEntryT<B>> random_rows(std::size_t n, int live_lanes,
                                        Count max_count,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TableEntryT<B>> rows(n);
  for (auto& e : rows) {
    e.key.v[0] = static_cast<VertexId>(rng.below(kDomain));
    e.key.v[1] = static_cast<VertexId>(rng.below(kDomain));
    e.key.sig = static_cast<Signature>(1u << rng.below(8));
    e.cnt = LaneOps<B>::zero();
    for (int j = 0; j < live_lanes; ++j) {
      const int l = static_cast<int>(rng.below(B));
      LaneOps<B>::set_lane(e.cnt, l, 1 + rng.below(max_count));
    }
    if (LaneOps<B>::is_zero(e.cnt)) {
      LaneOps<B>::set_lane(e.cnt, 0, 1);
    }
  }
  return rows;
}

/// Seal two copies of the same rows — one kStore (may re-pack), one
/// kStream (dense) — and require row-for-row equality through every
/// layout-independent accessor.
template <int B>
void expect_layout_parity(std::vector<TableEntryT<B>> rows,
                          SortOrder order) {
  auto copy = rows;
  ProjTableT<B> packed = ProjTableT<B>::from_flat(2, std::move(rows));
  ProjTableT<B> dense = ProjTableT<B>::from_flat(2, std::move(copy));
  packed.seal(order, kDomain, LaneSealHint::kStore);
  dense.seal(order, kDomain, LaneSealHint::kStream);
  ASSERT_FALSE(dense.lane_compressed());
  ASSERT_EQ(packed.size(), dense.size());

  // Whole-table scans agree.
  EXPECT_EQ(packed.total(), dense.total());
  EXPECT_EQ(packed.lane_totals(), dense.lane_totals());

  // Row-for-row equality (row_at expands the packed payload).
  TableEntryT<B> tmp;
  const auto de = dense.entries();
  for (std::size_t i = 0; i < dense.size(); ++i) {
    const TableEntryT<B>& e = packed.row_at(i, tmp);
    EXPECT_EQ(e.key, de[i].key) << "row " << i;
    EXPECT_EQ(e.cnt, de[i].cnt) << "row " << i;
  }

  // Group probes agree for every key in the domain (and out of it).
  const int slot = group_slot(order);
  std::vector<TableEntryT<B>> scratch;
  for (VertexId v = 0; v < kDomain + 3; ++v) {
    const auto pg = packed.group_expanded(slot, v, scratch);
    const auto dg = dense.group(slot, v);
    ASSERT_EQ(pg.size(), dg.size()) << "group " << v;
    for (std::size_t i = 0; i < pg.size(); ++i) {
      EXPECT_EQ(pg[i].key, dg[i].key);
      EXPECT_EQ(pg[i].cnt, dg[i].cnt);
    }
  }

  // Derived tables agree too (transpose reads through the packed layout).
  ProjTableT<B> pt = packed.transposed();
  ProjTableT<B> dt = dense.transposed();
  pt.seal(SortOrder::kByV0, kDomain, LaneSealHint::kStore);
  dt.seal(SortOrder::kByV0, kDomain, LaneSealHint::kStream);
  EXPECT_EQ(pt.lane_totals(), dt.lane_totals());
  EXPECT_EQ(pt.size(), dt.size());
}

template <int B>
void run_parity_suite() {
  // Sparse lanes, small counts: the chooser must pack (u16 payload).
  {
    auto rows = random_rows<B>(4000, 1, 1000, 11);
    ProjTableT<B> t = ProjTableT<B>::from_flat(2, std::move(rows));
    t.seal(SortOrder::kByV0, kDomain, LaneSealHint::kStore);
    EXPECT_TRUE(t.lane_compressed());
    EXPECT_EQ(t.layout().width, PayloadWidth::kU16);
  }
  expect_layout_parity<B>(random_rows<B>(4000, 1, 1000, 17),
                          SortOrder::kByV0);
  expect_layout_parity<B>(random_rows<B>(4000, 2, 60000, 19),
                          SortOrder::kByV1);
  expect_layout_parity<B>(random_rows<B>(2500, B, 3, 23),
                          SortOrder::kByV0V1);
}

TEST(LaneCompress, PackedTableMatchesDenseB2) { run_parity_suite<2>(); }
TEST(LaneCompress, PackedTableMatchesDenseB4) { run_parity_suite<4>(); }
TEST(LaneCompress, PackedTableMatchesDenseB8) { run_parity_suite<8>(); }

TEST(LaneCompress, WidthEscalatesU16ToU32ToU64) {
  // Counts just past each boundary force the next wider payload; the
  // packed rows must survive the round trip exactly.
  const Count boundary[] = {0xFFFFull, 0x10000ull, 0xFFFFFFFFull,
                            0x100000000ull};
  const PayloadWidth expect_width[] = {
      PayloadWidth::kU16, PayloadWidth::kU32, PayloadWidth::kU32,
      PayloadWidth::kU64};
  for (int c = 0; c < 4; ++c) {
    std::vector<TableEntryT<4>> rows(64);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      rows[i].key.v[0] = static_cast<VertexId>(i % 16);
      rows[i].key.v[1] = static_cast<VertexId>(i);
      rows[i].key.sig = 1;
      LaneOps<4>::set_lane(rows[i].cnt, static_cast<int>(i % 4),
                           i == 0 ? boundary[c] : 7);
    }
    auto copy = rows;
    ProjTableT<4> t = ProjTableT<4>::from_flat(2, std::move(rows));
    t.seal(SortOrder::kByV0, 16, LaneSealHint::kStore);
    ASSERT_TRUE(t.lane_compressed()) << "case " << c;
    EXPECT_EQ(t.layout().width, expect_width[c]) << "case " << c;

    ProjTableT<4> d = ProjTableT<4>::from_flat(2, std::move(copy));
    d.seal(SortOrder::kByV0, 16, LaneSealHint::kStream);
    EXPECT_EQ(t.lane_totals(), d.lane_totals()) << "case " << c;
    TableEntryT<4> tmp;
    for (std::size_t i = 0; i < t.size(); ++i) {
      EXPECT_EQ(t.row_at(i, tmp).cnt, d.entries()[i].cnt);
    }
  }
}

TEST(LaneCompress, AllLanesDenseWorstCaseStaysDense) {
  // Every lane occupied with u64-scale counts: the packed form would be
  // larger, so the chooser must keep the SIMD-friendly dense layout.
  std::vector<TableEntryT<8>> rows(512);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    rows[i].key.v[0] = static_cast<VertexId>(i);
    rows[i].key.v[1] = static_cast<VertexId>(i + 1);
    rows[i].key.sig = 3;
    for (int l = 0; l < 8; ++l) {
      LaneOps<8>::set_lane(rows[i].cnt, l, 0x100000000ull + i + l);
    }
  }
  ProjTableT<8> t = ProjTableT<8>::from_flat(2, std::move(rows));
  t.seal(SortOrder::kByV0, 600, LaneSealHint::kStore);
  EXPECT_FALSE(t.lane_compressed());
  EXPECT_EQ(t.layout().width, PayloadWidth::kU64);
  EXPECT_DOUBLE_EQ(t.layout().density(), 1.0);
  EXPECT_FALSE(lane_layout_profitable(t.layout()));
}

TEST(LaneCompress, StreamHintNeverPacks) {
  auto rows = random_rows<8>(2000, 1, 100, 29);
  ProjTableT<8> t = ProjTableT<8>::from_flat(2, std::move(rows));
  t.seal(SortOrder::kByV1, kDomain, LaneSealHint::kStream);
  EXPECT_FALSE(t.lane_compressed());
  EXPECT_GT(t.layout().rows, 0u);  // density still observed (telemetry)
  EXPECT_LT(t.layout().density(), 0.5);
}

TEST(LaneCompress, StreamResealUnpacksStoredTable) {
  // kStream promises the dense span fast path to the consumer that
  // follows the seal — even when re-sealing an already packed table
  // (kByV0 -> kByV0V1 is an order relabel, no re-sort).
  auto rows = random_rows<8>(3000, 1, 100, 31);
  ProjTableT<8> t = ProjTableT<8>::from_flat(2, std::move(rows));
  t.seal(SortOrder::kByV0, kDomain, LaneSealHint::kStore);
  ASSERT_TRUE(t.lane_compressed());
  const auto before = t.lane_totals();
  t.seal(SortOrder::kByV0V1, kDomain, LaneSealHint::kStream);
  EXPECT_FALSE(t.lane_compressed());
  EXPECT_EQ(t.lane_totals(), before);
  EXPECT_NO_THROW((void)t.entries());
}

// ---------------------------------------------------------------- wire

TEST(LaneCompressWire, RoundTripIsExactAndOrdered) {
  VirtualCommT<8> comm(3);
  Rng rng(41);
  std::vector<TableEntryT<8>> sent;
  for (int i = 0; i < 200; ++i) {
    TableEntryT<8> e;
    e.key.v[0] = static_cast<VertexId>(rng.below(1000));
    e.key.v[1] = static_cast<VertexId>(rng.below(1000));
    if (i % 5 == 0) e.key.v[2] = static_cast<VertexId>(rng.below(1000));
    e.key.sig = static_cast<Signature>(rng.below(1u << 16));
    // Mix of widths, including the exact u16/u32 boundaries and zero
    // lanes.
    const Count magnitudes[] = {1, 0xFFFFull, 0x10000ull, 0xFFFFFFFFull,
                                0x100000000ull};
    for (int l = 0; l < 8; ++l) {
      if (rng.below(8) < 2) {
        LaneOps<8>::set_lane(e.cnt, l, magnitudes[rng.below(5)]);
      }
    }
    sent.push_back(e);
    comm.send(0, static_cast<std::uint32_t>(i % 3), e);
  }
  comm.exchange();
  // Delivery preserves sender order per destination and decodes exactly.
  std::array<std::size_t, 3> cursor{};
  for (std::size_t i = 0; i < sent.size(); ++i) {
    const auto to = static_cast<std::uint32_t>(i % 3);
    const auto& in = comm.inbox(to);
    ASSERT_GT(in.size(), cursor[to]);
    EXPECT_EQ(in[cursor[to]].key, sent[i].key);
    EXPECT_EQ(in[cursor[to]].cnt, sent[i].cnt);
    ++cursor[to];
  }
  EXPECT_EQ(comm.stats().entries_sent, 200u);
  // The compressed encoding must beat the dense 88-byte row on these
  // sparse rows.
  EXPECT_GT(comm.stats().off_rank_entries, 0u);
  EXPECT_LT(comm.stats().off_rank_bytes(),
            comm.stats().off_rank_entries * comm.stats().entry_bytes);
  EXPECT_GT(comm.stats().wire_lane_density(), 0.0);
}

TEST(LaneCompressWire, ScalarWireFormatUnchanged) {
  VirtualComm comm(2);
  TableEntry e;
  e.key.v[0] = 4;
  e.key.v[1] = 9;
  e.key.sig = 0b101;
  e.cnt = 7;
  comm.send(0, 1, e);
  comm.exchange();
  EXPECT_EQ(comm.stats().off_rank_bytes(),
            sizeof(TableKey) + sizeof(Count));
  ASSERT_EQ(comm.inbox(1).size(), 1u);
  EXPECT_EQ(comm.inbox(1)[0].cnt, 7u);
}

// ------------------------------------------------------------- accum

TEST(LaneCompressAccum, NarrowMatchesWideIncludingOverflowEscape) {
  AccumMapT<4> narrow(16, /*compact=*/true);
  AccumMapT<4> wide(16, /*compact=*/false);
  ASSERT_TRUE(narrow.narrow());
  Rng rng(53);
  for (int i = 0; i < 3000; ++i) {
    TableKey k;
    k.v[0] = static_cast<VertexId>(rng.below(64));
    k.v[1] = static_cast<VertexId>(rng.below(64));
    k.sig = static_cast<Signature>(rng.below(256));
    auto c = LaneOps<4>::zero();
    // Mostly small adds; occasionally a near-u32 add that forces the
    // accumulated lane past 2^32 - 1 (the escape to wide u64 rows).
    const Count big = 0xFFFFFF00ull;
    LaneOps<4>::set_lane(c, static_cast<int>(rng.below(4)),
                         rng.below(1000) == 0 ? big : 1 + rng.below(9));
    narrow.add(k, c);
    wide.add(k, c);
  }
  ASSERT_EQ(narrow.size(), wide.size());
  // take_entries yields wide rows either way; compare via a sealed table.
  ProjTableT<4> tn = ProjTableT<4>::from_map(2, std::move(narrow));
  ProjTableT<4> tw = ProjTableT<4>::from_map(2, std::move(wide));
  tn.seal(SortOrder::kByV0, 64, LaneSealHint::kStream);
  tw.seal(SortOrder::kByV0, 64, LaneSealHint::kStream);
  ASSERT_EQ(tn.size(), tw.size());
  for (std::size_t i = 0; i < tn.size(); ++i) {
    EXPECT_EQ(tn.entries()[i].key, tw.entries()[i].key);
    EXPECT_EQ(tn.entries()[i].cnt, tw.entries()[i].cnt);
  }
}

TEST(LaneCompressAccum, NarrowEscapesOnFirstOverflow) {
  AccumMapT<2> map(16, /*compact=*/true);
  TableKey k;
  k.v[0] = 1;
  k.v[1] = 2;
  auto c = LaneOps<2>::zero();
  LaneOps<2>::set_lane(c, 0, 0xFFFFFFFFull);
  map.add(k, c);
  EXPECT_TRUE(map.narrow());  // exactly at the boundary still fits
  map.add(k, c);              // sum exceeds u32: must escape, not wrap
  EXPECT_FALSE(map.narrow());
  Count seen = 0;
  map.for_each([&](const TableKey&, const LaneOps<2>::Vec& v) {
    seen = LaneOps<2>::lane(v, 0);
  });
  EXPECT_EQ(seen, 0x1FFFFFFFEull);
}

// ------------------------------------------------------ masked appends

/// Key -> summed lane counts, independent of row order, duplicates, and
/// the width the sink happened to hold them in.
template <int B>
std::map<std::array<std::uint64_t, 5>, std::array<Count, B>> flat_totals(
    FlatRowsT<B>&& rows) {
  std::map<std::array<std::uint64_t, 5>, std::array<Count, B>> out;
  for (const auto& e : rows.take_wide()) {
    auto& acc = out[{e.key.v[0], e.key.v[1], e.key.v[2], e.key.v[3],
                     e.key.sig}];
    for (int l = 0; l < B; ++l) acc[l] += LaneOps<B>::lane(e.cnt, l);
  }
  return out;
}

/// The masked append (no materialized masked vector) must agree with the
/// plain append of the materialized masked vector — the already-proven
/// path — for every mode the magnitude drives the sink into.
template <int B>
void run_masked_append_parity(Count magnitude, std::uint64_t seed) {
  Rng rng(seed);
  FlatRowsT<B> masked_sink;
  FlatRowsT<B> plain_sink;
  for (int i = 0; i < 4000; ++i) {
    TableKey k;
    k.v[0] = static_cast<VertexId>(rng.below(48));
    k.v[1] = static_cast<VertexId>(rng.below(48));
    k.sig = static_cast<Signature>(rng.below(256));
    if (rng.below(50) == 0) k.v[2] = 7;  // unpackable: wide fallback
    auto src = LaneOps<B>::zero();
    Count src_hi = 0;
    for (int l = 0; l < B; ++l) {
      if (rng.below(3) == 0) {
        const Count c = 1 + rng.below(magnitude);
        LaneOps<B>::set_lane(src, l, c);
        src_hi |= c;
      }
    }
    const auto m = static_cast<LaneMask>(rng.below(1u << B));
    masked_sink.append_masked(k, src, m, src_hi);
    plain_sink.append(k, LaneOps<B>::masked(src, m));
  }
  EXPECT_EQ(flat_totals(std::move(masked_sink)),
            flat_totals(std::move(plain_sink)));
}

TEST(LaneCompressFlat, MaskedAppendMatchesPlainB2) {
  run_masked_append_parity<2>(1000, 61);          // stays u16
  run_masked_append_parity<2>(100000, 62);        // escalates to u32
  run_masked_append_parity<2>(0x200000000ull, 63);  // escalates to wide
}
TEST(LaneCompressFlat, MaskedAppendMatchesPlainB4) {
  run_masked_append_parity<4>(1000, 71);
  run_masked_append_parity<4>(100000, 72);
  run_masked_append_parity<4>(0x200000000ull, 73);
}
TEST(LaneCompressFlat, MaskedAppendMatchesPlainB8) {
  run_masked_append_parity<8>(1000, 81);
  run_masked_append_parity<8>(100000, 82);
  run_masked_append_parity<8>(0x200000000ull, 83);
}

TEST(LaneCompressFlat, MaskedAppendEscalatesMidAccumulation) {
  // u16 -> u32 -> wide, forced mid-stream; earlier rows must survive each
  // conversion exactly, and a too-big count on a masked-OFF lane must NOT
  // escalate (the masked OR decides, not the raw source row).
  FlatRowsT<4> f;
  TableKey k;
  k.v[0] = 1;
  k.v[1] = 2;
  k.sig = 4;
  auto small = LaneOps<4>::zero();
  LaneOps<4>::set_lane(small, 0, 9);
  f.append_masked(k, small, 0b0001, 9);
  ASSERT_EQ(f.mode(), FlatRowsT<4>::Mode::kU16);

  auto big = LaneOps<4>::zero();
  LaneOps<4>::set_lane(big, 1, 0x12345ull);    // > u16
  LaneOps<4>::set_lane(big, 2, 0x1FFFFFFFFull);  // > u32, but masked off
  f.append_masked(k, big, 0b0010, 0x1FFFFFFFFull);
  EXPECT_EQ(f.mode(), FlatRowsT<4>::Mode::kU32);

  f.append_masked(k, big, 0b0100, 0x1FFFFFFFFull);
  EXPECT_EQ(f.mode(), FlatRowsT<4>::Mode::kWide);

  const auto totals = flat_totals(std::move(f));
  const std::array<std::uint64_t, 5> key{1, 2, kNoVertex, kNoVertex, 4};
  ASSERT_EQ(totals.count(key), 1u);
  const auto& c = totals.at(key);
  EXPECT_EQ(c[0], 9u);
  EXPECT_EQ(c[1], 0x12345ull);
  EXPECT_EQ(c[2], 0x1FFFFFFFFull);
  EXPECT_EQ(c[3], 0u);
}

TEST(LaneCompressFlat, MaskedU16StreamMatchesGenericAppend) {
  // The all-16-bit streaming append (packed key + u16 source row, no
  // width decision) against the generic masked append of the expanded
  // row — including after a mid-stream escalation flips it onto its
  // fallback path.
  Rng rng(91);
  FlatRowsT<8> stream_sink;
  FlatRowsT<8> generic_sink;
  auto emit_u16 = [&](bool escalated) {
    TableKey k;
    k.v[0] = static_cast<VertexId>(rng.below(40));
    k.v[1] = static_cast<VertexId>(rng.below(40));
    k.sig = static_cast<Signature>(rng.below(256));
    PackedFlatRowT<8, std::uint16_t> src;
    src.k = pack_key(k);
    auto expanded = LaneOps<8>::zero();
    for (int l = 0; l < 8; ++l) {
      src.c[l] = rng.below(3) == 0
                     ? static_cast<std::uint16_t>(1 + rng.below(0xFFFF))
                     : std::uint16_t{0};
      LaneOps<8>::set_lane(expanded, l, src.c[l]);
    }
    const auto m = static_cast<LaneMask>(rng.below(256));
    stream_sink.append_masked_u16(src.k, src, m);
    generic_sink.append_masked(k, expanded, m, std::uint64_t{0xFFFF});
    (void)escalated;
  };
  for (int i = 0; i < 3000; ++i) emit_u16(false);
  // Escalate both sinks out of u16 mode with one oversized generic
  // emission, then keep streaming: append_masked_u16 must take its
  // expand-and-fall-through branch and still agree.
  TableKey bigk;
  bigk.v[0] = 3;
  bigk.v[1] = 5;
  bigk.sig = 8;
  auto bigc = LaneOps<8>::zero();
  LaneOps<8>::set_lane(bigc, 0, 0x99999ull);
  stream_sink.append_masked(bigk, bigc, 0b1, 0x99999ull);
  generic_sink.append_masked(bigk, bigc, 0b1, 0x99999ull);
  ASSERT_NE(stream_sink.mode(), FlatRowsT<8>::Mode::kU16);
  for (int i = 0; i < 1000; ++i) emit_u16(true);
  EXPECT_EQ(flat_totals(std::move(stream_sink)),
            flat_totals(std::move(generic_sink)));
}

TEST(LaneCompressFlat, CombiningCacheU16OverflowFallsThroughToSeal) {
  // Repeated same-key u16 appends whose running sum outgrows u16: the
  // combining cache must fall through to duplicate rows (not wrap), and
  // the sealing merge must escalate the buffer and sum exactly.
  FlatRowsT<2> f;
  TableKey k;
  k.v[0] = 6;
  k.v[1] = 9;
  k.sig = 2;
  PackedFlatRowT<2, std::uint16_t> src;
  src.k = pack_key(k);
  src.c = {0x7000, 0};
  const int reps = 40;  // 40 * 0x7000 = 0x118000 > u16
  for (int i = 0; i < reps; ++i) f.append_masked_u16(src.k, src, 0b01);
  ASSERT_TRUE(f.sort_by_slot(1, 16));
  f.merge_duplicates();
  EXPECT_FALSE(f.mode() == FlatRowsT<2>::Mode::kU16);
  const auto totals = flat_totals(std::move(f));
  const std::array<std::uint64_t, 5> key{6, 9, kNoVertex, kNoVertex, 2};
  ASSERT_EQ(totals.count(key), 1u);
  EXPECT_EQ(totals.at(key)[0], static_cast<Count>(reps) * 0x7000ull);
  EXPECT_EQ(totals.at(key)[1], 0u);
}

// ------------------------------------------------------------ lane simd

TEST(LaneSimd, Avx2KernelsMatchScalarOps) {
  if (!lane_simd_avx2_supported()) {
    GTEST_SKIP() << "no AVX2 on this CPU";
  }
#if CCBT_LANE_SIMD_X86
  // Direct kernel-vs-LaneOps comparison: wrapping products, boundary
  // masks, zero vectors — the dispatch front end must be bit-identical
  // whichever side it picks.
  Rng rng(101);
  for (int iter = 0; iter < 2000; ++iter) {
    std::array<Count, 8> a{};
    std::array<Count, 8> b{};
    for (int l = 0; l < 8; ++l) {
      const int shape = static_cast<int>(rng.below(4));
      a[l] = shape == 0 ? 0 : rng.below(~std::uint64_t{0});
      b[l] = shape == 1 ? 0 : rng.below(~std::uint64_t{0});
    }
    const auto m = static_cast<LaneMask>(rng.below(256));

    std::array<Count, 8> got{};
    detail_simd::mul_masked_avx2(a.data(), b.data(), got.data(), m, 2);
    EXPECT_EQ(got, LaneOps<8>::mul_masked(a, b, m));

    detail_simd::masked_avx2(a.data(), got.data(), m, 2);
    EXPECT_EQ(got, LaneOps<8>::masked(a, m));

    std::array<Count, 8> d = a;
    std::array<Count, 8> dref = a;
    detail_simd::add_avx2(d.data(), b.data(), 2);
    LaneOps<8>::add(dref, b);
    EXPECT_EQ(d, dref);

    EXPECT_EQ(detail_simd::is_zero_avx2(a.data(), 2),
              LaneOps<8>::is_zero(a));

    LaneMask ref = 0;
    for (int l = 0; l < 8; ++l) {
      ref |= static_cast<LaneMask>(a[l] != 0) << l;
    }
    EXPECT_EQ(detail_simd::nonzero_mask_avx2(a.data(), 2), ref);
  }
  // All-zero and all-ones edges.
  std::array<Count, 8> zero{};
  EXPECT_TRUE(detail_simd::is_zero_avx2(zero.data(), 2));
  EXPECT_EQ(detail_simd::nonzero_mask_avx2(zero.data(), 2), 0u);
#endif
}

// ------------------------------------------------------- packed merge

/// Shared fixture pieces for the merge parity tests: a B-lane context
/// whose colorings the pair-compatibility test consults.
template <int B>
struct MergeCx {
  CsrGraph g;
  std::vector<Coloring> lanes;
  ColoringBatch chi;
  DegreeOrder order;
  ExecOptions opts;
  ExecContext cx;

  explicit MergeCx(std::uint64_t seed, VertexId n = 64)
      : g(erdos_renyi(n, 4 * n, seed)),
        lanes(make_lanes(n, seed)),
        chi(std::span<const Coloring>(lanes)),
        order(g),
        cx{g, chi, order, BlockPartition(n, 2), nullptr, opts} {}

  static std::vector<Coloring> make_lanes(VertexId n, std::uint64_t seed) {
    std::vector<Coloring> ls;
    for (int l = 0; l < B; ++l) ls.emplace_back(n, 8, seed * 131 + l);
    return ls;
  }
};

/// One slot-0 bucket of coherent half-path rows keyed (u, v, sig),
/// sorted in the sealed kByV0V1 order, as both the dense entries and the
/// equivalent packed narrow rows. Signatures mix lane-consistent pairs
/// (so emissions actually happen) with random bytes (so the prefilter
/// rejects), counts live only on `allowed` lanes at `mag` magnitude, and
/// a few rows are all-zero (the dead-row skip).
template <int B, typename W>
std::pair<std::vector<TableEntryT<B>>, std::vector<PackedFlatRowT<B, W>>>
merge_bucket_rows(const ColoringBatch& chi, VertexId u, Count mag,
                  LaneMask allowed, Rng& rng) {
  std::vector<TableEntryT<B>> dense(300);
  for (auto& e : dense) {
    e.key.v[0] = u;
    e.key.v[1] = static_cast<VertexId>(rng.below(20));
    const int cl = static_cast<int>(rng.below(B));
    e.key.sig = rng.below(3) == 0
                    ? static_cast<Signature>(rng.below(256))
                    : static_cast<Signature>(chi.bit(e.key.v[0], cl) |
                                             chi.bit(e.key.v[1], cl) |
                                             (rng.below(2) == 0
                                                  ? Signature{1}
                                                        << rng.below(8)
                                                  : Signature{0}));
    if (rng.below(10) != 0) {
      for (int l = 0; l < B; ++l) {
        if (((allowed >> l) & 1u) != 0 && rng.below(2) == 0) {
          LaneOps<B>::set_lane(e.cnt, l, 1 + rng.below(mag));
        }
      }
    }
  }
  std::sort(dense.begin(), dense.end(), [](const auto& a, const auto& b) {
    return pack_key(a.key) < pack_key(b.key);
  });
  std::vector<PackedFlatRowT<B, W>> packed(dense.size());
  for (std::size_t i = 0; i < dense.size(); ++i) {
    packed[i].k = pack_key(dense[i].key);
    for (int l = 0; l < B; ++l) {
      packed[i].c[l] = static_cast<W>(LaneOps<B>::lane(dense[i].cnt, l));
    }
  }
  return {std::move(dense), std::move(packed)};
}

/// merge_bucket_packed against merge_bucket on the same bucket pair:
/// identical emission sequence (keys, counts, order) for the given width
/// pairing and live-lane shapes.
template <int B, typename WP, typename WM>
void run_packed_merge_parity(std::uint64_t seed, Count pmag, Count mmag,
                             LaneMask plus_lanes, LaneMask minus_lanes,
                             bool expect_emissions) {
  MergeCx<B> f(seed);
  Rng rng(seed);
  const VertexId u = 5;
  auto [pd, pp] = merge_bucket_rows<B, WP>(f.chi, u, pmag, plus_lanes, rng);
  auto [md, mp] = merge_bucket_rows<B, WM>(f.chi, u, mmag, minus_lanes, rng);

  using Emit = std::pair<TableKey, typename LaneOps<B>::Vec>;
  for (const int arity : {2, 1, 0}) {
    MergeSpec spec;
    spec.out_arity = arity;
    spec.out[0] = {0, 0};
    spec.out[1] = {1, 1};
    std::vector<Emit> dense_out, packed_out;
    merge_bucket<B>(f.cx, std::span<const TableEntryT<B>>(pd),
                    std::span<const TableEntryT<B>>(md), spec,
                    [&](const TableKey& k, const auto& c) {
                      dense_out.emplace_back(k, c);
                    });
    merge_bucket_packed<B>(f.cx, std::span<const PackedFlatRowT<B, WP>>(pp),
                           std::span<const PackedFlatRowT<B, WM>>(mp), spec,
                           [&](const TableKey& k, const auto& c) {
                             packed_out.emplace_back(k, c);
                           });
    ASSERT_EQ(dense_out.size(), packed_out.size()) << "arity " << arity;
    for (std::size_t i = 0; i < dense_out.size(); ++i) {
      EXPECT_EQ(dense_out[i].first, packed_out[i].first) << "row " << i;
      EXPECT_EQ(dense_out[i].second, packed_out[i].second) << "row " << i;
    }
    if (arity == 2) {
      EXPECT_EQ(!dense_out.empty(), expect_emissions);
    }
  }
}

TEST(PackedMerge, KernelMatchesDenseU16xU16) {
  run_packed_merge_parity<8, std::uint16_t, std::uint16_t>(
      301, 900, 900, 0xFF, 0xFF, true);
  run_packed_merge_parity<4, std::uint16_t, std::uint16_t>(
      302, 900, 900, 0xF, 0xF, true);
  run_packed_merge_parity<2, std::uint16_t, std::uint16_t>(
      303, 900, 900, 0x3, 0x3, true);
}

TEST(PackedMerge, KernelMatchesDenseMixedWidths) {
  // u16 x u32 both ways, and u32 x u32 with near-boundary counts whose
  // products stress the no-wrap claim (0xFFFFFFFF^2 < 2^64).
  run_packed_merge_parity<8, std::uint16_t, std::uint32_t>(
      311, 0xFFFF, 0xFFFFFFFFull, 0xFF, 0xFF, true);
  run_packed_merge_parity<8, std::uint32_t, std::uint16_t>(
      312, 0xFFFFFFFFull, 0xFFFF, 0xFF, 0xFF, true);
  run_packed_merge_parity<8, std::uint32_t, std::uint32_t>(
      313, 0xFFFFFFFFull, 0xFFFFFFFFull, 0xFF, 0xFF, true);
}

TEST(PackedMerge, DisjointLiveLanesEmitNothingOnBothPaths) {
  // Plus rows live only in the low half-lanes, minus rows only in the
  // high half: every pair fails the live-lane intersection, so both
  // kernels must emit nothing (and agree on that).
  run_packed_merge_parity<8, std::uint16_t, std::uint16_t>(
      321, 900, 900, 0x0F, 0xF0, false);
  run_packed_merge_parity<4, std::uint16_t, std::uint16_t>(
      322, 900, 900, 0x3, 0xC, false);
}

/// merge_halves with packed_merge toggled must reach the same sink —
/// `wide_escape` poisons the plus half with an unpackable key first, so
/// the packed run exercises the dense-fallback dispatch instead.
template <int B>
void run_merge_halves_parity(std::uint64_t seed, bool wide_escape) {
  using Vec = typename LaneOps<B>::Vec;
  std::vector<std::pair<TableKey, Vec>> prows, mrows;
  {
    MergeCx<B> f(seed);
    Rng rng(seed + 1);
    for (const VertexId u : {3u, 5u, 9u, 11u, 20u}) {
      auto [pd, pp] =
          merge_bucket_rows<B, std::uint16_t>(f.chi, u, 900, 0xFF, rng);
      auto [md, mp] =
          merge_bucket_rows<B, std::uint16_t>(f.chi, u, 900, 0xFF, rng);
      for (const auto& e : pd) prows.emplace_back(e.key, e.cnt);
      for (const auto& e : md) mrows.emplace_back(e.key, e.cnt);
    }
    if (wide_escape) {
      TableKey k;
      k.v[0] = 3;
      k.v[1] = 4;
      k.v[2] = 6;  // unpackable: drives the flat sink wide
      k.sig = 0x11;
      Vec c{};
      LaneOps<B>::set_lane(c, 0, 2);
      prows.emplace_back(k, c);
    }
  }
  MergeSpec spec;
  spec.out_arity = 2;
  spec.out[0] = {0, 0};
  spec.out[1] = {1, 1};
  std::array<std::vector<std::pair<std::array<std::uint64_t, 5>,
                                   std::array<Count, B>>>,
             2>
      results;
  for (const bool packed : {false, true}) {
    MergeCx<B> f(seed);
    f.cx.opts.packed_merge = packed;
    FlatRowsT<B> pf, mf;
    for (const auto& [k, c] : prows) pf.append(k, c);
    for (const auto& [k, c] : mrows) mf.append(k, c);
    ProjTableT<B> plus = ProjTableT<B>::from_packed(2, std::move(pf));
    ProjTableT<B> minus = ProjTableT<B>::from_packed(2, std::move(mf));
    AccumMapT<B> sink(16, true);
    merge_halves<B>(f.cx, plus, minus, spec, sink);
    auto& out = results[packed ? 1 : 0];
    sink.for_each([&](const TableKey& k, const Vec& c) {
      std::array<Count, B> cs{};
      for (int l = 0; l < B; ++l) cs[l] = LaneOps<B>::lane(c, l);
      out.emplace_back(
          std::array<std::uint64_t, 5>{k.v[0], k.v[1], k.v[2], k.v[3],
                                       k.sig},
          cs);
    });
    std::sort(out.begin(), out.end());
  }
  EXPECT_FALSE(results[0].empty());
  EXPECT_EQ(results[0], results[1]);
}

TEST(PackedMerge, MergeHalvesPackedMatchesDenseB8) {
  run_merge_halves_parity<8>(331, /*wide_escape=*/false);
}
TEST(PackedMerge, MergeHalvesPackedMatchesDenseB2) {
  run_merge_halves_parity<2>(332, /*wide_escape=*/false);
}
TEST(PackedMerge, MergeHalvesWideEscapeFallsBackIdentically) {
  run_merge_halves_parity<8>(333, /*wide_escape=*/true);
}

TEST(PackedMergeEngine, SessionAgreesWithDenseMergeLaneForLane) {
  // Whole-pipeline cross-check on merge-heavy (cycle) queries: per-lane
  // colorful counts cannot depend on the merge path taken.
  const CsrGraph g = erdos_renyi(60, 260, 35);
  std::vector<std::uint64_t> seeds{7300, 7301, 7302, 7303,
                                   7304, 7305, 7306, 7307};
  for (const QueryGraph& q : {q_cycle(5), q_cycle(6), q_dros()}) {
    ExecOptions on;
    on.packed_merge = true;
    ExecOptions off;
    off.packed_merge = false;
    CountingSession son(g, q, make_plan(q), on);
    CountingSession soff(g, q, make_plan(q), off);
    const ExecStats a = son.count_colorful_seeded(
        std::span<const std::uint64_t>(seeds.data(), 8));
    const ExecStats b = soff.count_colorful_seeded(
        std::span<const std::uint64_t>(seeds.data(), 8));
    for (int l = 0; l < 8; ++l) {
      EXPECT_EQ(a.colorful_lane[l], b.colorful_lane[l])
          << q.name() << " lane " << l;
    }
  }
}

// -------------------------------------------------------- end to end

TEST(LaneCompressEngine, CompressedAndDenseRunsAgreeLaneForLane) {
  const CsrGraph g = erdos_renyi(60, 260, 9);
  for (const QueryGraph& q : {q_glet2(), q_wiki(), q_cycle(5)}) {
    ExecOptions on;
    on.lane_compress = true;
    ExecOptions off;
    off.lane_compress = false;
    CountingSession son(g, q, make_plan(q), on);
    CountingSession soff(g, q, make_plan(q), off);
    std::vector<std::uint64_t> seeds{900, 901, 902, 903, 904, 905, 906,
                                     907};
    const ExecStats a = son.count_colorful_seeded(
        std::span<const std::uint64_t>(seeds.data(), 8));
    const ExecStats b = soff.count_colorful_seeded(
        std::span<const std::uint64_t>(seeds.data(), 8));
    for (int l = 0; l < 8; ++l) {
      EXPECT_EQ(a.colorful_lane[l], b.colorful_lane[l])
          << q.name() << " lane " << l;
    }
    // The compressed run actually packed something (child tables exist
    // for these queries) and observed its density.
    EXPECT_GT(a.lanes.rows, 0u);
    EXPECT_EQ(b.lanes.rows_packed, 0u);
  }
}

TEST(LaneCompressEngine, DistributedAgreesWithSharedUnderCompression) {
  const CsrGraph g = erdos_renyi(40, 170, 15);
  const QueryGraph q = q_glet2();
  const Plan plan = make_plan(q);
  ExecOptions opts;
  std::vector<Coloring> lanes;
  for (int l = 0; l < 8; ++l) {
    lanes.emplace_back(g.num_vertices(), q.num_nodes(), 1200 + l);
  }
  const ColoringBatch batch(lanes);
  CountingSession session(g, q, plan, opts);
  const ExecStats shared = session.count_colorful(batch);
  const DistStats dist =
      run_plan_distributed(g, plan.tree, batch, /*ranks=*/3, opts);
  for (int l = 0; l < 8; ++l) {
    EXPECT_EQ(dist.colorful_lane[l], shared.colorful_lane[l]) << l;
  }
  // The wire carried lane-compressed rows and accounted their density.
  EXPECT_GT(dist.transport.lane_slots_sent, 0u);
  EXPECT_GT(dist.transport.wire_lane_density(), 0.0);
  EXPECT_LE(dist.transport.off_rank_bytes(),
            dist.transport.off_rank_entries * dist.transport.entry_bytes);
}

}  // namespace
}  // namespace ccbt
