// Planted-motif ground truth: construction invariants, exact-count
// agreement, and end-to-end estimator recovery.

#include <gtest/gtest.h>

#include "ccbt/core/color_coding.hpp"
#include "ccbt/core/estimator.hpp"
#include "ccbt/core/exact.hpp"
#include "ccbt/core/planted.hpp"
#include "ccbt/query/automorphism.hpp"
#include "ccbt/query/catalog.hpp"

namespace ccbt {
namespace {

TEST(Planted, VertexCountAndEdges) {
  const QueryGraph q = q_cycle(5);
  const PlantedGraph p = plant_copies(q, 3, 40, 0, 1);
  EXPECT_EQ(p.graph.num_vertices(), 40u + 3u * 5u);
  EXPECT_EQ(p.graph.num_edges(), 3u * 5u);  // host is edgeless
  EXPECT_EQ(p.planted_matches, 3u * count_automorphisms(q));
}

TEST(Planted, ZeroCopies) {
  const PlantedGraph p = plant_copies(q_cycle(3), 0, 10, 0, 2);
  EXPECT_EQ(p.graph.num_vertices(), 10u);
  EXPECT_EQ(p.planted_matches, 0u);
  EXPECT_EQ(count_matches_exact(p.graph, q_cycle(3)), 0u);
}

TEST(Planted, ExactCountEqualsGroundTruthOnCleanHost) {
  for (const char* name : {"triangle", "glet1", "glet2", "wiki"}) {
    const QueryGraph q = named_query(name);
    const PlantedGraph p = plant_copies(q, 4, 25, 0, 3);
    EXPECT_EQ(count_matches_exact(p.graph, q), p.planted_matches) << name;
  }
}

TEST(Planted, NoiseOnlyAddsMatches) {
  const QueryGraph q = q_cycle(4);
  const PlantedGraph clean = plant_copies(q, 3, 30, 0, 4);
  const PlantedGraph noisy = plant_copies(q, 3, 30, 60, 4);
  EXPECT_GE(count_matches_exact(noisy.graph, q), clean.planted_matches);
}

TEST(Planted, EngineColorfulNeverExceedsPlantedMatches) {
  // Colorful matches are a subset of matches on a clean host.
  const QueryGraph q = named_query("glet2");
  const PlantedGraph p = plant_copies(q, 5, 20, 0, 5);
  const Coloring chi(p.graph.num_vertices(), q.num_nodes(), 17);
  EXPECT_LE(count_colorful_matches(p.graph, q, chi), p.planted_matches);
}

TEST(Planted, EstimatorRecoversGroundTruth) {
  // End-to-end Section 2/8.6 validation with a known answer: averaging
  // scaled colorful counts over trials converges to copies * aut(Q).
  const QueryGraph q = q_cycle(4);
  const PlantedGraph p = plant_copies(q, 6, 20, 0, 6);
  EstimatorOptions opts;
  opts.trials = 60;
  opts.seed = 99;
  const EstimatorResult r = estimate_matches(p.graph, q, opts);
  const double truth = static_cast<double>(p.planted_matches);
  EXPECT_NEAR(r.matches, truth, 0.35 * truth);
}

}  // namespace
}  // namespace ccbt
