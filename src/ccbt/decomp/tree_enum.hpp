#pragma once
// Enumeration of decomposition trees.
//
// A query admits many decomposition trees (Section 6 reports up to 13x
// runtime difference between them). The enumerator explores every
// contraction order, pruning symmetric candidates (equal signatures) and
// deduplicating finished trees by canonical serialization.

#include <cstddef>
#include <vector>

#include "ccbt/decomp/decompose.hpp"

namespace ccbt {

struct EnumLimits {
  std::size_t max_trees = 512;   // distinct trees to return
  std::size_t max_steps = 50000; // contraction states to explore
};

std::vector<DecompTree> enumerate_decompositions(const QueryGraph& q,
                                                 const EnumLimits& limits = {});

}  // namespace ccbt
