#pragma once
// Projection tables (Section 4.2): a synopsis of the colorful matches of a
// subquery, keyed by the images of its boundary nodes (plus tracked
// vertices during DB path construction) and the color signature.
//
// Lifecycle: entries are accumulated through an AccumMap during a join,
// then sealed into a sorted dense vector. Sealing with a known key domain
// (the data graph's vertex count) additionally builds a CSR-style bucket
// index over the grouping slot, so group(slot, v) is a single offset
// lookup instead of two binary searches. See README.md in this directory
// for the memory layout, the lane dimension, and the threading model.
//
// The table is parameterized on the batch width B: entry counts are
// per-lane vectors (see table_key.hpp). Sorting, grouping and the bucket
// index depend only on keys, so all widths share one implementation;
// `ProjTable` aliases the scalar B = 1 instantiation.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "ccbt/table/accum_map.hpp"
#include "ccbt/table/table_key.hpp"

namespace ccbt {

/// Sort orders used by the join procedures.
enum class SortOrder : std::uint8_t {
  kUnsorted,
  kByV0,    // group by slot 0 (child-table lookups by first boundary)
  kByV0V1,  // group by (slot 0, slot 1) (half-cycle merge joins)
  kByV1,    // group by slot 1 (frontier-grouped extensions)
};

/// The key slot a sort order groups by (-1 for kUnsorted).
inline constexpr int group_slot(SortOrder order) {
  switch (order) {
    case SortOrder::kByV0:
    case SortOrder::kByV0V1: return 0;
    case SortOrder::kByV1: return 1;
    case SortOrder::kUnsorted: break;
  }
  return -1;
}

namespace detail {

template <typename E>
bool less_by_v0(const E& a, const E& b) {
  if (a.key.v[0] != b.key.v[0]) return a.key.v[0] < b.key.v[0];
  if (a.key.v[1] != b.key.v[1]) return a.key.v[1] < b.key.v[1];
  if (a.key.v[2] != b.key.v[2]) return a.key.v[2] < b.key.v[2];
  if (a.key.v[3] != b.key.v[3]) return a.key.v[3] < b.key.v[3];
  return a.key.sig < b.key.sig;
}

template <typename E>
bool less_by_v1(const E& a, const E& b) {
  if (a.key.v[1] != b.key.v[1]) return a.key.v[1] < b.key.v[1];
  return less_by_v0(a, b);
}

/// Tie-break inside one slot-0 bucket (slot 0 equal by construction).
template <typename E>
bool less_tail_v0(const E& a, const E& b) {
  if (a.key.v[1] != b.key.v[1]) return a.key.v[1] < b.key.v[1];
  if (a.key.v[2] != b.key.v[2]) return a.key.v[2] < b.key.v[2];
  if (a.key.v[3] != b.key.v[3]) return a.key.v[3] < b.key.v[3];
  return a.key.sig < b.key.sig;
}

/// Tie-break inside one slot-1 bucket (slot 1 equal by construction).
template <typename E>
bool less_tail_v1(const E& a, const E& b) {
  if (a.key.v[0] != b.key.v[0]) return a.key.v[0] < b.key.v[0];
  if (a.key.v[2] != b.key.v[2]) return a.key.v[2] < b.key.v[2];
  if (a.key.v[3] != b.key.v[3]) return a.key.v[3] < b.key.v[3];
  return a.key.sig < b.key.sig;
}

/// Whether a counting partition over `domain` buckets pays off for n
/// entries: the offsets array must not dominate the sort itself. Applies
/// to explicit domains too — a tiny late-stage table on a huge graph must
/// not pay O(num_vertices) per seal.
inline bool domain_worthwhile(std::size_t n, VertexId domain) {
  return domain > 0 &&
         std::uint64_t{domain} <=
             8 * std::uint64_t{std::max<std::size_t>(n, 1)} + 1024;
}

/// Smallest detectable domain for an index-less seal: max slot value + 1,
/// or 0 when the values are too sparse (or are kNoVertex) for a counting
/// partition to pay off.
template <typename E>
VertexId detect_domain(const std::vector<E>& entries, int slot) {
  VertexId max_v = 0;
  for (const E& e : entries) max_v = std::max(max_v, e.key.v[slot]);
  if (max_v == std::numeric_limits<VertexId>::max()) return 0;  // kNoVertex
  const std::uint64_t domain = std::uint64_t{max_v} + 1;
  if (!domain_worthwhile(entries.size(), static_cast<VertexId>(domain))) {
    return 0;
  }
  return static_cast<VertexId>(domain);
}

}  // namespace detail

template <int B>
class ProjTableT {
 public:
  using Entry = TableEntryT<B>;
  using Vec = typename LaneOps<B>::Vec;

  ProjTableT() = default;

  /// arity = number of meaningful leading vertex slots (0..4).
  explicit ProjTableT(int arity) : arity_(arity) {}

  static ProjTableT from_map(int arity, AccumMapT<B>&& map) {
    ProjTableT t(arity);
    t.entries_ = map.take_entries();
    return t;
  }

  /// Adopt rows that may contain duplicate keys (the batched engine's
  /// graph-driven primitives emit without hashing): counts of equal keys
  /// are summed by the next seal(). Until then the table behaves like a
  /// multiset — joins and totals are bilinear, so duplicate rows are
  /// semantically identical to their merged sum.
  static ProjTableT from_flat(int arity, std::vector<Entry>&& rows) {
    ProjTableT t(arity);
    t.entries_ = std::move(rows);
    t.dedup_pending_ = !t.entries_.empty();
    return t;
  }

  /// Whether rows with duplicate keys may still be present (cleared by
  /// the first sorting seal).
  bool dedup_pending() const { return dedup_pending_; }

  int arity() const { return arity_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  std::span<const Entry> entries() const { return entries_; }

  /// Total lane-0 count over all entries (used at the root for B = 1).
  Count total() const {
    Count sum = 0;
    for (const auto& e : entries_) sum += LaneOps<B>::lane(e.cnt, 0);
    return sum;
  }

  /// Per-lane totals over all entries (the root's colorful counts).
  Vec lane_totals() const {
    Vec sum = LaneOps<B>::zero();
    for (const auto& e : entries_) LaneOps<B>::add(sum, e.cnt);
    return sum;
  }

  /// Sort entries for merge joins; remembers the order (no-op if sorted;
  /// kByV0 and kByV0V1 share one comparator, so converting between them is
  /// a relabel). `domain` is the exclusive upper bound on the grouping
  /// slot's values (the data graph's vertex count): when positive — or
  /// when a small bound can be detected from the data — sealing runs a
  /// stable counting partition on the grouping slot (O(n + domain) plus
  /// tiny per-bucket sorts) and keeps the bucket offsets as an O(1) group
  /// index. With domain 0 and no detectable bound it falls back to a
  /// comparison sort and group() uses binary search.
  void seal(SortOrder order, VertexId domain = 0);
  SortOrder order() const { return order_; }

  /// Whether group() resolves through the O(1) bucket index.
  bool has_bucket_index() const { return !bucket_off_.empty(); }

  /// Contiguous range of entries whose slot `slot` equals v; requires the
  /// matching seal order (kByV0 for slot 0, kByV1 for slot 1). O(1) when
  /// the bucket index covers `slot`, two binary searches otherwise.
  std::span<const Entry> group(int slot, VertexId v) const {
    if (slot == index_slot_) {
      if (v >= domain_) return {};
      return {entries_.data() + bucket_off_[v],
              static_cast<std::size_t>(bucket_off_[v + 1] - bucket_off_[v])};
    }
    return group_by_search(slot, v);
  }

  /// Swap slots 0 and 1 in every key — the transpose of Section 5.2
  /// ("the boundary tables are transpose of each other"). Invalidates the
  /// seal order.
  ProjTableT transposed() const {
    ProjTableT out(arity_);
    out.dedup_pending_ = dedup_pending_;
    out.entries_.reserve(entries_.size());
    for (const auto& e : entries_) {
      Entry t = e;
      std::swap(t.key.v[0], t.key.v[1]);
      out.entries_.push_back(t);
    }
    return out;
  }

  /// Sum out every slot except slot 0 (projection to a unary table), or to
  /// arity 0. Used when a cycle's diagonal split must be re-aggregated to
  /// the block's true boundary keys.
  ProjTableT aggregated(int new_arity) const {
    AccumMapT<B> map(entries_.size());
    for (const auto& e : entries_) {
      TableKey key;
      for (int s = 0; s < new_arity; ++s) key.v[s] = e.key.v[s];
      key.sig = e.key.sig;
      map.add(key, e.cnt);
    }
    return ProjTableT::from_map(new_arity, std::move(map));
  }

  void push_unchecked(const Entry& e) {
    entries_.push_back(e);
    drop_index();
  }

 private:
  std::span<const Entry> group_by_search(int slot, VertexId v) const {
    auto key_slot = [slot](const Entry& e) { return e.key.v[slot]; };
    auto lo = std::partition_point(
        entries_.begin(), entries_.end(),
        [&](const Entry& e) { return key_slot(e) < v; });
    auto hi = std::partition_point(
        lo, entries_.end(), [&](const Entry& e) { return key_slot(e) <= v; });
    return {entries_.data() + (lo - entries_.begin()),
            static_cast<std::size_t>(hi - lo)};
  }

  /// Stable counting partition by `slot` over [0, domain), then sort each
  /// bucket by the remaining key fields; keeps the offsets as the index.
  void bucket_sort(int slot, VertexId domain);

  /// Entries already sorted for `order_`; (re)build the offset index only.
  void build_index(int slot, VertexId domain);

  /// After the counting partition: buckets are independent, sort each by
  /// the remaining key fields. Flat-built tables (duplicates pending) use
  /// an unstable sort — the tail order is a total order over the full
  /// key, so equal keys are about to be merged and stability buys
  /// nothing, while std::sort avoids stable_sort's buffer traffic on the
  /// wide lane-vector rows.
  void finish_buckets(int slot, const std::vector<std::uint32_t>& off) {
    auto tail_less = slot == 0 ? detail::less_tail_v0<Entry>
                               : detail::less_tail_v1<Entry>;
    const std::size_t domain = off.size() - 1;
    const std::size_t n = entries_.size();
    (void)n;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 1024) if (n > (1u << 15))
#endif
    for (std::size_t v = 0; v < domain; ++v) {
      const std::uint32_t lo = off[v];
      const std::uint32_t hi = off[v + 1];
      if (hi - lo > 1) {
        if (dedup_pending_) {
          std::sort(entries_.begin() + lo, entries_.begin() + hi, tail_less);
        } else {
          std::stable_sort(entries_.begin() + lo, entries_.begin() + hi,
                           tail_less);
        }
      }
    }
  }

  void drop_index() {
    bucket_off_.clear();
    index_slot_ = -1;
    domain_ = 0;
  }

  /// Sum runs of equal keys after a full-key sort (flat-built tables).
  void merge_duplicates() {
    std::size_t w = 0;
    std::size_t i = 0;
    while (i < entries_.size()) {
      Entry acc = entries_[i];
      std::size_t j = i + 1;
      while (j < entries_.size() && entries_[j].key == acc.key) {
        LaneOps<B>::add(acc.cnt, entries_[j].cnt);
        ++j;
      }
      entries_[w++] = acc;
      i = j;
    }
    entries_.resize(w);
  }

  int arity_ = 0;
  SortOrder order_ = SortOrder::kUnsorted;
  bool dedup_pending_ = false;
  std::vector<Entry> entries_;

  // CSR bucket index over the grouping slot: entries with key slot value v
  // occupy [bucket_off_[v], bucket_off_[v + 1]). Empty when not built.
  std::vector<std::uint32_t> bucket_off_;
  int index_slot_ = -1;
  VertexId domain_ = 0;
};

template <int B>
void ProjTableT<B>::seal(SortOrder order, VertexId domain) {
  if (order == SortOrder::kUnsorted) {
    order_ = order;
    drop_index();
    return;
  }
  const int slot = group_slot(order);
  // kByV0 sorting is a refinement that also groups by (v0, v1): both
  // orders share one comparator, so converting between them (and staying
  // put) never re-sorts — at most the index is (re)built.
  const bool sorted_already = order_ == order || group_slot(order_) == slot;
  if (!detail::domain_worthwhile(entries_.size(), domain)) {
    domain = detail::detect_domain(entries_, slot);
  }
  if (sorted_already) {
    order_ = order;
    if (!has_bucket_index() || index_slot_ != slot) {
      if (domain > 0 &&
          entries_.size() < std::numeric_limits<std::uint32_t>::max()) {
        build_index(slot, domain);
      }
    }
    return;
  }
  drop_index();
  if (domain > 0 &&
      entries_.size() < std::numeric_limits<std::uint32_t>::max()) {
    bucket_sort(slot, domain);
  } else {
    std::stable_sort(entries_.begin(), entries_.end(),
                     slot == 0 ? detail::less_by_v0<Entry>
                               : detail::less_by_v1<Entry>);
  }
  // Both sort paths leave entries in full-key order, so flat-built rows
  // with equal keys are adjacent: one linear pass sums them, then the
  // bucket index (now stale) is recounted over the merged rows.
  if (dedup_pending_) {
    merge_duplicates();
    dedup_pending_ = false;
    if (has_bucket_index()) {
      const VertexId d = domain_;
      drop_index();
      build_index(slot, d);
    }
  }
  order_ = order;
}

template <int B>
void ProjTableT<B>::build_index(int slot, VertexId domain) {
  std::vector<std::uint32_t> off(static_cast<std::size_t>(domain) + 1, 0);
  for (const Entry& e : entries_) {
    const VertexId v = e.key.v[slot];
    if (v >= domain) return;  // out-of-domain key: keep binary search
    ++off[v + 1];
  }
  for (std::size_t v = 1; v <= domain; ++v) off[v] += off[v - 1];
  bucket_off_ = std::move(off);
  index_slot_ = slot;
  domain_ = domain;
}

template <int B>
void ProjTableT<B>::bucket_sort(int slot, VertexId domain) {
  const std::size_t n = entries_.size();
  std::vector<std::uint32_t> off(static_cast<std::size_t>(domain) + 1, 0);

#ifdef _OPENMP
  // Parallel counting pass + stable scatter with per-chunk histograms:
  // the input splits into a fixed number of contiguous chunks, each
  // chunk counts into its own histogram, the per-bucket cursors are laid
  // out so chunk c's share of bucket v starts after chunks < c (chunks
  // are in input order, so the scatter stays stable), and each chunk then
  // scatters independently. Work is distributed over chunk INDICES with
  // `omp for`, so the result is identical for any team size the runtime
  // actually delivers (dynamic teams, nested regions, 1 core). Gated on
  // dense-ish domains so the histograms (chunks x domain u32) stay
  // within the table's own footprint.
  const int max_threads = omp_get_max_threads();
  if (max_threads > 1 && n >= (1u << 16) && domain <= n) {
    const int nchunks = max_threads;
    const std::size_t chunk = (n + nchunks - 1) / nchunks;
    std::vector<std::vector<std::uint32_t>> hist(nchunks);
    bool out_of_domain = false;
#pragma omp parallel for schedule(static, 1) reduction(|| : out_of_domain)
    for (int c = 0; c < nchunks; ++c) {
      const std::size_t lo = std::min(n, c * chunk);
      const std::size_t hi = std::min(n, lo + chunk);
      auto& h = hist[c];
      h.assign(static_cast<std::size_t>(domain), 0);
      for (std::size_t i = lo; i < hi; ++i) {
        const VertexId v = entries_[i].key.v[slot];
        if (v >= domain) {
          out_of_domain = true;
          break;
        }
        ++h[v];
      }
    }
    if (!out_of_domain) {
      // off[v+1] = bucket totals -> exclusive prefix; then rebase each
      // chunk's histogram into its scatter cursor for bucket v.
      for (int c = 0; c < nchunks; ++c) {
        for (std::size_t v = 0; v < domain; ++v) off[v + 1] += hist[c][v];
      }
      for (std::size_t v = 1; v <= domain; ++v) off[v] += off[v - 1];
#pragma omp parallel for schedule(static)
      for (std::size_t v = 0; v < domain; ++v) {
        std::uint32_t cursor = off[v];
        for (int c = 0; c < nchunks; ++c) {
          const std::uint32_t cnt = hist[c][v];
          hist[c][v] = cursor;
          cursor += cnt;
        }
      }
      std::vector<Entry> sorted(n);
#pragma omp parallel for schedule(static, 1)
      for (int c = 0; c < nchunks; ++c) {
        const std::size_t lo = std::min(n, c * chunk);
        const std::size_t hi = std::min(n, lo + chunk);
        auto& cur = hist[c];
        for (std::size_t i = lo; i < hi; ++i) {
          sorted[cur[entries_[i].key.v[slot]]++] = entries_[i];
        }
      }
      entries_ = std::move(sorted);
      finish_buckets(slot, off);
      bucket_off_ = std::move(off);
      index_slot_ = slot;
      domain_ = domain;
      return;
    }
    // Out-of-domain key seen: fall through to the serial path, which
    // handles the comparison-sort fallback.
    off.assign(static_cast<std::size_t>(domain) + 1, 0);
  }
#endif

  for (const Entry& e : entries_) {
    const VertexId v = e.key.v[slot];
    if (v >= domain) {  // out-of-domain key: fall back, no index
      std::stable_sort(entries_.begin(), entries_.end(),
                       slot == 0 ? detail::less_by_v0<Entry>
                                 : detail::less_by_v1<Entry>);
      return;
    }
    ++off[v + 1];
  }
  for (std::size_t v = 1; v <= domain; ++v) off[v] += off[v - 1];

  // Stable scatter: cursor[v] walks its bucket in input order.
  std::vector<Entry> sorted(n);
  {
    std::vector<std::uint32_t> cursor(off.begin(), off.end() - 1);
    for (const Entry& e : entries_) sorted[cursor[e.key.v[slot]]++] = e;
  }
  entries_ = std::move(sorted);

  finish_buckets(slot, off);
  bucket_off_ = std::move(off);
  index_slot_ = slot;
  domain_ = domain;
}

using ProjTable = ProjTableT<1>;

// The scalar table is the hot instantiation; compiled once in
// proj_table.cpp (alongside the batched widths) rather than per TU.
extern template class ProjTableT<1>;
extern template class ProjTableT<2>;
extern template class ProjTableT<4>;
extern template class ProjTableT<8>;

}  // namespace ccbt
