// Protein-interaction motif profiling — the bioinformatics use case that
// motivated color coding (Alon et al., and this paper's dros/ecoli/brain
// queries). Counts all Figure 8 motifs on a synthetic PPI-like network
// and prints a motif profile with per-motif concentrations.
//
// Build & run:  ./examples/protein_motifs

#include <iostream>

#include "ccbt/core/ccbt.hpp"
#include "ccbt/util/text_table.hpp"

int main() {
  using namespace ccbt;

  // PPI networks are small but heavy tailed: a few thousand proteins,
  // hub chaperones with hundreds of partners.
  const CsrGraph ppi = chung_lu_power_law(
      /*n=*/6'000, /*alpha=*/1.75, /*avg_degree=*/6.5, /*seed=*/11);
  std::cout << "synthetic PPI network: " << ppi.num_vertices()
            << " proteins, " << ppi.num_edges() << " interactions\n\n";

  TextTable table({"motif", "nodes", "est. occurrences", "cv",
                   "time (s)"});
  double total_seconds = 0.0;
  for (const QueryGraph& motif : figure8_queries()) {
    // Long-cycle brain motifs are the expensive tail; keep the demo brisk.
    if (motif.name() == "brain2" || motif.name() == "brain3") continue;
    EstimatorOptions opts;
    opts.trials = 3;
    opts.seed = 7;
    const EstimatorResult r = estimate_matches(ppi, motif, opts);
    total_seconds += r.total_wall_seconds;
    table.add_row({motif.name(),
                   TextTable::num(std::uint64_t(motif.num_nodes())),
                   TextTable::num(r.occurrences, 0), TextTable::num(r.cv, 3),
                   TextTable::num(r.total_wall_seconds, 2)});
  }
  table.print(std::cout);
  std::cout << "\nmotif profile computed in " << total_seconds
            << " s total; occurrence = match count / automorphisms.\n"
            << "Tree motifs of this size were FASCIA territory; the cyclic\n"
            << "ones (glet2, wiki, brain1) need this paper's algorithm.\n";
  return 0;
}
