#include "ccbt/table/proj_table.hpp"

#include <algorithm>
#include <limits>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace ccbt {

namespace {

bool less_by_v0(const TableEntry& a, const TableEntry& b) {
  if (a.key.v[0] != b.key.v[0]) return a.key.v[0] < b.key.v[0];
  if (a.key.v[1] != b.key.v[1]) return a.key.v[1] < b.key.v[1];
  if (a.key.v[2] != b.key.v[2]) return a.key.v[2] < b.key.v[2];
  if (a.key.v[3] != b.key.v[3]) return a.key.v[3] < b.key.v[3];
  return a.key.sig < b.key.sig;
}

bool less_by_v1(const TableEntry& a, const TableEntry& b) {
  if (a.key.v[1] != b.key.v[1]) return a.key.v[1] < b.key.v[1];
  return less_by_v0(a, b);
}

/// Tie-break inside one slot-0 bucket (slot 0 equal by construction).
bool less_tail_v0(const TableEntry& a, const TableEntry& b) {
  if (a.key.v[1] != b.key.v[1]) return a.key.v[1] < b.key.v[1];
  if (a.key.v[2] != b.key.v[2]) return a.key.v[2] < b.key.v[2];
  if (a.key.v[3] != b.key.v[3]) return a.key.v[3] < b.key.v[3];
  return a.key.sig < b.key.sig;
}

/// Tie-break inside one slot-1 bucket (slot 1 equal by construction).
bool less_tail_v1(const TableEntry& a, const TableEntry& b) {
  if (a.key.v[0] != b.key.v[0]) return a.key.v[0] < b.key.v[0];
  if (a.key.v[2] != b.key.v[2]) return a.key.v[2] < b.key.v[2];
  if (a.key.v[3] != b.key.v[3]) return a.key.v[3] < b.key.v[3];
  return a.key.sig < b.key.sig;
}

/// Whether a counting partition over `domain` buckets pays off for n
/// entries: the offsets array must not dominate the sort itself. Applies
/// to explicit domains too — a tiny late-stage table on a huge graph must
/// not pay O(num_vertices) per seal.
bool domain_worthwhile(std::size_t n, VertexId domain) {
  return domain > 0 &&
         std::uint64_t{domain} <=
             8 * std::uint64_t{std::max<std::size_t>(n, 1)} + 1024;
}

/// Smallest detectable domain for an index-less seal: max slot value + 1,
/// or 0 when the values are too sparse (or are kNoVertex) for a counting
/// partition to pay off.
VertexId detect_domain(const std::vector<TableEntry>& entries, int slot) {
  VertexId max_v = 0;
  for (const TableEntry& e : entries) max_v = std::max(max_v, e.key.v[slot]);
  if (max_v == std::numeric_limits<VertexId>::max()) return 0;  // kNoVertex
  const std::uint64_t domain = std::uint64_t{max_v} + 1;
  if (!domain_worthwhile(entries.size(), static_cast<VertexId>(domain))) {
    return 0;
  }
  return static_cast<VertexId>(domain);
}

}  // namespace

Count ProjTable::total() const {
  Count sum = 0;
  for (const auto& e : entries_) sum += e.cnt;
  return sum;
}

void ProjTable::seal(SortOrder order, VertexId domain) {
  if (order == SortOrder::kUnsorted) {
    order_ = order;
    drop_index();
    return;
  }
  const int slot = group_slot(order);
  // kByV0 sorting is a refinement that also groups by (v0, v1): both
  // orders share one comparator, so converting between them (and staying
  // put) never re-sorts — at most the index is (re)built.
  const bool sorted_already =
      order_ == order || group_slot(order_) == slot;
  if (!domain_worthwhile(entries_.size(), domain)) {
    domain = detect_domain(entries_, slot);
  }
  if (sorted_already) {
    order_ = order;
    if (!has_bucket_index() || index_slot_ != slot) {
      if (domain > 0 &&
          entries_.size() < std::numeric_limits<std::uint32_t>::max()) {
        build_index(slot, domain);
      }
    }
    return;
  }
  drop_index();
  if (domain > 0 &&
      entries_.size() < std::numeric_limits<std::uint32_t>::max()) {
    bucket_sort(slot, domain);
  } else {
    std::stable_sort(entries_.begin(), entries_.end(),
                     slot == 0 ? less_by_v0 : less_by_v1);
  }
  order_ = order;
}

void ProjTable::build_index(int slot, VertexId domain) {
  std::vector<std::uint32_t> off(static_cast<std::size_t>(domain) + 1, 0);
  for (const TableEntry& e : entries_) {
    const VertexId v = e.key.v[slot];
    if (v >= domain) return;  // out-of-domain key: keep binary search
    ++off[v + 1];
  }
  for (std::size_t v = 1; v <= domain; ++v) off[v] += off[v - 1];
  bucket_off_ = std::move(off);
  index_slot_ = slot;
  domain_ = domain;
}

void ProjTable::bucket_sort(int slot, VertexId domain) {
  const std::size_t n = entries_.size();
  std::vector<std::uint32_t> off(static_cast<std::size_t>(domain) + 1, 0);
  for (const TableEntry& e : entries_) {
    const VertexId v = e.key.v[slot];
    if (v >= domain) {  // out-of-domain key: fall back, no index
      std::stable_sort(entries_.begin(), entries_.end(),
                       slot == 0 ? less_by_v0 : less_by_v1);
      return;
    }
    ++off[v + 1];
  }
  for (std::size_t v = 1; v <= domain; ++v) off[v] += off[v - 1];

  // Stable scatter: cursor[v] walks its bucket in input order.
  std::vector<TableEntry> sorted(n);
  {
    std::vector<std::uint32_t> cursor(off.begin(), off.end() - 1);
    for (const TableEntry& e : entries_) sorted[cursor[e.key.v[slot]]++] = e;
  }
  entries_ = std::move(sorted);

  // Buckets are independent: sort each by the remaining key fields.
  auto tail_less = slot == 0 ? less_tail_v0 : less_tail_v1;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 1024) if (n > (1u << 15))
#endif
  for (std::size_t v = 0; v < domain; ++v) {
    const std::uint32_t lo = off[v];
    const std::uint32_t hi = off[v + 1];
    if (hi - lo > 1) {
      std::stable_sort(entries_.begin() + lo, entries_.begin() + hi,
                       tail_less);
    }
  }

  bucket_off_ = std::move(off);
  index_slot_ = slot;
  domain_ = domain;
}

std::span<const TableEntry> ProjTable::group_by_search(int slot,
                                                       VertexId v) const {
  auto key_slot = [slot](const TableEntry& e) { return e.key.v[slot]; };
  auto lo = std::partition_point(
      entries_.begin(), entries_.end(),
      [&](const TableEntry& e) { return key_slot(e) < v; });
  auto hi = std::partition_point(
      lo, entries_.end(),
      [&](const TableEntry& e) { return key_slot(e) <= v; });
  return {entries_.data() + (lo - entries_.begin()),
          static_cast<std::size_t>(hi - lo)};
}

ProjTable ProjTable::transposed() const {
  ProjTable out(arity_);
  out.entries_.reserve(entries_.size());
  for (const auto& e : entries_) {
    TableEntry t = e;
    std::swap(t.key.v[0], t.key.v[1]);
    out.entries_.push_back(t);
  }
  return out;
}

ProjTable ProjTable::aggregated(int new_arity) const {
  AccumMap map(entries_.size());
  for (const auto& e : entries_) {
    TableKey key;
    for (int s = 0; s < new_arity; ++s) key.v[s] = e.key.v[s];
    key.sig = e.key.sig;
    map.add(key, e.cnt);
  }
  return ProjTable::from_map(new_arity, std::move(map));
}

}  // namespace ccbt
