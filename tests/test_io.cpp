// Graph persistence: text and binary round trips, error paths.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "ccbt/graph/generators.hpp"
#include "ccbt/graph/io.hpp"
#include "ccbt/util/error.hpp"

namespace ccbt {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ccbt_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

void expect_same_graph(const CsrGraph& a, const CsrGraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (VertexId u = 0; u < a.num_vertices(); ++u) {
    ASSERT_EQ(a.degree(u), b.degree(u)) << "vertex " << u;
    const auto na = a.neighbors(u);
    const auto nb = b.neighbors(u);
    for (std::size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i], nb[i]) << "vertex " << u << " slot " << i;
    }
  }
}

TEST_F(IoTest, TextRoundTrip) {
  const CsrGraph g = erdos_renyi(50, 170, 1);
  save_graph_text(g, path("g.txt"));
  expect_same_graph(g, load_graph_text(path("g.txt")));
}

TEST_F(IoTest, BinaryRoundTrip) {
  const CsrGraph g = chung_lu_power_law(300, 1.5, 6.0, 2);
  save_graph_binary(g, path("g.bin"));
  expect_same_graph(g, load_graph_binary(path("g.bin")));
}

TEST_F(IoTest, BinaryRoundTripEmptyGraph) {
  const CsrGraph g = CsrGraph::from_edges(EdgeList{{}, 7});
  save_graph_binary(g, path("empty.bin"));
  const CsrGraph back = load_graph_binary(path("empty.bin"));
  EXPECT_EQ(back.num_vertices(), 7u);
  EXPECT_EQ(back.num_edges(), 0u);
}

TEST_F(IoTest, TextFormatHasCommentsAndPairs) {
  const CsrGraph g = path_graph(3);
  save_graph_text(g, path("p.txt"));
  std::ifstream in(path("p.txt"));
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first[0], '#');
}

TEST_F(IoTest, LoadTextToleratesCommentsAndBlankLines) {
  std::ofstream out(path("manual.txt"));
  out << "# a comment\n0 1\n\n1 2\n# another\n2 0\n";
  out.close();
  const CsrGraph g = load_graph_text(path("manual.txt"));
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST_F(IoTest, BinaryRejectsBadMagic) {
  std::ofstream out(path("bad.bin"), std::ios::binary);
  out << "not a ccbt graph at all";
  out.close();
  EXPECT_THROW(load_graph_binary(path("bad.bin")), Error);
}

TEST_F(IoTest, BinaryRejectsTruncation) {
  const CsrGraph g = erdos_renyi(30, 60, 3);
  save_graph_binary(g, path("t.bin"));
  const auto full = std::filesystem::file_size(path("t.bin"));
  std::filesystem::resize_file(path("t.bin"), full / 2);
  EXPECT_THROW(load_graph_binary(path("t.bin")), Error);
}

TEST_F(IoTest, MissingFilesThrow) {
  EXPECT_THROW(load_graph_text(path("nope.txt")), Error);
  EXPECT_THROW(load_graph_binary(path("nope.bin")), Error);
}

TEST_F(IoTest, BinaryPreservesIsolatedTailVertices) {
  // Vertex 9 is isolated; num_vertices must survive the round trip.
  EdgeList list;
  list.num_vertices = 10;
  list.add(0, 1);
  const CsrGraph g = CsrGraph::from_edges(list);
  save_graph_binary(g, path("iso.bin"));
  EXPECT_EQ(load_graph_binary(path("iso.bin")).num_vertices(), 10u);
}

}  // namespace
}  // namespace ccbt
