#pragma once
// Planted-motif workloads: data graphs with a known ground-truth number
// of query occurrences.
//
// `plant_copies` embeds vertex-disjoint copies of a query into a host
// graph on fresh vertices. On an edgeless host the exact match count is
// copies * aut(Q) by construction, giving an end-to-end ground truth for
// the estimator without running the exponential oracle; on a noisy host
// the planted copies are a lower bound. This is the validation harness
// for the Section 8.6 precision experiments.

#include <cstdint>

#include "ccbt/graph/csr_graph.hpp"
#include "ccbt/query/query_graph.hpp"

namespace ccbt {

struct PlantedGraph {
  CsrGraph graph;

  /// Number of injective matches contributed by the planted copies alone
  /// (= copies * aut(Q)); equals the total when the host had no edges and
  /// no copies touch, which plant_copies guarantees.
  Count planted_matches = 0;
};

/// Append `copies` vertex-disjoint embeddings of `q` to a host of
/// `host_vertices` isolated vertices, then `noise_edges` random extra
/// edges among the host vertices only (never touching planted copies, so
/// planted_matches stays exact for queries with no match inside the
/// noise part... callers wanting a pure ground truth pass noise_edges=0).
PlantedGraph plant_copies(const QueryGraph& q, int copies,
                          VertexId host_vertices, std::size_t noise_edges,
                          std::uint64_t seed);

}  // namespace ccbt
