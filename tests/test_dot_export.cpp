// DOT export: structurally well-formed output for queries and trees.

#include <gtest/gtest.h>

#include <string>

#include "ccbt/decomp/dot_export.hpp"
#include "ccbt/decomp/plan.hpp"
#include "ccbt/query/catalog.hpp"

namespace ccbt {
namespace {

std::size_t count_occurrences(const std::string& s, const std::string& sub) {
  std::size_t count = 0, pos = 0;
  while ((pos = s.find(sub, pos)) != std::string::npos) {
    ++count;
    pos += sub.size();
  }
  return count;
}

TEST(DotExport, QueryHasAllNodesAndEdges) {
  const QueryGraph q = named_query("wiki");
  const std::string dot = query_to_dot(q);
  EXPECT_NE(dot.find("graph \"wiki\""), std::string::npos);
  EXPECT_EQ(count_occurrences(dot, " -- "),
            static_cast<std::size_t>(q.num_edges()));
  for (int a = 0; a < q.num_nodes(); ++a) {
    EXPECT_NE(dot.find("n" + std::to_string(a)), std::string::npos) << a;
  }
}

TEST(DotExport, TreeHasOneBoxPerBlockAndOneArrowPerAnnotation) {
  const Plan plan = make_plan(named_query("satellite"));
  const std::string dot = decomp_tree_to_dot(plan.tree);
  EXPECT_EQ(count_occurrences(dot, "[label=\"B"),
            plan.tree.blocks.size());
  // Every non-root block is annotated onto exactly one parent.
  EXPECT_EQ(count_occurrences(dot, " -> "), plan.tree.blocks.size() - 1);
  EXPECT_NE(dot.find("style=bold"), std::string::npos);  // root marked
}

TEST(DotExport, TriangleDecomposition) {
  const Plan plan = make_plan(q_cycle(3));
  const std::string dot = decomp_tree_to_dot(plan.tree);
  EXPECT_NE(dot.find("cycle"), std::string::npos);
  EXPECT_NE(dot.find("(root)"), std::string::npos);
}

TEST(DotExport, BalancedBracesAndTerminators) {
  for (const char* name : {"brain1", "dros", "glet2"}) {
    const std::string dot = decomp_tree_to_dot(make_plan(named_query(name))
                                                   .tree);
    EXPECT_EQ(count_occurrences(dot, "{"), count_occurrences(dot, "}"))
        << name;
    EXPECT_EQ(dot.back(), '\n') << name;
  }
}

}  // namespace
}  // namespace ccbt
