#include "ccbt/query/random_tw2.hpp"

#include <cassert>
#include <utility>
#include <vector>

#include "ccbt/query/treewidth.hpp"
#include "ccbt/util/error.hpp"

namespace ccbt {

QueryGraph random_tw2_query(const RandomTw2Options& options,
                            std::uint64_t seed) {
  if (options.target_nodes < 2 || options.target_nodes > kMaxQueryNodes) {
    throw UnsupportedQuery("random_tw2_query: bad target size");
  }
  Rng rng(seed);
  QueryGraph q(kMaxQueryNodes,
               "rand_tw2_" + std::to_string(seed));
  int n = 0;
  auto fresh = [&]() { return static_cast<QNode>(n++); };
  if (options.start_with_triangle && options.target_nodes >= 3) {
    const QNode a = fresh(), b = fresh(), c = fresh();
    q.add_edge(a, b);
    q.add_edge(b, c);
    q.add_edge(c, a);
  } else {
    const QNode a = fresh(), b = fresh();
    q.add_edge(a, b);
  }

  while (n < options.target_nodes) {
    const double r = rng.uniform();
    const auto edges = [&] {
      std::vector<std::pair<int, int>> all;
      for (const auto& e : q.edge_pairs()) {
        if (e.first < n && e.second < n) all.push_back(e);
      }
      return all;
    }();
    if (r < options.p_leaf || edges.empty()) {
      const auto host = static_cast<QNode>(rng.below(n));
      const QNode leaf = fresh();
      q.add_edge(host, leaf);
    } else if (r < options.p_leaf + options.p_subdivide) {
      const auto& e = edges[rng.below(edges.size())];
      const QNode mid = fresh();
      q.remove_edge(static_cast<QNode>(e.first),
                    static_cast<QNode>(e.second));
      q.add_edge(static_cast<QNode>(e.first), mid);
      q.add_edge(mid, static_cast<QNode>(e.second));
    } else {
      // Ear across an existing edge; keep it within the node budget.
      const auto& e = edges[rng.below(edges.size())];
      const int room = options.target_nodes - n;
      const int len = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(
                              std::min(options.max_ear_length, room))));
      QNode prev = static_cast<QNode>(e.first);
      for (int i = 0; i < len; ++i) {
        const QNode x = fresh();
        q.add_edge(prev, x);
        prev = x;
      }
      q.add_edge(prev, static_cast<QNode>(e.second));
    }
  }

  // Rebuild with the exact node count (the scratch graph was allocated at
  // the maximum width).
  QueryGraph out(n, q.name());
  for (const auto& [a, b] : q.edge_pairs()) {
    if (a < n && b < n) {
      out.add_edge(static_cast<QNode>(a), static_cast<QNode>(b));
    }
  }
  assert(out.connected());
  assert(treewidth_at_most_2(out));
  return out;
}

}  // namespace ccbt
