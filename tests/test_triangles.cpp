// Triangle module: naive and MINBUCKET agree with each other and with
// the general engine; MINBUCKET's work advantage and load flattening.

#include <gtest/gtest.h>

#include <numeric>

#include "ccbt/core/color_coding.hpp"
#include "ccbt/core/exact.hpp"
#include "ccbt/graph/generators.hpp"
#include "ccbt/query/catalog.hpp"
#include "ccbt/tri/triangles.hpp"

namespace ccbt {
namespace {

TEST(Triangles, K3HasOne) {
  const CsrGraph g = complete_graph(3);
  EXPECT_EQ(count_triangles_naive(g).triangles, 1u);
  EXPECT_EQ(count_triangles_minbucket(g, DegreeOrder(g)).triangles, 1u);
}

TEST(Triangles, K4HasFour) {
  const CsrGraph g = complete_graph(4);
  EXPECT_EQ(count_triangles_naive(g).triangles, 4u);
  EXPECT_EQ(count_triangles_minbucket(g, DegreeOrder(g)).triangles, 4u);
}

TEST(Triangles, KnHasChoose3) {
  for (VertexId n : {5u, 7u, 9u}) {
    const CsrGraph g = complete_graph(n);
    const Count expect = n * (n - 1) * (n - 2) / 6;
    EXPECT_EQ(count_triangles_naive(g).triangles, expect) << n;
    EXPECT_EQ(count_triangles_minbucket(g, DegreeOrder(g)).triangles, expect)
        << n;
  }
}

TEST(Triangles, TriangleFreeGraphs) {
  EXPECT_EQ(count_triangles_naive(grid2d(6, 6, 0, 1)).triangles, 0u);
  const CsrGraph star = CsrGraph::from_edges(
      EdgeList{{{0, 1}, {0, 2}, {0, 3}, {0, 4}}, 5});
  EXPECT_EQ(count_triangles_minbucket(star, DegreeOrder(star)).triangles, 0u);
}

TEST(Triangles, NaiveAndMinbucketAgreeOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const CsrGraph g = erdos_renyi(60, 240, seed);
    const DegreeOrder order(g);
    EXPECT_EQ(count_triangles_naive(g).triangles,
              count_triangles_minbucket(g, order).triangles)
        << "seed=" << seed;
  }
}

TEST(Triangles, MinbucketWorksWithIdOrderToo) {
  // Correctness does not depend on which total order is used.
  const CsrGraph g = erdos_renyi(50, 200, 7);
  const DegreeOrder by_deg(g);
  const DegreeOrder by_id = DegreeOrder::by_id(g.num_vertices());
  EXPECT_EQ(count_triangles_minbucket(g, by_deg).triangles,
            count_triangles_minbucket(g, by_id).triangles);
}

TEST(Triangles, ColorfulTrianglesMatchEngineOnC3) {
  // aut(C3) = 6: the engine counts injective matches, the triangle
  // counter counts vertex sets.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const CsrGraph g = erdos_renyi(40, 160, seed);
    const Coloring chi(g.num_vertices(), 3, 100 + seed);
    const Count sets =
        count_colorful_triangles(g, chi, DegreeOrder(g)).triangles;
    const Count matches = count_colorful_matches(g, q_cycle(3), chi);
    EXPECT_EQ(6 * sets, matches) << "seed=" << seed;
  }
}

TEST(Triangles, ColorfulNeverExceedsTotal) {
  const CsrGraph g = chung_lu_power_law(300, 1.6, 6.0, 9);
  const DegreeOrder order(g);
  const Coloring chi(g.num_vertices(), 3, 11);
  EXPECT_LE(count_colorful_triangles(g, chi, order).triangles,
            count_triangles_minbucket(g, order).triangles);
}

TEST(Triangles, MinbucketDoesFewerWedgeChecksOnSkewedGraphs) {
  const CsrGraph g = chung_lu_power_law(800, 1.5, 8.0, 13);
  const TriangleStats naive = count_triangles_naive(g);
  const TriangleStats mb = count_triangles_minbucket(g, DegreeOrder(g));
  EXPECT_EQ(naive.triangles, mb.triangles);
  EXPECT_LT(mb.wedge_checks, naive.wedge_checks);
  // The hub no longer dominates: max per-vertex work collapses.
  EXPECT_LT(mb.max_vertex_checks, naive.max_vertex_checks);
}

TEST(Triangles, VertexWorkHistogramSumsToTotalChecks) {
  const CsrGraph g = erdos_renyi(80, 320, 17);
  const DegreeOrder order(g);
  const auto work = minbucket_vertex_work(g, order);
  const TriangleStats mb = count_triangles_minbucket(g, order);
  EXPECT_EQ(std::accumulate(work.begin(), work.end(), std::uint64_t{0}),
            mb.wedge_checks);
  EXPECT_EQ(*std::max_element(work.begin(), work.end()),
            mb.max_vertex_checks);
}

TEST(Triangles, EmptyAndTinyGraphs) {
  const CsrGraph empty = CsrGraph::from_edges(EdgeList{{}, 0});
  EXPECT_EQ(count_triangles_naive(empty).triangles, 0u);
  const CsrGraph one_edge = CsrGraph::from_edges(EdgeList{{{0, 1}}, 2});
  EXPECT_EQ(count_triangles_minbucket(one_edge, DegreeOrder(one_edge))
                .triangles,
            0u);
}

}  // namespace
}  // namespace ccbt
