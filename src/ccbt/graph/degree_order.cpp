#include "ccbt/graph/degree_order.hpp"

#include <algorithm>
#include <numeric>

namespace ccbt {

DegreeOrder::DegreeOrder(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  std::sort(order.begin(), order.end(), [&g](VertexId a, VertexId b) {
    const auto da = g.degree(a), db = g.degree(b);
    return da != db ? da < db : a < b;
  });
  rank_.resize(n);
  for (VertexId pos = 0; pos < n; ++pos) rank_[order[pos]] = pos;
}

DegreeOrder DegreeOrder::by_id(VertexId n) {
  DegreeOrder o;
  o.rank_.resize(n);
  std::iota(o.rank_.begin(), o.rank_.end(), std::uint32_t{0});
  return o;
}

}  // namespace ccbt
