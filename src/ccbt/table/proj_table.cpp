#include "ccbt/table/proj_table.hpp"

#include <algorithm>

namespace ccbt {

namespace {

bool less_by_v0(const TableEntry& a, const TableEntry& b) {
  if (a.key.v[0] != b.key.v[0]) return a.key.v[0] < b.key.v[0];
  if (a.key.v[1] != b.key.v[1]) return a.key.v[1] < b.key.v[1];
  if (a.key.v[2] != b.key.v[2]) return a.key.v[2] < b.key.v[2];
  if (a.key.v[3] != b.key.v[3]) return a.key.v[3] < b.key.v[3];
  return a.key.sig < b.key.sig;
}

bool less_by_v1(const TableEntry& a, const TableEntry& b) {
  if (a.key.v[1] != b.key.v[1]) return a.key.v[1] < b.key.v[1];
  return less_by_v0(a, b);
}

}  // namespace

Count ProjTable::total() const {
  Count sum = 0;
  for (const auto& e : entries_) sum += e.cnt;
  return sum;
}

void ProjTable::seal(SortOrder order) {
  if (order == order_ || order == SortOrder::kUnsorted) {
    order_ = order;
    return;
  }
  switch (order) {
    case SortOrder::kByV0:
    case SortOrder::kByV0V1:
      // kByV0 sorting is a refinement that also groups by (v0,v1).
      std::sort(entries_.begin(), entries_.end(), less_by_v0);
      break;
    case SortOrder::kByV1:
      std::sort(entries_.begin(), entries_.end(), less_by_v1);
      break;
    case SortOrder::kUnsorted:
      break;
  }
  order_ = order;
}

std::span<const TableEntry> ProjTable::group(int slot, VertexId v) const {
  auto key_slot = [slot](const TableEntry& e) { return e.key.v[slot]; };
  auto lo = std::partition_point(
      entries_.begin(), entries_.end(),
      [&](const TableEntry& e) { return key_slot(e) < v; });
  auto hi = std::partition_point(
      lo, entries_.end(),
      [&](const TableEntry& e) { return key_slot(e) <= v; });
  return {entries_.data() + (lo - entries_.begin()),
          static_cast<std::size_t>(hi - lo)};
}

ProjTable ProjTable::transposed() const {
  ProjTable out(arity_);
  out.entries_.reserve(entries_.size());
  for (const auto& e : entries_) {
    TableEntry t = e;
    std::swap(t.key.v[0], t.key.v[1]);
    out.entries_.push_back(t);
  }
  return out;
}

ProjTable ProjTable::aggregated(int new_arity) const {
  AccumMap map(entries_.size());
  for (const auto& e : entries_) {
    TableKey key;
    for (int s = 0; s < new_arity; ++s) key.v[s] = e.key.v[s];
    key.sig = e.key.sig;
    map.add(key, e.cnt);
  }
  return ProjTable::from_map(new_arity, std::move(map));
}

}  // namespace ccbt
