#pragma once
// Projection tables (Section 4.2): a synopsis of the colorful matches of a
// subquery, keyed by the images of its boundary nodes (plus tracked
// vertices during DB path construction) and the color signature.
//
// Lifecycle: entries are accumulated through an AccumMap during a join,
// then sealed into a sorted dense vector. Merge joins stream over groups
// that share the leading key slots.

#include <cstdint>
#include <span>
#include <vector>

#include "ccbt/table/accum_map.hpp"
#include "ccbt/table/table_key.hpp"

namespace ccbt {

/// Sort orders used by the join procedures.
enum class SortOrder : std::uint8_t {
  kUnsorted,
  kByV0,    // group by slot 0 (child-table lookups by first boundary)
  kByV0V1,  // group by (slot 0, slot 1) (half-cycle merge joins)
  kByV1,    // group by slot 1 (frontier-grouped extensions)
};

class ProjTable {
 public:
  ProjTable() = default;

  /// arity = number of meaningful leading vertex slots (0..4).
  explicit ProjTable(int arity) : arity_(arity) {}

  static ProjTable from_map(int arity, AccumMap&& map) {
    ProjTable t(arity);
    t.entries_ = map.take_entries();
    return t;
  }

  int arity() const { return arity_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  std::span<const TableEntry> entries() const { return entries_; }

  /// Total count over all entries (used at the root).
  Count total() const;

  /// Sort entries for merge joins; remembers the order (no-op if sorted).
  void seal(SortOrder order);
  SortOrder order() const { return order_; }

  /// Contiguous range of entries whose slot `slot` equals v; requires the
  /// matching seal order (kByV0 for slot 0, kByV1 for slot 1).
  std::span<const TableEntry> group(int slot, VertexId v) const;

  /// Swap slots 0 and 1 in every key — the transpose of Section 5.2
  /// ("the boundary tables are transpose of each other"). Invalidates the
  /// seal order.
  ProjTable transposed() const;

  /// Sum out every slot except slot 0 (projection to a unary table), or to
  /// arity 0. Used when a cycle's diagonal split must be re-aggregated to
  /// the block's true boundary keys.
  ProjTable aggregated(int new_arity) const;

  void push_unchecked(const TableEntry& e) { entries_.push_back(e); }

 private:
  int arity_ = 0;
  SortOrder order_ = SortOrder::kUnsorted;
  std::vector<TableEntry> entries_;
};

}  // namespace ccbt
