#include "ccbt/query/isomorphism.hpp"

#include <algorithm>
#include <array>
#include <numeric>

#include "ccbt/query/treewidth.hpp"
#include "ccbt/util/error.hpp"
#include "ccbt/util/rng.hpp"

namespace ccbt {

namespace {

std::vector<int> sorted_degrees(const QueryGraph& q) {
  std::vector<int> d(q.num_nodes());
  for (int a = 0; a < q.num_nodes(); ++a) d[a] = q.degree(a);
  std::sort(d.begin(), d.end());
  return d;
}

/// Backtracking isomorphism search mapping a -> b; counts completions
/// (or stops at the first when count_all is false).
std::uint64_t search(const QueryGraph& a, const QueryGraph& b,
                     bool count_all) {
  const int n = a.num_nodes();
  // Map a's nodes in an order where each node touches a previous one
  // whenever possible (strongest adjacency pruning).
  std::vector<QNode> order = a.connected_order();
  std::vector<int> image(n, -1);
  std::vector<bool> used(n, false);
  std::uint64_t found = 0;

  auto backtrack = [&](auto&& self, int depth) -> bool {
    if (depth == n) {
      ++found;
      return !count_all;  // stop at first match when only existence asked
    }
    const QNode x = order[depth];
    for (int y = 0; y < n; ++y) {
      if (used[y] || a.degree(x) != b.degree(static_cast<QNode>(y))) continue;
      bool ok = true;
      for (int d = 0; d < depth && ok; ++d) {
        const QNode px = order[d];
        const bool ea = a.has_edge(x, px);
        const bool eb =
            b.has_edge(static_cast<QNode>(y), static_cast<QNode>(image[px]));
        ok = (ea == eb);
      }
      if (!ok) continue;
      image[x] = y;
      used[y] = true;
      if (self(self, depth + 1)) return true;
      used[y] = false;
      image[x] = -1;
    }
    return false;
  };
  backtrack(backtrack, 0);
  return found;
}

/// Packed upper-triangle adjacency code under permutation p.
std::uint64_t adjacency_code(const QueryGraph& q,
                             const std::vector<int>& p) {
  const int n = q.num_nodes();
  std::uint64_t code = 0;
  int bit = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j, ++bit) {
      if (q.has_edge(static_cast<QNode>(p[i]), static_cast<QNode>(p[j]))) {
        code |= std::uint64_t{1} << bit;
      }
    }
  }
  return code;
}

/// Exact canonical code for n <= 8: the minimum adjacency code over all
/// vertex permutations.
std::uint64_t exact_canonical_code(const QueryGraph& q) {
  const int n = q.num_nodes();
  std::vector<int> p(n);
  std::iota(p.begin(), p.end(), 0);
  std::uint64_t best = ~std::uint64_t{0};
  do {
    best = std::min(best, adjacency_code(q, p));
  } while (std::next_permutation(p.begin(), p.end()));
  return best;
}

/// Weisfeiler-Leman style invariant hash for larger graphs.
std::uint64_t wl_invariant_hash(const QueryGraph& q) {
  const int n = q.num_nodes();
  std::vector<std::uint64_t> color(n);
  for (int v = 0; v < n; ++v) {
    color[v] = 0x1000 + static_cast<std::uint64_t>(q.degree(v));
  }
  for (int round = 0; round < 3; ++round) {
    std::vector<std::uint64_t> next(n);
    for (int v = 0; v < n; ++v) {
      std::vector<std::uint64_t> nbr;
      for (int w = 0; w < n; ++w) {
        if (q.has_edge(static_cast<QNode>(v), static_cast<QNode>(w))) {
          nbr.push_back(color[w]);
        }
      }
      std::sort(nbr.begin(), nbr.end());
      std::uint64_t h = color[v];
      for (std::uint64_t c : nbr) {
        std::uint64_t s = h ^ c;
        h = splitmix64(s);
      }
      next[v] = h;
    }
    color = std::move(next);
  }
  std::sort(color.begin(), color.end());
  std::uint64_t h = 0x9E3779B97F4A7C15ULL ^
                    (static_cast<std::uint64_t>(q.num_nodes()) << 32) ^
                    static_cast<std::uint64_t>(q.num_edges());
  for (std::uint64_t c : color) {
    std::uint64_t s = h ^ c;
    h = splitmix64(s);
  }
  return h;
}

}  // namespace

bool are_isomorphic(const QueryGraph& a, const QueryGraph& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges()) {
    return false;
  }
  if (sorted_degrees(a) != sorted_degrees(b)) return false;
  if (a.num_nodes() == 0) return true;
  return search(a, b, /*count_all=*/false) > 0;
}

std::uint64_t count_isomorphisms(const QueryGraph& a, const QueryGraph& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges()) {
    return 0;
  }
  if (sorted_degrees(a) != sorted_degrees(b)) return 0;
  if (a.num_nodes() == 0) return 1;
  return search(a, b, /*count_all=*/true);
}

std::uint64_t iso_invariant_code(const QueryGraph& q) {
  if (q.num_nodes() <= 8) return exact_canonical_code(q);
  return wl_invariant_hash(q);
}

std::vector<QueryGraph> all_connected_queries(int n, int max_treewidth) {
  if (n < 3 || n > 6) {
    throw Error("all_connected_queries: n must be in [3, 6]");
  }
  if (max_treewidth != 1 && max_treewidth != 2) {
    throw Error("all_connected_queries: max_treewidth must be 1 or 2");
  }
  // All node pairs, fixed order; subsets of them are candidate edge sets.
  std::vector<std::pair<int, int>> pairs;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) pairs.emplace_back(i, j);
  }
  std::vector<QueryGraph> out;
  std::vector<std::uint64_t> seen;
  const std::uint32_t limit = 1u << pairs.size();
  for (std::uint32_t mask = 0; mask < limit; ++mask) {
    QueryGraph q(n);
    for (std::size_t e = 0; e < pairs.size(); ++e) {
      if ((mask >> e) & 1u) {
        q.add_edge(static_cast<QNode>(pairs[e].first),
                   static_cast<QNode>(pairs[e].second));
      }
    }
    if (!q.connected()) continue;
    if (max_treewidth == 1 && !is_forest(q)) continue;
    if (max_treewidth == 2 && !treewidth_at_most_2(q)) continue;
    const std::uint64_t code = iso_invariant_code(q);  // exact for n <= 8
    if (std::find(seen.begin(), seen.end(), code) != seen.end()) continue;
    seen.push_back(code);
    q.set_name("g" + std::to_string(n) + "_" + std::to_string(out.size()));
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace ccbt
