#pragma once
// Public API: colorful subgraph counting of treewidth-2 queries.
//
// Typical use:
//   CsrGraph g = ...;
//   QueryGraph q = named_query("brain1");
//   Plan plan = make_plan(q);
//   CountingSession session(g, q, plan, options);
//   Count c = session.count_colorful(coloring);       // one coloring
//   EstimatorResult r = estimate_matches(g, q, opts); // full estimator

#include <memory>
#include <optional>
#include <span>

#include "ccbt/decomp/plan.hpp"
#include "ccbt/engine/executor.hpp"
#include "ccbt/graph/coloring.hpp"
#include "ccbt/graph/csr_graph.hpp"
#include "ccbt/query/query_graph.hpp"

namespace ccbt {

/// Reusable state for counting the same query on the same graph under
/// many colorings (the degree order and plan are coloring independent).
class CountingSession {
 public:
  CountingSession(const CsrGraph& g, const QueryGraph& q, Plan plan,
                  ExecOptions opts = {});

  /// Colorful matches under one coloring; the coloring must use exactly
  /// q.num_nodes() colors over g.num_vertices() vertices.
  ExecStats count_colorful(const Coloring& chi) const;

  /// Colorful matches under every lane of a batch in ONE plan execution
  /// (1, 2, 4 or 8 lanes): stats.colorful_lane[l] is lane l's count,
  /// exactly what count_colorful(batch.lane(l)) would report.
  ExecStats count_colorful(const ColoringBatch& batch) const;

  /// Convenience: fresh random coloring from `seed`.
  ExecStats count_colorful_seeded(std::uint64_t seed) const;

  /// Convenience: one batched execution over fresh random colorings, one
  /// per seed (seeds.size() must be a supported batch width).
  ExecStats count_colorful_seeded(std::span<const std::uint64_t> seeds) const;

  const Plan& plan() const { return plan_; }
  const QueryGraph& query() const { return query_; }
  const ExecOptions& options() const { return opts_; }

 private:
  const CsrGraph& graph_;
  QueryGraph query_;
  Plan plan_;
  ExecOptions opts_;
  DegreeOrder degree_order_;
  DegreeOrder id_order_;
};

/// One-shot: count colorful matches with the heuristic plan.
Count count_colorful_matches(const CsrGraph& g, const QueryGraph& q,
                             const Coloring& chi, ExecOptions opts = {});

/// The unbiased-estimator scale factor k^k / k! of Section 2.
double colorful_scale(int k);

}  // namespace ccbt
