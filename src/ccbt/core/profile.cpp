#include "ccbt/core/profile.hpp"

#include <memory>

#include "ccbt/core/color_coding.hpp"
#include "ccbt/query/automorphism.hpp"
#include "ccbt/query/isomorphism.hpp"
#include "ccbt/query/treewidth.hpp"
#include "ccbt/tree/tree_dp.hpp"
#include "ccbt/util/error.hpp"
#include "ccbt/util/rng.hpp"
#include "ccbt/util/stats.hpp"

namespace ccbt {

std::vector<ProfileEntry> motif_profile(const CsrGraph& g,
                                        const std::vector<QueryGraph>& family,
                                        const ProfileOptions& opts) {
  if (family.empty()) return {};
  const int k = family.front().num_nodes();
  for (const QueryGraph& q : family) {
    if (q.num_nodes() != k) {
      throw Error("motif_profile: family members must share a node count");
    }
  }
  const double scale = colorful_scale(k);

  // One reusable solver per query: a session for cyclic queries, the
  // treelet DP for trees.
  struct Solver {
    bool is_tree = false;
    std::unique_ptr<CountingSession> session;  // cyclic queries only
  };
  std::vector<Solver> solvers;
  solvers.reserve(family.size());
  for (const QueryGraph& q : family) {
    Solver s;
    s.is_tree = q.num_edges() == k - 1;  // connected is validated below
    if (!s.is_tree) {
      s.session = std::make_unique<CountingSession>(g, q, make_plan(q),
                                                    opts.exec);
    } else {
      validate_query(q);
    }
    solvers.push_back(std::move(s));
  }

  // Shared colorings: trial t uses one coloring for the whole family.
  std::vector<std::vector<double>> estimates(family.size());
  Rng seeder(opts.seed);
  for (int t = 0; t < opts.trials; ++t) {
    const Coloring chi(g.num_vertices(), k, seeder());
    for (std::size_t i = 0; i < family.size(); ++i) {
      const Count colorful =
          solvers[i].is_tree
              ? count_colorful_tree(g, family[i], chi)
              : solvers[i].session->count_colorful(chi).colorful;
      estimates[i].push_back(scale * static_cast<double>(colorful));
    }
  }

  std::vector<ProfileEntry> out;
  out.reserve(family.size());
  for (std::size_t i = 0; i < family.size(); ++i) {
    ProfileEntry e;
    e.query = family[i];
    e.automorphisms = count_automorphisms(family[i]);
    const Summary s = summarize(estimates[i]);
    e.matches = s.mean;
    e.cv = s.cv();
    e.occurrences = e.matches / static_cast<double>(e.automorphisms);
    out.push_back(std::move(e));
  }
  return out;
}

std::vector<ProfileEntry> graphlet_profile(const CsrGraph& g, int k,
                                           const ProfileOptions& opts,
                                           int max_treewidth) {
  return motif_profile(g, all_connected_queries(k, max_treewidth), opts);
}

}  // namespace ccbt
