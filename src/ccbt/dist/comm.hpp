#pragma once
// VirtualComm: a single-process stand-in for the paper's MPI transport
// (Section 7). Ranks exchange projection-table entries in bulk-synchronous
// supersteps: send() queues an entry in the sender's outbox, exchange()
// delivers every queued entry to its destination inbox and closes the
// superstep. Delivery is deterministic — inboxes concatenate senders in
// rank order, preserving each sender's send order — so a virtual run is
// exactly reproducible.
//
// The transport keeps its own traffic accounting (CommStats), independent
// of the engine's modeled LoadModel communication: the model sees only the
// routing a real implementation must pay per join emission, while the
// transport also pays for resharding and orientation supersteps.

#include <cstdint>
#include <vector>

#include "ccbt/table/table_key.hpp"

namespace ccbt {

struct CommStats {
  std::uint64_t supersteps = 0;
  std::uint64_t entries_sent = 0;      // all sends, local included
  std::uint64_t off_rank_entries = 0;  // sends with from != to
  std::uint64_t max_step_recv = 0;     // max entries one rank received
                                       // in one superstep

  /// Wire volume of the off-rank traffic (key + count per entry).
  std::uint64_t off_rank_bytes() const {
    return off_rank_entries * (sizeof(TableKey) + sizeof(Count));
  }
};

class VirtualComm {
 public:
  /// Throws Error when ranks == 0.
  explicit VirtualComm(std::uint32_t ranks);

  std::uint32_t num_ranks() const {
    return static_cast<std::uint32_t>(outbox_.size());
  }

  /// Queue `e` from rank `from` to rank `to`; visible after exchange().
  void send(std::uint32_t from, std::uint32_t to, const TableEntry& e) {
    outbox_[from].push_back({to, e});
    ++stats_.entries_sent;
    if (from != to) ++stats_.off_rank_entries;
  }

  /// Deliver all queued entries (replacing previous inboxes) and close
  /// the superstep.
  void exchange();

  /// Entries delivered to `rank` by the last exchange.
  const std::vector<TableEntry>& inbox(std::uint32_t rank) const {
    return inbox_[rank];
  }

  /// Sum one per-rank contribution vector (MPI_Allreduce stand-in).
  Count allreduce_sum(const std::vector<Count>& parts) const;

  const CommStats& stats() const { return stats_; }

 private:
  struct Queued {
    std::uint32_t to;
    TableEntry entry;
  };

  std::vector<std::vector<Queued>> outbox_;  // per sender, in send order
  std::vector<std::vector<TableEntry>> inbox_;
  CommStats stats_;
};

}  // namespace ccbt
