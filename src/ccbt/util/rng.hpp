#pragma once
// Deterministic pseudo-random number generation for reproducible experiments.
//
// xoshiro256** (Blackman & Vigna) seeded via splitmix64. All generators,
// colorings and workloads in this library derive their randomness from an
// explicit 64-bit seed so every run is reproducible bit-for-bit.

#include <cstdint>
#include <limits>

namespace ccbt {

/// Stateless mixing step used for seeding and hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, 256-bit state PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5EEDF00DCAFEULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be nonzero.
  std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Derive an independent child stream; used to give each trial/worker
  /// its own generator without correlated sequences.
  Rng fork(std::uint64_t stream) noexcept {
    std::uint64_t sm = (*this)() ^ (stream * 0x9E3779B97F4A7C15ULL);
    return Rng(splitmix64(sm));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace ccbt
