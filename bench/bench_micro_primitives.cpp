// Google-benchmark microbenchmarks of the engine's primitives: the
// accumulation hash map, table sealing (sort), graph-edge extension, and
// an end-to-end triangle count. These guard the constants behind every
// figure bench.

#include <benchmark/benchmark.h>

#include "ccbt/core/color_coding.hpp"
#include "ccbt/engine/primitives.hpp"
#include "ccbt/graph/degree_order.hpp"
#include "ccbt/graph/generators.hpp"
#include "ccbt/query/catalog.hpp"
#include "ccbt/util/rng.hpp"

namespace {

using namespace ccbt;

void BM_AccumMapAdd(benchmark::State& state) {
  const std::size_t n = state.range(0);
  Rng rng(5);
  std::vector<TableKey> keys(n);
  for (auto& k : keys) {
    k.v[0] = static_cast<VertexId>(rng.below(1 << 14));
    k.v[1] = static_cast<VertexId>(rng.below(1 << 14));
    k.sig = static_cast<Signature>(rng.below(256));
  }
  for (auto _ : state) {
    AccumMap map(n);
    for (const auto& k : keys) map.add(k, 1);
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AccumMapAdd)->Arg(1 << 12)->Arg(1 << 16);

void BM_TableSeal(benchmark::State& state) {
  const std::size_t n = state.range(0);
  Rng rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    AccumMap map(n);
    for (std::size_t i = 0; i < n; ++i) {
      TableKey k;
      k.v[0] = static_cast<VertexId>(rng.below(1 << 14));
      k.v[1] = static_cast<VertexId>(rng.below(1 << 14));
      k.sig = static_cast<Signature>(i & 0xFF);
      map.add(k, 1);
    }
    ProjTable t = ProjTable::from_map(2, std::move(map));
    state.ResumeTiming();
    t.seal(SortOrder::kByV0V1);
    benchmark::DoNotOptimize(t.entries().data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TableSeal)->Arg(1 << 14)->Arg(1 << 17);

void BM_ExtendWithGraph(benchmark::State& state) {
  const CsrGraph g = chung_lu_power_law(4000, 1.7, 8.0, 3);
  const Coloring chi(g.num_vertices(), 5, 1);
  const DegreeOrder order(g);
  ExecOptions opts;
  opts.use_threads = false;
  const ExecContext cx{g, chi, order,
                       BlockPartition(g.num_vertices(), 1), nullptr, opts};
  const ProjTable init = init_path_from_graph(cx, ExtendOpts{});
  for (auto _ : state) {
    const ProjTable out = extend_with_graph(cx, init, ExtendOpts{});
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * init.size());
}
BENCHMARK(BM_ExtendWithGraph);

void BM_ExtendWithGraphAnchored(benchmark::State& state) {
  // The DB variant of the same extension: the ≻ filter should make it
  // strictly cheaper on a heavy-tailed graph.
  const CsrGraph g = chung_lu_power_law(4000, 1.7, 8.0, 3);
  const Coloring chi(g.num_vertices(), 5, 1);
  const DegreeOrder order(g);
  ExecOptions opts;
  opts.use_threads = false;
  const ExecContext cx{g, chi, order,
                       BlockPartition(g.num_vertices(), 1), nullptr, opts};
  ExtendOpts anchored;
  anchored.anchor_higher = true;
  const ProjTable init = init_path_from_graph(cx, anchored);
  for (auto _ : state) {
    const ProjTable out = extend_with_graph(cx, init, anchored);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * init.size());
}
BENCHMARK(BM_ExtendWithGraphAnchored);

void BM_TriangleCountDB(benchmark::State& state) {
  const CsrGraph g = chung_lu_power_law(
      static_cast<VertexId>(state.range(0)), 1.7, 6.0, 9);
  const QueryGraph q = q_cycle(3);
  ExecOptions opts;
  opts.algo = Algo::kDB;
  const CountingSession session(g, q, make_plan(q), opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.count_colorful_seeded(4).colorful);
  }
}
BENCHMARK(BM_TriangleCountDB)->Arg(2000)->Arg(8000);

void BM_Brain1DBvsPS(benchmark::State& state) {
  const CsrGraph g = chung_lu_power_law(3000, 1.7, 6.0, 11);
  const QueryGraph q = q_brain1();
  ExecOptions opts;
  opts.algo = state.range(0) == 0 ? Algo::kPS : Algo::kDB;
  const CountingSession session(g, q, make_plan(q), opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.count_colorful_seeded(4).colorful);
  }
  state.SetLabel(state.range(0) == 0 ? "PS" : "DB");
}
BENCHMARK(BM_Brain1DBvsPS)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
