// Motif profiles: family counting with shared colorings.

#include <gtest/gtest.h>

#include "ccbt/core/exact.hpp"
#include "ccbt/core/profile.hpp"
#include "ccbt/graph/generators.hpp"
#include "ccbt/query/catalog.hpp"
#include "ccbt/query/isomorphism.hpp"
#include "ccbt/util/error.hpp"

namespace ccbt {
namespace {

TEST(Profile, EstimatesTrackExactCounts) {
  const CsrGraph g = erdos_renyi(40, 200, 3);
  ProfileOptions opts;
  opts.trials = 40;
  opts.seed = 7;
  const auto profile = graphlet_profile(g, 4, opts);
  ASSERT_EQ(profile.size(), 5u);  // connected tw<=2 classes on 4 nodes
  for (const ProfileEntry& e : profile) {
    const double exact =
        static_cast<double>(count_matches_exact(g, e.query));
    EXPECT_NEAR(e.matches, exact, 0.30 * exact + 1.0) << e.query.name();
  }
}

TEST(Profile, TreesDispatchAndAgree) {
  // A family mixing trees (DP path) and cyclic queries (engine path):
  // both must produce sane values against the oracle.
  const CsrGraph g = erdos_renyi(30, 110, 4);
  std::vector<QueryGraph> family{q_cycle(4), q_path(4), q_star(3)};
  ProfileOptions opts;
  opts.trials = 50;
  const auto profile = motif_profile(g, family, opts);
  ASSERT_EQ(profile.size(), 3u);
  for (const ProfileEntry& e : profile) {
    const double exact =
        static_cast<double>(count_matches_exact(g, e.query));
    EXPECT_NEAR(e.matches, exact, 0.30 * exact + 1.0) << e.query.name();
  }
}

TEST(Profile, RejectsMixedSizes) {
  const CsrGraph g = erdos_renyi(20, 40, 5);
  const std::vector<QueryGraph> family{q_cycle(3), q_cycle(4)};
  EXPECT_THROW(motif_profile(g, family, {}), Error);
}

TEST(Profile, EmptyFamilyIsEmpty) {
  const CsrGraph g = erdos_renyi(20, 40, 6);
  EXPECT_TRUE(motif_profile(g, {}, {}).empty());
}

TEST(Profile, DeterministicForFixedSeed) {
  const CsrGraph g = erdos_renyi(30, 90, 7);
  ProfileOptions opts;
  opts.trials = 4;
  opts.seed = 11;
  const auto a = graphlet_profile(g, 4, opts);
  const auto b = graphlet_profile(g, 4, opts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].matches, b[i].matches) << i;
  }
}

TEST(Profile, TreeFamilyUsesAllTreeClasses) {
  const CsrGraph g = erdos_renyi(25, 60, 8);
  const auto profile = graphlet_profile(g, 5, {}, /*max_treewidth=*/1);
  EXPECT_EQ(profile.size(), 3u);  // 3 tree classes on 5 nodes
}

}  // namespace
}  // namespace ccbt
