// treelet_profile — the bioinformatics workload the color-coding line of
// work began with (Alon et al., FASCIA): profile a protein-interaction-
// style network by the counts of EVERY tree topology of sizes 4-6 (2, 3
// and 6 non-isomorphic trees respectively). The resulting "treelet
// distribution" is a standard network fingerprint.
//
// Uses the dedicated tree DP, which is linear in the graph size per
// query, so the whole profile costs seconds even with dozens of trees.
//
// Build & run:  ./examples/treelet_profile

#include <iostream>

#include "ccbt/core/ccbt.hpp"
#include "ccbt/util/stats.hpp"
#include "ccbt/util/text_table.hpp"

int main() {
  using namespace ccbt;

  // Protein-interaction stand-in: heavy-tailed, ~10k interactions.
  const CsrGraph g = chung_lu_power_law(4'000, 1.7, 5.0, 13);
  std::cout << "network: " << g.num_vertices() << " proteins, "
            << g.num_edges() << " interactions\n\n";

  TextTable table({"treelet", "k", "aut", "est. occurrences", "cv"});
  for (int k = 4; k <= 6; ++k) {
    for (const QueryGraph& q : all_connected_queries(k, /*max_treewidth=*/1)) {
      // Average scaled colorful counts over a few colorings (Section 2),
      // with the counting itself done by the linear-time tree DP.
      const int kTrials = 5;
      const double scale = colorful_scale(k);
      const std::uint64_t aut = count_automorphisms(q);
      std::vector<double> estimates;
      for (int t = 0; t < kTrials; ++t) {
        const Coloring chi(g.num_vertices(), k,
                           1000 + static_cast<std::uint64_t>(t));
        const Count colorful = count_colorful_tree(g, q, chi);
        estimates.push_back(scale * static_cast<double>(colorful) /
                            static_cast<double>(aut));
      }
      const Summary s = summarize(estimates);
      table.add_row({q.name(), std::to_string(k), std::to_string(aut),
                     TextTable::num(s.mean, 0), TextTable::num(s.cv(), 2)});
    }
  }
  table.print(std::cout);
  std::cout << "(one row per non-isomorphic tree topology; occurrences = "
               "matches / aut)\n";
  return 0;
}
