#include "ccbt/query/tree_decomposition.hpp"

#include <algorithm>
#include <bit>

#include "ccbt/util/error.hpp"

namespace ccbt {

int TreeDecomposition::width() const {
  int w = 0;
  for (std::uint32_t bag : bags) w = std::max(w, std::popcount(bag) - 1);
  return w;
}

TreeDecomposition tree_decomposition_w2(const QueryGraph& q) {
  if (!q.connected()) {
    throw UnsupportedQuery("tree decomposition: query must be connected");
  }
  // Peel vertices of degree <= 2 (the treewidth-2 reduction). Each peeled
  // vertex v creates the bag {v} ∪ N(v); its parent bag is the first
  // later-created bag containing all of N(v) — which exists because the
  // reduction connects v's neighbors before removing v.
  QueryGraph g = q;
  const int n = q.num_nodes();
  std::uint32_t alive = (std::uint32_t{1} << n) - 1;

  struct Peel {
    int vertex;
    std::uint32_t bag;        // {v} ∪ N(v) at removal time
    std::uint32_t neighbors;  // N(v) at removal time
  };
  std::vector<Peel> peels;

  while (std::popcount(alive) > 1) {
    int picked = -1;
    // Prefer degree <= 1 (keeps trees at width 1), then degree 2.
    for (int cap = 1; cap <= 2 && picked < 0; ++cap) {
      for (int v = 0; v < n && picked < 0; ++v) {
        if (!((alive >> v) & 1u)) continue;
        const std::uint32_t nbrs =
            g.neighbors(static_cast<QNode>(v)) & alive;
        if (std::popcount(nbrs) > cap) continue;
        picked = v;
        // Degree-2 reduction adds the bypass edge so the neighbors stay
        // together in a later bag.
        if (std::popcount(nbrs) == 2) {
          const int a = std::countr_zero(nbrs);
          const int b = std::countr_zero(nbrs & (nbrs - 1));
          if (!g.has_edge(static_cast<QNode>(a), static_cast<QNode>(b))) {
            g.add_edge(static_cast<QNode>(a), static_cast<QNode>(b));
          }
        }
        peels.push_back(
            {v, nbrs | (std::uint32_t{1} << v), nbrs});
        for (int b = 0; b < n; ++b) {
          if ((nbrs >> b) & 1u) {
            g.remove_edge(static_cast<QNode>(v), static_cast<QNode>(b));
          }
        }
        alive &= ~(std::uint32_t{1} << v);
        break;
      }
    }
    if (picked < 0) {
      throw UnsupportedQuery("tree decomposition: treewidth > 2");
    }
  }

  TreeDecomposition td;
  // The last remaining vertex forms the root bag.
  td.bags.push_back(alive);
  // Replay the peels in reverse: each new bag hangs off the first
  // existing bag containing all of the peeled vertex's neighbors.
  for (auto it = peels.rbegin(); it != peels.rend(); ++it) {
    const int id = static_cast<int>(td.bags.size());
    td.bags.push_back(it->bag);
    int parent = 0;
    for (int b = 0; b < id; ++b) {
      if ((td.bags[b] & it->neighbors) == it->neighbors) {
        parent = b;
        break;
      }
    }
    td.edges.push_back({parent, id});
  }
  return td;
}

bool valid_tree_decomposition(const TreeDecomposition& td,
                              const QueryGraph& q) {
  const int pieces = static_cast<int>(td.bags.size());
  if (pieces == 0) return false;
  // A tree has exactly pieces-1 edges and is connected.
  if (static_cast<int>(td.edges.size()) != pieces - 1) return false;
  std::vector<std::vector<int>> adj(pieces);
  for (const auto& [a, b] : td.edges) {
    if (a < 0 || b < 0 || a >= pieces || b >= pieces) return false;
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  std::vector<int> stack{0};
  std::vector<bool> seen(pieces, false);
  seen[0] = true;
  int reached = 0;
  while (!stack.empty()) {
    const int p = stack.back();
    stack.pop_back();
    ++reached;
    for (int nb : adj[p]) {
      if (!seen[nb]) {
        seen[nb] = true;
        stack.push_back(nb);
      }
    }
  }
  if (reached != pieces) return false;

  // (i) Every query edge inside some bag.
  for (const auto& [a, b] : q.edge_pairs()) {
    const std::uint32_t need =
        (std::uint32_t{1} << a) | (std::uint32_t{1} << b);
    bool covered = false;
    for (std::uint32_t bag : td.bags) covered |= ((bag & need) == need);
    if (!covered) return false;
  }

  // (ii) Occupancy of each query node induces a connected subtree.
  for (int v = 0; v < q.num_nodes(); ++v) {
    const std::uint32_t vbit = std::uint32_t{1} << v;
    int first = -1, count = 0;
    for (int p = 0; p < pieces; ++p) {
      if (td.bags[p] & vbit) {
        if (first < 0) first = p;
        ++count;
      }
    }
    if (count == 0) return false;  // every node must appear somewhere
    // BFS restricted to pieces containing v.
    std::vector<bool> vis(pieces, false);
    std::vector<int> st{first};
    vis[first] = true;
    int hit = 0;
    while (!st.empty()) {
      const int p = st.back();
      st.pop_back();
      ++hit;
      for (int nb : adj[p]) {
        if (!vis[nb] && (td.bags[nb] & vbit)) {
          vis[nb] = true;
          st.push_back(nb);
        }
      }
    }
    if (hit != count) return false;
  }
  return true;
}

}  // namespace ccbt
