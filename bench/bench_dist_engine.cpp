// Section 7 artifact: the distributed (virtual-MPI) engine vs the load
// model. For representative graph-query pairs this bench verifies that a
// physically sharded run reproduces the shared-memory engine's colorful
// count and modeled load exactly, and then reports what the model cannot
// see: actual transport volume (including resharding and orientation
// supersteps), off-rank fraction, and supersteps per plan.
//
// Shape to verify: off-rank traffic grows with the rank count and
// approaches (R-1)/R of all sends (random placement); DB moves less data
// than PS on skewed graphs because its tables are smaller; the model's
// comm undercounts actual transport by the resharding overhead only.

#include "common.hpp"

#include "ccbt/dist/dist_engine.hpp"

int main() {
  using namespace ccbt;
  using namespace ccbt::bench;
  print_header("Distributed engine — transport vs load model",
               "colorful parity, modeled vs actual traffic, supersteps");

  const std::vector<std::string> graphs{"enron", "condMat", "roadNetCA"};
  const std::vector<std::string> queries{"glet2", "wiki", "ecoli1"};
  const std::vector<std::uint32_t> rank_counts{4, 32};

  TextTable t({"graph", "query", "algo", "ranks", "parity", "steps",
               "sent", "off-rank%", "modeled comm", "resharding x"});

  for (const std::string& gname : graphs) {
    const CsrGraph g = make_workload(gname, bench_scale());
    for (const std::string& qname : queries) {
      const QueryGraph q = named_query(qname);
      const Plan plan = make_plan(q);
      const Coloring chi(g.num_vertices(), q.num_nodes(), 7);
      for (Algo algo : {Algo::kPS, Algo::kDB}) {
        for (std::uint32_t ranks : rank_counts) {
          ExecOptions opts;
          opts.algo = algo;
          opts.max_table_entries = bench_budget();

          ExecOptions shared_opts = opts;
          shared_opts.sim_ranks = ranks;
          CellResult shared;
          DistStats dist;
          try {
            CountingSession session(g, q, plan, shared_opts);
            const ExecStats s = session.count_colorful(chi);
            dist = run_plan_distributed(g, plan.tree, chi, ranks, opts);
            shared.ok = true;
            shared.colorful = s.colorful;
            shared.total_ops = s.total_ops;
          } catch (const BudgetExceeded&) {
            t.add_row({gname, qname, algo_name(algo),
                       std::to_string(ranks), "DNF", "-", "-", "-", "-",
                       "-"});
            continue;
          }

          const bool parity = dist.colorful == shared.colorful &&
                              dist.total_ops == shared.total_ops;
          const double off_pct =
              dist.transport.entries_sent == 0
                  ? 0.0
                  : 100.0 *
                        static_cast<double>(dist.transport.off_rank_entries) /
                        static_cast<double>(dist.transport.entries_sent);
          const double reshard_factor =
              dist.total_comm == 0
                  ? 0.0
                  : static_cast<double>(dist.transport.entries_sent) /
                        static_cast<double>(dist.total_comm);
          t.add_row({gname, qname, algo_name(algo), std::to_string(ranks),
                     parity ? "exact" : "MISMATCH",
                     std::to_string(dist.transport.supersteps),
                     std::to_string(dist.transport.entries_sent),
                     TextTable::num(off_pct, 1),
                     std::to_string(dist.total_comm),
                     TextTable::num(reshard_factor, 2)});
        }
      }
    }
  }
  t.print(std::cout);
  std::cout << "(parity: distributed colorful count and total ops equal the "
               "shared engine's;\n resharding x = actual entries moved / "
               "model-visible communication)\n";
  return 0;
}
