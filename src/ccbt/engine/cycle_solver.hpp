#pragma once
// Cycle-block solving (Section 5): PS, PS-EVEN and DB strategies.

#include "ccbt/decomp/block.hpp"
#include "ccbt/engine/path_builder.hpp"
#include "ccbt/engine/split_plan.hpp"

namespace ccbt {

/// Compute the projection table of a (possibly annotated) cycle block.
/// Output arity equals the block's boundary count; keys are ordered
/// (nodes[boundary_pos[0]], nodes[boundary_pos[1]]).
template <int B>
ProjTableT<B> solve_cycle(const ExecContext& cx, const Block& blk,
                          TablePoolT<B>& pool) {
  AccumMapT<B> sink(16, cx.opts.compact_accum);
  for (const SplitPlan& plan : splits_for(blk, cx.opts.algo)) {
    ProjTableT<B> plus = build_path<B>(cx, blk, pool, plan.plus);
    ProjTableT<B> minus = build_path<B>(cx, blk, pool, plan.minus);
    merge_halves<B>(cx, plus, minus, plan.merge, sink);
  }
  // The merge spec emitted exactly the boundary slots, so the accumulated
  // keys already project to the block's boundary images.
  return ProjTableT<B>::from_map(blk.boundary_count(), std::move(sink));
}

extern template ProjTableT<1> solve_cycle<1>(const ExecContext&, const Block&,
                                             TablePoolT<1>&);
extern template ProjTableT<2> solve_cycle<2>(const ExecContext&, const Block&,
                                             TablePoolT<2>&);
extern template ProjTableT<4> solve_cycle<4>(const ExecContext&, const Block&,
                                             TablePoolT<4>&);
extern template ProjTableT<8> solve_cycle<8>(const ExecContext&, const Block&,
                                             TablePoolT<8>&);

}  // namespace ccbt
