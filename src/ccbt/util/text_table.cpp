#include "ccbt/util/text_table.hpp"

#include <cstdint>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace ccbt {

TextTable::TextTable(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != rows_.front().size()) {
    throw std::invalid_argument("TextTable row width mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::num(std::uint64_t v) { return std::to_string(v); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(rows_.front().size(), 0);
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(width[c]))
         << std::left << rows_[r][c];
    }
    os << '\n';
    if (r == 0) {
      std::size_t total = 0;
      for (std::size_t c = 0; c < width.size(); ++c) {
        total += width[c] + (c == 0 ? 0 : 2);
      }
      os << std::string(total, '-') << '\n';
    }
  }
}

}  // namespace ccbt
