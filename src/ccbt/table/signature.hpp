#pragma once
// Color signatures (Section 4.2): the set of colors used by a partial
// colorful match, maintained as a bitmask ("Signatures are maintained as
// bitmaps", Section 7). All compatibility checks in the join procedures
// reduce to fast bitwise operations.

#include <bit>

#include "ccbt/graph/types.hpp"

namespace ccbt {

inline constexpr Signature full_signature(int k) {
  return (Signature{1} << k) - 1;
}

inline constexpr int signature_size(Signature s) { return std::popcount(s); }

inline constexpr bool signature_contains(Signature s, int color) {
  return (s >> color) & 1u;
}

/// The NodeJoin compatibility test of Figure 7: the child match shares
/// exactly the joint vertex's color with the path match.
inline constexpr bool node_join_compatible(Signature path, Signature child,
                                           Signature joint_bit) {
  return (path & child) == joint_bit;
}

/// The path-merge compatibility test of Figure 6, Procedure 2: the two
/// half-cycle matches share exactly the colors of the two shared
/// endpoints.
inline constexpr bool merge_compatible(Signature a, Signature b,
                                       Signature endpoint_bits) {
  return (a & b) == endpoint_bits;
}

}  // namespace ccbt
