// distributed_demo — the Section 7 machinery made visible: run the same
// colorful count through the shared-memory engine (with the BSP load
// model) and the virtual-MPI distributed engine, confirm they agree
// operation-for-operation, and draw the per-rank load profile that
// explains why DB scales and PS does not.
//
// Build & run:  ./examples/distributed_demo
//
// Fault-sweep mode:  ./examples/distributed_demo --fault-sweep
//   [--fault-seed S] [--max-retries N] [--deadline-ms D]
// runs the distributed engine under a grid of injected fault rates and
// checkpoint intervals, checking every recovered run against the
// fault-free count: [agree] = recovered bit-identically, [degraded] =
// recovery budget exhausted (a retryable error the estimator would turn
// into a dropped trial), [MISMATCH!] = a silent-corruption bug.

#include <algorithm>
#include <cstring>
#include <iostream>
#include <string>

#include "ccbt/core/ccbt.hpp"

namespace {

using namespace ccbt;

void draw_load_profile(const std::string& label,
                       const std::vector<std::uint64_t>& rank_ops) {
  const std::uint64_t peak =
      *std::max_element(rank_ops.begin(), rank_ops.end());
  std::cout << label << " per-rank load (peak = " << peak << " ops):\n";
  for (std::size_t r = 0; r < rank_ops.size(); ++r) {
    const int width = peak == 0 ? 0
                                : static_cast<int>(56.0 * rank_ops[r] / peak);
    std::cout << "  rank " << (r < 10 ? " " : "") << r << " |"
              << std::string(width, '#') << " " << rank_ops[r] << "\n";
  }
}

int run_fault_sweep(std::uint64_t base_seed, std::uint32_t max_retries,
                    double deadline_ms) {
  const std::uint32_t kRanks = 8;
  const CsrGraph g = chung_lu_power_law(1'500, 1.6, 6.0, 7);
  const QueryGraph q = named_query("ecoli1");
  const Plan plan = make_plan(q);
  const Coloring chi(g.num_vertices(), q.num_nodes(), 2026);

  ExecOptions base;
  const DistStats clean = run_plan_distributed(g, plan.tree, chi, kRanks,
                                               base);
  std::cout << "fault sweep: " << g.num_vertices() << " vertices, "
            << q.name() << ", " << kRanks << " ranks, fault-free colorful "
            << clean.colorful << " over " << clean.transport.supersteps
            << " supersteps\n\n";

  int mismatches = 0;
  for (std::uint64_t s = 0; s < 3; ++s) {
    for (double rate : {0.02, 0.08}) {
      for (std::uint64_t interval : {std::uint64_t{0}, std::uint64_t{8}}) {
        ExecOptions opts;
        opts.dist.faults.seed = base_seed + s;
        opts.dist.faults.drop_rate = rate;
        opts.dist.faults.dup_rate = rate;
        opts.dist.faults.delay_rate = rate;
        opts.dist.faults.stall_rate = rate / 8;
        opts.dist.faults.alloc_fail_rate = rate / 8;
        opts.dist.max_retries = max_retries;
        opts.dist.max_replays = 4;
        opts.dist.checkpoint_interval = interval;
        opts.dist.deadline_ms = deadline_ms;

        std::cout << "seed " << (base_seed + s) << " rate " << rate
                  << " ckpt " << (interval == 0 ? "off" : "@8") << ": ";
        try {
          const DistStats d =
              run_plan_distributed(g, plan.tree, chi, kRanks, opts);
          const bool agree = d.colorful == clean.colorful;
          mismatches += agree ? 0 : 1;
          std::cout << d.faults.faults_injected << " faults, "
                    << d.faults.retries << " retries, " << d.faults.replays
                    << " replays, " << d.faults.checkpoints_taken
                    << " ckpts  " << (agree ? "[agree]" : "[MISMATCH!]")
                    << "\n";
        } catch (const Error& e) {
          if (!e.retryable()) throw;
          std::cout << "[degraded] (" << error_code_name(e.code()) << ": "
                    << e.what() << ")\n";
        }
      }
    }
  }
  std::cout << "\n"
            << (mismatches == 0
                    ? "every recovered run reproduced the fault-free count"
                    : "SILENT CORRUPTION: recovered runs diverged")
            << "\n";
  return mismatches == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ccbt;

  bool fault_sweep = false;
  std::uint64_t fault_seed = 1;
  std::uint32_t max_retries = 6;
  double deadline_ms = 100.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return (i + 1 < argc) ? argv[++i] : std::string();
    };
    if (arg == "--fault-sweep") fault_sweep = true;
    else if (arg == "--fault-seed") fault_seed = std::stoull(next());
    else if (arg == "--max-retries") max_retries = std::stoul(next());
    else if (arg == "--deadline-ms") deadline_ms = std::stod(next());
    else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    }
  }
  if (fault_sweep) {
    return run_fault_sweep(fault_seed, max_retries, deadline_ms);
  }

  const std::uint32_t kRanks = 16;
  const CsrGraph g = chung_lu_power_law(6'000, 1.5, 8.0, 11);
  const QueryGraph q = named_query("ecoli1");
  const Plan plan = make_plan(q);
  const Coloring chi(g.num_vertices(), q.num_nodes(), 2026);
  std::cout << "graph: " << g.num_vertices() << " vertices, "
            << g.num_edges() << " edges, max degree " << g.max_degree()
            << "\nquery: " << q.name() << " (k=" << q.num_nodes() << "), "
            << kRanks << " virtual ranks\n\n";

  for (Algo algo : {Algo::kPS, Algo::kDB}) {
    ExecOptions opts;
    opts.algo = algo;

    // Shared-memory run with the BSP load model attached.
    ExecOptions shared_opts = opts;
    shared_opts.sim_ranks = kRanks;
    CountingSession session(g, q, plan, shared_opts);
    const ExecStats shared = session.count_colorful(chi);

    // Physically sharded virtual-MPI run.
    const DistStats dist = run_plan_distributed(g, plan.tree, chi, kRanks,
                                                opts);

    std::cout << "=== " << algo_name(algo) << " ===\n"
              << "colorful matches: shared " << shared.colorful
              << ", distributed " << dist.colorful
              << (shared.colorful == dist.colorful ? "  [agree]\n"
                                                   : "  [MISMATCH!]\n")
              << "total ops:        shared " << shared.total_ops
              << ", distributed " << dist.total_ops
              << (shared.total_ops == dist.total_ops ? "  [agree]\n"
                                                     : "  [MISMATCH!]\n")
              << "load imbalance (max/avg): "
              << (shared.avg_rank_ops > 0
                      ? static_cast<double>(shared.max_rank_ops) /
                            shared.avg_rank_ops
                      : 0.0)
              << "\ntransport: " << dist.transport.entries_sent
              << " entries moved over " << dist.transport.supersteps
              << " supersteps, "
              << dist.transport.off_rank_bytes() / 1024 << " KiB off-rank\n";

    // Re-run the shared engine just to harvest the per-rank profile.
    LoadModel load(kRanks);
    ExecContext cx{g, chi,
                   DegreeOrder(g),
                   BlockPartition(g.num_vertices(), kRanks), &load, opts};
    run_plan(cx, plan.tree);
    draw_load_profile(algo_name(algo), load.rank_ops());
    std::cout << "\n";
  }
  std::cout << "The PS profile spikes at the ranks owning the hubs; DB's "
               "is flat —\nthe load-balancing effect that drives Figures "
               "11-13 of the paper.\n";
  return 0;
}
