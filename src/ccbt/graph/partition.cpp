// BlockPartition is header-only; this translation unit exists so the build
// fails fast if the header stops compiling standalone.
#include "ccbt/graph/partition.hpp"
