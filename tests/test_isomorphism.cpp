// Small-graph isomorphism: exact tests, automorphism cross-checks, and
// the exhaustive small-query enumerator.

#include <gtest/gtest.h>

#include "ccbt/query/automorphism.hpp"
#include "ccbt/query/catalog.hpp"
#include "ccbt/query/isomorphism.hpp"
#include "ccbt/query/treewidth.hpp"
#include "ccbt/util/error.hpp"
#include "ccbt/util/rng.hpp"

namespace ccbt {
namespace {

/// Relabel q by the permutation perm (node a becomes perm[a]).
QueryGraph relabeled(const QueryGraph& q, const std::vector<int>& perm) {
  QueryGraph out(q.num_nodes(), q.name() + "_relabeled");
  for (const auto& [a, b] : q.edge_pairs()) {
    out.add_edge(static_cast<QNode>(perm[a]), static_cast<QNode>(perm[b]));
  }
  return out;
}

std::vector<int> random_perm(int n, std::uint64_t seed) {
  std::vector<int> p(n);
  for (int i = 0; i < n; ++i) p[i] = i;
  Rng rng(seed);
  for (int i = n - 1; i > 0; --i) {
    std::swap(p[i], p[rng.below(static_cast<std::uint64_t>(i) + 1)]);
  }
  return p;
}

TEST(Isomorphism, IdenticalGraphsAreIsomorphic) {
  for (const QueryGraph& q : figure8_queries()) {
    EXPECT_TRUE(are_isomorphic(q, q)) << q.name();
  }
}

TEST(Isomorphism, RelabelingPreservesIsomorphism) {
  for (const QueryGraph& q : figure8_queries()) {
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      const QueryGraph r = relabeled(q, random_perm(q.num_nodes(), seed));
      EXPECT_TRUE(are_isomorphic(q, r)) << q.name() << " seed=" << seed;
      EXPECT_EQ(iso_invariant_code(q), iso_invariant_code(r))
          << q.name() << " seed=" << seed;
    }
  }
}

TEST(Isomorphism, DifferentGraphsAreNot) {
  EXPECT_FALSE(are_isomorphic(q_cycle(4), q_path(4)));
  EXPECT_FALSE(are_isomorphic(q_cycle(5), q_cycle(6)));
  EXPECT_FALSE(are_isomorphic(q_star(3), q_path(4)));
  EXPECT_FALSE(are_isomorphic(named_query("glet1"), named_query("glet2")));
}

TEST(Isomorphism, SameDegreeSequenceDifferentStructure) {
  // The classic 3-regular pair on 6 nodes: K3,3 (triangle free) vs the
  // triangular prism (two triangles joined by a matching). Identical
  // degree sequences, not isomorphic — degree pruning alone cannot
  // separate them, the backtracking must.
  QueryGraph k33(6, "k33");
  for (int a = 0; a < 3; ++a) {
    for (int b = 3; b < 6; ++b) {
      k33.add_edge(static_cast<QNode>(a), static_cast<QNode>(b));
    }
  }
  QueryGraph prism(6, "prism");
  prism.add_edge(0, 1);
  prism.add_edge(1, 2);
  prism.add_edge(2, 0);
  prism.add_edge(3, 4);
  prism.add_edge(4, 5);
  prism.add_edge(5, 3);
  prism.add_edge(0, 3);
  prism.add_edge(1, 4);
  prism.add_edge(2, 5);
  ASSERT_EQ(k33.num_edges(), prism.num_edges());
  EXPECT_FALSE(are_isomorphic(k33, prism));
  EXPECT_NE(iso_invariant_code(k33), iso_invariant_code(prism));
}

TEST(Isomorphism, CountIsomorphismsEqualsAutomorphismsOnSelf) {
  for (const QueryGraph& q : figure8_queries()) {
    EXPECT_EQ(count_isomorphisms(q, q), count_automorphisms(q)) << q.name();
  }
  EXPECT_EQ(count_isomorphisms(q_cycle(5), q_cycle(5)), 10u);  // dihedral
  EXPECT_EQ(count_isomorphisms(q_star(4), q_star(4)), 24u);    // 4! leaves
  EXPECT_EQ(count_isomorphisms(q_path(3), q_path(3)), 2u);
}

TEST(Isomorphism, CountIsZeroForNonIsomorphic) {
  EXPECT_EQ(count_isomorphisms(q_cycle(4), q_path(4)), 0u);
}

TEST(Isomorphism, InvariantCodeSeparatesSmallClasses) {
  // Exact canonical form below 9 nodes: distinct classes get distinct
  // codes.
  const auto qs = all_connected_queries(5, 2);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    for (std::size_t j = i + 1; j < qs.size(); ++j) {
      EXPECT_NE(iso_invariant_code(qs[i]), iso_invariant_code(qs[j]))
          << qs[i].name() << " vs " << qs[j].name();
    }
  }
}

TEST(Isomorphism, AllConnectedQueriesCounts) {
  // Known counts of connected simple graphs up to isomorphism: 2 on 3
  // nodes, 6 on 4 nodes, 21 on 5 nodes. Treewidth <= 2 excludes K4 (and
  // on 5 nodes the 10 classes containing a K4 minor).
  EXPECT_EQ(all_connected_queries(3, 2).size(), 2u);
  EXPECT_EQ(all_connected_queries(4, 2).size(), 5u);   // 6 minus K4
  const auto five = all_connected_queries(5, 2);
  EXPECT_GT(five.size(), 8u);
  EXPECT_LT(five.size(), 21u);
  for (const QueryGraph& q : five) {
    EXPECT_TRUE(q.connected());
    EXPECT_TRUE(treewidth_at_most_2(q));
  }
}

TEST(Isomorphism, AllConnectedTreesCounts) {
  // Trees up to isomorphism: 1 on 3 nodes, 2 on 4, 3 on 5, 6 on 6.
  EXPECT_EQ(all_connected_queries(3, 1).size(), 1u);
  EXPECT_EQ(all_connected_queries(4, 1).size(), 2u);
  EXPECT_EQ(all_connected_queries(5, 1).size(), 3u);
  EXPECT_EQ(all_connected_queries(6, 1).size(), 6u);
}

TEST(Isomorphism, EnumeratorRejectsBadArgs) {
  EXPECT_THROW(all_connected_queries(2, 2), Error);
  EXPECT_THROW(all_connected_queries(7, 2), Error);
  EXPECT_THROW(all_connected_queries(5, 3), Error);
}

TEST(Isomorphism, WlHashStableForLargeQueries) {
  // n > 8 uses the invariant hash: still label invariant.
  const QueryGraph sat = q_satellite();
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const QueryGraph r = relabeled(sat, random_perm(sat.num_nodes(), seed));
    EXPECT_EQ(iso_invariant_code(sat), iso_invariant_code(r))
        << "seed=" << seed;
  }
  EXPECT_NE(iso_invariant_code(q_cycle(11)), iso_invariant_code(sat));
}

}  // namespace
}  // namespace ccbt
