#pragma once
// The contraction process of Section 4.1.
//
// Contractor maintains the working query Q together with node/edge
// annotations. Each step selects a block candidate (leaf edge or
// contractible cycle), removes it from Q per Cases 1-3, and appends the
// corresponding node to the decomposition tree. Lemma 4.1 guarantees a
// candidate exists at every step for treewidth-2 queries; Contractor
// throws UnsupportedQuery otherwise.

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ccbt/decomp/block.hpp"
#include "ccbt/query/query_graph.hpp"

namespace ccbt {

class Contractor {
 public:
  explicit Contractor(const QueryGraph& q);

  struct Candidate {
    BlockKind kind = BlockKind::kCycle;
    std::vector<QNode> nodes;     // cycle order / {boundary, leaf}
    std::vector<int> boundary_pos;
    /// Symmetry key: candidates with equal signatures lead to isomorphic
    /// post-contraction states and need only be explored once.
    std::string signature;
  };

  /// All contractible blocks of the current working query, deterministic
  /// order, deduplicated by signature.
  std::vector<Candidate> candidates() const;

  /// Apply one contraction (Cases 1-3 of Section 4.1, plus the
  /// zero-boundary root case).
  void contract(const Candidate& c);

  /// True once the working query is a single (possibly annotated) node or
  /// fully consumed by a root cycle.
  bool done() const;

  /// Finalize: installs the singleton root if the last contraction left a
  /// node, and returns the tree.
  DecompTree finish();

  /// Canonical serialization of a finished tree, used for deduplication
  /// during enumeration.
  static std::string canonical_string(const DecompTree& tree);

  int alive_count() const;

 private:
  struct EdgeAnnot {
    int block = -1;
    QNode first = 0;  // query node that is the child's first boundary
  };

  std::string block_signature(const Candidate& c) const;
  void for_each_chordless_cycle(
      const std::function<void(const std::vector<QNode>&)>& fn) const;
  std::vector<QNode> boundary_of_cycle(const std::vector<QNode>& cyc) const;
  const EdgeAnnot* edge_annotation(QNode a, QNode b) const;

  QueryGraph q_;
  std::uint32_t alive_ = 0;
  std::array<int, kMaxQueryNodes> node_annot_;
  std::map<std::pair<int, int>, EdgeAnnot> edge_annot_;
  DecompTree tree_;
  std::vector<std::string> block_canon_;  // canonical string per built block
  bool root_done_ = false;
};

/// Build one decomposition tree with the first-candidate policy.
DecompTree decompose_default(const QueryGraph& q);

}  // namespace ccbt
