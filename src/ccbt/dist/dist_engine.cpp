#include "ccbt/dist/dist_engine.hpp"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "ccbt/dist/checkpoint.hpp"
#include "ccbt/engine/load_model.hpp"
#include "ccbt/engine/path_builder.hpp"
#include "ccbt/engine/primitives.hpp"
#include "ccbt/engine/split_plan.hpp"
#include "ccbt/graph/degree_order.hpp"
#include "ccbt/table/signature.hpp"
#include "ccbt/util/error.hpp"
#include "ccbt/util/timer.hpp"

namespace ccbt {

namespace {

// The per-entry join logic lives in the kernels of engine/primitives.hpp,
// shared verbatim with the shared-memory engine — that sharing is what
// guarantees exact load-model parity at every batch width. This file only
// routes kernel emissions through the transport.

/// Distributed execution state threaded through every primitive: the
/// shared-memory ExecContext (whose LoadModel the primitives charge
/// exactly as the shared engine does) plus the transport.
template <int B>
struct Dx {
  const ExecContext& cx;
  VirtualCommT<B>& comm;
  std::size_t budget;
  VertexId domain;  // data-graph vertex count (bucket-index domain)
  FaultPlan* faults = nullptr;  // nullptr = no injection

  const BlockPartition& part() const { return cx.part; }
  std::uint32_t ranks() const { return comm.num_ranks(); }
  std::uint32_t owner(VertexId v) const { return cx.part.owner(v); }

  /// Kernel emission routed to the owner of the key's `home` slot vertex.
  auto route_to_slot(std::uint32_t from, int home) {
    return [this, from, home](const TableKey& key,
                              const typename LaneOps<B>::Vec& cnt) {
      comm.send(from, owner(key.v[home]), {key, cnt});
    };
  }
};

/// Deterministically injected allocation failure at a table-materialize
/// point. Retryable: the replay layer rolls back to the last checkpoint
/// (the fault stream has advanced, so the replayed attempt rolls fresh
/// decisions and can succeed).
template <int B>
void maybe_alloc_fail(Dx<B>& dx, const char* where) {
  if (dx.faults != nullptr && dx.faults->alloc_fails()) {
    throw Error(ErrorCode::kAllocFailed,
                std::string(where) + ": injected allocation failure");
  }
}

/// Deliver the queued emissions and collect them into a path table:
/// entry (.., v, ..) lives with owner(v) (home slot 1, Section 7).
template <int B>
DistTableT<B> collect_path(Dx<B>& dx, int arity) {
  ScopedStage timed(dx.cx.stage_slot(&StageWall::transport));
  dx.comm.exchange();
  maybe_alloc_fail(dx, "collect_path");
  return DistTableT<B>::collect(arity, /*home_slot=*/1, dx.comm,
                                SortOrder::kUnsorted, dx.budget, dx.domain);
}

template <int B>
DistTableT<B> d_init_path_from_graph(Dx<B>& dx, const ExtendOpts& o) {
  const ExecContext& cx = dx.cx;
  {
    ScopedStage timed(cx.stage_slot(&StageWall::accumulate));
    for (std::uint32_t r = 0; r < dx.ranks(); ++r) {
      auto emit = dx.route_to_slot(r, 1);
      for (VertexId u = dx.part().begin(r); u < dx.part().end(r); ++u) {
        kernel_init_from_graph<B>(cx, u, o, emit);
      }
    }
  }
  DistTableT<B> t = collect_path(dx, 2);
  cx.end_phase();
  return t;
}

template <int B>
DistTableT<B> d_init_path_from_child(Dx<B>& dx, const DistTableT<B>& child,
                                     const ExtendOpts& o) {
  const ExecContext& cx = dx.cx;
  // Stored child shards may be lane-compressed: for_each_entry expands
  // each masked payload row on the fly.
  {
    ScopedStage timed(cx.stage_slot(&StageWall::accumulate));
    for (std::uint32_t r = 0; r < dx.ranks(); ++r) {
      auto emit = dx.route_to_slot(r, 1);
      child.shard(r).for_each_entry([&](const TableEntryT<B>& e) {
        kernel_init_from_child<B>(cx, e, /*flip=*/false, o, emit);
      });
    }
  }
  DistTableT<B> t = collect_path(dx, 2);
  cx.end_phase();
  return t;
}

template <int B>
DistTableT<B> d_extend_with_graph(Dx<B>& dx, DistTableT<B>& path,
                                  const ExtendOpts& o) {
  const ExecContext& cx = dx.cx;
  // The shared engine's batched extension seals (and thereby merges) the
  // path before iterating; sealing the shards keeps the iterated row
  // multiset — and hence every load-model charge — in exact parity. The
  // sealed shards are consumed once right below: stay dense (kStream).
  if constexpr (B > 1) {
    ScopedStage timed(cx.stage_slot(&StageWall::seal));
    path.seal_shards(SortOrder::kByV1, dx.domain, LaneSealHint::kStream);
  }
  {
    ScopedStage timed(cx.stage_slot(&StageWall::accumulate));
    for (std::uint32_t r = 0; r < dx.ranks(); ++r) {
      cx.note_lanes(path.shard(r).layout());
      auto emit = dx.route_to_slot(r, 1);
      path.shard(r).for_each_entry([&](const TableEntryT<B>& e) {
        kernel_extend_with_graph<B>(cx, e, o, emit);
      });
    }
  }
  DistTableT<B> t = collect_path(dx, path.arity());
  cx.end_phase();
  return t;
}

template <int B>
DistTableT<B> d_extend_with_child(Dx<B>& dx, DistTableT<B>& path,
                                  const DistTableT<B>& child,
                                  const ExtendOpts& o) {
  const ExecContext& cx = dx.cx;
  if constexpr (B > 1) {
    ScopedStage timed(cx.stage_slot(&StageWall::seal));
    path.seal_shards(SortOrder::kByV1, dx.domain, LaneSealHint::kStream);
  }
  // Path entries with frontier v and child entries (v, w, ..) are
  // co-located at owner(v): the EdgeJoin probe is rank-local. The child
  // shard may be lane-compressed (stored tables): it is probed once per
  // path row, so ChildProbe expands it once up front.
  {
    ScopedStage timed(cx.stage_slot(&StageWall::accumulate));
    for (std::uint32_t r = 0; r < dx.ranks(); ++r) {
      cx.note_lanes(path.shard(r).layout());
      const detail::ChildProbe<B> probe(child.shard(r));
      auto emit = dx.route_to_slot(r, 1);
      path.shard(r).for_each_entry([&](const TableEntryT<B>& e) {
        kernel_extend_with_child<B>(cx, e, probe.group(0, e.key.v[1]), o,
                                    emit);
      });
    }
  }
  DistTableT<B> t = collect_path(dx, path.arity());
  cx.end_phase();
  return t;
}

template <int B>
DistTableT<B> d_node_join(Dx<B>& dx, const DistTableT<B>& path,
                          const DistTableT<B>& child, int slot) {
  const ExecContext& cx = dx.cx;
  // The unary child lives with owner(x) (home slot 0). Probing by the
  // anchor slot needs the path rehomed there first — a transport-only
  // superstep a real implementation pays, invisible to the load model.
  const DistTableT<B>* src = &path;
  DistTableT<B> rehomed;
  if (slot == 0 && dx.ranks() > 1) {
    ScopedStage timed(cx.stage_slot(&StageWall::transport));
    rehomed = path.resharded(0, dx.comm, dx.part(), SortOrder::kUnsorted,
                             dx.budget, dx.domain);
    src = &rehomed;
  }
  {
    ScopedStage timed(cx.stage_slot(&StageWall::accumulate));
    for (std::uint32_t r = 0; r < dx.ranks(); ++r) {
      const detail::ChildProbe<B> probe(child.shard(r));
      auto emit = dx.route_to_slot(r, 1);
      src->shard(r).for_each_entry([&](const TableEntryT<B>& e) {
        kernel_node_join<B>(cx, e, probe.group(0, e.key.v[slot]), slot,
                            emit);
      });
    }
  }
  DistTableT<B> t = collect_path(dx, path.arity());
  cx.end_phase();
  return t;
}

/// Merge the co-located (u, v) groups of the two half-cycle tables with
/// the same merge_bucket kernel as the shared engine, routing every
/// output to the owner of its slot-0 boundary image (the storage home of
/// block tables); outputs of a root merge (out_arity 0) collapse to rank
/// 0. Accumulates into the per-rank cycle sinks.
template <int B>
void d_merge_halves(Dx<B>& dx, DistTableT<B>& plus, DistTableT<B>& minus,
                    const MergeSpec& spec,
                    std::vector<AccumMapT<B>>& sinks) {
  const ExecContext& cx = dx.cx;
  // Both halves are consumed by this one merge: stay dense (kStream).
  {
    ScopedStage timed(cx.stage_slot(&StageWall::seal));
    plus.seal_shards(SortOrder::kByV0V1, dx.domain, LaneSealHint::kStream);
    minus.seal_shards(SortOrder::kByV0V1, dx.domain, LaneSealHint::kStream);
  }
  {
    ScopedStage timed_merge(cx.stage_slot(&StageWall::merge));
    for (std::uint32_t r = 0; r < dx.ranks(); ++r) {
      cx.note_lanes(plus.shard(r).layout());
      cx.note_lanes(minus.shard(r).layout());
      const auto pe = plus.shard(r).entries();
      const auto me = minus.shard(r).entries();
      auto route = [&](const TableKey& key,
                       const typename LaneOps<B>::Vec& cnt) {
        const std::uint32_t dest =
            spec.out_arity >= 1 ? dx.owner(key.v[0]) : 0;
        dx.comm.send(r, dest, {key, cnt});
      };
      // Two-pointer over the shard's slot-0 groups; merge_bucket handles
      // the (u, v) subgroup join and the load charges within each.
      std::size_t pi = 0, mi = 0;
      while (pi < pe.size() && mi < me.size()) {
        if (pe[pi].key.v[0] < me[mi].key.v[0]) {
          ++pi;
          continue;
        }
        if (me[mi].key.v[0] < pe[pi].key.v[0]) {
          ++mi;
          continue;
        }
        const VertexId u = pe[pi].key.v[0];
        std::size_t pj = pi, mj = mi;
        while (pj < pe.size() && pe[pj].key.v[0] == u) ++pj;
        while (mj < me.size() && me[mj].key.v[0] == u) ++mj;
        merge_bucket<B>(cx, pe.subspan(pi, pj - pi),
                        me.subspan(mi, mj - mi), spec, route);
        pi = pj;
        mi = mj;
      }
    }
  }
  ScopedStage timed(cx.stage_slot(&StageWall::transport));
  dx.comm.exchange();
  maybe_alloc_fail(dx, "merge_halves");
  std::size_t total = 0;
  for (std::uint32_t r = 0; r < dx.ranks(); ++r) {
    for (const TableEntryT<B>& e : dx.comm.inbox(r)) {
      sinks[r].add(e.key, e.cnt);
    }
    total += sinks[r].size();
  }
  if (total > dx.budget) {
    throw BudgetExceeded("projection table exceeded " +
                         std::to_string(dx.budget) + " entries");
  }
  cx.end_phase();
}

template <int B>
DistTableT<B> d_aggregate(Dx<B>& dx, const DistTableT<B>& t, int new_arity) {
  const ExecContext& cx = dx.cx;
  {
    ScopedStage timed(cx.stage_slot(&StageWall::accumulate));
    for (std::uint32_t r = 0; r < dx.ranks(); ++r) {
      auto emit = [&](const TableKey& key,
                      const typename LaneOps<B>::Vec& cnt) {
        const std::uint32_t dest = new_arity >= 1 ? dx.owner(key.v[0]) : 0;
        dx.comm.send(r, dest, {key, cnt});
      };
      t.shard(r).for_each_entry([&](const TableEntryT<B>& e) {
        kernel_aggregate<B>(cx, e, new_arity, emit);
      });
    }
  }
  ScopedStage timed(cx.stage_slot(&StageWall::transport));
  dx.comm.exchange();
  maybe_alloc_fail(dx, "aggregate");
  DistTableT<B> out =
      DistTableT<B>::collect(new_arity, /*home_slot=*/0, dx.comm,
                             SortOrder::kUnsorted, dx.budget, dx.domain);
  cx.end_phase();
  return out;
}

/// Solved child-block tables: stored home slot 0, shards sealed kByV0
/// (the same convention as the shared TablePool), with lazily cached
/// transposes produced by a transport superstep. Stored shards seal with
/// the kStore hint, so at B > 1 they re-pack into the lane-compressed
/// layout when the observed density makes that smaller.
template <int B>
class DistPool {
 public:
  DistPool(std::size_t num_blocks, VertexId domain, bool compress,
           StageWall* stage = nullptr)
      : tables_(num_blocks),
        transposed_(num_blocks),
        has_transposed_(num_blocks, false),
        stored_(num_blocks, false),
        domain_(domain),
        hint_(compress ? LaneSealHint::kStore : LaneSealHint::kStream),
        stage_(stage) {}

  void store(int block, DistTableT<B> table) {
    {
      ScopedStage timed(stage_ == nullptr ? nullptr : &stage_->seal);
      table.seal_shards(SortOrder::kByV0, domain_, hint_);
    }
    tables_[block] = std::move(table);
    stored_[block] = true;
  }

  const DistTableT<B>& get(int block) const { return tables_[block]; }

  const DistTableT<B>& oriented(Dx<B>& dx, int block, bool transposed) {
    if (!transposed) return tables_[block];
    if (!has_transposed_[block]) {
      // A transpose is a transport superstep plus a sealing collect;
      // charge it to transport (the seal inside is not separable here).
      ScopedStage timed(stage_ == nullptr ? nullptr : &stage_->transport);
      transposed_[block] = tables_[block].transposed(
          dx.comm, dx.part(), dx.budget, domain_, hint_);
      has_transposed_[block] = true;
    }
    return transposed_[block];
  }

  /// Serialize every stored table shard-by-shard through the
  /// lane-compressed wire encoding. Cached transposes are deliberately
  /// not captured: they regenerate on demand after a restore.
  CheckpointImageT<B> checkpoint(std::size_t next_block,
                                 std::uint64_t supersteps) const {
    CheckpointImageT<B> img;
    img.next_block = next_block;
    img.supersteps = supersteps;
    for (std::size_t b = 0; b < tables_.size(); ++b) {
      if (!stored_[b]) continue;
      const DistTableT<B>& t = tables_[b];
      typename CheckpointImageT<B>::TableImage ti;
      ti.block = static_cast<int>(b);
      ti.arity = t.arity();
      ti.home_slot = t.home_slot();
      ti.shards.reserve(t.num_shards());
      for (std::uint32_t r = 0; r < t.num_shards(); ++r) {
        ti.shards.push_back(checkpoint_encode_shard<B>(t.shard(r)));
      }
      img.tables.push_back(std::move(ti));
    }
    return img;
  }

  /// Rebuild the stored tables from `img`, dropping everything newer.
  /// Decoded rows arrive in sealed order with unique keys, so re-sealing
  /// reproduces the checkpointed shards bit for bit whichever seal sort
  /// is active: the radix engine's validation pass detects the sorted
  /// input and leaves it in place, the comparison engine is stable, and
  /// the layout chooser is deterministic either way.
  void restore(const CheckpointImageT<B>& img, std::uint32_t ranks) {
    std::fill(stored_.begin(), stored_.end(), false);
    std::fill(has_transposed_.begin(), has_transposed_.end(), false);
    for (auto& t : tables_) t = DistTableT<B>();
    for (auto& t : transposed_) t = DistTableT<B>();
    for (const auto& ti : img.tables) {
      if (ti.block < 0 ||
          static_cast<std::size_t>(ti.block) >= tables_.size() ||
          ti.shards.size() != ranks) {
        throw CheckpointCorrupt("checkpoint table image for block " +
                                std::to_string(ti.block) +
                                " does not match the run shape");
      }
      std::vector<std::vector<TableEntryT<B>>> rows;
      rows.reserve(ti.shards.size());
      for (const std::vector<std::uint8_t>& bytes : ti.shards) {
        rows.push_back(checkpoint_decode_shard<B>(bytes));
      }
      tables_[ti.block] = DistTableT<B>::from_shard_rows(
          ti.arity, ti.home_slot, std::move(rows), SortOrder::kByV0,
          domain_, hint_);
      stored_[ti.block] = true;
    }
  }

 private:
  std::vector<DistTableT<B>> tables_;
  std::vector<DistTableT<B>> transposed_;
  std::vector<bool> has_transposed_;
  std::vector<bool> stored_;
  VertexId domain_;
  LaneSealHint hint_;
  StageWall* stage_ = nullptr;
};

template <int B>
DistTableT<B> d_build_path(Dx<B>& dx, const Block& blk, DistPool<B>& pool,
                           const PathSpec& spec) {
  const std::size_t steps = spec.positions.size();
  if (steps < 2) {
    throw Error(ErrorCode::kUnsupportedQuery,
                "build_path: path needs at least one edge");
  }

  ExtendOpts init_opts{spec.track_slot_at[1], spec.anchor_higher};
  DistTableT<B> table;
  {
    const int e0 = spec.edge_index[0];
    const int child = blk.edge_child[e0];
    if (child < 0) {
      table = d_init_path_from_graph(dx, init_opts);
    } else {
      const DistTableT<B>& oriented = pool.oriented(
          dx, child, needs_transpose(blk, e0, spec.edge_forward[0]));
      table = d_init_path_from_child(dx, oriented, init_opts);
    }
  }
  if (spec.include_start_annot) {
    const int child = blk.node_child[spec.positions[0]];
    if (child >= 0) {
      table = d_node_join(dx, table, pool.get(child), /*slot=*/0);
    }
  }

  for (std::size_t s = 1; s < steps; ++s) {
    const bool is_end = (s + 1 == steps);
    if (!is_end || spec.include_end_annot) {
      const int child = blk.node_child[spec.positions[s]];
      if (child >= 0) {
        table = d_node_join(dx, table, pool.get(child), /*slot=*/1);
      }
    }
    if (is_end) break;
    ExtendOpts opts{spec.track_slot_at[s + 1], spec.anchor_higher};
    const int e = spec.edge_index[s];
    const int child = blk.edge_child[e];
    if (child < 0) {
      table = d_extend_with_graph(dx, table, opts);
    } else {
      const DistTableT<B>& oriented = pool.oriented(
          dx, child, needs_transpose(blk, e, spec.edge_forward[s]));
      table = d_extend_with_child(dx, table, oriented, opts);
    }
  }
  return table;
}

template <int B>
DistTableT<B> d_solve_cycle(Dx<B>& dx, const Block& blk, DistPool<B>& pool) {
  std::vector<AccumMapT<B>> sinks(dx.ranks());
  for (const SplitPlan& plan : splits_for(blk, dx.cx.opts.algo)) {
    DistTableT<B> plus = d_build_path(dx, blk, pool, plan.plus);
    DistTableT<B> minus = d_build_path(dx, blk, pool, plan.minus);
    d_merge_halves(dx, plus, minus, plan.merge, sinks);
  }
  return DistTableT<B>::from_maps(blk.boundary_count(), /*home_slot=*/0,
                                  std::move(sinks));
}

template <int B>
DistTableT<B> d_solve_leaf_edge(Dx<B>& dx, const Block& blk,
                                DistPool<B>& pool) {
  if (blk.kind != BlockKind::kLeafEdge) {
    throw Error(ErrorCode::kUnsupportedQuery,
                "solve_leaf_edge: not a leaf-edge block");
  }
  ExtendOpts no_opts;
  DistTableT<B> table;
  const int edge_child = blk.edge_child[0];
  if (edge_child < 0) {
    table = d_init_path_from_graph(dx, no_opts);
  } else {
    table = d_init_path_from_child(
        dx, pool.oriented(dx, edge_child, blk.edge_child_flip[0]), no_opts);
  }
  if (blk.node_child[1] >= 0) {
    table = d_node_join(dx, table, pool.get(blk.node_child[1]), /*slot=*/1);
  }
  if (blk.node_child[0] >= 0) {
    table = d_node_join(dx, table, pool.get(blk.node_child[0]), /*slot=*/0);
  }
  return d_aggregate(dx, table, /*new_arity=*/1);
}

template <int B>
DistStats run_plan_distributed_impl(const CsrGraph& g, const DecompTree& tree,
                                    const ColoringBatch& batch,
                                    std::uint32_t ranks, ExecOptions opts) {
  Timer timer;
  const DegreeOrder order = opts.order_by_id
                                ? DegreeOrder::by_id(g.num_vertices())
                                : DegreeOrder(g);
  LoadModel load(ranks);
  DistStats stats;
  const ExecContext cx{g,
                       batch,
                       order,
                       BlockPartition(g.num_vertices(), ranks),
                       &load,
                       opts,
                       &stats.lanes,
                       &stats.stage,
                       &stats.accum};
  VirtualCommT<B> comm(ranks);
  FaultPlan faults(opts.dist.faults);
  FaultPlan* fp = faults.enabled() ? &faults : nullptr;
  if (fp != nullptr) {
    comm.set_fault_plan(fp, opts.dist.max_retries, opts.dist.backoff_base_ms,
                        opts.dist.deadline_ms);
  }
  Dx<B> dx{cx, comm, opts.max_table_entries, g.num_vertices(), fp};
  DistPool<B> pool(tree.blocks.size(), g.num_vertices(),
                   opts.lane_compress, &stats.stage);

  stats.lanes_used = batch.lanes();
  auto record_root = [&](const typename LaneOps<B>::Vec& totals) {
    for (int l = 0; l < B; ++l) {
      stats.colorful_lane[l] = LaneOps<B>::lane(totals, l);
    }
    stats.colorful = stats.colorful_lane[0];
  };

  // Block loop with rollback replay. `ckpt` starts as the implicit empty
  // checkpoint (next_block 0): with checkpointing disabled, a replay
  // restarts the whole run. A retryable failure inside block i (the
  // transport exhausted its retries, or an injected allocation failure)
  // rolls the pool back to `ckpt` and resumes from ckpt.next_block; the
  // replayed blocks recompute against fresh fault rolls. Non-retryable
  // errors (BudgetExceeded, malformed plans) propagate unchanged.
  CheckpointImageT<B> ckpt;
  std::uint32_t replays_left = opts.dist.max_replays;
  std::size_t i = 0;
  bool done = false;
  while (!done && i < tree.blocks.size()) {
    try {
      const Block& blk = tree.blocks[i];
      const bool is_root = (static_cast<int>(i) == tree.root);

      if (blk.kind == BlockKind::kSingleton) {
        if (!is_root) {
          throw Error(ErrorCode::kUnsupportedQuery,
                      "run_plan_distributed: singleton below the root");
        }
        if (blk.node_child[0] >= 0) {
          record_root(comm.allreduce_sum_lanes(
              pool.get(blk.node_child[0]).shard_lane_totals()));
        } else {
          // Single-node query: every data vertex is a colorful match
          // under every coloring.
          for (int l = 0; l < B; ++l) {
            stats.colorful_lane[l] = g.num_vertices();
          }
          stats.colorful = g.num_vertices();
        }
        done = true;
        continue;
      }

      DistTableT<B> table = (blk.kind == BlockKind::kLeafEdge)
                                ? d_solve_leaf_edge(dx, blk, pool)
                                : d_solve_cycle(dx, blk, pool);
      if (is_root) {
        record_root(comm.allreduce_sum_lanes(table.shard_lane_totals()));
        done = true;
        continue;
      }
      pool.store(static_cast<int>(i), std::move(table));
      const DistTableT<B>& stored = pool.get(static_cast<int>(i));
      for (std::uint32_t r = 0; r < stored.num_shards(); ++r) {
        cx.note_lanes(stored.shard(r).layout());
      }
      ++i;
      if (opts.dist.checkpoint_interval > 0 &&
          comm.stats().supersteps - ckpt.supersteps >=
              opts.dist.checkpoint_interval) {
        ckpt = pool.checkpoint(i, comm.stats().supersteps);
        FaultStats& fs = faults.stats();
        ++fs.checkpoints_taken;
        fs.checkpoint_bytes += ckpt.bytes();
      }
    } catch (const Error& e) {
      if (!e.retryable()) throw;
      if (replays_left == 0) {
        throw Error("run_plan_distributed: replay budget exhausted at block " +
                        std::to_string(i),
                    e);
      }
      --replays_left;
      FaultStats& fs = faults.stats();
      ++fs.replays;
      fs.replayed_supersteps += comm.stats().supersteps - ckpt.supersteps;
      comm.reset_in_flight();
      pool.restore(ckpt, ranks);
      i = ckpt.next_block;
    }
  }

  stats.wall_seconds = timer.seconds();
  stats.sim_time = load.sim_time();
  stats.total_ops = load.total_ops();
  stats.max_rank_ops = load.max_rank_ops();
  stats.avg_rank_ops = load.avg_rank_ops();
  stats.total_comm = load.total_comm();
  stats.transport = comm.stats();
  stats.faults = faults.stats();
  return stats;
}

}  // namespace

DistStats run_plan_distributed(const CsrGraph& g, const DecompTree& tree,
                               const Coloring& chi, std::uint32_t ranks,
                               ExecOptions opts) {
  return run_plan_distributed(g, tree, ColoringBatch(chi), ranks, opts);
}

DistStats run_plan_distributed(const CsrGraph& g, const DecompTree& tree,
                               const ColoringBatch& batch,
                               std::uint32_t ranks, ExecOptions opts) {
  if (tree.root < 0) {
    throw Error(ErrorCode::kUnsupportedQuery,
                "run_plan_distributed: tree has no root");
  }
  switch (batch.lanes()) {
    case 1: return run_plan_distributed_impl<1>(g, tree, batch, ranks, opts);
    case 2: return run_plan_distributed_impl<2>(g, tree, batch, ranks, opts);
    case 4: return run_plan_distributed_impl<4>(g, tree, batch, ranks, opts);
    case 8: return run_plan_distributed_impl<8>(g, tree, batch, ranks, opts);
    default: break;
  }
  throw Error(ErrorCode::kUnsupportedQuery,
              "run_plan_distributed: batch width must be 1, 2, 4 or 8");
}

}  // namespace ccbt
