// Google-benchmark microbenchmarks of the engine's primitives: the
// accumulation hash map, table sealing (counting partition + bucket
// index), O(1) group lookup, the parallel half-cycle merge, graph-edge
// extension, and an end-to-end triangle count. These guard the constants
// behind every figure bench.
//
// The binary first runs a small deterministic harness that times the
// three hot table-layer operations — group lookup, seal, merge — against
// their naive references (two binary searches per probe; a whole-table
// comparison sort) and writes the results to BENCH_primitives.json, so
// successive PRs can track the perf trajectory mechanically. The google
// benchmarks run afterwards.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "ccbt/core/color_coding.hpp"
#include "ccbt/engine/primitives.hpp"
#include "ccbt/graph/degree_order.hpp"
#include "ccbt/graph/generators.hpp"
#include "ccbt/query/catalog.hpp"
#include "ccbt/util/rng.hpp"
#include "ccbt/util/timer.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace {

using namespace ccbt;

constexpr VertexId kDomain = 1 << 14;

std::vector<TableEntry> random_binary_entries(std::size_t n,
                                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TableEntry> entries(n);
  for (TableEntry& e : entries) {
    e.key.v[0] = static_cast<VertexId>(rng.below(kDomain));
    e.key.v[1] = static_cast<VertexId>(rng.below(kDomain));
    e.key.sig = static_cast<Signature>(1u << rng.below(8));
    e.cnt = 1;
  }
  return entries;
}

ProjTable unsorted_table(const std::vector<TableEntry>& entries) {
  AccumMap map(entries.size());
  for (const TableEntry& e : entries) map.add(e.key, e.cnt);
  return ProjTable::from_map(2, std::move(map));
}

// -------------------------------------------------------------------
// JSON harness: ns/probe (group), ns/entry (seal, merge), with naive
// baselines measured in-process so every report carries its own speedup.

struct GroupNumbers {
  std::size_t entries = 0;
  std::size_t probes = 0;
  double ns_per_probe = 0.0;
  double ns_per_probe_binary_search = 0.0;
};

GroupNumbers measure_group_lookup() {
  GroupNumbers out;
  const std::size_t n = 1 << 17;
  const std::size_t probes = 1 << 21;
  ProjTable indexed = unsorted_table(random_binary_entries(n, 5));
  indexed.seal(SortOrder::kByV0, kDomain);

  // Same content without the index (forces the two-binary-search path).
  ProjTable searched = unsorted_table(random_binary_entries(n, 5));
  {
    TableEntry far{};
    far.key.v[0] = 0xFFFFFFF0u;  // out of any detectable domain
    searched.push_unchecked(far);
    searched.seal(SortOrder::kByV0);
  }

  Rng rng(17);
  std::vector<VertexId> keys(probes);
  for (auto& v : keys) v = static_cast<VertexId>(rng.below(kDomain));

  std::size_t sink = 0;
  Timer t_idx;
  for (VertexId v : keys) sink += indexed.group(0, v).size();
  const double ns_idx = t_idx.seconds() * 1e9 / static_cast<double>(probes);
  Timer t_bin;
  for (VertexId v : keys) sink += searched.group(0, v).size();
  const double ns_bin = t_bin.seconds() * 1e9 / static_cast<double>(probes);
  benchmark::DoNotOptimize(sink);

  out.entries = n;
  out.probes = probes;
  out.ns_per_probe = ns_idx;
  out.ns_per_probe_binary_search = ns_bin;
  return out;
}

struct SealNumbers {
  std::size_t entries = 0;
  double ns_per_entry = 0.0;
  double ns_per_entry_comparison_sort = 0.0;
};

SealNumbers measure_seal() {
  SealNumbers out;
  const std::size_t n = 1 << 18;
  const int reps = 9;
  const ProjTable pristine = unsorted_table(random_binary_entries(n, 7));
  out.entries = pristine.size();

  double bucket_s = 0.0;
  double compare_s = 0.0;
  for (int r = 0; r < reps; ++r) {
    ProjTable a = pristine;
    Timer ta;
    a.seal(SortOrder::kByV0V1, kDomain);
    bucket_s += ta.seconds();
    benchmark::DoNotOptimize(a.entries().data());

    // Naive reference: the pre-index whole-table comparison sort.
    std::vector<TableEntry> b(pristine.entries().begin(),
                              pristine.entries().end());
    Timer tb;
    std::sort(b.begin(), b.end(),
              [](const TableEntry& x, const TableEntry& y) {
                if (x.key.v[0] != y.key.v[0]) return x.key.v[0] < y.key.v[0];
                if (x.key.v[1] != y.key.v[1]) return x.key.v[1] < y.key.v[1];
                if (x.key.v[2] != y.key.v[2]) return x.key.v[2] < y.key.v[2];
                if (x.key.v[3] != y.key.v[3]) return x.key.v[3] < y.key.v[3];
                return x.key.sig < y.key.sig;
              });
    compare_s += tb.seconds();
    benchmark::DoNotOptimize(b.data());
  }
  const double per = static_cast<double>(out.entries) * reps;
  out.ns_per_entry = bucket_s * 1e9 / per;
  out.ns_per_entry_comparison_sort = compare_s * 1e9 / per;
  return out;
}

struct LaneOpsNumbers {
  std::size_t rows = 0;
  double ns_per_row = 0.0;         // simd-hinted LaneOps<8> mul_masked+add
  double ns_per_row_branchy = 0.0; // branch-per-lane reference
};

/// The hot dense-path lane arithmetic: one masked multiply-add per row,
/// simd-hinted (CCBT_SIMD in table_key.hpp) vs the pre-hint branchy
/// form, measured in-process so BENCH_primitives.json carries its own
/// before/after line.
LaneOpsNumbers measure_lane_ops8() {
  using Ops = LaneOps<8>;
  LaneOpsNumbers out;
  const std::size_t n = 1 << 16;
  const int reps = 24;
  Rng rng(31);
  std::vector<Ops::Vec> a(n), b(n);
  std::vector<LaneMask> masks(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (int l = 0; l < 8; ++l) {
      a[i][l] = 1 + rng.below(1000);
      b[i][l] = 1 + rng.below(1000);
    }
    masks[i] = static_cast<LaneMask>(1 + rng.below(255));
  }
  out.rows = n;

  Ops::Vec acc_simd = Ops::zero();
  Timer ts;
  for (int r = 0; r < reps; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      Ops::add(acc_simd, Ops::mul_masked(a[i], b[i], masks[i]));
    }
  }
  const double simd_s = ts.seconds();
  benchmark::DoNotOptimize(acc_simd);

  Ops::Vec acc_ref = Ops::zero();
  Timer tb;
  for (int r = 0; r < reps; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      for (int l = 0; l < 8; ++l) {
        if ((masks[i] >> l) & 1u) acc_ref[l] += a[i][l] * b[i][l];
      }
    }
  }
  const double ref_s = tb.seconds();
  benchmark::DoNotOptimize(acc_ref);
  if (Ops::total(acc_simd) != Ops::total(acc_ref)) {
    std::fprintf(stderr, "lane_ops8: simd/branchy mismatch!\n");
  }

  const double per = static_cast<double>(n) * reps;
  out.ns_per_row = simd_s * 1e9 / per;
  out.ns_per_row_branchy = ref_s * 1e9 / per;
  return out;
}

struct MergeNumbers {
  std::size_t entries = 0;   // plus + minus input entries
  std::size_t outputs = 0;   // accumulated sink entries
  double ns_per_entry = 0.0;
};

MergeNumbers measure_merge() {
  MergeNumbers out;
  // Half-cycle tables over a real graph/coloring so signature filters and
  // charges run exactly as in a solver.
  const CsrGraph g = chung_lu_power_law(8000, 1.7, 8.0, 3);
  const Coloring chi(g.num_vertices(), 5, 1);
  const DegreeOrder order(g);
  ExecOptions opts;
  const ExecContext cx{g, chi, order,
                       BlockPartition(g.num_vertices(), 1), nullptr, opts};
  const ProjTable edges = init_path_from_graph(cx, ExtendOpts{});
  const ProjTable plus0 = extend_with_graph(cx, edges, ExtendOpts{});
  const ProjTable minus0 = extend_with_graph(cx, edges, ExtendOpts{});
  out.entries = plus0.size() + minus0.size();

  MergeSpec spec;
  spec.out_arity = 2;
  spec.out[0] = {0, 0};
  spec.out[1] = {0, 1};
  const int reps = 5;
  double seconds = 0.0;
  for (int r = 0; r < reps; ++r) {
    ProjTable plus = plus0;
    ProjTable minus = minus0;
    AccumMap sink;
    Timer t;
    merge_halves(cx, plus, minus, spec, sink);
    seconds += t.seconds();
    out.outputs = sink.size();
    benchmark::DoNotOptimize(sink.size());
  }
  out.ns_per_entry =
      seconds * 1e9 / (static_cast<double>(out.entries) * reps);
  return out;
}

void write_json_report() {
  const GroupNumbers g = measure_group_lookup();
  const SealNumbers s = measure_seal();
  const MergeNumbers m = measure_merge();
  const LaneOpsNumbers lo = measure_lane_ops8();
#ifdef _OPENMP
  const int threads = omp_get_max_threads();
#else
  const int threads = 1;
#endif
  std::FILE* f = std::fopen("BENCH_primitives.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_primitives.json\n");
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"primitives\",\n"
               "  \"threads\": %d,\n"
               "  \"group_lookup\": {\n"
               "    \"entries\": %zu,\n"
               "    \"probes\": %zu,\n"
               "    \"ns_per_probe\": %.3f,\n"
               "    \"ns_per_probe_binary_search\": %.3f,\n"
               "    \"speedup_vs_binary_search\": %.3f\n"
               "  },\n"
               "  \"seal\": {\n"
               "    \"entries\": %zu,\n"
               "    \"ns_per_entry\": %.3f,\n"
               "    \"ns_per_entry_comparison_sort\": %.3f,\n"
               "    \"speedup_vs_comparison_sort\": %.3f\n"
               "  },\n"
               "  \"merge\": {\n"
               "    \"input_entries\": %zu,\n"
               "    \"output_entries\": %zu,\n"
               "    \"ns_per_entry\": %.3f\n"
               "  },\n"
               "  \"lane_ops8\": {\n"
               "    \"rows\": %zu,\n"
               "    \"ns_per_row\": %.3f,\n"
               "    \"ns_per_row_branchy\": %.3f,\n"
               "    \"speedup_vs_branchy\": %.3f\n"
               "  }\n"
               "}\n",
               threads, g.entries, g.probes, g.ns_per_probe,
               g.ns_per_probe_binary_search,
               g.ns_per_probe > 0.0
                   ? g.ns_per_probe_binary_search / g.ns_per_probe
                   : 0.0,
               s.entries, s.ns_per_entry, s.ns_per_entry_comparison_sort,
               s.ns_per_entry > 0.0
                   ? s.ns_per_entry_comparison_sort / s.ns_per_entry
                   : 0.0,
               m.entries, m.outputs, m.ns_per_entry, lo.rows,
               lo.ns_per_row, lo.ns_per_row_branchy,
               lo.ns_per_row > 0.0 ? lo.ns_per_row_branchy / lo.ns_per_row
                                   : 0.0);
  std::fclose(f);
  std::printf(
      "BENCH_primitives.json written: group %.1f ns/probe (binary search "
      "%.1f), seal %.1f ns/entry (comparison sort %.1f), merge %.1f "
      "ns/entry, lane_ops8 %.2f ns/row (branchy %.2f)\n",
      g.ns_per_probe, g.ns_per_probe_binary_search, s.ns_per_entry,
      s.ns_per_entry_comparison_sort, m.ns_per_entry, lo.ns_per_row,
      lo.ns_per_row_branchy);
}

// -------------------------------------------------------------------
// Google benchmarks.

void BM_AccumMapAdd(benchmark::State& state) {
  const std::size_t n = state.range(0);
  Rng rng(5);
  std::vector<TableKey> keys(n);
  for (auto& k : keys) {
    k.v[0] = static_cast<VertexId>(rng.below(kDomain));
    k.v[1] = static_cast<VertexId>(rng.below(kDomain));
    k.sig = static_cast<Signature>(rng.below(256));
  }
  for (auto _ : state) {
    AccumMap map(n);
    for (const auto& k : keys) map.add(k, 1);
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AccumMapAdd)->Arg(1 << 12)->Arg(1 << 16);

void BM_TableSeal(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const ProjTable pristine = unsorted_table(random_binary_entries(n, 7));
  for (auto _ : state) {
    state.PauseTiming();
    ProjTable t = pristine;
    state.ResumeTiming();
    t.seal(SortOrder::kByV0V1, kDomain);
    benchmark::DoNotOptimize(t.entries().data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TableSeal)->Arg(1 << 14)->Arg(1 << 17);

void BM_GroupLookup(benchmark::State& state) {
  const std::size_t n = state.range(0);
  ProjTable t = unsorted_table(random_binary_entries(n, 9));
  t.seal(SortOrder::kByV0, kDomain);
  Rng rng(23);
  std::vector<VertexId> keys(1 << 12);
  for (auto& v : keys) v = static_cast<VertexId>(rng.below(kDomain));
  for (auto _ : state) {
    std::size_t sink = 0;
    for (VertexId v : keys) sink += t.group(0, v).size();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * keys.size());
}
BENCHMARK(BM_GroupLookup)->Arg(1 << 14)->Arg(1 << 17);

void BM_MergeHalves(benchmark::State& state) {
  const CsrGraph g = chung_lu_power_law(
      static_cast<VertexId>(state.range(0)), 1.7, 8.0, 3);
  const Coloring chi(g.num_vertices(), 5, 1);
  const DegreeOrder order(g);
  ExecOptions opts;
  const ExecContext cx{g, chi, order,
                       BlockPartition(g.num_vertices(), 1), nullptr, opts};
  const ProjTable edges = init_path_from_graph(cx, ExtendOpts{});
  const ProjTable plus0 = extend_with_graph(cx, edges, ExtendOpts{});
  const ProjTable minus0 = extend_with_graph(cx, edges, ExtendOpts{});
  MergeSpec spec;
  spec.out_arity = 2;
  spec.out[0] = {0, 0};
  spec.out[1] = {0, 1};
  for (auto _ : state) {
    state.PauseTiming();
    ProjTable plus = plus0;
    ProjTable minus = minus0;
    AccumMap sink;
    state.ResumeTiming();
    merge_halves(cx, plus, minus, spec, sink);
    benchmark::DoNotOptimize(sink.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          (plus0.size() + minus0.size()));
}
BENCHMARK(BM_MergeHalves)->Arg(2000)->Arg(8000);

void BM_ExtendWithGraph(benchmark::State& state) {
  const CsrGraph g = chung_lu_power_law(4000, 1.7, 8.0, 3);
  const Coloring chi(g.num_vertices(), 5, 1);
  const DegreeOrder order(g);
  ExecOptions opts;
  opts.use_threads = false;
  const ExecContext cx{g, chi, order,
                       BlockPartition(g.num_vertices(), 1), nullptr, opts};
  const ProjTable init = init_path_from_graph(cx, ExtendOpts{});
  for (auto _ : state) {
    const ProjTable out = extend_with_graph(cx, init, ExtendOpts{});
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * init.size());
}
BENCHMARK(BM_ExtendWithGraph);

void BM_ExtendWithGraphAnchored(benchmark::State& state) {
  // The DB variant of the same extension: the ≻ filter should make it
  // strictly cheaper on a heavy-tailed graph.
  const CsrGraph g = chung_lu_power_law(4000, 1.7, 8.0, 3);
  const Coloring chi(g.num_vertices(), 5, 1);
  const DegreeOrder order(g);
  ExecOptions opts;
  opts.use_threads = false;
  const ExecContext cx{g, chi, order,
                       BlockPartition(g.num_vertices(), 1), nullptr, opts};
  ExtendOpts anchored;
  anchored.anchor_higher = true;
  const ProjTable init = init_path_from_graph(cx, anchored);
  for (auto _ : state) {
    const ProjTable out = extend_with_graph(cx, init, anchored);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * init.size());
}
BENCHMARK(BM_ExtendWithGraphAnchored);

void BM_TriangleCountDB(benchmark::State& state) {
  const CsrGraph g = chung_lu_power_law(
      static_cast<VertexId>(state.range(0)), 1.7, 6.0, 9);
  const QueryGraph q = q_cycle(3);
  ExecOptions opts;
  opts.algo = Algo::kDB;
  const CountingSession session(g, q, make_plan(q), opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.count_colorful_seeded(4).colorful);
  }
}
BENCHMARK(BM_TriangleCountDB)->Arg(2000)->Arg(8000);

void BM_Brain1DBvsPS(benchmark::State& state) {
  const CsrGraph g = chung_lu_power_law(3000, 1.7, 6.0, 11);
  const QueryGraph q = q_brain1();
  ExecOptions opts;
  opts.algo = state.range(0) == 0 ? Algo::kPS : Algo::kDB;
  const CountingSession session(g, q, make_plan(q), opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.count_colorful_seeded(4).colorful);
  }
  state.SetLabel(state.range(0) == 0 ? "PS" : "DB");
}
BENCHMARK(BM_Brain1DBvsPS)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  write_json_report();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
