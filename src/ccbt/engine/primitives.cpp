#include "ccbt/engine/primitives.hpp"

namespace ccbt {

// Compile every supported batch width of the table-producing primitives
// once; TUs that only call through these signatures reuse them.
#define CCBT_INSTANTIATE_PRIMITIVES(B)                                       \
  template ProjTableT<B> init_path_from_graph<B>(const ExecContext&,         \
                                                 const ExtendOpts&);         \
  template ProjTableT<B> init_path_from_child<B>(                            \
      const ExecContext&, const ProjTableT<B>&, bool, const ExtendOpts&);    \
  template ProjTableT<B> extend_with_graph<B>(                               \
      const ExecContext&, ProjTableT<B>&, const ExtendOpts&);                \
  template ProjTableT<B> extend_with_graph<B>(                               \
      const ExecContext&, const ProjTableT<B>&, const ExtendOpts&);          \
  template ProjTableT<B> extend_with_child<B>(const ExecContext&,            \
                                              ProjTableT<B>&,               \
                                              const ProjTableT<B>&,          \
                                              const ExtendOpts&);            \
  template ProjTableT<B> node_join<B>(const ExecContext&, ProjTableT<B>&,    \
                                      const ProjTableT<B>&, int);            \
  template void merge_halves<B>(const ExecContext&, ProjTableT<B>&,          \
                                ProjTableT<B>&, const MergeSpec&,            \
                                AccumMapT<B>&);                              \
  template ProjTableT<B> aggregate<B>(const ExecContext&,                    \
                                      const ProjTableT<B>&, int);

CCBT_INSTANTIATE_PRIMITIVES(1)
CCBT_INSTANTIATE_PRIMITIVES(2)
CCBT_INSTANTIATE_PRIMITIVES(4)
CCBT_INSTANTIATE_PRIMITIVES(8)

#undef CCBT_INSTANTIATE_PRIMITIVES

}  // namespace ccbt
