#pragma once
// Runtime-dispatched lane kernels for the masked multiply-add hot path.
//
// LaneOps' B-wide loops are `omp simd` hinted, which gets them
// vectorized *if* the build's baseline ISA has usable integer SIMD — a
// portable default that leaves AVX2's 4x64-bit lanes on the table. This
// shim adds explicit AVX2 kernels for the mask-parameterized ops the
// join kernels spend their time in (mul_masked / masked / add /
// is_zero), selected once per process:
//
//   * compiled with per-function `target("avx2")` attributes, so the
//     build itself stays baseline-ISA portable;
//   * taken only when __builtin_cpu_supports("avx2") says the CPU has
//     them AND the CCBT_FORCE_SCALAR_LANES environment variable is
//     unset/0 (the sanitizer jobs force the scalar path so both sides
//     stay exercised);
//   * fall back to LaneOps (scalar / omp simd) everywhere else — B = 1
//     and B = 2 always use it, as does any non-x86 or non-GNU build.
//
// AVX2 has no 64-bit low multiply (that is AVX-512DQ), so mul_masked
// assembles it from three 32x32 partial products; the mask expands to a
// per-lane all-ones/zero vector via variable shifts. The AVX2 results
// are bit-identical to LaneOps' (same wrapping u64 arithmetic), which
// the lane-compress property tests assert.

#include <cstdint>
#include <cstdlib>

#include "ccbt/table/table_key.hpp"

#if (defined(__x86_64__) || defined(_M_X64)) && defined(__GNUC__)
#define CCBT_LANE_SIMD_X86 1
#include <immintrin.h>
#else
#define CCBT_LANE_SIMD_X86 0
#endif

namespace ccbt {

/// Whether the AVX2 lane kernels were compiled in at all (the CPU check
/// is separate — see lane_simd_avx2_active).
inline constexpr bool lane_simd_avx2_compiled() {
  return CCBT_LANE_SIMD_X86 != 0;
}

/// Whether this CPU supports the AVX2 kernels (ignores the env override;
/// the parity tests use it to decide if both paths are comparable).
inline bool lane_simd_avx2_supported() {
#if CCBT_LANE_SIMD_X86
  return __builtin_cpu_supports("avx2") > 0;
#else
  return false;
#endif
}

/// Whether dispatch takes the AVX2 path: compiled in, supported, and not
/// disabled via CCBT_FORCE_SCALAR_LANES=1. Cached after the first call.
inline bool lane_simd_avx2_active() {
#if CCBT_LANE_SIMD_X86
  static const bool active = [] {
    const char* env = std::getenv("CCBT_FORCE_SCALAR_LANES");
    if (env != nullptr && env[0] != '\0' && env[0] != '0') return false;
    return lane_simd_avx2_supported();
  }();
  return active;
#else
  return false;
#endif
}

namespace detail_simd {

#if CCBT_LANE_SIMD_X86

// The __m256i values never cross into un-attributed code: every function
// below takes and returns u64 pointers, so the baseline-ISA callers pass
// plain arrays and the AVX2 ABI stays confined to these bodies (GCC and
// Clang keep the calls outlined across mismatched target attributes).

/// 64-bit low product per lane from 32x32 partials:
/// lo(a)lo(b) + ((lo(a)hi(b) + hi(a)lo(b)) << 32).
__attribute__((target("avx2"))) inline __m256i mullo64(__m256i a,
                                                       __m256i b) {
  const __m256i cross = _mm256_add_epi64(
      _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)),
      _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b));
  return _mm256_add_epi64(_mm256_mul_epu32(a, b),
                          _mm256_slli_epi64(cross, 32));
}

/// All-ones in lane l when bit l of m is set, zero elsewhere.
__attribute__((target("avx2"))) inline __m256i mask4(unsigned m) {
  const __m256i bits = _mm256_srlv_epi64(_mm256_set1_epi64x(m),
                                         _mm256_set_epi64x(3, 2, 1, 0));
  const __m256i one = _mm256_set1_epi64x(1);
  return _mm256_cmpeq_epi64(_mm256_and_si256(bits, one), one);
}

/// out[l] = a[l] * b[l] for lanes of m, 0 elsewhere; blocks of 4 lanes.
__attribute__((target("avx2"))) inline void mul_masked_avx2(
    const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* out,
    unsigned m, int blocks) {
  for (int q = 0; q < blocks; ++q, a += 4, b += 4, out += 4, m >>= 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out),
                        _mm256_and_si256(mullo64(va, vb), mask4(m)));
  }
}

/// out[l] = a[l] for lanes of m, 0 elsewhere.
__attribute__((target("avx2"))) inline void masked_avx2(
    const std::uint64_t* a, std::uint64_t* out, unsigned m, int blocks) {
  for (int q = 0; q < blocks; ++q, a += 4, out += 4, m >>= 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out),
                        _mm256_and_si256(va, mask4(m)));
  }
}

/// d[l] += s[l].
__attribute__((target("avx2"))) inline void add_avx2(std::uint64_t* d,
                                                     const std::uint64_t* s,
                                                     int blocks) {
  for (int q = 0; q < blocks; ++q, d += 4, s += 4) {
    const __m256i vd = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d));
    const __m256i vs = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d),
                        _mm256_add_epi64(vd, vs));
  }
}

/// Every lane zero?
__attribute__((target("avx2"))) inline bool is_zero_avx2(
    const std::uint64_t* v, int blocks) {
  __m256i acc = _mm256_setzero_si256();
  for (int q = 0; q < blocks; ++q, v += 4) {
    acc = _mm256_or_si256(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v)));
  }
  return _mm256_testz_si256(acc, acc) != 0;
}

/// Bit l set when lane l is nonzero.
__attribute__((target("avx2"))) inline unsigned nonzero_mask_avx2(
    const std::uint64_t* v, int blocks) {
  const __m256i zero = _mm256_setzero_si256();
  unsigned m = 0;
  for (int q = 0; q < blocks; ++q, v += 4) {
    const __m256i vv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v));
    const int z = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(vv, zero)));
    m |= (~static_cast<unsigned>(z) & 0xFu) << (4 * q);
  }
  return m;
}

#endif  // CCBT_LANE_SIMD_X86

}  // namespace detail_simd

/// Drop-in front end for the LaneOps calls on the join hot path: AVX2
/// when active and B >= 4, LaneOps otherwise. Results are bit-identical
/// either way.
template <int B>
struct LaneSimdT {
  using Vec = typename LaneOps<B>::Vec;

  static Vec mul_masked(const Vec& a, const Vec& b, LaneMask m) {
#if CCBT_LANE_SIMD_X86
    if constexpr (B >= 4) {
      if (lane_simd_avx2_active()) {
        Vec out;
        detail_simd::mul_masked_avx2(a.data(), b.data(), out.data(), m,
                                     B / 4);
        return out;
      }
    }
#endif
    return LaneOps<B>::mul_masked(a, b, m);
  }

  static Vec masked(const Vec& a, LaneMask m) {
#if CCBT_LANE_SIMD_X86
    if constexpr (B >= 4) {
      if (lane_simd_avx2_active()) {
        Vec out;
        detail_simd::masked_avx2(a.data(), out.data(), m, B / 4);
        return out;
      }
    }
#endif
    return LaneOps<B>::masked(a, m);
  }

  static void add(Vec& d, const Vec& s) {
#if CCBT_LANE_SIMD_X86
    if constexpr (B >= 4) {
      if (lane_simd_avx2_active()) {
        detail_simd::add_avx2(d.data(), s.data(), B / 4);
        return;
      }
    }
#endif
    LaneOps<B>::add(d, s);
  }

  static bool is_zero(const Vec& v) {
#if CCBT_LANE_SIMD_X86
    if constexpr (B >= 4) {
      if (lane_simd_avx2_active()) {
        return detail_simd::is_zero_avx2(v.data(), B / 4);
      }
    }
#endif
    return LaneOps<B>::is_zero(v);
  }

  /// Occupancy mask: bit l set when lane l is nonzero. The join kernels
  /// iterate the set bits (ctz) instead of all B lanes — at the sparse
  /// densities batching produces, that is the difference between ~1 and
  /// B iterations per row.
  static LaneMask nonzero_mask(const Vec& v) {
#if CCBT_LANE_SIMD_X86
    if constexpr (B >= 4) {
      if (lane_simd_avx2_active()) {
        return static_cast<LaneMask>(
            detail_simd::nonzero_mask_avx2(v.data(), B / 4));
      }
    }
#endif
    LaneMask m = 0;
    for (int l = 0; l < B; ++l) {
      m |= static_cast<LaneMask>(LaneOps<B>::lane(v, l) != 0) << l;
    }
    return m;
  }
};

/// B = 1 stays on the scalar ops verbatim.
template <>
struct LaneSimdT<1> : LaneOps<1> {};

}  // namespace ccbt
