#include "ccbt/tree/tree_dp.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "ccbt/table/signature.hpp"
#include "ccbt/util/error.hpp"
#include "ccbt/util/rng.hpp"
#include "ccbt/util/timer.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace ccbt {

namespace {

/// Sparse per-vertex signature table: sorted (signature, count) pairs.
using SigVec = std::vector<std::pair<Signature, Count>>;
using NodeTable = std::vector<SigVec>;  // indexed by data vertex

void sort_and_fuse(SigVec& v) {
  std::sort(v.begin(), v.end());
  std::size_t out = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (out > 0 && v[out - 1].first == v[i].first) {
      v[out - 1].second += v[i].second;
    } else {
      v[out++] = v[i];
    }
  }
  v.resize(out);
}

std::size_t table_entries(const NodeTable& t) {
  std::size_t sum = 0;
  for (const SigVec& sv : t) sum += sv.size();
  return sum;
}

/// BFS depths from `root` in the query tree; returns -1 for unreachable.
std::vector<int> query_depths(const QueryGraph& q, QNode root) {
  std::vector<int> depth(q.num_nodes(), -1);
  std::vector<QNode> queue{root};
  depth[root] = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const QNode a = queue[head];
    for (int b = 0; b < q.num_nodes(); ++b) {
      if (q.has_edge(a, static_cast<QNode>(b)) && depth[b] < 0) {
        depth[b] = depth[a] + 1;
        queue.push_back(static_cast<QNode>(b));
      }
    }
  }
  return depth;
}

/// The tree's center: the node minimizing eccentricity (ties by id).
/// Rooting at the center keeps the DP's fold chains short.
QNode tree_center(const QueryGraph& q) {
  QNode best = 0;
  int best_ecc = q.num_nodes() + 1;
  for (int r = 0; r < q.num_nodes(); ++r) {
    const std::vector<int> depth = query_depths(q, static_cast<QNode>(r));
    const int ecc = *std::max_element(depth.begin(), depth.end());
    if (ecc < best_ecc) {
      best_ecc = ecc;
      best = static_cast<QNode>(r);
    }
  }
  return best;
}

}  // namespace

TreeDpStats count_colorful_tree_stats(const CsrGraph& g, const QueryGraph& q,
                                      const Coloring& chi, bool use_threads) {
  const int k = q.num_nodes();
  if (k < 1 || k > kMaxQueryNodes) {
    throw UnsupportedQuery("tree DP: query size out of range");
  }
  if (!q.connected() || q.num_edges() != k - 1) {
    throw UnsupportedQuery("tree DP: query is not a tree");
  }
  if (chi.num_colors() != k || chi.size() != g.num_vertices()) {
    throw Error("tree DP: coloring shape mismatch");
  }

  Timer timer;
  TreeDpStats stats;
  const VertexId n = g.num_vertices();

  if (k == 1) {
    stats.colorful = n;
    stats.wall_seconds = timer.seconds();
    return stats;
  }

  // Root at the center and order nodes so children precede parents.
  const QNode root = tree_center(q);
  const std::vector<int> depth = query_depths(q, root);
  std::vector<QNode> order(q.num_nodes());
  for (int a = 0; a < k; ++a) order[a] = static_cast<QNode>(a);
  std::sort(order.begin(), order.end(), [&](QNode a, QNode b) {
    return depth[a] > depth[b];  // deepest first
  });

  std::vector<NodeTable> tables(k);
  std::size_t live_entries = 0;

  for (const QNode a : order) {
    // Children of a: neighbors one level deeper.
    std::vector<QNode> children;
    for (int b = 0; b < k; ++b) {
      if (q.has_edge(a, static_cast<QNode>(b)) && depth[b] == depth[a] + 1) {
        children.push_back(static_cast<QNode>(b));
      }
    }

    // Start from the bare node: a -> v with signature {χ(v)}.
    NodeTable cur(n);
    for (VertexId v = 0; v < n; ++v) cur[v] = {{chi.bit(v), 1}};

    // Fold in each child's table through the data edges.
    for (const QNode c : children) {
      const NodeTable& child = tables[c];
      NodeTable next(n);
      std::uint64_t fold_ops = 0;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 64) reduction(+ : fold_ops) \
    if (use_threads)
#endif
      for (VertexId v = 0; v < n; ++v) {
        if (cur[v].empty()) continue;
        SigVec acc;
        for (VertexId w : g.neighbors(v)) {
          const SigVec& cw = child[w];
          if (cw.empty()) continue;
          for (const auto& [s1, c1] : cur[v]) {
            for (const auto& [s2, c2] : cw) {
              ++fold_ops;
              if ((s1 & s2) != 0) continue;
              acc.emplace_back(s1 | s2, c1 * c2);
            }
          }
        }
        sort_and_fuse(acc);
        next[v] = std::move(acc);
      }
      stats.operations += fold_ops;
      cur = std::move(next);
      // Child table is folded in and dead; release it.
      live_entries -= table_entries(child);
      tables[c].clear();
      tables[c].shrink_to_fit();
    }

    live_entries += table_entries(cur);
    stats.peak_entries = std::max(stats.peak_entries, live_entries);
    tables[a] = std::move(cur);
  }

  const Signature full = full_signature(k);
  Count total = 0;
  for (const SigVec& sv : tables[root]) {
    for (const auto& [sig, cnt] : sv) {
      if (sig == full) total += cnt;
    }
  }
  stats.colorful = total;
  stats.wall_seconds = timer.seconds();
  return stats;
}

Count count_colorful_tree(const CsrGraph& g, const QueryGraph& q,
                          const Coloring& chi) {
  return count_colorful_tree_stats(g, q, chi).colorful;
}

QueryGraph random_tree_query(int nodes, std::uint64_t seed) {
  if (nodes < 1 || nodes > kMaxQueryNodes) {
    throw UnsupportedQuery("random_tree_query: size out of range");
  }
  QueryGraph q(nodes, "random_tree");
  if (nodes == 1) return q;
  if (nodes == 2) {
    q.add_edge(0, 1);
    return q;
  }
  // Uniform labelled tree via a random Prüfer sequence.
  Rng rng(seed);
  std::vector<int> prufer(nodes - 2);
  for (int& x : prufer) x = static_cast<int>(rng.below(nodes));

  std::vector<int> remaining_degree(nodes, 1);
  for (int x : prufer) ++remaining_degree[x];
  // Repeatedly attach the smallest leaf to the next sequence element.
  std::vector<bool> used(nodes, false);
  for (int x : prufer) {
    int leaf = -1;
    for (int v = 0; v < nodes; ++v) {
      if (remaining_degree[v] == 1 && !used[v]) {
        leaf = v;
        break;
      }
    }
    q.add_edge(static_cast<QNode>(leaf), static_cast<QNode>(x));
    used[leaf] = true;
    --remaining_degree[x];
  }
  // Join the last two unused nodes.
  int first = -1;
  for (int v = 0; v < nodes; ++v) {
    if (!used[v] && remaining_degree[v] == 1) {
      if (first < 0) {
        first = v;
      } else {
        q.add_edge(static_cast<QNode>(first), static_cast<QNode>(v));
        break;
      }
    }
  }
  return q;
}

}  // namespace ccbt
