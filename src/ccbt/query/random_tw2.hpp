#pragma once
// Random treewidth-2 query generator for property-based testing.
//
// Starting from a triangle or an edge, repeatedly applies operations that
// provably preserve treewidth <= 2:
//   * leaf      — attach a pendant node to a random node;
//   * subdivide — replace a random edge (a,b) by a path a-x-b;
//   * ear       — pick an existing edge (a,b) and add a new parallel path
//                 a-x1-..-xm-b (series-parallel composition).
// Every output is validated against the recognizer.

#include <cstdint>

#include "ccbt/query/query_graph.hpp"
#include "ccbt/util/rng.hpp"

namespace ccbt {

struct RandomTw2Options {
  int target_nodes = 8;       // stop growing once reached (2..16)
  double p_leaf = 0.35;       // operation mix
  double p_subdivide = 0.25;  // remainder goes to "ear"
  int max_ear_length = 3;     // interior nodes per ear
  bool start_with_triangle = true;
};

QueryGraph random_tw2_query(const RandomTw2Options& options,
                            std::uint64_t seed);

}  // namespace ccbt
