#pragma once
// Deterministic fault injection for the fault-tolerant execution layer.
//
// A FaultPlan turns a 64-bit seed plus a handful of rates (FaultSpec)
// into a reproducible schedule of failures: per-message transport fates
// (drop / duplicate / delay), per-rank superstep stalls, per-collection
// allocation failures, and per-trial estimator failures. Every decision
// is a counter-indexed splitmix64 hash of the seed, so the same spec
// produces the same fault sequence on every run — a failure mode is a
// test input, not a production surprise — and two runs with the same
// spec report identical FaultStats counters.
//
// The plan is *stateful*: each query consumes one position of its
// category's decision stream. Consumers (VirtualCommT, the distributed
// engine, the estimator) share one plan per run, so the streams advance
// exactly once per event regardless of which layer asks.

#include <algorithm>
#include <array>
#include <cstdint>

#include "ccbt/util/rng.hpp"

namespace ccbt {

/// Seeded failure schedule parameters. All rates are per-event Bernoulli
/// probabilities in [0, 1]; a default-constructed spec injects nothing.
struct FaultSpec {
  std::uint64_t seed = 0;

  // Transport faults, rolled once per off-rank message delivery attempt.
  double drop_rate = 0.0;   // message lost; retransmitted on the next attempt
  double dup_rate = 0.0;    // message delivered twice (receiver dedups by
                            // sequence number; the copy still costs wire)
  double delay_rate = 0.0;  // message misses its superstep; arrives with
                            // the next delivery attempt

  /// Per (rank, delivery attempt) with undelivered outgoing traffic: the
  /// rank stalls past the ack deadline and sends nothing this attempt.
  double stall_rate = 0.0;

  /// Per table collection in the distributed engine: a simulated
  /// allocation failure (throws ErrorCode::kAllocFailed, retryable).
  double alloc_fail_rate = 0.0;

  /// Per estimator trial: the trial's backend execution fails and the
  /// trial is dropped from the estimate (degraded mode).
  double trial_fail_rate = 0.0;

  /// Stop injecting after this many events (the schedule keeps consuming
  /// decision-stream positions, so determinism is unaffected).
  std::uint64_t max_faults = ~0ull;

  bool transport_faults() const {
    return drop_rate > 0.0 || dup_rate > 0.0 || delay_rate > 0.0 ||
           stall_rate > 0.0;
  }
  bool enabled() const {
    return transport_faults() || alloc_fail_rate > 0.0 ||
           trial_fail_rate > 0.0;
  }
};

/// The fault-tolerance scoreboard: what was injected and what recovery
/// cost. Surfaced through DistStats::faults / ExecStats::faults and the
/// estimator result.
struct FaultStats {
  std::uint64_t faults_injected = 0;  // total events across all kinds
  std::uint64_t drops = 0;
  std::uint64_t dups = 0;
  std::uint64_t delays = 0;
  std::uint64_t stalls = 0;
  std::uint64_t alloc_fails = 0;
  std::uint64_t trial_faults = 0;

  // Recovery accounting.
  std::uint64_t retries = 0;           // extra delivery attempts
  std::uint64_t retransmit_bytes = 0;  // off-rank bytes re-sent (retries
                                       // plus duplicate copies)
  std::uint64_t replays = 0;           // rollbacks to a checkpoint
  std::uint64_t replayed_supersteps = 0;  // supersteps of work redone
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t checkpoint_bytes = 0;  // cumulative serialized snapshots

  // Modeled (not slept) waiting time: exponential backoff with jitter
  // between delivery attempts, and ack-deadline waits for stall
  // detection. A real transport would spend this wall clock; the virtual
  // one only accounts it, keeping tests fast.
  double backoff_virtual_ms = 0.0;
  double deadline_wait_virtual_ms = 0.0;

  /// Total modeled recovery latency.
  double recovery_virtual_ms() const {
    return backoff_virtual_ms + deadline_wait_virtual_ms;
  }
};

/// Deterministic decision streams over a FaultSpec (see file comment).
class FaultPlan {
 public:
  enum class Fate : std::uint8_t { kDeliver, kDrop, kDuplicate, kDelay };

  FaultPlan() = default;
  explicit FaultPlan(const FaultSpec& spec) : spec_(spec) {}

  const FaultSpec& spec() const { return spec_; }
  bool enabled() const { return spec_.enabled(); }

  /// Fate of one off-rank message delivery attempt. One roll partitioned
  /// across the three message rates, so at most one fault fires per
  /// attempt.
  Fate message_fate() {
    const double total =
        spec_.drop_rate + spec_.dup_rate + spec_.delay_rate;
    if (total <= 0.0) return Fate::kDeliver;
    const double x = roll(kMessage);
    if (x >= total || !budget_ok()) return Fate::kDeliver;
    ++stats_.faults_injected;
    if (x < spec_.drop_rate) {
      ++stats_.drops;
      return Fate::kDrop;
    }
    if (x < spec_.drop_rate + spec_.dup_rate) {
      ++stats_.dups;
      return Fate::kDuplicate;
    }
    ++stats_.delays;
    return Fate::kDelay;
  }

  /// Does this rank stall for the current delivery attempt?
  bool rank_stalls() {
    if (!fire(kStall, spec_.stall_rate)) return false;
    ++stats_.stalls;
    return true;
  }

  /// Does this table collection hit a (simulated) allocation failure?
  bool alloc_fails() {
    if (!fire(kAlloc, spec_.alloc_fail_rate)) return false;
    ++stats_.alloc_fails;
    return true;
  }

  /// Does this estimator trial fail?
  bool trial_fails() {
    if (!fire(kTrial, spec_.trial_fail_rate)) return false;
    ++stats_.trial_faults;
    return true;
  }

  FaultStats& stats() { return stats_; }
  const FaultStats& stats() const { return stats_; }

 private:
  enum Category : int { kMessage = 0, kStall, kAlloc, kTrial, kCategories };

  bool budget_ok() const {
    return stats_.faults_injected < spec_.max_faults;
  }

  /// Uniform [0, 1) draw at the next position of `cat`'s stream.
  double roll(Category cat) {
    std::uint64_t s = spec_.seed ^
                      (0xD1B54A32D192ED03ULL *
                       (static_cast<std::uint64_t>(cat) + 1)) ^
                      (0x9E3779B97F4A7C15ULL * ++counter_[cat]);
    return static_cast<double>(splitmix64(s) >> 11) * 0x1.0p-53;
  }

  bool fire(Category cat, double rate) {
    if (rate <= 0.0) return false;
    const double x = roll(cat);
    if (x >= rate || !budget_ok()) return false;
    ++stats_.faults_injected;
    return true;
  }

  FaultSpec spec_;
  std::array<std::uint64_t, kCategories> counter_{};
  FaultStats stats_;
};

/// Exponential backoff with jitter for delivery attempt `attempt`
/// (0-based): base * 2^attempt * uniform[0.5, 1.5).
inline double fault_backoff_ms(double base_ms, std::uint32_t attempt,
                               Rng& jitter) {
  const double factor =
      static_cast<double>(1ull << std::min(attempt, 20u));
  return base_ms * factor * (0.5 + jitter.uniform());
}

}  // namespace ccbt
