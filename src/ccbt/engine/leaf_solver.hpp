#pragma once
// Leaf-edge block solving (Section 5.2, last paragraph): join the tables
// annotating the boundary node, the edge, and the leaf node, then project
// to the boundary.

#include "ccbt/decomp/block.hpp"
#include "ccbt/engine/path_builder.hpp"

namespace ccbt {

/// Compute the unary projection table of a leaf-edge block, keyed by the
/// image of its boundary node.
ProjTable solve_leaf_edge(const ExecContext& cx, const Block& blk,
                          TablePool& pool);

}  // namespace ccbt
