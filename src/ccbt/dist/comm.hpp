#pragma once
// VirtualComm: a single-process stand-in for the paper's MPI transport
// (Section 7). Ranks exchange projection-table entries in bulk-synchronous
// supersteps: send() queues an entry in the sender's outbox, exchange()
// delivers every queued entry to its destination inbox and closes the
// superstep. Delivery is deterministic — inboxes concatenate senders in
// rank order, preserving each sender's send order — so a virtual run is
// exactly reproducible.
//
// The transport keeps its own traffic accounting (CommStats), independent
// of the engine's modeled LoadModel communication: the model sees only the
// routing a real implementation must pay per join emission, while the
// transport also pays for resharding and orientation supersteps.
//
// Wire format per batch width:
//   * B = 1 keeps the PR 2 layout bit for bit: fixed-size rows of
//     sizeof(TableKey) + sizeof(Count) wire bytes.
//   * B > 1 serializes every row through the lane-compressed encoding of
//     table/lane_payload.hpp — unpadded key, occupancy mask, per-row
//     width code, then only the occupied lanes' counts at that width.
//     Outboxes hold the actual byte streams and exchange() decodes them,
//     so CommStats' wire volume tracks true lane density instead of the
//     dense u64[B] vector's worst case.

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

#include "ccbt/table/lane_payload.hpp"
#include "ccbt/table/table_key.hpp"
#include "ccbt/util/error.hpp"

namespace ccbt {

struct CommStats {
  std::uint64_t supersteps = 0;
  std::uint64_t entries_sent = 0;      // all sends, local included
  std::uint64_t off_rank_entries = 0;  // sends with from != to
  std::uint64_t max_step_recv = 0;     // max entries one rank received
                                       // in one superstep

  /// Wire size of a *dense* row (the fixed B = 1 encoding; the dense
  /// reference point for the B > 1 compression ratio).
  std::uint64_t entry_bytes = sizeof(TableKey) + sizeof(Count);

  /// Actual serialized bytes of the off-rank traffic (equals
  /// off_rank_entries * entry_bytes at B = 1; tracks the per-row
  /// compressed encoding at B > 1).
  std::uint64_t off_rank_payload = 0;

  // Lane-compression wire telemetry (B > 1; zero at B = 1): occupancy
  // and per-row payload-width histogram over every serialized row.
  std::uint64_t lane_slots_sent = 0;       // rows sent * B
  std::uint64_t lanes_occupied_sent = 0;   // mask-set lanes sent
  std::array<std::uint64_t, 3> width_rows{};  // rows per u16/u32/u64

  /// Wire volume of the off-rank traffic.
  std::uint64_t off_rank_bytes() const { return off_rank_payload; }

  double wire_lane_density() const {
    return lane_slots_sent == 0
               ? 0.0
               : static_cast<double>(lanes_occupied_sent) /
                     static_cast<double>(lane_slots_sent);
  }
};

template <int B>
class VirtualCommT {
 public:
  using Entry = TableEntryT<B>;

  /// Throws Error when ranks == 0.
  explicit VirtualCommT(std::uint32_t ranks) {
    if (ranks == 0) throw Error("VirtualComm: need at least one rank");
    if constexpr (B == 1) {
      outbox_.resize(ranks);
    } else {
      wire_outbox_.resize(ranks);
    }
    inbox_.resize(ranks);
    stats_.entry_bytes =
        sizeof(TableKey) + sizeof(typename LaneOps<B>::Vec);
  }

  std::uint32_t num_ranks() const {
    return static_cast<std::uint32_t>(inbox_.size());
  }

  /// Queue `e` from rank `from` to rank `to`; visible after exchange().
  void send(std::uint32_t from, std::uint32_t to, const Entry& e) {
    ++stats_.entries_sent;
    if constexpr (B == 1) {
      outbox_[from].push_back({to, e});
      if (from != to) {
        ++stats_.off_rank_entries;
        stats_.off_rank_payload += stats_.entry_bytes;
      }
      return;
    } else {
      // Serialize immediately: [dest u32][lane-compressed row]. The dest
      // word is outbox bookkeeping, not wire payload — a real transport
      // carries the destination in its envelope.
      std::vector<std::uint8_t>& out = wire_outbox_[from];
      const std::size_t at = out.size();
      out.resize(at + sizeof(std::uint32_t));
      std::memcpy(out.data() + at, &to, sizeof(std::uint32_t));
      const std::size_t row_at = out.size();
      const PayloadWidth width = wire_encode<B>(e, out);
      LaneMask mask = 0;
      for (int l = 0; l < B; ++l) {
        mask |= static_cast<LaneMask>(LaneOps<B>::lane(e.cnt, l) != 0) << l;
      }
      stats_.lane_slots_sent += B;
      stats_.lanes_occupied_sent += std::popcount(mask);
      ++stats_.width_rows[payload_width_code(width)];
      if (from != to) {
        ++stats_.off_rank_entries;
        stats_.off_rank_payload += out.size() - row_at;
      }
    }
  }

  /// Deliver all queued entries (replacing previous inboxes) and close
  /// the superstep.
  void exchange() {
    for (auto& in : inbox_) in.clear();
    // Senders drain in rank order, each in send order: deterministic
    // delivery independent of any real interleaving.
    if constexpr (B == 1) {
      for (auto& out : outbox_) {
        for (const Queued& q : out) inbox_[q.to].push_back(q.entry);
        out.clear();
      }
    } else {
      for (auto& out : wire_outbox_) {
        const std::uint8_t* p = out.data();
        const std::uint8_t* const end = p + out.size();
        while (p < end) {
          std::uint32_t to = 0;
          std::memcpy(&to, p, sizeof(std::uint32_t));
          p += sizeof(std::uint32_t);
          Entry e;
          p = wire_decode<B>(p, e);
          inbox_[to].push_back(e);
        }
        out.clear();
      }
    }
    for (const auto& in : inbox_) {
      stats_.max_step_recv = std::max(
          stats_.max_step_recv, static_cast<std::uint64_t>(in.size()));
    }
    ++stats_.supersteps;
  }

  /// Entries delivered to `rank` by the last exchange.
  const std::vector<Entry>& inbox(std::uint32_t rank) const {
    return inbox_[rank];
  }

  /// Move `rank`'s delivered entries out (the next exchange() resets the
  /// inbox anyway); lets collectors adopt the buffer without a copy.
  std::vector<Entry> take_inbox(std::uint32_t rank) {
    return std::move(inbox_[rank]);
  }

  /// Sum one per-rank contribution vector (MPI_Allreduce stand-in).
  Count allreduce_sum(const std::vector<Count>& parts) const {
    Count sum = 0;
    for (Count c : parts) sum += c;
    return sum;
  }

  /// Lane-wise allreduce over per-rank lane-total vectors.
  typename LaneOps<B>::Vec allreduce_sum_lanes(
      const std::vector<typename LaneOps<B>::Vec>& parts) const {
    auto sum = LaneOps<B>::zero();
    for (const auto& p : parts) LaneOps<B>::add(sum, p);
    return sum;
  }

  const CommStats& stats() const { return stats_; }

 private:
  struct Queued {
    std::uint32_t to;
    Entry entry;
  };

  std::vector<std::vector<Queued>> outbox_;  // B = 1: per sender, in order
  std::vector<std::vector<std::uint8_t>> wire_outbox_;  // B > 1 byte streams
  std::vector<std::vector<Entry>> inbox_;
  CommStats stats_;
};

using VirtualComm = VirtualCommT<1>;

extern template class VirtualCommT<1>;
extern template class VirtualCommT<2>;
extern template class VirtualCommT<4>;
extern template class VirtualCommT<8>;

}  // namespace ccbt
