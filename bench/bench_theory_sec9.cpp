// Validates Theorem 9.1 empirically: on Chung-Lu graphs with a truncated
// power-law degree sequence (exponent alpha in (1,2)), the number X(q) of
// high-starting paths (anchor highest in the *degree* order — what DB
// enumerates) is polynomially smaller than the number Y(q) of id-anchored
// paths (what the symmetric PS variant enumerates).
//
// Shape to verify: X(q) << Y(q) at every size; the measured censuses
// respect the closed-form moment bounds of Lemmas 9.5/9.6 (Y above its
// lower bound, X below its upper bound, both evaluated on the expected
// degree sequence); the fitted log-log growth exponents respect
//   Y(q) ~ n^(alpha-1+(2-alpha)q/2),   X(q) ~ n^(1/2+(2-alpha)(q-1)/2)
// and the advantage Y/X grows with n roughly like n^((alpha-1)/2).

#include <cmath>

#include "common.hpp"

#include "ccbt/theory/bounds.hpp"
#include "ccbt/theory/path_census.hpp"

int main() {
  using namespace ccbt;
  using namespace ccbt::bench;
  print_header("Section 9 — X(q) vs Y(q) on Chung-Lu power-law graphs",
               "X = degree-anchored paths (DB), Y = id-anchored paths (PS)");

  const double alpha = 1.5;
  const std::vector<VertexId> sizes{1000, 2000, 4000, 8000};

  for (int q : {3, 4}) {
    std::cout << "\n--- q = " << q << ", alpha = " << alpha << " ---\n";
    TextTable t({"n", "Y(q)", "Y bound (L9.5)", "X(q)", "X bound (L9.6)",
                 "Y/X"});
    std::vector<double> ns, xs, ys;
    for (VertexId n : sizes) {
      const std::vector<double> degrees =
          truncated_power_law_degrees(n, alpha);
      const CsrGraph g = chung_lu_power_law(n, alpha, 6.0, 97 + n);
      const std::uint64_t y = census_y(g, q);
      const std::uint64_t x = census_x(g, q);
      ns.push_back(n);
      ys.push_back(static_cast<double>(y));
      xs.push_back(static_cast<double>(std::max<std::uint64_t>(x, 1)));
      t.add_row(
          {TextTable::num(std::uint64_t{n}), TextTable::num(y),
           TextTable::num(y_lower_bound(degrees, q), 0), TextTable::num(x),
           TextTable::num(x_upper_bound(degrees, q), 0),
           TextTable::num(static_cast<double>(y) /
                              static_cast<double>(
                                  std::max<std::uint64_t>(x, 1)),
                          2)});
    }
    t.print(std::cout);
    const double slope_y = loglog_slope(ns, ys);
    const double slope_x = loglog_slope(ns, xs);
    const double pred_y = alpha - 1.0 + (2.0 - alpha) * q / 2.0;
    const double pred_x = 0.5 + (2.0 - alpha) * (q - 1) / 2.0;
    std::cout << "fitted exponents: Y ~ n^" << TextTable::num(slope_y, 2)
              << " (theory lower bound n^" << TextTable::num(pred_y, 2)
              << "), X ~ n^" << TextTable::num(slope_x, 2)
              << " (theory upper bound n^" << TextTable::num(pred_x, 2)
              << ")\n"
              << "advantage Y/X grows ~ n^"
              << TextTable::num(slope_y - slope_x, 2) << " (theory: ~n^"
              << TextTable::num(predicted_improvement_exponent(alpha, q), 2)
              << " for this alpha, q)\n";
  }

  // Claim 10.1: the power-law sequences driving the experiment really are
  // balanced, with lambda decaying like n^{alpha/2 - 1}.
  std::cout << "\n--- Claim 10.1 — balancedness of the degree sequences ---\n";
  TextTable t({"n", "lambda(1,1)", "lambda(1,2)", "lambda(2,2)",
               "n^(alpha/2-1)"});
  for (VertexId n : sizes) {
    const std::vector<double> d = truncated_power_law_degrees(n, alpha);
    t.add_row({TextTable::num(std::uint64_t{n}),
               TextTable::num(balancedness_lambda(d, 1, 1), 5),
               TextTable::num(balancedness_lambda(d, 1, 2), 5),
               TextTable::num(balancedness_lambda(d, 2, 2), 5),
               TextTable::num(std::pow(static_cast<double>(n),
                                       alpha / 2.0 - 1.0),
                              5)});
  }
  t.print(std::cout);
  std::cout << "(every lambda column should shrink with n at roughly the "
               "predicted rate)\n";
  return 0;
}
