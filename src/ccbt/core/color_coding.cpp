#include "ccbt/core/color_coding.hpp"

#include <vector>

#include "ccbt/query/treewidth.hpp"
#include "ccbt/util/error.hpp"

namespace ccbt {

CountingSession::CountingSession(const CsrGraph& g, const QueryGraph& q,
                                 Plan plan, ExecOptions opts)
    : graph_(g),
      query_(q),
      plan_(std::move(plan)),
      opts_(opts),
      degree_order_(g),
      id_order_(DegreeOrder::by_id(g.num_vertices())) {
  validate_query(q);
  if (plan_.tree.k != q.num_nodes()) {
    throw Error("CountingSession: plan does not match query size");
  }
}

ExecStats CountingSession::count_colorful(const Coloring& chi) const {
  return count_colorful(ColoringBatch(chi));
}

ExecStats CountingSession::count_colorful(const ColoringBatch& batch) const {
  for (int l = 0; l < batch.lanes(); ++l) {
    if (batch.lane(l).num_colors() != query_.num_nodes() ||
        batch.lane(l).size() != graph_.num_vertices()) {
      throw Error("count_colorful: coloring shape mismatch");
    }
  }
  const DegreeOrder& order = opts_.order_by_id ? id_order_ : degree_order_;
  std::optional<LoadModel> load;
  if (opts_.sim_ranks > 0) load.emplace(opts_.sim_ranks);
  ExecContext cx{graph_,
                 batch,
                 order,
                 BlockPartition(graph_.num_vertices(), opts_.sim_ranks),
                 load ? &*load : nullptr,
                 opts_};
  return run_plan(cx, plan_.tree);
}

ExecStats CountingSession::count_colorful_seeded(std::uint64_t seed) const {
  const Coloring chi(graph_.num_vertices(), query_.num_nodes(), seed);
  return count_colorful(chi);
}

ExecStats CountingSession::count_colorful_seeded(
    std::span<const std::uint64_t> seeds) const {
  std::vector<Coloring> lanes;
  lanes.reserve(seeds.size());
  for (const std::uint64_t seed : seeds) {
    lanes.emplace_back(graph_.num_vertices(), query_.num_nodes(), seed);
  }
  return count_colorful(ColoringBatch(lanes));
}

Count count_colorful_matches(const CsrGraph& g, const QueryGraph& q,
                             const Coloring& chi, ExecOptions opts) {
  CountingSession session(g, q, make_plan(q), opts);
  return session.count_colorful(chi).colorful;
}

double colorful_scale(int k) {
  // k^k / k!, evaluated in floating point to avoid overflow for k near 16.
  double scale = 1.0;
  for (int i = 1; i <= k; ++i) {
    scale *= static_cast<double>(k) / static_cast<double>(i);
  }
  return scale;
}

}  // namespace ccbt
