// Regenerates Table 1 (data-graph inventory) for the synthetic stand-ins,
// alongside the paper's original numbers, plus the Figure 8 query roster.
//
// The shape to verify: the stand-ins preserve the paper's skew ordering —
// epinions/slashdot/enron heavy-tailed, roadNetCA nearly regular.

#include "common.hpp"

int main() {
  using namespace ccbt;
  using namespace ccbt::bench;
  print_header("Table 1 — data graphs (synthetic stand-ins)",
               "paper columns + realized stand-in statistics");

  TextTable t({"graph", "domain", "paper n", "paper m", "paper maxdeg",
               "standin n", "standin m", "avg deg", "max deg", "skew"});
  const double scale = bench_scale();
  for (const WorkloadSpec& spec : table1_specs()) {
    const CsrGraph g = make_workload(spec.name, scale);
    const GraphStats s = compute_stats(g);
    t.add_row({spec.name, spec.domain, TextTable::num(std::uint64_t{
                                           spec.paper_nodes}),
               TextTable::num(std::uint64_t{spec.paper_edges}),
               TextTable::num(std::uint64_t{spec.paper_max_degree}),
               TextTable::num(std::uint64_t{s.num_vertices}),
               TextTable::num(std::uint64_t{s.num_edges}),
               TextTable::num(s.avg_degree, 1),
               TextTable::num(std::uint64_t{s.max_degree}),
               TextTable::num(s.skew, 2)});
  }
  t.print(std::cout);

  std::cout << "\nFigure 8 — query benchmark (reconstructed)\n";
  TextTable q({"query", "nodes", "edges", "longest cycle", "plans",
               "automorphisms"});
  for (const QueryGraph& query : figure8_queries()) {
    const auto plans = enumerate_plans(query);
    const Plan best = make_plan(query);
    q.add_row({query.name(), TextTable::num(std::uint64_t(query.num_nodes())),
               TextTable::num(std::uint64_t(query.num_edges())),
               TextTable::num(std::uint64_t(best.features.longest_cycle)),
               TextTable::num(std::uint64_t(plans.size())),
               TextTable::num(count_automorphisms(query))});
  }
  q.print(std::cout);
  return 0;
}
