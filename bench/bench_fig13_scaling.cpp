// Regenerates Figure 13: strong scaling of DB on the enron stand-in
// (speedup vs 32 ranks as ranks double to 512, per query) and weak
// scaling on R-MAT graphs (fixed vertices per rank, growing rank count;
// execution metric should stay near flat).
//
// Shape to verify: strong-scaling curves rise with ranks but fall short
// of ideal; weak-scaling per-rank work stays roughly constant.

#include "common.hpp"

int main() {
  using namespace ccbt;
  using namespace ccbt::bench;
  print_header("Figure 13 — strong and weak scaling of DB",
               "strong: enron stand-in; weak: R-MAT, fixed vertices/rank");

  const std::vector<std::uint32_t> rank_grid{32, 64, 128, 256, 512};

  // ---- Strong scaling.
  std::cout << "\nStrong scaling (speedup vs 32 ranks; ideal = ranks/32)\n";
  const CsrGraph enron = make_workload("enron", bench_scale());
  std::vector<std::string> header{"query"};
  for (auto r : rank_grid) header.push_back(std::to_string(r));
  TextTable ts(header);
  for (const QueryGraph& q : figure8_queries()) {
    if (q.name() == "brain3" || q.name() == "brain2") continue;  // time cap
    const Plan plan = make_plan(q);
    std::vector<std::string> row{q.name()};
    double base = 0.0;
    for (std::uint32_t ranks : rank_grid) {
      const CellResult r = run_cell(enron, q, plan, Algo::kDB, ranks, 7);
      if (!r.ok || r.sim == 0.0) {
        row.push_back("DNF");
        continue;
      }
      if (ranks == 32) base = r.sim;
      row.push_back(TextTable::num(base / r.sim, 2));
    }
    ts.add_row(std::move(row));
  }
  ts.print(std::cout);

  // ---- Weak scaling: the paper fixes 1K vertices per rank with edge
  // factor 16; we fix vertices/rank at a scaled value and report the
  // simulated per-phase makespan, which should stay near constant.
  std::cout << "\nWeak scaling (R-MAT, ~128 vertices/rank, edge factor 8; "
               "sim makespan normalized to 32 ranks)\n";
  TextTable tw({"query", "32", "64", "128", "256"});
  for (const char* qname : {"glet1", "glet2", "youtube", "wiki", "dros"}) {
    const QueryGraph q = named_query(qname);
    const Plan plan = make_plan(q);
    std::vector<std::string> row{qname};
    double base = 0.0;
    for (std::uint32_t ranks : {32u, 64u, 128u, 256u}) {
      RmatParams p;
      p.scale = 12 + (ranks == 64) + 2 * (ranks == 128) + 3 * (ranks == 256);
      p.edge_factor = 8;
      const CsrGraph g = rmat(p, 5);
      const CellResult r = run_cell(g, q, plan, Algo::kDB, ranks, 7);
      if (!r.ok || r.sim == 0.0) {
        row.push_back("DNF");
        continue;
      }
      if (ranks == 32) base = r.sim;
      row.push_back(TextTable::num(r.sim / base, 2));
    }
    tw.add_row(std::move(row));
  }
  tw.print(std::cout);
  std::cout << "(weak scaling: values near 1.0 = flat, as in the paper)\n";
  return 0;
}
