// The narrow seal's two sort engines — the LSD radix sort over the
// slot-permuted packed key and the original counting partition +
// per-bucket comparison sort — must be interchangeable: same row order
// (stability included), same escalation decisions, same merged counts,
// across every batch width, payload width, and adversarial key
// distribution. The checkpoint restore path additionally relies on a
// sorted input surviving either engine untouched.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "ccbt/core/color_coding.hpp"
#include "ccbt/dist/dist_engine.hpp"
#include "ccbt/graph/generators.hpp"
#include "ccbt/query/catalog.hpp"
#include "ccbt/table/flat_rows.hpp"
#include "ccbt/table/table_key.hpp"
#include "ccbt/util/rng.hpp"

namespace ccbt {
namespace {

/// Restore the process-wide kAuto policy however a test exits.
struct SealAlgoGuard {
  ~SealAlgoGuard() { set_seal_sort_algo(SealSortAlgo::kAuto); }
};

template <int B>
using RowSpec = std::pair<TableKey, typename LaneOps<B>::Vec>;

/// Append `rows` round-robin across `parts` sinks and absorb them into
/// one. Duplicate keys landing in different parts survive the combining
/// cache as distinct rows — exactly how per-thread sinks produce the
/// duplicate runs whose relative order the stability claim is about.
template <int B>
FlatRowsT<B> build_sink(const std::vector<RowSpec<B>>& rows, int parts) {
  std::vector<FlatRowsT<B>> sinks(parts);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    sinks[i % parts].append(rows[i].first, rows[i].second);
  }
  FlatRowsT<B> out = std::move(sinks[0]);
  for (int p = 1; p < parts; ++p) out.absorb(std::move(sinks[p]));
  return out;
}

template <int B, typename W>
void expect_same_rows(const std::vector<PackedFlatRowT<B, W>>& a,
                      const std::vector<PackedFlatRowT<B, W>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].k, b[i].k) << "row " << i;
    ASSERT_EQ(a[i].c, b[i].c) << "row " << i;
  }
}

/// Whole-sink equality in whatever mode both ended up in.
template <int B>
void expect_same_sink(FlatRowsT<B>& a, FlatRowsT<B>& b) {
  ASSERT_EQ(a.mode(), b.mode());
  switch (a.mode()) {
    case FlatRowsT<B>::Mode::kU16:
      expect_same_rows<B>(a.rows_u16(), b.rows_u16());
      return;
    case FlatRowsT<B>::Mode::kU32:
      expect_same_rows<B>(a.rows_u32(), b.rows_u32());
      return;
    case FlatRowsT<B>::Mode::kWide: break;
  }
  const auto wa = a.take_wide();
  const auto wb = b.take_wide();
  ASSERT_EQ(wa.size(), wb.size());
  for (std::size_t i = 0; i < wa.size(); ++i) {
    ASSERT_EQ(wa[i].key, wb[i].key) << "row " << i;
    ASSERT_EQ(wa[i].cnt, wb[i].cnt) << "row " << i;
  }
}

/// Packed-key sequence of the sink in its current (narrow) mode.
template <int B>
std::vector<std::uint64_t> keys_of(const FlatRowsT<B>& f) {
  std::vector<std::uint64_t> ks;
  switch (f.mode()) {
    case FlatRowsT<B>::Mode::kU16:
      for (const auto& r : f.rows_u16()) ks.push_back(r.k);
      break;
    case FlatRowsT<B>::Mode::kU32:
      for (const auto& r : f.rows_u32()) ks.push_back(r.k);
      break;
    case FlatRowsT<B>::Mode::kWide: break;
  }
  return ks;
}

/// The core property: both engines report the same success, produce the
/// same key sequence (equal-key rows are interchangeable only until the
/// dedup sums their run — the comparison engine's per-bucket sort does
/// not promise their relative order), and after merge_duplicates hold
/// the same deduped rows, escalation mode and scan stats bit for bit.
template <int B>
void expect_sort_parity(const std::vector<RowSpec<B>>& rows, int slot,
                        VertexId domain, int parts = 4) {
  SealAlgoGuard guard;
  FlatRowsT<B> cmp = build_sink<B>(rows, parts);
  FlatRowsT<B> rad = build_sink<B>(rows, parts);
  set_seal_sort_algo(SealSortAlgo::kComparison);
  const bool cmp_ok = cmp.sort_by_slot(slot, domain);
  set_seal_sort_algo(SealSortAlgo::kRadix);
  const bool rad_ok = rad.sort_by_slot(slot, domain);
  ASSERT_EQ(cmp_ok, rad_ok);
  if (!cmp_ok) {
    // A refused sort must leave the rows exactly as appended.
    expect_same_sink(cmp, rad);
    return;
  }
  EXPECT_EQ(keys_of(cmp), keys_of(rad));
  const FlatStats sc = cmp.merge_duplicates();
  const FlatStats sr = rad.merge_duplicates();
  EXPECT_EQ(sc.rows, sr.rows);
  EXPECT_EQ(sc.lanes_occupied, sr.lanes_occupied);
  EXPECT_EQ(sc.max_count, sr.max_count);
  expect_same_sink(cmp, rad);
}

template <int B>
RowSpec<B> make_row(Rng& rng, VertexId domain, Count max_count) {
  TableKey k;
  k.v[0] = static_cast<VertexId>(rng.below(domain));
  k.v[1] = static_cast<VertexId>(rng.below(domain));
  k.sig = static_cast<Signature>(rng.below(256));
  auto c = LaneOps<B>::zero();
  LaneOps<B>::set_lane(c, static_cast<int>(rng.below(B)),
                       1 + rng.below(max_count));
  return {k, c};
}

template <int B>
void run_distribution_suite(Count max_count) {
  const VertexId domain = 300;
  for (const int slot : {0, 1}) {
    // Uniform keys, below the radix row-count cutoff (explicit kRadix
    // still exercises the radix engine there).
    {
      Rng rng(100 + slot);
      std::vector<RowSpec<B>> rows;
      for (int i = 0; i < 1500; ++i) {
        rows.push_back(make_row<B>(rng, domain, max_count));
      }
      expect_sort_parity<B>(rows, slot, domain);
    }
    // Above the cutoff (kAuto also picks radix here), duplicate-heavy:
    // a 24-key universe over 6000 rows makes ~250-row equal-key runs.
    {
      Rng rng(200 + slot);
      std::vector<RowSpec<B>> rows;
      for (int i = 0; i < 6000; ++i) {
        rows.push_back(make_row<B>(rng, 24, max_count));
      }
      expect_sort_parity<B>(rows, slot, domain);
    }
    // All-equal keys: one run spanning the whole input.
    {
      Rng rng(300);
      std::vector<RowSpec<B>> rows;
      for (int i = 0; i < 800; ++i) {
        RowSpec<B> r = make_row<B>(rng, domain, max_count);
        r.first.v[0] = 7;
        r.first.v[1] = 9;
        r.first.sig = 0x21;
        rows.push_back(r);
      }
      expect_sort_parity<B>(rows, slot, domain);
    }
    // Descending keys (worst case for the sorted-input detector, best
    // case for an unstable shortcut to get wrong).
    {
      Rng rng(400);
      std::vector<RowSpec<B>> rows;
      for (int i = 0; i < 2000; ++i) {
        RowSpec<B> r = make_row<B>(rng, domain, max_count);
        r.first.v[0] = static_cast<VertexId>(domain - 1 - (i % domain));
        rows.push_back(r);
      }
      expect_sort_parity<B>(rows, slot, domain);
    }
    // Single bucket: every row shares the slot value, so the counting
    // partition degenerates to one bucket and order comes entirely from
    // the in-bucket key sort.
    {
      Rng rng(500);
      std::vector<RowSpec<B>> rows;
      for (int i = 0; i < 2000; ++i) {
        RowSpec<B> r = make_row<B>(rng, domain, max_count);
        r.first.v[slot] = 42;
        rows.push_back(r);
      }
      expect_sort_parity<B>(rows, slot, domain);
    }
  }
}

TEST(SealSort, RadixMatchesComparisonU16B2) { run_distribution_suite<2>(900); }
TEST(SealSort, RadixMatchesComparisonU16B4) { run_distribution_suite<4>(900); }
TEST(SealSort, RadixMatchesComparisonU16B8) { run_distribution_suite<8>(900); }

// Counts past the u16 boundary: the sinks escalate to u32 rows (40 bytes
// at B = 8 — the key-index gather path of the radix engine).
TEST(SealSort, RadixMatchesComparisonU32B4) {
  run_distribution_suite<4>(0x40000);
}
TEST(SealSort, RadixMatchesComparisonU32B8) {
  run_distribution_suite<8>(0x40000);
}

TEST(SealSort, WideEscapeRefusesIdentically) {
  // An unpackable key (slot 2 occupied) drives the sink wide; both
  // engines must then refuse the narrow sort and leave the rows alone.
  Rng rng(600);
  std::vector<RowSpec<8>> rows;
  for (int i = 0; i < 500; ++i) {
    rows.push_back(make_row<8>(rng, 100, 50));
  }
  rows[250].first.v[2] = 3;
  expect_sort_parity<8>(rows, 1, 100);
}

TEST(SealSort, OutOfDomainSlotRefusesIdentically) {
  // A slot value at/above `domain` (kNoVertex included) must make both
  // engines return false with the rows untouched.
  Rng rng(650);
  std::vector<RowSpec<4>> rows;
  for (int i = 0; i < 300; ++i) {
    rows.push_back(make_row<4>(rng, 80, 50));
  }
  rows[100].first.v[1] = 80;  // == domain
  expect_sort_parity<4>(rows, 1, 80);
}

TEST(SealSort, RadixIsStable) {
  // Direct stability check on the radix engine alone: duplicate keys
  // with distinguishable counts must keep their append order — the exact
  // row sequence std::stable_sort produces under the engine's
  // (slot bucket, raw packed key) order.
  SealAlgoGuard guard;
  for (const int slot : {0, 1}) {
    Rng rng(800 + slot);
    std::vector<RowSpec<8>> rows;
    for (int i = 0; i < 3000; ++i) {
      RowSpec<8> r = make_row<8>(rng, 16, 0xFFFF);  // heavy duplication
      r.first.sig = static_cast<Signature>(1u << rng.below(4));
      rows.push_back(r);
    }
    FlatRowsT<8> f = build_sink<8>(rows, 8);
    ASSERT_EQ(f.mode(), FlatRowsT<8>::Mode::kU16);
    f.ensure_flat();  // sparse emission keeps unsealed rows as records
    auto ref = f.rows_u16();  // copy of the appended order
    std::stable_sort(ref.begin(), ref.end(),
                     [slot](const auto& a, const auto& b) {
                       if (slot == 1) {
                         const auto av = (a.k >> 8) & kPacked28NoVertex;
                         const auto bv = (b.k >> 8) & kPacked28NoVertex;
                         if (av != bv) return av < bv;
                       }
                       return a.k < b.k;
                     });
    set_seal_sort_algo(SealSortAlgo::kRadix);
    ASSERT_TRUE(f.sort_by_slot(slot, 16));
    expect_same_rows<8>(f.rows_u16(), ref);
  }
}

TEST(SealSort, SortedInputSurvivesRadixUntouched) {
  // The checkpoint restore property: decoded shards arrive in sealed
  // order, and the radix engine's validation pass must detect that and
  // return without moving a row — re-sealing is bit-identical.
  SealAlgoGuard guard;
  Rng rng(700);
  std::vector<RowSpec<8>> rows;
  for (int i = 0; i < 5000; ++i) {
    rows.push_back(make_row<8>(rng, 200, 900));
  }
  FlatRowsT<8> f = build_sink<8>(rows, 4);
  set_seal_sort_algo(SealSortAlgo::kComparison);
  ASSERT_TRUE(f.sort_by_slot(1, 200));
  f.merge_duplicates();
  ASSERT_EQ(f.mode(), FlatRowsT<8>::Mode::kU16);
  FlatRowsT<8> again = f;
  set_seal_sort_algo(SealSortAlgo::kRadix);
  ASSERT_TRUE(again.sort_by_slot(1, 200));
  expect_same_rows<8>(f.rows_u16(), again.rows_u16());
}

TEST(SealSort, CheckpointReplayBitIdenticalUnderBothEngines) {
  // End to end: a faulty distributed run that restores from checkpoints
  // must report the fault-free counts whichever seal engine re-seals the
  // decoded shards.
  SealAlgoGuard guard;
  const CsrGraph g = erdos_renyi(32, 110, 8);
  const QueryGraph q = q_glet2();
  const Plan plan = make_plan(q);
  std::vector<Coloring> lanes;
  for (int l = 0; l < 8; ++l) {
    lanes.emplace_back(g.num_vertices(), q.num_nodes(), 7100 + l);
  }
  const ColoringBatch batch{std::span<const Coloring>(lanes)};
  set_seal_sort_algo(SealSortAlgo::kAuto);
  const DistStats clean = run_plan_distributed(g, plan.tree, batch, 4, {});
  for (const SealSortAlgo algo :
       {SealSortAlgo::kComparison, SealSortAlgo::kRadix}) {
    set_seal_sort_algo(algo);
    ExecOptions opts;
    opts.dist.faults.seed = 31;
    opts.dist.faults.alloc_fail_rate = 0.05;
    opts.dist.max_replays = 16;
    opts.dist.checkpoint_interval = 2;
    const DistStats faulty =
        run_plan_distributed(g, plan.tree, batch, 4, opts);
    for (int l = 0; l < 8; ++l) {
      EXPECT_EQ(faulty.colorful_lane[l], clean.colorful_lane[l])
          << "algo " << static_cast<int>(algo) << " lane " << l;
    }
    EXPECT_GT(faulty.faults.replays, 0u);
  }
}

TEST(SealSort, EnginePinnedRunsAgreeLaneForLane) {
  // Whole-pipeline cross-check on a real workload: per-lane colorful
  // counts can't depend on which seal sort the run happened to use.
  SealAlgoGuard guard;
  const CsrGraph g = erdos_renyi(60, 260, 12);
  std::vector<std::uint64_t> seeds{7200, 7201, 7202, 7203,
                                   7204, 7205, 7206, 7207};
  for (const QueryGraph& q : {q_glet2(), q_youtube(), q_cycle(5)}) {
    const Plan plan = make_plan(q);
    set_seal_sort_algo(SealSortAlgo::kComparison);
    CountingSession sc(g, q, plan, ExecOptions{});
    const ExecStats a = sc.count_colorful_seeded(
        std::span<const std::uint64_t>(seeds.data(), 8));
    set_seal_sort_algo(SealSortAlgo::kRadix);
    CountingSession sr(g, q, plan, ExecOptions{});
    const ExecStats b = sr.count_colorful_seeded(
        std::span<const std::uint64_t>(seeds.data(), 8));
    for (int l = 0; l < 8; ++l) {
      EXPECT_EQ(a.colorful_lane[l], b.colorful_lane[l])
          << q.name() << " lane " << l;
    }
  }
}

}  // namespace
}  // namespace ccbt
