// Regenerates Figure 15: precision of color coding. For each graph/query
// combination, 10 independent colorings are run and the coefficient of
// variation of the estimates reported (plus the paper's variance/mean).
//
// Shape to verify: the overwhelming majority of combinations sit at
// CV <= 0.1 with 10 trials (paper: 91%), i.e. ~10% accuracy within
// seconds — the punchline of Section 8.6.

#include "common.hpp"

int main() {
  using namespace ccbt;
  using namespace ccbt::bench;
  print_header("Figure 15 — coefficient of variation over 10 trials",
               "cv = stddev/mean of per-trial estimates (DB algorithm)");

  // The four cheapest graphs keep the 10-trial sweep quick; queries with
  // empty counts report cv = 0.
  const std::vector<std::string> graph_names{"condMat", "astroph",
                                             "roadNetCA", "brightkite"};
  TextTable t({"graph", "query", "estimate", "cv", "var/mean"});
  int within_tenth = 0, cells = 0;
  for (const std::string& gname : graph_names) {
    const CsrGraph g = make_workload(gname, bench_scale());
    for (const QueryGraph& q : figure8_queries()) {
      if (q.name() == "brain3" || q.name() == "brain2") continue;  // time cap
      EstimatorOptions opts;
      opts.trials = 10;
      opts.seed = 17;
      opts.exec.algo = Algo::kDB;
      opts.exec.max_table_entries = bench_budget();
      try {
        const EstimatorResult r = estimate_matches(g, q, opts);
        ++cells;
        within_tenth += (r.cv <= 0.1);
        t.add_row({gname, q.name(), TextTable::num(r.matches, 0),
                   TextTable::num(r.cv, 3),
                   TextTable::num(r.variance_over_mean, 3)});
      } catch (const BudgetExceeded&) {
        t.add_row({gname, q.name(), "DNF", "-", "-"});
      }
    }
  }
  t.print(std::cout);
  std::cout << "summary: " << within_tenth << "/" << cells
            << " combinations with cv <= 0.1 ("
            << TextTable::num(100.0 * within_tenth / std::max(cells, 1), 0)
            << "%; paper reports 91% at 10 trials)\n";

  // Section 8.6 also reports the trial sweep: 82% of combinations reach
  // cv <= 0.1 with only 3 trials, 91% with 10. Reproduce the curve.
  std::cout << "\nTrials sweep — fraction of combinations with cv <= 0.1\n";
  const std::vector<std::string> sweep_graphs{"condMat", "roadNetCA"};
  TextTable sweep({"trials", "cv<=0.1 (%)", "median cv"});
  for (int trials : {2, 3, 5, 10}) {
    int good = 0, total = 0;
    std::vector<double> cvs;
    for (const std::string& gname : sweep_graphs) {
      const CsrGraph g = make_workload(gname, bench_scale());
      for (const QueryGraph& q : figure8_queries()) {
        if (q.name() == "brain3" || q.name() == "brain2") continue;
        EstimatorOptions opts;
        opts.trials = trials;
        opts.seed = 17;
        opts.exec.algo = Algo::kDB;
        opts.exec.max_table_entries = bench_budget();
        try {
          const EstimatorResult r = estimate_matches(g, q, opts);
          ++total;
          good += (r.cv <= 0.1);
          cvs.push_back(r.cv);
        } catch (const BudgetExceeded&) {
        }
      }
    }
    std::sort(cvs.begin(), cvs.end());
    const double median = cvs.empty() ? 0.0 : cvs[cvs.size() / 2];
    sweep.add_row({TextTable::num(std::uint64_t(trials)),
                   TextTable::num(100.0 * good / std::max(total, 1), 0),
                   TextTable::num(median, 3)});
  }
  sweep.print(std::cout);
  std::cout << "(the fraction should rise with trials as in Section 8.6)\n";
  return 0;
}
