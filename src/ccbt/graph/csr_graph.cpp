#include "ccbt/graph/csr_graph.hpp"

#include <algorithm>

namespace ccbt {

CsrGraph CsrGraph::from_edges(const EdgeList& raw) {
  const EdgeList list = simplify(raw);
  CsrGraph g;
  g.n_ = list.num_vertices;
  g.offsets_.assign(g.n_ + 1, 0);
  for (const Edge& e : list.edges) {
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (VertexId u = 0; u < g.n_; ++u) g.offsets_[u + 1] += g.offsets_[u];
  g.adj_.resize(list.edges.size() * 2);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : list.edges) {
    g.adj_[cursor[e.u]++] = e.v;
    g.adj_[cursor[e.v]++] = e.u;
  }
  for (VertexId u = 0; u < g.n_; ++u) {
    auto begin = g.adj_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[u]);
    auto end = g.adj_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[u + 1]);
    std::sort(begin, end);
    g.max_degree_ = std::max(g.max_degree_, g.degree(u));
  }
  return g;
}

bool CsrGraph::has_edge(VertexId u, VertexId v) const {
  if (u >= n_ || v >= n_) return false;
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

EdgeList CsrGraph::to_edges() const {
  EdgeList list;
  list.num_vertices = n_;
  list.edges.reserve(num_edges());
  for (VertexId u = 0; u < n_; ++u) {
    for (VertexId v : neighbors(u)) {
      if (u < v) list.edges.push_back({u, v});
    }
  }
  return list;
}

}  // namespace ccbt
