// Exhaustive engine validation: EVERY connected treewidth<=2 query on
// 3-6 nodes (one per isomorphism class) must agree with the brute-force
// colorful oracle under all three algorithms — no cherry-picked queries.

#include <gtest/gtest.h>

#include "ccbt/core/color_coding.hpp"
#include "ccbt/core/exact.hpp"
#include "ccbt/dist/dist_engine.hpp"
#include "ccbt/graph/generators.hpp"
#include "ccbt/query/isomorphism.hpp"
#include "ccbt/tree/tree_dp.hpp"

namespace ccbt {
namespace {

Count engine_count(const CsrGraph& g, const QueryGraph& q,
                   const Coloring& chi, Algo algo) {
  ExecOptions opts;
  opts.algo = algo;
  CountingSession session(g, q, make_plan(q), opts);
  return session.count_colorful(chi).colorful;
}

class ExhaustiveQueries : public ::testing::TestWithParam<int> {};

TEST_P(ExhaustiveQueries, AllAlgorithmsMatchOracle) {
  const int n = GetParam();
  const CsrGraph g = erdos_renyi(20, 50, 17);
  for (const QueryGraph& q : all_connected_queries(n, 2)) {
    const Coloring chi(g.num_vertices(), q.num_nodes(),
                       1000 + static_cast<std::uint64_t>(n));
    const Count oracle = count_colorful_exact(g, q, chi);
    EXPECT_EQ(engine_count(g, q, chi, Algo::kPS), oracle)
        << "PS " << q.name();
    EXPECT_EQ(engine_count(g, q, chi, Algo::kPSEven), oracle)
        << "PS-EVEN " << q.name();
    EXPECT_EQ(engine_count(g, q, chi, Algo::kDB), oracle)
        << "DB " << q.name();
  }
}

TEST_P(ExhaustiveQueries, DistributedEngineMatchesOracle) {
  const int n = GetParam();
  const CsrGraph g = erdos_renyi(16, 36, 19);
  for (const QueryGraph& q : all_connected_queries(n, 2)) {
    const Coloring chi(g.num_vertices(), q.num_nodes(),
                       2000 + static_cast<std::uint64_t>(n));
    const Count oracle = count_colorful_exact(g, q, chi);
    ExecOptions opts;
    opts.algo = Algo::kDB;
    EXPECT_EQ(run_plan_distributed(g, make_plan(q).tree, chi, 4, opts)
                  .colorful,
              oracle)
        << q.name();
  }
}

TEST_P(ExhaustiveQueries, TreeDpMatchesOracleOnAllTrees) {
  const int n = GetParam();
  const CsrGraph g = erdos_renyi(18, 40, 23);
  for (const QueryGraph& q : all_connected_queries(n, 1)) {
    const Coloring chi(g.num_vertices(), q.num_nodes(),
                       3000 + static_cast<std::uint64_t>(n));
    EXPECT_EQ(count_colorful_tree(g, q, chi),
              count_colorful_exact(g, q, chi))
        << q.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ExhaustiveQueries, ::testing::Values(3, 4, 5),
                         ::testing::PrintToStringParamName());

TEST(ExhaustiveQueriesSix, DbMatchesOracleOnSixNodeClasses) {
  // Six-node classes are plentiful; check DB (the paper's algorithm)
  // against the oracle on a smaller graph to bound runtime.
  const CsrGraph g = erdos_renyi(14, 28, 29);
  for (const QueryGraph& q : all_connected_queries(6, 2)) {
    const Coloring chi(g.num_vertices(), q.num_nodes(), 4000);
    EXPECT_EQ(engine_count(g, q, chi, Algo::kDB),
              count_colorful_exact(g, q, chi))
        << q.name();
  }
}

}  // namespace
}  // namespace ccbt
