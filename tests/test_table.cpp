// Unit tests for signatures, table keys, the accumulation map, and the
// sealed projection-table operations the join engine relies on.

#include <gtest/gtest.h>

#include "ccbt/table/accum_map.hpp"
#include "ccbt/table/proj_table.hpp"
#include "ccbt/table/signature.hpp"

namespace ccbt {
namespace {

TableKey key2(VertexId u, VertexId v, Signature sig) {
  TableKey k;
  k.v[0] = u;
  k.v[1] = v;
  k.sig = sig;
  return k;
}

TEST(SignatureTest, FullAndContains) {
  EXPECT_EQ(full_signature(3), 0b111u);
  EXPECT_EQ(signature_size(0b1011u), 3);
  EXPECT_TRUE(signature_contains(0b100u, 2));
  EXPECT_FALSE(signature_contains(0b100u, 1));
}

TEST(SignatureTest, NodeJoinCompatibility) {
  // Path colors {0,1}, child colors {1,2}, joint color 1: compatible.
  EXPECT_TRUE(node_join_compatible(0b011, 0b110, 0b010));
  // Overlap beyond the joint color: incompatible.
  EXPECT_FALSE(node_join_compatible(0b111, 0b110, 0b010));
  // Child missing the joint color: incompatible.
  EXPECT_FALSE(node_join_compatible(0b011, 0b100, 0b010));
}

TEST(SignatureTest, MergeCompatibility) {
  // Halves sharing exactly the two endpoint colors.
  EXPECT_TRUE(merge_compatible(0b0111, 0b1101, 0b0101));
  EXPECT_FALSE(merge_compatible(0b0111, 0b0111, 0b0101));
}

TEST(TableKeyTest, EqualityAndHash) {
  const TableKey a = key2(1, 2, 0b11);
  TableKey b = key2(1, 2, 0b11);
  EXPECT_EQ(a, b);
  EXPECT_EQ(hash_key(a), hash_key(b));
  b.sig = 0b101;
  EXPECT_NE(a, b);
  EXPECT_NE(hash_key(a), hash_key(b));  // overwhelmingly likely
}

TEST(TableKeyTest, UnusedSlotsParticipateUniformly) {
  TableKey a = key2(1, 2, 1);
  TableKey b = key2(1, 2, 1);
  b.v[2] = 9;
  EXPECT_NE(a, b);
}

TEST(AccumMapTest, AccumulatesDuplicates) {
  AccumMap map;
  map.add(key2(1, 2, 3), 5);
  map.add(key2(1, 2, 3), 7);
  map.add(key2(2, 1, 3), 1);
  EXPECT_EQ(map.size(), 2u);
  const auto entries = map.take_entries();
  Count total = 0;
  for (const auto& e : entries) total += e.cnt;
  EXPECT_EQ(total, 13u);
}

TEST(AccumMapTest, GrowsPastInitialCapacity) {
  AccumMap map(4);
  for (VertexId i = 0; i < 10000; ++i) {
    map.add(key2(i, i + 1, 1), 1);
  }
  EXPECT_EQ(map.size(), 10000u);
  // All keys still reachable: re-adding does not create new entries.
  for (VertexId i = 0; i < 10000; ++i) {
    map.add(key2(i, i + 1, 1), 1);
  }
  EXPECT_EQ(map.size(), 10000u);
}

TEST(ProjTableTest, TotalSumsCounts) {
  AccumMap map;
  map.add(key2(1, 2, 1), 10);
  map.add(key2(3, 4, 2), 32);
  const ProjTable t = ProjTable::from_map(2, std::move(map));
  EXPECT_EQ(t.total(), 42u);
  EXPECT_EQ(t.arity(), 2);
}

TEST(ProjTableTest, SealByV0GroupsCorrectly) {
  AccumMap map;
  map.add(key2(5, 1, 1), 1);
  map.add(key2(3, 2, 1), 2);
  map.add(key2(5, 9, 2), 3);
  ProjTable t = ProjTable::from_map(2, std::move(map));
  t.seal(SortOrder::kByV0);
  const auto g5 = t.group(0, 5);
  EXPECT_EQ(g5.size(), 2u);
  const auto g3 = t.group(0, 3);
  EXPECT_EQ(g3.size(), 1u);
  EXPECT_TRUE(t.group(0, 4).empty());
}

TEST(ProjTableTest, SealByV1GroupsByFrontier) {
  AccumMap map;
  map.add(key2(1, 7, 1), 1);
  map.add(key2(2, 7, 1), 2);
  map.add(key2(3, 8, 1), 3);
  ProjTable t = ProjTable::from_map(2, std::move(map));
  t.seal(SortOrder::kByV1);
  EXPECT_EQ(t.group(1, 7).size(), 2u);
  EXPECT_EQ(t.group(1, 8).size(), 1u);
}

TEST(ProjTableTest, TransposeSwapsBoundaryOrder) {
  AccumMap map;
  map.add(key2(1, 2, 1), 4);
  ProjTable t = ProjTable::from_map(2, std::move(map));
  const ProjTable tt = t.transposed();
  ASSERT_EQ(tt.size(), 1u);
  EXPECT_EQ(tt.entries()[0].key.v[0], 2u);
  EXPECT_EQ(tt.entries()[0].key.v[1], 1u);
  EXPECT_EQ(tt.entries()[0].cnt, 4u);
}

TEST(ProjTableTest, AggregateSumsOutSlots) {
  AccumMap map;
  map.add(key2(1, 2, 1), 4);
  map.add(key2(1, 3, 1), 6);
  map.add(key2(2, 9, 1), 1);
  ProjTable t = ProjTable::from_map(2, std::move(map));
  ProjTable u = t.aggregated(1);
  EXPECT_EQ(u.arity(), 1);
  EXPECT_EQ(u.size(), 2u);  // keys 1 and 2
  u.seal(SortOrder::kByV0);
  EXPECT_EQ(u.group(0, 1)[0].cnt, 10u);
}

TEST(ProjTableTest, AggregateKeepsSignaturesSeparate) {
  AccumMap map;
  map.add(key2(1, 2, 0b01), 4);
  map.add(key2(1, 3, 0b10), 6);
  ProjTable t = ProjTable::from_map(2, std::move(map));
  const ProjTable u = t.aggregated(1);
  EXPECT_EQ(u.size(), 2u);  // same vertex, different signatures
}

TEST(ProjTableTest, EmptyTableBehaves) {
  ProjTable t(2);
  t.seal(SortOrder::kByV0);
  EXPECT_TRUE(t.group(0, 0).empty());
  EXPECT_EQ(t.total(), 0u);
}

}  // namespace
}  // namespace ccbt
