// Hand-computed unit tests for the engine's join primitives on tiny
// graphs: each primitive is checked against counts derived on paper, so
// failures localize to a single join rather than the whole pipeline.

#include <gtest/gtest.h>

#include "ccbt/engine/primitives.hpp"
#include "ccbt/graph/generators.hpp"

namespace ccbt {
namespace {

/// Fixture: a 4-vertex path graph 0-1-2-3 with all-distinct colors, plus
/// a star for degree-order checks.
class PrimitivesTest : public ::testing::Test {
 protected:
  PrimitivesTest()
      : g_(path_graph(4)),
        chi_(std::vector<std::uint8_t>{0, 1, 2, 3}, 4),
        order_(g_),
        cx_{g_, chi_, order_, BlockPartition(4, 2), nullptr, opts_} {}

  ExecOptions opts_;
  CsrGraph g_;
  Coloring chi_;
  DegreeOrder order_;
  ExecContext cx_;
};

TEST_F(PrimitivesTest, InitFromGraphEnumeratesOrderedEdges) {
  const ProjTable t = init_path_from_graph(cx_, ExtendOpts{});
  // 3 undirected edges -> 6 ordered pairs, all distinctly colored.
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.total(), 6u);
  for (const TableEntry& e : t.entries()) {
    EXPECT_TRUE(g_.has_edge(e.key.v[0], e.key.v[1]));
    EXPECT_EQ(signature_size(e.key.sig), 2);
    EXPECT_EQ(e.cnt, 1u);
  }
}

TEST_F(PrimitivesTest, InitFromGraphAnchorFilterHalves) {
  ExtendOpts o;
  o.anchor_higher = true;
  const ProjTable t = init_path_from_graph(cx_, o);
  // Exactly one orientation per edge survives u ≻ w.
  EXPECT_EQ(t.size(), 3u);
  for (const TableEntry& e : t.entries()) {
    EXPECT_TRUE(order_.higher(e.key.v[0], e.key.v[1]));
  }
}

TEST_F(PrimitivesTest, ExtendWithGraphWalksPaths) {
  const ProjTable edges = init_path_from_graph(cx_, ExtendOpts{});
  const ProjTable paths2 = extend_with_graph(cx_, edges, ExtendOpts{});
  // Ordered simple 2-edge paths in P4: (0,1,2),(1,2,3),(2,1,0),(3,2,1),
  // (0,1,2) reversed... count: 4 ordered paths of length 2.
  EXPECT_EQ(paths2.total(), 4u);
  const ProjTable paths3 = extend_with_graph(cx_, paths2, ExtendOpts{});
  // 3-edge ordered paths in P4: the whole path, 2 orientations.
  EXPECT_EQ(paths3.total(), 2u);
  const ProjTable paths4 = extend_with_graph(cx_, paths3, ExtendOpts{});
  EXPECT_EQ(paths4.total(), 0u);
}

TEST_F(PrimitivesTest, ExtendTracksFrontierIntoSlot) {
  const ProjTable edges = init_path_from_graph(cx_, ExtendOpts{});
  ExtendOpts o;
  o.track_slot = 2;
  const ProjTable t = extend_with_graph(cx_, edges, o);
  for (const TableEntry& e : t.entries()) {
    EXPECT_EQ(e.key.v[2], e.key.v[1]);  // tracked slot mirrors frontier
  }
}

TEST_F(PrimitivesTest, NodeJoinMultipliesCompatibleCounts) {
  // Unary child at vertex 1 with color-3 partner: child counts matches
  // of a pendant structure; join must multiply counts and merge sigs.
  AccumMap child_map;
  TableKey ck;
  ck.v[0] = 1;
  ck.sig = chi_.bit(1) | chi_.bit(3);  // colors {1,3}
  child_map.add(ck, 5);
  ProjTable child = ProjTable::from_map(1, std::move(child_map));
  child.seal(SortOrder::kByV0);

  // Path entries ending at vertex 1: (0,1) and (2,1).
  ProjTable edges = init_path_from_graph(cx_, ExtendOpts{});
  const ProjTable joined = node_join(cx_, edges, child, /*slot=*/1);
  // (0,1): sig {0,1} ∩ child {1,3} == {1} ✓ -> cnt 5.
  // (2,1): sig {2,1} ∩ {1,3} == {1} ✓ -> cnt 5.
  // (3,2) etc. have no child group -> dropped? No: node_join keeps only
  // entries with a compatible child row, since the child constrains the
  // subquery. Entries at other vertices vanish.
  Count total = 0;
  for (const TableEntry& e : joined.entries()) {
    EXPECT_EQ(e.key.v[1], 1u);
    EXPECT_EQ(e.cnt, 5u);
    EXPECT_TRUE(signature_contains(e.key.sig, 3));
    total += e.cnt;
  }
  EXPECT_EQ(total, 10u);
}

TEST_F(PrimitivesTest, NodeJoinRejectsOverlappingColors) {
  AccumMap child_map;
  TableKey ck;
  ck.v[0] = 1;
  ck.sig = chi_.bit(1) | chi_.bit(0);  // colors {0,1}: overlaps path (0,1)
  child_map.add(ck, 7);
  ProjTable child = ProjTable::from_map(1, std::move(child_map));
  child.seal(SortOrder::kByV0);
  ProjTable edges = init_path_from_graph(cx_, ExtendOpts{});
  const ProjTable joined = node_join(cx_, edges, child, 1);
  // Only (2,1) qualifies: sig {2,1} ∩ {0,1} == {1}. (0,1) overlaps on 0.
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined.entries()[0].key.v[0], 2u);
}

TEST_F(PrimitivesTest, ExtendWithChildJoinsOnFrontier) {
  // Child binary table standing in for a contracted block between
  // vertices 1 and 3 (not an edge of P4): join from frontier 1 to 3.
  AccumMap child_map;
  TableKey ck;
  ck.v[0] = 1;
  ck.v[1] = 3;
  ck.sig = chi_.bit(1) | chi_.bit(3);
  child_map.add(ck, 4);
  ProjTable child = ProjTable::from_map(2, std::move(child_map));
  child.seal(SortOrder::kByV0);

  ProjTable edges = init_path_from_graph(cx_, ExtendOpts{});
  const ProjTable out = extend_with_child(cx_, edges, child, ExtendOpts{});
  // Path entries ending at 1: (0,1) sig{0,1} -> extend to 3, sig{0,1,3},
  // cnt 4; (2,1) sig{2,1} -> extend to 3, cnt 4.
  EXPECT_EQ(out.total(), 8u);
  for (const TableEntry& e : out.entries()) {
    EXPECT_EQ(e.key.v[1], 3u);
    EXPECT_EQ(signature_size(e.key.sig), 3);
  }
}

TEST_F(PrimitivesTest, MergeHalvesRequiresEndpointOnlyOverlap) {
  // Build two half tables over a shared (u=0, v=2) pair.
  auto make_half = [&](Signature mid_color_bit, Count cnt) {
    AccumMap m;
    TableKey k;
    k.v[0] = 0;
    k.v[1] = 2;
    k.sig = chi_.bit(VertexId{0}) | chi_.bit(VertexId{2}) | mid_color_bit;
    m.add(k, cnt);
    return ProjTable::from_map(2, std::move(m));
  };
  ProjTable plus = make_half(Signature{1} << 1, 3);   // interior color 1
  ProjTable minus_ok = make_half(Signature{1} << 3, 5);   // color 3: disjoint
  ProjTable minus_bad = make_half(Signature{1} << 1, 5);  // overlaps interior

  MergeSpec spec;
  spec.out_arity = 2;
  spec.out[0] = {0, 0};
  spec.out[1] = {0, 1};
  AccumMap sink_ok;
  merge_halves(cx_, plus, minus_ok, spec, sink_ok);
  ASSERT_EQ(sink_ok.size(), 1u);
  EXPECT_EQ(sink_ok.entries()[0].cnt, 15u);
  EXPECT_EQ(signature_size(sink_ok.entries()[0].key.sig), 4);

  AccumMap sink_bad;
  merge_halves(cx_, plus, minus_bad, spec, sink_bad);
  EXPECT_EQ(sink_bad.size(), 0u);
}

TEST_F(PrimitivesTest, MergeSpecProjectsChosenSlots) {
  AccumMap pm, mm;
  TableKey pk;
  pk.v[0] = 0;
  pk.v[1] = 2;
  pk.v[2] = 1;  // tracked interior vertex on the plus path
  pk.sig = chi_.bit(VertexId{0}) | chi_.bit(VertexId{2}) |
           chi_.bit(VertexId{1});
  pm.add(pk, 2);
  TableKey mk;
  mk.v[0] = 0;
  mk.v[1] = 2;
  mk.sig = chi_.bit(VertexId{0}) | chi_.bit(VertexId{2}) |
           chi_.bit(VertexId{3});
  mm.add(mk, 3);
  ProjTable plus = ProjTable::from_map(2, std::move(pm));
  ProjTable minus = ProjTable::from_map(2, std::move(mm));
  MergeSpec spec;
  spec.out_arity = 1;
  spec.out[0] = {0, 2};  // project the tracked vertex
  AccumMap sink;
  merge_halves(cx_, plus, minus, spec, sink);
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.entries()[0].key.v[0], 1u);
  EXPECT_EQ(sink.entries()[0].cnt, 6u);
}

TEST_F(PrimitivesTest, AggregateCollapsesToRequestedArity) {
  const ProjTable edges = init_path_from_graph(cx_, ExtendOpts{});
  const ProjTable unary = aggregate(cx_, edges, 1);
  // Per-anchor out-degree: v0:1, v1:2, v2:2, v3:1.
  EXPECT_EQ(unary.total(), 6u);
  const ProjTable scalar = aggregate(cx_, edges, 0);
  // One row per distinct signature: {0,1}, {1,2}, {2,3}.
  ASSERT_EQ(scalar.size(), 3u);
  EXPECT_EQ(scalar.total(), 6u);
}

TEST_F(PrimitivesTest, BudgetEnforcedDuringAccumulation) {
  ExecOptions tight = opts_;
  tight.max_table_entries = 2;
  const ExecContext cx{g_, chi_, order_, BlockPartition(4, 1), nullptr,
                       tight};
  EXPECT_THROW(init_path_from_graph(cx, ExtendOpts{}), BudgetExceeded);
}

TEST(PrimitivesStarTest, AnchorFilterPrunesHubExtensions) {
  // Star graph: hub 0 is the unique highest vertex. With the ≻ filter,
  // only paths anchored at the hub survive — the MINBUCKET effect.
  const CsrGraph g = star_graph(6);
  const Coloring chi(std::vector<std::uint8_t>{0, 1, 2, 3, 4, 5, 0}, 6);
  const DegreeOrder order(g);
  ExecOptions opts;
  const ExecContext cx{g, chi, order, BlockPartition(7, 1), nullptr, opts};
  ExtendOpts o;
  o.anchor_higher = true;
  const ProjTable t = init_path_from_graph(cx, o);
  for (const TableEntry& e : t.entries()) {
    EXPECT_EQ(e.key.v[0], 0u);  // all anchored at the hub
  }
  // Extending from a leaf only reaches the hub, which is never ≻-lower:
  // second extension dies out entirely (no 2-paths anchored above both).
  const ProjTable t2 = extend_with_graph(cx, t, o);
  for (const TableEntry& e : t2.entries()) {
    EXPECT_EQ(e.key.v[0], 0u);
  }
}

}  // namespace
}  // namespace ccbt
