#pragma once
// Insert-or-accumulate open-addressing hash map over TableKey.
//
// Section 7: "All the tables are maintained as distributed hash tables
// which use open addressing to resolve collisions." This is the
// shared-memory equivalent: a power-of-two slot array of indices into a
// dense entry vector. Only insertion and accumulation are needed during a
// join; afterwards the entries are sealed (sorted) for merge joins.
//
// The map is parameterized on the batch width B (counts are per-lane
// vectors; see table_key.hpp). Two compact storage modes cut the
// bandwidth of the accumulation probes:
//
//   * B = 1 (à la Malík et al.): while every inserted key is packable
//     (two boundary slots, signature < 256 — see pack_key), entries are
//     held as 16-byte (uint64 key, count) rows, halving the probe
//     bandwidth against the 32-byte wide row. The first unpackable key
//     migrates the map to the wide layout transparently.
//
//   * B > 1 (the accumulation-side half of the lane-compressed layout,
//     see lane_payload.hpp): counts are held as narrow u32 lanes —
//     (key, u32[B]) rows, 56 instead of 88 bytes at B = 8 — with a u64
//     overflow escape: the first add that would push any lane past
//     2^32 - 1 migrates every row to the wide u64 layout. Keys hash the
//     same in both layouts, so migration rewrites the rows but keeps the
//     probe table.
//
// take_entries() always yields wide rows, so sealing is unaffected.

#include <array>
#include <cstddef>
#include <utility>
#include <vector>

#include "ccbt/table/table_key.hpp"
#include "ccbt/util/error.hpp"

namespace ccbt {

template <int B>
class AccumMapT {
 public:
  using Vec = typename LaneOps<B>::Vec;
  using Entry = TableEntryT<B>;

  /// `compact` requests the bandwidth-reduced layout: packed 16-byte rows
  /// at B = 1, narrow u32 lane rows at B > 1.
  explicit AccumMapT(std::size_t expected = 16, bool compact = false) {
    if constexpr (B == 1) {
      packed_mode_ = compact;
    } else {
      narrow_mode_ = compact;
    }
    rehash_for(expected);
  }

  /// Add `cnt` to the entry for `key`, creating it if absent.
  void add(const TableKey& key, const Vec& cnt) {
    if (size() + 1 > grow_at_) rehash_for(size() * 2 + 16);
    if constexpr (B == 1) {
      if (packed_mode_) {
        if (!packable_key(key)) {
          migrate_to_wide();
        } else {
          add_packed(pack_key(key), cnt);
          return;
        }
      }
    } else {
      if (narrow_mode_) {
        if (add_narrow(key, cnt)) return;
        migrate_narrow_to_wide();  // overflow escape: widen, then add
      }
    }
    add_wide(key, cnt);
  }

  std::size_t size() const {
    if constexpr (B == 1) {
      if (packed_mode_) return packed_.size();
    } else {
      if (narrow_mode_) return narrow_.size();
    }
    return entries_.size();
  }
  bool empty() const { return size() == 0; }

  /// Bytes the accumulated rows occupy in the current layout (the
  /// accumulate-stage emit-traffic telemetry B > 1 sinks report via
  /// FlatRowsT::byte_size — this is the B = 1 / hash-sink analogue).
  std::uint64_t byte_size() const {
    if constexpr (B == 1) {
      if (packed_mode_) return packed_.size() * sizeof(PackedEntry);
    } else {
      if (narrow_mode_) return narrow_.size() * sizeof(NarrowEntry);
    }
    return entries_.size() * sizeof(Entry);
  }

  /// Whether the map currently holds packed 16-byte rows (B = 1).
  bool packed() const { return packed_mode_; }

  /// Whether the map currently holds narrow u32 lane rows (B > 1).
  bool narrow() const { return narrow_mode_; }

  /// Pre-size the slot array for `expected` total entries so a bulk merge
  /// (e.g. reducing per-thread maps) runs without intermediate rehashes.
  void reserve(std::size_t expected) {
    if (expected > size()) {
      if constexpr (B == 1) {
        if (packed_mode_) {
          packed_.reserve(expected);
        } else {
          entries_.reserve(expected);
        }
      } else {
        if (narrow_mode_) {
          narrow_.reserve(expected);
        } else {
          entries_.reserve(expected);
        }
      }
      rehash_for(expected);
    }
  }

  /// Visit every (key, counts) pair; layout-independent.
  template <typename F>
  void for_each(F&& f) const {
    if constexpr (B == 1) {
      if (packed_mode_) {
        for (const PackedEntry& e : packed_) f(unpack_key(e.key), e.cnt);
        return;
      }
    } else {
      if (narrow_mode_) {
        for (const NarrowEntry& e : narrow_) f(e.key, widen(e.cnt));
        return;
      }
    }
    for (const Entry& e : entries_) f(e.key, e.cnt);
  }

  /// Move the dense entries out (unpacking / widening if needed); the map
  /// is left empty but keeps its slot capacity.
  std::vector<Entry> take_entries() {
    std::vector<Entry> out;
    if constexpr (B == 1) {
      if (packed_mode_) {
        out.reserve(packed_.size());
        for (const PackedEntry& e : packed_) {
          out.push_back({unpack_key(e.key), e.cnt});
        }
        packed_.clear();
        slots_.assign(slots_.size(), kEmpty);
        return out;
      }
    } else {
      if (narrow_mode_) {
        out.reserve(narrow_.size());
        for (const NarrowEntry& e : narrow_) {
          out.push_back({e.key, widen(e.cnt)});
        }
        narrow_.clear();
        slots_.assign(slots_.size(), kEmpty);
        return out;
      }
    }
    out = std::move(entries_);
    entries_.clear();
    slots_.assign(slots_.size(), kEmpty);
    return out;
  }

  /// Dense wide rows; only valid outside the compact modes (tests and
  /// callers that construct the map without `compact`). Engine code
  /// iterates through for_each instead.
  const std::vector<Entry>& entries() const {
    if (packed_mode_ || narrow_mode_) {
      throw Error("AccumMap::entries(): map is in a compact layout");
    }
    return entries_;
  }

 private:
  static constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;
  static constexpr std::uint64_t kNarrowMax = 0xFFFFFFFFull;

  struct PackedEntry {
    std::uint64_t key;
    Count cnt;
  };

  struct NarrowEntry {
    TableKey key;
    std::array<std::uint32_t, B> cnt;
  };

  static Vec widen(const std::array<std::uint32_t, B>& c) {
    Vec v = LaneOps<B>::zero();
    for (int l = 0; l < B; ++l) LaneOps<B>::set_lane(v, l, c[l]);
    return v;
  }

  void add_wide(const TableKey& key, const Vec& cnt) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t pos = hash_key(key) & mask;
    while (true) {
      const std::uint32_t idx = slots_[pos];
      if (idx == kEmpty) {
        slots_[pos] = static_cast<std::uint32_t>(entries_.size());
        entries_.push_back({key, cnt});
        return;
      }
      if (entries_[idx].key == key) {
        LaneOps<B>::add(entries_[idx].cnt, cnt);
        return;
      }
      pos = (pos + 1) & mask;
    }
  }

  void add_packed(std::uint64_t pkey, Count cnt) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t pos = hash_packed_key(pkey) & mask;
    while (true) {
      const std::uint32_t idx = slots_[pos];
      if (idx == kEmpty) {
        slots_[pos] = static_cast<std::uint32_t>(packed_.size());
        packed_.push_back({pkey, cnt});
        return;
      }
      if (packed_[idx].key == pkey) {
        packed_[idx].cnt += cnt;
        return;
      }
      pos = (pos + 1) & mask;
    }
  }

  /// Accumulate into the narrow layout; false when any lane would
  /// overflow u32 (nothing is modified in that case — the caller widens
  /// the map and re-adds).
  bool add_narrow(const TableKey& key, const Vec& cnt) {
    for (int l = 0; l < B; ++l) {
      if (LaneOps<B>::lane(cnt, l) > kNarrowMax) return false;
    }
    const std::size_t mask = slots_.size() - 1;
    std::size_t pos = hash_key(key) & mask;
    while (true) {
      const std::uint32_t idx = slots_[pos];
      if (idx == kEmpty) {
        NarrowEntry e;
        e.key = key;
        for (int l = 0; l < B; ++l) {
          e.cnt[l] = static_cast<std::uint32_t>(LaneOps<B>::lane(cnt, l));
        }
        slots_[pos] = static_cast<std::uint32_t>(narrow_.size());
        narrow_.push_back(e);
        return true;
      }
      if (narrow_[idx].key == key) {
        NarrowEntry& e = narrow_[idx];
        std::array<std::uint64_t, B> sum;
        for (int l = 0; l < B; ++l) {
          sum[l] = std::uint64_t{e.cnt[l]} + LaneOps<B>::lane(cnt, l);
          if (sum[l] > kNarrowMax) return false;
        }
        for (int l = 0; l < B; ++l) {
          e.cnt[l] = static_cast<std::uint32_t>(sum[l]);
        }
        return true;
      }
      pos = (pos + 1) & mask;
    }
  }

  /// One-time fallback (B = 1): unpack every row into the wide layout and
  /// rebuild the slot array under hash_key (the two hashes disagree, so
  /// the old probe table cannot be reused).
  void migrate_to_wide() {
    entries_.reserve(packed_.size() + 1);
    for (const PackedEntry& e : packed_) {
      entries_.push_back({unpack_key(e.key), e.cnt});
    }
    packed_.clear();
    packed_.shrink_to_fit();
    packed_mode_ = false;
    reindex();
  }

  /// u64 overflow escape (B > 1): widen every narrow row in place. Rows
  /// keep their indices and keys hash identically in both layouts, so
  /// the probe table stays valid — no rehash.
  void migrate_narrow_to_wide() {
    entries_.reserve(narrow_.size() + 1);
    for (const NarrowEntry& e : narrow_) {
      entries_.push_back({e.key, widen(e.cnt)});
    }
    narrow_.clear();
    narrow_.shrink_to_fit();
    narrow_mode_ = false;
  }

  void reindex() {
    const std::size_t mask = slots_.size() - 1;
    slots_.assign(slots_.size(), kEmpty);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      std::size_t pos = hash_key(entries_[i].key) & mask;
      while (slots_[pos] != kEmpty) pos = (pos + 1) & mask;
      slots_[pos] = static_cast<std::uint32_t>(i);
    }
  }

  void rehash_for(std::size_t expected) {
    std::size_t cap = 32;
    while (cap * 3 / 5 < expected) cap <<= 1;  // keep load factor <= 0.6
    if (!slots_.empty() && cap <= slots_.size()) {
      grow_at_ = slots_.size() * 3 / 5;
      return;
    }
    slots_.assign(cap, kEmpty);
    grow_at_ = cap * 3 / 5;
    const std::size_t mask = cap - 1;
    if constexpr (B == 1) {
      if (packed_mode_) {
        for (std::size_t i = 0; i < packed_.size(); ++i) {
          std::size_t pos = hash_packed_key(packed_[i].key) & mask;
          while (slots_[pos] != kEmpty) pos = (pos + 1) & mask;
          slots_[pos] = static_cast<std::uint32_t>(i);
        }
        return;
      }
    } else {
      if (narrow_mode_) {
        for (std::size_t i = 0; i < narrow_.size(); ++i) {
          std::size_t pos = hash_key(narrow_[i].key) & mask;
          while (slots_[pos] != kEmpty) pos = (pos + 1) & mask;
          slots_[pos] = static_cast<std::uint32_t>(i);
        }
        return;
      }
    }
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      std::size_t pos = hash_key(entries_[i].key) & mask;
      while (slots_[pos] != kEmpty) pos = (pos + 1) & mask;
      slots_[pos] = static_cast<std::uint32_t>(i);
    }
  }

  std::vector<std::uint32_t> slots_;
  std::vector<Entry> entries_;
  std::vector<PackedEntry> packed_;  // active only in packed mode (B = 1)
  std::vector<NarrowEntry> narrow_;  // active only in narrow mode (B > 1)
  std::size_t grow_at_ = 0;
  bool packed_mode_ = false;
  bool narrow_mode_ = false;
};

using AccumMap = AccumMapT<1>;

}  // namespace ccbt
