#include "ccbt/decomp/plan.hpp"

#include <algorithm>

#include "ccbt/util/error.hpp"

namespace ccbt {

PlanFeatures features_of(const DecompTree& tree) {
  PlanFeatures f;
  for (const Block& b : tree.blocks) {
    if (b.kind == BlockKind::kCycle) {
      f.longest_cycle = std::max(f.longest_cycle, b.length());
    }
    f.total_boundary += b.boundary_count();
    for (int c : b.node_child) f.total_annotations += (c >= 0) ? 1 : 0;
    for (int c : b.edge_child) f.total_annotations += (c >= 0) ? 1 : 0;
  }
  return f;
}

std::vector<Plan> enumerate_plans(const QueryGraph& q,
                                  const EnumLimits& limits) {
  std::vector<Plan> plans;
  for (DecompTree& tree : enumerate_decompositions(q, limits)) {
    PlanFeatures f = features_of(tree);
    plans.push_back(Plan{std::move(tree), f});
  }
  return plans;
}

Plan make_plan(const QueryGraph& q, const EnumLimits& limits) {
  std::vector<Plan> plans = enumerate_plans(q, limits);
  if (plans.empty()) {
    throw UnsupportedQuery("make_plan: no decomposition tree found");
  }
  auto best = std::min_element(
      plans.begin(), plans.end(),
      [](const Plan& a, const Plan& b) { return a.features < b.features; });
  return std::move(*best);
}

}  // namespace ccbt
