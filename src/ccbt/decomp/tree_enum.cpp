#include "ccbt/decomp/tree_enum.hpp"

#include <set>
#include <string>

namespace ccbt {

namespace {

struct EnumState {
  const EnumLimits& limits;
  std::vector<DecompTree> trees;
  std::set<std::string> seen;
  std::size_t steps = 0;

  void walk(Contractor contractor) {
    if (trees.size() >= limits.max_trees || steps >= limits.max_steps) return;
    ++steps;
    if (contractor.done()) {
      DecompTree tree = contractor.finish();
      if (seen.insert(Contractor::canonical_string(tree)).second) {
        trees.push_back(std::move(tree));
      }
      return;
    }
    for (const auto& cand : contractor.candidates()) {
      if (trees.size() >= limits.max_trees || steps >= limits.max_steps) {
        return;
      }
      Contractor next = contractor;  // states are small; copying is cheap
      next.contract(cand);
      walk(std::move(next));
    }
  }
};

}  // namespace

std::vector<DecompTree> enumerate_decompositions(const QueryGraph& q,
                                                 const EnumLimits& limits) {
  EnumState state{limits, {}, {}, 0};
  state.walk(Contractor(q));
  return state.trees;
}

}  // namespace ccbt
