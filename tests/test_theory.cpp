// Section 9/10 theory toolkit: bound calculators, the Hölder relation
// between them, balancedness of power-law sequences, and the empirical
// path censuses X(q), Y(q).

#include <gtest/gtest.h>

#include <cmath>

#include "ccbt/graph/generators.hpp"
#include "ccbt/theory/bounds.hpp"
#include "ccbt/theory/path_census.hpp"
#include "ccbt/util/error.hpp"

namespace ccbt {
namespace {

// ---------------------------------------------------------------------
// Moments and bounds.

TEST(TheoryBounds, MomentsOfConstantSequence) {
  const std::vector<double> d(100, 4.0);
  EXPECT_DOUBLE_EQ(seq_moment(d, 1.0), 400.0);
  EXPECT_DOUBLE_EQ(seq_moment(d, 2.0), 1600.0);
  EXPECT_DOUBLE_EQ(seq_edges(d), 200.0);
}

TEST(TheoryBounds, YLowerBoundTriangle) {
  // q=3: E[Y(3)] >= (1/3) * (Σ d^2)  (the (2m)^0 term drops out).
  const std::vector<double> d{2.0, 2.0, 2.0, 2.0};
  EXPECT_NEAR(y_lower_bound(d, 3), (1.0 / 3.0) * 16.0, 1e-12);
}

TEST(TheoryBounds, XUpperBoundTriangle) {
  // q=3: E[X(3)] <= (2m)^{-1} (Σ d^{3/2})^2.
  const std::vector<double> d{4.0, 4.0};
  const double two_m = 8.0;
  const double s = 2.0 * std::pow(4.0, 1.5);
  EXPECT_NEAR(x_upper_bound(d, 3), s * s / two_m, 1e-12);
}

TEST(TheoryBounds, RejectsSmallQ) {
  const std::vector<double> d{1.0, 1.0};
  EXPECT_THROW(y_lower_bound(d, 2), Error);
  EXPECT_THROW(x_upper_bound(d, 2), Error);
}

TEST(TheoryBounds, HolderRelationXAtMostQTimesY) {
  // Claim 9.2 / Lemma 9.7: the X bound never exceeds q times the Y bound,
  // for any degree sequence.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const std::vector<double> d =
        truncated_power_law_degrees(1 << 12, 1.2 + 0.15 * seed);
    for (int q : {3, 4, 5}) {
      EXPECT_LE(x_upper_bound(d, q), q * y_lower_bound(d, q) * (1 + 1e-9))
          << "seed=" << seed << " q=" << q;
    }
  }
}

TEST(TheoryBounds, PowerLawGapGrowsWithN) {
  // Lemma 9.8: under a truncated power law the Y/X bound ratio grows
  // polynomially in n.
  const double alpha = 1.5;
  const int q = 4;
  const std::vector<double> d1 = truncated_power_law_degrees(1 << 10, alpha);
  const std::vector<double> d2 = truncated_power_law_degrees(1 << 16, alpha);
  const double ratio1 = y_lower_bound(d1, q) / x_upper_bound(d1, q);
  const double ratio2 = y_lower_bound(d2, q) / x_upper_bound(d2, q);
  EXPECT_GT(ratio2, ratio1);
}

TEST(TheoryBounds, BalancednessBasics) {
  const std::vector<double> uniform(1000, 3.0);
  // Uniform sequences: λ(1,1) = Σd²/(Σd)² = 1/n.
  EXPECT_NEAR(balancedness_lambda(uniform, 1, 1), 1.0 / 1000.0, 1e-12);
  EXPECT_THROW(balancedness_lambda(uniform, 0, 1), Error);
}

TEST(TheoryBounds, PowerLawSequenceIsBalanced) {
  // Claim 10.1, case by case: the proof gives λ(1,1) = Θ(n^{-α/2}),
  // λ(1,b≥2) = Θ(n^{-1/2}) and λ(a,b≥2) = Θ(n^{α/2-1}); all are within
  // the claimed O(n^{α/2-1}) envelope. Check the measured decay exponent
  // of each case between two sizes.
  const double alpha = 1.5;
  const std::vector<double> d1 = truncated_power_law_degrees(1 << 10, alpha);
  const std::vector<double> d2 = truncated_power_law_degrees(1 << 16, alpha);
  const double log_n_ratio = std::log(static_cast<double>(1 << 16) /
                                      static_cast<double>(1 << 10));
  auto decay = [&](int a, int b) {
    const double l1 = balancedness_lambda(d1, a, b);
    const double l2 = balancedness_lambda(d2, a, b);
    EXPECT_LT(l2, l1) << "lambda(" << a << "," << b << ") must shrink";
    return std::log(l1 / l2) / log_n_ratio;
  };
  EXPECT_NEAR(decay(1, 1), alpha / 2.0, 0.15);        // case 3
  EXPECT_NEAR(decay(1, 2), 0.5, 0.15);                // case 2
  EXPECT_NEAR(decay(2, 2), 1.0 - alpha / 2.0, 0.15);  // case 1
}

TEST(TheoryBounds, DominantPathLength) {
  EXPECT_EQ(dominant_path_length(3), 2);
  EXPECT_EQ(dominant_path_length(4), 2);
  EXPECT_EQ(dominant_path_length(5), 3);
  EXPECT_EQ(dominant_path_length(8), 4);
  EXPECT_EQ(dominant_path_length(9), 5);
}

TEST(TheoryBounds, ImprovementExponentPositive) {
  for (double alpha : {1.1, 1.5, 1.9}) {
    for (int q : {3, 4, 5}) {
      EXPECT_GT(predicted_improvement_exponent(alpha, q), 0.0)
          << alpha << " " << q;
    }
  }
  EXPECT_THROW(predicted_improvement_exponent(2.5, 3), Error);
}

// ---------------------------------------------------------------------
// Empirical censuses.

/// Brute-force anchored path count on a tiny graph.
std::uint64_t brute_paths(const CsrGraph& g, const DegreeOrder& order,
                          int q) {
  std::uint64_t count = 0;
  std::vector<VertexId> path;
  std::vector<bool> used(g.num_vertices(), false);
  auto dfs = [&](auto&& self, VertexId v) -> void {
    if (static_cast<int>(path.size()) == q) {
      ++count;
      return;
    }
    for (VertexId w : g.neighbors(v)) {
      if (used[w] || !order.higher(path[0], w)) continue;
      used[w] = true;
      path.push_back(w);
      self(self, w);
      path.pop_back();
      used[w] = false;
    }
  };
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    used[u] = true;
    path.push_back(u);
    dfs(dfs, u);
    path.pop_back();
    used[u] = false;
  }
  return count;
}

TEST(PathCensus, MatchesBruteForceOnSmallGraphs) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const CsrGraph g = erdos_renyi(18, 45, seed);
    const DegreeOrder order(g);
    for (int q : {2, 3, 4}) {
      EXPECT_EQ(count_anchored_paths(g, order, q), brute_paths(g, order, q))
          << "seed=" << seed << " q=" << q;
    }
  }
}

TEST(PathCensus, EdgeCountForQ2) {
  // q=2 anchored paths = ordered adjacent pairs with u1 higher = exactly
  // one orientation per edge = m.
  const CsrGraph g = erdos_renyi(30, 80, 5);
  EXPECT_EQ(census_x(g, 2), g.num_edges());
  EXPECT_EQ(census_y(g, 2), g.num_edges());
}

TEST(PathCensus, RejectsDegenerateLength) {
  const CsrGraph g = erdos_renyi(5, 6, 6);
  EXPECT_THROW(count_anchored_paths(g, DegreeOrder(g), 1), Error);
}

TEST(PathCensus, DegreeAnchoringBeatsIdAnchoringOnPowerLaw) {
  // The heart of Section 9: on heavy-tailed graphs, far fewer paths are
  // degree-dominated by their anchor than id-dominated.
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const CsrGraph g = chung_lu_power_law(1500, 1.5, 6.0, seed);
    for (int q : {3, 4}) {
      EXPECT_LT(census_x(g, q), census_y(g, q))
          << "seed=" << seed << " q=" << q;
    }
  }
}

TEST(PathCensus, CensusGrowsWithPathLength) {
  // Remark 9.2: both quantities are monotone in q (on graphs dense
  // enough to host the longer paths).
  const CsrGraph g = chung_lu_power_law(500, 1.5, 8.0, 9);
  EXPECT_LE(census_x(g, 3), census_x(g, 4));
  EXPECT_LE(census_y(g, 3), census_y(g, 4));
}

}  // namespace
}  // namespace ccbt
