#pragma once
// Treewidth recognition for the query classes this library supports.
//
// A graph has treewidth <= 2 iff it can be reduced to nothing by repeatedly
// (a) deleting a vertex of degree <= 1, or (b) replacing a degree-2 vertex
// by an edge between its neighbors (series reduction). Trees are exactly
// the connected graphs of treewidth <= 1.

#include "ccbt/query/query_graph.hpp"

namespace ccbt {

bool is_forest(const QueryGraph& q);

bool treewidth_at_most_2(const QueryGraph& q);

/// Throws UnsupportedQuery unless q is connected with treewidth <= 2.
void validate_query(const QueryGraph& q);

}  // namespace ccbt
