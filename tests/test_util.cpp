// Unit tests for the utility layer: RNG determinism, statistics helpers,
// and the text-table printer used by every bench binary.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "ccbt/util/rng.hpp"
#include "ccbt/util/stats.hpp"
#include "ccbt/util/text_table.hpp"
#include "ccbt/util/timer.hpp"

namespace ccbt {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> buckets(8, 0);
  const int samples = 80000;
  for (int i = 0; i < samples; ++i) ++buckets[rng.below(8)];
  for (int b : buckets) {
    EXPECT_NEAR(b, samples / 8, samples / 80);  // within 10%
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng base(3);
  Rng c1 = base.fork(1);
  Rng c2 = base.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (c1() == c2());
  EXPECT_LT(equal, 2);
}

TEST(Stats, SummaryBasics) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.variance, 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.cv(), std::sqrt(5.0 / 3.0) / 2.5, 1e-12);
}

TEST(Stats, EmptyAndSingleton) {
  EXPECT_EQ(summarize({}).n, 0u);
  const Summary s = summarize({5.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.variance, 0.0);
}

TEST(Stats, GeometricMean) {
  EXPECT_NEAR(geometric_mean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geometric_mean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Stats, LogLogSlopeRecoversExponent) {
  // y = 3 x^2.5 -> slope 2.5.
  std::vector<double> x, y;
  for (double v : {10.0, 20.0, 40.0, 80.0}) {
    x.push_back(v);
    y.push_back(3.0 * std::pow(v, 2.5));
  }
  EXPECT_NEAR(loglog_slope(x, y), 2.5, 1e-9);
}

TEST(TextTable, AlignsAndSeparates) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(1.234, 2), "1.23");
  EXPECT_EQ(TextTable::num(std::uint64_t{42}), "42");
}

TEST(Timer, MeasuresNonNegativeTime) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 10000; ++i) sink += i;
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.millis(), t.seconds());
}

}  // namespace
}  // namespace ccbt
