// Fault-tolerance cost model, measured: (1) the fault-free overhead of
// checkpointing at several intervals — the insurance premium a run pays
// when nothing goes wrong — and (2) recovery behavior under a sweep of
// injected fault rates: modeled recovery latency (virtual backoff +
// deadline waits), retransmitted bytes, replayed supersteps, and whether
// every recovered run reproduced the fault-free count. Writes
// BENCH_faults.json so successive PRs can track both trajectories.
//
// Knobs: CCBT_BENCH_SCALE (graph sizes), CCBT_FAULT_SEED (extra sweep
// seed, matching the CI fault-sweep job).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "ccbt/dist/dist_engine.hpp"
#include "common.hpp"

namespace {

using namespace ccbt;
using namespace ccbt::bench;

constexpr std::uint32_t kRanks = 8;

struct CkptCell {
  std::uint64_t interval = 0;
  double wall = 0.0;
  double overhead_pct = 0.0;  // vs interval-0 wall on the same workload
  std::uint64_t checkpoints = 0;
  std::uint64_t ckpt_bytes = 0;
};

struct FaultCell {
  std::uint64_t seed = 0;
  double rate = 0.0;
  bool finished = true;   // false = recovery budget exhausted (degraded)
  bool agree = true;      // recovered count == fault-free count
  std::uint64_t faults = 0;
  std::uint64_t retries = 0;
  std::uint64_t replays = 0;
  std::uint64_t retransmit_bytes = 0;
  std::uint64_t replayed_supersteps = 0;
  double recovery_ms = 0.0;  // virtual (modeled), not wall clock
  double wall = 0.0;
};

}  // namespace

int main() {
  print_header("bench_fault_overhead",
               "checkpoint insurance premium (fault-free) and recovery "
               "cost under injected transport/alloc faults");

  const double scale = bench_scale();
  const CsrGraph g = make_workload("enron", scale, 42);
  const QueryGraph q = named_query("ecoli1");
  const Plan plan = make_plan(q);
  const Coloring chi(g.num_vertices(), q.num_nodes(), 2026);

  // --- Checkpoint overhead, fault-free -------------------------------
  std::vector<CkptCell> ckpt_cells;
  double base_wall = 0.0;
  std::printf("\n%-10s %10s %12s %8s %12s\n", "interval", "wall s",
              "overhead %", "ckpts", "ckpt KiB");
  for (std::uint64_t interval : {0ull, 1ull, 4ull, 16ull}) {
    ExecOptions opts;
    opts.dist.checkpoint_interval = interval;
    // Checkpoints without injection: the interval is honored whenever
    // the dist options are non-default, faults or not.
    const DistStats d = run_plan_distributed(g, plan.tree, chi, kRanks,
                                             opts);
    CkptCell c;
    c.interval = interval;
    c.wall = d.wall_seconds;
    if (interval == 0) base_wall = d.wall_seconds;
    c.overhead_pct = base_wall > 0.0
                         ? 100.0 * (d.wall_seconds - base_wall) / base_wall
                         : 0.0;
    c.checkpoints = d.faults.checkpoints_taken;
    c.ckpt_bytes = d.faults.checkpoint_bytes;
    ckpt_cells.push_back(c);
    std::printf("%-10llu %10.3f %12.1f %8llu %12llu\n",
                static_cast<unsigned long long>(interval), c.wall,
                c.overhead_pct,
                static_cast<unsigned long long>(c.checkpoints),
                static_cast<unsigned long long>(c.ckpt_bytes / 1024));
  }

  // --- Recovery cost under injected faults ---------------------------
  const DistStats clean = run_plan_distributed(g, plan.tree, chi, kRanks,
                                               {});
  std::vector<std::uint64_t> seeds = {1, 2};
  if (const char* env = std::getenv("CCBT_FAULT_SEED")) {
    seeds.push_back(std::strtoull(env, nullptr, 10));
  }

  std::vector<FaultCell> fault_cells;
  bool all_agree = true;
  std::printf("\n%-6s %-6s %8s %8s %8s %12s %14s %8s\n", "seed", "rate",
              "faults", "retries", "replays", "retx KiB", "recovery ms",
              "agree");
  for (std::uint64_t seed : seeds) {
    for (double rate : {0.01, 0.05, 0.10}) {
      ExecOptions opts;
      opts.dist.faults.seed = seed;
      opts.dist.faults.drop_rate = rate;
      opts.dist.faults.dup_rate = rate / 2;
      opts.dist.faults.delay_rate = rate / 2;
      opts.dist.faults.stall_rate = rate / 10;
      opts.dist.faults.alloc_fail_rate = rate / 10;
      opts.dist.max_retries = 8;
      opts.dist.max_replays = 8;
      opts.dist.checkpoint_interval = 8;

      FaultCell c;
      c.seed = seed;
      c.rate = rate;
      try {
        const DistStats d = run_plan_distributed(g, plan.tree, chi, kRanks,
                                                 opts);
        c.agree = d.colorful == clean.colorful;
        c.faults = d.faults.faults_injected;
        c.retries = d.faults.retries;
        c.replays = d.faults.replays;
        c.retransmit_bytes = d.faults.retransmit_bytes;
        c.replayed_supersteps = d.faults.replayed_supersteps;
        c.recovery_ms = d.faults.recovery_virtual_ms();
        c.wall = d.wall_seconds;
      } catch (const Error& e) {
        if (!e.retryable()) throw;
        c.finished = false;  // degraded: the estimator would drop the trial
      }
      all_agree = all_agree && c.agree;
      fault_cells.push_back(c);
      std::printf("%-6llu %-6.2f %8llu %8llu %8llu %12llu %14.2f %8s\n",
                  static_cast<unsigned long long>(seed), rate,
                  static_cast<unsigned long long>(c.faults),
                  static_cast<unsigned long long>(c.retries),
                  static_cast<unsigned long long>(c.replays),
                  static_cast<unsigned long long>(c.retransmit_bytes / 1024),
                  c.recovery_ms,
                  !c.finished ? "degraded" : (c.agree ? "yes" : "NO"));
    }
  }

  // --- JSON ----------------------------------------------------------
  std::FILE* f = std::fopen("BENCH_faults.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_faults.json\n");
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"fault_overhead\",\n"
               "  \"scale\": %.3f,\n"
               "  \"ranks\": %u,\n"
               "  \"all_recovered_runs_agree\": %s,\n"
               "  \"checkpoint_cells\": [\n",
               scale, kRanks, all_agree ? "true" : "false");
  for (std::size_t i = 0; i < ckpt_cells.size(); ++i) {
    const CkptCell& c = ckpt_cells[i];
    std::fprintf(f,
                 "    {\"interval\": %llu, \"wall_s\": %.6f, "
                 "\"overhead_pct\": %.2f, \"checkpoints\": %llu, "
                 "\"checkpoint_bytes\": %llu}%s\n",
                 static_cast<unsigned long long>(c.interval), c.wall,
                 c.overhead_pct,
                 static_cast<unsigned long long>(c.checkpoints),
                 static_cast<unsigned long long>(c.ckpt_bytes),
                 i + 1 < ckpt_cells.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"fault_cells\": [\n");
  for (std::size_t i = 0; i < fault_cells.size(); ++i) {
    const FaultCell& c = fault_cells[i];
    std::fprintf(
        f,
        "    {\"seed\": %llu, \"rate\": %.3f, \"finished\": %s, "
        "\"agree\": %s, \"faults\": %llu, \"retries\": %llu, "
        "\"replays\": %llu, \"retransmit_bytes\": %llu, "
        "\"replayed_supersteps\": %llu, \"recovery_virtual_ms\": %.3f, "
        "\"wall_s\": %.6f}%s\n",
        static_cast<unsigned long long>(c.seed), c.rate,
        c.finished ? "true" : "false", c.agree ? "true" : "false",
        static_cast<unsigned long long>(c.faults),
        static_cast<unsigned long long>(c.retries),
        static_cast<unsigned long long>(c.replays),
        static_cast<unsigned long long>(c.retransmit_bytes),
        static_cast<unsigned long long>(c.replayed_supersteps),
        c.recovery_ms, c.wall, i + 1 < fault_cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nBENCH_faults.json written: %s\n",
              all_agree ? "every recovered run reproduced the fault-free "
                          "count"
                        : "MISMATCH — recovered runs diverged");
  return all_agree ? 0 : 1;
}
