#pragma once
// Generic path-table construction over a cycle block (Fig 7).
//
// A PathSpec describes one half of a split cycle: the sequence of node
// positions from the anchor to the end, which cycle edge is crossed at
// each step (and in which storage direction), which positions must be
// *tracked* into extra key slots (interior boundary nodes of the DB
// configurations), and which of the two shared endpoints' annotations this
// path owns (P+ owns the end's, P- owns the anchor's — Section 5.2).
//
// Pool and builder are parameterized on the batch width B (the aliases
// keep the scalar names); the construction sequence itself is coloring
// independent, so all widths share it.

#include <vector>

#include "ccbt/decomp/block.hpp"
#include "ccbt/engine/exec_context.hpp"
#include "ccbt/engine/primitives.hpp"
#include "ccbt/table/proj_table.hpp"
#include "ccbt/util/error.hpp"

namespace ccbt {

/// Solved child tables, sealed kByV0, with cached transposes. `domain`
/// (the data graph's vertex count) lets stored tables build their O(1)
/// bucket index at seal time. Stored tables are probed repeatedly, so
/// they seal with the kStore hint: at B > 1 the seal re-packs them into
/// the lane-compressed layout when that is smaller (`compress` off pins
/// the dense layout, ExecOptions::lane_compress).
template <int B>
class TablePoolT {
 public:
  explicit TablePoolT(std::size_t num_blocks, VertexId domain = 0,
                      bool compress = true, StageWall* stage = nullptr)
      : tables_(num_blocks),
        domain_(domain),
        compress_(compress),
        stage_(stage) {}

  void store(int block, ProjTableT<B> table) {
    {
      ScopedStage timed(stage_ == nullptr ? nullptr : &stage_->seal);
      table.seal(SortOrder::kByV0, domain_, store_hint());
    }
    if (transposed_.empty()) {
      transposed_.resize(tables_.size());
      has_transposed_.resize(tables_.size(), false);
    }
    tables_[block] = std::move(table);
  }

  const ProjTableT<B>& get(int block) const { return tables_[block]; }

  /// The child table with slot 0 = `from`'s image; transposes lazily.
  const ProjTableT<B>& oriented(int block, bool transposed) {
    if (!transposed) return tables_[block];
    if (!has_transposed_[block]) {
      ScopedStage timed(stage_ == nullptr ? nullptr : &stage_->seal);
      ProjTableT<B> t = tables_[block].transposed();
      t.seal(SortOrder::kByV0, domain_, store_hint());
      transposed_[block] = std::move(t);
      has_transposed_[block] = true;
    }
    return transposed_[block];
  }

  LaneSealHint store_hint() const {
    return compress_ ? LaneSealHint::kStore : LaneSealHint::kStream;
  }

  std::size_t total_entries() const {
    std::size_t sum = 0;
    for (const auto& t : tables_) sum += t.size();
    return sum;
  }

 private:
  std::vector<ProjTableT<B>> tables_;
  std::vector<ProjTableT<B>> transposed_;  // lazily filled
  std::vector<bool> has_transposed_;
  VertexId domain_ = 0;
  bool compress_ = true;
  StageWall* stage_ = nullptr;
};

using TablePool = TablePoolT<1>;

struct PathSpec {
  /// Positions (indices into Block::nodes) visited, anchor first.
  std::vector<int> positions;

  /// edge_index[i] is the block edge crossed between positions[i] and
  /// positions[i+1]; edge_forward[i] is true when that walk direction
  /// matches the edge's storage direction nodes[e] -> nodes[e+1].
  std::vector<int> edge_index;
  std::vector<bool> edge_forward;

  /// track_slot_at[i] >= 2: record positions[i]'s image in that key slot.
  std::vector<int> track_slot_at;

  bool include_start_annot = false;  // NodeJoin(anchor) — P- owns it
  bool include_end_annot = false;    // NodeJoin(end)    — P+ owns it
  bool anchor_higher = false;        // DB: anchor ≻ every cycle vertex
};

/// Whether crossing edge `e` in walk direction `forward` needs the child's
/// transposed table: the child's first boundary must be the node the walk
/// leaves from. Shared with the distributed engine.
bool needs_transpose(const Block& blk, int edge, bool forward);

/// Build the projection table of one half-cycle path.
template <int B>
ProjTableT<B> build_path(const ExecContext& cx, const Block& blk,
                         TablePoolT<B>& pool, const PathSpec& spec) {
  const std::size_t steps = spec.positions.size();
  if (steps < 2) throw Error("build_path: path needs at least one edge");

  // --- Initial table: the first edge of the walk.
  ExtendOpts init_opts{spec.track_slot_at[1], spec.anchor_higher};
  ProjTableT<B> table;
  {
    const int e0 = spec.edge_index[0];
    const int child = blk.edge_child[e0];
    if (child < 0) {
      table = init_path_from_graph<B>(cx, init_opts);
    } else {
      const ProjTableT<B>& oriented =
          pool.oriented(child, needs_transpose(blk, e0, spec.edge_forward[0]));
      table = init_path_from_child<B>(cx, oriented, /*flip=*/false, init_opts);
    }
  }
  if (spec.include_start_annot) {
    const int child = blk.node_child[spec.positions[0]];
    if (child >= 0) {
      table = node_join<B>(cx, table, pool.get(child), /*slot=*/0);
    }
  }

  // --- Walk: NodeJoin at each reached position, then extend (Fig 7).
  for (std::size_t s = 1; s < steps; ++s) {
    const bool is_end = (s + 1 == steps);
    if (!is_end || spec.include_end_annot) {
      const int child = blk.node_child[spec.positions[s]];
      if (child >= 0) {
        table = node_join<B>(cx, table, pool.get(child), /*slot=*/1);
      }
    }
    if (is_end) break;
    ExtendOpts opts{spec.track_slot_at[s + 1], spec.anchor_higher};
    const int e = spec.edge_index[s];
    const int child = blk.edge_child[e];
    if (child < 0) {
      table = extend_with_graph<B>(cx, table, opts);
    } else {
      const ProjTableT<B>& oriented =
          pool.oriented(child, needs_transpose(blk, e, spec.edge_forward[s]));
      table = extend_with_child<B>(cx, table, oriented, opts);
    }
  }
  return table;
}

extern template ProjTableT<1> build_path<1>(const ExecContext&, const Block&,
                                            TablePoolT<1>&, const PathSpec&);
extern template ProjTableT<2> build_path<2>(const ExecContext&, const Block&,
                                            TablePoolT<2>&, const PathSpec&);
extern template ProjTableT<4> build_path<4>(const ExecContext&, const Block&,
                                            TablePoolT<4>&, const PathSpec&);
extern template ProjTableT<8> build_path<8>(const ExecContext&, const Block&,
                                            TablePoolT<8>&, const PathSpec&);

}  // namespace ccbt
