// Differential fuzz across the whole engine matrix: random (graph,
// query, batch width, layout/merge options, fault schedule) configs run
// through the shared-memory engine batched and lane-by-lane, and through
// the distributed engine — every route must report identical per-lane
// colorful counts. A divergence localizes to whichever leg disagrees
// with the B = 1 shared baseline, which exercises none of the batched
// layouts, packed merges, radix seals or transport code.
//
// The sweep is seeded: CCBT_DIFF_SEED offsets the whole configuration
// stream and CCBT_DIFF_ITERS scales the number of configs, so CI can run
// a different slice per job (the sanitizer job sweeps a few seeds under
// CCBT_FORCE_SCALAR_LANES=1) while local failures stay reproducible —
// the failure message carries the config's derivation.

#include <gtest/gtest.h>

#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "ccbt/core/color_coding.hpp"
#include "ccbt/dist/dist_engine.hpp"
#include "ccbt/graph/generators.hpp"
#include "ccbt/query/catalog.hpp"
#include "ccbt/table/flat_rows.hpp"
#include "ccbt/util/rng.hpp"

namespace ccbt {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* env = std::getenv(name);
  return env != nullptr ? std::strtoull(env, nullptr, 10) : fallback;
}

const char* accum_name(AccumEngine e) {
  switch (e) {
    case AccumEngine::kProbe: return "probe";
    case AccumEngine::kSharded: return "sharded";
    case AccumEngine::kAuto: break;
  }
  return "auto";
}

const char* emit_name(EmitFormat f) {
  switch (f) {
    case EmitFormat::kDense: return "dense";
    case EmitFormat::kSparse: return "sparse";
    case EmitFormat::kAuto: break;
  }
  return "auto";
}

QueryGraph pick_query(std::uint64_t die) {
  switch (die % 8) {
    case 0: return q_glet1();
    case 1: return q_glet2();
    case 2: return q_wiki();
    case 3: return q_youtube();
    case 4: return q_dros();
    case 5: return q_cycle(4 + static_cast<int>(die / 8 % 3));  // C4..C6
    case 6: return q_path(3 + static_cast<int>(die / 8 % 3));
    default: return q_cycle(5);
  }
}

struct DiffConfig {
  std::uint64_t seed = 0;
  VertexId n = 0;
  std::size_t m = 0;
  int width = 0;
  std::uint32_t ranks = 0;
  bool faulty = false;
  AccumEngine accum = AccumEngine::kAuto;
  EmitFormat emit = EmitFormat::kAuto;
  ExecOptions opts;

  std::string describe() const {
    return "seed=" + std::to_string(seed) + " n=" + std::to_string(n) +
           " m=" + std::to_string(m) + " B=" + std::to_string(width) +
           " ranks=" + std::to_string(ranks) +
           " compact=" + std::to_string(opts.compact_accum) +
           " lane_compress=" + std::to_string(opts.lane_compress) +
           " packed_merge=" + std::to_string(opts.packed_merge) +
           " accum=" + accum_name(accum) +
           " emit=" + emit_name(emit) +
           " faulty=" + std::to_string(faulty);
  }
};

DiffConfig draw_config(std::uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
  DiffConfig c;
  c.seed = seed;
  c.n = static_cast<VertexId>(24 + rng.below(36));
  c.m = c.n + rng.below(3 * c.n);
  const int widths[] = {2, 4, 8};
  c.width = widths[rng.below(3)];
  c.ranks = static_cast<std::uint32_t>(2 + rng.below(4));
  c.opts.compact_accum = rng.below(2) == 0;
  c.opts.lane_compress = rng.below(4) != 0;  // mostly on (the default)
  c.opts.packed_merge = rng.below(4) != 0;
  // Accumulation-engine axis: draw one per config unless CCBT_ACCUM
  // pins the whole process (the sanitizer job sweeps each pin in turn).
  if (std::getenv("CCBT_ACCUM") == nullptr) {
    const AccumEngine engines[] = {AccumEngine::kAuto, AccumEngine::kProbe,
                                   AccumEngine::kSharded};
    c.accum = engines[rng.below(3)];
  }
  // Emission-format axis, same pattern: sparse records vs the dense
  // fixed-stride oracle, crossed with everything above.
  if (std::getenv("CCBT_EMIT") == nullptr) {
    const EmitFormat formats[] = {EmitFormat::kAuto, EmitFormat::kDense,
                                  EmitFormat::kSparse};
    c.emit = formats[rng.below(3)];
  }
  c.faulty = rng.below(2) == 0;
  if (c.faulty) {
    c.opts.dist.faults.seed = seed * 31 + 7;
    c.opts.dist.faults.drop_rate = 0.01;
    c.opts.dist.faults.dup_rate = 0.005;
    c.opts.dist.faults.delay_rate = 0.005;
    c.opts.dist.faults.alloc_fail_rate = 0.01;
    c.opts.dist.max_retries = 8;
    c.opts.dist.max_replays = 8;
    c.opts.dist.checkpoint_interval = 2 + rng.below(3);
  }
  return c;
}

/// Restore the process-wide accumulation pin however the sweep exits
/// (configs that drew an explicit engine leave it set otherwise).
struct AccumPinGuard {
  ~AccumPinGuard() {
    if (std::getenv("CCBT_ACCUM") == nullptr) {
      set_accum_engine(AccumEngine::kAuto);
    }
    if (std::getenv("CCBT_EMIT") == nullptr) {
      set_emit_format(EmitFormat::kAuto);
    }
  }
};

TEST(DifferentialEngines, RandomConfigsAgreeAcrossEnginesAndWidths) {
  const std::uint64_t base = env_u64("CCBT_DIFF_SEED", 0);
  const std::uint64_t iters = env_u64("CCBT_DIFF_ITERS", 6);
  AccumPinGuard pin_guard;
  for (std::uint64_t it = 0; it < iters; ++it) {
    const DiffConfig c = draw_config(base * 1000 + it);
    SCOPED_TRACE(c.describe());
    if (std::getenv("CCBT_ACCUM") == nullptr) set_accum_engine(c.accum);
    if (std::getenv("CCBT_EMIT") == nullptr) set_emit_format(c.emit);
    const CsrGraph g = erdos_renyi(c.n, c.m, c.seed * 13 + 5);
    Rng qrng(c.seed * 17 + 3);
    const QueryGraph q = pick_query(qrng.below(24));
    SCOPED_TRACE(q.name());
    const Plan plan = make_plan(q);

    std::vector<Coloring> lanes;
    for (int l = 0; l < c.width; ++l) {
      lanes.emplace_back(g.num_vertices(), q.num_nodes(),
                         c.seed * 100 + 40 + l);
    }
    const ColoringBatch batch{std::span<const Coloring>(lanes)};

    // Baseline: each lane alone through the scalar shared engine with
    // default options (no batched layout or packed-merge code runs).
    CountingSession baseline(g, q, plan, ExecOptions{});
    std::vector<Count> expect;
    for (int l = 0; l < c.width; ++l) {
      expect.push_back(baseline.count_colorful(lanes[l]).colorful);
    }

    // Batched shared-memory engine under the drawn options.
    CountingSession session(g, q, plan, c.opts);
    const ExecStats shared = session.count_colorful(batch);
    for (int l = 0; l < c.width; ++l) {
      EXPECT_EQ(shared.colorful_lane[l], expect[l]) << "shared lane " << l;
    }

    // Distributed engine, same options (faults included: recovery must
    // restore the fault-free counts, not merely converge).
    const DistStats dist =
        run_plan_distributed(g, plan.tree, batch, c.ranks, c.opts);
    for (int l = 0; l < c.width; ++l) {
      EXPECT_EQ(dist.colorful_lane[l], expect[l]) << "dist lane " << l;
    }
  }
}

}  // namespace
}  // namespace ccbt
