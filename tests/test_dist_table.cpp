// DistTable: sharding, collection, resharding and transposition.

#include <gtest/gtest.h>

#include <vector>

#include "ccbt/dist/dist_table.hpp"
#include "ccbt/util/error.hpp"

namespace ccbt {
namespace {

TableEntry entry(VertexId a, VertexId b, Signature sig, Count cnt) {
  TableEntry e;
  e.key.v[0] = a;
  e.key.v[1] = b;
  e.key.sig = sig;
  e.cnt = cnt;
  return e;
}

/// Route entries to owner(key.v[home_slot]) and collect.
DistTable build(const std::vector<TableEntry>& entries, int home_slot,
                VirtualComm& comm, const BlockPartition& part,
                std::size_t budget = 1'000'000) {
  for (const TableEntry& e : entries) {
    comm.send(0, part.owner(e.key.v[home_slot]), e);
  }
  comm.exchange();
  return DistTable::collect(2, home_slot, comm, SortOrder::kByV1, budget);
}

TEST(DistTable, CollectPlacesEntriesAtHomeOwner) {
  VirtualComm comm(4);
  const BlockPartition part(100, 4);
  const DistTable t = build({entry(3, 10, 1, 1), entry(5, 60, 2, 1),
                             entry(7, 99, 4, 1)},
                            /*home_slot=*/1, comm, part);
  EXPECT_TRUE(t.well_placed(part));
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.shard(part.owner(10)).size(), 1u);
  EXPECT_EQ(t.shard(part.owner(60)).size(), 1u);
  EXPECT_EQ(t.shard(part.owner(99)).size(), 1u);
}

TEST(DistTable, CollectAccumulatesDuplicateKeys) {
  VirtualComm comm(2);
  const BlockPartition part(10, 2);
  const DistTable t = build({entry(1, 8, 3, 2), entry(1, 8, 3, 5)},
                            /*home_slot=*/1, comm, part);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.total(), 7u);
}

TEST(DistTable, TotalSumsAcrossShards) {
  VirtualComm comm(3);
  const BlockPartition part(30, 3);
  const DistTable t = build({entry(0, 1, 1, 10), entry(0, 15, 2, 20),
                             entry(0, 29, 4, 30)},
                            /*home_slot=*/1, comm, part);
  EXPECT_EQ(t.total(), 60u);
}

TEST(DistTable, ReshardMovesEntriesToNewHome) {
  VirtualComm comm(4);
  const BlockPartition part(100, 4);
  DistTable by_v = build({entry(90, 2, 1, 1), entry(30, 3, 2, 1)},
                         /*home_slot=*/1, comm, part);
  ASSERT_TRUE(by_v.well_placed(part));
  const DistTable by_u =
      by_v.resharded(0, comm, part, SortOrder::kByV0, 1'000'000);
  EXPECT_EQ(by_u.home_slot(), 0);
  EXPECT_TRUE(by_u.well_placed(part));
  EXPECT_EQ(by_u.size(), 2u);
  // Entries now live with their slot-0 vertex (ranks 3 and 1).
  EXPECT_EQ(by_u.shard(part.owner(90)).size(), 1u);
  EXPECT_EQ(by_u.shard(part.owner(30)).size(), 1u);
}

TEST(DistTable, ReshardPreservesContent) {
  VirtualComm comm(4);
  const BlockPartition part(64, 4);
  const std::vector<TableEntry> entries{
      entry(1, 40, 1, 3), entry(2, 50, 2, 4), entry(63, 0, 8, 5)};
  DistTable t = build(entries, 1, comm, part);
  const ProjTable before = t.gather();
  const DistTable r = t.resharded(0, comm, part, SortOrder::kByV0, 1'000'000);
  const ProjTable after = r.gather();
  EXPECT_EQ(before.size(), after.size());
  EXPECT_EQ(before.total(), after.total());
}

TEST(DistTable, TransposeSwapsSlotsAndRehomes) {
  VirtualComm comm(4);
  const BlockPartition part(100, 4);
  DistTable t = build({entry(90, 2, 1, 7)}, /*home_slot=*/1, comm, part);
  // Reshard to home 0 first (the pool's storage convention).
  DistTable stored = t.resharded(0, comm, part, SortOrder::kByV0, 1'000'000);
  const DistTable flipped = stored.transposed(comm, part, 1'000'000);
  EXPECT_TRUE(flipped.well_placed(part));
  ASSERT_EQ(flipped.size(), 1u);
  const auto& shard = flipped.shard(part.owner(2));
  ASSERT_EQ(shard.size(), 1u);
  EXPECT_EQ(shard.entries()[0].key.v[0], 2u);
  EXPECT_EQ(shard.entries()[0].key.v[1], 90u);
  EXPECT_EQ(shard.entries()[0].cnt, 7u);
}

TEST(DistTable, GatherAccumulatesAcrossShards) {
  VirtualComm comm(3);
  const BlockPartition part(30, 3);
  // Same key routed from two different logical producers.
  const DistTable t = build({entry(4, 25, 1, 2), entry(4, 25, 1, 3)},
                            /*home_slot=*/1, comm, part);
  const ProjTable flat = t.gather();
  ASSERT_EQ(flat.size(), 1u);
  EXPECT_EQ(flat.total(), 5u);
}

TEST(DistTable, CollectEnforcesBudget) {
  VirtualComm comm(2);
  const BlockPartition part(10, 2);
  std::vector<TableEntry> many;
  for (VertexId i = 0; i < 10; ++i) many.push_back(entry(0, i, 1u << (i % 8), 1));
  EXPECT_THROW(build(many, 1, comm, part, /*budget=*/3), BudgetExceeded);
}

TEST(DistTable, WellPlacedDetectsMisplacement) {
  VirtualComm comm(2);
  const BlockPartition part(10, 2);
  // Deliberately send an entry to the wrong owner.
  comm.send(0, 0, entry(0, 9, 1, 1));  // owner(9) is rank 1
  comm.exchange();
  const DistTable t =
      DistTable::collect(2, 1, comm, SortOrder::kByV1, 1'000'000);
  EXPECT_FALSE(t.well_placed(part));
}

TEST(DistTable, SingleRankDegeneratesToSharedTable) {
  VirtualComm comm(1);
  const BlockPartition part(10, 1);
  const DistTable t = build({entry(1, 2, 1, 1), entry(3, 4, 2, 2)},
                            /*home_slot=*/1, comm, part);
  EXPECT_TRUE(t.well_placed(part));
  EXPECT_EQ(t.shard(0).size(), 2u);
  EXPECT_EQ(comm.stats().off_rank_entries, 0u);
}

}  // namespace
}  // namespace ccbt
