#include "ccbt/query/treewidth.hpp"

#include <bit>

#include "ccbt/util/error.hpp"

namespace ccbt {

bool is_forest(const QueryGraph& q) {
  // A forest has |E| = |V| - #components; equivalently the degree-<=1
  // reduction consumes it entirely.
  QueryGraph g = q;
  std::uint32_t alive = (g.num_nodes() >= 32)
                            ? ~std::uint32_t{0}
                            : (std::uint32_t{1} << g.num_nodes()) - 1;
  bool progress = true;
  while (progress) {
    progress = false;
    for (int a = 0; a < g.num_nodes(); ++a) {
      if (!((alive >> a) & 1u)) continue;
      const std::uint32_t nbrs = g.neighbors(static_cast<QNode>(a)) & alive;
      if (std::popcount(nbrs) <= 1) {
        for (int b = 0; b < g.num_nodes(); ++b) {
          if ((nbrs >> b) & 1u) {
            g.remove_edge(static_cast<QNode>(a), static_cast<QNode>(b));
          }
        }
        alive &= ~(std::uint32_t{1} << a);
        progress = true;
      }
    }
  }
  return alive == 0;
}

bool treewidth_at_most_2(const QueryGraph& q) {
  QueryGraph g = q;
  std::uint32_t alive = (std::uint32_t{1} << g.num_nodes()) - 1;
  bool progress = true;
  while (alive != 0 && progress) {
    progress = false;
    for (int a = 0; a < g.num_nodes(); ++a) {
      if (!((alive >> a) & 1u)) continue;
      const std::uint32_t nbrs = g.neighbors(static_cast<QNode>(a)) & alive;
      const int deg = std::popcount(nbrs);
      if (deg <= 1) {
        for (int b = 0; b < g.num_nodes(); ++b) {
          if ((nbrs >> b) & 1u) {
            g.remove_edge(static_cast<QNode>(a), static_cast<QNode>(b));
          }
        }
        alive &= ~(std::uint32_t{1} << a);
        progress = true;
      } else if (deg == 2) {
        int x = -1, y = -1;
        for (int b = 0; b < g.num_nodes(); ++b) {
          if ((nbrs >> b) & 1u) (x < 0 ? x : y) = b;
        }
        g.remove_edge(static_cast<QNode>(a), static_cast<QNode>(x));
        g.remove_edge(static_cast<QNode>(a), static_cast<QNode>(y));
        if (!g.has_edge(static_cast<QNode>(x), static_cast<QNode>(y))) {
          g.add_edge(static_cast<QNode>(x), static_cast<QNode>(y));
        }
        alive &= ~(std::uint32_t{1} << a);
        progress = true;
      }
    }
  }
  return alive == 0;
}

void validate_query(const QueryGraph& q) {
  if (q.num_nodes() < 1) throw UnsupportedQuery("query is empty");
  if (!q.connected()) throw UnsupportedQuery("query must be connected");
  if (!treewidth_at_most_2(q)) {
    throw UnsupportedQuery("query '" + q.name() + "' has treewidth > 2");
  }
}

}  // namespace ccbt
