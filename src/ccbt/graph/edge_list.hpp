#pragma once
// Edge lists: the exchange format between generators, I/O and CSR building.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "ccbt/graph/types.hpp"

namespace ccbt {

struct Edge {
  VertexId u = 0;
  VertexId v = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// A bag of undirected edges plus a vertex-count upper bound.
struct EdgeList {
  std::vector<Edge> edges;
  VertexId num_vertices = 0;

  void add(VertexId u, VertexId v) {
    edges.push_back({u, v});
    if (u >= num_vertices) num_vertices = u + 1;
    if (v >= num_vertices) num_vertices = v + 1;
  }

  std::size_t size() const { return edges.size(); }
};

/// Canonicalize: drop self loops, order endpoints (u < v), sort, dedupe.
EdgeList simplify(EdgeList list);

/// Text format: one "u v" pair per line; '#' starts a comment line.
EdgeList read_edge_list(std::istream& in);
EdgeList read_edge_list_file(const std::string& path);
void write_edge_list(std::ostream& out, const EdgeList& list);

}  // namespace ccbt
