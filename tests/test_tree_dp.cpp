// Tree-query color-coding DP: agreement with the exact oracle and the
// general treewidth-2 engine on every tree query, rejection of non-trees,
// and the linear-table-size property that motivates the paper.

#include <gtest/gtest.h>

#include "ccbt/core/color_coding.hpp"
#include "ccbt/core/exact.hpp"
#include "ccbt/graph/generators.hpp"
#include "ccbt/query/catalog.hpp"
#include "ccbt/query/treewidth.hpp"
#include "ccbt/tree/tree_dp.hpp"
#include "ccbt/util/error.hpp"

namespace ccbt {
namespace {

void expect_tree_dp_matches_oracle(const CsrGraph& g, const QueryGraph& q,
                                   std::uint64_t color_seed) {
  const Coloring chi(g.num_vertices(), q.num_nodes(), color_seed);
  EXPECT_EQ(count_colorful_tree(g, q, chi), count_colorful_exact(g, q, chi))
      << q.name() << " k=" << q.num_nodes() << " seed=" << color_seed;
}

TEST(TreeDp, SingleNode) {
  const CsrGraph g = erdos_renyi(25, 40, 1);
  const Coloring chi(g.num_vertices(), 1, 2);
  EXPECT_EQ(count_colorful_tree(g, QueryGraph(1, "v"), chi), 25u);
}

TEST(TreeDp, SingleEdge) {
  expect_tree_dp_matches_oracle(erdos_renyi(20, 45, 2), q_path(2), 3);
}

TEST(TreeDp, Paths) {
  const CsrGraph g = erdos_renyi(24, 55, 3);
  for (int len : {3, 4, 5, 6, 7}) {
    expect_tree_dp_matches_oracle(g, q_path(len), 10 + len);
  }
}

TEST(TreeDp, Stars) {
  const CsrGraph g = erdos_renyi(22, 60, 4);
  for (int leaves : {2, 3, 4, 5}) {
    expect_tree_dp_matches_oracle(g, q_star(leaves), 20 + leaves);
  }
}

TEST(TreeDp, CompleteBinaryTrees) {
  const CsrGraph g = erdos_renyi(26, 60, 5);
  expect_tree_dp_matches_oracle(g, q_complete_binary_tree(7), 31);
}

TEST(TreeDp, RandomTreesMatchOracle) {
  const CsrGraph g = erdos_renyi(22, 50, 6);
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const QueryGraph q = random_tree_query(3 + static_cast<int>(seed), seed);
    expect_tree_dp_matches_oracle(g, q, 40 + seed);
  }
}

TEST(TreeDp, AgreesWithGeneralEngineOnTrees) {
  const CsrGraph g = chung_lu_power_law(120, 1.6, 4.0, 7);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const QueryGraph q = random_tree_query(6, 100 + seed);
    const Coloring chi(g.num_vertices(), q.num_nodes(), 60 + seed);
    const Count engine = count_colorful_matches(g, q, chi);
    EXPECT_EQ(count_colorful_tree(g, q, chi), engine) << "seed=" << seed;
  }
}

TEST(TreeDp, TwelveNodeBinaryTreeAgainstEngine) {
  // The Section 8.2 contrast query: too large for the brute oracle, so
  // validate against the general engine instead.
  const CsrGraph g = erdos_renyi(40, 80, 8);
  const QueryGraph q = q_complete_binary_tree(12);
  const Coloring chi(g.num_vertices(), q.num_nodes(), 70);
  EXPECT_EQ(count_colorful_tree(g, q, chi),
            count_colorful_matches(g, q, chi));
}

TEST(TreeDp, RejectsCyclicQueries) {
  const CsrGraph g = erdos_renyi(10, 20, 9);
  const Coloring chi(g.num_vertices(), 3, 80);
  EXPECT_THROW(count_colorful_tree(g, q_cycle(3), chi), UnsupportedQuery);
}

TEST(TreeDp, RejectsDisconnectedQueries) {
  const CsrGraph g = erdos_renyi(10, 20, 10);
  QueryGraph q(4, "two_edges");
  q.add_edge(0, 1);
  q.add_edge(2, 3);
  const Coloring chi(g.num_vertices(), 4, 81);
  EXPECT_THROW(count_colorful_tree(g, q, chi), UnsupportedQuery);
}

TEST(TreeDp, RejectsColoringMismatch) {
  const CsrGraph g = erdos_renyi(10, 20, 11);
  const Coloring chi(g.num_vertices(), 5, 82);  // wrong k
  EXPECT_THROW(count_colorful_tree(g, q_path(3), chi), Error);
}

TEST(TreeDp, ZeroWhenGraphTooSparse) {
  // A star with 5 leaves cannot match a graph of max degree 2.
  const CsrGraph g = grid2d(1, 10, 0, 12);
  const QueryGraph q = q_star(5);
  const Coloring chi(g.num_vertices(), q.num_nodes(), 83);
  EXPECT_EQ(count_colorful_tree(g, q, chi), 0u);
}

TEST(TreeDp, PeakEntriesLinearInGraphSize) {
  // The treewidth-1 advantage: the DP's peak table size is O(2^k n), not
  // quadratic. Doubling the graph should at most ~double peak entries.
  const QueryGraph q = q_path(4);
  const CsrGraph g1 = erdos_renyi(200, 600, 13);
  const CsrGraph g2 = erdos_renyi(400, 1200, 14);
  const Coloring chi1(g1.num_vertices(), 4, 84);
  const Coloring chi2(g2.num_vertices(), 4, 85);
  const TreeDpStats s1 = count_colorful_tree_stats(g1, q, chi1);
  const TreeDpStats s2 = count_colorful_tree_stats(g2, q, chi2);
  EXPECT_GT(s1.peak_entries, 0u);
  EXPECT_LT(s2.peak_entries, 3 * s1.peak_entries);
}

TEST(TreeDp, ThreadedAndSerialAgree) {
  const CsrGraph g = chung_lu_power_law(150, 1.5, 5.0, 15);
  const QueryGraph q = random_tree_query(7, 7);
  const Coloring chi(g.num_vertices(), q.num_nodes(), 86);
  EXPECT_EQ(count_colorful_tree_stats(g, q, chi, true).colorful,
            count_colorful_tree_stats(g, q, chi, false).colorful);
}

TEST(TreeDp, RandomTreeQueryIsAlwaysATree) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const int nodes = 1 + static_cast<int>(seed % kMaxQueryNodes);
    const QueryGraph q = random_tree_query(nodes, seed);
    EXPECT_EQ(q.num_nodes(), nodes);
    if (nodes > 1) {
      EXPECT_TRUE(q.connected()) << "seed=" << seed;
      EXPECT_EQ(q.num_edges(), nodes - 1) << "seed=" << seed;
      EXPECT_EQ(treewidth_at_most_2(q) ? 1 : 0, 1) << "seed=" << seed;
    }
  }
}

TEST(TreeDp, RandomTreeQueriesVaryWithSeed) {
  const QueryGraph a = random_tree_query(10, 1);
  const QueryGraph b = random_tree_query(10, 2);
  // Not a hard guarantee, but with 10 nodes the chance of an identical
  // edge set from different seeds is negligible.
  EXPECT_NE(a.edge_pairs(), b.edge_pairs());
}

}  // namespace
}  // namespace ccbt
