// Cross-solver agreement on graphs far beyond the brute-force oracle's
// reach: the four independent implementations (PS, PS-EVEN, DB shared;
// DB distributed; treelet DP where the query is a tree) must return the
// same colorful count. Any single-solver bug that survives the
// small-graph oracle tests would have to be replicated identically in
// algorithmically different code paths to pass here.

#include <gtest/gtest.h>

#include "ccbt/bench_support/workloads.hpp"
#include "ccbt/core/color_coding.hpp"
#include "ccbt/dist/dist_engine.hpp"
#include "ccbt/graph/generators.hpp"
#include "ccbt/query/catalog.hpp"
#include "ccbt/tree/tree_dp.hpp"

namespace ccbt {
namespace {

Count shared_count(const CsrGraph& g, const QueryGraph& q,
                   const Coloring& chi, Algo algo) {
  ExecOptions opts;
  opts.algo = algo;
  CountingSession session(g, q, make_plan(q), opts);
  return session.count_colorful(chi).colorful;
}

class CrossSolver : public ::testing::TestWithParam<const char*> {};

TEST_P(CrossSolver, AllEnginesAgreeOnWorkloadGraph) {
  const QueryGraph q = named_query(GetParam());
  const CsrGraph g = make_workload("condMat", 0.05, 11);
  const Coloring chi(g.num_vertices(), q.num_nodes(), 31);

  const Count db = shared_count(g, q, chi, Algo::kDB);
  EXPECT_EQ(shared_count(g, q, chi, Algo::kPS), db) << "PS";
  EXPECT_EQ(shared_count(g, q, chi, Algo::kPSEven), db) << "PS-EVEN";
  ExecOptions opts;
  opts.algo = Algo::kDB;
  EXPECT_EQ(run_plan_distributed(g, make_plan(q).tree, chi, 8, opts)
                .colorful,
            db)
      << "distributed";
}

INSTANTIATE_TEST_SUITE_P(Figure8, CrossSolver,
                         ::testing::Values("dros", "ecoli1", "ecoli2",
                                           "brain1", "glet1", "glet2",
                                           "wiki", "youtube"));

TEST(CrossSolverBig, SatelliteElevenNodeQuery) {
  // The Figure 2 walk-through query: 11 nodes, three cycles and a leaf;
  // exercises deep annotation chains. Exact oracle is far out of reach.
  const QueryGraph q = named_query("satellite");
  const CsrGraph g = erdos_renyi(120, 500, 13);
  const Coloring chi(g.num_vertices(), q.num_nodes(), 37);
  const Count db = shared_count(g, q, chi, Algo::kDB);
  EXPECT_EQ(shared_count(g, q, chi, Algo::kPS), db);
  ExecOptions opts;
  EXPECT_EQ(run_plan_distributed(g, make_plan(q).tree, chi, 4, opts)
                .colorful,
            db);
}

TEST(CrossSolverBig, TreeDpAgreesOnPowerLawGraph) {
  const CsrGraph g = chung_lu_power_law(2'000, 1.6, 6.0, 17);
  for (int k : {6, 8, 10}) {
    const QueryGraph q = random_tree_query(k, 500 + k);
    const Coloring chi(g.num_vertices(), k, 41 + k);
    EXPECT_EQ(count_colorful_tree(g, q, chi),
              shared_count(g, q, chi, Algo::kDB))
        << "k=" << k;
  }
}

TEST(CrossSolverBig, MaxWidthQuerySixteenNodes) {
  // k = 16 saturates the signature bitmask; a 16-cycle on a graph known
  // to contain some. All solvers must agree (count may be 0 or more).
  const QueryGraph q = q_cycle(16);
  CsrGraph g = watts_strogatz(300, 3, 0.1, 19);
  const Coloring chi(g.num_vertices(), 16, 43);
  const Count db = shared_count(g, q, chi, Algo::kDB);
  EXPECT_EQ(shared_count(g, q, chi, Algo::kPS), db);
}

TEST(CrossSolverBig, BrainQueriesOnSkewedGraph) {
  // The paper's hardest queries on a hub-heavy graph; PS and DB explore
  // radically different table shapes yet must agree exactly.
  const CsrGraph g = chung_lu_power_law(400, 1.4, 5.0, 23);
  for (const char* name : {"brain2", "brain3"}) {
    const QueryGraph q = named_query(name);
    const Coloring chi(g.num_vertices(), q.num_nodes(), 47);
    EXPECT_EQ(shared_count(g, q, chi, Algo::kPS),
              shared_count(g, q, chi, Algo::kDB))
        << name;
  }
}

TEST(CrossSolverBig, ManyColoringsOneQuery) {
  // Agreement must hold for every coloring, not a lucky one.
  const CsrGraph g = barabasi_albert(500, 3, 29);
  const QueryGraph q = named_query("wiki");
  CountingSession db_session(g, q, make_plan(q), {});
  ExecOptions ps_opts;
  ps_opts.algo = Algo::kPS;
  CountingSession ps_session(g, q, make_plan(q), ps_opts);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Coloring chi(g.num_vertices(), q.num_nodes(), 100 + seed);
    EXPECT_EQ(db_session.count_colorful(chi).colorful,
              ps_session.count_colorful(chi).colorful)
        << "seed=" << seed;
  }
}

}  // namespace
}  // namespace ccbt
