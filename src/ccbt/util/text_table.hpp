#pragma once
// Aligned plain-text table printer. All bench binaries regenerate the
// paper's tables/figures as text series; this keeps their output uniform.

#include <ostream>
#include <string>
#include <vector>

namespace ccbt {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a data row; must have the same width as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles/ints into cells.
  static std::string num(double v, int precision = 2);
  static std::string num(std::uint64_t v);

  void print(std::ostream& os) const;

 private:
  std::vector<std::vector<std::string>> rows_;  // rows_[0] is the header
};

}  // namespace ccbt
