#pragma once
// VirtualComm: a single-process stand-in for the paper's MPI transport
// (Section 7). Ranks exchange projection-table entries in bulk-synchronous
// supersteps: send() queues an entry in the sender's outbox, exchange()
// delivers every queued entry to its destination inbox and closes the
// superstep. Delivery is deterministic — inboxes concatenate senders in
// rank order, preserving each sender's send order — so a virtual run is
// exactly reproducible.
//
// The transport keeps its own traffic accounting (CommStats), independent
// of the engine's modeled LoadModel communication: the model sees only the
// routing a real implementation must pay per join emission, while the
// transport also pays for resharding and orientation supersteps.
//
// Fault tolerance: with a FaultPlan installed (set_fault_plan), each
// off-rank message's delivery attempt can deterministically drop,
// duplicate, or delay it, and whole ranks can stall past the ack
// deadline. exchange() then runs a selective-retransmit protocol:
// per-superstep acknowledgments identify the messages still missing
// (sequence numbers, as a real transport would), and only those are
// re-attempted, up to max_retries extra attempts with exponential
// backoff + jitter (accounted virtually, never slept). The receiver
// reassembles its inbox in canonical (sender rank, send order) sequence
// no matter which attempt delivered each message, so a recovered
// superstep is bit-identical to a fault-free one. Exhausting the retry
// budget throws CommTimeout (or RankFailed when a stalled rank holds the
// missing traffic) — both retryable, so the engine can replay from its
// last checkpoint.
//
// Wire format per batch width:
//   * B = 1 keeps the PR 2 layout bit for bit: fixed-size rows of
//     sizeof(TableKey) + sizeof(Count) wire bytes.
//   * B > 1 serializes every row through the lane-compressed encoding of
//     table/lane_payload.hpp — unpadded key, occupancy mask, per-row
//     width code, then only the occupied lanes' counts at that width.
//     Outboxes hold the actual byte streams and exchange() decodes them,
//     so CommStats' wire volume tracks true lane density instead of the
//     dense u64[B] vector's worst case.

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "ccbt/table/lane_payload.hpp"
#include "ccbt/table/table_key.hpp"
#include "ccbt/util/error.hpp"
#include "ccbt/util/fault.hpp"
#include "ccbt/util/rng.hpp"

namespace ccbt {

struct CommStats {
  std::uint64_t supersteps = 0;
  std::uint64_t entries_sent = 0;      // all sends, local included
  std::uint64_t off_rank_entries = 0;  // sends with from != to
  std::uint64_t max_step_recv = 0;     // max entries one rank received
                                       // in one superstep

  /// Wire size of a *dense* row (the fixed B = 1 encoding; the dense
  /// reference point for the B > 1 compression ratio).
  std::uint64_t entry_bytes = sizeof(TableKey) + sizeof(Count);

  /// Actual serialized bytes of the off-rank traffic (equals
  /// off_rank_entries * entry_bytes at B = 1; tracks the per-row
  /// compressed encoding at B > 1).
  std::uint64_t off_rank_payload = 0;

  // Lane-compression wire telemetry (B > 1; zero at B = 1): occupancy
  // and per-row payload-width histogram over every serialized row.
  std::uint64_t lane_slots_sent = 0;       // rows sent * B
  std::uint64_t lanes_occupied_sent = 0;   // mask-set lanes sent
  std::array<std::uint64_t, 3> width_rows{};  // rows per u16/u32/u64

  /// Wire volume of the off-rank traffic.
  std::uint64_t off_rank_bytes() const { return off_rank_payload; }

  double wire_lane_density() const {
    return lane_slots_sent == 0
               ? 0.0
               : static_cast<double>(lanes_occupied_sent) /
                     static_cast<double>(lane_slots_sent);
  }
};

template <int B>
class VirtualCommT {
 public:
  using Entry = TableEntryT<B>;

  /// Throws Error when ranks == 0.
  explicit VirtualCommT(std::uint32_t ranks) {
    if (ranks == 0) throw Error("VirtualComm: need at least one rank");
    if constexpr (B == 1) {
      outbox_.resize(ranks);
    } else {
      wire_outbox_.resize(ranks);
    }
    inbox_.resize(ranks);
    stats_.entry_bytes =
        sizeof(TableKey) + sizeof(typename LaneOps<B>::Vec);
  }

  std::uint32_t num_ranks() const {
    return static_cast<std::uint32_t>(inbox_.size());
  }

  /// Queue `e` from rank `from` to rank `to`; visible after exchange().
  void send(std::uint32_t from, std::uint32_t to, const Entry& e) {
    ++stats_.entries_sent;
    if constexpr (B == 1) {
      outbox_[from].push_back({to, e});
      if (from != to) {
        ++stats_.off_rank_entries;
        stats_.off_rank_payload += stats_.entry_bytes;
      }
      return;
    } else {
      // Serialize immediately: [dest u32][lane-compressed row]. The dest
      // word is outbox bookkeeping, not wire payload — a real transport
      // carries the destination in its envelope.
      std::vector<std::uint8_t>& out = wire_outbox_[from];
      const std::size_t at = out.size();
      out.resize(at + sizeof(std::uint32_t));
      std::memcpy(out.data() + at, &to, sizeof(std::uint32_t));
      const std::size_t row_at = out.size();
      const PayloadWidth width = wire_encode<B>(e, out);
      LaneMask mask = 0;
      for (int l = 0; l < B; ++l) {
        mask |= static_cast<LaneMask>(LaneOps<B>::lane(e.cnt, l) != 0) << l;
      }
      stats_.lane_slots_sent += B;
      stats_.lanes_occupied_sent += std::popcount(mask);
      ++stats_.width_rows[payload_width_code(width)];
      if (from != to) {
        ++stats_.off_rank_entries;
        stats_.off_rank_payload += out.size() - row_at;
      }
    }
  }

  /// Install (or clear, with nullptr) a deterministic fault plan plus the
  /// recovery knobs the faulty exchange protocol uses. The plan outlives
  /// the transport's use of it; callers keep ownership.
  void set_fault_plan(FaultPlan* plan, std::uint32_t max_retries = 3,
                      double backoff_base_ms = 1.0,
                      double deadline_ms = 0.0) {
    faults_ = plan;
    max_retries_ = max_retries;
    backoff_base_ms_ = backoff_base_ms;
    deadline_ms_ = deadline_ms;
    if (plan != nullptr) jitter_ = Rng(plan->spec().seed ^ 0xBAC0FFULL);
  }

  /// Discard all in-flight state (queued sends and delivered inboxes),
  /// keeping the traffic statistics. The engine calls this before
  /// replaying from a checkpoint, since an aborted superstep leaves
  /// half-queued outboxes behind.
  void reset_in_flight() {
    for (auto& out : outbox_) out.clear();
    for (auto& out : wire_outbox_) out.clear();
    for (auto& in : inbox_) in.clear();
  }

  /// Deliver all queued entries (replacing previous inboxes) and close
  /// the superstep. With a fault plan installed, runs the
  /// selective-retransmit protocol described in the file comment; throws
  /// CommTimeout / RankFailed when the retry budget cannot complete the
  /// delivery.
  void exchange() {
    if (faults_ != nullptr && faults_->spec().transport_faults()) {
      exchange_faulty();
      return;
    }
    for (auto& in : inbox_) in.clear();
    // Senders drain in rank order, each in send order: deterministic
    // delivery independent of any real interleaving.
    if constexpr (B == 1) {
      for (auto& out : outbox_) {
        for (const Queued& q : out) inbox_[q.to].push_back(q.entry);
        out.clear();
      }
    } else {
      for (auto& out : wire_outbox_) {
        const std::uint8_t* p = out.data();
        const std::uint8_t* const end = p + out.size();
        while (p < end) {
          std::uint32_t to = 0;
          std::memcpy(&to, p, sizeof(std::uint32_t));
          p += sizeof(std::uint32_t);
          Entry e;
          p = wire_decode<B>(p, e);
          inbox_[to].push_back(e);
        }
        out.clear();
      }
    }
    finish_superstep();
  }

  /// Entries delivered to `rank` by the last exchange.
  const std::vector<Entry>& inbox(std::uint32_t rank) const {
    return inbox_[rank];
  }

  /// Move `rank`'s delivered entries out (the next exchange() resets the
  /// inbox anyway); lets collectors adopt the buffer without a copy.
  std::vector<Entry> take_inbox(std::uint32_t rank) {
    return std::move(inbox_[rank]);
  }

  /// Sum one per-rank contribution vector (MPI_Allreduce stand-in).
  Count allreduce_sum(const std::vector<Count>& parts) const {
    Count sum = 0;
    for (Count c : parts) sum += c;
    return sum;
  }

  /// Lane-wise allreduce over per-rank lane-total vectors.
  typename LaneOps<B>::Vec allreduce_sum_lanes(
      const std::vector<typename LaneOps<B>::Vec>& parts) const {
    auto sum = LaneOps<B>::zero();
    for (const auto& p : parts) LaneOps<B>::add(sum, p);
    return sum;
  }

  const CommStats& stats() const { return stats_; }

 private:
  struct Queued {
    std::uint32_t to;
    Entry entry;
  };

  /// One queued message in canonical (sender rank, send order) sequence —
  /// the superstep's retransmit buffer under fault injection.
  struct Pending {
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    Entry entry;
    std::uint32_t wire_bytes = 0;  // off-rank retransmission cost
    bool off_rank = false;
    bool delivered = false;
    bool tried = false;  // an attempt already paid its wire cost once
  };

  void finish_superstep() {
    for (const auto& in : inbox_) {
      stats_.max_step_recv = std::max(
          stats_.max_step_recv, static_cast<std::uint64_t>(in.size()));
    }
    ++stats_.supersteps;
  }

  /// Drain the outboxes into the canonical pending list (decoding the
  /// B > 1 wire streams once; retransmission re-pays their byte cost via
  /// Pending::wire_bytes without re-encoding).
  std::vector<Pending> drain_pending() {
    std::vector<Pending> pending;
    if constexpr (B == 1) {
      std::size_t total = 0;
      for (const auto& out : outbox_) total += out.size();
      pending.reserve(total);
      for (std::uint32_t r = 0; r < num_ranks(); ++r) {
        for (const Queued& q : outbox_[r]) {
          Pending m;
          m.from = r;
          m.to = q.to;
          m.entry = q.entry;
          m.off_rank = (q.to != r);
          m.wire_bytes = static_cast<std::uint32_t>(stats_.entry_bytes);
          pending.push_back(m);
        }
        outbox_[r].clear();
      }
    } else {
      for (std::uint32_t r = 0; r < num_ranks(); ++r) {
        const auto& out = wire_outbox_[r];
        const std::uint8_t* p = out.data();
        const std::uint8_t* const end = p + out.size();
        while (p < end) {
          Pending m;
          m.from = r;
          std::memcpy(&m.to, p, sizeof(std::uint32_t));
          p += sizeof(std::uint32_t);
          const std::uint8_t* row = p;
          p = wire_decode<B>(p, m.entry);
          m.wire_bytes = static_cast<std::uint32_t>(p - row);
          m.off_rank = (m.to != r);
          pending.push_back(m);
        }
        wire_outbox_[r].clear();
      }
    }
    return pending;
  }

  /// Selective-retransmit delivery: attempts repeat until every message
  /// arrived once, re-sending only what the per-superstep acks flagged as
  /// missing; the successful outcome reassembles canonical order exactly.
  void exchange_faulty() {
    std::vector<Pending> pending = drain_pending();
    FaultStats& fs = faults_->stats();
    std::size_t undelivered = pending.size();
    std::vector<std::uint8_t> stalled(num_ranks(), 0);
    bool stall_blocked = false;

    const std::uint32_t attempts = max_retries_ + 1;
    for (std::uint32_t attempt = 0; attempt < attempts; ++attempt) {
      // Per-attempt stall rolls, for senders that still owe traffic.
      std::vector<std::uint8_t> owes(num_ranks(), 0);
      for (const Pending& m : pending) {
        if (!m.delivered) owes[m.from] = 1;
      }
      stall_blocked = false;
      for (std::uint32_t r = 0; r < num_ranks(); ++r) {
        stalled[r] = owes[r] != 0 && faults_->rank_stalls() ? 1 : 0;
        if (stalled[r] != 0) {
          stall_blocked = true;
          fs.deadline_wait_virtual_ms += deadline_ms_;
        }
      }
      for (Pending& m : pending) {
        if (m.delivered) continue;
        if (!m.off_rank) {
          // Loopback never crosses the network: always arrives.
          m.delivered = true;
          --undelivered;
          continue;
        }
        if (stalled[m.from] != 0) continue;
        if (m.tried) fs.retransmit_bytes += m.wire_bytes;
        m.tried = true;
        switch (faults_->message_fate()) {
          case FaultPlan::Fate::kDrop:
          case FaultPlan::Fate::kDelay:
            // Missing from this superstep's acks; re-sent next attempt
            // (a delayed copy arriving later is deduped by sequence
            // number, indistinguishable from the retransmission).
            break;
          case FaultPlan::Fate::kDuplicate:
            fs.retransmit_bytes += m.wire_bytes;
            [[fallthrough]];
          case FaultPlan::Fate::kDeliver:
            m.delivered = true;
            --undelivered;
            break;
        }
      }
      if (undelivered == 0) break;
      if (attempt + 1 < attempts) {
        ++fs.retries;
        fs.backoff_virtual_ms +=
            fault_backoff_ms(backoff_base_ms_, attempt, jitter_);
      }
    }
    if (undelivered > 0) {
      const std::string what =
          "superstep " + std::to_string(stats_.supersteps) + ": " +
          std::to_string(undelivered) + " message(s) undelivered after " +
          std::to_string(attempts) + " attempt(s)";
      if (stall_blocked) throw RankFailed(what + " (rank stalled)");
      throw CommTimeout(what);
    }

    // Reassemble in canonical order — bit-identical to a fault-free
    // exchange regardless of which attempt delivered each message.
    for (auto& in : inbox_) in.clear();
    for (const Pending& m : pending) inbox_[m.to].push_back(m.entry);
    finish_superstep();
  }

  std::vector<std::vector<Queued>> outbox_;  // B = 1: per sender, in order
  std::vector<std::vector<std::uint8_t>> wire_outbox_;  // B > 1 byte streams
  std::vector<std::vector<Entry>> inbox_;
  CommStats stats_;

  // Fault-injection hooks (null / inert by default: the fault-free path
  // does not pay for them).
  FaultPlan* faults_ = nullptr;
  std::uint32_t max_retries_ = 3;
  double backoff_base_ms_ = 1.0;
  double deadline_ms_ = 0.0;
  Rng jitter_;
};

using VirtualComm = VirtualCommT<1>;

extern template class VirtualCommT<1>;
extern template class VirtualCommT<2>;
extern template class VirtualCommT<4>;
extern template class VirtualCommT<8>;

}  // namespace ccbt
