#pragma once
// The engine's join primitives (Section 7, third layer).
//
// Path tables are keyed (slot0 = anchor image, slot1 = frontier image,
// slots 2-3 = tracked boundary images, signature). Each primitive is one
// bulk-synchronous phase of the virtual-rank load model:
//   * init/extend with graph edges      — Procedure 1 of Figs 4 and 6;
//   * init/extend with a child table    — EdgeJoin of Fig 7;
//   * node_join with a unary child      — NodeJoin of Fig 7;
//   * merge_halves                      — Procedure 2 of Figs 4 and 6.
//
// Everything is parameterized on the batch width B: one execution carries
// B colorings ("lanes"), counts are per-lane vectors, and entries are
// signature-blocked — lanes whose colorings give a partial match the same
// signature share one table entry and therefore one probe. Per-lane logic
// only appears where a coloring is consulted:
//   * graph-driven steps group a new vertex's lanes by the signature they
//     produce (SigGroups) and emit one entry per distinct signature;
//   * join compatibility ("shares exactly the joint colors") splits into
//     a lane-independent half — the signature intersection must be the
//     right size — and a per-lane half — the intersection must equal the
//     joint vertex's lane colors (ColoringBatch::mask_bit_eq/mask_pair_eq).
// B = 1 takes the original scalar code paths via if constexpr.
//
// The per-entry loop bodies are exposed as kernels (emit-callback form):
// the shared-memory primitives here and the virtual-MPI engine in
// ccbt/dist run the same kernels, which is what guarantees their exact
// load-model parity at every batch width.

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "ccbt/engine/exec_context.hpp"
#include "ccbt/table/proj_table.hpp"
#include "ccbt/table/signature.hpp"
#include "ccbt/util/error.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace ccbt {

struct ExtendOpts {
  /// Also record the new frontier into this key slot (2 or 3); -1 = none.
  int track_slot = -1;

  /// DB constraint: the anchor must be strictly higher (u ≻ w) than the
  /// newly matched cycle vertex.
  bool anchor_higher = false;
};

namespace detail {

inline void check_budget(const ExecContext& cx, std::size_t size) {
  if (size > cx.opts.max_table_entries) {
    throw BudgetExceeded("projection table exceeded " +
                         std::to_string(cx.opts.max_table_entries) +
                         " entries");
  }
}

#ifdef _OPENMP
inline int pool_threads() { return omp_get_max_threads(); }
#endif

/// Lanes of one (entry, new vertex) step grouped by the signature their
/// coloring produces: at most B distinct signatures, found by linear scan
/// (B <= 8).
template <int B>
struct SigGroups {
  std::array<Signature, B> sig;
  std::array<LaneMask, B> mask;
  int n = 0;

  void add(Signature s, int lane) {
    for (int i = 0; i < n; ++i) {
      if (sig[i] == s) {
        mask[i] |= LaneMask{1} << lane;
        return;
      }
    }
    sig[n] = s;
    mask[n] = LaneMask{1} << lane;
    ++n;
  }
};

/// Reduce per-thread accumulation maps into one, pre-sized so the merge
/// runs without intermediate rehashes. Single-producer case moves instead.
template <int B>
AccumMapT<B> reduce_maps(const ExecContext& cx,
                         std::vector<AccumMapT<B>>& maps) {
  std::size_t total = 0;
  AccumMapT<B>* only = nullptr;
  int producers = 0;
  for (AccumMapT<B>& m : maps) {
    if (m.empty()) continue;
    total += m.size();
    only = &m;
    ++producers;
  }
  if (producers == 1) {
    check_budget(cx, only->size());
    return std::move(*only);
  }
  AccumMapT<B> merged(16, cx.opts.compact_accum);
  merged.reserve(total);
  for (AccumMapT<B>& m : maps) {
    m.for_each([&](const TableKey& k, const typename LaneOps<B>::Vec& c) {
      merged.add(k, c);
    });
    check_budget(cx, merged.size());
  }
  return merged;
}

/// Run `emit(index, map)` for every index in [0, n), accumulating into
/// per-thread maps that are merged afterwards by a pre-sized two-pass
/// reduction. Load accounting is thread-affine (LoadModel buffers charges
/// per OpenMP thread), so simulated runs parallelize like real ones.
template <int B, typename Emit>
AccumMapT<B> accumulate_over(const ExecContext& cx, std::size_t n,
                             Emit&& emit) {
#ifdef _OPENMP
  if (cx.opts.use_threads && pool_threads() > 1 && n > 4096) {
    const int threads = pool_threads();
    std::vector<AccumMapT<B>> maps;
    maps.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      maps.emplace_back(16, cx.opts.compact_accum);
    }
    std::atomic<bool> budget_hit{false};
#pragma omp parallel num_threads(threads)
    {
      AccumMapT<B>& local = maps[omp_get_thread_num()];
#pragma omp for schedule(dynamic, 512)
      for (std::size_t i = 0; i < n; ++i) {
        if (budget_hit.load(std::memory_order_relaxed)) continue;
        emit(i, local);
        if (local.size() > cx.opts.max_table_entries) {
          budget_hit.store(true, std::memory_order_relaxed);
        }
      }
    }
    if (budget_hit.load()) check_budget(cx, cx.opts.max_table_entries + 1);
    return reduce_maps(cx, maps);
  }
#endif
  AccumMapT<B> map(16, cx.opts.compact_accum);
  for (std::size_t i = 0; i < n; ++i) {
    emit(i, map);
    if ((i & 0xFFF) == 0) check_budget(cx, map.size());
  }
  check_budget(cx, map.size());
  return map;
}

/// Flat variant of accumulate_over for the batched (B > 1) graph-driven
/// primitives: rows are appended without hashing — duplicate keys are
/// summed later by the table's sorting seal (sort-merge consolidation),
/// which is far cheaper than a hash probe per emitted lane-vector row.
/// The budget therefore bounds pre-merge rows at B > 1.
template <int B, typename Emit>
std::vector<TableEntryT<B>> accumulate_flat(const ExecContext& cx,
                                            std::size_t n, Emit&& emit) {
#ifdef _OPENMP
  if (cx.opts.use_threads && pool_threads() > 1 && n > 4096) {
    const int threads = pool_threads();
    std::vector<std::vector<TableEntryT<B>>> rows(threads);
    std::atomic<bool> budget_hit{false};
#pragma omp parallel num_threads(threads)
    {
      std::vector<TableEntryT<B>>& local = rows[omp_get_thread_num()];
#pragma omp for schedule(dynamic, 512)
      for (std::size_t i = 0; i < n; ++i) {
        if (budget_hit.load(std::memory_order_relaxed)) continue;
        emit(i, local);
        if (local.size() > cx.opts.max_table_entries) {
          budget_hit.store(true, std::memory_order_relaxed);
        }
      }
    }
    if (budget_hit.load()) check_budget(cx, cx.opts.max_table_entries + 1);
    std::size_t total = 0;
    for (const auto& r : rows) total += r.size();
    check_budget(cx, total);
    std::vector<TableEntryT<B>>* biggest = &rows[0];
    for (auto& r : rows) {
      if (r.size() > biggest->size()) biggest = &r;
    }
    std::vector<TableEntryT<B>> out = std::move(*biggest);
    out.reserve(total);
    for (auto& r : rows) {
      if (&r == biggest) continue;
      out.insert(out.end(), r.begin(), r.end());
    }
    return out;
  }
#endif
  std::vector<TableEntryT<B>> out;
  for (std::size_t i = 0; i < n; ++i) {
    emit(i, out);
    if ((i & 0xFFF) == 0) check_budget(cx, out.size());
  }
  check_budget(cx, out.size());
  return out;
}

}  // namespace detail

// ---------------------------------------------------------------- kernels
// Per-item loop bodies shared verbatim by the shared-memory primitives and
// the distributed engine. Each kernel performs the load-model charges
// itself and hands finished rows to `emit(key, lane-counts)`; the caller
// only chooses where rows go (a hash-map sink or a transport).

/// Initial path entries out of one data vertex u (Procedure 1 init).
template <int B, typename Emit>
void kernel_init_from_graph(const ExecContext& cx, VertexId u,
                            const ExtendOpts& o, Emit&& emit) {
  const CsrGraph& g = cx.g;
  cx.charge(u, g.degree(u));
  for (VertexId w : g.neighbors(u)) {
    if (o.anchor_higher && !cx.order.higher(u, w)) continue;
    if constexpr (B == 1) {
      if (cx.chi.color(u) == cx.chi.color(w)) continue;
      TableKey key;
      key.v[0] = u;
      key.v[1] = w;
      if (o.track_slot >= 0) key.v[o.track_slot] = w;
      key.sig = cx.chi.bit(u) | cx.chi.bit(w);
      emit(key, Count{1});
      cx.send(u, w, 1);
    } else {
      detail::SigGroups<B> groups;
      std::uint64_t cu = cx.chi.colors_word(u);
      std::uint64_t cw = cx.chi.colors_word(w);
      for (int l = 0; l < B; ++l, cu >>= 8, cw >>= 8) {
        if ((cu & 0xFF) == (cw & 0xFF)) continue;
        groups.add((Signature{1} << (cu & 0xFF)) |
                       (Signature{1} << (cw & 0xFF)),
                   l);
      }
      if (groups.n == 0) continue;
      TableKey key;
      key.v[0] = u;
      key.v[1] = w;
      if (o.track_slot >= 0) key.v[o.track_slot] = w;
      for (int i = 0; i < groups.n; ++i) {
        key.sig = groups.sig[i];
        emit(key, LaneOps<B>::ones(groups.mask[i]));
      }
      cx.send(u, w, 1);
    }
  }
}

/// Re-key one child-table entry as an initial path entry. Signatures are
/// per-entry at every width, so no lane logic is needed.
template <int B, typename Emit>
void kernel_init_from_child(const ExecContext& cx, const TableEntryT<B>& e,
                            bool flip, const ExtendOpts& o, Emit&& emit) {
  const VertexId a = e.key.v[flip ? 1 : 0];
  const VertexId b = e.key.v[flip ? 0 : 1];
  cx.charge(b, 1);
  if (o.anchor_higher && !cx.order.higher(a, b)) return;
  TableKey key;
  key.v[0] = a;
  key.v[1] = b;
  if (o.track_slot >= 0) key.v[o.track_slot] = b;
  key.sig = e.key.sig;
  emit(key, e.cnt);
}

/// Extend one path entry by every data-graph edge out of its frontier.
template <int B, typename Emit>
void kernel_extend_with_graph(const ExecContext& cx, const TableEntryT<B>& e,
                              const ExtendOpts& o, Emit&& emit) {
  const CsrGraph& g = cx.g;
  const VertexId v = e.key.v[1];
  cx.charge(v, g.degree(v));
  for (VertexId w : g.neighbors(v)) {
    if (o.anchor_higher && !cx.order.higher(e.key.v[0], w)) continue;
    if constexpr (B == 1) {
      const Signature w_bit = cx.chi.bit(w);
      if ((e.key.sig & w_bit) != 0) continue;
      TableKey key = e.key;
      key.v[1] = w;
      if (o.track_slot >= 0) key.v[o.track_slot] = w;
      key.sig = e.key.sig | w_bit;
      emit(key, e.cnt);
      cx.send(v, w, 1);
    } else {
      detail::SigGroups<B> groups;
      std::uint64_t cw = cx.chi.colors_word(w);
      for (int l = 0; l < B; ++l, cw >>= 8) {
        if (LaneOps<B>::lane(e.cnt, l) == 0) continue;  // dead lane
        const Signature w_bit = Signature{1} << (cw & 0xFF);
        if ((e.key.sig & w_bit) != 0) continue;
        groups.add(e.key.sig | w_bit, l);
      }
      if (groups.n == 0) continue;
      TableKey key = e.key;
      key.v[1] = w;
      if (o.track_slot >= 0) key.v[o.track_slot] = w;
      for (int i = 0; i < groups.n; ++i) {
        key.sig = groups.sig[i];
        emit(key, LaneOps<B>::masked(e.cnt, groups.mask[i]));
      }
      cx.send(v, w, 1);
    }
  }
}

/// EdgeJoin: extend one path entry through its frontier's group of a
/// child block's binary table.
template <int B, typename Emit>
void kernel_extend_with_child(const ExecContext& cx, const TableEntryT<B>& e,
                              std::span<const TableEntryT<B>> group,
                              const ExtendOpts& o, Emit&& emit) {
  const VertexId v = e.key.v[1];
  cx.charge(v, group.size());
  if constexpr (B == 1) {
    const Signature v_bit = cx.chi.bit(v);
    for (const TableEntryT<B>& ce : group) {
      if (!node_join_compatible(e.key.sig, ce.key.sig, v_bit)) continue;
      const VertexId w = ce.key.v[1];
      if (o.anchor_higher && !cx.order.higher(e.key.v[0], w)) continue;
      TableKey key = e.key;
      key.v[1] = w;
      if (o.track_slot >= 0) key.v[o.track_slot] = w;
      key.sig = e.key.sig | ce.key.sig;
      emit(key, e.cnt * ce.cnt);
      cx.send(v, w, 1);
    }
  } else {
    for (const TableEntryT<B>& ce : group) {
      // Lane-independent half of the compatibility test: the matches may
      // share exactly one color (the joint vertex's).
      const Signature inter = e.key.sig & ce.key.sig;
      if (std::popcount(inter) != 1) continue;
      const VertexId w = ce.key.v[1];
      if (o.anchor_higher && !cx.order.higher(e.key.v[0], w)) continue;
      // Per-lane half: that color must be the joint vertex's lane color.
      const LaneMask m = cx.chi.mask_bit_eq(v, inter);
      if (m == 0) continue;
      const auto cnt = LaneOps<B>::mul_masked(e.cnt, ce.cnt, m);
      if (LaneOps<B>::is_zero(cnt)) continue;
      TableKey key = e.key;
      key.v[1] = w;
      if (o.track_slot >= 0) key.v[o.track_slot] = w;
      key.sig = e.key.sig | ce.key.sig;
      emit(key, cnt);
      cx.send(v, w, 1);
    }
  }
}

/// NodeJoin: multiply one path entry against the unary child group of its
/// key slot `slot` vertex.
template <int B, typename Emit>
void kernel_node_join(const ExecContext& cx, const TableEntryT<B>& e,
                      std::span<const TableEntryT<B>> group, int slot,
                      Emit&& emit) {
  const VertexId x = e.key.v[slot];
  cx.charge(x, group.size());
  if constexpr (B == 1) {
    const Signature x_bit = cx.chi.bit(x);
    for (const TableEntryT<B>& ce : group) {
      if (!node_join_compatible(e.key.sig, ce.key.sig, x_bit)) continue;
      TableKey key = e.key;
      key.sig = e.key.sig | ce.key.sig;
      emit(key, e.cnt * ce.cnt);
    }
  } else {
    for (const TableEntryT<B>& ce : group) {
      const Signature inter = e.key.sig & ce.key.sig;
      if (std::popcount(inter) != 1) continue;
      const LaneMask m = cx.chi.mask_bit_eq(x, inter);
      if (m == 0) continue;
      const auto cnt = LaneOps<B>::mul_masked(e.cnt, ce.cnt, m);
      if (LaneOps<B>::is_zero(cnt)) continue;
      TableKey key = e.key;
      key.sig = e.key.sig | ce.key.sig;
      emit(key, cnt);
    }
  }
}

/// Project one entry onto its first new_arity slots.
template <int B, typename Emit>
void kernel_aggregate(const ExecContext& cx, const TableEntryT<B>& e,
                      int new_arity, Emit&& emit) {
  TableKey key;
  for (int s = 0; s < new_arity; ++s) key.v[s] = e.key.v[s];
  key.sig = e.key.sig;
  if (new_arity >= 1) cx.charge(key.v[0], 1);
  emit(key, e.cnt);
}

// ------------------------------------------------------------- primitives

/// Initial path table over all data-graph edges: one entry per ordered
/// pair (u, w) of adjacent vertices, per distinct lane signature (u ≻ w
/// when anchor_higher; lanes coloring u and w alike contribute nothing).
template <int B = 1>
ProjTableT<B> init_path_from_graph(const ExecContext& cx,
                                   const ExtendOpts& o) {
  if constexpr (B == 1) {
    AccumMapT<B> map = detail::accumulate_over<B>(
        cx, cx.g.num_vertices(), [&](std::size_t ui, AccumMapT<B>& sink) {
          kernel_init_from_graph<B>(
              cx, static_cast<VertexId>(ui), o,
              [&](const TableKey& k, Count c) { sink.add(k, c); });
        });
    cx.end_phase();
    return ProjTableT<B>::from_map(2, std::move(map));
  } else {
    auto rows = detail::accumulate_flat<B>(
        cx, cx.g.num_vertices(),
        [&](std::size_t ui, std::vector<TableEntryT<B>>& sink) {
          kernel_init_from_graph<B>(
              cx, static_cast<VertexId>(ui), o,
              [&](const TableKey& k, const typename LaneOps<B>::Vec& c) {
                sink.push_back({k, c});
              });
        });
    cx.end_phase();
    return ProjTableT<B>::from_flat(2, std::move(rows));
  }
}

/// Initial path table from a child block's binary table. `flip` swaps the
/// child's boundary orientation so slot 0 is the walk's starting node.
template <int B>
ProjTableT<B> init_path_from_child(const ExecContext& cx,
                                   const ProjTableT<B>& child, bool flip,
                                   const ExtendOpts& o) {
  if constexpr (B == 1) {
    const auto entries = child.entries();
    AccumMapT<B> map = detail::accumulate_over<B>(
        cx, entries.size(), [&](std::size_t i, AccumMapT<B>& sink) {
          kernel_init_from_child<B>(
              cx, entries[i], flip, o,
              [&](const TableKey& k, Count c) { sink.add(k, c); });
        });
    cx.end_phase();
    return ProjTableT<B>::from_map(2, std::move(map));
  } else {
    // Stored child tables may be lane-compressed: row_at expands each
    // row's masked payload view into a dense entry on the stack.
    auto rows = detail::accumulate_flat<B>(
        cx, child.size(),
        [&](std::size_t i, std::vector<TableEntryT<B>>& sink) {
          TableEntryT<B> tmp;
          kernel_init_from_child<B>(
              cx, child.row_at(i, tmp), flip, o,
              [&](const TableKey& k, const typename LaneOps<B>::Vec& c) {
                sink.push_back({k, c});
              });
        });
    cx.end_phase();
    return ProjTableT<B>::from_flat(2, std::move(rows));
  }
}

namespace detail {

/// Entry-scan extension: one kernel call per path entry.
template <int B>
ProjTableT<B> extend_with_graph_scan(const ExecContext& cx,
                                     const ProjTableT<B>& path,
                                     const ExtendOpts& o) {
  if constexpr (B == 1) {
    const auto entries = path.entries();
    AccumMapT<B> map = detail::accumulate_over<B>(
        cx, entries.size(), [&](std::size_t i, AccumMapT<B>& sink) {
          kernel_extend_with_graph<B>(
              cx, entries[i], o,
              [&](const TableKey& k, Count c) { sink.add(k, c); });
        });
    cx.end_phase();
    return ProjTableT<B>::from_map(path.arity(), std::move(map));
  } else {
    auto rows = detail::accumulate_flat<B>(
        cx, path.size(),
        [&](std::size_t i, std::vector<TableEntryT<B>>& sink) {
          TableEntryT<B> tmp;
          kernel_extend_with_graph<B>(
              cx, path.row_at(i, tmp), o,
              [&](const TableKey& k, const typename LaneOps<B>::Vec& c) {
                sink.push_back({k, c});
              });
        });
    cx.end_phase();
    return ProjTableT<B>::from_flat(path.arity(), std::move(rows));
  }
}

/// Frontier-grouped extension (B > 1): seal the path by frontier, then
/// walk each frontier vertex's adjacency list ONCE for its whole bucket
/// of entries, with the per-lane color groups of every neighbor computed
/// once per (v, w) instead of once per (entry, w). Emits exactly the
/// entry-scan kernel's rows and load-model charges — only the loop
/// nesting (and therefore the constant factor) differs.
template <int B>
ProjTableT<B> extend_with_graph_grouped(const ExecContext& cx,
                                        ProjTableT<B>& path,
                                        const ExtendOpts& o) {
  using Ops = LaneOps<B>;
  const CsrGraph& g = cx.g;
  const VertexId n = g.num_vertices();
  // The sealed path is consumed once right below: stay dense (kStream).
  path.seal(SortOrder::kByV1, n, LaneSealHint::kStream);
  cx.note_lanes(path.layout());
  if (!path.has_bucket_index()) {
    return extend_with_graph_scan<B>(cx, path, o);
  }
  // Per-neighbor color groups, precomputed once per frontier vertex and
  // reused by its whole bucket (thread-local so the heap allocation
  // amortizes across buckets).
  struct WGroup {
    VertexId w;
    std::uint8_t nc;
    std::array<std::uint8_t, B> col;    // distinct lane colors of w
    std::array<LaneMask, B> mask;       // lanes carrying each color
    std::array<Signature, B> bit;       // 1 << col
  };
  thread_local std::vector<WGroup> scratch;

  auto rows = detail::accumulate_flat<B>(
      cx, n, [&](std::size_t vi, std::vector<TableEntryT<B>>& sink) {
        const auto v = static_cast<VertexId>(vi);
        thread_local std::vector<TableEntryT<B>> bscratch;
        const auto bucket = path.group_expanded(1, v, bscratch);
        if (bucket.empty()) return;
        cx.charge(v, std::uint64_t{g.degree(v)} * bucket.size());

        scratch.clear();
        for (VertexId w : g.neighbors(v)) {
          WGroup wg;
          wg.w = w;
          wg.nc = 0;
          std::uint64_t cw = cx.chi.colors_word(w);
          for (int l = 0; l < B; ++l, cw >>= 8) {
            const auto c = static_cast<std::uint8_t>(cw & 0xFF);
            int i = 0;
            while (i < wg.nc && wg.col[i] != c) ++i;
            if (i == wg.nc) {
              wg.col[i] = c;
              wg.mask[i] = 0;
              wg.bit[i] = Signature{1} << c;
              ++wg.nc;
            }
            wg.mask[i] |= LaneMask{1} << l;
          }
          scratch.push_back(wg);
        }

        for (const TableEntryT<B>& e : bucket) {
          // Lanes this entry can extend at all.
          LaneMask alive = 0;
          for (int l = 0; l < B; ++l) {
            alive |= static_cast<LaneMask>(Ops::lane(e.cnt, l) != 0) << l;
          }
          if (alive == 0) continue;
          for (const WGroup& wg : scratch) {
            if (o.anchor_higher && !cx.order.higher(e.key.v[0], wg.w)) {
              continue;
            }
            bool any = false;
            for (int i = 0; i < wg.nc; ++i) {
              const LaneMask m = wg.mask[i] & alive;
              if (m == 0 || (e.key.sig & wg.bit[i]) != 0) continue;
              TableKey key = e.key;
              key.v[1] = wg.w;
              if (o.track_slot >= 0) key.v[o.track_slot] = wg.w;
              key.sig = e.key.sig | wg.bit[i];
              sink.push_back({key, Ops::masked(e.cnt, m)});
              any = true;
            }
            if (any) cx.send(v, wg.w, 1);
          }
        }
      });
  cx.end_phase();
  return ProjTableT<B>::from_flat(path.arity(), std::move(rows));
}

}  // namespace detail

/// Extend every path entry by one data-graph edge out of the frontier.
/// The mutable overload may reseal the path (frontier-grouped traversal
/// at B > 1); results are identical either way.
template <int B>
ProjTableT<B> extend_with_graph(const ExecContext& cx, ProjTableT<B>& path,
                                const ExtendOpts& o) {
  if constexpr (B == 1) {
    return detail::extend_with_graph_scan<B>(cx, path, o);
  } else {
    return detail::extend_with_graph_grouped<B>(cx, path, o);
  }
}

template <int B>
ProjTableT<B> extend_with_graph(const ExecContext& cx,
                                const ProjTableT<B>& path,
                                const ExtendOpts& o) {
  return detail::extend_with_graph_scan<B>(cx, path, o);
}

/// Extend through a child block's binary table (EdgeJoin): path frontier v
/// joins child entries (v, w, sig2). `child` must be sealed kByV0 and
/// already oriented (use TablePool::oriented).
template <int B>
ProjTableT<B> extend_with_child(const ExecContext& cx, ProjTableT<B>& path,
                                const ProjTableT<B>& child,
                                const ExtendOpts& o) {
  path.seal(SortOrder::kByV1, cx.g.num_vertices(), LaneSealHint::kStream);
  cx.note_lanes(path.layout());
  if constexpr (B == 1) {
    const auto entries = path.entries();
    AccumMapT<B> map = detail::accumulate_over<B>(
        cx, entries.size(), [&](std::size_t i, AccumMapT<B>& sink) {
          kernel_extend_with_child<B>(
              cx, entries[i], child.group(0, entries[i].key.v[1]), o,
              [&](const TableKey& k, Count c) { sink.add(k, c); });
        });
    cx.end_phase();
    return ProjTableT<B>::from_map(path.arity(), std::move(map));
  } else {
    // The stored child may be lane-compressed: group_expanded unpacks the
    // probed bucket into a thread-local scratch (no-op when dense).
    auto rows = detail::accumulate_flat<B>(
        cx, path.size(),
        [&](std::size_t i, std::vector<TableEntryT<B>>& sink) {
          TableEntryT<B> tmp;
          thread_local std::vector<TableEntryT<B>> cscratch;
          const TableEntryT<B>& e = path.row_at(i, tmp);
          kernel_extend_with_child<B>(
              cx, e, child.group_expanded(0, e.key.v[1], cscratch), o,
              [&](const TableKey& k, const typename LaneOps<B>::Vec& c) {
                sink.push_back({k, c});
              });
        });
    cx.end_phase();
    return ProjTableT<B>::from_flat(path.arity(), std::move(rows));
  }
}

/// NodeJoin: multiply in a unary child at key slot `slot` (0 = anchor,
/// 1 = frontier). `child` must be sealed kByV0.
template <int B>
ProjTableT<B> node_join(const ExecContext& cx, const ProjTableT<B>& path,
                        const ProjTableT<B>& child, int slot) {
  if constexpr (B == 1) {
    const auto entries = path.entries();
    AccumMapT<B> map = detail::accumulate_over<B>(
        cx, entries.size(), [&](std::size_t i, AccumMapT<B>& sink) {
          kernel_node_join<B>(
              cx, entries[i], child.group(0, entries[i].key.v[slot]), slot,
              [&](const TableKey& k, Count c) { sink.add(k, c); });
        });
    cx.end_phase();
    return ProjTableT<B>::from_map(path.arity(), std::move(map));
  } else {
    auto rows = detail::accumulate_flat<B>(
        cx, path.size(),
        [&](std::size_t i, std::vector<TableEntryT<B>>& sink) {
          TableEntryT<B> tmp;
          thread_local std::vector<TableEntryT<B>> cscratch;
          const TableEntryT<B>& e = path.row_at(i, tmp);
          kernel_node_join<B>(
              cx, e, child.group_expanded(0, e.key.v[slot], cscratch), slot,
              [&](const TableKey& k, const typename LaneOps<B>::Vec& c) {
                sink.push_back({k, c});
              });
        });
    cx.end_phase();
    return ProjTableT<B>::from_flat(path.arity(), std::move(rows));
  }
}

/// Where each output key slot of a merge comes from.
struct MergeOut {
  int side = 0;  // 0 = plus path, 1 = minus path
  int slot = 0;  // key slot within that path's table
};

struct MergeSpec {
  int out_arity = 0;  // 0, 1, or 2 boundary images in the output key
  std::array<MergeOut, 2> out{};
};

/// The merge-join kernel shared by merge_halves and the distributed
/// engine: join the matching (u, v) subgroups of one slot-0 bucket pair
/// (both ranges sorted kByV0V1) with a two-pointer sweep over the
/// v-sorted subranges, charging the load model per group and calling
/// `emit(key, counts)` for every compatible pair. Keeping the shared and
/// distributed engines on one kernel is what guarantees their exact
/// load-model parity.
template <int B, typename Sink>
void merge_bucket(const ExecContext& cx, std::span<const TableEntryT<B>> pu,
                  std::span<const TableEntryT<B>> mu, const MergeSpec& spec,
                  Sink&& emit) {
  std::size_t pi = 0, mi = 0;
  while (pi < pu.size() && mi < mu.size()) {
    const VertexId pv = pu[pi].key.v[1];
    const VertexId mv = mu[mi].key.v[1];
    if (pv < mv) {
      ++pi;
      continue;
    }
    if (mv < pv) {
      ++mi;
      continue;
    }
    // Same (u, v) group in both tables.
    const VertexId u = pu[pi].key.v[0];
    const VertexId v = pv;
    std::size_t pj = pi, mj = mi;
    while (pj < pu.size() && pu[pj].key.v[1] == v) ++pj;
    while (mj < mu.size() && mu[mj].key.v[1] == v) ++mj;
    cx.charge(v, (pj - pi) * (mj - mi));
    if constexpr (B == 1) {
      const Signature uv_bits = cx.chi.bit(u) | cx.chi.bit(v);
      // The signature compatibility tests are a branchless AND/compare:
      // run them as a simd-hinted prefilter pass over the minus subgroup
      // (most pairs fail), then walk only the survivors.
      thread_local std::vector<std::uint8_t> compat;
      const std::size_t mcount = mj - mi;
      if (compat.size() < mcount) compat.resize(mcount);
      std::uint8_t* const ok = compat.data();
      const TableEntryT<B>* const mb = mu.data() + mi;
      for (std::size_t a = pi; a < pj; ++a) {
        const Signature asig = pu[a].key.sig;
        const Count acnt = pu[a].cnt;
        CCBT_SIMD
        for (std::size_t t = 0; t < mcount; ++t) {
          ok[t] = (asig & mb[t].key.sig) == uv_bits;
        }
        for (std::size_t t = 0; t < mcount; ++t) {
          if (!ok[t]) continue;
          const std::size_t b = mi + t;
          TableKey key;
          for (int s = 0; s < spec.out_arity; ++s) {
            const MergeOut& src = spec.out[s];
            key.v[s] = (src.side == 0 ? pu[a] : mu[b]).key.v[src.slot];
          }
          key.sig = asig | mu[b].key.sig;
          emit(key, acnt * mu[b].cnt);
          if (spec.out_arity >= 2) cx.send(v, key.v[1], 1);
        }
      }
    } else {
      for (std::size_t a = pi; a < pj; ++a) {
        const TableEntryT<B>& pa = pu[a];
        const Signature asig = pa.key.sig;
        for (std::size_t b = mi; b < mj; ++b) {
          // Lane-independent half: the halves may share exactly the two
          // endpoint colors.
          const Signature inter = asig & mu[b].key.sig;
          if (std::popcount(inter) != 2) continue;
          // Per-lane half: those colors must be {χ_l(u), χ_l(v)}.
          const LaneMask m = cx.chi.mask_pair_eq(u, v, inter);
          if (m == 0) continue;
          const auto cnt = LaneOps<B>::mul_masked(pa.cnt, mu[b].cnt, m);
          if (LaneOps<B>::is_zero(cnt)) continue;
          TableKey key;
          for (int s = 0; s < spec.out_arity; ++s) {
            const MergeOut& src = spec.out[s];
            key.v[s] = (src.side == 0 ? pa : mu[b]).key.v[src.slot];
          }
          key.sig = asig | mu[b].key.sig;
          emit(key, cnt);
          if (spec.out_arity >= 2) cx.send(v, key.v[1], 1);
        }
      }
    }
    pi = pj;
    mi = mj;
  }
}

/// Join the two half-cycle tables on their shared (anchor, end) pair with
/// the signature-compatibility test of Fig 6 Procedure 2, accumulating
/// into `sink` (so the DB solver can sum over all anchor choices, Eq. 1).
template <int B>
void merge_halves(const ExecContext& cx, ProjTableT<B>& plus,
                  ProjTableT<B>& minus, const MergeSpec& spec,
                  AccumMapT<B>& sink) {
  using Vec = typename LaneOps<B>::Vec;
  const VertexId n = cx.g.num_vertices();
  // Both halves are consumed by this one merge: stay dense (kStream).
  plus.seal(SortOrder::kByV0V1, n, LaneSealHint::kStream);
  minus.seal(SortOrder::kByV0V1, n, LaneSealHint::kStream);
  cx.note_lanes(plus.layout());
  cx.note_lanes(minus.layout());
  const auto pe = plus.entries();
  const auto me = minus.entries();

  if (plus.has_bucket_index() && minus.has_bucket_index()) {
#ifdef _OPENMP
    if (cx.opts.use_threads && detail::pool_threads() > 1 &&
        pe.size() + me.size() > 4096) {
      // Slot-0 buckets are independent: each thread merges whole buckets
      // into a private sink; the sinks reduce into `sink` afterwards.
      const int threads = detail::pool_threads();
      std::vector<AccumMapT<B>> maps;
      maps.reserve(threads);
      for (int t = 0; t < threads; ++t) {
        maps.emplace_back(16, cx.opts.compact_accum);
      }
      std::atomic<bool> budget_hit{false};
#pragma omp parallel num_threads(threads)
      {
        AccumMapT<B>& local = maps[omp_get_thread_num()];
#pragma omp for schedule(dynamic, 256)
        for (VertexId u = 0; u < n; ++u) {
          if (budget_hit.load(std::memory_order_relaxed)) continue;
          const auto pu = plus.group(0, u);
          if (pu.empty()) continue;
          const auto mu = minus.group(0, u);
          if (mu.empty()) continue;
          merge_bucket<B>(
              cx, pu, mu, spec,
              [&](const TableKey& k, const Vec& c) { local.add(k, c); });
          if (local.size() > cx.opts.max_table_entries) {
            budget_hit.store(true, std::memory_order_relaxed);
          }
        }
      }
      if (budget_hit.load()) {
        detail::check_budget(cx, cx.opts.max_table_entries + 1);
      }
      std::size_t total = sink.size();
      for (const AccumMapT<B>& m : maps) total += m.size();
      sink.reserve(total);
      for (AccumMapT<B>& m : maps) {
        m.for_each(
            [&](const TableKey& k, const Vec& c) { sink.add(k, c); });
        detail::check_budget(cx, sink.size());
      }
      cx.end_phase();
      return;
    }
#endif
    for (VertexId u = 0; u < n; ++u) {
      const auto pu = plus.group(0, u);
      if (pu.empty()) continue;
      const auto mu = minus.group(0, u);
      if (mu.empty()) continue;
      merge_bucket<B>(cx, pu, mu, spec,
                      [&](const TableKey& k, const Vec& c) { sink.add(k, c); });
      detail::check_budget(cx, sink.size());
    }
    cx.end_phase();
    return;
  }

  // No bucket index (out-of-domain keys): whole-table two-pointer merge.
  auto uv_less = [](const TableEntryT<B>& a, const TableEntryT<B>& b) {
    return a.key.v[0] != b.key.v[0] ? a.key.v[0] < b.key.v[0]
                                    : a.key.v[1] < b.key.v[1];
  };
  std::size_t pi = 0, mi = 0;
  while (pi < pe.size() && mi < me.size()) {
    if (uv_less(pe[pi], me[mi])) {
      ++pi;
      continue;
    }
    if (uv_less(me[mi], pe[pi])) {
      ++mi;
      continue;
    }
    const VertexId u = pe[pi].key.v[0];
    std::size_t pj = pi, mj = mi;
    while (pj < pe.size() && pe[pj].key.v[0] == u) ++pj;
    while (mj < me.size() && me[mj].key.v[0] == u) ++mj;
    merge_bucket<B>(cx, pe.subspan(pi, pj - pi), me.subspan(mi, mj - mi),
                    spec,
                    [&](const TableKey& k, const Vec& c) { sink.add(k, c); });
    detail::check_budget(cx, sink.size());
    pi = pj;
    mi = mj;
  }
  cx.end_phase();
}

/// Sum out all slots beyond the first new_arity (with phase accounting).
template <int B>
ProjTableT<B> aggregate(const ExecContext& cx, const ProjTableT<B>& t,
                        int new_arity) {
  AccumMapT<B> map(t.size(), cx.opts.compact_accum);
  t.for_each_entry([&](const TableEntryT<B>& e) {
    kernel_aggregate<B>(cx, e, new_arity,
                        [&](const TableKey& k,
                            const typename LaneOps<B>::Vec& c) {
                          map.add(k, c);
                        });
  });
  detail::check_budget(cx, map.size());
  cx.end_phase();
  return ProjTableT<B>::from_map(new_arity, std::move(map));
}

}  // namespace ccbt
