// End-to-end integration tests: realistic workloads through the full
// public API, cross-checking PS vs DB on graphs too large for the oracle,
// plus failure-injection paths.

#include <gtest/gtest.h>

#include "ccbt/bench_support/workloads.hpp"
#include "ccbt/core/ccbt.hpp"
#include "ccbt/util/error.hpp"

namespace ccbt {
namespace {

Count run_algo(const CsrGraph& g, const QueryGraph& q, Algo algo,
               std::uint64_t seed) {
  ExecOptions opts;
  opts.algo = algo;
  CountingSession session(g, q, make_plan(q), opts);
  return session.count_colorful_seeded(seed).colorful;
}

TEST(Integration, PsAndDbAgreeOnWorkloadScale) {
  // No oracle here: the two independent strategies must agree on a
  // 10k-node heavy-tailed graph across all Figure 8 queries.
  const CsrGraph g = make_workload("enron", 0.15, 5);
  for (const QueryGraph& q : figure8_queries()) {
    const Count ps = run_algo(g, q, Algo::kPS, 17);
    const Count db = run_algo(g, q, Algo::kDB, 17);
    EXPECT_EQ(ps, db) << q.name();
  }
}

TEST(Integration, PsEvenAgreesOnWorkloadScale) {
  const CsrGraph g = make_workload("condMat", 0.15, 6);
  for (const char* name : {"brain1", "wiki", "glet2", "dros"}) {
    const QueryGraph q = named_query(name);
    EXPECT_EQ(run_algo(g, q, Algo::kPSEven, 23), run_algo(g, q, Algo::kDB, 23))
        << name;
  }
}

TEST(Integration, RmatWeakScalingGraphWorks) {
  RmatParams p;
  p.scale = 11;
  p.edge_factor = 8;
  const CsrGraph g = rmat(p, 3);
  const QueryGraph q = q_glet1();
  EXPECT_EQ(run_algo(g, q, Algo::kPS, 7), run_algo(g, q, Algo::kDB, 7));
}

TEST(Integration, SimulatedRanksProduceLoadStats) {
  const CsrGraph g = make_workload("astroph", 0.2, 7);
  const QueryGraph q = q_youtube();
  ExecOptions opts;
  opts.algo = Algo::kDB;
  opts.sim_ranks = 64;
  CountingSession session(g, q, make_plan(q), opts);
  const ExecStats stats = session.count_colorful_seeded(3);
  EXPECT_GT(stats.total_ops, 0u);
  EXPECT_GT(stats.sim_time, 0.0);
  EXPECT_GE(stats.max_rank_ops,
            static_cast<std::uint64_t>(stats.avg_rank_ops));
}

TEST(Integration, EstimatorRunsOnWorkload) {
  const CsrGraph g = make_workload("roadNetCA", 0.1, 8);
  EstimatorOptions opts;
  opts.trials = 3;
  const EstimatorResult r = estimate_matches(g, q_glet1(), opts);
  EXPECT_EQ(r.colorful_per_trial.size(), 3u);
  EXPECT_GE(r.matches, 0.0);
}

TEST(Integration, BudgetFailureIsCleanlyReported) {
  const CsrGraph g = make_workload("epinions", 0.2, 9);
  const QueryGraph q = q_brain3();
  ExecOptions opts;
  opts.algo = Algo::kPS;
  opts.max_table_entries = 1000;  // deliberately tiny
  CountingSession session(g, q, make_plan(q), opts);
  EXPECT_THROW(session.count_colorful_seeded(1), BudgetExceeded);
}

TEST(Integration, SessionReusableAcrossColorings) {
  const CsrGraph g = make_workload("brightkite", 0.1, 10);
  const QueryGraph q = q_wiki();
  ExecOptions opts;
  CountingSession session(g, q, make_plan(q), opts);
  const Count a = session.count_colorful_seeded(1).colorful;
  const Count b = session.count_colorful_seeded(2).colorful;
  const Count a2 = session.count_colorful_seeded(1).colorful;
  EXPECT_EQ(a, a2);
  (void)b;
}

TEST(Integration, MismatchedColoringRejected) {
  const CsrGraph g = make_workload("condMat", 0.05, 11);
  const QueryGraph q = q_glet1();
  CountingSession session(g, q, make_plan(q), {});
  const Coloring wrong_k(g.num_vertices(), 7, 1);
  EXPECT_THROW(session.count_colorful(wrong_k), Error);
  const Coloring wrong_n(g.num_vertices() / 2, q.num_nodes(), 1);
  EXPECT_THROW(session.count_colorful(wrong_n), Error);
}

TEST(Integration, CountColorfulMatchesOneShot) {
  const CsrGraph g = make_workload("condMat", 0.05, 12);
  const QueryGraph q = q_glet2();
  const Coloring chi(g.num_vertices(), q.num_nodes(), 4);
  const Count a = count_colorful_matches(g, q, chi);
  const Count b = count_colorful_matches(g, q, chi);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace ccbt
