// Accumulate-only microbench: the B = 8 emission + seal hot path in
// isolation, probe vs sharded engine × dense vs sparse emission format
// (table/flat_rows.hpp), without the estimator noise of the full batch
// bench. The workload replays the extend loop's emission shape —
// same-v1 bursts through the run-bulk API, duplicate keys re-emitted
// across bursts, the frontier pending-register dedup when the sink is
// sparse — at several table sizes and lane densities, then seals kByV1
// exactly as extend_with_graph_grouped does.
//
// Two sweeps share the grid: table size {200k, 1M, 4M} at the Fig 15
// density (~0.15), and lane density {0.05, 0.15, 0.5, 1.0} at 1M
// emissions — the axis the sparse record format trades on (bytes/row
// ~ 9 + 2·occupied vs a fixed 24).
//
// Writes BENCH_accumulate.json:
//   cells[]: {emissions, density, engine, format, accumulate_s, seal_s,
//             rows, bytes_per_row, frontier_folds}
//   headlines: geomean sharded/probe wall ratios per stage (dense, the
//   PR 9 comparison) and geomean sparse/dense wall + bytes-per-row
//   ratios (< 1 means sparse is smaller/faster).
//
// Knobs: CCBT_BENCH_TRIALS (default 5 repetitions, best-of).

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "ccbt/table/flat_rows.hpp"
#include "ccbt/util/rng.hpp"
#include "ccbt/util/timer.hpp"

namespace ccbt {
namespace {

constexpr int B = 8;
using Rows = FlatRowsT<B>;
using Row16 = PackedFlatRowT<B, std::uint16_t>;

int bench_reps() {
  if (const char* env = std::getenv("CCBT_BENCH_TRIALS")) {
    const int t = std::atoi(env);
    if (t > 0) return t;
  }
  return 5;
}

std::uint64_t pack(std::uint32_t v0, std::uint32_t v1, std::uint8_t sig) {
  return (std::uint64_t{v0} << 36) | (std::uint64_t{v1} << 8) | sig;
}

/// One synthetic emission stream: `bursts` same-v1 runs of `burst_len`
/// rows each over a `domain`-vertex graph, with duplicate keys arriving
/// both inside a burst and when a later burst revisits the same v1 —
/// the duplicate structure the combining caches exist for. `density`
/// sets the live lanes per emission (max(1, ceil(density · B)),
/// key-anchored so same-key emissions overlap and fold).
struct Workload {
  VertexId domain = 0;
  struct Burst {
    std::uint32_t v1;
    std::uint32_t v0_base;
  };
  std::vector<Burst> bursts;
  std::size_t burst_len = 0;
  LaneMask lane_window = 1;
  double density = 0.0;

  static Workload make(std::size_t emissions, VertexId domain,
                       std::size_t burst_len, double density,
                       std::uint64_t seed) {
    Workload w;
    w.domain = domain;
    w.burst_len = burst_len;
    w.density = density;
    const int lanes = std::clamp(
        static_cast<int>(std::ceil(density * B - 1e-9)), 1, B);
    w.lane_window = static_cast<LaneMask>((1u << lanes) - 1u);
    Rng rng(seed);
    const std::size_t n_bursts = emissions / burst_len;
    w.bursts.reserve(n_bursts);
    for (std::size_t i = 0; i < n_bursts; ++i) {
      // Bursts revisit a v1 with probability ~1/2 (cross-burst dups).
      const std::uint32_t v1 =
          static_cast<std::uint32_t>(rng() % (domain / 2) * 2 % domain);
      const std::uint32_t v0_base =
          static_cast<std::uint32_t>(rng() % domain);
      w.bursts.push_back({v1, v0_base});
    }
    return w;
  }

  /// Key-anchored lane mask: the window rotated by the key's lane seed,
  /// so every emission of one key occupies the same lanes.
  LaneMask mask_for(std::uint32_t v0) const {
    const unsigned s = v0 % B;
    const unsigned wnd = lane_window;
    return static_cast<LaneMask>(((wnd << s) | (wnd >> (B - s))) & 0xFFu);
  }
};

/// Replay the workload into a fresh sink on `engine` under `format`,
/// mimicking the extend loop: acquire a run handle per burst,
/// run-append when it is valid (sharded), per-row probe append
/// otherwise — and, when the sink is sparse, fold consecutive same-key
/// emissions in a pending register first, exactly as the frontier dedup
/// in extend_with_graph_grouped does. Returns the emit wall; `seal_s`
/// gets the kByV1 sort + merge wall, `tel` the pre-seal telemetry.
double replay(const Workload& w, AccumEngine engine, EmitFormat format,
              double* seal_s, std::size_t* sealed_rows,
              AccumTelemetry* tel) {
  set_accum_engine(engine);
  set_emit_format(format);
  Rows t;
  Row16 src;
  for (int l = 0; l < B; ++l) src.c[l] = 1;
  Timer emit_timer;
  t.prepare_emit(AccumEngine::kAuto, w.domain);
  const bool dedup = t.sparse();
  std::uint64_t folds = 0;
  for (const Workload::Burst& b : w.bursts) {
    const auto run = t.run_u16(b.v1, w.burst_len);
    std::uint64_t pend_k = ~std::uint64_t{0};
    Row16 pend;
    LaneMask pend_m = 0;
    auto flush_pend = [&] {
      if (pend_k == ~std::uint64_t{0}) return;
      if (run.valid()) {
        t.run_append_u16(run, pend_k, pend, pend_m);
      } else {
        t.append_masked_u16(pend_k, pend, pend_m);
      }
      pend_k = ~std::uint64_t{0};
    };
    for (std::size_t i = 0; i < w.burst_len; ++i) {
      // In-burst duplicates: every 4th row repeats the previous key.
      const std::uint32_t v0 =
          (b.v0_base + static_cast<std::uint32_t>(i - (i % 4 == 3))) %
          w.domain;
      const std::uint64_t k =
          pack(v0, b.v1, static_cast<std::uint8_t>(v0 & 0x1F));
      const LaneMask m = w.mask_for(v0);
      if (dedup) {
        if (k == pend_k) {
          bool ok = true;
          for (int l = 0; l < B && ok; ++l) {
            ok = std::uint32_t{pend.c[l]} +
                     (((m >> l) & 1) != 0 ? src.c[l] : 0) <=
                 0xFFFFu;
          }
          if (ok) {
            for (int l = 0; l < B; ++l) {
              pend.c[l] = static_cast<std::uint16_t>(
                  pend.c[l] + (((m >> l) & 1) != 0 ? src.c[l] : 0));
            }
            pend_m |= m;
            ++folds;
            continue;
          }
        }
        flush_pend();
        pend_k = k;
        pend.k = k;
        pend_m = m;
        for (int l = 0; l < B; ++l) {
          pend.c[l] = ((m >> l) & 1) != 0 ? src.c[l] : std::uint16_t{0};
        }
      } else if (run.valid()) {
        t.run_append_u16(run, k, src, m);
      } else {
        t.append_masked_u16(k, src, m);
      }
    }
    flush_pend();
  }
  if (folds != 0) t.note_frontier_folds(folds);
  const double emit_s = emit_timer.seconds();
  t.collect_telemetry(*tel);
  Timer seal_timer;
  const bool ok = t.sort_by_slot(1, w.domain);
  t.merge_duplicates();
  *seal_s = seal_timer.seconds();
  *sealed_rows = t.size();
  if (!ok) std::fprintf(stderr, "seal fell back to dense path!\n");
  set_accum_engine(AccumEngine::kAuto);
  set_emit_format(EmitFormat::kAuto);
  return emit_s;
}

struct Cell {
  std::size_t emissions;
  double density;
  const char* engine;
  const char* format;
  double accumulate_s = 0.0;
  double seal_s = 0.0;
  std::size_t rows = 0;
  double bytes_per_row = 0.0;
  std::uint64_t frontier_folds = 0;
};

double geomean(const std::vector<double>& xs) {
  double s = 0.0;
  for (double x : xs) s += std::log(x);
  return std::exp(s / static_cast<double>(xs.size()));
}

}  // namespace
}  // namespace ccbt

int main() {
  using namespace ccbt;
  const int reps = bench_reps();
  const double kFig15Density = 0.15;
  // Shared grid: the size sweep runs at the Fig 15 density, the density
  // sweep at the middle size.
  struct Point {
    std::size_t emissions;
    double density;
  };
  std::vector<Point> points;
  for (const std::size_t e : {200'000u, 1'000'000u, 4'000'000u}) {
    points.push_back({e, kFig15Density});
  }
  for (const double d : {0.05, 0.5, 1.0}) points.push_back({1'000'000, d});
  const VertexId domain = 60'000;
  const std::size_t burst_len = 48;

  std::printf(
      "Accumulate microbench: B=8 same-v1 burst emission + kByV1 seal\n"
      "%-10s %-8s %-8s %-7s %10s %10s %10s %9s %7s %9s\n", "emissions",
      "density", "engine", "format", "accum ms", "seal ms", "total ms",
      "rows", "B/row", "folds");
  std::vector<Cell> cells;
  std::vector<double> accum_ratios, seal_ratios, total_ratios;
  std::vector<double> sp_accum_ratios, sp_seal_ratios, sp_total_ratios;
  std::vector<double> sp_bytes_ratios;
  const AccumEngine engines[2] = {AccumEngine::kProbe,
                                  AccumEngine::kSharded};
  const char* engine_names[2] = {"probe", "sharded"};
  const EmitFormat formats[2] = {EmitFormat::kDense, EmitFormat::kSparse};
  const char* format_names[2] = {"dense", "sparse"};
  for (const Point& pt : points) {
    const Workload w =
        Workload::make(pt.emissions, domain, burst_len, pt.density, 42);
    double best[2][2][2];  // [engine][format][stage] best-of-reps
    std::size_t rows[2][2] = {{0, 0}, {0, 0}};
    double bpr[2][2] = {{0.0, 0.0}, {0.0, 0.0}};
    std::uint64_t folds[2][2] = {{0, 0}, {0, 0}};
    for (int e = 0; e < 2; ++e) {
      for (int fm = 0; fm < 2; ++fm) {
        best[e][fm][0] = best[e][fm][1] = 1e30;
        for (int r = 0; r < reps; ++r) {
          double seal = 0.0;
          std::size_t sealed = 0;
          AccumTelemetry tel;
          const double emit =
              replay(w, engines[e], formats[fm], &seal, &sealed, &tel);
          best[e][fm][0] = std::min(best[e][fm][0], emit);
          best[e][fm][1] = std::min(best[e][fm][1], seal);
          rows[e][fm] = sealed;
          bpr[e][fm] = tel.bytes_per_row();
          folds[e][fm] = tel.frontier_folds;
        }
        Cell c;
        c.emissions = pt.emissions;
        c.density = pt.density;
        c.engine = engine_names[e];
        c.format = format_names[fm];
        c.accumulate_s = best[e][fm][0];
        c.seal_s = best[e][fm][1];
        c.rows = rows[e][fm];
        c.bytes_per_row = bpr[e][fm];
        c.frontier_folds = folds[e][fm];
        cells.push_back(c);
        std::printf(
            "%-10zu %-8.2f %-8s %-7s %10.2f %10.2f %10.2f %9zu %7.1f "
            "%9" PRIu64 "\n",
            pt.emissions, pt.density, engine_names[e], format_names[fm],
            1e3 * c.accumulate_s, 1e3 * c.seal_s,
            1e3 * (c.accumulate_s + c.seal_s), c.rows, c.bytes_per_row,
            c.frontier_folds);
      }
      if (rows[e][0] != rows[e][1]) {
        std::fprintf(stderr,
                     "sealed row mismatch: %s dense %zu sparse %zu\n",
                     engine_names[e], rows[e][0], rows[e][1]);
        return 1;
      }
      // Sparse/dense per engine.
      sp_accum_ratios.push_back(best[e][1][0] / best[e][0][0]);
      sp_seal_ratios.push_back(best[e][1][1] / best[e][0][1]);
      sp_total_ratios.push_back((best[e][1][0] + best[e][1][1]) /
                                (best[e][0][0] + best[e][0][1]));
      sp_bytes_ratios.push_back(bpr[e][1] / bpr[e][0]);
    }
    if (rows[0][0] != rows[1][0]) {
      std::fprintf(stderr, "sealed row mismatch: probe %zu sharded %zu\n",
                   rows[0][0], rows[1][0]);
      return 1;
    }
    // Sharded/probe on the dense format (the PR 9 comparison).
    accum_ratios.push_back(best[1][0][0] / best[0][0][0]);
    seal_ratios.push_back(best[1][0][1] / best[0][0][1]);
    total_ratios.push_back((best[1][0][0] + best[1][0][1]) /
                           (best[0][0][0] + best[0][0][1]));
  }

  const double gm_accum = geomean(accum_ratios);
  const double gm_seal = geomean(seal_ratios);
  const double gm_total = geomean(total_ratios);
  const double gm_sp_accum = geomean(sp_accum_ratios);
  const double gm_sp_seal = geomean(sp_seal_ratios);
  const double gm_sp_total = geomean(sp_total_ratios);
  const double gm_sp_bytes = geomean(sp_bytes_ratios);
  std::printf(
      "\nsharded/probe wall ratios, dense (geomean; < 1 = sharded "
      "faster):\n"
      "  accumulate %.3f   seal %.3f   total %.3f\n"
      "sparse/dense ratios (geomean; < 1 = sparse smaller/faster):\n"
      "  accumulate %.3f   seal %.3f   total %.3f   bytes/row %.3f\n",
      gm_accum, gm_seal, gm_total, gm_sp_accum, gm_sp_seal, gm_sp_total,
      gm_sp_bytes);

  std::FILE* f = std::fopen("BENCH_accumulate.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_accumulate.json\n");
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"accumulate\",\n"
               "  \"sharded_over_probe_accumulate\": %.3f,\n"
               "  \"sharded_over_probe_seal\": %.3f,\n"
               "  \"sharded_over_probe_total\": %.3f,\n"
               "  \"sparse_over_dense_accumulate\": %.3f,\n"
               "  \"sparse_over_dense_seal\": %.3f,\n"
               "  \"sparse_over_dense_total\": %.3f,\n"
               "  \"sparse_over_dense_bytes_per_row\": %.3f,\n"
               "  \"cells\": [\n",
               gm_accum, gm_seal, gm_total, gm_sp_accum, gm_sp_seal,
               gm_sp_total, gm_sp_bytes);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(f,
                 "    {\"emissions\": %zu, \"density\": %.2f, "
                 "\"engine\": \"%s\", \"format\": \"%s\", "
                 "\"accumulate_s\": %.6f, \"seal_s\": %.6f, "
                 "\"rows\": %zu, \"bytes_per_row\": %.2f, "
                 "\"frontier_folds\": %" PRIu64 "}%s\n",
                 c.emissions, c.density, c.engine, c.format,
                 c.accumulate_s, c.seal_s, c.rows, c.bytes_per_row,
                 c.frontier_folds, i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("BENCH_accumulate.json written\n");
  return 0;
}
