#pragma once
// Projection tables (Section 4.2): a synopsis of the colorful matches of a
// subquery, keyed by the images of its boundary nodes (plus tracked
// vertices during DB path construction) and the color signature.
//
// Lifecycle: entries are accumulated through an AccumMap during a join,
// then sealed into a sorted dense vector. Sealing with a known key domain
// (the data graph's vertex count) additionally builds a CSR-style bucket
// index over the grouping slot, so group(slot, v) is a single offset
// lookup instead of two binary searches. See README.md in this directory
// for the memory layout and threading model.

#include <cstdint>
#include <span>
#include <vector>

#include "ccbt/table/accum_map.hpp"
#include "ccbt/table/table_key.hpp"

namespace ccbt {

/// Sort orders used by the join procedures.
enum class SortOrder : std::uint8_t {
  kUnsorted,
  kByV0,    // group by slot 0 (child-table lookups by first boundary)
  kByV0V1,  // group by (slot 0, slot 1) (half-cycle merge joins)
  kByV1,    // group by slot 1 (frontier-grouped extensions)
};

/// The key slot a sort order groups by (-1 for kUnsorted).
inline constexpr int group_slot(SortOrder order) {
  switch (order) {
    case SortOrder::kByV0:
    case SortOrder::kByV0V1: return 0;
    case SortOrder::kByV1: return 1;
    case SortOrder::kUnsorted: break;
  }
  return -1;
}

class ProjTable {
 public:
  ProjTable() = default;

  /// arity = number of meaningful leading vertex slots (0..4).
  explicit ProjTable(int arity) : arity_(arity) {}

  static ProjTable from_map(int arity, AccumMap&& map) {
    ProjTable t(arity);
    t.entries_ = map.take_entries();
    return t;
  }

  int arity() const { return arity_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  std::span<const TableEntry> entries() const { return entries_; }

  /// Total count over all entries (used at the root).
  Count total() const;

  /// Sort entries for merge joins; remembers the order (no-op if sorted;
  /// kByV0 and kByV0V1 share one comparator, so converting between them is
  /// a relabel). `domain` is the exclusive upper bound on the grouping
  /// slot's values (the data graph's vertex count): when positive — or
  /// when a small bound can be detected from the data — sealing runs a
  /// stable counting partition on the grouping slot (O(n + domain) plus
  /// tiny per-bucket sorts) and keeps the bucket offsets as an O(1) group
  /// index. With domain 0 and no detectable bound it falls back to a
  /// comparison sort and group() uses binary search.
  void seal(SortOrder order, VertexId domain = 0);
  SortOrder order() const { return order_; }

  /// Whether group() resolves through the O(1) bucket index.
  bool has_bucket_index() const { return !bucket_off_.empty(); }

  /// Contiguous range of entries whose slot `slot` equals v; requires the
  /// matching seal order (kByV0 for slot 0, kByV1 for slot 1). O(1) when
  /// the bucket index covers `slot`, two binary searches otherwise.
  std::span<const TableEntry> group(int slot, VertexId v) const {
    if (slot == index_slot_) {
      if (v >= domain_) return {};
      return {entries_.data() + bucket_off_[v],
              static_cast<std::size_t>(bucket_off_[v + 1] - bucket_off_[v])};
    }
    return group_by_search(slot, v);
  }

  /// Swap slots 0 and 1 in every key — the transpose of Section 5.2
  /// ("the boundary tables are transpose of each other"). Invalidates the
  /// seal order.
  ProjTable transposed() const;

  /// Sum out every slot except slot 0 (projection to a unary table), or to
  /// arity 0. Used when a cycle's diagonal split must be re-aggregated to
  /// the block's true boundary keys.
  ProjTable aggregated(int new_arity) const;

  void push_unchecked(const TableEntry& e) {
    entries_.push_back(e);
    drop_index();
  }

 private:
  std::span<const TableEntry> group_by_search(int slot, VertexId v) const;

  /// Stable counting partition by `slot` over [0, domain), then sort each
  /// bucket by the remaining key fields; keeps the offsets as the index.
  void bucket_sort(int slot, VertexId domain);

  /// Entries already sorted for `order_`; (re)build the offset index only.
  void build_index(int slot, VertexId domain);

  void drop_index() {
    bucket_off_.clear();
    index_slot_ = -1;
    domain_ = 0;
  }

  int arity_ = 0;
  SortOrder order_ = SortOrder::kUnsorted;
  std::vector<TableEntry> entries_;

  // CSR bucket index over the grouping slot: entries with key slot value v
  // occupy [bucket_off_[v], bucket_off_[v + 1]). Empty when not built.
  std::vector<std::uint32_t> bucket_off_;
  int index_slot_ = -1;
  VertexId domain_ = 0;
};

}  // namespace ccbt
