#pragma once
// Projection-table keys.
//
// A key holds up to four data-vertex slots plus a color signature:
//   slot 0 — the anchor (π of the path's start node / first boundary node)
//   slot 1 — the frontier (π of the current path end / second boundary)
//   slots 2,3 — "tracked" vertices: the images of boundary nodes that fall
//               in the interior of a DB path (the additional fields of
//               Section 5.1, configurations (A) and (B)).
// Unused slots hold kNoVertex so equality and hashing are uniform.

#include <array>
#include <cstdint>

#include "ccbt/graph/types.hpp"

namespace ccbt {

struct TableKey {
  std::array<VertexId, 4> v{kNoVertex, kNoVertex, kNoVertex, kNoVertex};
  Signature sig = 0;

  friend bool operator==(const TableKey&, const TableKey&) = default;
};

/// 64-bit mix of all key fields (splitmix-style avalanche).
inline std::uint64_t hash_key(const TableKey& k) {
  std::uint64_t h = 0x9E3779B97F4A7C15ULL;
  auto mix = [&h](std::uint64_t x) {
    h ^= x + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 27;
  };
  mix((static_cast<std::uint64_t>(k.v[0]) << 32) | k.v[1]);
  mix((static_cast<std::uint64_t>(k.v[2]) << 32) | k.v[3]);
  mix(k.sig);
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 31;
  return h;
}

/// An accumulated (key -> count) row.
struct TableEntry {
  TableKey key;
  Count cnt = 0;
};

}  // namespace ccbt
