// The MINBUCKET ancestry (Section 1, "Degree Based Approaches"): on
// heavy-tailed graphs the naive per-vertex triangle enumeration wastes
// wedge checks and concentrates work on the hubs; anchoring each triangle
// at its lowest-degree vertex fixes both. This is the L=3 special case of
// the paper's DB strategy and the intuition behind it.
//
// Shape to verify: identical triangle counts; MINBUCKET's total wedge
// checks shrink on skewed graphs (and barely change on the road network);
// the max-vertex work ("curse of the last reducer") collapses by orders
// of magnitude on power-law graphs.

#include "common.hpp"

#include "ccbt/tri/triangles.hpp"

int main() {
  using namespace ccbt;
  using namespace ccbt::bench;
  print_header("MINBUCKET triangles — naive vs degree-ordered",
               "total wedge checks and per-vertex max, per workload");

  TextTable t({"graph", "triangles", "checks naive", "checks MB",
               "check ratio", "maxload naive", "maxload MB", "maxload ratio"});

  for (const auto& [name, g] : load_grid(bench_scale())) {
    const DegreeOrder order(g);
    const TriangleStats naive = count_triangles_naive(g);
    const TriangleStats mb = count_triangles_minbucket(g, order);
    if (naive.triangles != mb.triangles) {
      t.add_row({name, "MISMATCH", "-", "-", "-", "-", "-", "-"});
      continue;
    }
    auto ratio = [](std::uint64_t a, std::uint64_t b) {
      return b == 0 ? 0.0 : static_cast<double>(a) / static_cast<double>(b);
    };
    t.add_row({name, TextTable::num(naive.triangles),
               TextTable::num(naive.wedge_checks),
               TextTable::num(mb.wedge_checks),
               TextTable::num(ratio(naive.wedge_checks, mb.wedge_checks), 1),
               TextTable::num(naive.max_vertex_checks),
               TextTable::num(mb.max_vertex_checks),
               TextTable::num(
                   ratio(naive.max_vertex_checks, mb.max_vertex_checks), 1)});
  }
  t.print(std::cout);
  std::cout << "(ratios > 1 mean the degree ordering wins; the maxload "
               "ratio is the\n load-balancing effect the paper's DB "
               "algorithm generalizes to cycles)\n";

  // Colorful triangles across alpha: the same ordering pays off for the
  // color-coding inner loop.
  std::cout << "\n--- colorful triangles on Chung-Lu, varying skew ---\n";
  TextTable t2({"alpha", "n", "colorful tris", "checks MB", "maxload MB"});
  for (double alpha : {1.2, 1.5, 1.8}) {
    const VertexId n = static_cast<VertexId>(20000 * bench_scale() * 10);
    const CsrGraph g = chung_lu_power_law(n, alpha, 8.0, 7);
    const DegreeOrder order(g);
    const Coloring chi(g.num_vertices(), 3, 11);
    const TriangleStats c = count_colorful_triangles(g, chi, order);
    t2.add_row({TextTable::num(alpha, 1), TextTable::num(std::uint64_t{n}),
                TextTable::num(c.triangles), TextTable::num(c.wedge_checks),
                TextTable::num(c.max_vertex_checks)});
  }
  t2.print(std::cout);
  return 0;
}
