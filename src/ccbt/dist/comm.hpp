#pragma once
// VirtualComm: a single-process stand-in for the paper's MPI transport
// (Section 7). Ranks exchange projection-table entries in bulk-synchronous
// supersteps: send() queues an entry in the sender's outbox, exchange()
// delivers every queued entry to its destination inbox and closes the
// superstep. Delivery is deterministic — inboxes concatenate senders in
// rank order, preserving each sender's send order — so a virtual run is
// exactly reproducible.
//
// The transport keeps its own traffic accounting (CommStats), independent
// of the engine's modeled LoadModel communication: the model sees only the
// routing a real implementation must pay per join emission, while the
// transport also pays for resharding and orientation supersteps.
//
// The transport is parameterized on the batch width B: a batched run
// serializes whole lane-count vectors per entry (one message per
// signature-blocked row, B counts of payload), which CommStats reflects
// through entry_bytes.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "ccbt/table/table_key.hpp"
#include "ccbt/util/error.hpp"

namespace ccbt {

struct CommStats {
  std::uint64_t supersteps = 0;
  std::uint64_t entries_sent = 0;      // all sends, local included
  std::uint64_t off_rank_entries = 0;  // sends with from != to
  std::uint64_t max_step_recv = 0;     // max entries one rank received
                                       // in one superstep

  /// Wire size of one entry: key plus the lane-count vector.
  std::uint64_t entry_bytes = sizeof(TableKey) + sizeof(Count);

  /// Wire volume of the off-rank traffic.
  std::uint64_t off_rank_bytes() const {
    return off_rank_entries * entry_bytes;
  }
};

template <int B>
class VirtualCommT {
 public:
  using Entry = TableEntryT<B>;

  /// Throws Error when ranks == 0.
  explicit VirtualCommT(std::uint32_t ranks) {
    if (ranks == 0) throw Error("VirtualComm: need at least one rank");
    outbox_.resize(ranks);
    inbox_.resize(ranks);
    stats_.entry_bytes =
        sizeof(TableKey) + sizeof(typename LaneOps<B>::Vec);
  }

  std::uint32_t num_ranks() const {
    return static_cast<std::uint32_t>(outbox_.size());
  }

  /// Queue `e` from rank `from` to rank `to`; visible after exchange().
  void send(std::uint32_t from, std::uint32_t to, const Entry& e) {
    outbox_[from].push_back({to, e});
    ++stats_.entries_sent;
    if (from != to) ++stats_.off_rank_entries;
  }

  /// Deliver all queued entries (replacing previous inboxes) and close
  /// the superstep.
  void exchange() {
    for (auto& in : inbox_) in.clear();
    // Senders drain in rank order, each in send order: deterministic
    // delivery independent of any real interleaving.
    for (auto& out : outbox_) {
      for (const Queued& q : out) inbox_[q.to].push_back(q.entry);
      out.clear();
    }
    for (const auto& in : inbox_) {
      stats_.max_step_recv = std::max(
          stats_.max_step_recv, static_cast<std::uint64_t>(in.size()));
    }
    ++stats_.supersteps;
  }

  /// Entries delivered to `rank` by the last exchange.
  const std::vector<Entry>& inbox(std::uint32_t rank) const {
    return inbox_[rank];
  }

  /// Move `rank`'s delivered entries out (the next exchange() resets the
  /// inbox anyway); lets collectors adopt the buffer without a copy.
  std::vector<Entry> take_inbox(std::uint32_t rank) {
    return std::move(inbox_[rank]);
  }

  /// Sum one per-rank contribution vector (MPI_Allreduce stand-in).
  Count allreduce_sum(const std::vector<Count>& parts) const {
    Count sum = 0;
    for (Count c : parts) sum += c;
    return sum;
  }

  /// Lane-wise allreduce over per-rank lane-total vectors.
  typename LaneOps<B>::Vec allreduce_sum_lanes(
      const std::vector<typename LaneOps<B>::Vec>& parts) const {
    auto sum = LaneOps<B>::zero();
    for (const auto& p : parts) LaneOps<B>::add(sum, p);
    return sum;
  }

  const CommStats& stats() const { return stats_; }

 private:
  struct Queued {
    std::uint32_t to;
    Entry entry;
  };

  std::vector<std::vector<Queued>> outbox_;  // per sender, in send order
  std::vector<std::vector<Entry>> inbox_;
  CommStats stats_;
};

using VirtualComm = VirtualCommT<1>;

extern template class VirtualCommT<1>;
extern template class VirtualCommT<2>;
extern template class VirtualCommT<4>;
extern template class VirtualCommT<8>;

}  // namespace ccbt
