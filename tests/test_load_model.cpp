// Unit tests for the virtual-rank BSP load model and its integration with
// the engine: op conservation, phase makespans, and the qualitative
// behaviour the scaling figures rely on.

#include <gtest/gtest.h>

#include "ccbt/core/color_coding.hpp"
#include "ccbt/engine/load_model.hpp"
#include "ccbt/graph/generators.hpp"
#include "ccbt/query/catalog.hpp"

namespace ccbt {
namespace {

TEST(LoadModel, PhaseMakespanIsMaxOverRanks) {
  LoadModel model(4, /*comm_cost=*/2.0);
  model.add_ops(0, 10);
  model.add_ops(1, 50);
  model.add_ops(2, 20);
  model.end_phase();
  EXPECT_DOUBLE_EQ(model.sim_time(), 50.0);
  model.add_ops(3, 5);
  model.end_phase();
  EXPECT_DOUBLE_EQ(model.sim_time(), 55.0);
}

TEST(LoadModel, CommChargedToReceiver) {
  LoadModel model(2, /*comm_cost=*/3.0);
  model.add_ops(0, 10);
  model.add_comm(0, 1, 4);  // rank 1 receives 4 messages
  model.end_phase();
  EXPECT_DOUBLE_EQ(model.sim_time(), 12.0);  // max(10, 3*4)
  EXPECT_EQ(model.total_comm(), 4u);
}

TEST(LoadModel, LocalCommIsFree) {
  LoadModel model(2);
  model.add_comm(1, 1, 100);
  model.end_phase();
  EXPECT_DOUBLE_EQ(model.sim_time(), 0.0);
  EXPECT_EQ(model.total_comm(), 0u);
}

TEST(LoadModel, TotalsAggregateAcrossPhases) {
  LoadModel model(2);
  model.add_ops(0, 7);
  model.end_phase();
  model.add_ops(0, 3);
  model.add_ops(1, 4);
  model.end_phase();
  EXPECT_EQ(model.total_ops(), 14u);
  EXPECT_EQ(model.max_rank_ops(), 10u);
  EXPECT_DOUBLE_EQ(model.avg_rank_ops(), 7.0);
}

struct EngineLoad {
  std::uint64_t total_ops;
  std::uint64_t max_rank_ops;
  double sim_time;
};

EngineLoad run_with_ranks(const CsrGraph& g, const QueryGraph& q, Algo algo,
                          std::uint32_t ranks) {
  ExecOptions opts;
  opts.algo = algo;
  opts.sim_ranks = ranks;
  CountingSession session(g, q, make_plan(q), opts);
  const ExecStats stats = session.count_colorful_seeded(7);
  return {stats.total_ops, stats.max_rank_ops, stats.sim_time};
}

TEST(EngineLoad, TotalOpsIndependentOfRankCount) {
  const CsrGraph g = chung_lu_power_law(1500, 1.7, 5.0, 3);
  const QueryGraph q = q_glet2();
  const EngineLoad r32 = run_with_ranks(g, q, Algo::kDB, 32);
  const EngineLoad r256 = run_with_ranks(g, q, Algo::kDB, 256);
  EXPECT_EQ(r32.total_ops, r256.total_ops);
}

TEST(EngineLoad, SimTimeShrinksWithMoreRanks) {
  const CsrGraph g = chung_lu_power_law(3000, 1.7, 5.0, 4);
  const QueryGraph q = q_glet2();
  const EngineLoad r8 = run_with_ranks(g, q, Algo::kDB, 8);
  const EngineLoad r128 = run_with_ranks(g, q, Algo::kDB, 128);
  EXPECT_LT(r128.sim_time, r8.sim_time);
}

TEST(EngineLoad, MaxRankBoundsAvg) {
  const CsrGraph g = chung_lu_power_law(2000, 1.6, 5.0, 5);
  const QueryGraph q = q_wiki();
  ExecOptions opts;
  opts.algo = Algo::kPS;
  opts.sim_ranks = 64;
  CountingSession session(g, q, make_plan(q), opts);
  const ExecStats stats = session.count_colorful_seeded(3);
  EXPECT_GE(stats.max_rank_ops, static_cast<std::uint64_t>(
      stats.avg_rank_ops));
}

TEST(EngineLoad, DBReducesTotalOpsOnSkewedGraph) {
  // The core claim of the paper: on heavy-tailed graphs DB performs less
  // total work (wasteful path extensions pruned by the ≻ constraint).
  const CsrGraph g = chung_lu_power_law(4000, 1.6, 6.0, 6);
  const QueryGraph q = q_cycle(5);
  const EngineLoad ps = run_with_ranks(g, q, Algo::kPS, 64);
  const EngineLoad db = run_with_ranks(g, q, Algo::kDB, 64);
  EXPECT_LT(db.total_ops, ps.total_ops);
}

TEST(EngineLoad, DBImprovesMaxLoadOnSkewedGraph) {
  const CsrGraph g = chung_lu_power_law(4000, 1.6, 6.0, 7);
  const QueryGraph q = q_cycle(5);
  const EngineLoad ps = run_with_ranks(g, q, Algo::kPS, 64);
  const EngineLoad db = run_with_ranks(g, q, Algo::kDB, 64);
  EXPECT_LT(db.max_rank_ops, ps.max_rank_ops);
}

}  // namespace
}  // namespace ccbt
