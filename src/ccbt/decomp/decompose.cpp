#include "ccbt/decomp/decompose.hpp"

#include <algorithm>
#include <bit>
#include <functional>

#include "ccbt/query/treewidth.hpp"
#include "ccbt/util/error.hpp"

namespace ccbt {

namespace {

std::pair<int, int> edge_key(QNode a, QNode b) {
  return a < b ? std::pair<int, int>{a, b} : std::pair<int, int>{b, a};
}

}  // namespace

Contractor::Contractor(const QueryGraph& q) : q_(q) {
  validate_query(q);
  alive_ = (std::uint32_t{1} << q.num_nodes()) - 1;
  node_annot_.fill(-1);
  tree_.k = q.num_nodes();
}

int Contractor::alive_count() const { return std::popcount(alive_); }

bool Contractor::done() const { return root_done_ || alive_count() <= 1; }

const Contractor::EdgeAnnot* Contractor::edge_annotation(QNode a,
                                                         QNode b) const {
  const auto it = edge_annot_.find(edge_key(a, b));
  return it == edge_annot_.end() ? nullptr : &it->second;
}

void Contractor::for_each_chordless_cycle(
    const std::function<void(const std::vector<QNode>&)>& fn) const {
  // Enumerate each chordless cycle once: the start node is the smallest on
  // the cycle and the second node is smaller than the last (canonical
  // direction). Extensions may not be adjacent to any interior path node;
  // adjacency to the start closes the cycle (a longer continuation would
  // carry a chord).
  const int n = q_.num_nodes();
  std::vector<QNode> path;
  std::uint32_t on_path = 0;

  std::function<void(QNode)> extend = [&](QNode start) {
    const QNode last = path.back();
    const std::uint32_t nbrs = q_.neighbors(last) & alive_;
    for (int w = start + 1; w < n; ++w) {
      if (!((nbrs >> w) & 1u) || ((on_path >> w) & 1u)) continue;
      const std::uint32_t w_adj = q_.neighbors(static_cast<QNode>(w)) & alive_;
      // Interior adjacency (anything on the path except `last` and the
      // start) would create a chord.
      const std::uint32_t interior =
          on_path & ~(std::uint32_t{1} << last) & ~(std::uint32_t{1} << start);
      if ((w_adj & interior) != 0) continue;
      const bool first_step = path.size() == 1;
      const bool closes = !first_step && ((w_adj >> start) & 1u) != 0;
      if (closes) {
        if (path[1] < static_cast<QNode>(w)) {
          path.push_back(static_cast<QNode>(w));
          fn(path);
          path.pop_back();
        }
        continue;  // extending past w would leave the chord (w, start)
      }
      {
        path.push_back(static_cast<QNode>(w));
        on_path |= std::uint32_t{1} << w;
        extend(start);
        on_path &= ~(std::uint32_t{1} << w);
        path.pop_back();
      }
    }
  };

  for (int s = 0; s < n; ++s) {
    if (!((alive_ >> s) & 1u)) continue;
    path.assign(1, static_cast<QNode>(s));
    on_path = std::uint32_t{1} << s;
    extend(static_cast<QNode>(s));
  }
}

std::vector<QNode> Contractor::boundary_of_cycle(
    const std::vector<QNode>& cyc) const {
  std::uint32_t in_cycle = 0;
  for (QNode a : cyc) in_cycle |= std::uint32_t{1} << a;
  std::vector<QNode> boundary;
  for (QNode a : cyc) {
    if ((q_.neighbors(a) & alive_ & ~in_cycle) != 0) boundary.push_back(a);
  }
  return boundary;
}

std::string Contractor::block_signature(const Candidate& c) const {
  // The signature captures everything that determines the post-contraction
  // state: boundary node identities, the block kind, and the canonical
  // (rotation/reflection-minimal) sequence of per-position annotations.
  auto canon_of = [this](int block) -> std::string {
    return block < 0 ? std::string("-") : block_canon_[block];
  };
  std::string sig;
  if (c.kind == BlockKind::kLeafEdge) {
    const QNode a = c.nodes[0], b = c.nodes[1];
    const EdgeAnnot* ea = edge_annotation(a, b);
    sig = "L:" + std::to_string(a) + ":" +
          canon_of(node_annot_[a]) + ";" + canon_of(node_annot_[b]) + ";" +
          canon_of(ea ? ea->block : -1);
    return sig;
  }
  const int L = static_cast<int>(c.nodes.size());
  std::vector<bool> is_boundary(L, false);
  for (int p : c.boundary_pos) is_boundary[p] = true;
  std::string best;
  for (int rot = 0; rot < L; ++rot) {
    for (int dir : {+1, -1}) {
      std::string s = "C" + std::to_string(L) + ":";
      for (int i = 0; i < L; ++i) {
        const int pos = ((rot + dir * i) % L + L) % L;
        const int nxt = ((rot + dir * (i + 1)) % L + L) % L;
        const QNode u = c.nodes[pos], v = c.nodes[nxt];
        const EdgeAnnot* ea = edge_annotation(u, v);
        s += is_boundary[pos] ? "B" : "n";
        s += std::to_string(c.nodes[pos]);  // boundary ids must match
        s += "(" + canon_of(node_annot_[u]) + "|" +
             canon_of(ea ? ea->block : -1) + ")";
      }
      if (best.empty() || s < best) best = s;
    }
  }
  return best;
}

std::vector<Contractor::Candidate> Contractor::candidates() const {
  std::vector<Candidate> out;
  const int n = q_.num_nodes();

  // Leaf edges: alive nodes of degree one in the working query.
  for (int b = 0; b < n; ++b) {
    if (!((alive_ >> b) & 1u)) continue;
    const std::uint32_t nbrs = q_.neighbors(static_cast<QNode>(b)) & alive_;
    if (std::popcount(nbrs) != 1) continue;
    const int a = std::countr_zero(nbrs);
    // Skip the two-node case where both endpoints have degree one unless b
    // is the higher id (pick one orientation deterministically).
    if (std::popcount(q_.neighbors(static_cast<QNode>(a)) & alive_) == 1 &&
        a > b) {
      continue;
    }
    Candidate c;
    c.kind = BlockKind::kLeafEdge;
    c.nodes = {static_cast<QNode>(a), static_cast<QNode>(b)};
    c.boundary_pos = {0};
    out.push_back(std::move(c));
  }

  // Contractible cycles: chordless with at most two boundary nodes.
  for_each_chordless_cycle([&](const std::vector<QNode>& cyc) {
    const std::vector<QNode> boundary = boundary_of_cycle(cyc);
    if (boundary.size() > 2) return;
    Candidate c;
    c.kind = BlockKind::kCycle;
    c.nodes = cyc;
    for (int i = 0; i < static_cast<int>(cyc.size()); ++i) {
      if (std::find(boundary.begin(), boundary.end(), cyc[i]) !=
          boundary.end()) {
        c.boundary_pos.push_back(i);
      }
    }
    out.push_back(std::move(c));
  });

  for (auto& c : out) c.signature = block_signature(c);

  // Deterministic order, then drop symmetric duplicates.
  std::sort(out.begin(), out.end(), [](const Candidate& x, const Candidate& y) {
    return x.signature < y.signature;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Candidate& x, const Candidate& y) {
                          return x.signature == y.signature;
                        }),
            out.end());
  return out;
}

void Contractor::contract(const Candidate& c) {
  const int id = static_cast<int>(tree_.blocks.size());
  // The canonical string must reflect the *pre*-contraction annotations.
  const std::string canon =
      c.signature.empty() ? block_signature(c) : c.signature;
  Block blk;
  blk.kind = c.kind;
  blk.nodes = c.nodes;
  blk.boundary_pos = c.boundary_pos;
  const int L = blk.length();
  blk.node_child.assign(L, -1);
  const int num_edges = (c.kind == BlockKind::kLeafEdge) ? 1 : L;
  blk.edge_child.assign(num_edges, -1);
  blk.edge_child_flip.assign(num_edges, false);

  // Inherit annotations from the working query (they become children).
  std::vector<int> children;
  for (int i = 0; i < L; ++i) {
    blk.node_child[i] = node_annot_[blk.nodes[i]];
    if (blk.node_child[i] >= 0) children.push_back(blk.node_child[i]);
  }
  for (int i = 0; i < num_edges; ++i) {
    const QNode u = blk.nodes[i];
    const QNode v = blk.nodes[(i + 1) % L];
    if (const EdgeAnnot* ea = edge_annotation(u, v)) {
      blk.edge_child[i] = ea->block;
      blk.edge_child_flip[i] = (ea->first != u);
      children.push_back(ea->block);
    }
  }

  // Remove the block from the working query.
  if (c.kind == BlockKind::kLeafEdge) {
    const QNode a = blk.nodes[0], b = blk.nodes[1];
    q_.remove_edge(a, b);
    edge_annot_.erase(edge_key(a, b));
    alive_ &= ~(std::uint32_t{1} << b);
    node_annot_[b] = -1;
    node_annot_[a] = id;  // Case 3: annotate the boundary node
  } else {
    std::uint32_t in_cycle = 0;
    for (QNode a : blk.nodes) in_cycle |= std::uint32_t{1} << a;
    for (int i = 0; i < L; ++i) {
      const QNode u = blk.nodes[i];
      const QNode v = blk.nodes[(i + 1) % L];
      q_.remove_edge(u, v);
      edge_annot_.erase(edge_key(u, v));
    }
    for (QNode a : blk.nodes) node_annot_[a] = -1;
    switch (blk.boundary_count()) {
      case 0:  // the cycle is the entire remaining query: it is the root
        alive_ &= ~in_cycle;
        root_done_ = true;
        break;
      case 1: {  // Case 1
        const QNode a = blk.nodes[blk.boundary_pos[0]];
        alive_ &= ~(in_cycle & ~(std::uint32_t{1} << a));
        node_annot_[a] = id;
        break;
      }
      case 2: {  // Case 2: contract to an annotated edge (a,b)
        const QNode a = blk.nodes[blk.boundary_pos[0]];
        const QNode b = blk.nodes[blk.boundary_pos[1]];
        alive_ &= ~(in_cycle & ~(std::uint32_t{1} << a) &
                    ~(std::uint32_t{1} << b));
        q_.add_edge(a, b);
        edge_annot_[edge_key(a, b)] = EdgeAnnot{id, a};
        break;
      }
      default:
        throw Error("contract: cycle with more than two boundary nodes");
    }
  }

  tree_.blocks.push_back(std::move(blk));
  tree_.parent.push_back(-1);
  for (int child : children) tree_.parent[child] = id;
  block_canon_.push_back(canon);
  if (root_done_) tree_.root = id;
}

DecompTree Contractor::finish() {
  while (!done()) {
    const auto cands = candidates();
    if (cands.empty()) {
      throw UnsupportedQuery(
          "decomposition stuck: no contractible block (treewidth > 2?)");
    }
    contract(cands.front());
  }
  if (!root_done_) {
    // A single node remains; install the singleton root.
    const int a = std::countr_zero(alive_);
    Block blk;
    blk.kind = BlockKind::kSingleton;
    blk.nodes = {static_cast<QNode>(a)};
    blk.node_child = {node_annot_[a]};
    const int id = static_cast<int>(tree_.blocks.size());
    tree_.blocks.push_back(std::move(blk));
    tree_.parent.push_back(-1);
    if (node_annot_[a] >= 0) tree_.parent[node_annot_[a]] = id;
    block_canon_.push_back("S");
    tree_.root = id;
    root_done_ = true;
  }
  return tree_;
}

std::string Contractor::canonical_string(const DecompTree& tree) {
  // Recursive canonical serialization: each block renders its per-position
  // annotation canonical strings, minimized over cycle rotations and
  // reflections; children render before parents.
  std::vector<std::string> canon(tree.blocks.size());
  for (std::size_t i = 0; i < tree.blocks.size(); ++i) {
    const Block& b = tree.blocks[i];
    auto child_str = [&](int c) {
      return c < 0 ? std::string("-") : canon[c];
    };
    if (b.kind == BlockKind::kSingleton) {
      canon[i] = "S(" + child_str(b.node_child[0]) + ")";
      continue;
    }
    if (b.kind == BlockKind::kLeafEdge) {
      canon[i] = "L(" + child_str(b.node_child[0]) + ";" +
                 child_str(b.node_child[1]) + ";" +
                 child_str(b.edge_child[0]) + ")";
      continue;
    }
    const int L = b.length();
    std::vector<bool> is_boundary(L, false);
    for (int p : b.boundary_pos) is_boundary[p] = true;
    std::string best;
    for (int rot = 0; rot < L; ++rot) {
      for (int dir : {+1, -1}) {
        std::string s = "C" + std::to_string(L) + "[";
        for (int t = 0; t < L; ++t) {
          const int pos = ((rot + dir * t) % L + L) % L;
          const int eidx = dir > 0 ? pos : ((pos - 1) % L + L) % L;
          s += is_boundary[pos] ? "B" : "n";
          s += "(" + child_str(b.node_child[pos]) + "|" +
               child_str(b.edge_child[eidx]) + ")";
        }
        s += "]";
        if (best.empty() || s < best) best = s;
      }
    }
    canon[i] = best;
  }
  return tree.root >= 0 ? canon[tree.root] : std::string();
}

DecompTree decompose_default(const QueryGraph& q) {
  Contractor c(q);
  return c.finish();
}

}  // namespace ccbt
