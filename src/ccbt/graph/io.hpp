#pragma once
// Graph persistence.
//
// Two formats round-trip a CsrGraph:
//   * SNAP-style text — one "u v" pair per line, '#' comments — the format
//     of the paper's datasets (http://snap.stanford.edu), so a user can
//     drop in the original graphs where available;
//   * a binary CSR snapshot (magic + version + offsets + adjacency) for
//     fast reload of large generated workloads between bench runs.

#include <string>

#include "ccbt/graph/csr_graph.hpp"

namespace ccbt {

/// Write a SNAP-style text edge list (canonical u < v, sorted).
void save_graph_text(const CsrGraph& g, const std::string& path);

/// Load a SNAP-style text edge list (self loops and duplicates dropped).
CsrGraph load_graph_text(const std::string& path);

/// Write the binary CSR snapshot.
void save_graph_binary(const CsrGraph& g, const std::string& path);

/// Load a binary CSR snapshot; throws Error on bad magic, version or a
/// truncated file.
CsrGraph load_graph_binary(const std::string& path);

}  // namespace ccbt
