#include "ccbt/decomp/dot_export.hpp"

#include <sstream>

namespace ccbt {

namespace {

const char* kind_name(BlockKind k) {
  switch (k) {
    case BlockKind::kLeafEdge: return "leaf";
    case BlockKind::kCycle: return "cycle";
    case BlockKind::kSingleton: return "singleton";
  }
  return "?";
}

}  // namespace

std::string query_to_dot(const QueryGraph& q) {
  std::ostringstream os;
  os << "graph \"" << (q.name().empty() ? "query" : q.name()) << "\" {\n"
     << "  node [shape=circle];\n";
  for (int a = 0; a < q.num_nodes(); ++a) os << "  n" << a << ";\n";
  for (const auto& [a, b] : q.edge_pairs()) {
    os << "  n" << a << " -- n" << b << ";\n";
  }
  os << "}\n";
  return os.str();
}

std::string decomp_tree_to_dot(const DecompTree& tree) {
  std::ostringstream os;
  os << "digraph decomposition {\n"
     << "  node [shape=box, fontname=\"monospace\"];\n"
     << "  rankdir=BT;\n";
  for (std::size_t i = 0; i < tree.blocks.size(); ++i) {
    const Block& b = tree.blocks[i];
    os << "  b" << i << " [label=\"B" << i << " " << kind_name(b.kind)
       << "\\nnodes:";
    for (QNode a : b.nodes) os << " " << static_cast<int>(a);
    os << "\\nboundary:";
    if (b.boundary_pos.empty()) os << " (root)";
    for (int p : b.boundary_pos) os << " " << static_cast<int>(b.nodes[p]);
    os << "\"";
    if (static_cast<int>(i) == tree.root) os << ", style=bold";
    os << "];\n";
  }
  for (std::size_t i = 0; i < tree.blocks.size(); ++i) {
    const Block& b = tree.blocks[i];
    for (std::size_t p = 0; p < b.node_child.size(); ++p) {
      if (b.node_child[p] >= 0) {
        os << "  b" << b.node_child[p] << " -> b" << i
           << " [label=\"node " << static_cast<int>(b.nodes[p]) << "\"];\n";
      }
    }
    for (std::size_t e = 0; e < b.edge_child.size(); ++e) {
      if (b.edge_child[e] >= 0) {
        os << "  b" << b.edge_child[e] << " -> b" << i << " [label=\"edge "
           << static_cast<int>(b.nodes[e]) << "-"
           << static_cast<int>(
                  b.nodes[(e + 1) % b.nodes.size()])
           << (b.edge_child_flip[e] ? " (flip)" : "") << "\"];\n";
      }
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace ccbt
