#include "ccbt/engine/primitives.hpp"

#include <string>

#include "ccbt/util/error.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace ccbt {

namespace {

void check_budget(const ExecContext& cx, std::size_t size) {
  if (size > cx.opts.max_table_entries) {
    throw BudgetExceeded("projection table exceeded " +
                         std::to_string(cx.opts.max_table_entries) +
                         " entries");
  }
}

/// Run `emit(index, map)` for every index in [0, n), accumulating into
/// per-thread maps that are merged afterwards. Falls back to a single map
/// when threading is disabled or load accounting is active (the load model
/// is not thread safe and simulated runs must stay deterministic).
template <typename Emit>
AccumMap accumulate_over(const ExecContext& cx, std::size_t n, Emit&& emit) {
#ifdef _OPENMP
  if (cx.opts.use_threads && cx.load == nullptr && n > 4096) {
    const int threads = omp_get_max_threads();
    std::vector<AccumMap> maps(threads);
    bool budget_hit = false;
#pragma omp parallel num_threads(threads)
    {
      AccumMap& local = maps[omp_get_thread_num()];
#pragma omp for schedule(dynamic, 512)
      for (std::size_t i = 0; i < n; ++i) {
        if (budget_hit) continue;
        emit(i, local);
        if (local.size() > cx.opts.max_table_entries) budget_hit = true;
      }
    }
    if (budget_hit) check_budget(cx, cx.opts.max_table_entries + 1);
    AccumMap merged(maps[0].size());
    for (AccumMap& m : maps) {
      for (const TableEntry& e : m.entries()) merged.add(e.key, e.cnt);
      check_budget(cx, merged.size());
    }
    return merged;
  }
#endif
  AccumMap map;
  for (std::size_t i = 0; i < n; ++i) {
    emit(i, map);
    if ((i & 0xFFF) == 0) check_budget(cx, map.size());
  }
  check_budget(cx, map.size());
  return map;
}

}  // namespace

ProjTable init_path_from_graph(const ExecContext& cx, const ExtendOpts& o) {
  const CsrGraph& g = cx.g;
  AccumMap map = accumulate_over(
      cx, g.num_vertices(), [&](std::size_t ui, AccumMap& sink) {
        const auto u = static_cast<VertexId>(ui);
        cx.charge(u, g.degree(u));
        for (VertexId w : g.neighbors(u)) {
          if (o.anchor_higher && !cx.order.higher(u, w)) continue;
          if (cx.chi.color(u) == cx.chi.color(w)) continue;
          TableKey key;
          key.v[0] = u;
          key.v[1] = w;
          if (o.track_slot >= 0) key.v[o.track_slot] = w;
          key.sig = cx.chi.bit(u) | cx.chi.bit(w);
          sink.add(key, 1);
          cx.send(u, w, 1);
        }
      });
  cx.end_phase();
  return ProjTable::from_map(2, std::move(map));
}

ProjTable init_path_from_child(const ExecContext& cx, const ProjTable& child,
                               bool flip, const ExtendOpts& o) {
  const auto entries = child.entries();
  AccumMap map = accumulate_over(
      cx, entries.size(), [&](std::size_t i, AccumMap& sink) {
        const TableEntry& e = entries[i];
        const VertexId a = e.key.v[flip ? 1 : 0];
        const VertexId b = e.key.v[flip ? 0 : 1];
        cx.charge(b, 1);
        if (o.anchor_higher && !cx.order.higher(a, b)) return;
        TableKey key;
        key.v[0] = a;
        key.v[1] = b;
        if (o.track_slot >= 0) key.v[o.track_slot] = b;
        key.sig = e.key.sig;
        sink.add(key, e.cnt);
      });
  cx.end_phase();
  return ProjTable::from_map(2, std::move(map));
}

ProjTable extend_with_graph(const ExecContext& cx, const ProjTable& path,
                            const ExtendOpts& o) {
  const CsrGraph& g = cx.g;
  const auto entries = path.entries();
  AccumMap map = accumulate_over(
      cx, entries.size(), [&](std::size_t i, AccumMap& sink) {
        const TableEntry& e = entries[i];
        const VertexId v = e.key.v[1];
        cx.charge(v, g.degree(v));
        for (VertexId w : g.neighbors(v)) {
          if (o.anchor_higher && !cx.order.higher(e.key.v[0], w)) continue;
          const Signature w_bit = cx.chi.bit(w);
          if ((e.key.sig & w_bit) != 0) continue;
          TableKey key = e.key;
          key.v[1] = w;
          if (o.track_slot >= 0) key.v[o.track_slot] = w;
          key.sig = e.key.sig | w_bit;
          sink.add(key, e.cnt);
          cx.send(v, w, 1);
        }
      });
  cx.end_phase();
  return ProjTable::from_map(path.arity(), std::move(map));
}

ProjTable extend_with_child(const ExecContext& cx, ProjTable& path,
                            const ProjTable& child, const ExtendOpts& o) {
  path.seal(SortOrder::kByV1);
  const auto entries = path.entries();
  AccumMap map = accumulate_over(
      cx, entries.size(), [&](std::size_t i, AccumMap& sink) {
        const TableEntry& e = entries[i];
        const VertexId v = e.key.v[1];
        const Signature v_bit = cx.chi.bit(v);
        const auto group = child.group(0, v);
        cx.charge(v, group.size());
        for (const TableEntry& ce : group) {
          if (!node_join_compatible(e.key.sig, ce.key.sig, v_bit)) continue;
          const VertexId w = ce.key.v[1];
          if (o.anchor_higher && !cx.order.higher(e.key.v[0], w)) continue;
          TableKey key = e.key;
          key.v[1] = w;
          if (o.track_slot >= 0) key.v[o.track_slot] = w;
          key.sig = e.key.sig | ce.key.sig;
          sink.add(key, e.cnt * ce.cnt);
          cx.send(v, w, 1);
        }
      });
  cx.end_phase();
  return ProjTable::from_map(path.arity(), std::move(map));
}

ProjTable node_join(const ExecContext& cx, const ProjTable& path,
                    const ProjTable& child, int slot) {
  const auto entries = path.entries();
  AccumMap map = accumulate_over(
      cx, entries.size(), [&](std::size_t i, AccumMap& sink) {
        const TableEntry& e = entries[i];
        const VertexId x = e.key.v[slot];
        const Signature x_bit = cx.chi.bit(x);
        const auto group = child.group(0, x);
        cx.charge(x, group.size());
        for (const TableEntry& ce : group) {
          if (!node_join_compatible(e.key.sig, ce.key.sig, x_bit)) continue;
          TableKey key = e.key;
          key.sig = e.key.sig | ce.key.sig;
          sink.add(key, e.cnt * ce.cnt);
        }
      });
  cx.end_phase();
  return ProjTable::from_map(path.arity(), std::move(map));
}

void merge_halves(const ExecContext& cx, ProjTable& plus, ProjTable& minus,
                  const MergeSpec& spec, AccumMap& sink) {
  plus.seal(SortOrder::kByV0V1);
  minus.seal(SortOrder::kByV0V1);
  const auto pe = plus.entries();
  const auto me = minus.entries();
  auto uv_less = [](const TableEntry& a, const TableEntry& b) {
    return a.key.v[0] != b.key.v[0] ? a.key.v[0] < b.key.v[0]
                                    : a.key.v[1] < b.key.v[1];
  };
  std::size_t pi = 0, mi = 0;
  while (pi < pe.size() && mi < me.size()) {
    if (uv_less(pe[pi], me[mi])) {
      ++pi;
      continue;
    }
    if (uv_less(me[mi], pe[pi])) {
      ++mi;
      continue;
    }
    // Same (u, v) group in both tables.
    const VertexId u = pe[pi].key.v[0];
    const VertexId v = pe[pi].key.v[1];
    std::size_t pj = pi, mj = mi;
    while (pj < pe.size() && pe[pj].key.v[0] == u && pe[pj].key.v[1] == v) ++pj;
    while (mj < me.size() && me[mj].key.v[0] == u && me[mj].key.v[1] == v) ++mj;
    const Signature uv_bits = cx.chi.bit(u) | cx.chi.bit(v);
    cx.charge(v, (pj - pi) * (mj - mi));
    for (std::size_t a = pi; a < pj; ++a) {
      for (std::size_t b = mi; b < mj; ++b) {
        if (!merge_compatible(pe[a].key.sig, me[b].key.sig, uv_bits)) continue;
        TableKey key;
        for (int s = 0; s < spec.out_arity; ++s) {
          const MergeOut& src = spec.out[s];
          key.v[s] = (src.side == 0 ? pe[a] : me[b]).key.v[src.slot];
        }
        key.sig = pe[a].key.sig | me[b].key.sig;
        sink.add(key, pe[a].cnt * me[b].cnt);
        if (spec.out_arity >= 2) cx.send(v, key.v[1], 1);
      }
    }
    check_budget(cx, sink.size());
    pi = pj;
    mi = mj;
  }
  cx.end_phase();
}

ProjTable aggregate(const ExecContext& cx, const ProjTable& t, int new_arity) {
  AccumMap map(t.size());
  for (const TableEntry& e : t.entries()) {
    TableKey key;
    for (int s = 0; s < new_arity; ++s) key.v[s] = e.key.v[s];
    key.sig = e.key.sig;
    if (new_arity >= 1) cx.charge(key.v[0], 1);
    map.add(key, e.cnt);
  }
  check_budget(cx, map.size());
  cx.end_phase();
  return ProjTable::from_map(new_arity, std::move(map));
}

}  // namespace ccbt
