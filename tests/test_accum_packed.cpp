// Regression tests for the compact (packed 16-byte) AccumMap layout
// against the wide 32-byte layout: identical accumulation semantics on
// packable keys, transparent migration on the first unpackable key, and
// byte-for-byte key round-tripping through pack/unpack.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "ccbt/table/accum_map.hpp"
#include "ccbt/table/proj_table.hpp"
#include "ccbt/util/rng.hpp"

namespace ccbt {
namespace {

TableKey key2(VertexId u, VertexId v, Signature sig) {
  TableKey k;
  k.v[0] = u;
  k.v[1] = v;
  k.sig = sig;
  return k;
}

bool entry_less(const TableEntry& a, const TableEntry& b) {
  if (a.key.v[0] != b.key.v[0]) return a.key.v[0] < b.key.v[0];
  if (a.key.v[1] != b.key.v[1]) return a.key.v[1] < b.key.v[1];
  if (a.key.v[2] != b.key.v[2]) return a.key.v[2] < b.key.v[2];
  if (a.key.v[3] != b.key.v[3]) return a.key.v[3] < b.key.v[3];
  return a.key.sig < b.key.sig;
}

void expect_same_contents(std::vector<TableEntry> a,
                          std::vector<TableEntry> b) {
  ASSERT_EQ(a.size(), b.size());
  std::sort(a.begin(), a.end(), entry_less);
  std::sort(b.begin(), b.end(), entry_less);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].cnt, b[i].cnt);
  }
}

TEST(PackedKey, RoundTripsPackableKeys) {
  for (const TableKey k :
       {key2(0, 0, 0), key2(1, 2, 0b11), key2(kPacked28NoVertex - 1, 7, 255),
        key2(kNoVertex, kNoVertex, 0), key2(5, kNoVertex, 0b101)}) {
    ASSERT_TRUE(packable_key(k));
    EXPECT_EQ(unpack_key(pack_key(k)), k);
  }
}

TEST(PackedKey, RejectsWideKeys) {
  EXPECT_FALSE(packable_key(key2(1, 2, 0x100)));          // 9-color sig
  EXPECT_FALSE(packable_key(key2(kPacked28NoVertex, 2, 1)));  // 28-bit max
  TableKey tracked = key2(1, 2, 1);
  tracked.v[2] = 3;  // tracked slot in use
  EXPECT_FALSE(packable_key(tracked));
}

TEST(PackedKey, PackingIsInjective) {
  // Distinct packable keys map to distinct words (spot check over a grid).
  std::vector<std::uint64_t> seen;
  for (VertexId u = 0; u < 20; ++u) {
    for (VertexId v = 0; v < 20; ++v) {
      for (Signature s = 0; s < 8; ++s) seen.push_back(pack_key(key2(u, v, s)));
    }
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(PackedAccumMap, MatchesWideLayoutOnRandomWorkload) {
  Rng rng(42);
  AccumMap packed(16, /*compact=*/true);
  AccumMap wide(16, /*compact=*/false);
  EXPECT_TRUE(packed.packed());
  EXPECT_FALSE(wide.packed());
  for (int i = 0; i < 20000; ++i) {
    const TableKey k = key2(static_cast<VertexId>(rng.below(300)),
                            static_cast<VertexId>(rng.below(300)),
                            static_cast<Signature>(rng.below(32)));
    const Count c = 1 + rng.below(5);
    packed.add(k, c);
    wide.add(k, c);
  }
  EXPECT_TRUE(packed.packed());  // every key packable: never migrated
  EXPECT_EQ(packed.size(), wide.size());
  expect_same_contents(packed.take_entries(), wide.take_entries());
}

TEST(PackedAccumMap, MigratesOnFirstWideKeyAndKeepsCounts) {
  Rng rng(7);
  AccumMap packed(16, /*compact=*/true);
  AccumMap wide(16, /*compact=*/false);
  auto add_both = [&](const TableKey& k, Count c) {
    packed.add(k, c);
    wide.add(k, c);
  };
  for (int i = 0; i < 5000; ++i) {
    add_both(key2(static_cast<VertexId>(rng.below(100)),
                  static_cast<VertexId>(rng.below(100)),
                  static_cast<Signature>(rng.below(16))),
             1);
  }
  EXPECT_TRUE(packed.packed());
  // A tracked-slot key forces the wide layout mid-stream.
  TableKey tracked = key2(3, 4, 1);
  tracked.v[2] = 9;
  add_both(tracked, 2);
  EXPECT_FALSE(packed.packed());
  // Accumulation continues across the migration.
  for (int i = 0; i < 5000; ++i) {
    add_both(key2(static_cast<VertexId>(rng.below(100)),
                  static_cast<VertexId>(rng.below(100)),
                  static_cast<Signature>(rng.below(16))),
             3);
  }
  EXPECT_EQ(packed.size(), wide.size());
  expect_same_contents(packed.take_entries(), wide.take_entries());
}

TEST(PackedAccumMap, ForEachVisitsBothLayouts) {
  AccumMap packed(16, /*compact=*/true);
  packed.add(key2(1, 2, 3), 5);
  packed.add(key2(1, 2, 3), 2);
  packed.add(key2(4, 5, 6), 1);
  Count total = 0;
  std::size_t n = 0;
  packed.for_each([&](const TableKey&, Count c) {
    total += c;
    ++n;
  });
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(total, 8u);
  EXPECT_THROW(packed.entries(), Error);  // wide view undefined while packed
}

TEST(PackedAccumMap, SealsIntoIdenticalProjTables) {
  Rng rng(99);
  AccumMap packed(16, /*compact=*/true);
  AccumMap wide(16, /*compact=*/false);
  for (int i = 0; i < 4000; ++i) {
    const TableKey k = key2(static_cast<VertexId>(rng.below(64)),
                            static_cast<VertexId>(rng.below(64)),
                            static_cast<Signature>(rng.below(8)));
    packed.add(k, 1);
    wide.add(k, 1);
  }
  ProjTable tp = ProjTable::from_map(2, std::move(packed));
  ProjTable tw = ProjTable::from_map(2, std::move(wide));
  tp.seal(SortOrder::kByV0, 64);
  tw.seal(SortOrder::kByV0, 64);
  ASSERT_EQ(tp.size(), tw.size());
  EXPECT_EQ(tp.total(), tw.total());
  for (VertexId u = 0; u < 64; ++u) {
    const auto gp = tp.group(0, u);
    const auto gw = tw.group(0, u);
    ASSERT_EQ(gp.size(), gw.size()) << "bucket " << u;
    for (std::size_t i = 0; i < gp.size(); ++i) {
      EXPECT_EQ(gp[i].key, gw[i].key);
      EXPECT_EQ(gp[i].cnt, gw[i].cnt);
    }
  }
}

}  // namespace
}  // namespace ccbt
