#include "ccbt/engine/leaf_solver.hpp"

#include "ccbt/util/error.hpp"

namespace ccbt {

ProjTable solve_leaf_edge(const ExecContext& cx, const Block& blk,
                          TablePool& pool) {
  if (blk.kind != BlockKind::kLeafEdge) {
    throw Error("solve_leaf_edge: not a leaf-edge block");
  }
  // Table keyed (π(a)=slot0, π(b)=slot1): the edge itself...
  ExtendOpts no_opts;
  ProjTable table;
  const int edge_child = blk.edge_child[0];
  if (edge_child < 0) {
    table = init_path_from_graph(cx, no_opts);
  } else {
    // The child's first boundary must be the block's boundary node a.
    table = init_path_from_child(
        cx, pool.oriented(edge_child, blk.edge_child_flip[0]),
        /*flip=*/false, no_opts);
  }
  // ...joined with the leaf node b's annotation...
  if (blk.node_child[1] >= 0) {
    table = node_join(cx, table, pool.get(blk.node_child[1]), /*slot=*/1);
  }
  // ...and the boundary node a's annotation...
  if (blk.node_child[0] >= 0) {
    table = node_join(cx, table, pool.get(blk.node_child[0]), /*slot=*/0);
  }
  // ...then projected onto a.
  return aggregate(cx, table, /*new_arity=*/1);
}

}  // namespace ccbt
