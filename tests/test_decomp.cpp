// Unit tests for the decomposition machinery: block finding, the Section
// 4.1 contraction cases, the Figure 2 Satellite walk-through, and the
// structural invariants every decomposition tree must satisfy.

#include <gtest/gtest.h>

#include <set>

#include "ccbt/decomp/decompose.hpp"
#include "ccbt/decomp/tree_enum.hpp"
#include "ccbt/query/catalog.hpp"
#include "ccbt/query/random_tw2.hpp"
#include "ccbt/util/error.hpp"

namespace ccbt {
namespace {

/// Structural invariants of any decomposition tree (DESIGN.md Section 5):
///  * every original query edge appears as an unannotated edge of exactly
///    one block;
///  * every query node is consumed exactly once (as a cycle non-boundary
///    node, a leaf node, or by the root);
///  * parents come after children; annotations reference earlier blocks.
void check_tree_invariants(const DecompTree& tree, const QueryGraph& q) {
  ASSERT_GE(tree.root, 0);
  ASSERT_EQ(tree.blocks.size(), tree.parent.size());
  ASSERT_EQ(tree.root, static_cast<int>(tree.blocks.size()) - 1);

  std::multiset<std::pair<int, int>> covered_edges;
  std::multiset<int> consumed;
  for (std::size_t i = 0; i < tree.blocks.size(); ++i) {
    const Block& b = tree.blocks[i];
    const int L = b.length();
    // Children precede parents.
    for (int c : b.node_child) {
      if (c >= 0) {
        EXPECT_LT(c, static_cast<int>(i));
        EXPECT_EQ(tree.parent[c], static_cast<int>(i));
      }
    }
    for (int c : b.edge_child) {
      if (c >= 0) EXPECT_LT(c, static_cast<int>(i));
    }
    // Edge coverage and node consumption.
    if (b.kind == BlockKind::kCycle) {
      EXPECT_GE(L, 3);
      EXPECT_LE(b.boundary_count(), 2);
      for (int e = 0; e < L; ++e) {
        if (b.edge_child[e] < 0) {
          const int x = b.nodes[e], y = b.nodes[(e + 1) % L];
          covered_edges.insert({std::min(x, y), std::max(x, y)});
        }
      }
      std::set<int> bpos(b.boundary_pos.begin(), b.boundary_pos.end());
      for (int p = 0; p < L; ++p) {
        if (!bpos.count(p)) consumed.insert(b.nodes[p]);
      }
    } else if (b.kind == BlockKind::kLeafEdge) {
      if (b.edge_child[0] < 0) {
        const int x = b.nodes[0], y = b.nodes[1];
        covered_edges.insert({std::min(x, y), std::max(x, y)});
      }
      consumed.insert(b.nodes[1]);
    } else {
      consumed.insert(b.nodes[0]);
    }
    // The root consumes its boundary-free nodes; non-roots leave their
    // boundary nodes to ancestors.
    if (static_cast<int>(i) == tree.root && b.kind == BlockKind::kCycle) {
      EXPECT_EQ(b.boundary_count(), 0);
    }
  }
  // Exact edge coverage.
  std::multiset<std::pair<int, int>> expected_edges;
  for (const auto& [a, c] : q.edge_pairs()) expected_edges.insert({a, c});
  EXPECT_EQ(covered_edges, expected_edges);
  // Exact node consumption, except boundary nodes of the root cycle:
  // a root cycle consumes all of its nodes.
  std::multiset<int> expected_nodes;
  for (int v = 0; v < q.num_nodes(); ++v) expected_nodes.insert(v);
  EXPECT_EQ(consumed, expected_nodes);
}

TEST(Decompose, TriangleIsSingleRootCycle) {
  const DecompTree tree = decompose_default(q_cycle(3));
  ASSERT_EQ(tree.blocks.size(), 1u);
  EXPECT_EQ(tree.blocks[0].kind, BlockKind::kCycle);
  EXPECT_EQ(tree.blocks[0].boundary_count(), 0);
  check_tree_invariants(tree, q_cycle(3));
}

TEST(Decompose, PathDecomposesToLeafChain) {
  const QueryGraph q = q_path(5);
  const DecompTree tree = decompose_default(q);
  int leaf_blocks = 0;
  for (const Block& b : tree.blocks) {
    leaf_blocks += (b.kind == BlockKind::kLeafEdge);
  }
  EXPECT_EQ(leaf_blocks, 4);  // 4 edges, all leaf contractions
  EXPECT_EQ(tree.blocks[tree.root].kind, BlockKind::kSingleton);
  check_tree_invariants(tree, q);
}

TEST(Decompose, DiamondContractsTriangleThenRoot) {
  const DecompTree tree = decompose_default(q_glet2());
  ASSERT_EQ(tree.blocks.size(), 2u);
  EXPECT_EQ(tree.blocks[0].kind, BlockKind::kCycle);
  EXPECT_EQ(tree.blocks[0].length(), 3);
  EXPECT_EQ(tree.blocks[0].boundary_count(), 2);
  EXPECT_EQ(tree.blocks[1].kind, BlockKind::kCycle);
  EXPECT_EQ(tree.blocks[1].boundary_count(), 0);
  // The root triangle must carry the child as an edge annotation.
  int annotated = 0;
  for (int c : tree.blocks[1].edge_child) annotated += (c >= 0);
  EXPECT_EQ(annotated, 1);
  check_tree_invariants(tree, q_glet2());
}

TEST(Decompose, SatelliteMatchesFigure2Narrative) {
  // Figure 2 shows one valid decomposition process: blocks B1 (5-cycle),
  // B2 (leaf f-h), B3 (4-cycle a,f,g,c with B1 and B2 as children),
  // B4 (triangle i,j,k), root triangle (i,f,g). The enumeration must
  // contain a tree with exactly this shape, and all trees must be valid.
  const QueryGraph q = q_satellite();
  bool figure2_found = false;
  for (const DecompTree& tree : enumerate_decompositions(q)) {
    check_tree_invariants(tree, q);
    if (tree.blocks.size() != 5) continue;
    std::multiset<int> cycle_lengths;
    int leaf_count = 0;
    for (const Block& b : tree.blocks) {
      if (b.kind == BlockKind::kCycle) cycle_lengths.insert(b.length());
      if (b.kind == BlockKind::kLeafEdge) ++leaf_count;
    }
    figure2_found |= (leaf_count == 1 &&
                      cycle_lengths == std::multiset<int>{3, 3, 4, 5} &&
                      tree.blocks[tree.root].kind == BlockKind::kCycle &&
                      tree.blocks[tree.root].length() == 3);
  }
  EXPECT_TRUE(figure2_found);
}

TEST(Decompose, EveryCatalogQueryDecomposes) {
  for (const std::string& name : catalog_names()) {
    const QueryGraph q = named_query(name);
    const DecompTree tree = decompose_default(q);
    check_tree_invariants(tree, q);
  }
}

TEST(Decompose, K4Throws) {
  QueryGraph k4(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  EXPECT_THROW(decompose_default(k4), UnsupportedQuery);
}

TEST(Decompose, SingleNodeQuery) {
  const QueryGraph q(1, "node");
  const DecompTree tree = decompose_default(q);
  ASSERT_EQ(tree.blocks.size(), 1u);
  EXPECT_EQ(tree.blocks[0].kind, BlockKind::kSingleton);
  EXPECT_EQ(tree.blocks[0].node_child[0], -1);
}

TEST(Decompose, TwoNodeQuery) {
  const DecompTree tree = decompose_default(q_path(2));
  ASSERT_EQ(tree.blocks.size(), 2u);
  EXPECT_EQ(tree.blocks[0].kind, BlockKind::kLeafEdge);
  EXPECT_EQ(tree.blocks[1].kind, BlockKind::kSingleton);
}

TEST(Decompose, ThetaGraphUsesTwoBoundaryCycle) {
  const DecompTree tree = decompose_default(named_query("theta"));
  check_tree_invariants(tree, named_query("theta"));
  // First contraction must be a cycle with exactly two boundary nodes.
  EXPECT_EQ(tree.blocks[0].kind, BlockKind::kCycle);
  EXPECT_EQ(tree.blocks[0].boundary_count(), 2);
}

class RandomDecomposeSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomDecomposeSweep, InvariantsHold) {
  RandomTw2Options opts;
  opts.target_nodes = 5 + (GetParam() % 10);
  const QueryGraph q = random_tw2_query(opts, 1000 + GetParam());
  const DecompTree tree = decompose_default(q);
  check_tree_invariants(tree, q);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDecomposeSweep, ::testing::Range(0, 80));

TEST(TreeEnum, Brain1HasAtLeastTwoTrees) {
  // Section 6: brain1 admits two decomposition trees (contract the
  // 4-cycle first, or the 6-cycle first).
  const auto trees = enumerate_decompositions(q_brain1());
  EXPECT_GE(trees.size(), 2u);
  for (const DecompTree& t : trees) check_tree_invariants(t, q_brain1());
}

TEST(TreeEnum, TriangleHasExactlyOneTree) {
  EXPECT_EQ(enumerate_decompositions(q_cycle(3)).size(), 1u);
}

TEST(TreeEnum, StarSymmetryPruned) {
  // Without candidate-signature pruning a 7-leaf star explodes into 7!
  // contraction orders; the canonical tree set must stay tiny.
  const auto trees = enumerate_decompositions(q_star(7));
  EXPECT_GE(trees.size(), 1u);
  EXPECT_LE(trees.size(), 8u);
}

TEST(TreeEnum, AllTreesAreDistinct) {
  const auto trees = enumerate_decompositions(q_satellite());
  std::set<std::string> canon;
  for (const DecompTree& t : trees) {
    EXPECT_TRUE(canon.insert(Contractor::canonical_string(t)).second);
  }
}

TEST(TreeEnum, RespectsLimits) {
  EnumLimits limits;
  limits.max_trees = 2;
  const auto trees = enumerate_decompositions(q_brain2(), limits);
  EXPECT_LE(trees.size(), 2u);
}

}  // namespace
}  // namespace ccbt
