// VirtualComm: bulk-synchronous delivery semantics, deterministic ordering
// and traffic accounting.

#include <gtest/gtest.h>

#include <vector>

#include "ccbt/dist/comm.hpp"
#include "ccbt/util/error.hpp"

namespace ccbt {
namespace {

TableEntry entry(VertexId a, VertexId b, Signature sig, Count cnt) {
  TableEntry e;
  e.key.v[0] = a;
  e.key.v[1] = b;
  e.key.sig = sig;
  e.cnt = cnt;
  return e;
}

TEST(Comm, ZeroRanksRejected) {
  EXPECT_THROW(VirtualComm(0), Error);
}

TEST(Comm, NothingDeliveredBeforeExchange) {
  VirtualComm comm(2);
  comm.send(0, 1, entry(1, 2, 0b11, 1));
  EXPECT_TRUE(comm.inbox(1).empty());
  comm.exchange();
  EXPECT_EQ(comm.inbox(1).size(), 1u);
}

TEST(Comm, SelfSendIsDelivered) {
  VirtualComm comm(3);
  comm.send(1, 1, entry(7, 8, 0b01, 5));
  comm.exchange();
  ASSERT_EQ(comm.inbox(1).size(), 1u);
  EXPECT_EQ(comm.inbox(1)[0].cnt, 5u);
  EXPECT_TRUE(comm.inbox(0).empty());
  EXPECT_TRUE(comm.inbox(2).empty());
}

TEST(Comm, DeliveryConcatenatesSendersInRankOrder) {
  VirtualComm comm(4);
  comm.send(2, 0, entry(20, 0, 0, 1));
  comm.send(0, 0, entry(10, 0, 0, 1));
  comm.send(3, 0, entry(30, 0, 0, 1));
  comm.exchange();
  const auto in = comm.inbox(0);
  ASSERT_EQ(in.size(), 3u);
  EXPECT_EQ(in[0].key.v[0], 10u);  // from rank 0 first
  EXPECT_EQ(in[1].key.v[0], 20u);
  EXPECT_EQ(in[2].key.v[0], 30u);
}

TEST(Comm, ExchangeClearsPreviousInboxes) {
  VirtualComm comm(2);
  comm.send(0, 1, entry(1, 2, 0, 1));
  comm.exchange();
  ASSERT_EQ(comm.inbox(1).size(), 1u);
  comm.exchange();  // nothing queued
  EXPECT_TRUE(comm.inbox(1).empty());
}

TEST(Comm, OutboxDrainedAfterExchange) {
  VirtualComm comm(2);
  comm.send(0, 1, entry(1, 2, 0, 1));
  comm.exchange();
  comm.exchange();
  EXPECT_TRUE(comm.inbox(1).empty());  // not re-delivered
  EXPECT_EQ(comm.stats().entries_sent, 1u);
}

TEST(Comm, StatsCountOffRankOnly) {
  VirtualComm comm(3);
  comm.send(0, 0, entry(1, 1, 0, 1));  // local
  comm.send(0, 1, entry(1, 2, 0, 1));  // off rank
  comm.send(2, 1, entry(3, 2, 0, 1));  // off rank
  comm.exchange();
  EXPECT_EQ(comm.stats().supersteps, 1u);
  EXPECT_EQ(comm.stats().entries_sent, 3u);
  EXPECT_EQ(comm.stats().off_rank_entries, 2u);
  EXPECT_EQ(comm.stats().max_step_recv, 2u);  // rank 1 received two
  EXPECT_EQ(comm.stats().off_rank_bytes(),
            2u * (sizeof(TableKey) + sizeof(Count)));
}

TEST(Comm, SuperstepCounterAdvances) {
  VirtualComm comm(2);
  comm.exchange();
  comm.exchange();
  comm.exchange();
  EXPECT_EQ(comm.stats().supersteps, 3u);
}

TEST(Comm, AllreduceSumsPerRankContributions) {
  VirtualComm comm(4);
  const std::vector<Count> parts{1, 10, 100, 1000};
  EXPECT_EQ(comm.allreduce_sum(parts), 1111u);
}

TEST(Comm, ManyEntriesSurviveRoundTrip) {
  VirtualComm comm(5);
  for (std::uint32_t from = 0; from < 5; ++from) {
    for (VertexId i = 0; i < 100; ++i) {
      comm.send(from, (from + i) % 5, entry(from, i, i & 0xFF, i + 1));
    }
  }
  comm.exchange();
  std::size_t total = 0;
  for (std::uint32_t r = 0; r < 5; ++r) total += comm.inbox(r).size();
  EXPECT_EQ(total, 500u);
  EXPECT_EQ(comm.stats().entries_sent, 500u);
}

}  // namespace
}  // namespace ccbt
