// distributed_demo — the Section 7 machinery made visible: run the same
// colorful count through the shared-memory engine (with the BSP load
// model) and the virtual-MPI distributed engine, confirm they agree
// operation-for-operation, and draw the per-rank load profile that
// explains why DB scales and PS does not.
//
// Build & run:  ./examples/distributed_demo

#include <algorithm>
#include <iostream>
#include <string>

#include "ccbt/core/ccbt.hpp"

namespace {

using namespace ccbt;

void draw_load_profile(const std::string& label,
                       const std::vector<std::uint64_t>& rank_ops) {
  const std::uint64_t peak =
      *std::max_element(rank_ops.begin(), rank_ops.end());
  std::cout << label << " per-rank load (peak = " << peak << " ops):\n";
  for (std::size_t r = 0; r < rank_ops.size(); ++r) {
    const int width = peak == 0 ? 0
                                : static_cast<int>(56.0 * rank_ops[r] / peak);
    std::cout << "  rank " << (r < 10 ? " " : "") << r << " |"
              << std::string(width, '#') << " " << rank_ops[r] << "\n";
  }
}

}  // namespace

int main() {
  using namespace ccbt;

  const std::uint32_t kRanks = 16;
  const CsrGraph g = chung_lu_power_law(6'000, 1.5, 8.0, 11);
  const QueryGraph q = named_query("ecoli1");
  const Plan plan = make_plan(q);
  const Coloring chi(g.num_vertices(), q.num_nodes(), 2026);
  std::cout << "graph: " << g.num_vertices() << " vertices, "
            << g.num_edges() << " edges, max degree " << g.max_degree()
            << "\nquery: " << q.name() << " (k=" << q.num_nodes() << "), "
            << kRanks << " virtual ranks\n\n";

  for (Algo algo : {Algo::kPS, Algo::kDB}) {
    ExecOptions opts;
    opts.algo = algo;

    // Shared-memory run with the BSP load model attached.
    ExecOptions shared_opts = opts;
    shared_opts.sim_ranks = kRanks;
    CountingSession session(g, q, plan, shared_opts);
    const ExecStats shared = session.count_colorful(chi);

    // Physically sharded virtual-MPI run.
    const DistStats dist = run_plan_distributed(g, plan.tree, chi, kRanks,
                                                opts);

    std::cout << "=== " << algo_name(algo) << " ===\n"
              << "colorful matches: shared " << shared.colorful
              << ", distributed " << dist.colorful
              << (shared.colorful == dist.colorful ? "  [agree]\n"
                                                   : "  [MISMATCH!]\n")
              << "total ops:        shared " << shared.total_ops
              << ", distributed " << dist.total_ops
              << (shared.total_ops == dist.total_ops ? "  [agree]\n"
                                                     : "  [MISMATCH!]\n")
              << "load imbalance (max/avg): "
              << (shared.avg_rank_ops > 0
                      ? static_cast<double>(shared.max_rank_ops) /
                            shared.avg_rank_ops
                      : 0.0)
              << "\ntransport: " << dist.transport.entries_sent
              << " entries moved over " << dist.transport.supersteps
              << " supersteps, "
              << dist.transport.off_rank_bytes() / 1024 << " KiB off-rank\n";

    // Re-run the shared engine just to harvest the per-rank profile.
    LoadModel load(kRanks);
    ExecContext cx{g, chi,
                   DegreeOrder(g),
                   BlockPartition(g.num_vertices(), kRanks), &load, opts};
    run_plan(cx, plan.tree);
    draw_load_profile(algo_name(algo), load.rank_ops());
    std::cout << "\n";
  }
  std::cout << "The PS profile spikes at the ranks owning the hubs; DB's "
               "is flat —\nthe load-balancing effect that drives Figures "
               "11-13 of the paper.\n";
  return 0;
}
