// The Section 8.2 contrast and the FASCIA lineage: tree queries are
// linear-time for color coding while treewidth-2 queries are not.
//
// Part 1 reproduces the paper's remark that "a 12-vertex complete binary
// tree query requires 2 seconds on average, in contrast to the 10-vertex
// brain3 query which requires nearly 2 minutes": the shape to verify is
// that the *larger* tree query costs orders of magnitude less than the
// smaller cyclic query.
//
// Part 2 compares the dedicated treelet DP (the Slota-Madduri baseline
// algorithm class) with the general treewidth-2 engine on tree queries —
// both must agree exactly; the DP wins on wall time because it keys its
// tables by a single vertex, never materializing the pair-keyed path
// tables the general engine uses.

#include "common.hpp"

#include "ccbt/tree/tree_dp.hpp"

int main() {
  using namespace ccbt;
  using namespace ccbt::bench;
  print_header("Tree baseline — Section 8.2 contrast + treelet DP",
               "binary_tree12 vs brain3; tree DP vs general engine");

  const CsrGraph g = make_workload("enron", bench_scale());
  const Coloring chi12(g.num_vertices(), 12, 7);

  std::cout << "-- Part 1: 12-node tree vs 10-node cyclic query (enron "
               "stand-in) --\n";
  {
    TextTable t({"query", "k", "solver", "wall s", "ops"});
    const QueryGraph tree12 = q_complete_binary_tree(12);
    const TreeDpStats dp = count_colorful_tree_stats(g, tree12, chi12);
    t.add_row({"binary_tree12", "12", "tree DP",
               TextTable::num(dp.wall_seconds, 3),
               std::to_string(dp.operations)});

    const QueryGraph brain3 = named_query("brain3");
    const Plan plan = make_plan(brain3);
    const CellResult db = run_cell(g, brain3, plan, Algo::kDB, 1, 7);
    t.add_row({"brain3", "10", "engine DB",
               fmt_or_dnf(db.ok, db.wall, 3),
               db.ok ? std::to_string(db.total_ops) : "DNF"});
    t.print(std::cout);
    std::cout << "(shape: the larger tree query is far cheaper than the "
                 "smaller cyclic one)\n\n";
  }

  std::cout << "-- Part 2: treelet DP vs general engine on tree queries --\n";
  {
    TextTable t({"query", "k", "agree", "DP wall s", "engine wall s",
                 "DP ops", "engine ops", "ops ratio"});
    std::vector<QueryGraph> trees;
    for (int k : {5, 7, 9}) {
      trees.push_back(random_tree_query(k, 1000 + k));
      trees.back().set_name("rtree" + std::to_string(k));
    }
    trees.push_back(q_complete_binary_tree(7));
    trees.push_back(q_star(4));

    for (const QueryGraph& q : trees) {
      const Coloring chi(g.num_vertices(), q.num_nodes(), 11);
      const TreeDpStats dp = count_colorful_tree_stats(g, q, chi);

      ExecOptions opts;
      opts.algo = Algo::kDB;
      opts.sim_ranks = 1;  // enable op accounting
      opts.max_table_entries = bench_budget();
      CountingSession session(g, q, make_plan(q), opts);
      const ExecStats eng = session.count_colorful(chi);

      const double ratio =
          dp.operations == 0
              ? 0.0
              : static_cast<double>(eng.total_ops) /
                    static_cast<double>(dp.operations);
      t.add_row({q.name(), std::to_string(q.num_nodes()),
                 dp.colorful == eng.colorful ? "yes" : "NO",
                 TextTable::num(dp.wall_seconds, 3),
                 TextTable::num(eng.wall_seconds, 3),
                 std::to_string(dp.operations),
                 std::to_string(eng.total_ops), TextTable::num(ratio, 2)});
    }
    t.print(std::cout);
    std::cout << "(agree must be yes everywhere; wall time is the headline "
                 "— ops are counted\n under each solver's own metric: DP "
                 "fold attempts vs engine join operations)\n";
  }
  return 0;
}
