// Distributed engine cross-validation: the virtual-MPI run must produce
// exactly the shared-memory engine's colorful count AND its modeled load
// (total/max/avg ops, sim_time, modeled comm), for every algorithm and
// rank count — plus transport-layer invariants the model cannot see.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "ccbt/core/color_coding.hpp"
#include "ccbt/core/exact.hpp"
#include "ccbt/dist/dist_engine.hpp"
#include "ccbt/graph/generators.hpp"
#include "ccbt/query/catalog.hpp"
#include "ccbt/query/random_tw2.hpp"
#include "ccbt/util/error.hpp"

namespace ccbt {
namespace {

ExecStats shared_run(const CsrGraph& g, const QueryGraph& q,
                     const Coloring& chi, Algo algo, std::uint32_t ranks) {
  ExecOptions opts;
  opts.algo = algo;
  opts.sim_ranks = ranks;
  CountingSession session(g, q, make_plan(q), opts);
  return session.count_colorful(chi);
}

DistStats dist_run(const CsrGraph& g, const QueryGraph& q,
                   const Coloring& chi, Algo algo, std::uint32_t ranks) {
  ExecOptions opts;
  opts.algo = algo;
  return run_plan_distributed(g, make_plan(q).tree, chi, ranks, opts);
}

void expect_parity(const CsrGraph& g, const QueryGraph& q, Algo algo,
                   std::uint32_t ranks, std::uint64_t color_seed) {
  const Coloring chi(g.num_vertices(), q.num_nodes(), color_seed);
  const ExecStats shared = shared_run(g, q, chi, algo, ranks);
  const DistStats dist = dist_run(g, q, chi, algo, ranks);
  const std::string label = std::string(algo_name(algo)) + " " + q.name() +
                            " R=" + std::to_string(ranks);
  EXPECT_EQ(dist.colorful, shared.colorful) << label;
  EXPECT_EQ(dist.total_ops, shared.total_ops) << label;
  EXPECT_EQ(dist.max_rank_ops, shared.max_rank_ops) << label;
  EXPECT_DOUBLE_EQ(dist.avg_rank_ops, shared.avg_rank_ops) << label;
  EXPECT_EQ(dist.total_comm, shared.total_comm) << label;
  EXPECT_DOUBLE_EQ(dist.sim_time, shared.sim_time) << label;
}

// ---------------------------------------------------------------------
// Correctness against the exact oracle.

TEST(DistEngine, TriangleMatchesOracle) {
  const CsrGraph g = erdos_renyi(30, 90, 3);
  const QueryGraph q = q_cycle(3);
  const Coloring chi(g.num_vertices(), 3, 11);
  const Count oracle = count_colorful_exact(g, q, chi);
  for (std::uint32_t ranks : {1u, 2u, 7u, 32u}) {
    EXPECT_EQ(dist_run(g, q, chi, Algo::kDB, ranks).colorful, oracle)
        << "R=" << ranks;
  }
}

TEST(DistEngine, C5MatchesOracleAllAlgos) {
  const CsrGraph g = erdos_renyi(26, 65, 4);
  const QueryGraph q = q_cycle(5);
  const Coloring chi(g.num_vertices(), 5, 12);
  const Count oracle = count_colorful_exact(g, q, chi);
  for (Algo algo : {Algo::kPS, Algo::kPSEven, Algo::kDB}) {
    EXPECT_EQ(dist_run(g, q, chi, algo, 8).colorful, oracle)
        << algo_name(algo);
  }
}

TEST(DistEngine, AnnotatedQueriesMatchOracle) {
  const CsrGraph g = erdos_renyi(24, 60, 5);
  for (const char* name : {"wiki", "youtube", "glet1", "glet2", "ecoli1"}) {
    const QueryGraph q = named_query(name);
    const Coloring chi(g.num_vertices(), q.num_nodes(), 13);
    const Count oracle = count_colorful_exact(g, q, chi);
    EXPECT_EQ(dist_run(g, q, chi, Algo::kDB, 6).colorful, oracle) << name;
  }
}

TEST(DistEngine, TreeQueryMatchesOracle) {
  const CsrGraph g = erdos_renyi(25, 55, 6);
  const QueryGraph q = q_star(3);
  const Coloring chi(g.num_vertices(), q.num_nodes(), 14);
  EXPECT_EQ(dist_run(g, q, chi, Algo::kDB, 5).colorful,
            count_colorful_exact(g, q, chi));
}

TEST(DistEngine, SingleNodeQuery) {
  const CsrGraph g = erdos_renyi(20, 30, 7);
  const QueryGraph q(1, "node");
  const Coloring chi(g.num_vertices(), 1, 15);
  EXPECT_EQ(dist_run(g, q, chi, Algo::kDB, 4).colorful, 20u);
}

// ---------------------------------------------------------------------
// Exact load-model parity with the shared engine.

struct ParityCase {
  const char* query;
  Algo algo;
  std::uint32_t ranks;
};

class DistParity : public ::testing::TestWithParam<ParityCase> {};

TEST_P(DistParity, MatchesSharedEngineModel) {
  const ParityCase& pc = GetParam();
  const CsrGraph g = chung_lu_power_law(300, 1.5, 6.0, 21);
  expect_parity(g, named_query(pc.query), pc.algo, pc.ranks, 77);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DistParity,
    ::testing::Values(ParityCase{"triangle", Algo::kPS, 4},
                      ParityCase{"triangle", Algo::kDB, 4},
                      ParityCase{"glet1", Algo::kPS, 8},
                      ParityCase{"glet1", Algo::kDB, 8},
                      ParityCase{"glet2", Algo::kDB, 8},
                      ParityCase{"wiki", Algo::kPS, 16},
                      ParityCase{"wiki", Algo::kDB, 16},
                      ParityCase{"youtube", Algo::kDB, 32},
                      ParityCase{"dros", Algo::kDB, 8},
                      ParityCase{"ecoli1", Algo::kPSEven, 8},
                      ParityCase{"ecoli1", Algo::kDB, 8}),
    [](const ::testing::TestParamInfo<ParityCase>& info) {
      std::string algo = algo_name(info.param.algo);
      for (char& c : algo) {
        if (c == '-') c = '_';
      }
      return std::string(info.param.query) + "_" + algo + "_R" +
             std::to_string(info.param.ranks);
    });

TEST(DistEngine, ParityOnGridGraph) {
  const CsrGraph g = grid2d(12, 12, 20, 8);
  expect_parity(g, q_cycle(4), Algo::kDB, 8, 31);
}

TEST(DistEngine, ParityOnRmat) {
  RmatParams params;
  params.scale = 8;
  params.edge_factor = 6;
  const CsrGraph g = rmat(params, 9);
  expect_parity(g, named_query("youtube"), Algo::kDB, 16, 32);
}

TEST(DistEngine, ParityOnRandomTw2Queries) {
  const CsrGraph g = erdos_renyi(60, 150, 10);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    RandomTw2Options qo;
    qo.target_nodes = 7;
    const QueryGraph q = random_tw2_query(qo, seed);
    expect_parity(g, q, Algo::kDB, 8, 40 + seed);
  }
}

// ---------------------------------------------------------------------
// Transport-layer invariants.

TEST(DistEngine, SingleRankHasNoOffRankTraffic) {
  const CsrGraph g = erdos_renyi(30, 70, 11);
  const QueryGraph q = named_query("wiki");
  const Coloring chi(g.num_vertices(), q.num_nodes(), 50);
  const DistStats s = dist_run(g, q, chi, Algo::kDB, 1);
  EXPECT_EQ(s.transport.off_rank_entries, 0u);
  EXPECT_GT(s.transport.entries_sent, 0u);
}

TEST(DistEngine, OffRankTrafficGrowsWithRanks) {
  const CsrGraph g = chung_lu_power_law(200, 1.6, 5.0, 12);
  const QueryGraph q = q_cycle(4);
  const Coloring chi(g.num_vertices(), 4, 51);
  const DistStats s2 = dist_run(g, q, chi, Algo::kDB, 2);
  const DistStats s16 = dist_run(g, q, chi, Algo::kDB, 16);
  EXPECT_EQ(s2.colorful, s16.colorful);
  EXPECT_GT(s16.transport.off_rank_entries, s2.transport.off_rank_entries);
}

TEST(DistEngine, ActualTrafficAtLeastModeledTraffic) {
  // The model sees extension and merge routing only; the transport also
  // pays for resharding and orientation, so actual >= modeled off-rank
  // cannot be asserted entry-for-entry, but total sends must dominate the
  // modeled communication volume.
  const CsrGraph g = chung_lu_power_law(200, 1.6, 5.0, 13);
  const QueryGraph q = named_query("ecoli1");
  const Coloring chi(g.num_vertices(), q.num_nodes(), 52);
  const DistStats s = dist_run(g, q, chi, Algo::kDB, 8);
  EXPECT_GE(s.transport.entries_sent, s.total_comm);
}

TEST(DistEngine, CountInvariantAcrossRankCounts) {
  const CsrGraph g = chung_lu_power_law(150, 1.5, 5.0, 14);
  const QueryGraph q = named_query("glet2");
  const Coloring chi(g.num_vertices(), q.num_nodes(), 53);
  const Count base = dist_run(g, q, chi, Algo::kDB, 1).colorful;
  for (std::uint32_t ranks : {2u, 3u, 5u, 12u, 64u, 512u}) {
    EXPECT_EQ(dist_run(g, q, chi, Algo::kDB, ranks).colorful, base)
        << "R=" << ranks;
  }
}

TEST(DistEngine, MoreRanksThanVerticesStillCorrect) {
  const CsrGraph g = erdos_renyi(12, 22, 15);
  const QueryGraph q = q_cycle(3);
  const Coloring chi(g.num_vertices(), 3, 54);
  EXPECT_EQ(dist_run(g, q, chi, Algo::kDB, 64).colorful,
            count_colorful_exact(g, q, chi));
}

// ---------------------------------------------------------------------
// Failure injection.

TEST(DistEngine, BudgetExceededThrows) {
  const CsrGraph g = erdos_renyi(60, 200, 16);
  const QueryGraph q = q_cycle(5);
  const Coloring chi(g.num_vertices(), 5, 55);
  ExecOptions opts;
  opts.algo = Algo::kPS;
  opts.max_table_entries = 10;
  EXPECT_THROW(run_plan_distributed(g, make_plan(q).tree, chi, 4, opts),
               BudgetExceeded);
}

TEST(DistEngine, MissingRootRejected) {
  const CsrGraph g = erdos_renyi(10, 15, 17);
  const Coloring chi(g.num_vertices(), 3, 56);
  DecompTree empty;
  EXPECT_THROW(run_plan_distributed(g, empty, chi, 2, {}), Error);
}

}  // namespace
}  // namespace ccbt
