#include "ccbt/dist/dist_table.hpp"

#include <string>
#include <utility>

#include "ccbt/util/error.hpp"

namespace ccbt {

DistTable DistTable::collect(int arity, int home_slot, VirtualComm& comm,
                             SortOrder order, std::size_t budget,
                             VertexId domain) {
  DistTable t;
  t.arity_ = arity;
  t.home_slot_ = home_slot;
  t.shards_.resize(comm.num_ranks());
  std::size_t total = 0;
  for (std::uint32_t r = 0; r < comm.num_ranks(); ++r) {
    const std::vector<TableEntry>& in = comm.inbox(r);
    AccumMap map(in.size());
    for (const TableEntry& e : in) map.add(e.key, e.cnt);
    total += map.size();
    if (total > budget) {
      throw BudgetExceeded("distributed table exceeded " +
                           std::to_string(budget) + " entries");
    }
    ProjTable shard = ProjTable::from_map(arity, std::move(map));
    shard.seal(order, domain);
    t.shards_[r] = std::move(shard);
  }
  return t;
}

DistTable DistTable::from_maps(int arity, int home_slot,
                               std::vector<AccumMap> maps) {
  DistTable t;
  t.arity_ = arity;
  t.home_slot_ = home_slot;
  t.shards_.reserve(maps.size());
  for (AccumMap& m : maps) {
    t.shards_.push_back(ProjTable::from_map(arity, std::move(m)));
  }
  return t;
}

std::size_t DistTable::size() const {
  std::size_t sum = 0;
  for (const ProjTable& s : shards_) sum += s.size();
  return sum;
}

Count DistTable::total() const {
  Count sum = 0;
  for (const ProjTable& s : shards_) sum += s.total();
  return sum;
}

std::vector<Count> DistTable::shard_totals() const {
  std::vector<Count> parts(shards_.size(), 0);
  for (std::size_t r = 0; r < shards_.size(); ++r) {
    parts[r] = shards_[r].total();
  }
  return parts;
}

bool DistTable::well_placed(const BlockPartition& part) const {
  for (std::uint32_t r = 0; r < num_shards(); ++r) {
    for (const TableEntry& e : shards_[r].entries()) {
      if (part.owner(e.key.v[home_slot_]) != r) return false;
    }
  }
  return true;
}

ProjTable DistTable::gather() const {
  AccumMap map(size());
  for (const ProjTable& s : shards_) {
    for (const TableEntry& e : s.entries()) map.add(e.key, e.cnt);
  }
  return ProjTable::from_map(arity_, std::move(map));
}

DistTable DistTable::resharded(int new_home, VirtualComm& comm,
                               const BlockPartition& part, SortOrder order,
                               std::size_t budget, VertexId domain) const {
  for (std::uint32_t r = 0; r < num_shards(); ++r) {
    for (const TableEntry& e : shards_[r].entries()) {
      comm.send(r, part.owner(e.key.v[new_home]), e);
    }
  }
  comm.exchange();
  return collect(arity_, new_home, comm, order, budget, domain);
}

DistTable DistTable::transposed(VirtualComm& comm,
                                const BlockPartition& part,
                                std::size_t budget, VertexId domain) const {
  for (std::uint32_t r = 0; r < num_shards(); ++r) {
    for (const TableEntry& e : shards_[r].entries()) {
      TableEntry t = e;
      std::swap(t.key.v[0], t.key.v[1]);
      comm.send(r, part.owner(t.key.v[home_slot_]), t);
    }
  }
  comm.exchange();
  return collect(arity_, home_slot_, comm, SortOrder::kByV0, budget, domain);
}

void DistTable::seal_shards(SortOrder order, VertexId domain) {
  for (ProjTable& s : shards_) s.seal(order, domain);
}

}  // namespace ccbt
