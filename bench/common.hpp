#pragma once
// Shared plumbing for the figure-regeneration benches.
//
// Every bench binary runs with no arguments and bounded time. The
// environment variable CCBT_BENCH_SCALE (default 0.2) scales the stand-in
// graphs; raise it toward 1.0 to run closer to the paper's sizes.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "ccbt/bench_support/workloads.hpp"
#include "ccbt/core/ccbt.hpp"
#include "ccbt/util/error.hpp"
#include "ccbt/util/stats.hpp"
#include "ccbt/util/text_table.hpp"
#include "ccbt/util/timer.hpp"

namespace ccbt::bench {

inline double bench_scale() {
  if (const char* env = std::getenv("CCBT_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) return s;
  }
  return 0.10;
}

/// Entry budget for PS runs; cells that blow past it are reported DNF,
/// mirroring the blank cells of Fig 10.
inline std::size_t bench_budget() {
  if (const char* env = std::getenv("CCBT_BENCH_BUDGET")) {
    const long long b = std::atoll(env);
    if (b > 0) return static_cast<std::size_t>(b);
  }
  return 6'000'000;
}

struct CellResult {
  bool ok = false;
  Count colorful = 0;
  double wall = 0.0;      // seconds, real execution
  double sim = 0.0;       // unitless BSP makespan (when ranks > 0)
  std::uint64_t total_ops = 0;
  std::uint64_t max_rank_ops = 0;
  double avg_rank_ops = 0.0;
};

/// One (graph, query, algo, ranks) cell; DNF (budget blowout) -> ok=false.
inline CellResult run_cell(const CsrGraph& g, const QueryGraph& q,
                           const Plan& plan, Algo algo, std::uint32_t ranks,
                           std::uint64_t color_seed) {
  CellResult r;
  ExecOptions opts;
  opts.algo = algo;
  opts.sim_ranks = ranks;
  opts.max_table_entries = bench_budget();
  try {
    CountingSession session(g, q, plan, opts);
    const ExecStats stats = session.count_colorful_seeded(color_seed);
    r.ok = true;
    r.colorful = stats.colorful;
    r.wall = stats.wall_seconds;
    r.sim = stats.sim_time;
    r.total_ops = stats.total_ops;
    r.max_rank_ops = stats.max_rank_ops;
    r.avg_rank_ops = stats.avg_rank_ops;
  } catch (const BudgetExceeded&) {
    r.ok = false;
  }
  return r;
}

inline std::string fmt_or_dnf(bool ok, double v, int precision = 2) {
  return ok ? TextTable::num(v, precision) : std::string("DNF");
}

/// The benchmark grid: all ten Table 1 stand-ins at the bench scale.
inline std::vector<std::pair<std::string, CsrGraph>> load_grid(
    double scale, std::uint64_t seed = 42) {
  std::vector<std::pair<std::string, CsrGraph>> graphs;
  for (const std::string& name : workload_names()) {
    graphs.emplace_back(name, make_workload(name, scale, seed));
  }
  return graphs;
}

inline void print_header(const std::string& title, const std::string& what) {
  std::cout << "==============================================================="
               "=\n"
            << title << "\n"
            << what << "\n"
            << "scale=" << bench_scale() << " budget=" << bench_budget()
            << " entries (set CCBT_BENCH_SCALE / CCBT_BENCH_BUDGET)\n"
            << "==============================================================="
               "=\n";
}

}  // namespace ccbt::bench
