#pragma once
// Umbrella header: the full public API of the ccbt library.

#include "ccbt/core/color_coding.hpp"    // IWYU pragma: export
#include "ccbt/core/estimator.hpp"       // IWYU pragma: export
#include "ccbt/core/exact.hpp"           // IWYU pragma: export
#include "ccbt/core/planted.hpp"         // IWYU pragma: export
#include "ccbt/core/profile.hpp"         // IWYU pragma: export
#include "ccbt/decomp/dot_export.hpp"    // IWYU pragma: export
#include "ccbt/decomp/plan.hpp"          // IWYU pragma: export
#include "ccbt/dist/dist_engine.hpp"     // IWYU pragma: export
#include "ccbt/graph/generators.hpp"     // IWYU pragma: export
#include "ccbt/graph/graph_stats.hpp"    // IWYU pragma: export
#include "ccbt/graph/io.hpp"             // IWYU pragma: export
#include "ccbt/query/automorphism.hpp"   // IWYU pragma: export
#include "ccbt/query/catalog.hpp"        // IWYU pragma: export
#include "ccbt/query/isomorphism.hpp"    // IWYU pragma: export
#include "ccbt/query/random_tw2.hpp"     // IWYU pragma: export
#include "ccbt/query/treewidth.hpp"      // IWYU pragma: export
#include "ccbt/theory/bounds.hpp"        // IWYU pragma: export
#include "ccbt/theory/path_census.hpp"   // IWYU pragma: export
#include "ccbt/tree/tree_dp.hpp"         // IWYU pragma: export
#include "ccbt/tri/triangles.hpp"        // IWYU pragma: export
