#include "ccbt/core/estimator.hpp"

#include "ccbt/decomp/plan.hpp"
#include "ccbt/query/automorphism.hpp"
#include "ccbt/util/rng.hpp"
#include "ccbt/util/stats.hpp"

namespace ccbt {

EstimatorResult estimate_matches(const CountingSession& session,
                                 const EstimatorOptions& opts) {
  EstimatorResult result;
  const int k = session.query().num_nodes();
  const double scale = colorful_scale(k);
  Rng seeder(opts.seed);

  for (int t = 0; t < opts.trials; ++t) {
    const std::uint64_t trial_seed = seeder();
    const ExecStats stats = session.count_colorful_seeded(trial_seed);
    result.colorful_per_trial.push_back(stats.colorful);
    result.estimate_per_trial.push_back(
        static_cast<double>(stats.colorful) * scale);
    result.total_wall_seconds += stats.wall_seconds;
  }

  const Summary summary = summarize(result.estimate_per_trial);
  result.matches = summary.mean;
  result.variance = summary.variance;
  result.cv = summary.cv();
  result.variance_over_mean =
      summary.mean == 0.0 ? 0.0 : summary.variance / summary.mean;
  result.automorphisms = count_automorphisms(session.query());
  result.occurrences =
      result.matches / static_cast<double>(result.automorphisms);
  return result;
}

EstimatorResult estimate_matches(const CsrGraph& g, const QueryGraph& q,
                                 const EstimatorOptions& opts) {
  CountingSession session(g, q, make_plan(q), opts.exec);
  return estimate_matches(session, opts);
}

AdaptiveResult estimate_matches_adaptive(const CountingSession& session,
                                         const AdaptiveOptions& opts) {
  AdaptiveResult out;
  const int k = session.query().num_nodes();
  const double scale = colorful_scale(k);
  Rng seeder(opts.seed);
  EstimatorResult& r = out.estimate;

  for (int t = 0; t < opts.max_trials; ++t) {
    const ExecStats stats = session.count_colorful_seeded(seeder());
    r.colorful_per_trial.push_back(stats.colorful);
    r.estimate_per_trial.push_back(static_cast<double>(stats.colorful) *
                                   scale);
    r.total_wall_seconds += stats.wall_seconds;
    out.trials_used = t + 1;
    if (out.trials_used < opts.min_trials) continue;
    if (summarize(r.estimate_per_trial).cv() <= opts.target_cv) {
      out.converged = true;
      break;
    }
  }

  const Summary summary = summarize(r.estimate_per_trial);
  r.matches = summary.mean;
  r.variance = summary.variance;
  r.cv = summary.cv();
  r.variance_over_mean =
      summary.mean == 0.0 ? 0.0 : summary.variance / summary.mean;
  r.automorphisms = count_automorphisms(session.query());
  r.occurrences = r.matches / static_cast<double>(r.automorphisms);
  return out;
}

AdaptiveResult estimate_matches_adaptive(const CsrGraph& g,
                                         const QueryGraph& q,
                                         const AdaptiveOptions& opts) {
  CountingSession session(g, q, make_plan(q), opts.exec);
  return estimate_matches_adaptive(session, opts);
}

}  // namespace ccbt
