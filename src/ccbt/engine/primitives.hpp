#pragma once
// The engine's join primitives (Section 7, third layer).
//
// Path tables are keyed (slot0 = anchor image, slot1 = frontier image,
// slots 2-3 = tracked boundary images, signature). Each primitive is one
// bulk-synchronous phase of the virtual-rank load model:
//   * init/extend with graph edges      — Procedure 1 of Figs 4 and 6;
//   * init/extend with a child table    — EdgeJoin of Fig 7;
//   * node_join with a unary child      — NodeJoin of Fig 7;
//   * merge_halves                      — Procedure 2 of Figs 4 and 6.

#include <array>
#include <cstddef>
#include <span>

#include "ccbt/engine/exec_context.hpp"
#include "ccbt/table/proj_table.hpp"
#include "ccbt/table/signature.hpp"

namespace ccbt {

struct ExtendOpts {
  /// Also record the new frontier into this key slot (2 or 3); -1 = none.
  int track_slot = -1;

  /// DB constraint: the anchor must be strictly higher (u ≻ w) than the
  /// newly matched cycle vertex.
  bool anchor_higher = false;
};

/// Initial path table over all data-graph edges: one entry per ordered
/// pair (u, w) of adjacent, distinctly colored vertices (u ≻ w when
/// anchor_higher).
ProjTable init_path_from_graph(const ExecContext& cx, const ExtendOpts& o);

/// Initial path table from a child block's binary table. `flip` swaps the
/// child's boundary orientation so slot 0 is the walk's starting node.
ProjTable init_path_from_child(const ExecContext& cx, const ProjTable& child,
                               bool flip, const ExtendOpts& o);

/// Extend every path entry by one data-graph edge out of the frontier.
ProjTable extend_with_graph(const ExecContext& cx, const ProjTable& path,
                            const ExtendOpts& o);

/// Extend through a child block's binary table (EdgeJoin): path frontier v
/// joins child entries (v, w, sig2). `child` must be sealed kByV0 and
/// already oriented (use TablePool::oriented).
ProjTable extend_with_child(const ExecContext& cx, ProjTable& path,
                            const ProjTable& child, const ExtendOpts& o);

/// NodeJoin: multiply in a unary child at key slot `slot` (0 = anchor,
/// 1 = frontier). `child` must be sealed kByV0.
ProjTable node_join(const ExecContext& cx, const ProjTable& path,
                    const ProjTable& child, int slot);

/// Where each output key slot of a merge comes from.
struct MergeOut {
  int side = 0;  // 0 = plus path, 1 = minus path
  int slot = 0;  // key slot within that path's table
};

struct MergeSpec {
  int out_arity = 0;  // 0, 1, or 2 boundary images in the output key
  std::array<MergeOut, 2> out{};
};

/// Join the two half-cycle tables on their shared (anchor, end) pair with
/// the signature-compatibility test of Fig 6 Procedure 2, accumulating
/// into `sink` (so the DB solver can sum over all anchor choices, Eq. 1).
void merge_halves(const ExecContext& cx, ProjTable& plus, ProjTable& minus,
                  const MergeSpec& spec, AccumMap& sink);

/// The merge-join kernel shared by merge_halves and the distributed
/// engine: join the matching (u, v) subgroups of one slot-0 bucket pair
/// (both ranges sorted kByV0V1) with a two-pointer sweep over the
/// v-sorted subranges, charging the load model per group and calling
/// `emit(key, count)` for every compatible pair. Keeping the shared and
/// distributed engines on one kernel is what guarantees their exact
/// load-model parity.
template <typename Sink>
void merge_bucket(const ExecContext& cx, std::span<const TableEntry> pu,
                  std::span<const TableEntry> mu, const MergeSpec& spec,
                  Sink&& emit) {
  std::size_t pi = 0, mi = 0;
  while (pi < pu.size() && mi < mu.size()) {
    const VertexId pv = pu[pi].key.v[1];
    const VertexId mv = mu[mi].key.v[1];
    if (pv < mv) {
      ++pi;
      continue;
    }
    if (mv < pv) {
      ++mi;
      continue;
    }
    // Same (u, v) group in both tables.
    const VertexId u = pu[pi].key.v[0];
    const VertexId v = pv;
    std::size_t pj = pi, mj = mi;
    while (pj < pu.size() && pu[pj].key.v[1] == v) ++pj;
    while (mj < mu.size() && mu[mj].key.v[1] == v) ++mj;
    const Signature uv_bits = cx.chi.bit(u) | cx.chi.bit(v);
    cx.charge(v, (pj - pi) * (mj - mi));
    for (std::size_t a = pi; a < pj; ++a) {
      for (std::size_t b = mi; b < mj; ++b) {
        if (!merge_compatible(pu[a].key.sig, mu[b].key.sig, uv_bits)) {
          continue;
        }
        TableKey key;
        for (int s = 0; s < spec.out_arity; ++s) {
          const MergeOut& src = spec.out[s];
          key.v[s] = (src.side == 0 ? pu[a] : mu[b]).key.v[src.slot];
        }
        key.sig = pu[a].key.sig | mu[b].key.sig;
        emit(key, pu[a].cnt * mu[b].cnt);
        if (spec.out_arity >= 2) cx.send(v, key.v[1], 1);
      }
    }
    pi = pj;
    mi = mj;
  }
}

/// Sum out all slots beyond the first new_arity (with phase accounting).
ProjTable aggregate(const ExecContext& cx, const ProjTable& t, int new_arity);

}  // namespace ccbt
