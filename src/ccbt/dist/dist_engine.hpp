#pragma once
// The virtual-MPI distributed engine (Section 7).
//
// run_plan_distributed executes the same decomposition-tree plan as the
// shared-memory run_plan, but with every projection table physically
// sharded across `ranks` virtual ranks (DistTable) and every join
// emission routed through VirtualComm supersteps. The engine charges the
// BSP load model exactly as the shared engine does — same phases, same
// per-entry operation counts — so a distributed run reproduces the
// shared run's colorful count AND its modeled load (total/max/avg ops,
// sim_time, modeled comm) bit for bit, while additionally reporting what
// the model cannot see: the actual transport volume, including the
// resharding and orientation supersteps a real MPI implementation pays.
//
// Fault tolerance (ExecOptions::dist): a seeded FaultPlan can drop,
// duplicate, or delay superstep messages, stall ranks, and fail table
// allocations. Recovery is layered — the transport retransmits missing
// messages with backoff (dist/comm.hpp), the engine snapshots sealed
// pool state at checkpoint_interval superstep boundaries and replays
// from the last snapshot when a superstep cannot be recovered
// (dist/checkpoint.hpp), and a run that exhausts both budgets throws a
// typed retryable error the estimator turns into a dropped trial. A
// recovered run's per-lane counts are bit-identical to the fault-free
// run; DistStats::faults reports what the recovery cost.

#include <array>
#include <cstdint>

#include "ccbt/decomp/block.hpp"
#include "ccbt/dist/comm.hpp"
#include "ccbt/dist/dist_table.hpp"
#include "ccbt/engine/exec_context.hpp"
#include "ccbt/graph/coloring.hpp"
#include "ccbt/graph/csr_graph.hpp"

namespace ccbt {

struct DistStats {
  /// Lane-0 colorful count (the full answer of a single-coloring run).
  Count colorful = 0;

  /// Per-lane colorful counts; lanes_used entries are meaningful.
  std::array<Count, kMaxBatchLanes> colorful_lane{};
  int lanes_used = 1;

  double wall_seconds = 0.0;

  // Modeled load — exact parity with the shared engine's ExecStats when
  // run with sim_ranks == ranks.
  double sim_time = 0.0;
  std::uint64_t total_ops = 0;
  std::uint64_t max_rank_ops = 0;
  double avg_rank_ops = 0.0;
  std::uint64_t total_comm = 0;

  // Physical transport accounting (supersteps, entries moved, off-rank
  // volume) — a superset of the modeled communication. At B > 1 the
  // transport serializes the lane-compressed wire format, so
  // transport.off_rank_bytes() tracks true lane density.
  CommStats transport;

  /// Lane-layout telemetry over the run's sorting seals (B > 1; see
  /// ExecStats::lanes).
  LaneTelemetry lanes;

  /// Per-stage wall breakdown (see ExecStats::stage); here `transport`
  /// covers the virtual-MPI exchanges, inbox collection, and resharding
  /// supersteps.
  StageWall stage;

  /// B > 1 accumulation telemetry (see ExecStats::accum). Stays zero as
  /// long as the distributed supersteps accumulate through hashed
  /// AccumMap sinks rather than flat rows; present so ExecStats and
  /// DistStats expose one shape to estimator-level aggregation.
  AccumTelemetry accum;

  /// Fault-tolerance scoreboard: faults injected by the configured
  /// FaultPlan, delivery retries and their modeled backoff, checkpoint
  /// snapshots taken and their byte cost, and rollback replays. All-zero
  /// when ExecOptions::dist is default (no injection, no checkpoints).
  FaultStats faults;

  /// Did the run recover from at least one injected fault?
  bool recovered() const {
    return faults.retries > 0 || faults.replays > 0;
  }
};

/// Count the colorful matches of the plan's query under `chi` on a
/// virtual cluster of `ranks` ranks. Throws Error for a rootless tree or
/// zero ranks, BudgetExceeded when a table outgrows the configured
/// budget.
DistStats run_plan_distributed(const CsrGraph& g, const DecompTree& tree,
                               const Coloring& chi, std::uint32_t ranks,
                               ExecOptions opts = {});

/// Batched variant: one distributed execution over every lane of `batch`
/// (1, 2, 4 or 8 lanes — other widths throw Error). Lane l of
/// stats.colorful_lane matches a single-coloring distributed run under
/// batch.lane(l); supersteps serialize whole lane-count vectors.
DistStats run_plan_distributed(const CsrGraph& g, const DecompTree& tree,
                               const ColoringBatch& batch,
                               std::uint32_t ranks, ExecOptions opts = {});

}  // namespace ccbt
