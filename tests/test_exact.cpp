// Oracle self-checks: the brute-force counters must reproduce closed-form
// counts on structured graphs before they can vouch for the DP engine.

#include <gtest/gtest.h>

#include "ccbt/core/exact.hpp"
#include "ccbt/graph/generators.hpp"
#include "ccbt/query/catalog.hpp"

namespace ccbt {
namespace {

std::uint64_t falling(std::uint64_t n, int k) {
  std::uint64_t r = 1;
  for (int i = 0; i < k; ++i) r *= n - i;
  return r;
}

TEST(ExactMatches, TriangleInCompleteGraph) {
  // Matches of C3 in K_n = n(n-1)(n-2); occurrences = that / 6.
  for (VertexId n : {3u, 4u, 5u, 6u}) {
    EXPECT_EQ(count_matches_exact(complete_graph(n), q_cycle(3)),
              falling(n, 3))
        << "n=" << n;
  }
}

TEST(ExactMatches, EdgeInCompleteGraph) {
  EXPECT_EQ(count_matches_exact(complete_graph(5), q_path(2)), 5u * 4u);
}

TEST(ExactMatches, PathInPathGraph) {
  // P4 (3 edges) in a path of 10 vertices: 7 placements, 2 orientations.
  EXPECT_EQ(count_matches_exact(path_graph(10), q_path(4)), 14u);
}

TEST(ExactMatches, CycleInCycleGraph) {
  // C5 in C5: 5 rotations x 2 reflections = aut(C5) = 10 matches.
  EXPECT_EQ(count_matches_exact(cycle_graph(5), q_cycle(5)), 10u);
}

TEST(ExactMatches, C4InCompleteBipartite) {
  // C4 matches in K_{a,b}: choose ordered pairs on both sides:
  // a(a-1) * b(b-1) * 2 cycles per 2x2 block... direct known value:
  // #C4 subgraphs = C(a,2)C(b,2); matches = subgraphs * aut(C4)=8.
  const auto a = 3u, b = 4u;
  const std::uint64_t subgraphs = 3ull * 6ull;  // C(3,2)*C(4,2)
  EXPECT_EQ(count_matches_exact(complete_bipartite(a, b), q_cycle(4)),
            subgraphs * 8u);
}

TEST(ExactMatches, StarInStarGraph) {
  // Star with 3 leaves in a star with 5 leaves: center fixed,
  // leaves ordered: 5*4*3 = 60.
  EXPECT_EQ(count_matches_exact(star_graph(5), q_star(3)), 60u);
}

TEST(ExactMatches, DiamondInK4) {
  // Diamond (4 nodes, 5 edges) in K4: 4!/aut * aut = falling(4,4) * number
  // of edge subsets... direct: every injective map of the diamond into K4
  // is a match: 4! = 24 per labeled choice; diamond has 4 nodes -> 24
  // mappings, all valid since K4 has all edges. Ordered: falling(4,4)=24.
  EXPECT_EQ(count_matches_exact(complete_graph(4), q_glet2()), 24u);
}

TEST(ExactColorful, AllSameColorGivesZero) {
  const CsrGraph g = complete_graph(5);
  const Coloring chi(std::vector<std::uint8_t>(5, 0), 3);
  EXPECT_EQ(count_colorful_exact(g, q_cycle(3), chi), 0u);
}

TEST(ExactColorful, RainbowTriangle) {
  // Triangle graph, three distinct colors: all 6 mappings colorful.
  const CsrGraph g = cycle_graph(3);
  const Coloring chi(std::vector<std::uint8_t>{0, 1, 2}, 3);
  EXPECT_EQ(count_colorful_exact(g, q_cycle(3), chi), 6u);
}

TEST(ExactColorful, NeverExceedsTotal) {
  const CsrGraph g = erdos_renyi(24, 60, 7);
  const QueryGraph q = q_glet2();
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Coloring chi(g.num_vertices(), q.num_nodes(), seed);
    EXPECT_LE(count_colorful_exact(g, q, chi), count_matches_exact(g, q));
  }
}

}  // namespace
}  // namespace ccbt
