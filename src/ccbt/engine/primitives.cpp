#include "ccbt/engine/primitives.hpp"

#include <atomic>
#include <string>

#include "ccbt/util/error.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace ccbt {

namespace {

void check_budget(const ExecContext& cx, std::size_t size) {
  if (size > cx.opts.max_table_entries) {
    throw BudgetExceeded("projection table exceeded " +
                         std::to_string(cx.opts.max_table_entries) +
                         " entries");
  }
}

#ifdef _OPENMP
int pool_threads() { return omp_get_max_threads(); }
#endif

/// Reduce per-thread accumulation maps into one, pre-sized so the merge
/// runs without intermediate rehashes. Single-producer case moves instead.
AccumMap reduce_maps(const ExecContext& cx, std::vector<AccumMap>& maps) {
  std::size_t total = 0;
  AccumMap* only = nullptr;
  int producers = 0;
  for (AccumMap& m : maps) {
    if (m.empty()) continue;
    total += m.size();
    only = &m;
    ++producers;
  }
  if (producers == 1) {
    check_budget(cx, only->size());
    return std::move(*only);
  }
  AccumMap merged;
  merged.reserve(total);
  for (AccumMap& m : maps) {
    for (const TableEntry& e : m.entries()) merged.add(e.key, e.cnt);
    check_budget(cx, merged.size());
  }
  return merged;
}

/// Run `emit(index, map)` for every index in [0, n), accumulating into
/// per-thread maps that are merged afterwards by a pre-sized two-pass
/// reduction. Load accounting is thread-affine (LoadModel buffers charges
/// per OpenMP thread), so simulated runs parallelize like real ones.
template <typename Emit>
AccumMap accumulate_over(const ExecContext& cx, std::size_t n, Emit&& emit) {
#ifdef _OPENMP
  if (cx.opts.use_threads && pool_threads() > 1 && n > 4096) {
    const int threads = pool_threads();
    std::vector<AccumMap> maps(threads);
    std::atomic<bool> budget_hit{false};
#pragma omp parallel num_threads(threads)
    {
      AccumMap& local = maps[omp_get_thread_num()];
#pragma omp for schedule(dynamic, 512)
      for (std::size_t i = 0; i < n; ++i) {
        if (budget_hit.load(std::memory_order_relaxed)) continue;
        emit(i, local);
        if (local.size() > cx.opts.max_table_entries) {
          budget_hit.store(true, std::memory_order_relaxed);
        }
      }
    }
    if (budget_hit.load()) check_budget(cx, cx.opts.max_table_entries + 1);
    return reduce_maps(cx, maps);
  }
#endif
  AccumMap map;
  for (std::size_t i = 0; i < n; ++i) {
    emit(i, map);
    if ((i & 0xFFF) == 0) check_budget(cx, map.size());
  }
  check_budget(cx, map.size());
  return map;
}

}  // namespace

ProjTable init_path_from_graph(const ExecContext& cx, const ExtendOpts& o) {
  const CsrGraph& g = cx.g;
  AccumMap map = accumulate_over(
      cx, g.num_vertices(), [&](std::size_t ui, AccumMap& sink) {
        const auto u = static_cast<VertexId>(ui);
        cx.charge(u, g.degree(u));
        for (VertexId w : g.neighbors(u)) {
          if (o.anchor_higher && !cx.order.higher(u, w)) continue;
          if (cx.chi.color(u) == cx.chi.color(w)) continue;
          TableKey key;
          key.v[0] = u;
          key.v[1] = w;
          if (o.track_slot >= 0) key.v[o.track_slot] = w;
          key.sig = cx.chi.bit(u) | cx.chi.bit(w);
          sink.add(key, 1);
          cx.send(u, w, 1);
        }
      });
  cx.end_phase();
  return ProjTable::from_map(2, std::move(map));
}

ProjTable init_path_from_child(const ExecContext& cx, const ProjTable& child,
                               bool flip, const ExtendOpts& o) {
  const auto entries = child.entries();
  AccumMap map = accumulate_over(
      cx, entries.size(), [&](std::size_t i, AccumMap& sink) {
        const TableEntry& e = entries[i];
        const VertexId a = e.key.v[flip ? 1 : 0];
        const VertexId b = e.key.v[flip ? 0 : 1];
        cx.charge(b, 1);
        if (o.anchor_higher && !cx.order.higher(a, b)) return;
        TableKey key;
        key.v[0] = a;
        key.v[1] = b;
        if (o.track_slot >= 0) key.v[o.track_slot] = b;
        key.sig = e.key.sig;
        sink.add(key, e.cnt);
      });
  cx.end_phase();
  return ProjTable::from_map(2, std::move(map));
}

ProjTable extend_with_graph(const ExecContext& cx, const ProjTable& path,
                            const ExtendOpts& o) {
  const CsrGraph& g = cx.g;
  const auto entries = path.entries();
  AccumMap map = accumulate_over(
      cx, entries.size(), [&](std::size_t i, AccumMap& sink) {
        const TableEntry& e = entries[i];
        const VertexId v = e.key.v[1];
        cx.charge(v, g.degree(v));
        for (VertexId w : g.neighbors(v)) {
          if (o.anchor_higher && !cx.order.higher(e.key.v[0], w)) continue;
          const Signature w_bit = cx.chi.bit(w);
          if ((e.key.sig & w_bit) != 0) continue;
          TableKey key = e.key;
          key.v[1] = w;
          if (o.track_slot >= 0) key.v[o.track_slot] = w;
          key.sig = e.key.sig | w_bit;
          sink.add(key, e.cnt);
          cx.send(v, w, 1);
        }
      });
  cx.end_phase();
  return ProjTable::from_map(path.arity(), std::move(map));
}

ProjTable extend_with_child(const ExecContext& cx, ProjTable& path,
                            const ProjTable& child, const ExtendOpts& o) {
  path.seal(SortOrder::kByV1, cx.g.num_vertices());
  const auto entries = path.entries();
  AccumMap map = accumulate_over(
      cx, entries.size(), [&](std::size_t i, AccumMap& sink) {
        const TableEntry& e = entries[i];
        const VertexId v = e.key.v[1];
        const Signature v_bit = cx.chi.bit(v);
        const auto group = child.group(0, v);
        cx.charge(v, group.size());
        for (const TableEntry& ce : group) {
          if (!node_join_compatible(e.key.sig, ce.key.sig, v_bit)) continue;
          const VertexId w = ce.key.v[1];
          if (o.anchor_higher && !cx.order.higher(e.key.v[0], w)) continue;
          TableKey key = e.key;
          key.v[1] = w;
          if (o.track_slot >= 0) key.v[o.track_slot] = w;
          key.sig = e.key.sig | ce.key.sig;
          sink.add(key, e.cnt * ce.cnt);
          cx.send(v, w, 1);
        }
      });
  cx.end_phase();
  return ProjTable::from_map(path.arity(), std::move(map));
}

ProjTable node_join(const ExecContext& cx, const ProjTable& path,
                    const ProjTable& child, int slot) {
  const auto entries = path.entries();
  AccumMap map = accumulate_over(
      cx, entries.size(), [&](std::size_t i, AccumMap& sink) {
        const TableEntry& e = entries[i];
        const VertexId x = e.key.v[slot];
        const Signature x_bit = cx.chi.bit(x);
        const auto group = child.group(0, x);
        cx.charge(x, group.size());
        for (const TableEntry& ce : group) {
          if (!node_join_compatible(e.key.sig, ce.key.sig, x_bit)) continue;
          TableKey key = e.key;
          key.sig = e.key.sig | ce.key.sig;
          sink.add(key, e.cnt * ce.cnt);
        }
      });
  cx.end_phase();
  return ProjTable::from_map(path.arity(), std::move(map));
}

void merge_halves(const ExecContext& cx, ProjTable& plus, ProjTable& minus,
                  const MergeSpec& spec, AccumMap& sink) {
  const VertexId n = cx.g.num_vertices();
  plus.seal(SortOrder::kByV0V1, n);
  minus.seal(SortOrder::kByV0V1, n);
  const auto pe = plus.entries();
  const auto me = minus.entries();

  if (plus.has_bucket_index() && minus.has_bucket_index()) {
#ifdef _OPENMP
    if (cx.opts.use_threads && pool_threads() > 1 &&
        pe.size() + me.size() > 4096) {
      // Slot-0 buckets are independent: each thread merges whole buckets
      // into a private sink; the sinks reduce into `sink` afterwards.
      const int threads = pool_threads();
      std::vector<AccumMap> maps(threads);
      std::atomic<bool> budget_hit{false};
#pragma omp parallel num_threads(threads)
      {
        AccumMap& local = maps[omp_get_thread_num()];
#pragma omp for schedule(dynamic, 256)
        for (VertexId u = 0; u < n; ++u) {
          if (budget_hit.load(std::memory_order_relaxed)) continue;
          const auto pu = plus.group(0, u);
          if (pu.empty()) continue;
          const auto mu = minus.group(0, u);
          if (mu.empty()) continue;
          merge_bucket(cx, pu, mu, spec,
                       [&](const TableKey& k, Count c) { local.add(k, c); });
          if (local.size() > cx.opts.max_table_entries) {
            budget_hit.store(true, std::memory_order_relaxed);
          }
        }
      }
      if (budget_hit.load()) check_budget(cx, cx.opts.max_table_entries + 1);
      std::size_t total = sink.size();
      for (const AccumMap& m : maps) total += m.size();
      sink.reserve(total);
      for (AccumMap& m : maps) {
        for (const TableEntry& e : m.entries()) sink.add(e.key, e.cnt);
        check_budget(cx, sink.size());
      }
      cx.end_phase();
      return;
    }
#endif
    for (VertexId u = 0; u < n; ++u) {
      const auto pu = plus.group(0, u);
      if (pu.empty()) continue;
      const auto mu = minus.group(0, u);
      if (mu.empty()) continue;
      merge_bucket(cx, pu, mu, spec,
                   [&](const TableKey& k, Count c) { sink.add(k, c); });
      check_budget(cx, sink.size());
    }
    cx.end_phase();
    return;
  }

  // No bucket index (out-of-domain keys): whole-table two-pointer merge.
  auto uv_less = [](const TableEntry& a, const TableEntry& b) {
    return a.key.v[0] != b.key.v[0] ? a.key.v[0] < b.key.v[0]
                                    : a.key.v[1] < b.key.v[1];
  };
  std::size_t pi = 0, mi = 0;
  while (pi < pe.size() && mi < me.size()) {
    if (uv_less(pe[pi], me[mi])) {
      ++pi;
      continue;
    }
    if (uv_less(me[mi], pe[pi])) {
      ++mi;
      continue;
    }
    const VertexId u = pe[pi].key.v[0];
    std::size_t pj = pi, mj = mi;
    while (pj < pe.size() && pe[pj].key.v[0] == u) ++pj;
    while (mj < me.size() && me[mj].key.v[0] == u) ++mj;
    merge_bucket(cx, pe.subspan(pi, pj - pi), me.subspan(mi, mj - mi), spec,
                 [&](const TableKey& k, Count c) { sink.add(k, c); });
    check_budget(cx, sink.size());
    pi = pj;
    mi = mj;
  }
  cx.end_phase();
}

ProjTable aggregate(const ExecContext& cx, const ProjTable& t, int new_arity) {
  AccumMap map(t.size());
  for (const TableEntry& e : t.entries()) {
    TableKey key;
    for (int s = 0; s < new_arity; ++s) key.v[s] = e.key.v[s];
    key.sig = e.key.sig;
    if (new_arity >= 1) cx.charge(key.v[0], 1);
    map.add(key, e.cnt);
  }
  check_budget(cx, map.size());
  cx.end_phase();
  return ProjTable::from_map(new_arity, std::move(map));
}

}  // namespace ccbt
