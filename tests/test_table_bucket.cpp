// Property tests for the bucket-indexed table layer: seal() with a
// counting partition plus per-bucket sorts must produce entry-identical
// arrays to a naive stable comparison sort (every key field and count, in
// the same positions), and group() through the O(1) bucket index must
// return exactly the ranges a binary search finds — across randomized
// arities, sort orders, domains and duplicate-heavy inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "ccbt/table/proj_table.hpp"
#include "ccbt/util/rng.hpp"

namespace ccbt {
namespace {

bool less_full_v0(const TableEntry& a, const TableEntry& b) {
  if (a.key.v[0] != b.key.v[0]) return a.key.v[0] < b.key.v[0];
  if (a.key.v[1] != b.key.v[1]) return a.key.v[1] < b.key.v[1];
  if (a.key.v[2] != b.key.v[2]) return a.key.v[2] < b.key.v[2];
  if (a.key.v[3] != b.key.v[3]) return a.key.v[3] < b.key.v[3];
  return a.key.sig < b.key.sig;
}

bool less_full_v1(const TableEntry& a, const TableEntry& b) {
  if (a.key.v[1] != b.key.v[1]) return a.key.v[1] < b.key.v[1];
  return less_full_v0(a, b);
}

/// Reference seal: a stable comparison sort of the whole entry vector.
std::vector<TableEntry> reference_sorted(std::vector<TableEntry> entries,
                                         SortOrder order) {
  std::stable_sort(entries.begin(), entries.end(),
                   group_slot(order) == 0 ? less_full_v0 : less_full_v1);
  return entries;
}

/// Reference group: linear scan over the reference-sorted entries.
std::vector<TableEntry> reference_group(
    const std::vector<TableEntry>& sorted, int slot, VertexId v) {
  std::vector<TableEntry> out;
  for (const TableEntry& e : sorted) {
    if (e.key.v[slot] == v) out.push_back(e);
  }
  return out;
}

/// Random entries over `domain` vertices; `arity` leading slots used,
/// remaining slots sometimes carry tracked vertices, sometimes kNoVertex.
/// Low domains make the input duplicate-heavy on every key field.
std::vector<TableEntry> random_entries(Rng& rng, std::size_t n,
                                       VertexId domain, int arity,
                                       bool tracked_slots) {
  std::vector<TableEntry> entries(n);
  for (TableEntry& e : entries) {
    for (int s = 0; s < arity; ++s) {
      e.key.v[s] = static_cast<VertexId>(rng.below(domain));
    }
    if (tracked_slots) {
      for (int s = std::max(arity, 2); s < 4; ++s) {
        if (rng.below(2) == 0) {
          e.key.v[s] = static_cast<VertexId>(rng.below(domain));
        }
      }
    }
    e.key.sig = static_cast<Signature>(rng.below(64));
    e.cnt = rng.below(1000) + 1;
  }
  return entries;
}

ProjTable table_of(int arity, const std::vector<TableEntry>& entries) {
  ProjTable t(arity);
  for (const TableEntry& e : entries) t.push_unchecked(e);
  return t;
}

bool same_entries(std::span<const TableEntry> got,
                  std::span<const TableEntry> want) {
  if (got.size() != want.size()) return false;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (!(got[i].key == want[i].key) || got[i].cnt != want[i].cnt) {
      return false;
    }
  }
  return true;
}

void expect_entry_identical(const ProjTable& sealed,
                            const std::vector<TableEntry>& reference) {
  ASSERT_EQ(sealed.size(), reference.size());
  EXPECT_TRUE(same_entries(sealed.entries(), reference));
}

class BucketSealProperty
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(BucketSealProperty, MatchesNaiveReferenceAcrossSeeds) {
  const auto [arity, order_idx, explicit_domain] = GetParam();
  const SortOrder order =
      order_idx == 0 ? SortOrder::kByV0
                     : (order_idx == 1 ? SortOrder::kByV0V1
                                       : SortOrder::kByV1);
  const int slot = group_slot(order);
  if (slot >= arity) GTEST_SKIP() << "order needs slot " << slot;

  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(100 * seed + arity);
    // Small domains force heavy duplication; larger ones exercise sparse
    // buckets. Sizes straddle the parallel threshold.
    const VertexId domain =
        static_cast<VertexId>(rng.below(3) == 0 ? 7 : 400);
    const std::size_t n = 1 + rng.below(seed % 3 == 0 ? 40000 : 500);
    const std::vector<TableEntry> raw =
        random_entries(rng, n, domain, arity, /*tracked_slots=*/true);

    ProjTable t = table_of(arity, raw);
    t.seal(order, explicit_domain ? domain : 0);
    const std::vector<TableEntry> ref = reference_sorted(raw, order);
    expect_entry_identical(t, ref);

    // Totals survive sealing.
    Count ref_total = 0;
    for (const TableEntry& e : ref) ref_total += e.cnt;
    EXPECT_EQ(t.total(), ref_total);

    // Every group (probed at members, boundaries and misses) matches the
    // reference scan exactly.
    for (VertexId v : {VertexId{0}, VertexId{3}, domain / 2, domain - 1,
                       domain, domain + 17}) {
      const auto got = t.group(slot, v);
      const auto want = reference_group(ref, slot, v);
      EXPECT_TRUE(same_entries(got, want)) << "v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AritiesOrdersDomains, BucketSealProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(0, 1, 2),
                       ::testing::Bool()));

TEST(BucketSeal, IndexedAndSearchGroupsAgree) {
  // The same sealed content probed through the bucket index and through
  // the binary-search fallback must agree: seal one copy with the domain
  // (index built) and one without after planting an out-of-domain key
  // (which forces the comparison path).
  Rng rng(7);
  std::vector<TableEntry> raw =
      random_entries(rng, 2000, 150, 2, /*tracked_slots=*/false);
  ProjTable indexed = table_of(2, raw);
  indexed.seal(SortOrder::kByV0, 150);
  ASSERT_TRUE(indexed.has_bucket_index());

  TableEntry far{};
  far.key.v[0] = 3'000'000'000u;  // domain detection declines this
  far.key.v[1] = 1;
  far.cnt = 1;
  std::vector<TableEntry> raw2 = raw;
  raw2.push_back(far);
  ProjTable searched = table_of(2, raw2);
  searched.seal(SortOrder::kByV0);
  ASSERT_FALSE(searched.has_bucket_index());

  for (VertexId v = 0; v < 150; ++v) {
    EXPECT_TRUE(same_entries(indexed.group(0, v), searched.group(0, v)))
        << "v=" << v;
  }
}

TEST(BucketSeal, RefinementRelabelKeepsEntriesAndIndex) {
  // kByV0V1 refines kByV0 (one shared comparator): converting between
  // them must not re-sort, must keep the index, and must not change
  // bytes.
  Rng rng(11);
  const std::vector<TableEntry> raw =
      random_entries(rng, 3000, 97, 2, /*tracked_slots=*/false);
  ProjTable t = table_of(2, raw);
  t.seal(SortOrder::kByV0V1, 97);
  ASSERT_TRUE(t.has_bucket_index());
  const std::vector<TableEntry> before(t.entries().begin(),
                                       t.entries().end());
  t.seal(SortOrder::kByV0);
  EXPECT_EQ(t.order(), SortOrder::kByV0);
  EXPECT_TRUE(t.has_bucket_index());
  expect_entry_identical(t, before);
  t.seal(SortOrder::kByV0V1);
  EXPECT_EQ(t.order(), SortOrder::kByV0V1);
  expect_entry_identical(t, before);
}

TEST(BucketSeal, AutoDomainDetectionBuildsIndex) {
  Rng rng(13);
  const std::vector<TableEntry> raw =
      random_entries(rng, 5000, 64, 2, /*tracked_slots=*/false);
  ProjTable t = table_of(2, raw);
  t.seal(SortOrder::kByV1);  // no domain passed
  EXPECT_TRUE(t.has_bucket_index());
  expect_entry_identical(t, reference_sorted(raw, SortOrder::kByV1));
}

TEST(BucketSeal, EmptyAndSingleton) {
  ProjTable empty(2);
  empty.seal(SortOrder::kByV0, 100);
  EXPECT_TRUE(empty.group(0, 5).empty());

  ProjTable one(2);
  TableEntry e{};
  e.key.v[0] = 42;
  e.key.v[1] = 7;
  e.cnt = 3;
  one.push_unchecked(e);
  one.seal(SortOrder::kByV0, 100);
  ASSERT_EQ(one.group(0, 42).size(), 1u);
  EXPECT_TRUE(one.group(0, 41).empty());
  EXPECT_TRUE(one.group(0, 99).empty());
  EXPECT_TRUE(one.group(0, 1000).empty());
}

}  // namespace
}  // namespace ccbt
