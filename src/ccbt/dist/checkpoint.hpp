#pragma once
// Superstep checkpoints for the fault-tolerant distributed engine.
//
// A checkpoint is a byte-level snapshot of the sealed-shard state that
// persists across supersteps: every child-block table the DistPool has
// stored so far, plus the position (next block, transport superstep) the
// engine replays from. Shard images reuse the PR 3 lane-compressed wire
// encoding (table/lane_payload.hpp) — the same per-row
// [key | mask | width | packed counts] bytes the transport sends — so
// checkpoint size tracks true lane density and the encoder/decoder pair
// is the one already exercised by every superstep.
//
// Restore rebuilds each table from its decoded row multiset and re-seals
// with the storage convention (kByV0 + the pool's layout hint). Because
// serialization iterates the sealed row order, the decoded rows are
// already sorted: the radix seal's validation pass detects that and
// leaves them untouched, the comparison seal is a stable sort, and the
// layout chooser is deterministic either way — so a restored table is
// bit-identical to the one checkpointed under both seal engines, the
// property behind the "replayed run equals fault-free run" guarantee.
//
// Integrity: every shard image carries a magic word and its row count;
// truncated, oversized, or misparsed images throw CheckpointCorrupt
// (a *fatal* code — a corrupt snapshot cannot be retried away).

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "ccbt/table/lane_payload.hpp"
#include "ccbt/table/proj_table.hpp"
#include "ccbt/util/error.hpp"

namespace ccbt {

inline constexpr std::uint32_t kCheckpointMagic = 0x54504B43u;  // "CKPT" LE

/// Serialize one sealed shard: [magic u32][rows u64][wire-encoded rows].
template <int B>
std::vector<std::uint8_t> checkpoint_encode_shard(
    const ProjTableT<B>& shard) {
  std::vector<std::uint8_t> out;
  out.reserve(sizeof(std::uint32_t) + sizeof(std::uint64_t) +
              shard.size() * (kWireKeyBytes + 2 + sizeof(Count)));
  out.resize(sizeof(std::uint32_t) + sizeof(std::uint64_t));
  std::memcpy(out.data(), &kCheckpointMagic, sizeof(std::uint32_t));
  const std::uint64_t rows = shard.size();
  std::memcpy(out.data() + sizeof(std::uint32_t), &rows,
              sizeof(std::uint64_t));
  shard.for_each_entry(
      [&](const TableEntryT<B>& e) { wire_encode<B>(e, out); });
  return out;
}

/// Decode a shard image back into its row sequence (sealed order).
/// Throws CheckpointCorrupt on any framing violation.
template <int B>
std::vector<TableEntryT<B>> checkpoint_decode_shard(
    const std::vector<std::uint8_t>& bytes) {
  const std::uint8_t* p = bytes.data();
  const std::uint8_t* const end = p + bytes.size();
  if (bytes.size() < sizeof(std::uint32_t) + sizeof(std::uint64_t)) {
    throw CheckpointCorrupt("shard image shorter than its header");
  }
  std::uint32_t magic = 0;
  std::memcpy(&magic, p, sizeof(std::uint32_t));
  p += sizeof(std::uint32_t);
  if (magic != kCheckpointMagic) {
    throw CheckpointCorrupt("shard image has a bad magic word");
  }
  std::uint64_t rows = 0;
  std::memcpy(&rows, p, sizeof(std::uint64_t));
  p += sizeof(std::uint64_t);

  std::vector<TableEntryT<B>> out;
  out.reserve(rows);
  for (std::uint64_t i = 0; i < rows; ++i) {
    // Frame check before handing the cursor to wire_decode (which trusts
    // its input): fixed prefix, then the mask/width-implied payload.
    if (end - p < static_cast<std::ptrdiff_t>(kWireKeyBytes + 2)) {
      throw CheckpointCorrupt("shard image truncated at row " +
                              std::to_string(i));
    }
    const LaneMask mask = p[kWireKeyBytes];
    const int width_code = p[kWireKeyBytes + 1];
    if (width_code > 2 || mask >= (1u << B)) {
      throw CheckpointCorrupt("shard image row " + std::to_string(i) +
                              " has a bad mask/width frame");
    }
    const std::ptrdiff_t payload =
        std::popcount(mask) *
        payload_width_bytes(payload_width_from_code(width_code));
    if (end - p < static_cast<std::ptrdiff_t>(kWireKeyBytes + 2) + payload) {
      throw CheckpointCorrupt("shard image truncated at row " +
                              std::to_string(i));
    }
    TableEntryT<B> e;
    p = wire_decode<B>(p, e);
    out.push_back(e);
  }
  if (p != end) {
    throw CheckpointCorrupt("shard image has trailing bytes");
  }
  return out;
}

/// One stored table's snapshot plus the replay position.
template <int B>
struct CheckpointImageT {
  struct TableImage {
    int block = 0;
    int arity = 0;
    int home_slot = 0;
    std::vector<std::vector<std::uint8_t>> shards;
  };

  std::vector<TableImage> tables;
  std::size_t next_block = 0;    // first block to (re-)execute on restore
  std::uint64_t supersteps = 0;  // transport position when taken

  std::uint64_t bytes() const {
    std::uint64_t sum = 0;
    for (const TableImage& t : tables) {
      for (const auto& s : t.shards) sum += s.size();
    }
    return sum;
  }
};

}  // namespace ccbt
