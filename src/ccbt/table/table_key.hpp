#pragma once
// Projection-table keys and lane-indexed entries.
//
// A key holds up to four data-vertex slots plus a color signature:
//   slot 0 — the anchor (π of the path's start node / first boundary node)
//   slot 1 — the frontier (π of the current path end / second boundary)
//   slots 2,3 — "tracked" vertices: the images of boundary nodes that fall
//               in the interior of a DB path (the additional fields of
//               Section 5.1, configurations (A) and (B)).
// Unused slots hold kNoVertex so equality and hashing are uniform.
//
// Entries are parameterized on the engine's batch width B: one plan
// execution processes B independent colorings ("lanes") at once, and an
// entry's count becomes a lane-indexed vector. Lanes share an entry when
// their colorings give the partial match the same signature, so the key
// stays (vertex tuple, signature) at every width. B = 1 keeps the original
// scalar layout bit for bit.

#include <array>
#include <cstdint>

#include "ccbt/graph/types.hpp"

// The B-wide lane loops below are branchless multiply-adds over small
// fixed-size arrays — exactly the shape `omp simd` vectorizes. The macro
// collapses to nothing without OpenMP.
#if defined(_OPENMP)
#define CCBT_PRAGMA(x) _Pragma(#x)
#define CCBT_SIMD CCBT_PRAGMA(omp simd)
#define CCBT_SIMD_REDUCTION(op, var) CCBT_PRAGMA(omp simd reduction(op : var))
#else
#define CCBT_SIMD
#define CCBT_SIMD_REDUCTION(op, var)
#endif

namespace ccbt {

struct TableKey {
  std::array<VertexId, 4> v{kNoVertex, kNoVertex, kNoVertex, kNoVertex};
  Signature sig = 0;

  friend bool operator==(const TableKey&, const TableKey&) = default;
};

/// 64-bit mix of all key fields (splitmix-style avalanche).
inline std::uint64_t hash_key(const TableKey& k) {
  std::uint64_t h = 0x9E3779B97F4A7C15ULL;
  auto mix = [&h](std::uint64_t x) {
    h ^= x + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 27;
  };
  mix((static_cast<std::uint64_t>(k.v[0]) << 32) | k.v[1]);
  mix((static_cast<std::uint64_t>(k.v[2]) << 32) | k.v[3]);
  mix(k.sig);
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 31;
  return h;
}

/// Per-width count representation and the lane arithmetic the join
/// primitives need. The generic case is an array of per-lane counts; the
/// B = 1 specialization collapses to a plain scalar so the single-coloring
/// engine compiles to exactly the pre-batching code.
template <int B>
struct LaneOps {
  static_assert(B >= 2 && B <= kMaxBatchLanes, "unsupported batch width");
  using Vec = std::array<Count, B>;

  static constexpr Vec zero() { return Vec{}; }

  static constexpr bool is_zero(const Vec& v) {
    for (int l = 0; l < B; ++l) {
      if (v[l] != 0) return false;
    }
    return true;
  }

  static constexpr Count lane(const Vec& v, int l) { return v[l]; }
  static constexpr void set_lane(Vec& v, int l, Count c) { v[l] = c; }

  static void add(Vec& d, const Vec& s) {
    CCBT_SIMD
    for (int l = 0; l < B; ++l) d[l] += s[l];
  }

  // The mask-parameterized ops are branchless (multiply by the mask bit)
  // and simd-hinted so the compiler vectorizes the B-wide loops.

  /// 1 in every lane of `m`, 0 elsewhere.
  static Vec ones(LaneMask m) {
    Vec v;
    CCBT_SIMD
    for (int l = 0; l < B; ++l) v[l] = (m >> l) & 1u;
    return v;
  }

  /// a with lanes outside `m` zeroed.
  static Vec masked(const Vec& a, LaneMask m) {
    Vec v;
    CCBT_SIMD
    for (int l = 0; l < B; ++l) v[l] = a[l] * ((m >> l) & 1u);
    return v;
  }

  /// Lane-wise product, restricted to the lanes of `m`.
  static Vec mul_masked(const Vec& a, const Vec& b, LaneMask m) {
    Vec v;
    CCBT_SIMD
    for (int l = 0; l < B; ++l) v[l] = a[l] * b[l] * ((m >> l) & 1u);
    return v;
  }

  static Count total(const Vec& v) {
    Count t = 0;
    CCBT_SIMD_REDUCTION(+, t)
    for (int l = 0; l < B; ++l) t += v[l];
    return t;
  }
};

template <>
struct LaneOps<1> {
  using Vec = Count;
  static constexpr Vec zero() { return 0; }
  static constexpr bool is_zero(Vec v) { return v == 0; }
  static constexpr Count lane(Vec v, int) { return v; }
  static constexpr void set_lane(Vec& v, int, Count c) { v = c; }
  static constexpr void add(Vec& d, Vec s) { d += s; }
  static constexpr Vec ones(LaneMask m) { return m & 1u; }
  static constexpr Vec masked(Vec a, LaneMask m) { return (m & 1u) ? a : 0; }
  static constexpr Vec mul_masked(Vec a, Vec b, LaneMask m) {
    return (m & 1u) ? a * b : 0;
  }
  static constexpr Count total(Vec v) { return v; }
};

/// An accumulated (key -> per-lane counts) row.
template <int B>
struct TableEntryT {
  TableKey key;
  typename LaneOps<B>::Vec cnt{};
};

/// B = 1 keeps the original scalar row (32 bytes).
template <>
struct TableEntryT<1> {
  TableKey key;
  Count cnt = 0;
};

using TableEntry = TableEntryT<1>;

// ------------------------------------------------------------------ packed
// Compact accumulation layout (à la Malík et al.): for queries with at
// most 8 mapped vertices (signature fits a byte) and keys that use only
// the two boundary slots on graphs below 2^28 - 1 vertices, the whole key
// packs into one 64-bit word — v0:28 | v1:28 | sig:8 — giving a 16-byte
// (key, count) entry that halves join bandwidth against the 32-byte wide
// row. kNoVertex maps to the reserved all-ones 28-bit pattern.

inline constexpr std::uint32_t kPacked28NoVertex = 0x0FFFFFFFu;

inline constexpr bool packable_slot(VertexId v) {
  return v < kPacked28NoVertex || v == kNoVertex;
}

inline constexpr bool packable_key(const TableKey& k) {
  return k.v[2] == kNoVertex && k.v[3] == kNoVertex && k.sig < 256 &&
         packable_slot(k.v[0]) && packable_slot(k.v[1]);
}

inline constexpr std::uint64_t pack_key(const TableKey& k) {
  const std::uint64_t v0 = k.v[0] == kNoVertex ? kPacked28NoVertex : k.v[0];
  const std::uint64_t v1 = k.v[1] == kNoVertex ? kPacked28NoVertex : k.v[1];
  return (v0 << 36) | (v1 << 8) | k.sig;
}

inline constexpr TableKey unpack_key(std::uint64_t p) {
  TableKey k;
  const auto v0 = static_cast<std::uint32_t>(p >> 36) & kPacked28NoVertex;
  const auto v1 = static_cast<std::uint32_t>(p >> 8) & kPacked28NoVertex;
  k.v[0] = v0 == kPacked28NoVertex ? kNoVertex : v0;
  k.v[1] = v1 == kPacked28NoVertex ? kNoVertex : v1;
  k.sig = static_cast<Signature>(p & 0xFFu);
  return k;
}

/// splitmix64 finalizer — the packed-key hash.
inline constexpr std::uint64_t hash_packed_key(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace ccbt
