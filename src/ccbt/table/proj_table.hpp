#pragma once
// Projection tables (Section 4.2): a synopsis of the colorful matches of a
// subquery, keyed by the images of its boundary nodes (plus tracked
// vertices during DB path construction) and the color signature.
//
// Lifecycle: entries are accumulated through an AccumMap during a join,
// then sealed into a sorted dense vector. Sealing with a known key domain
// (the data graph's vertex count) additionally builds a CSR-style bucket
// index over the grouping slot, so group(slot, v) is a single offset
// lookup instead of two binary searches. See README.md in this directory
// for the memory layout, the lane dimension, and the threading model.
//
// The table is parameterized on the batch width B: entry counts are
// per-lane vectors (see table_key.hpp). Sorting, grouping and the bucket
// index depend only on keys, so all widths share one implementation;
// `ProjTable` aliases the scalar B = 1 instantiation.
//
// At B > 1 a sorting seal() additionally *picks the row layout*: it scans
// the sorted rows' lane density and maximum count and — when the caller
// stores the table for reuse (LaneSealHint::kStore) and the compressed
// form is smaller — re-packs the dense `u64[B]` count vectors into a
// per-row occupancy bitmask plus width-adapted packed payload
// (lane_payload.hpp). Readers either take the dense span fast path
// (entries()/group(), valid while the table is dense) or go through the
// layout-independent accessors (row_at, for_each_entry, group_expanded),
// which expand compressed rows on the fly. B = 1 never re-packs: the
// scalar table keeps the pre-batching layout bit for bit.
//
// Tables built from the batched engine's narrow flat sink (from_packed,
// flat_rows.hpp) add a third layout: rows stay as (packed u64 key,
// narrow count vector) straight through the sorting seal — the counting
// partition, per-bucket sorts and dedup merge all move 24-byte rows
// instead of 88-byte dense entries — and, for kStream consumers, remain
// in that layout afterwards, read through the same layout-independent
// accessors. The dense fallback (unpackable keys, u64-range counts, or
// no usable bucket-index domain) is automatic and changes no observable
// counts.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "ccbt/table/accum_map.hpp"
#include "ccbt/table/flat_rows.hpp"
#include "ccbt/table/lane_payload.hpp"
#include "ccbt/table/lane_simd.hpp"
#include "ccbt/table/table_key.hpp"
#include "ccbt/util/error.hpp"

namespace ccbt {

/// Sort orders used by the join procedures.
enum class SortOrder : std::uint8_t {
  kUnsorted,
  kByV0,    // group by slot 0 (child-table lookups by first boundary)
  kByV0V1,  // group by (slot 0, slot 1) (half-cycle merge joins)
  kByV1,    // group by slot 1 (frontier-grouped extensions)
};

/// The key slot a sort order groups by (-1 for kUnsorted).
inline constexpr int group_slot(SortOrder order) {
  switch (order) {
    case SortOrder::kByV0:
    case SortOrder::kByV0V1: return 0;
    case SortOrder::kByV1: return 1;
    case SortOrder::kUnsorted: break;
  }
  return -1;
}

namespace detail {

template <typename E>
bool less_by_v0(const E& a, const E& b) {
  if (a.key.v[0] != b.key.v[0]) return a.key.v[0] < b.key.v[0];
  if (a.key.v[1] != b.key.v[1]) return a.key.v[1] < b.key.v[1];
  if (a.key.v[2] != b.key.v[2]) return a.key.v[2] < b.key.v[2];
  if (a.key.v[3] != b.key.v[3]) return a.key.v[3] < b.key.v[3];
  return a.key.sig < b.key.sig;
}

template <typename E>
bool less_by_v1(const E& a, const E& b) {
  if (a.key.v[1] != b.key.v[1]) return a.key.v[1] < b.key.v[1];
  return less_by_v0(a, b);
}

/// Tie-break inside one slot-0 bucket (slot 0 equal by construction).
template <typename E>
bool less_tail_v0(const E& a, const E& b) {
  if (a.key.v[1] != b.key.v[1]) return a.key.v[1] < b.key.v[1];
  if (a.key.v[2] != b.key.v[2]) return a.key.v[2] < b.key.v[2];
  if (a.key.v[3] != b.key.v[3]) return a.key.v[3] < b.key.v[3];
  return a.key.sig < b.key.sig;
}

/// Tie-break inside one slot-1 bucket (slot 1 equal by construction).
template <typename E>
bool less_tail_v1(const E& a, const E& b) {
  if (a.key.v[0] != b.key.v[0]) return a.key.v[0] < b.key.v[0];
  if (a.key.v[2] != b.key.v[2]) return a.key.v[2] < b.key.v[2];
  if (a.key.v[3] != b.key.v[3]) return a.key.v[3] < b.key.v[3];
  return a.key.sig < b.key.sig;
}

/// Whether a counting partition over `domain` buckets pays off for n
/// entries: the offsets array must not dominate the sort itself. Applies
/// to explicit domains too — a tiny late-stage table on a huge graph must
/// not pay O(num_vertices) per seal.
inline bool domain_worthwhile(std::size_t n, VertexId domain) {
  return domain > 0 &&
         std::uint64_t{domain} <=
             8 * std::uint64_t{std::max<std::size_t>(n, 1)} + 1024;
}

}  // namespace detail

template <int B>
class ProjTableT {
 public:
  using Entry = TableEntryT<B>;
  using Vec = typename LaneOps<B>::Vec;

  ProjTableT() = default;

  /// arity = number of meaningful leading vertex slots (0..4).
  explicit ProjTableT(int arity) : arity_(arity) {}

  static ProjTableT from_map(int arity, AccumMapT<B>&& map) {
    ProjTableT t(arity);
    t.entries_ = map.take_entries();
    return t;
  }

  /// Adopt rows that may contain duplicate keys (the batched engine's
  /// graph-driven primitives emit without hashing): counts of equal keys
  /// are summed by the next seal(). Until then the table behaves like a
  /// multiset — joins and totals are bilinear, so duplicate rows are
  /// semantically identical to their merged sum.
  static ProjTableT from_flat(int arity, std::vector<Entry>&& rows) {
    ProjTableT t(arity);
    t.entries_ = std::move(rows);
    t.dedup_pending_ = !t.entries_.empty();
    return t;
  }

  /// Adopt the batched engine's narrow flat sink (see from_flat for the
  /// duplicate-key semantics): narrow rows stay packed through the
  /// sorting seal instead of widening to dense entries first. A sink
  /// that migrated to wide rows (unpackable keys / u64-range counts)
  /// degrades to the from_flat dense path.
  static ProjTableT from_packed(int arity, FlatRowsT<B>&& rows) {
    ProjTableT t(arity);
    if (rows.empty()) return t;
    t.dedup_pending_ = true;
    if (rows.narrow()) {
      t.pflat_ = std::move(rows);
      t.packed_flat_ = true;
    } else {
      t.entries_ = rows.take_wide();
    }
    return t;
  }

  /// Whether rows with duplicate keys may still be present (cleared by
  /// the first sorting seal).
  bool dedup_pending() const { return dedup_pending_; }

  int arity() const { return arity_; }
  std::size_t size() const {
    if (packed_flat_) return pflat_.size();
    return lane_compressed_ ? ckeys_.size() : entries_.size();
  }
  bool empty() const { return size() == 0; }

  /// Dense row span — the fast path every B = 1 consumer uses. Throws
  /// when the rows live in a compressed layout (use the
  /// layout-independent accessors below).
  std::span<const Entry> entries() const {
    if (lane_compressed_) {
      throw Error("ProjTable::entries(): table is lane-compressed");
    }
    if (packed_flat_) {
      throw Error("ProjTable::entries(): table is in the narrow flat layout");
    }
    return entries_;
  }

  // ---------------------------------------------- layout-independent API

  /// Whether rows live in the lane-compressed layout.
  bool lane_compressed() const { return lane_compressed_; }

  /// Whether rows live in the narrow flat layout (from_packed tables,
  /// before and — for kStream seals — after sealing).
  bool packed_flat() const { return packed_flat_; }

  /// The narrow flat storage itself, or nullptr in the other layouts.
  /// The extend fast path streams a sealed u16 table's raw rows into a
  /// u16 sink without expanding them to dense entries.
  const FlatRowsT<B>* flat_storage() const {
    return packed_flat_ ? &pflat_ : nullptr;
  }

  /// What the last sorting seal's density scan observed (rows == 0 when
  /// never scanned; B = 1 tables are never scanned).
  const LaneLayoutInfo& layout() const { return layout_; }

  TableKey key_at(std::size_t i) const {
    if (packed_flat_) return pflat_.key_at(i);
    return lane_compressed_ ? ckeys_[i] : entries_[i].key;
  }

  /// Make the indexed row accessors usable on an unsealed table:
  /// mid-accumulation sharded rows (see FlatRowsT::prepare_emit) carry
  /// no row index until flattened. No-op on sealed or dense tables.
  void ensure_row_access() {
    if (packed_flat_) pflat_.ensure_flat();
  }

  /// Row i as a dense entry: a reference into the table when dense, a
  /// reference to `tmp` (filled by expanding the packed row) when
  /// compressed or narrow.
  const Entry& row_at(std::size_t i, Entry& tmp) const {
    if (packed_flat_) {
      pflat_.row(i, tmp);
      return tmp;
    }
    if (!lane_compressed_) return entries_[i];
    tmp.key = ckeys_[i];
    tmp.cnt = payload_.expand(i);
    return tmp;
  }

  /// Masked-payload view of row i (compressed tables only).
  LaneRowViewT<B> row_view(std::size_t i) const {
    return payload_.view(i, ckeys_[i]);
  }

  /// Visit every row as a dense entry, in table order. Works on an
  /// unsealed from_packed table too, even while its rows still sit in
  /// accumulation shards (the root table's lane totals read it there).
  template <typename F>
  void for_each_entry(F&& f) const {
    if (packed_flat_) {
      pflat_.for_each_dense(f);
      return;
    }
    if (!lane_compressed_) {
      for (const Entry& e : entries_) f(e);
      return;
    }
    Entry tmp;
    for (std::size_t i = 0; i < ckeys_.size(); ++i) {
      tmp.key = ckeys_[i];
      tmp.cnt = payload_.expand(i);
      f(tmp);
    }
  }

  /// Index range of the group with slot `slot` equal to v (same contract
  /// as group(), but layout independent).
  std::pair<std::size_t, std::size_t> group_span(int slot, VertexId v) const {
    if (slot == index_slot_) {
      if (v >= domain_) return {0, 0};
      return {bucket_off_[v], bucket_off_[v + 1]};
    }
    return group_span_by_search(slot, v);
  }

  /// Dense view of rows [lo, hi): the raw subspan when dense, rows
  /// expanded into `scratch` when compressed. The returned span aliases
  /// `scratch` in the latter case — one live expansion per scratch.
  std::span<const Entry> expand_rows(std::size_t lo, std::size_t hi,
                                     std::vector<Entry>& scratch) const {
    if (packed_flat_) {
      scratch.resize(hi - lo);
      for (std::size_t i = lo; i < hi; ++i) {
        pflat_.row(i, scratch[i - lo]);
      }
      return {scratch.data(), scratch.size()};
    }
    if (!lane_compressed_) {
      return {entries_.data() + lo, hi - lo};
    }
    scratch.resize(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) {
      scratch[i - lo].key = ckeys_[i];
      scratch[i - lo].cnt = payload_.expand(i);
    }
    return {scratch.data(), scratch.size()};
  }

  /// group() for either layout: expands the bucket through `scratch`
  /// when compressed, returns the raw span when dense.
  std::span<const Entry> group_expanded(int slot, VertexId v,
                                        std::vector<Entry>& scratch) const {
    const auto [lo, hi] = group_span(slot, v);
    return expand_rows(lo, hi, scratch);
  }

  // ---------------------------------------------------------------------

  /// Total lane-0 count over all entries (used at the root for B = 1).
  Count total() const {
    Count sum = 0;
    for_each_entry([&](const Entry& e) { sum += LaneOps<B>::lane(e.cnt, 0); });
    return sum;
  }

  /// Per-lane totals over all entries (the root's colorful counts).
  Vec lane_totals() const {
    Vec sum = LaneOps<B>::zero();
    for_each_entry([&](const Entry& e) { LaneOps<B>::add(sum, e.cnt); });
    return sum;
  }

  /// Sort entries for merge joins; remembers the order (no-op if sorted;
  /// kByV0 and kByV0V1 share one comparator, so converting between them is
  /// a relabel). `domain` is the exclusive upper bound on the grouping
  /// slot's values (the data graph's vertex count): when positive — or
  /// when a small bound can be detected from the data — sealing runs a
  /// stable counting partition on the grouping slot (O(n + domain) plus
  /// tiny per-bucket sorts) and keeps the bucket offsets as an O(1) group
  /// index. With domain 0 and no detectable bound it falls back to a
  /// comparison sort and group() uses binary search.
  ///
  /// At B > 1 the seal ends with the layout choice described in the file
  /// comment; `hint` says whether the caller will store the table.
  void seal(SortOrder order, VertexId domain = 0,
            LaneSealHint hint = LaneSealHint::kStore);
  SortOrder order() const { return order_; }

  /// Whether group() resolves through the O(1) bucket index.
  bool has_bucket_index() const { return !bucket_off_.empty(); }

  /// Reorder the rows INSIDE every bucket of the slot-1 index by
  /// descending rank of the slot-0 (anchor) vertex. With the anchor rank
  /// monotone across a bucket, a DB probe that requires anchor ≻ w scans
  /// only the prefix with rank > rank(w) (a partition-point cut) instead
  /// of testing every row. Buckets themselves do not move, so the index
  /// stays valid; the full-key order inside buckets is given up, which is
  /// only legal on a deduped table — the next order-changing seal
  /// re-sorts from scratch (rank_partitioned() gates the relabel
  /// shortcut). No-op (flag stays false) unless the table is sealed
  /// kByV1 with a bucket index and all rows are mergeable-duplicate free.
  void rank_partition_buckets(std::span<const std::uint32_t> ranks) {
    rank_partitioned_ = false;
    if (!has_bucket_index() || index_slot_ != 1 || dedup_pending_ ||
        lane_compressed_) {
      return;
    }
    const std::size_t nb = bucket_off_.size() - 1;
    [[maybe_unused]] const std::size_t n = size();
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 1024) if (n > (1u << 15))
#endif
    for (std::size_t v = 0; v < nb; ++v) {
      const std::uint32_t lo = bucket_off_[v];
      const std::uint32_t hi = bucket_off_[v + 1];
      if (hi - lo < 2) continue;
      if (packed_flat_) {
        pflat_.sort_range_by_rank_desc(lo, hi, ranks);
      } else {
        std::sort(entries_.begin() + lo, entries_.begin() + hi,
                  [ranks](const Entry& a, const Entry& b) {
                    return ranks[a.key.v[0]] > ranks[b.key.v[0]];
                  });
      }
    }
    rank_partitioned_ = true;
  }

  /// Whether the buckets are currently rank-partitioned (anchor-rank
  /// descending inside each bucket rather than full-key sorted).
  bool rank_partitioned() const { return rank_partitioned_; }

  /// Contiguous range of entries whose slot `slot` equals v; requires the
  /// matching seal order (kByV0 for slot 0, kByV1 for slot 1). O(1) when
  /// the bucket index covers `slot`, two binary searches otherwise.
  /// Dense layout only — compressed tables use group_expanded().
  std::span<const Entry> group(int slot, VertexId v) const {
    if (lane_compressed_ || packed_flat_) {
      throw Error("ProjTable::group(): rows are in a compressed layout");
    }
    const auto [lo, hi] = group_span(slot, v);
    return {entries_.data() + lo, hi - lo};
  }

  /// Swap slots 0 and 1 in every key — the transpose of Section 5.2
  /// ("the boundary tables are transpose of each other"). Invalidates the
  /// seal order; the result is dense (the caller reseals, which re-picks
  /// the layout).
  ProjTableT transposed() const {
    ProjTableT out(arity_);
    out.dedup_pending_ = dedup_pending_;
    out.entries_.reserve(size());
    for_each_entry([&](const Entry& e) {
      Entry t = e;
      std::swap(t.key.v[0], t.key.v[1]);
      out.entries_.push_back(t);
    });
    return out;
  }

  /// Sum out every slot except slot 0 (projection to a unary table), or to
  /// arity 0. Used when a cycle's diagonal split must be re-aggregated to
  /// the block's true boundary keys.
  ProjTableT aggregated(int new_arity) const {
    AccumMapT<B> map(size());
    for_each_entry([&](const Entry& e) {
      TableKey key;
      for (int s = 0; s < new_arity; ++s) key.v[s] = e.key.v[s];
      key.sig = e.key.sig;
      map.add(key, e.cnt);
    });
    return ProjTableT::from_map(new_arity, std::move(map));
  }

  void push_unchecked(const Entry& e) {
    if (lane_compressed_) unpack_lanes();
    if (packed_flat_) unpack_flat();
    entries_.push_back(e);
    drop_index();
    rank_partitioned_ = false;
  }

 private:
  std::pair<std::size_t, std::size_t> group_span_by_search(
      int slot, VertexId v) const {
    // Branchless-key binary searches over row indices (works for both
    // layouts through key_at).
    const std::size_t n = size();
    std::size_t lo = 0, hi = n;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (key_at(mid).v[slot] < v) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    std::size_t hi2 = n;
    std::size_t lo2 = lo;
    while (lo2 < hi2) {
      const std::size_t mid = lo2 + (hi2 - lo2) / 2;
      if (key_at(mid).v[slot] <= v) {
        lo2 = mid + 1;
      } else {
        hi2 = mid;
      }
    }
    return {lo, lo2};
  }

  /// Smallest detectable domain for an index-less seal: max slot value +
  /// 1, or 0 when the values are too sparse (or are kNoVertex) for a
  /// counting partition to pay off.
  VertexId detect_domain(int slot) const {
    VertexId max_v = 0;
    const std::size_t n = size();
    if (packed_flat_) {
      // Shard-aware (and skips the per-row key unpack): indexed key
      // access is unavailable while the rows sit in shards.
      max_v = pflat_.max_slot_value(slot);
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        max_v = std::max(max_v, key_at(i).v[slot]);
      }
    }
    if (max_v == std::numeric_limits<VertexId>::max()) return 0;  // kNoVertex
    const std::uint64_t domain = std::uint64_t{max_v} + 1;
    if (!detail::domain_worthwhile(n, static_cast<VertexId>(domain))) {
      return 0;
    }
    return static_cast<VertexId>(domain);
  }

  /// Stable counting partition by `slot` over [0, domain), then sort each
  /// bucket by the remaining key fields; keeps the offsets as the index.
  void bucket_sort(int slot, VertexId domain);

  /// Entries already sorted for `order_`; (re)build the offset index only.
  void build_index(int slot, VertexId domain);

  /// seal() for the narrow flat layout: partition + sort + dedup on the
  /// packed 24/40-byte rows, falling back to the dense path when the
  /// rows resist (no usable domain, out-of-domain keys, or a merged
  /// count outgrowing u32).
  void seal_packed_flat(SortOrder order, VertexId domain, LaneSealHint hint);

  /// Layout decision for a sorted, deduped narrow table: stay narrow
  /// (the hot-path default — consumers read through the
  /// layout-independent accessors), re-pack to the masked columnar
  /// layout when storing and it is smaller, or widen to dense when
  /// neither compressed form pays.
  void finish_flat_layout(LaneSealHint hint, const FlatStats& st);

  /// Narrow flat rows -> masked columnar layout (ckeys_ + payload_).
  void pack_lanes_from_flat();

  /// Narrow flat rows -> dense entries (order preserved; shard-aware).
  void unpack_flat() {
    entries_.clear();
    entries_.reserve(pflat_.size());
    pflat_.for_each_dense([&](const Entry& e) { entries_.push_back(e); });
    pflat_.clear();
    packed_flat_ = false;
    layout_.packed = false;
  }

  /// After the counting partition: buckets are independent, sort each by
  /// the remaining key fields. Flat-built tables (duplicates pending) use
  /// an unstable sort — the tail order is a total order over the full
  /// key, so equal keys are about to be merged and stability buys
  /// nothing, while std::sort avoids stable_sort's buffer traffic on the
  /// wide lane-vector rows.
  void finish_buckets(int slot, const std::vector<std::uint32_t>& off) {
    auto tail_less = slot == 0 ? detail::less_tail_v0<Entry>
                               : detail::less_tail_v1<Entry>;
    const std::size_t domain = off.size() - 1;
    const std::size_t n = entries_.size();
    (void)n;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 1024) if (n > (1u << 15))
#endif
    for (std::size_t v = 0; v < domain; ++v) {
      const std::uint32_t lo = off[v];
      const std::uint32_t hi = off[v + 1];
      if (hi - lo > 1) {
        if (dedup_pending_) {
          std::sort(entries_.begin() + lo, entries_.begin() + hi, tail_less);
        } else {
          std::stable_sort(entries_.begin() + lo, entries_.begin() + hi,
                           tail_less);
        }
      }
    }
  }

  void drop_index() {
    bucket_off_.clear();
    index_slot_ = -1;
    domain_ = 0;
  }

  /// Sum runs of equal keys after a full-key sort (flat-built tables).
  void merge_duplicates() {
    std::size_t w = 0;
    std::size_t i = 0;
    while (i < entries_.size()) {
      Entry acc = entries_[i];
      std::size_t j = i + 1;
      while (j < entries_.size() && entries_[j].key == acc.key) {
        LaneSimdT<B>::add(acc.cnt, entries_[j].cnt);
        ++j;
      }
      entries_[w++] = acc;
      i = j;
    }
    entries_.resize(w);
  }

  /// The seal-time layout choice (B > 1): scan density / max count, then
  /// re-pack when the caller stores the table and packing shrinks it.
  void choose_layout(LaneSealHint hint) {
    if constexpr (B > 1) {
      if (dedup_pending_) return;
      if (lane_compressed_) {
        // kStream promises the dense span fast path to the consumer that
        // follows this seal: honor it even when re-sealing an already
        // packed (stored) table.
        if (hint == LaneSealHint::kStream) unpack_lanes();
        return;
      }
      if (hint == LaneSealHint::kStore) {
        layout_ = scan_lane_layout<B>(
            std::span<const Entry>(entries_.data(), entries_.size()));
        if (lane_layout_profitable(layout_)) pack_lanes();
        return;
      }
      // kStream tables never pack, so the scan is telemetry only: bound
      // it to a prefix sample so hot-path reseals of large intermediate
      // tables don't pay a second full pass over the rows.
      constexpr std::size_t kStreamScanSample = 1u << 16;
      layout_ = scan_lane_layout<B>(std::span<const Entry>(
          entries_.data(), std::min(entries_.size(), kStreamScanSample)));
    } else {
      (void)hint;
    }
  }

  void pack_lanes() {
    const std::size_t n = entries_.size();
    ckeys_.resize(n);
    payload_.reset(layout_.width, n, layout_.lanes_occupied);
    for (std::size_t i = 0; i < n; ++i) {
      ckeys_[i] = entries_[i].key;
      payload_.append(entries_[i].cnt);
    }
    entries_.clear();
    entries_.shrink_to_fit();
    lane_compressed_ = true;
    layout_.packed = true;
  }

  void unpack_lanes() {
    const std::size_t n = ckeys_.size();
    entries_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      entries_[i].key = ckeys_[i];
      entries_[i].cnt = payload_.expand(i);
    }
    ckeys_.clear();
    ckeys_.shrink_to_fit();
    payload_.clear();
    lane_compressed_ = false;
    layout_.packed = false;
  }

  int arity_ = 0;
  SortOrder order_ = SortOrder::kUnsorted;
  bool dedup_pending_ = false;
  // Buckets reordered by anchor rank (see rank_partition_buckets): the
  // intra-bucket key order is gone, so sorted_already shortcuts are off.
  bool rank_partitioned_ = false;
  std::vector<Entry> entries_;

  // Lane-compressed layout (B > 1, after a kStore seal that packed):
  // unpadded keys in table order plus the columnar packed payload.
  // Exactly one of entries_ / (ckeys_, payload_) / pflat_ holds the rows.
  bool lane_compressed_ = false;
  std::vector<TableKey> ckeys_;
  LanePayloadT<B> payload_;
  LaneLayoutInfo layout_;

  // Narrow flat layout (B > 1, from_packed tables): packed-key rows with
  // width-adapted count vectors, kept through the sorting seal.
  bool packed_flat_ = false;
  FlatRowsT<B> pflat_;

  // CSR bucket index over the grouping slot: entries with key slot value v
  // occupy [bucket_off_[v], bucket_off_[v + 1]). Empty when not built.
  std::vector<std::uint32_t> bucket_off_;
  int index_slot_ = -1;
  VertexId domain_ = 0;
};

template <int B>
void ProjTableT<B>::seal(SortOrder order, VertexId domain,
                         LaneSealHint hint) {
  if (order == SortOrder::kUnsorted) {
    order_ = order;
    drop_index();
    return;
  }
  if (packed_flat_) {
    seal_packed_flat(order, domain, hint);
    return;
  }
  const int slot = group_slot(order);
  // kByV0 sorting is a refinement that also groups by (v0, v1): both
  // orders share one comparator, so converting between them (and staying
  // put) never re-sorts — at most the index is (re)built. A
  // rank-partitioned table gave up its intra-bucket key order, so the
  // relabel shortcut is off until a real re-sort restores it.
  const bool sorted_already =
      !rank_partitioned_ &&
      (order_ == order || group_slot(order_) == slot);
  if (!detail::domain_worthwhile(size(), domain)) {
    domain = detect_domain(slot);
  }
  if (sorted_already) {
    order_ = order;
    if (!has_bucket_index() || index_slot_ != slot) {
      if (domain > 0 && size() < std::numeric_limits<std::uint32_t>::max()) {
        build_index(slot, domain);
      }
    }
    choose_layout(hint);
    return;
  }
  // Re-sorting moves whole rows: work in the dense layout.
  if (lane_compressed_) unpack_lanes();
  drop_index();
  rank_partitioned_ = false;
  if (domain > 0 &&
      entries_.size() < std::numeric_limits<std::uint32_t>::max()) {
    bucket_sort(slot, domain);
  } else {
    std::stable_sort(entries_.begin(), entries_.end(),
                     slot == 0 ? detail::less_by_v0<Entry>
                               : detail::less_by_v1<Entry>);
  }
  // Both sort paths leave entries in full-key order, so flat-built rows
  // with equal keys are adjacent: one linear pass sums them, then the
  // bucket index (now stale) is recounted over the merged rows.
  if (dedup_pending_) {
    merge_duplicates();
    dedup_pending_ = false;
    if (has_bucket_index()) {
      const VertexId d = domain_;
      drop_index();
      build_index(slot, d);
    }
  }
  order_ = order;
  choose_layout(hint);
}

template <int B>
void ProjTableT<B>::seal_packed_flat(SortOrder order, VertexId domain,
                                     LaneSealHint hint) {
  const int slot = group_slot(order);
  const bool sorted_already =
      !rank_partitioned_ &&
      (order_ == order || group_slot(order_) == slot);
  if (!detail::domain_worthwhile(size(), domain)) {
    domain = detect_domain(slot);
  }
  if (sorted_already && !dedup_pending_) {
    // Relabel / repeated seal: rows and index are already right; only
    // the layout decision may change (e.g. a kStore reseal). The last
    // seal's density scan still describes these rows — rescan only if
    // the table was never scanned.
    order_ = order;
    FlatStats st;
    if (layout_.rows == pflat_.size() && layout_.rows != 0) {
      st.rows = layout_.rows;
      st.lanes_occupied = layout_.lanes_occupied;
      st.max_count = layout_.max_count;
    } else {
      st = pflat_.scan();
    }
    finish_flat_layout(hint, st);
    return;
  }
  if (domain == 0 ||
      size() >= std::numeric_limits<std::uint32_t>::max() ||
      !pflat_.sort_by_slot(slot, domain)) {
    // No usable counting-partition domain (or out-of-domain keys): the
    // dense path also serves the index-less consumers, which need
    // entries().
    unpack_flat();
    seal(order, domain, hint);
    return;
  }
  rank_partitioned_ = false;
  FlatStats st;
  if (dedup_pending_) {
    st = pflat_.merge_duplicates();
    dedup_pending_ = false;
  } else {
    st = pflat_.scan();
  }
  order_ = order;
  if (!pflat_.narrow()) {
    // A merged count outgrew u32: the rows widened. They are already in
    // full-key order — adopt them dense and let the dense chooser finish.
    entries_ = pflat_.take_wide();
    packed_flat_ = false;
    drop_index();
    build_index(slot, domain);
    choose_layout(hint);
    return;
  }
  drop_index();
  build_index(slot, domain);
  finish_flat_layout(hint, st);
}

template <int B>
void ProjTableT<B>::finish_flat_layout(LaneSealHint hint,
                                       const FlatStats& st) {
  layout_ = LaneLayoutInfo{};
  layout_.rows = st.rows;
  layout_.lane_slots = st.rows * static_cast<std::uint64_t>(B);
  layout_.lanes_occupied = st.lanes_occupied;
  layout_.max_count = st.max_count;
  layout_.width = pflat_.width();
  layout_.dense_bytes = st.rows * sizeof(Entry);
  layout_.packed_bytes = pflat_.byte_size();
  layout_.packed = true;
  if (hint == LaneSealHint::kStore) {
    // Stored tables are probed repeatedly: take the masked columnar
    // layout when it beats the narrow rows (sparse lanes), else stay
    // narrow, else dense.
    LaneLayoutInfo masked = layout_;
    masked.width = choose_payload_width(st.max_count);
    masked.packed_bytes =
        st.rows * (sizeof(TableKey) + 1 + 4) +
        st.lanes_occupied *
            static_cast<std::uint64_t>(payload_width_bytes(masked.width));
    if (lane_layout_profitable(masked) &&
        masked.packed_bytes < layout_.packed_bytes) {
      layout_ = masked;
      pack_lanes_from_flat();
      return;
    }
  }
  if (!lane_layout_profitable(layout_)) unpack_flat();
}

template <int B>
void ProjTableT<B>::pack_lanes_from_flat() {
  const std::size_t n = pflat_.size();
  ckeys_.resize(n);
  payload_.reset(layout_.width, n, layout_.lanes_occupied);
  Entry tmp;
  for (std::size_t i = 0; i < n; ++i) {
    pflat_.row(i, tmp);
    ckeys_[i] = tmp.key;
    payload_.append(tmp.cnt);
  }
  pflat_.clear();
  packed_flat_ = false;
  lane_compressed_ = true;
  layout_.packed = true;
}

template <int B>
void ProjTableT<B>::build_index(int slot, VertexId domain) {
  std::vector<std::uint32_t> off(static_cast<std::size_t>(domain) + 1, 0);
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    const VertexId v = key_at(i).v[slot];
    if (v >= domain) return;  // out-of-domain key: keep binary search
    ++off[v + 1];
  }
  for (std::size_t v = 1; v <= domain; ++v) off[v] += off[v - 1];
  bucket_off_ = std::move(off);
  index_slot_ = slot;
  domain_ = domain;
}

template <int B>
void ProjTableT<B>::bucket_sort(int slot, VertexId domain) {
  const std::size_t n = entries_.size();
  std::vector<std::uint32_t> off(static_cast<std::size_t>(domain) + 1, 0);

#ifdef _OPENMP
  // Parallel counting pass + stable scatter with per-chunk histograms:
  // the input splits into a fixed number of contiguous chunks, each
  // chunk counts into its own histogram, the per-bucket cursors are laid
  // out so chunk c's share of bucket v starts after chunks < c (chunks
  // are in input order, so the scatter stays stable), and each chunk then
  // scatters independently. Work is distributed over chunk INDICES with
  // `omp for`, so the result is identical for any team size the runtime
  // actually delivers (dynamic teams, nested regions, 1 core). Gated on
  // dense-ish domains so the histograms (chunks x domain u32) stay
  // within the table's own footprint.
  const int max_threads = omp_get_max_threads();
  if (max_threads > 1 && n >= (1u << 16) && domain <= n) {
    const int nchunks = max_threads;
    const std::size_t chunk = (n + nchunks - 1) / nchunks;
    std::vector<std::vector<std::uint32_t>> hist(nchunks);
    bool out_of_domain = false;
#pragma omp parallel for schedule(static, 1) reduction(|| : out_of_domain)
    for (int c = 0; c < nchunks; ++c) {
      const std::size_t lo = std::min(n, c * chunk);
      const std::size_t hi = std::min(n, lo + chunk);
      auto& h = hist[c];
      h.assign(static_cast<std::size_t>(domain), 0);
      for (std::size_t i = lo; i < hi; ++i) {
        const VertexId v = entries_[i].key.v[slot];
        if (v >= domain) {
          out_of_domain = true;
          break;
        }
        ++h[v];
      }
    }
    if (!out_of_domain) {
      // off[v+1] = bucket totals -> exclusive prefix; then rebase each
      // chunk's histogram into its scatter cursor for bucket v.
      for (int c = 0; c < nchunks; ++c) {
        for (std::size_t v = 0; v < domain; ++v) off[v + 1] += hist[c][v];
      }
      for (std::size_t v = 1; v <= domain; ++v) off[v] += off[v - 1];
#pragma omp parallel for schedule(static)
      for (std::size_t v = 0; v < domain; ++v) {
        std::uint32_t cursor = off[v];
        for (int c = 0; c < nchunks; ++c) {
          const std::uint32_t cnt = hist[c][v];
          hist[c][v] = cursor;
          cursor += cnt;
        }
      }
      std::vector<Entry> sorted(n);
#pragma omp parallel for schedule(static, 1)
      for (int c = 0; c < nchunks; ++c) {
        const std::size_t lo = std::min(n, c * chunk);
        const std::size_t hi = std::min(n, lo + chunk);
        auto& cur = hist[c];
        for (std::size_t i = lo; i < hi; ++i) {
          sorted[cur[entries_[i].key.v[slot]]++] = entries_[i];
        }
      }
      entries_ = std::move(sorted);
      finish_buckets(slot, off);
      bucket_off_ = std::move(off);
      index_slot_ = slot;
      domain_ = domain;
      return;
    }
    // Out-of-domain key seen: fall through to the serial path, which
    // handles the comparison-sort fallback.
    off.assign(static_cast<std::size_t>(domain) + 1, 0);
  }
#endif

  for (const Entry& e : entries_) {
    const VertexId v = e.key.v[slot];
    if (v >= domain) {  // out-of-domain key: fall back, no index
      std::stable_sort(entries_.begin(), entries_.end(),
                       slot == 0 ? detail::less_by_v0<Entry>
                                 : detail::less_by_v1<Entry>);
      return;
    }
    ++off[v + 1];
  }
  for (std::size_t v = 1; v <= domain; ++v) off[v] += off[v - 1];

  // Stable scatter: cursor[v] walks its bucket in input order.
  std::vector<Entry> sorted(n);
  {
    std::vector<std::uint32_t> cursor(off.begin(), off.end() - 1);
    for (const Entry& e : entries_) sorted[cursor[e.key.v[slot]]++] = e;
  }
  entries_ = std::move(sorted);

  finish_buckets(slot, off);
  bucket_off_ = std::move(off);
  index_slot_ = slot;
  domain_ = domain;
}

using ProjTable = ProjTableT<1>;

// The scalar table is the hot instantiation; compiled once in
// proj_table.cpp (alongside the batched widths) rather than per TU.
extern template class ProjTableT<1>;
extern template class ProjTableT<2>;
extern template class ProjTableT<4>;
extern template class ProjTableT<8>;

}  // namespace ccbt
