#include "ccbt/engine/executor.hpp"

#include <algorithm>

#include "ccbt/engine/cycle_solver.hpp"
#include "ccbt/engine/leaf_solver.hpp"
#include "ccbt/engine/path_builder.hpp"
#include "ccbt/util/error.hpp"
#include "ccbt/util/timer.hpp"

namespace ccbt {

namespace {

template <int B>
ExecStats run_plan_impl(const ExecContext& outer_cx, const DecompTree& tree) {
  Timer timer;
  ExecStats stats;
  // Collect seal-time lane-layout observations through a context copy so
  // callers need no wiring (ExecContext is a bundle of references).
  ExecContext cx = outer_cx;
  cx.lane_telemetry = &stats.lanes;
  cx.stage = &stats.stage;
  cx.accum = &stats.accum;
  stats.lanes_used = cx.chi.lanes();
  TablePoolT<B> pool(tree.blocks.size(), cx.g.num_vertices(),
                     cx.opts.lane_compress, &stats.stage);

  auto record_root = [&](const typename LaneOps<B>::Vec& totals) {
    for (int l = 0; l < B; ++l) {
      stats.colorful_lane[l] = LaneOps<B>::lane(totals, l);
    }
    stats.colorful = stats.colorful_lane[0];
  };

  for (std::size_t i = 0; i < tree.blocks.size(); ++i) {
    const Block& blk = tree.blocks[i];
    const bool is_root = (static_cast<int>(i) == tree.root);

    if (blk.kind == BlockKind::kSingleton) {
      if (!is_root) throw Error("run_plan: singleton below the root");
      if (blk.node_child[0] >= 0) {
        record_root(pool.get(blk.node_child[0]).lane_totals());
      } else {
        // Single-node query: every data vertex is a colorful match under
        // every coloring.
        for (int l = 0; l < B; ++l) {
          stats.colorful_lane[l] = cx.g.num_vertices();
        }
        stats.colorful = cx.g.num_vertices();
      }
      break;
    }

    ProjTableT<B> table = (blk.kind == BlockKind::kLeafEdge)
                              ? solve_leaf_edge<B>(cx, blk, pool)
                              : solve_cycle<B>(cx, blk, pool);
    stats.peak_table_entries =
        std::max(stats.peak_table_entries, table.size());
    if (is_root) {
      record_root(table.lane_totals());
      break;
    }
    pool.store(static_cast<int>(i), std::move(table));
    cx.note_lanes(pool.get(static_cast<int>(i)).layout());
  }

  stats.wall_seconds = timer.seconds();
  if (cx.load != nullptr) {
    stats.sim_time = cx.load->sim_time();
    stats.total_ops = cx.load->total_ops();
    stats.max_rank_ops = cx.load->max_rank_ops();
    stats.avg_rank_ops = cx.load->avg_rank_ops();
    stats.total_comm = cx.load->total_comm();
  }
  return stats;
}

}  // namespace

ExecStats run_plan(const ExecContext& cx, const DecompTree& tree) {
  if (tree.root < 0) throw Error("run_plan: tree has no root");
  switch (cx.chi.lanes()) {
    case 1: return run_plan_impl<1>(cx, tree);
    case 2: return run_plan_impl<2>(cx, tree);
    case 4: return run_plan_impl<4>(cx, tree);
    case 8: return run_plan_impl<8>(cx, tree);
    default: break;
  }
  throw Error("run_plan: batch width must be 1, 2, 4 or 8");
}

}  // namespace ccbt
