#include "ccbt/engine/path_builder.hpp"

#include "ccbt/util/error.hpp"

namespace ccbt {

void TablePool::store(int block, ProjTable table) {
  table.seal(SortOrder::kByV0, domain_);
  if (transposed_.empty()) {
    transposed_.resize(tables_.size());
    has_transposed_.resize(tables_.size(), false);
  }
  tables_[block] = std::move(table);
}

const ProjTable& TablePool::oriented(int block, bool transposed) {
  if (!transposed) return tables_[block];
  if (!has_transposed_[block]) {
    ProjTable t = tables_[block].transposed();
    t.seal(SortOrder::kByV0, domain_);
    transposed_[block] = std::move(t);
    has_transposed_[block] = true;
  }
  return transposed_[block];
}

std::size_t TablePool::total_entries() const {
  std::size_t sum = 0;
  for (const auto& t : tables_) sum += t.size();
  return sum;
}

bool needs_transpose(const Block& blk, int edge, bool forward) {
  return forward ? blk.edge_child_flip[edge] : !blk.edge_child_flip[edge];
}

ProjTable build_path(const ExecContext& cx, const Block& blk, TablePool& pool,
                     const PathSpec& spec) {
  const std::size_t steps = spec.positions.size();
  if (steps < 2) throw Error("build_path: path needs at least one edge");

  // --- Initial table: the first edge of the walk.
  ExtendOpts init_opts{spec.track_slot_at[1], spec.anchor_higher};
  ProjTable table;
  {
    const int e0 = spec.edge_index[0];
    const int child = blk.edge_child[e0];
    if (child < 0) {
      table = init_path_from_graph(cx, init_opts);
    } else {
      const ProjTable& oriented =
          pool.oriented(child, needs_transpose(blk, e0, spec.edge_forward[0]));
      table = init_path_from_child(cx, oriented, /*flip=*/false, init_opts);
    }
  }
  if (spec.include_start_annot) {
    const int child = blk.node_child[spec.positions[0]];
    if (child >= 0) table = node_join(cx, table, pool.get(child), /*slot=*/0);
  }

  // --- Walk: NodeJoin at each reached position, then extend (Fig 7).
  for (std::size_t s = 1; s < steps; ++s) {
    const bool is_end = (s + 1 == steps);
    if (!is_end || spec.include_end_annot) {
      const int child = blk.node_child[spec.positions[s]];
      if (child >= 0) {
        table = node_join(cx, table, pool.get(child), /*slot=*/1);
      }
    }
    if (is_end) break;
    ExtendOpts opts{spec.track_slot_at[s + 1], spec.anchor_higher};
    const int e = spec.edge_index[s];
    const int child = blk.edge_child[e];
    if (child < 0) {
      table = extend_with_graph(cx, table, opts);
    } else {
      const ProjTable& oriented =
          pool.oriented(child, needs_transpose(blk, e, spec.edge_forward[s]));
      table = extend_with_child(cx, table, oriented, opts);
    }
  }
  return table;
}

}  // namespace ccbt
