#pragma once
// Query (template/motif) graphs: small undirected simple graphs with at
// most kMaxQueryNodes nodes, stored as adjacency bitmasks.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ccbt/graph/types.hpp"

namespace ccbt {

class QueryGraph {
 public:
  QueryGraph() = default;

  explicit QueryGraph(int num_nodes, std::string name = "");

  /// Build from an explicit edge list over nodes 0..num_nodes-1.
  QueryGraph(int num_nodes,
             const std::vector<std::pair<int, int>>& edges,
             std::string name = "");

  int num_nodes() const { return n_; }
  int num_edges() const;
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  void add_edge(QNode a, QNode b);
  void remove_edge(QNode a, QNode b);
  bool has_edge(QNode a, QNode b) const {
    return (adj_[a] >> b) & 1u;
  }

  /// Bitmask of neighbors of a.
  std::uint32_t neighbors(QNode a) const { return adj_[a]; }

  int degree(QNode a) const;

  std::vector<std::pair<int, int>> edge_pairs() const;

  bool connected() const;

  /// Ordering of nodes such that every node after the first is adjacent
  /// to at least one earlier node (BFS order); used by the exact counter.
  std::vector<QNode> connected_order() const;

 private:
  int n_ = 0;
  std::string name_;
  std::uint32_t adj_[kMaxQueryNodes] = {};
};

}  // namespace ccbt
