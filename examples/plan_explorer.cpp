// Plan explorer: shows the Section 4 decomposition and the Section 6 plan
// heuristic at work. For each named query it prints every decomposition
// tree (blocks, cycle lengths, boundary counts, annotations) and marks
// the heuristic's choice — the Figure 2 walk-through, programmatically.
//
// Build & run:  ./examples/plan_explorer

#include <iostream>

#include "ccbt/core/ccbt.hpp"
#include "ccbt/decomp/decompose.hpp"

namespace {

using namespace ccbt;

const char* kind_name(BlockKind k) {
  switch (k) {
    case BlockKind::kLeafEdge: return "leaf-edge";
    case BlockKind::kCycle: return "cycle";
    case BlockKind::kSingleton: return "singleton";
  }
  return "?";
}

void describe(const DecompTree& tree) {
  for (std::size_t i = 0; i < tree.blocks.size(); ++i) {
    const Block& b = tree.blocks[i];
    std::cout << "    B" << i << ": " << kind_name(b.kind);
    if (b.kind == BlockKind::kCycle) {
      std::cout << " length " << b.length() << ", " << b.boundary_count()
                << " boundary node(s)";
    }
    std::cout << ", nodes {";
    for (std::size_t j = 0; j < b.nodes.size(); ++j) {
      std::cout << (j ? "," : "") << int(b.nodes[j]);
    }
    std::cout << "}";
    int annotations = 0;
    for (int c : b.node_child) annotations += (c >= 0);
    for (int c : b.edge_child) annotations += (c >= 0);
    if (annotations > 0) std::cout << ", " << annotations << " annotation(s)";
    if (static_cast<int>(i) == tree.root) std::cout << "  <- root";
    std::cout << "\n";
  }
}

}  // namespace

int main() {
  using namespace ccbt;

  for (const char* name : {"satellite", "brain1", "brain2", "glet2"}) {
    const QueryGraph q = named_query(name);
    std::cout << "=== query '" << name << "' (" << q.num_nodes()
              << " nodes, " << q.num_edges() << " edges) ===\n";
    const Plan chosen = make_plan(q);
    const std::string chosen_canon =
        Contractor::canonical_string(chosen.tree);
    const auto plans = enumerate_plans(q);
    std::cout << plans.size() << " decomposition tree(s):\n";
    for (std::size_t p = 0; p < plans.size(); ++p) {
      const bool is_chosen =
          Contractor::canonical_string(plans[p].tree) == chosen_canon;
      std::cout << "  plan " << p << " [longest cycle "
                << plans[p].features.longest_cycle << ", boundary "
                << plans[p].features.total_boundary << ", annotations "
                << plans[p].features.total_annotations << "]"
                << (is_chosen ? "  ** heuristic choice **" : "") << "\n";
      describe(plans[p].tree);
    }
    std::cout << "\n";
  }
  std::cout << "The heuristic prefers (i) the shortest longest-cycle, then\n"
            << "(ii) fewest boundary nodes, then (iii) fewest annotations\n"
            << "(Section 6); Figure 14's bench measures how close this is\n"
            << "to the measured-optimal plan.\n";
  return 0;
}
