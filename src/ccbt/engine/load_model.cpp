#include "ccbt/engine/load_model.hpp"

#include <algorithm>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace ccbt {

namespace {

std::size_t max_threads() {
#ifdef _OPENMP
  return static_cast<std::size_t>(std::max(1, omp_get_max_threads()));
#else
  return 1;
#endif
}

}  // namespace

LoadModel::LoadModel(std::uint32_t ranks, double comm_cost)
    : comm_cost_(comm_cost), bufs_(max_threads()), total_ops_(ranks, 0) {
  for (ThreadCharges& b : bufs_) {
    b.ops = std::make_unique<std::atomic<std::uint64_t>[]>(ranks);
    b.recv = std::make_unique<std::atomic<std::uint64_t>[]>(ranks);
    for (std::uint32_t r = 0; r < ranks; ++r) {
      b.ops[r].store(0, std::memory_order_relaxed);
      b.recv[r].store(0, std::memory_order_relaxed);
    }
  }
}

LoadModel::ThreadCharges& LoadModel::mine() {
#ifdef _OPENMP
  // Engine parallel regions never exceed omp_get_max_threads() at model
  // construction; if a caller enlarges the team afterwards, the modulo
  // folds the surplus threads onto existing buffers, whose atomic
  // counters keep that safe.
  return bufs_[static_cast<std::size_t>(omp_get_thread_num()) %
               bufs_.size()];
#else
  return bufs_[0];
#endif
}

void LoadModel::add_ops(std::uint32_t rank, std::uint64_t n) {
  mine().ops[rank].fetch_add(n, std::memory_order_relaxed);
}

void LoadModel::add_comm(std::uint32_t from, std::uint32_t to,
                         std::uint64_t n) {
  if (from != to) {
    ThreadCharges& b = mine();
    b.recv[to].fetch_add(n, std::memory_order_relaxed);
    b.comm.fetch_add(n, std::memory_order_relaxed);
  }
}

void LoadModel::end_phase() {
  const std::size_t ranks = total_ops_.size();
  double makespan = 0.0;
  for (std::size_t r = 0; r < ranks; ++r) {
    std::uint64_t ops = 0;
    std::uint64_t recv = 0;
    for (ThreadCharges& b : bufs_) {
      ops += b.ops[r].exchange(0, std::memory_order_relaxed);
      recv += b.recv[r].exchange(0, std::memory_order_relaxed);
    }
    total_ops_[r] += ops;
    const double work = static_cast<double>(ops) +
                        comm_cost_ * static_cast<double>(recv);
    makespan = std::max(makespan, work);
  }
  for (ThreadCharges& b : bufs_) {
    total_comm_ += b.comm.exchange(0, std::memory_order_relaxed);
  }
  sim_time_ += makespan;
}

std::uint64_t LoadModel::total_ops() const {
  std::uint64_t sum = 0;
  for (auto v : total_ops_) sum += v;
  return sum;
}

std::uint64_t LoadModel::max_rank_ops() const {
  std::uint64_t best = 0;
  for (auto v : total_ops_) best = std::max(best, v);
  return best;
}

double LoadModel::avg_rank_ops() const {
  if (total_ops_.empty()) return 0.0;
  return static_cast<double>(total_ops()) /
         static_cast<double>(total_ops_.size());
}

}  // namespace ccbt
