#include "ccbt/core/planted.hpp"

#include "ccbt/graph/edge_list.hpp"
#include "ccbt/query/automorphism.hpp"
#include "ccbt/util/error.hpp"
#include "ccbt/util/rng.hpp"

namespace ccbt {

PlantedGraph plant_copies(const QueryGraph& q, int copies,
                          VertexId host_vertices, std::size_t noise_edges,
                          std::uint64_t seed) {
  if (copies < 0) throw Error("plant_copies: copies must be >= 0");
  const int k = q.num_nodes();
  EdgeList list;
  list.num_vertices =
      host_vertices + static_cast<VertexId>(copies) * static_cast<VertexId>(k);

  // Noise edges confined to the host block [0, host_vertices).
  Rng rng(seed);
  for (std::size_t e = 0; e < noise_edges && host_vertices >= 2; ++e) {
    const auto u = static_cast<VertexId>(rng.below(host_vertices));
    const auto v = static_cast<VertexId>(rng.below(host_vertices));
    if (u != v) list.add(u, v);
  }

  // Each copy occupies its own fresh vertex block after the host.
  for (int c = 0; c < copies; ++c) {
    const VertexId base = host_vertices + static_cast<VertexId>(c * k);
    for (const auto& [a, b] : q.edge_pairs()) {
      list.add(base + static_cast<VertexId>(a),
               base + static_cast<VertexId>(b));
    }
  }

  PlantedGraph out;
  out.graph = CsrGraph::from_edges(list);
  out.planted_matches =
      static_cast<Count>(copies) * count_automorphisms(q);
  return out;
}

}  // namespace ccbt
