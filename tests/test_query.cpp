// Unit tests for the query substrate: the catalog, the treewidth
// recognizer, automorphism counting, and the random tw2 generator.

#include <gtest/gtest.h>

#include "ccbt/query/automorphism.hpp"
#include "ccbt/query/catalog.hpp"
#include "ccbt/query/query_graph.hpp"
#include "ccbt/query/random_tw2.hpp"
#include "ccbt/query/treewidth.hpp"
#include "ccbt/util/error.hpp"

namespace ccbt {
namespace {

TEST(QueryGraphTest, EdgesAndDegrees) {
  QueryGraph q(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(q.num_edges(), 3);
  EXPECT_EQ(q.degree(1), 2);
  EXPECT_TRUE(q.has_edge(0, 1));
  EXPECT_FALSE(q.has_edge(0, 3));
  q.remove_edge(0, 1);
  EXPECT_FALSE(q.has_edge(0, 1));
  EXPECT_EQ(q.num_edges(), 2);
}

TEST(QueryGraphTest, RejectsBadConstruction) {
  EXPECT_THROW(QueryGraph(0), UnsupportedQuery);
  EXPECT_THROW(QueryGraph(17), UnsupportedQuery);
  QueryGraph q(3);
  EXPECT_THROW(q.add_edge(0, 0), UnsupportedQuery);
  EXPECT_THROW(q.add_edge(0, 5), UnsupportedQuery);
}

TEST(QueryGraphTest, Connectivity) {
  QueryGraph connected(3, {{0, 1}, {1, 2}});
  EXPECT_TRUE(connected.connected());
  QueryGraph disconnected(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(disconnected.connected());
}

TEST(QueryGraphTest, ConnectedOrderStartsAtZeroAndLinks) {
  const QueryGraph q = q_brain1();
  const auto order = q.connected_order();
  ASSERT_EQ(static_cast<int>(order.size()), q.num_nodes());
  for (std::size_t i = 1; i < order.size(); ++i) {
    bool linked = false;
    for (std::size_t j = 0; j < i; ++j) {
      linked |= q.has_edge(order[i], order[j]);
    }
    EXPECT_TRUE(linked) << "node " << int(order[i]);
  }
}

TEST(Treewidth, ForestRecognition) {
  EXPECT_TRUE(is_forest(q_path(6)));
  EXPECT_TRUE(is_forest(q_star(5)));
  EXPECT_TRUE(is_forest(q_complete_binary_tree(7)));
  EXPECT_FALSE(is_forest(q_cycle(4)));
  EXPECT_FALSE(is_forest(q_glet2()));
}

TEST(Treewidth, Treewidth2Accepts) {
  for (const char* name :
       {"dros", "ecoli1", "ecoli2", "brain1", "brain2", "brain3", "glet1",
        "glet2", "wiki", "youtube", "satellite", "theta", "triangle"}) {
    EXPECT_TRUE(treewidth_at_most_2(named_query(name))) << name;
  }
  EXPECT_TRUE(treewidth_at_most_2(q_cycle(12)));
  EXPECT_TRUE(treewidth_at_most_2(q_path(9)));
}

TEST(Treewidth, RejectsHigherTreewidth) {
  // K4 has treewidth 3.
  QueryGraph k4(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  EXPECT_FALSE(treewidth_at_most_2(k4));
  // 3x3 grid has treewidth 3.
  QueryGraph grid(9);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      if (c + 1 < 3) grid.add_edge(3 * r + c, 3 * r + c + 1);
      if (r + 1 < 3) grid.add_edge(3 * r + c, 3 * (r + 1) + c);
    }
  }
  EXPECT_FALSE(treewidth_at_most_2(grid));
  // K_{3,3} has treewidth 3.
  QueryGraph k33(6);
  for (int a = 0; a < 3; ++a) {
    for (int b = 3; b < 6; ++b) k33.add_edge(a, b);
  }
  EXPECT_FALSE(treewidth_at_most_2(k33));
  // K_{2,3} has treewidth 2.
  QueryGraph k23(5);
  for (int a = 0; a < 2; ++a) {
    for (int b = 2; b < 5; ++b) k23.add_edge(a, b);
  }
  EXPECT_TRUE(treewidth_at_most_2(k23));
}

TEST(Treewidth, ValidateQueryThrowsProperly) {
  QueryGraph k4(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  EXPECT_THROW(validate_query(k4), UnsupportedQuery);
  QueryGraph disconnected(4, {{0, 1}, {2, 3}});
  EXPECT_THROW(validate_query(disconnected), UnsupportedQuery);
  EXPECT_NO_THROW(validate_query(q_satellite()));
}

TEST(Automorphisms, KnownGroups) {
  EXPECT_EQ(count_automorphisms(q_cycle(5)), 10u);   // dihedral D5
  EXPECT_EQ(count_automorphisms(q_cycle(6)), 12u);
  EXPECT_EQ(count_automorphisms(q_path(4)), 2u);
  EXPECT_EQ(count_automorphisms(q_star(4)), 24u);    // 4! leaf permutations
  EXPECT_EQ(count_automorphisms(q_cycle(3)), 6u);
  EXPECT_EQ(count_automorphisms(q_glet1()), 8u);     // C4
  EXPECT_EQ(count_automorphisms(q_glet2()), 4u);     // diamond
  EXPECT_EQ(count_automorphisms(q_wiki()), 8u);      // bowtie: 2*2*2
  // K4: full symmetric group.
  QueryGraph k4(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  EXPECT_EQ(count_automorphisms(k4), 24u);
}

TEST(Automorphisms, AsymmetricQuery) {
  // youtube (triangle + 2-tail) has no nontrivial automorphism except the
  // triangle swap: check the exact value.
  EXPECT_EQ(count_automorphisms(q_youtube()), 2u);
}

TEST(Catalog, SizesMatchDesign) {
  EXPECT_EQ(q_dros().num_nodes(), 6);
  EXPECT_EQ(q_ecoli1().num_nodes(), 6);
  EXPECT_EQ(q_ecoli2().num_nodes(), 7);
  EXPECT_EQ(q_brain1().num_nodes(), 8);
  EXPECT_EQ(q_brain2().num_nodes(), 9);
  EXPECT_EQ(q_brain3().num_nodes(), 10);
  EXPECT_EQ(q_glet1().num_nodes(), 4);
  EXPECT_EQ(q_glet2().num_nodes(), 4);
  EXPECT_EQ(q_wiki().num_nodes(), 5);
  EXPECT_EQ(q_youtube().num_nodes(), 5);
  EXPECT_EQ(q_satellite().num_nodes(), 11);
}

TEST(Catalog, Figure8QueriesAllValid) {
  const auto queries = figure8_queries();
  ASSERT_EQ(queries.size(), 10u);
  for (const QueryGraph& q : queries) {
    EXPECT_TRUE(q.connected()) << q.name();
    EXPECT_TRUE(treewidth_at_most_2(q)) << q.name();
  }
}

TEST(Catalog, NamedQueryParsesFamilies) {
  EXPECT_EQ(named_query("cycle7").num_nodes(), 7);
  EXPECT_EQ(named_query("path5").num_edges(), 4);
  EXPECT_EQ(named_query("star6").num_nodes(), 7);
  EXPECT_EQ(named_query("binary_tree12").num_nodes(), 12);
  EXPECT_THROW(named_query("cycleX"), UnsupportedQuery);
  EXPECT_THROW(named_query("bogus"), UnsupportedQuery);
}

TEST(Catalog, AllCatalogNamesResolve) {
  for (const std::string& name : catalog_names()) {
    EXPECT_NO_THROW(named_query(name)) << name;
  }
}

TEST(Catalog, SatelliteMatchesFigure2Description) {
  const QueryGraph q = q_satellite();
  // 5-cycle a..e, path a-f-g-c, leaf f-h, triangle i-j-k, i-f, i-g.
  EXPECT_EQ(q.num_edges(), 14);
  EXPECT_TRUE(q.has_edge(0, 1));   // a-b on the 5-cycle
  EXPECT_TRUE(q.has_edge(5, 7));   // leaf edge f-h
  EXPECT_TRUE(q.has_edge(8, 9));   // triangle i-j
  EXPECT_TRUE(q.has_edge(8, 5));   // i-f
  EXPECT_TRUE(q.has_edge(8, 6));   // i-g
  EXPECT_EQ(q.degree(7), 1);       // h is a leaf
}

class RandomTw2Sweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomTw2Sweep, GeneratesValidQueries) {
  RandomTw2Options opts;
  opts.target_nodes = 4 + (GetParam() % 12);
  const QueryGraph q = random_tw2_query(opts, GetParam());
  EXPECT_EQ(q.num_nodes(), opts.target_nodes);
  EXPECT_TRUE(q.connected());
  EXPECT_TRUE(treewidth_at_most_2(q));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTw2Sweep, ::testing::Range(0, 60));

}  // namespace
}  // namespace ccbt
