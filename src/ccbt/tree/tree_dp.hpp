#pragma once
// Color-coding dynamic program for tree (treewidth-1) queries.
//
// This is the specialized algorithm lineage the paper builds on: Alon et
// al.'s O(2^k m) treelet DP, implemented at scale by Slota and Madduri's
// FASCIA [28, 30]. The query tree is rooted and processed bottom-up; for
// every query node a, data vertex v and color signature α the table holds
// the number of colorful matches of a's subtree with a -> v using exactly
// the colors α. Children fold in one at a time through the data graph's
// edges. Runtime is linear in the graph size for every fixed k — the
// contrast that motivates the paper's treewidth-2 work, where tables are
// keyed by vertex *pairs* and the DP goes superlinear.
//
// The implementation stores per-vertex sparse signature vectors and
// parallelizes the per-level folds over data vertices with OpenMP.

#include <cstdint>

#include "ccbt/graph/coloring.hpp"
#include "ccbt/graph/csr_graph.hpp"
#include "ccbt/query/query_graph.hpp"

namespace ccbt {

struct TreeDpStats {
  Count colorful = 0;
  double wall_seconds = 0.0;

  /// Peak number of (vertex, signature) entries held at once.
  std::size_t peak_entries = 0;

  /// Projection-function operations (child-fold combination steps),
  /// comparable to the engine's load metric.
  std::uint64_t operations = 0;
};

/// Count colorful matches of the tree query `q` under `chi`.
/// Throws UnsupportedQuery when `q` is not a tree (use the general engine
/// for treewidth-2 queries).
TreeDpStats count_colorful_tree_stats(const CsrGraph& g, const QueryGraph& q,
                                      const Coloring& chi,
                                      bool use_threads = true);

/// Convenience wrapper returning only the count.
Count count_colorful_tree(const CsrGraph& g, const QueryGraph& q,
                          const Coloring& chi);

/// Uniform random labelled tree on `nodes` nodes (Prüfer sequence);
/// workload generator for the tree-DP tests and benches.
QueryGraph random_tree_query(int nodes, std::uint64_t seed);

}  // namespace ccbt
