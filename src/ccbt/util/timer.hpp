#pragma once
// Wall-clock timing helper for benches and the executor's phase stats.

#include <chrono>

namespace ccbt {

class Timer {
 public:
  Timer() noexcept { reset(); }

  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ccbt
