#include "ccbt/core/estimator.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <span>

#include "ccbt/decomp/plan.hpp"
#include "ccbt/query/automorphism.hpp"
#include "ccbt/util/error.hpp"
#include "ccbt/util/rng.hpp"
#include "ccbt/util/stats.hpp"

namespace ccbt {

namespace {

/// Largest supported batch width that fits under both the user's cap and
/// the remaining trial count.
int next_batch_width(int remaining, int cap) {
  const int want = std::min(remaining, std::max(cap, 1));
  for (int w : {8, 4, 2, 1}) {
    if (w <= want) return w;
  }
  return 1;
}

/// Run `width` trials in one batched plan execution, drawing lane seeds
/// from `seeder` in trial order (so any batch decomposition consumes the
/// same seed sequence as width-1 runs) and appending per-lane results.
///
/// Degradation: per-lane fault fates roll BEFORE execution, so the seed
/// and fault streams stay aligned regardless of which trials survive —
/// drops are independent of trial values, keeping the survivor mean
/// unbiased. A retryable engine failure (recovery ladder exhausted)
/// drops the whole batch.
void run_batch(const CountingSession& session, Rng& seeder, FaultPlan& faults,
               bool allow_degraded, int width, double scale,
               EstimatorResult& r) {
  std::array<std::uint64_t, kMaxBatchLanes> seeds{};
  for (int l = 0; l < width; ++l) seeds[l] = seeder();
  std::array<bool, kMaxBatchLanes> lost{};
  for (int l = 0; l < width; ++l) lost[l] = faults.trial_fails();
  r.trials_planned += width;
  ExecStats stats;
  try {
    stats = session.count_colorful_seeded(
        std::span<const std::uint64_t>(seeds.data(), width));
  } catch (const Error& e) {
    if (!e.retryable() || !allow_degraded) throw;
    r.trials_dropped += width;
    return;
  }
  for (int l = 0; l < width; ++l) {
    if (lost[l]) {
      if (!allow_degraded) {
        throw RankFailed("estimator: trial lost with degraded mode off");
      }
      ++r.trials_dropped;
      continue;
    }
    r.colorful_per_trial.push_back(stats.colorful_lane[l]);
    r.estimate_per_trial.push_back(
        static_cast<double>(stats.colorful_lane[l]) * scale);
  }
  r.total_wall_seconds += stats.wall_seconds;
  r.stage.add(stats.stage);
}

void finalize(const CountingSession& session, EstimatorResult& r) {
  if (r.estimate_per_trial.empty() && r.trials_dropped > 0) {
    throw Error(ErrorCode::kRetriesExhausted,
                "estimator: every trial was lost to faults");
  }
  const Summary summary = summarize(r.estimate_per_trial);
  r.matches = summary.mean;
  r.variance = summary.variance;
  r.cv = summary.cv();
  r.variance_over_mean =
      summary.mean == 0.0 ? 0.0 : summary.variance / summary.mean;
  r.automorphisms = count_automorphisms(session.query());
  r.occurrences = r.matches / static_cast<double>(r.automorphisms);
  r.degraded = r.trials_dropped > 0;
  const std::size_t survivors = r.estimate_per_trial.size();
  r.cv_widened =
      survivors == 0
          ? 0.0
          : r.cv * std::sqrt(static_cast<double>(r.trials_planned) /
                             static_cast<double>(survivors));
}

}  // namespace

EstimatorResult estimate_matches(const CountingSession& session,
                                 const EstimatorOptions& opts) {
  EstimatorResult result;
  const int k = session.query().num_nodes();
  const double scale = colorful_scale(k);
  Rng seeder(opts.seed);
  FaultPlan faults(opts.faults);

  int remaining = opts.trials;
  while (remaining > 0) {
    const int width = next_batch_width(remaining, opts.batch);
    run_batch(session, seeder, faults, opts.allow_degraded, width, scale,
              result);
    remaining -= width;
  }

  finalize(session, result);
  return result;
}

EstimatorResult estimate_matches(const CsrGraph& g, const QueryGraph& q,
                                 const EstimatorOptions& opts) {
  CountingSession session(g, q, make_plan(q), opts.exec);
  return estimate_matches(session, opts);
}

AdaptiveResult estimate_matches_adaptive(const CountingSession& session,
                                         const AdaptiveOptions& opts) {
  AdaptiveResult out;
  const int k = session.query().num_nodes();
  const double scale = colorful_scale(k);
  Rng seeder(opts.seed);
  FaultPlan faults(opts.faults);
  EstimatorResult& r = out.estimate;

  while (out.trials_used < opts.max_trials) {
    const int width =
        next_batch_width(opts.max_trials - out.trials_used, opts.batch);
    run_batch(session, seeder, faults, opts.allow_degraded, width, scale, r);
    out.trials_used += width;
    // Gate min_trials and the cv test on trials that SURVIVED — a thin
    // survivor set (worst case: one trial, whose sample cv is 0) must not
    // fake convergence.
    const int survivors = static_cast<int>(r.estimate_per_trial.size());
    if (survivors < opts.min_trials) continue;
    if (summarize(r.estimate_per_trial).cv() <= opts.target_cv) {
      out.converged = true;
      break;
    }
  }

  finalize(session, r);
  return out;
}

AdaptiveResult estimate_matches_adaptive(const CsrGraph& g,
                                         const QueryGraph& q,
                                         const AdaptiveOptions& opts) {
  CountingSession session(g, q, make_plan(q), opts.exec);
  return estimate_matches_adaptive(session, opts);
}

}  // namespace ccbt
