// The two accumulation engines — the probe engine's global
// combining-cache appends and the sharded engine's v1-cut bulk emission
// (table/flat_rows.hpp) — must be interchangeable: identical sealed
// rows bit for bit across every batch width and payload width, through
// mid-phase u16 -> u32 -> wide escalation, through the run-bulk API and
// its post-escalation fallback, and lane for lane over whole counting
// runs. The probe engine is the oracle; these tests are what lets the
// sharded engine stay the default.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <span>
#include <utility>
#include <vector>

#include "ccbt/core/color_coding.hpp"
#include "ccbt/dist/dist_engine.hpp"
#include "ccbt/graph/generators.hpp"
#include "ccbt/query/catalog.hpp"
#include "ccbt/table/flat_rows.hpp"
#include "ccbt/table/table_key.hpp"
#include "ccbt/util/rng.hpp"

namespace ccbt {
namespace {

/// Restore the process-wide engine pin however a test exits.
struct AccumEngineGuard {
  ~AccumEngineGuard() { set_accum_engine(AccumEngine::kAuto); }
};

template <int B>
using RowSpec = std::pair<TableKey, typename LaneOps<B>::Vec>;

/// Append `rows` round-robin across `parts` sinks prepared on `eng`,
/// then absorb into one — the per-thread reduction shape. On the
/// sharded engine the absorb takes the shard-wise concatenation path.
template <int B>
FlatRowsT<B> build_sink(const std::vector<RowSpec<B>>& rows, int parts,
                        AccumEngine eng, VertexId domain) {
  std::vector<FlatRowsT<B>> sinks(parts);
  for (auto& s : sinks) s.prepare_emit(eng, domain);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    sinks[i % parts].append(rows[i].first, rows[i].second);
  }
  FlatRowsT<B> out = std::move(sinks[0]);
  for (int p = 1; p < parts; ++p) out.absorb(std::move(sinks[p]));
  return out;
}

template <int B, typename W>
void expect_same_rows(const std::vector<PackedFlatRowT<B, W>>& a,
                      const std::vector<PackedFlatRowT<B, W>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].k, b[i].k) << "row " << i;
    ASSERT_EQ(a[i].c, b[i].c) << "row " << i;
  }
}

/// Whole-sink equality in whatever mode both ended up in.
template <int B>
void expect_same_sink(FlatRowsT<B>& a, FlatRowsT<B>& b) {
  ASSERT_EQ(a.mode(), b.mode());
  switch (a.mode()) {
    case FlatRowsT<B>::Mode::kU16:
      expect_same_rows<B>(a.rows_u16(), b.rows_u16());
      return;
    case FlatRowsT<B>::Mode::kU32:
      expect_same_rows<B>(a.rows_u32(), b.rows_u32());
      return;
    case FlatRowsT<B>::Mode::kWide: break;
  }
  const auto wa = a.take_wide();
  const auto wb = b.take_wide();
  ASSERT_EQ(wa.size(), wb.size());
  for (std::size_t i = 0; i < wa.size(); ++i) {
    ASSERT_EQ(wa[i].key, wb[i].key) << "row " << i;
    ASSERT_EQ(wa[i].cnt, wb[i].cnt) << "row " << i;
  }
}

/// The core property: both engines, fed the same emission stream and
/// sealed the same way, hold the same deduped rows, escalation mode and
/// scan stats bit for bit. Pre-sort row order may differ (shard blocks
/// vs first-emission order) — the seal's sort + dedup erases exactly
/// that freedom and nothing else.
template <int B>
void expect_engine_parity(const std::vector<RowSpec<B>>& rows, int slot,
                          VertexId domain, int parts = 4) {
  FlatRowsT<B> probe =
      build_sink<B>(rows, parts, AccumEngine::kProbe, domain);
  FlatRowsT<B> shard =
      build_sink<B>(rows, parts, AccumEngine::kSharded, domain);
  const bool p_ok = probe.sort_by_slot(slot, domain);
  const bool s_ok = shard.sort_by_slot(slot, domain);
  ASSERT_EQ(p_ok, s_ok);
  if (!p_ok) return;
  const FlatStats sp = probe.merge_duplicates();
  const FlatStats ss = shard.merge_duplicates();
  EXPECT_EQ(sp.rows, ss.rows);
  EXPECT_EQ(sp.lanes_occupied, ss.lanes_occupied);
  EXPECT_EQ(sp.max_count, ss.max_count);
  expect_same_sink(probe, shard);
}

/// Same-v1 burst stream with in-burst and cross-burst duplicates — the
/// extend loop's emission shape, the one the shard caches are cut for.
template <int B>
std::vector<RowSpec<B>> burst_stream(Rng& rng, int bursts, int burst_len,
                                     VertexId domain, Count max_count) {
  std::vector<RowSpec<B>> rows;
  rows.reserve(static_cast<std::size_t>(bursts) * burst_len);
  for (int b = 0; b < bursts; ++b) {
    // Revisit a v1 with probability ~1/2 so later bursts fold into
    // rows another burst (possibly in another part) already emitted.
    const auto v1 = static_cast<VertexId>(rng.below(domain / 2) * 2 %
                                          domain);
    for (int i = 0; i < burst_len; ++i) {
      TableKey k;
      k.v[0] = static_cast<VertexId>(rng.below(domain));
      k.v[1] = v1;
      k.sig = static_cast<Signature>(rng.below(32));
      auto c = LaneOps<B>::zero();
      LaneOps<B>::set_lane(c, static_cast<int>(rng.below(B)),
                           1 + rng.below(max_count));
      rows.push_back({k, c});
      if (i % 4 == 3) rows.push_back(rows.back());  // in-burst dup
    }
  }
  return rows;
}

template <int B>
void run_parity_suite(Count max_count) {
  const VertexId domain = 50'000;
  for (const int slot : {0, 1}) {
    Rng rng(900 + slot);
    expect_engine_parity<B>(
        burst_stream<B>(rng, 400, 24, domain, max_count), slot, domain);
    // Tiny table: the sharded seal's hybrid cutover flattens and sorts
    // globally here; parity must not depend on that choice.
    expect_engine_parity<B>(burst_stream<B>(rng, 8, 6, domain, max_count),
                            slot, domain);
    // Dup-heavy 24-key universe: every shard but one empty, long
    // combining-cache hit chains in the occupied one.
    expect_engine_parity<B>(burst_stream<B>(rng, 300, 20, 24, max_count),
                            slot, 24);
  }
}

TEST(AccumSharded, ParityU16B2) { run_parity_suite<2>(9); }
TEST(AccumSharded, ParityU16B4) { run_parity_suite<4>(9); }
TEST(AccumSharded, ParityU16B8) { run_parity_suite<8>(9); }
// Counts near the u16 folding edge: cache sums overflow into duplicate
// pushes on the probe engine and per-shard pushes on the sharded one.
TEST(AccumSharded, ParityFoldOverflowB8) { run_parity_suite<8>(60'000); }

template <int B>
void run_escalation_suite(Count big) {
  // A u16 burst stream with occasional oversized counts spliced in:
  // the sharded sink must unshard mid-phase, carry every shard row
  // into the escalated buffer, and keep folding — ending bit-identical
  // to the probe engine which escalated at the same emission.
  const VertexId domain = 50'000;
  Rng rng(4242);
  std::vector<RowSpec<B>> rows =
      burst_stream<B>(rng, 300, 24, domain, 9);
  for (std::size_t i = rows.size() / 3; i < rows.size();
       i += rows.size() / 5) {
    auto c = LaneOps<B>::zero();
    LaneOps<B>::set_lane(c, static_cast<int>(i % B), big);
    rows[i].second = c;
  }
  for (const int slot : {0, 1}) {
    expect_engine_parity<B>(rows, slot, domain);
  }
}

TEST(AccumSharded, MidPhaseEscalateToU32B8) {
  run_escalation_suite<8>(Count{1} << 20);
}
TEST(AccumSharded, MidPhaseEscalateToWideB8) {
  run_escalation_suite<8>(Count{1} << 40);
}
TEST(AccumSharded, MidPhaseEscalateToU32B2) {
  run_escalation_suite<2>(Count{1} << 20);
}

TEST(AccumSharded, EscalationUnshards) {
  constexpr int B = 8;
  const VertexId domain = 10'000;
  FlatRowsT<B> t;
  t.prepare_emit(AccumEngine::kSharded, domain);
  ASSERT_TRUE(t.sharded());
  TableKey k;
  k.v[0] = 7;
  k.v[1] = 9;
  k.sig = 3;
  auto c = LaneOps<B>::zero();
  LaneOps<B>::set_lane(c, 0, 5);
  t.append(k, c);
  EXPECT_TRUE(t.sharded());
  LaneOps<B>::set_lane(c, 0, Count{1} << 20);
  t.append(k, c);
  EXPECT_FALSE(t.sharded());
  EXPECT_EQ(t.mode(), FlatRowsT<B>::Mode::kU32);
  ASSERT_TRUE(t.sort_by_slot(1, domain));
  t.merge_duplicates();
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.rows_u32()[0].c[0], (Count{1} << 20) + 5);
}

constexpr std::uint64_t pack28(std::uint32_t v0, std::uint32_t v1,
                               std::uint8_t sig) {
  return (std::uint64_t{v0} << 36) | (std::uint64_t{v1} << 8) | sig;
}

/// Replay one burst through the run-bulk API when the handle is valid
/// (sharded sink) and through per-row probe appends when it is not —
/// exactly the extend loop's emission switch.
template <int B>
void emit_burst(FlatRowsT<B>& t, VertexId v1, Rng& rng, int len,
                VertexId domain) {
  const auto run = t.run_u16(v1, static_cast<std::size_t>(len));
  PackedFlatRowT<B, std::uint16_t> src;
  for (int l = 0; l < B; ++l) {
    src.c[l] = static_cast<std::uint16_t>(1 + rng.below(7));
  }
  for (int i = 0; i < len; ++i) {
    const auto v0 = static_cast<std::uint32_t>(rng.below(domain));
    const std::uint64_t k =
        pack28(v0, v1, static_cast<std::uint8_t>(v0 & 0x1F));
    const auto m = static_cast<LaneMask>(1 + rng.below((1u << B) - 1));
    if (run.valid()) {
      t.run_append_u16(run, k, src, m);
    } else {
      t.append_masked_u16(k, src, m);
    }
  }
}

TEST(AccumSharded, RunBulkMatchesPerRow) {
  constexpr int B = 8;
  const VertexId domain = 50'000;
  FlatRowsT<B> probe;
  FlatRowsT<B> shard;
  probe.prepare_emit(AccumEngine::kProbe, domain);
  shard.prepare_emit(AccumEngine::kSharded, domain);
  ASSERT_FALSE(probe.run_u16(1, 8).valid());
  for (FlatRowsT<B>* t : {&probe, &shard}) {
    Rng rng(777);  // same stream into both sinks
    for (int b = 0; b < 500; ++b) {
      const auto v1 = static_cast<VertexId>(rng.below(domain));
      emit_burst(*t, v1, rng, 32, domain);
    }
  }
  ASSERT_TRUE(probe.sort_by_slot(1, domain));
  ASSERT_TRUE(shard.sort_by_slot(1, domain));
  probe.merge_duplicates();
  shard.merge_duplicates();
  expect_same_sink(probe, shard);
}

TEST(AccumSharded, RunHandleInvalidAfterEscalation) {
  // A generic append that escalates the sink invalidates run handles:
  // run_u16 must come back invalid afterwards and the per-row fallback
  // must land every later emission, with exact totals.
  constexpr int B = 8;
  const VertexId domain = 50'000;
  FlatRowsT<B> probe;
  FlatRowsT<B> shard;
  probe.prepare_emit(AccumEngine::kProbe, domain);
  shard.prepare_emit(AccumEngine::kSharded, domain);
  for (FlatRowsT<B>* t : {&probe, &shard}) {
    Rng rng(778);
    for (int b = 0; b < 200; ++b) {
      emit_burst(*t, static_cast<VertexId>(rng.below(domain)), rng, 32,
                 domain);
    }
    TableKey k;  // oversized count: escalates (and unshards) the sink
    k.v[0] = 11;
    k.v[1] = 13;
    k.sig = 1;
    auto c = LaneOps<B>::zero();
    LaneOps<B>::set_lane(c, 2, Count{1} << 20);
    t->append(k, c);
    ASSERT_FALSE(t->sharded());
    ASSERT_FALSE(t->run_u16(13, 8).valid());
    for (int b = 0; b < 200; ++b) {  // post-escalation fallback path
      emit_burst(*t, static_cast<VertexId>(rng.below(domain)), rng, 32,
                 domain);
    }
  }
  ASSERT_TRUE(probe.sort_by_slot(1, domain));
  ASSERT_TRUE(shard.sort_by_slot(1, domain));
  probe.merge_duplicates();
  shard.merge_duplicates();
  expect_same_sink(probe, shard);
}

TEST(AccumSharded, EnsureFlatPreservesRowsUnsealed) {
  // node_join consumes unsealed tables by index; ensure_flat must hand
  // it every sharded row (order free) without touching the counts.
  constexpr int B = 8;
  const VertexId domain = 50'000;
  FlatRowsT<B> t;
  t.prepare_emit(AccumEngine::kSharded, domain);
  Rng rng(55);
  const auto rows = burst_stream<B>(rng, 200, 16, domain, 9);
  for (const auto& r : rows) t.append(r.first, r.second);
  const std::size_t n = t.size();
  ASSERT_TRUE(t.sharded());
  t.ensure_flat();
  EXPECT_FALSE(t.sharded());
  EXPECT_EQ(t.size(), n);
  ASSERT_EQ(t.mode(), FlatRowsT<B>::Mode::kU16);
  EXPECT_EQ(t.rows_u16().size(), n);
  // Still sealable afterwards, to the same table the probe engine ends
  // at (ensure_flat dropped the caches; seal re-sorts from scratch).
  FlatRowsT<B> probe;
  probe.prepare_emit(AccumEngine::kProbe, domain);
  for (const auto& r : rows) probe.append(r.first, r.second);
  ASSERT_TRUE(t.sort_by_slot(1, domain));
  ASSERT_TRUE(probe.sort_by_slot(1, domain));
  t.merge_duplicates();
  probe.merge_duplicates();
  expect_same_sink(probe, t);
}

TEST(AccumSharded, EnginePinning) {
  AccumEngineGuard guard;
  const VertexId domain = 10'000;
  // kAuto defers to the process pin; the pin's own default is sharded.
  // A CCBT_ACCUM env pin seeds the process state before any test runs
  // (CI sweeps the suite under each pin), so resolve through it.
  {
    const char* env = std::getenv("CCBT_ACCUM");
    const AccumEngine want = (env != nullptr && std::strcmp(env, "probe") == 0)
                                 ? AccumEngine::kProbe
                                 : AccumEngine::kSharded;
    FlatRowsT<8> t;
    t.prepare_emit(AccumEngine::kAuto, domain);
    EXPECT_EQ(t.engine(), want);
    EXPECT_EQ(t.sharded(), want == AccumEngine::kSharded);
  }
  set_accum_engine(AccumEngine::kProbe);
  {
    FlatRowsT<8> t;
    t.prepare_emit(AccumEngine::kAuto, domain);
    EXPECT_EQ(t.engine(), AccumEngine::kProbe);
    EXPECT_FALSE(t.sharded());
  }
  // An explicit want overrides the pin.
  {
    FlatRowsT<8> t;
    t.prepare_emit(AccumEngine::kSharded, domain);
    EXPECT_EQ(t.engine(), AccumEngine::kSharded);
  }
  set_accum_engine(AccumEngine::kAuto);
  // No usable domain: the sharded engine has nowhere to cut, degrade
  // to probe rather than guessing a shard shift.
  {
    FlatRowsT<8> t;
    t.prepare_emit(AccumEngine::kSharded, 0);
    EXPECT_EQ(t.engine(), AccumEngine::kProbe);
    EXPECT_FALSE(t.sharded());
  }
}

TEST(AccumSharded, TelemetryCountsShardedPhase) {
  constexpr int B = 8;
  const VertexId domain = 50'000;
  FlatRowsT<B> t;
  t.prepare_emit(AccumEngine::kSharded, domain);
  Rng rng(99);
  for (int b = 0; b < 100; ++b) {
    emit_burst(t, static_cast<VertexId>(rng.below(domain)), rng, 32,
               domain);
  }
  AccumTelemetry tel;
  t.collect_telemetry(tel);
  EXPECT_EQ(tel.phases, 1u);
  EXPECT_EQ(tel.sharded_phases, 1u);
  EXPECT_EQ(tel.rows, t.size());
  EXPECT_GT(tel.run_emits, 0u);
  ASSERT_GT(tel.shard_slots, 0u);
  EXPECT_LE(tel.shards_occupied, tel.shard_slots);
  EXPECT_GT(tel.shard_occupancy(), 0.0);
  EXPECT_LE(tel.shard_occupancy(), 1.0);
}

// ---------------------------------------------------------------------
// Sparse emission format (CCBT_EMIT): variable-length records — packed
// key + occupancy byte + occupied u16 counts only — must seal to tables
// bit-identical to the dense fixed-stride format, on both accumulation
// engines, across batch widths, through escalation, absorb, run-bulk,
// and the unsealed-access routes node_join takes. The dense format is
// the oracle.
// ---------------------------------------------------------------------

/// Restore the process-wide emission-format pin however a test exits.
struct EmitFormatGuard {
  EmitFormat saved = emit_format();
  ~EmitFormatGuard() { set_emit_format(saved); }
};

/// Dense-vs-sparse twin sinks fed the same stream on the same engine,
/// sealed the same way, must agree bit for bit — mode, stats and rows.
template <int B>
void expect_format_parity(const std::vector<RowSpec<B>>& rows, int slot,
                          VertexId domain, AccumEngine eng,
                          int parts = 4) {
  EmitFormatGuard guard;
  set_emit_format(EmitFormat::kDense);
  FlatRowsT<B> dense = build_sink<B>(rows, parts, eng, domain);
  set_emit_format(EmitFormat::kSparse);
  FlatRowsT<B> sparse = build_sink<B>(rows, parts, eng, domain);
  const bool d_ok = dense.sort_by_slot(slot, domain);
  const bool s_ok = sparse.sort_by_slot(slot, domain);
  ASSERT_EQ(d_ok, s_ok);
  if (!d_ok) return;
  const FlatStats sd = dense.merge_duplicates();
  const FlatStats ss = sparse.merge_duplicates();
  EXPECT_EQ(sd.rows, ss.rows);
  EXPECT_EQ(sd.lanes_occupied, ss.lanes_occupied);
  EXPECT_EQ(sd.max_count, ss.max_count);
  expect_same_sink(dense, sparse);
}

template <int B>
void run_format_parity_suite(Count max_count) {
  const VertexId domain = 50'000;
  for (const auto eng : {AccumEngine::kProbe, AccumEngine::kSharded}) {
    for (const int slot : {0, 1}) {
      Rng rng(1700 + slot);
      expect_format_parity<B>(
          burst_stream<B>(rng, 400, 24, domain, max_count), slot, domain,
          eng);
      // Tiny table: the sparse seal stays on the comparison sort below
      // the radix threshold; parity must not depend on that choice.
      expect_format_parity<B>(
          burst_stream<B>(rng, 8, 6, domain, max_count), slot, domain,
          eng);
      // Dup-heavy 24-key universe: nearly every emission folds in a
      // combining cache, sparse record reuse at its hottest.
      expect_format_parity<B>(
          burst_stream<B>(rng, 300, 20, 24, max_count), slot, 24, eng);
    }
  }
}

TEST(AccumSharded, SparseFormatParityU16B2) {
  run_format_parity_suite<2>(9);
}
TEST(AccumSharded, SparseFormatParityU16B4) {
  run_format_parity_suite<4>(9);
}
TEST(AccumSharded, SparseFormatParityU16B8) {
  run_format_parity_suite<8>(9);
}
// Counts near the u16 folding edge: cache sums overflow into duplicate
// sparse records, merged only at the seal.
TEST(AccumSharded, SparseFormatParityFoldOverflowB8) {
  run_format_parity_suite<8>(60'000);
}

template <int B>
void run_sparse_escalation_suite(Count big) {
  // Oversized counts spliced into a u16 burst stream: the sparse sink
  // must decode itself back to flat rows mid-phase (unsparse), escalate
  // with the dense machinery, and end bit-identical to the dense twin
  // that escalated at the same emission.
  const VertexId domain = 50'000;
  Rng rng(6161);
  std::vector<RowSpec<B>> rows = burst_stream<B>(rng, 300, 24, domain, 9);
  for (std::size_t i = rows.size() / 3; i < rows.size();
       i += rows.size() / 5) {
    auto c = LaneOps<B>::zero();
    LaneOps<B>::set_lane(c, static_cast<int>(i % B), big);
    rows[i].second = c;
  }
  for (const auto eng : {AccumEngine::kProbe, AccumEngine::kSharded}) {
    for (const int slot : {0, 1}) {
      expect_format_parity<B>(rows, slot, domain, eng);
    }
  }
}

TEST(AccumSharded, SparseEscalateToU32B8) {
  run_sparse_escalation_suite<8>(Count{1} << 20);
}
TEST(AccumSharded, SparseEscalateToWideB8) {
  run_sparse_escalation_suite<8>(Count{1} << 40);
}
TEST(AccumSharded, SparseEscalateToU32B2) {
  run_sparse_escalation_suite<2>(Count{1} << 20);
}

TEST(AccumSharded, SparseRunBulkMatchesDense) {
  // The extend loop's emission switch over run handles, sparse vs
  // dense: same records after the seal on both engines.
  constexpr int B = 8;
  const VertexId domain = 50'000;
  EmitFormatGuard guard;
  for (const auto eng : {AccumEngine::kProbe, AccumEngine::kSharded}) {
    FlatRowsT<B> dense;
    FlatRowsT<B> sparse;
    set_emit_format(EmitFormat::kDense);
    dense.prepare_emit(eng, domain);
    set_emit_format(EmitFormat::kSparse);
    sparse.prepare_emit(eng, domain);
    EXPECT_FALSE(dense.sparse());
    EXPECT_TRUE(sparse.sparse());
    for (FlatRowsT<B>* t : {&dense, &sparse}) {
      Rng rng(787);  // same stream into both sinks
      for (int b = 0; b < 500; ++b) {
        emit_burst(*t, static_cast<VertexId>(rng.below(domain)), rng, 32,
                   domain);
      }
    }
    ASSERT_TRUE(dense.sort_by_slot(1, domain));
    ASSERT_TRUE(sparse.sort_by_slot(1, domain));
    dense.merge_duplicates();
    sparse.merge_duplicates();
    expect_same_sink(dense, sparse);
  }
}

TEST(AccumSharded, SparseAbsorbMixedFormats) {
  // Per-thread sinks may disagree on format (a re-prepared non-empty
  // sink stays dense): absorb must reconcile and seal to the all-dense
  // result, in every pairing, on both engines.
  constexpr int B = 8;
  const VertexId domain = 50'000;
  EmitFormatGuard guard;
  Rng rng0(321);
  const auto rows = burst_stream<B>(rng0, 300, 16, domain, 9);
  auto build_pair = [&](EmitFormat fa, EmitFormat fb, AccumEngine eng) {
    std::array<FlatRowsT<B>, 2> s;
    set_emit_format(fa);
    s[0].prepare_emit(eng, domain);
    set_emit_format(fb);
    s[1].prepare_emit(eng, domain);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      s[i % 2].append(rows[i].first, rows[i].second);
    }
    s[0].absorb(std::move(s[1]));
    return std::move(s[0]);
  };
  for (const auto eng : {AccumEngine::kProbe, AccumEngine::kSharded}) {
    FlatRowsT<B> oracle =
        build_pair(EmitFormat::kDense, EmitFormat::kDense, eng);
    ASSERT_TRUE(oracle.sort_by_slot(1, domain));
    oracle.merge_duplicates();
    for (const auto [fa, fb] :
         {std::pair{EmitFormat::kSparse, EmitFormat::kSparse},
          std::pair{EmitFormat::kSparse, EmitFormat::kDense},
          std::pair{EmitFormat::kDense, EmitFormat::kSparse}}) {
      FlatRowsT<B> t = build_pair(fa, fb, eng);
      ASSERT_TRUE(t.sort_by_slot(1, domain));
      t.merge_duplicates();
      expect_same_sink(oracle, t);
    }
  }
}

TEST(AccumSharded, SparseEnsureFlatRoutes) {
  // Regression for the four unsealed-access SEGFAULT routes PR 9 fixed
  // via ensure_flat/ensure_row_access: node_join consumes unsealed
  // tables by index, so a sparse sink must decode to flat rows on
  // demand — size preserved, counts untouched, still sealable — on
  // both engines and after absorb.
  constexpr int B = 8;
  const VertexId domain = 50'000;
  EmitFormatGuard guard;
  for (const auto eng : {AccumEngine::kProbe, AccumEngine::kSharded}) {
    set_emit_format(EmitFormat::kSparse);
    FlatRowsT<B> t;
    t.prepare_emit(eng, domain);
    Rng rng(56);
    const auto rows = burst_stream<B>(rng, 200, 16, domain, 9);
    for (const auto& r : rows) t.append(r.first, r.second);
    const std::size_t n = t.size();
    ASSERT_TRUE(t.sparse());
    t.ensure_flat();
    EXPECT_FALSE(t.sparse());
    EXPECT_FALSE(t.sharded());
    EXPECT_EQ(t.size(), n);
    ASSERT_EQ(t.mode(), FlatRowsT<B>::Mode::kU16);
    // The route that crashed: indexed row access while unsealed.
    ASSERT_EQ(t.rows_u16().size(), n);
    std::uint64_t sum = 0;
    for (const auto& r : t.rows_u16()) sum += r.c[0];
    (void)sum;
    // Still sealable afterwards, to the same table a dense sink ends
    // at (ensure_flat dropped the caches; seal re-sorts from scratch).
    set_emit_format(EmitFormat::kDense);
    FlatRowsT<B> dense;
    dense.prepare_emit(eng, domain);
    for (const auto& r : rows) dense.append(r.first, r.second);
    ASSERT_TRUE(t.sort_by_slot(1, domain));
    ASSERT_TRUE(dense.sort_by_slot(1, domain));
    t.merge_duplicates();
    dense.merge_duplicates();
    expect_same_sink(dense, t);
  }
}

TEST(AccumSharded, EmitFormatPinning) {
  EmitFormatGuard guard;
  const VertexId domain = 10'000;
  // kAuto defers to the process pin; the pin's own default is the
  // adaptive policy — start dense, flip to sparse records only once the
  // phase outgrows sparse_flip_rows(). A CCBT_EMIT env pin seeds the
  // process state before any test runs (CI sweeps the suite under each
  // pin), so resolve through it.
  {
    const char* env = std::getenv("CCBT_EMIT");
    const bool want_sparse =
        env != nullptr && std::strcmp(env, "sparse") == 0;
    FlatRowsT<8> t;
    t.prepare_emit(AccumEngine::kSharded, domain);
    EXPECT_EQ(t.sparse(), want_sparse);
  }
  set_emit_format(EmitFormat::kDense);
  {
    FlatRowsT<8> t;
    t.prepare_emit(AccumEngine::kSharded, domain);
    EXPECT_FALSE(t.sparse());
  }
  set_emit_format(EmitFormat::kSparse);
  {
    FlatRowsT<8> t;
    t.prepare_emit(AccumEngine::kProbe, domain);
    EXPECT_TRUE(t.sparse());
  }
  // A sink already holding non-u16 rows can't take sparse records.
  {
    FlatRowsT<8> t;
    TableKey k;
    k.v[0] = 1;
    k.v[1] = 2;
    k.sig = 1;
    auto c = LaneOps<8>::zero();
    LaneOps<8>::set_lane(c, 0, Count{1} << 20);
    t.append(k, c);
    ASSERT_EQ(t.mode(), FlatRowsT<8>::Mode::kU32);
    t.prepare_emit(AccumEngine::kProbe, domain);
    EXPECT_FALSE(t.sparse());
  }
}

TEST(AccumSharded, AdaptiveFlipMatchesDense) {
  // kAuto's mid-phase dense-to-sparse flip: arm a tiny threshold, feed
  // a sharded sink past it, and the table — rows re-encoded at the flip
  // plus records emitted after it — must seal bit-identical to a
  // dense-pinned twin (and the sink must actually have flipped).
  EmitFormatGuard guard;
  const std::size_t saved = sparse_flip_rows();
  const VertexId domain = 50'000;
  Rng rng(4242);
  const auto rows = burst_stream<8>(rng, 400, 24, domain, 9);
  set_emit_format(EmitFormat::kDense);
  FlatRowsT<8> dense =
      build_sink<8>(rows, 1, AccumEngine::kSharded, domain);
  set_emit_format(EmitFormat::kAuto);
  set_sparse_flip_rows(512);
  FlatRowsT<8> flipped =
      build_sink<8>(rows, 1, AccumEngine::kSharded, domain);
  set_sparse_flip_rows(saved);
  EXPECT_TRUE(flipped.sparse());
  ASSERT_TRUE(dense.sort_by_slot(1, domain));
  ASSERT_TRUE(flipped.sort_by_slot(1, domain));
  dense.merge_duplicates();
  flipped.merge_duplicates();
  expect_same_sink(dense, flipped);

  // Below the threshold the phase must stay dense end to end.
  set_sparse_flip_rows(std::size_t{1} << 30);
  FlatRowsT<8> small =
      build_sink<8>(rows, 1, AccumEngine::kSharded, domain);
  set_sparse_flip_rows(saved);
  EXPECT_FALSE(small.sparse());
  ASSERT_TRUE(small.sort_by_slot(1, domain));
  small.merge_duplicates();
  expect_same_sink(dense, small);
}

TEST(AccumSharded, EmitFormatRunsAgreeLaneForLane) {
  // Whole-pipeline cross-check: per-lane colorful counts can't depend
  // on the emission format, and the sparse run must actually exercise
  // the sparse path (sparse phases + frontier folds in telemetry).
  EmitFormatGuard guard;
  const CsrGraph g = erdos_renyi(60, 260, 22);
  std::vector<std::uint64_t> seeds{8400, 8401, 8402, 8403,
                                   8404, 8405, 8406, 8407};
  for (const QueryGraph& q : {q_glet2(), q_youtube(), q_cycle(5)}) {
    const Plan plan = make_plan(q);
    set_emit_format(EmitFormat::kDense);
    CountingSession sd(g, q, plan, ExecOptions{});
    const ExecStats a = sd.count_colorful_seeded(
        std::span<const std::uint64_t>(seeds.data(), 8));
    set_emit_format(EmitFormat::kSparse);
    CountingSession ss(g, q, plan, ExecOptions{});
    const ExecStats b = ss.count_colorful_seeded(
        std::span<const std::uint64_t>(seeds.data(), 8));
    for (int l = 0; l < 8; ++l) {
      EXPECT_EQ(a.colorful_lane[l], b.colorful_lane[l])
          << q.name() << " lane " << l;
    }
    EXPECT_EQ(a.accum.sparse_phases, 0u) << q.name();
    EXPECT_GT(b.accum.sparse_phases, 0u) << q.name();
  }
}

TEST(AccumSharded, EnginePinnedRunsAgreeLaneForLane) {
  // Whole-pipeline cross-check on a real workload: per-lane colorful
  // counts can't depend on which accumulation engine the run used.
  AccumEngineGuard guard;
  const CsrGraph g = erdos_renyi(60, 260, 21);
  std::vector<std::uint64_t> seeds{8300, 8301, 8302, 8303,
                                   8304, 8305, 8306, 8307};
  for (const QueryGraph& q : {q_glet2(), q_youtube(), q_cycle(5)}) {
    const Plan plan = make_plan(q);
    set_accum_engine(AccumEngine::kProbe);
    CountingSession sp(g, q, plan, ExecOptions{});
    const ExecStats a = sp.count_colorful_seeded(
        std::span<const std::uint64_t>(seeds.data(), 8));
    set_accum_engine(AccumEngine::kSharded);
    CountingSession ss(g, q, plan, ExecOptions{});
    const ExecStats b = ss.count_colorful_seeded(
        std::span<const std::uint64_t>(seeds.data(), 8));
    for (int l = 0; l < 8; ++l) {
      EXPECT_EQ(a.colorful_lane[l], b.colorful_lane[l])
          << q.name() << " lane " << l;
    }
  }
}

}  // namespace
}  // namespace ccbt
