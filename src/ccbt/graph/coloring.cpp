// Coloring is header-only; this translation unit exists so the header is
// compiled standalone at least once.
#include "ccbt/graph/coloring.hpp"
