#include "ccbt/engine/load_model.hpp"

#include <algorithm>

namespace ccbt {

void LoadModel::end_phase() {
  double makespan = 0.0;
  for (std::size_t r = 0; r < phase_ops_.size(); ++r) {
    const double work = static_cast<double>(phase_ops_[r]) +
                        comm_cost_ * static_cast<double>(phase_recv_[r]);
    makespan = std::max(makespan, work);
    phase_ops_[r] = 0;
    phase_recv_[r] = 0;
  }
  sim_time_ += makespan;
}

std::uint64_t LoadModel::total_ops() const {
  std::uint64_t sum = 0;
  for (auto v : total_ops_) sum += v;
  return sum;
}

std::uint64_t LoadModel::max_rank_ops() const {
  std::uint64_t best = 0;
  for (auto v : total_ops_) best = std::max(best, v);
  return best;
}

double LoadModel::avg_rank_ops() const {
  if (total_ops_.empty()) return 0.0;
  return static_cast<double>(total_ops()) /
         static_cast<double>(total_ops_.size());
}

}  // namespace ccbt
