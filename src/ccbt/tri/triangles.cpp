#include "ccbt/tri/triangles.hpp"

#include <algorithm>

#include "ccbt/util/timer.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace ccbt {

namespace {

/// Shared enumeration kernel: for every vertex u and every pair of
/// neighbors (v, w) accepted by `keep_pair`, perform one wedge check and
/// count the triangle when (v, w) is an edge and `keep_triangle` accepts
/// the triple. Work is parallelized over u with per-thread counters.
template <typename KeepPair, typename KeepTriangle>
TriangleStats enumerate(const CsrGraph& g, KeepPair&& keep_pair,
                        KeepTriangle&& keep_triangle,
                        std::vector<std::uint64_t>* per_vertex = nullptr) {
  Timer timer;
  TriangleStats stats;
  const VertexId n = g.num_vertices();
  if (per_vertex != nullptr) per_vertex->assign(n, 0);

  Count triangles = 0;
  std::uint64_t checks = 0;
  std::uint64_t max_checks = 0;

#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 64) \
    reduction(+ : triangles, checks) reduction(max : max_checks)
#endif
  for (VertexId u = 0; u < n; ++u) {
    const auto nbrs = g.neighbors(u);
    std::uint64_t local = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId v = nbrs[i];
      if (!keep_pair(u, v)) continue;
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        const VertexId w = nbrs[j];
        if (!keep_pair(u, w)) continue;
        ++local;
        if (g.has_edge(v, w) && keep_triangle(u, v, w)) ++triangles;
      }
    }
    checks += local;
    max_checks = std::max(max_checks, local);
    if (per_vertex != nullptr) (*per_vertex)[u] = local;
  }

  stats.triangles = triangles;
  stats.wedge_checks = checks;
  stats.max_vertex_checks = max_checks;
  stats.wall_seconds = timer.seconds();
  return stats;
}

}  // namespace

TriangleStats count_triangles_naive(const CsrGraph& g) {
  TriangleStats stats =
      enumerate(g, [](VertexId, VertexId) { return true; },
                [](VertexId, VertexId, VertexId) { return true; });
  stats.triangles /= 3;  // each triangle found at all three vertices
  return stats;
}

TriangleStats count_triangles_minbucket(const CsrGraph& g,
                                        const DegreeOrder& order) {
  return enumerate(
      g, [&order](VertexId u, VertexId v) { return order.higher(v, u); },
      [](VertexId, VertexId, VertexId) { return true; });
}

TriangleStats count_colorful_triangles(const CsrGraph& g, const Coloring& chi,
                                       const DegreeOrder& order) {
  return enumerate(
      g, [&order](VertexId u, VertexId v) { return order.higher(v, u); },
      [&chi](VertexId u, VertexId v, VertexId w) {
        return chi.color(u) != chi.color(v) && chi.color(u) != chi.color(w) &&
               chi.color(v) != chi.color(w);
      });
}

std::vector<std::uint64_t> minbucket_vertex_work(const CsrGraph& g,
                                                 const DegreeOrder& order) {
  std::vector<std::uint64_t> work;
  enumerate(g, [&order](VertexId u, VertexId v) { return order.higher(v, u); },
            [](VertexId, VertexId, VertexId) { return true; }, &work);
  return work;
}

}  // namespace ccbt
