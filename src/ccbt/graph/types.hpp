#pragma once
// Fundamental scalar types shared across the library.

#include <cstdint>

namespace ccbt {

/// Data-graph vertex identifier.
using VertexId = std::uint32_t;

/// Sentinel for "no vertex" (unused key slots in projection tables).
inline constexpr VertexId kNoVertex = 0xFFFFFFFFu;

/// Query-graph node identifier (queries have at most kMaxQueryNodes nodes).
using QNode = std::uint8_t;

/// Match counts. Colorful counts on million-edge graphs with 10-node
/// queries stay far below 2^64.
using Count = std::uint64_t;

/// Color signature: bit i set <=> color i used by the partial match.
using Signature = std::uint32_t;

/// Signature width limit; queries may have at most this many nodes.
inline constexpr int kMaxQueryNodes = 16;

/// Maximum number of colorings one plan execution can process at once
/// (the engine's batch width B; see table/README.md, "Lane layout").
inline constexpr int kMaxBatchLanes = 8;

/// Bit i set <=> lane i participates (e.g. lanes whose coloring gives a
/// vertex a particular color). Always < 2^kMaxBatchLanes.
using LaneMask = std::uint32_t;

}  // namespace ccbt
