#include "ccbt/graph/edge_list.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "ccbt/util/error.hpp"

namespace ccbt {

EdgeList simplify(EdgeList list) {
  auto& edges = list.edges;
  for (auto& e : edges) {
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  edges.erase(std::remove_if(edges.begin(), edges.end(),
                             [](const Edge& e) { return e.u == e.v; }),
              edges.end());
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return list;
}

EdgeList read_edge_list(std::istream& in) {
  EdgeList list;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::uint64_t u = 0, v = 0;
    if (!(ls >> u >> v)) {
      throw Error("edge list: malformed line: " + line);
    }
    list.add(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  return list;
}

EdgeList read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("edge list: cannot open " + path);
  return read_edge_list(in);
}

void write_edge_list(std::ostream& out, const EdgeList& list) {
  out << "# ccbt edge list: " << list.num_vertices << " vertices, "
      << list.edges.size() << " edges\n";
  for (const Edge& e : list.edges) out << e.u << ' ' << e.v << '\n';
}

}  // namespace ccbt
