#include "ccbt/engine/path_builder.hpp"

namespace ccbt {

bool needs_transpose(const Block& blk, int edge, bool forward) {
  return forward ? blk.edge_child_flip[edge] : !blk.edge_child_flip[edge];
}

template ProjTableT<1> build_path<1>(const ExecContext&, const Block&,
                                     TablePoolT<1>&, const PathSpec&);
template ProjTableT<2> build_path<2>(const ExecContext&, const Block&,
                                     TablePoolT<2>&, const PathSpec&);
template ProjTableT<4> build_path<4>(const ExecContext&, const Block&,
                                     TablePoolT<4>&, const PathSpec&);
template ProjTableT<8> build_path<8>(const ExecContext&, const Block&,
                                     TablePoolT<8>&, const PathSpec&);

}  // namespace ccbt
