#pragma once
// Library error hierarchy.
//
// Every error carries an ErrorCode so callers can route on the *kind* of
// failure without parsing what(): the fault-tolerant distributed engine
// retries or replays errors whose code is retryable() (lost supersteps,
// stalled ranks, transient allocation failures) and propagates the rest
// (malformed queries, genuine budget blowouts) unchanged. The
// context-chaining constructor prepends a caller frame to the message
// while preserving the cause's code, so a deep transport failure reaches
// the API surface as e.g.
//   "run_plan_distributed: block 3: superstep delivery failed after 4
//    attempts" with code kCommTimeout.
//
// BudgetExceeded deliberately mirrors the paper's experimental reality:
// Figure 10 contains blank cells where the PS baseline ran out of memory.
// Solvers throw BudgetExceeded when a projection table would exceed the
// configured entry budget, and the bench harness reports DNF for the cell.

#include <stdexcept>
#include <string>

namespace ccbt {

enum class ErrorCode : std::uint8_t {
  kGeneric = 0,        // unclassified (the legacy bare-string throws)
  kUnsupportedQuery,   // malformed / outside the supported query class
  kBudgetExceeded,     // projection table outgrew max_table_entries
  kCommTimeout,        // superstep delivery failed within the retry budget
  kRankFailed,         // a rank stalled past the ack deadline
  kAllocFailed,        // (injected) allocation failure while collecting
  kCheckpointCorrupt,  // checkpoint image failed integrity checks
  kRetriesExhausted,   // recovery budget (replays / surviving trials) spent
};

inline const char* error_code_name(ErrorCode c) {
  switch (c) {
    case ErrorCode::kGeneric: return "Generic";
    case ErrorCode::kUnsupportedQuery: return "UnsupportedQuery";
    case ErrorCode::kBudgetExceeded: return "BudgetExceeded";
    case ErrorCode::kCommTimeout: return "CommTimeout";
    case ErrorCode::kRankFailed: return "RankFailed";
    case ErrorCode::kAllocFailed: return "AllocFailed";
    case ErrorCode::kCheckpointCorrupt: return "CheckpointCorrupt";
    case ErrorCode::kRetriesExhausted: return "RetriesExhausted";
  }
  return "?";
}

/// A failure the fault-tolerance machinery may recover from by retrying
/// the superstep, replaying from a checkpoint, or dropping the trial.
inline constexpr bool error_code_retryable(ErrorCode c) {
  return c == ErrorCode::kCommTimeout || c == ErrorCode::kRankFailed ||
         c == ErrorCode::kAllocFailed;
}

/// Base class for all ccbt errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what)
      : std::runtime_error(what), code_(ErrorCode::kGeneric) {}

  Error(ErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  /// Context chaining: prepend a caller frame, keep the cause's code.
  Error(const std::string& context, const Error& cause)
      : std::runtime_error(context + ": " + cause.what()),
        code_(cause.code()) {}

  ErrorCode code() const { return code_; }
  bool retryable() const { return error_code_retryable(code_); }

 private:
  ErrorCode code_;
};

/// The query is malformed or outside the supported class (e.g. treewidth>2,
/// disconnected, or more nodes than the signature width supports).
class UnsupportedQuery : public Error {
 public:
  explicit UnsupportedQuery(const std::string& what)
      : Error(ErrorCode::kUnsupportedQuery, what) {}
};

/// A projection table grew past ExecOptions::max_table_entries.
class BudgetExceeded : public Error {
 public:
  explicit BudgetExceeded(const std::string& what)
      : Error(ErrorCode::kBudgetExceeded, what) {}
};

/// A superstep's delivery could not be completed within the retry budget.
class CommTimeout : public Error {
 public:
  explicit CommTimeout(const std::string& what)
      : Error(ErrorCode::kCommTimeout, what) {}
};

/// A rank stalled past the per-superstep acknowledgment deadline.
class RankFailed : public Error {
 public:
  explicit RankFailed(const std::string& what)
      : Error(ErrorCode::kRankFailed, what) {}
};

/// A checkpoint image failed its integrity checks during restore.
class CheckpointCorrupt : public Error {
 public:
  explicit CheckpointCorrupt(const std::string& what)
      : Error(ErrorCode::kCheckpointCorrupt, what) {}
};

}  // namespace ccbt
