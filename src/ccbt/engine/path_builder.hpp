#pragma once
// Generic path-table construction over a cycle block (Fig 7).
//
// A PathSpec describes one half of a split cycle: the sequence of node
// positions from the anchor to the end, which cycle edge is crossed at
// each step (and in which storage direction), which positions must be
// *tracked* into extra key slots (interior boundary nodes of the DB
// configurations), and which of the two shared endpoints' annotations this
// path owns (P+ owns the end's, P- owns the anchor's — Section 5.2).

#include <vector>

#include "ccbt/decomp/block.hpp"
#include "ccbt/engine/exec_context.hpp"
#include "ccbt/engine/primitives.hpp"
#include "ccbt/table/proj_table.hpp"

namespace ccbt {

/// Solved child tables, sealed kByV0, with cached transposes. `domain`
/// (the data graph's vertex count) lets stored tables build their O(1)
/// bucket index at seal time.
class TablePool {
 public:
  explicit TablePool(std::size_t num_blocks, VertexId domain = 0)
      : tables_(num_blocks), domain_(domain) {}

  void store(int block, ProjTable table);
  const ProjTable& get(int block) const { return tables_[block]; }

  /// The child table with slot 0 = `from`'s image; transposes lazily.
  const ProjTable& oriented(int block, bool transposed);

  std::size_t total_entries() const;

 private:
  std::vector<ProjTable> tables_;
  std::vector<ProjTable> transposed_;  // lazily filled, parallel to tables_
  std::vector<bool> has_transposed_;
  VertexId domain_ = 0;
};

struct PathSpec {
  /// Positions (indices into Block::nodes) visited, anchor first.
  std::vector<int> positions;

  /// edge_index[i] is the block edge crossed between positions[i] and
  /// positions[i+1]; edge_forward[i] is true when that walk direction
  /// matches the edge's storage direction nodes[e] -> nodes[e+1].
  std::vector<int> edge_index;
  std::vector<bool> edge_forward;

  /// track_slot_at[i] >= 2: record positions[i]'s image in that key slot.
  std::vector<int> track_slot_at;

  bool include_start_annot = false;  // NodeJoin(anchor) — P- owns it
  bool include_end_annot = false;    // NodeJoin(end)    — P+ owns it
  bool anchor_higher = false;        // DB: anchor ≻ every cycle vertex
};

/// Whether crossing edge `e` in walk direction `forward` needs the child's
/// transposed table: the child's first boundary must be the node the walk
/// leaves from. Shared with the distributed engine.
bool needs_transpose(const Block& blk, int edge, bool forward);

/// Build the projection table of one half-cycle path.
ProjTable build_path(const ExecContext& cx, const Block& blk, TablePool& pool,
                     const PathSpec& spec);

}  // namespace ccbt
