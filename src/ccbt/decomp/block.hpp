#pragma once
// Blocks and decomposition trees (Section 4.1).
//
// A block is either a leaf edge or a contractible cycle (an induced cycle
// of the working query with at most two boundary nodes); the singleton
// kind covers the degenerate root left when the last contraction consumes
// everything but one node. Blocks carry annotations: child blocks hanging
// off their nodes (unary projection tables) or their edges (binary
// projection tables standing in for contracted substructures).

#include <cstdint>
#include <vector>

#include "ccbt/graph/types.hpp"

namespace ccbt {

enum class BlockKind : std::uint8_t { kLeafEdge, kCycle, kSingleton };

struct Block {
  BlockKind kind = BlockKind::kCycle;

  /// Cycle order a0..a(L-1); {boundary, leaf} for leaf edges; {node} for
  /// the singleton root. Values are original query-node ids.
  std::vector<QNode> nodes;

  /// Positions (indices into `nodes`) of the boundary nodes, ascending.
  /// Empty for the root.
  std::vector<int> boundary_pos;

  /// Per node position: child block index annotating it, or -1.
  std::vector<int> node_child;

  /// Per edge: child block index annotating it, or -1 when the edge is an
  /// original query edge checked against the data graph. For cycles, edge
  /// i connects nodes[i] and nodes[(i+1)%L]; leaf edges have one edge.
  std::vector<int> edge_child;

  /// True when the child's stored boundary order is (nodes[i+1], nodes[i])
  /// rather than (nodes[i], nodes[i+1]); the solver then uses the child's
  /// transposed table.
  std::vector<bool> edge_child_flip;

  int length() const { return static_cast<int>(nodes.size()); }
  int boundary_count() const { return static_cast<int>(boundary_pos.size()); }
};

struct DecompTree {
  int k = 0;  // number of query nodes

  /// Topological order: children precede their parents; the root is last.
  std::vector<Block> blocks;
  int root = -1;
  std::vector<int> parent;  // parent block index, -1 for the root
};

}  // namespace ccbt
