#pragma once
// The degree-based total order of Section 5.1.
//
// Vertices are arranged in increasing order of degree, ties broken by
// placing the lower id first. "u is higher than v" (u ≻ v) means u appears
// after v. The DB algorithm anchors every cycle match at its unique
// highest vertex under this order (the MINBUCKET generalization).

#include <span>
#include <vector>

#include "ccbt/graph/csr_graph.hpp"
#include "ccbt/graph/types.hpp"

namespace ccbt {

class DegreeOrder {
 public:
  DegreeOrder() = default;
  explicit DegreeOrder(const CsrGraph& g);

  /// Build an arbitrary (id-based) order instead; used by the ordering
  /// ablation bench and by the Y(q) analysis of Section 9 where the PS
  /// variant breaks symmetry by vertex id.
  static DegreeOrder by_id(VertexId n);

  /// Position of v in the total order (0 = lowest).
  std::uint32_t rank(VertexId v) const { return rank_[v]; }

  /// u ≻ v: u is strictly higher than v.
  bool higher(VertexId u, VertexId v) const { return rank_[u] > rank_[v]; }

  /// The whole rank table (indexed by vertex id; injective). Bulk
  /// consumers — the rank-partitioned bucket scans — read it as a span
  /// instead of paying a call per row.
  std::span<const std::uint32_t> ranks() const { return rank_; }

  VertexId size() const { return static_cast<VertexId>(rank_.size()); }

 private:
  std::vector<std::uint32_t> rank_;
};

}  // namespace ccbt
