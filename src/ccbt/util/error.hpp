#pragma once
// Library error hierarchy.
//
// BudgetExceeded deliberately mirrors the paper's experimental reality:
// Figure 10 contains blank cells where the PS baseline ran out of memory.
// Solvers throw BudgetExceeded when a projection table would exceed the
// configured entry budget, and the bench harness reports DNF for the cell.

#include <stdexcept>
#include <string>

namespace ccbt {

/// Base class for all ccbt errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// The query is malformed or outside the supported class (e.g. treewidth>2,
/// disconnected, or more nodes than the signature width supports).
class UnsupportedQuery : public Error {
 public:
  explicit UnsupportedQuery(const std::string& what) : Error(what) {}
};

/// A projection table grew past ExecOptions::max_table_entries.
class BudgetExceeded : public Error {
 public:
  explicit BudgetExceeded(const std::string& what) : Error(what) {}
};

}  // namespace ccbt
