#include "ccbt/query/catalog.hpp"

#include <charconv>

#include "ccbt/util/error.hpp"

namespace ccbt {

QueryGraph q_satellite() {
  // Figure 2, nodes a..k -> 0..10:
  // a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7 i=8 j=9 k=10.
  // 5-cycle (a,b,c,d,e); path a-f, f-g, g-c; leaf f-h; triangle (i,j,k);
  // edges i-f and i-g closing triangle (i,f,g).
  return QueryGraph(11,
                    {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0},   // 5-cycle
                     {0, 5}, {5, 6}, {6, 2},                    // a-f-g-c
                     {5, 7},                                    // leaf f-h
                     {8, 9}, {9, 10}, {10, 8},                  // triangle ijk
                     {8, 5}, {8, 6}},                           // i-f, i-g
                    "satellite");
}

QueryGraph q_dros() {
  // Drosophila PPI motif stand-in: 5-cycle with a pendant node.
  return QueryGraph(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {2, 5}},
                    "dros");
}

QueryGraph q_ecoli1() {
  // Two triangles joined by a bridge edge.
  return QueryGraph(6, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 5},
                        {5, 3}},
                    "ecoli1");
}

QueryGraph q_ecoli2() {
  // 6-cycle with a pendant node.
  return QueryGraph(7, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0},
                        {3, 6}},
                    "ecoli2");
}

QueryGraph q_brain1() {
  // 4-cycle (0,1,2,3) and 6-cycle (0,1,4,5,6,7) sharing the edge (0,1):
  // exactly the structure whose two decomposition trees Section 6 cites.
  return QueryGraph(8, {{0, 1}, {1, 2}, {2, 3}, {3, 0},          // C4
                        {1, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 0}},  // C6 rest
                    "brain1");
}

QueryGraph q_brain2() {
  // 8-cycle with a chord splitting it into a 5- and a 5-cycle, plus a
  // pendant node: long cycles make this one of the expensive queries.
  return QueryGraph(9, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6},
                        {6, 7}, {7, 0},  // C8
                        {0, 4},          // chord
                        {2, 8}},         // pendant
                    "brain2");
}

QueryGraph q_brain3() {
  // Two 6-cycles sharing an edge (10 nodes); the most expensive query in
  // the paper's benchmark ("nearly 2 minutes on average").
  return QueryGraph(10, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0},
                         {0, 6}, {6, 7}, {7, 8}, {8, 9}, {9, 1}},
                    "brain3");
}

QueryGraph q_glet1() {
  return QueryGraph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}, "glet1");
}

QueryGraph q_glet2() {
  // Diamond: K4 minus one edge (two triangles sharing an edge).
  return QueryGraph(4, {{0, 1}, {1, 2}, {2, 0}, {1, 3}, {3, 2}}, "glet2");
}

QueryGraph q_wiki() {
  // Bowtie: two triangles sharing a single vertex.
  return QueryGraph(5, {{0, 1}, {1, 2}, {2, 0}, {0, 3}, {3, 4}, {4, 0}},
                    "wiki");
}

QueryGraph q_youtube() {
  // Tailed triangle with a 2-path tail (spam-campaign motif stand-in).
  return QueryGraph(5, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}}, "youtube");
}

QueryGraph q_cycle(int n) {
  if (n < 3) throw UnsupportedQuery("cycle needs >= 3 nodes");
  QueryGraph q(n, "cycle" + std::to_string(n));
  for (int i = 0; i < n; ++i) {
    q.add_edge(static_cast<QNode>(i), static_cast<QNode>((i + 1) % n));
  }
  return q;
}

QueryGraph q_path(int n) {
  if (n < 2) throw UnsupportedQuery("path needs >= 2 nodes");
  QueryGraph q(n, "path" + std::to_string(n));
  for (int i = 0; i + 1 < n; ++i) {
    q.add_edge(static_cast<QNode>(i), static_cast<QNode>(i + 1));
  }
  return q;
}

QueryGraph q_star(int leaves) {
  if (leaves < 1) throw UnsupportedQuery("star needs >= 1 leaf");
  QueryGraph q(leaves + 1, "star" + std::to_string(leaves));
  for (int i = 1; i <= leaves; ++i) {
    q.add_edge(0, static_cast<QNode>(i));
  }
  return q;
}

QueryGraph q_complete_binary_tree(int nodes) {
  if (nodes < 1 || nodes > kMaxQueryNodes) {
    throw UnsupportedQuery("binary tree size out of range");
  }
  QueryGraph q(nodes, "binary_tree" + std::to_string(nodes));
  for (int i = 1; i < nodes; ++i) {
    q.add_edge(static_cast<QNode>((i - 1) / 2), static_cast<QNode>(i));
  }
  return q;
}

std::vector<QueryGraph> figure8_queries() {
  return {q_dros(),  q_ecoli1(), q_ecoli2(), q_brain1(), q_brain2(),
          q_brain3(), q_glet1(),  q_glet2(),  q_wiki(),   q_youtube()};
}

namespace {

int parse_suffix_int(const std::string& name, std::size_t prefix_len) {
  int value = 0;
  const char* begin = name.data() + prefix_len;
  const char* end = name.data() + name.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw UnsupportedQuery("unknown query name: " + name);
  }
  return value;
}

}  // namespace

QueryGraph named_query(const std::string& name) {
  if (name == "dros") return q_dros();
  if (name == "ecoli1") return q_ecoli1();
  if (name == "ecoli2") return q_ecoli2();
  if (name == "brain1") return q_brain1();
  if (name == "brain2") return q_brain2();
  if (name == "brain3") return q_brain3();
  if (name == "glet1") return q_glet1();
  if (name == "glet2") return q_glet2();
  if (name == "wiki") return q_wiki();
  if (name == "youtube") return q_youtube();
  if (name == "satellite") return q_satellite();
  if (name == "triangle") return q_cycle(3);
  if (name == "diamond") return q_glet2();
  if (name == "bowtie") return q_wiki();
  if (name == "binary_tree12") return q_complete_binary_tree(12);
  if (name == "theta") {
    // Three internally disjoint paths between two terminals.
    return QueryGraph(5, {{0, 1}, {0, 2}, {2, 1}, {0, 3}, {3, 4}, {4, 1}},
                      "theta");
  }
  if (name.rfind("cycle", 0) == 0) return q_cycle(parse_suffix_int(name, 5));
  if (name.rfind("path", 0) == 0) return q_path(parse_suffix_int(name, 4));
  if (name.rfind("star", 0) == 0) return q_star(parse_suffix_int(name, 4));
  throw UnsupportedQuery("unknown query name: " + name);
}

std::vector<std::string> catalog_names() {
  return {"dros",   "ecoli1", "ecoli2",   "brain1",       "brain2",
          "brain3", "glet1",  "glet2",    "wiki",         "youtube",
          "satellite", "triangle", "diamond", "bowtie",   "theta",
          "binary_tree12", "cycle5", "cycle6", "path5",   "star6"};
}

}  // namespace ccbt
