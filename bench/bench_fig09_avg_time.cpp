// Regenerates Figure 9: average DB execution time per graph (across the
// ten queries) and per query (across the ten graphs), plus the Section 8.2
// remark that a 12-vertex complete binary tree is far cheaper than the
// 10-vertex brain3.
//
// Shape to verify: high-skew graphs (epinions, slashdot, enron) and
// long-cycle queries (brain2, brain3) dominate; roadNetCA and the small
// graphlets are fastest; the tree query is cheap despite having more nodes.

#include <map>

#include "common.hpp"

int main() {
  using namespace ccbt;
  using namespace ccbt::bench;
  print_header("Figure 9 — average DB execution time",
               "wall seconds (real, threaded) and simulated makespan at 512 "
               "virtual ranks");

  const auto graphs = load_grid(bench_scale());
  const auto queries = figure8_queries();

  std::map<std::string, std::vector<double>> per_graph_wall, per_query_wall;
  std::map<std::string, std::vector<double>> per_graph_sim, per_query_sim;

  for (const auto& [gname, g] : graphs) {
    for (const QueryGraph& q : queries) {
      const Plan plan = make_plan(q);
      // One run yields both metrics; the load-model overhead inflates the
      // wall time uniformly across cells, so relative shapes survive.
      const CellResult r = run_cell(g, q, plan, Algo::kDB, 512, 7);
      if (!r.ok) continue;
      per_graph_wall[gname].push_back(r.wall);
      per_query_wall[q.name()].push_back(r.wall);
      per_graph_sim[gname].push_back(r.sim);
      per_query_sim[q.name()].push_back(r.sim);
    }
  }

  TextTable tg({"graph", "avg wall (s)", "avg sim (Mops)"});
  for (const auto& [gname, g] : graphs) {
    tg.add_row({gname, TextTable::num(summarize(per_graph_wall[gname]).mean, 3),
                TextTable::num(summarize(per_graph_sim[gname]).mean / 1e6, 3)});
  }
  tg.print(std::cout);

  std::cout << "\n";
  TextTable tq({"query", "avg wall (s)", "avg sim (Mops)"});
  for (const QueryGraph& q : queries) {
    tq.add_row(
        {q.name(), TextTable::num(summarize(per_query_wall[q.name()]).mean, 3),
         TextTable::num(summarize(per_query_sim[q.name()]).mean / 1e6, 3)});
  }
  tq.print(std::cout);

  // Section 8.2: 12-vertex complete binary tree vs brain3.
  std::cout << "\nSection 8.2 remark — tree query vs brain3 (avg across "
               "graphs)\n";
  std::vector<double> tree_wall;
  const QueryGraph tree12 = q_complete_binary_tree(12);
  const Plan tree_plan = make_plan(tree12);
  for (const auto& [gname, g] : graphs) {
    const CellResult r = run_cell(g, tree12, tree_plan, Algo::kDB, 512, 7);
    if (r.ok) tree_wall.push_back(r.wall);
  }
  TextTable tr({"query", "nodes", "avg wall (s)"});
  tr.add_row({"binary_tree12", "12",
              TextTable::num(summarize(tree_wall).mean, 3)});
  tr.add_row({"brain3", "10",
              TextTable::num(summarize(per_query_wall["brain3"]).mean, 3)});
  tr.print(std::cout);
  return 0;
}
