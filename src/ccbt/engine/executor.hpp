#pragma once
// Bottom-up traversal of the decomposition tree (Fig 3, "Overall
// Algorithm"): solve each block from its children's projection tables;
// the root emits the number of colorful matches — per lane, when the
// context carries a multi-coloring batch.

#include <array>

#include "ccbt/decomp/block.hpp"
#include "ccbt/engine/exec_context.hpp"

namespace ccbt {

struct ExecStats {
  /// Lane-0 colorful count (the full answer of a single-coloring run).
  Count colorful = 0;

  /// Per-lane colorful counts; lanes_used entries are meaningful.
  std::array<Count, kMaxBatchLanes> colorful_lane{};
  int lanes_used = 1;

  double wall_seconds = 0.0;
  std::size_t peak_table_entries = 0;

  // Filled when a LoadModel was attached.
  double sim_time = 0.0;
  std::uint64_t total_ops = 0;
  std::uint64_t max_rank_ops = 0;
  double avg_rank_ops = 0.0;
  std::uint64_t total_comm = 0;

  /// Lane-layout telemetry aggregated over every sorting seal of the run
  /// (B > 1; all-zero at B = 1): observed lane density, how many rows the
  /// seal-time chooser re-packed, and at which payload widths. Makes the
  /// layout decisions auditable (surfaced into BENCH_batch.json).
  LaneTelemetry lanes;

  /// Per-stage wall breakdown of the run (accumulate / seal / merge;
  /// transport stays zero in shared-memory runs). Stage totals may sum
  /// below wall_seconds — planning glue and root totals are untimed.
  StageWall stage;

  /// B > 1 accumulation telemetry (all-zero at B = 1): which engine the
  /// phases ran on (probe vs sharded, see CCBT_ACCUM), how many
  /// emissions the combining caches folded away before the seal, run-bulk
  /// API usage, and how evenly the shard cut spread the key space.
  AccumTelemetry accum;

  /// Fault-tolerance scoreboard (injected faults, retries, replays,
  /// checkpoint cost). All-zero for shared-memory runs, which have no
  /// transport to fail; present so ExecStats and DistStats expose one
  /// shape to estimator-level aggregation.
  FaultStats faults;
};

/// Count the colorful matches of the plan's query under every lane of
/// cx.chi (1, 2, 4 or 8 lanes — other widths throw Error).
/// Throws BudgetExceeded when a table outgrows the configured budget.
ExecStats run_plan(const ExecContext& cx, const DecompTree& tree);

}  // namespace ccbt
