#pragma once
// Small descriptive-statistics helpers shared by the estimator (Section 8.6
// coefficient-of-variation study) and the bench harness.

#include <cstddef>
#include <vector>

namespace ccbt {

struct Summary {
  double mean = 0.0;
  double variance = 0.0;  // unbiased sample variance (n-1 denominator)
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t n = 0;

  /// Coefficient of variation stddev/mean; 0 when the mean is 0.
  double cv() const;
};

Summary summarize(const std::vector<double>& xs);

/// Geometric mean of strictly positive values; 0 if the input is empty.
double geometric_mean(const std::vector<double>& xs);

/// Least-squares slope of log(y) against log(x); used by the Section 9
/// bench to fit the polynomial growth exponents of X(q) and Y(q).
double loglog_slope(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace ccbt
