#include "ccbt/engine/split_plan.hpp"

#include "ccbt/util/error.hpp"

namespace ccbt {

SplitPlan make_split(const Block& blk, int s, int e, bool anchor_higher) {
  const int L = blk.length();
  auto wrap = [L](int x) { return ((x % L) + L) % L; };

  SplitPlan plan;
  plan.plus.anchor_higher = anchor_higher;
  plan.minus.anchor_higher = anchor_higher;
  plan.plus.include_end_annot = true;     // P+ owns the end's annotation
  plan.minus.include_start_annot = true;  // P- owns the anchor's annotation

  const int len_plus = wrap(e - s);
  const int len_minus = L - len_plus;
  for (int i = 0; i <= len_plus; ++i) {
    plan.plus.positions.push_back(wrap(s + i));
    if (i < len_plus) {
      plan.plus.edge_index.push_back(wrap(s + i));
      plan.plus.edge_forward.push_back(true);
    }
  }
  for (int i = 0; i <= len_minus; ++i) {
    plan.minus.positions.push_back(wrap(s - i));
    if (i < len_minus) {
      plan.minus.edge_index.push_back(wrap(s - i - 1));
      plan.minus.edge_forward.push_back(false);
    }
  }
  plan.plus.track_slot_at.assign(plan.plus.positions.size(), -1);
  plan.minus.track_slot_at.assign(plan.minus.positions.size(), -1);

  // Boundary images in the output key, in the block's stored order.
  plan.merge.out_arity = blk.boundary_count();
  int next_slot_plus = 2, next_slot_minus = 2;
  for (int b = 0; b < blk.boundary_count(); ++b) {
    const int p = blk.boundary_pos[b];
    if (p == s) {
      plan.merge.out[b] = {0, 0};
      continue;
    }
    if (p == e) {
      plan.merge.out[b] = {0, 1};
      continue;
    }
    // Interior: find it on one of the walks and track it.
    auto locate = [&](PathSpec& spec, int& next_slot, int side) -> bool {
      for (std::size_t i = 1; i + 1 < spec.positions.size(); ++i) {
        if (spec.positions[i] == p) {
          spec.track_slot_at[i] = next_slot;
          plan.merge.out[b] = {side, next_slot};
          ++next_slot;
          return true;
        }
      }
      return false;
    };
    if (!locate(plan.plus, next_slot_plus, 0) &&
        !locate(plan.minus, next_slot_minus, 1)) {
      throw Error("make_split: boundary position not on either path");
    }
  }
  return plan;
}

std::vector<SplitPlan> splits_for(const Block& blk, Algo algo) {
  if (blk.kind != BlockKind::kCycle || blk.length() < 3) {
    throw Error("splits_for: not a cycle block");
  }
  const int L = blk.length();
  auto wrap = [L](int x) { return ((x % L) + L) % L; };
  const auto& bp = blk.boundary_pos;
  std::vector<SplitPlan> out;

  switch (algo) {
    case Algo::kPS: {
      // Baseline: split at the boundary nodes themselves (Fig 4); for one
      // or zero boundaries, split at the boundary (or position 0) and its
      // diagonal, then let the merge spec project the diagonal away.
      const int s = bp.empty() ? 0 : bp[0];
      const int e = (bp.size() == 2) ? bp[1] : wrap(s + L / 2);
      out.push_back(make_split(blk, s, e, false));
      break;
    }
    case Algo::kPSEven: {
      // Ablation (Section 5.1 discussion): always split evenly at the
      // first boundary's diagonal, recording interior boundaries.
      const int s = bp.empty() ? 0 : bp[0];
      const int e = wrap(s + L / 2);
      out.push_back(make_split(blk, s, e, false));
      break;
    }
    case Algo::kDB: {
      // Degree-based: partition matches by the highest cycle node h
      // (Eq. 1), split at (h, diag(h)), count only high-starting paths.
      for (int h = 0; h < L; ++h) {
        out.push_back(make_split(blk, h, wrap(h + L / 2), true));
      }
      break;
    }
  }
  return out;
}

}  // namespace ccbt
