#pragma once
// Random vertex colorings (the "color coding" in color coding).
//
// A coloring assigns each data vertex one of k colors uniformly at random;
// a match is colorful when all query nodes map to distinctly colored
// vertices. Multiple independent colorings drive the estimator.

#include <cstdint>
#include <vector>

#include "ccbt/graph/types.hpp"
#include "ccbt/util/rng.hpp"

namespace ccbt {

class Coloring {
 public:
  Coloring() = default;

  /// Uniform random coloring with k colors over n vertices.
  Coloring(VertexId n, int k, std::uint64_t seed) : k_(k) {
    colors_.resize(n);
    Rng rng(seed);
    for (auto& c : colors_) c = static_cast<std::uint8_t>(rng.below(k));
  }

  /// Explicit coloring (tests).
  Coloring(std::vector<std::uint8_t> colors, int k)
      : k_(k), colors_(std::move(colors)) {}

  int num_colors() const { return k_; }

  std::uint8_t color(VertexId v) const { return colors_[v]; }

  /// Signature bit of v's color.
  Signature bit(VertexId v) const { return Signature{1} << colors_[v]; }

  VertexId size() const { return static_cast<VertexId>(colors_.size()); }

 private:
  int k_ = 0;
  std::vector<std::uint8_t> colors_;
};

}  // namespace ccbt
